// Package soc's root benchmark harness: one benchmark per table and
// figure of the paper (Figures 1-5, Tables 1-5) plus the ablation studies
// (A1-A6 in DESIGN.md). Run all of them with:
//
//	go test -bench=. -benchmem
package soc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"soc/internal/cloud"
	"soc/internal/collatz"
	"soc/internal/core"
	"soc/internal/curriculum"
	"soc/internal/host"
	"soc/internal/maze"
	"soc/internal/mortgageapp"
	"soc/internal/nav"
	"soc/internal/registry"
	"soc/internal/robot"
	"soc/internal/services"
	"soc/internal/session"
	"soc/internal/soap"
	"soc/internal/vtime"
	"soc/internal/workflow"
)

// BenchmarkFigure1 runs the web-environment command program (right-hand
// wall follower) to the goal of a 15x15 maze through the Robot-as-a-
// Service API.
func BenchmarkFigure1(b *testing.B) {
	ctx := context.Background()
	sessions := robot.NewSessions()
	svc, err := robot.NewService(sessions)
	if err != nil {
		b.Fatal(err)
	}
	const program = `WHILE NOT_GOAL
IF RIGHT_OPEN
RIGHT
FORWARD
ELSE
IF FRONT_OPEN
FORWARD
ELSE
LEFT
END
END
END`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := svc.Invoke(ctx, "CreateMaze", core.Values{
			"width": 15, "height": 15, "algorithm": "dfs", "seed": int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		run, err := svc.Invoke(ctx, "RunProgram", core.Values{
			"session": out["session"], "program": program,
		})
		if err != nil || run["atGoal"] != true {
			b.Fatalf("run: %v %v", run, err)
		}
		if _, err := svc.Invoke(ctx, "CloseSession", core.Values{"session": out["session"]}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 solves a 15x15 maze with each navigation algorithm.
func BenchmarkFigure2(b *testing.B) {
	ctx := context.Background()
	for _, alg := range nav.Algorithms() {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := maze.Generate(15, 15, maze.DFS, int64(i%16))
				if err != nil {
					b.Fatal(err)
				}
				r, err := robot.New(m)
				if err != nil {
					b.Fatal(err)
				}
				ctrl, err := nav.New(alg, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nav.Run(ctx, ctrl, r, 200000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3 measures the Collatz workload: the real schedulers at
// the host's core count and the virtual-time projection to 32 cores.
func BenchmarkFigure3(b *testing.B) {
	const lo, hi = 1, 100_001
	seq, err := collatz.ValidateSeq(lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	check := func(b *testing.B, r collatz.Result, err error) {
		b.Helper()
		if err != nil || r.TotalSteps != seq.TotalSteps {
			b.Fatalf("mismatch: %v", err)
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := collatz.ValidateSeq(lo, hi)
			check(b, r, err)
		}
	})
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := collatz.ValidateStatic(lo, hi, 2)
			check(b, r, err)
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := collatz.ValidateDynamic(lo, hi, 2)
			check(b, r, err)
		}
	})
	b.Run("virtual-32core", func(b *testing.B) {
		tasks, err := collatz.Tasks(lo, hi, 64)
		if err != nil {
			b.Fatal(err)
		}
		ex, err := vtime.NewExecutor(vtime.Config{DispatchOverhead: 6, CoreStartup: 2000})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Scaling(tasks, []int{1, 4, 8, 16, 32}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure4 runs the complete account-application web flow
// (subscribe → password → login) over HTTP per iteration.
func BenchmarkFigure4(b *testing.B) {
	app, err := mortgageapp.New(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	server := httptest.NewServer(app)
	defer server.Close()

	// A pool of approvable SSNs (one per iteration: SSNs are unique).
	var ssns []string
	for a := 100; a < 1000 && len(ssns) < 2048; a++ {
		for c := 1000; c < 1020 && len(ssns) < 2048; c++ {
			ssn := fmt.Sprintf("%03d-%02d-%04d", a, a%90+10, c)
			if score, err := services.CreditScoreOf(ssn); err == nil && score >= services.ApprovalThreshold {
				ssns = append(ssns, ssn)
			}
		}
	}
	if len(ssns) == 0 {
		b.Fatal("no approvable SSNs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jar, _ := cookiejar.New(nil)
		client := &http.Client{Jar: jar}
		post := func(path string, form url.Values) (int, map[string]any) {
			resp, err := client.PostForm(server.URL+path, form)
			if err != nil {
				b.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var body map[string]any
			_ = json.Unmarshal(data, &body)
			return resp.StatusCode, body
		}
		ssn := ssns[i%len(ssns)]
		status, body := post("/subscribe", url.Values{
			"name": {"Bench"}, "ssn": {ssn}, "address": {"1 Bench Rd"},
			"dob": {"1990-01-01"}, "income": {"100000"}, "amount": {"300000"},
		})
		if status != http.StatusOK {
			b.Fatalf("subscribe: %d %v", status, body)
		}
		userID, _ := body["userId"].(string)
		if body["approved"] == true && userID != "" {
			if s, _ := post("/password", url.Values{
				"userId": {userID}, "password": {"B3nchPass!"}, "retype": {"B3nchPass!"},
			}); s != http.StatusOK {
				b.Fatalf("password: %d", s)
			}
			if s, _ := post("/login", url.Values{
				"userId": {userID}, "password": {"B3nchPass!"},
			}); s != http.StatusOK {
				b.Fatalf("login: %d", s)
			}
		}
	}
}

// BenchmarkTable4Figure5 regenerates the enrollment analytics and the
// ASCII Figure 5 plot.
func BenchmarkTable4Figure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := curriculum.GrowthFactor(curriculum.EnrollmentTable); err != nil {
			b.Fatal(err)
		}
		if _, err := curriculum.LinearTrend(curriculum.EnrollmentTable); err != nil {
			b.Fatal(err)
		}
		if _, err := curriculum.Figure5(curriculum.EnrollmentTable); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates the evaluation-score analytics.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := curriculum.MeanScores(curriculum.EvaluationTable); err != nil {
			b.Fatal(err)
		}
		_ = curriculum.FormatTable5(curriculum.EvaluationTable)
	}
}

// BenchmarkTablesACM regenerates the ACM topic coverage report.
func BenchmarkTablesACM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, uncovered := curriculum.CoverageReport(curriculum.ACMTopics); uncovered != 0 {
			b.Fatal("uncovered topics")
		}
	}
}

func newCalcHost(b *testing.B) (*host.Host, *httptest.Server) {
	b.Helper()
	svc, err := core.NewService("Calc", "http://soc.example/calc", "arithmetic")
	if err != nil {
		b.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:   "Add",
		Input:  []core.Param{{Name: "a", Type: core.Int}, {Name: "b", Type: core.Int}},
		Output: []core.Param{{Name: "sum", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"sum": in.Int("a") + in.Int("b")}, nil
		},
	})
	h := host.New()
	h.MustMount(svc)
	server := httptest.NewServer(h)
	b.Cleanup(server.Close)
	return h, server
}

// BenchmarkBindings compares REST and SOAP invocation of the same
// operation (ablation A2).
func BenchmarkBindings(b *testing.B) {
	_, server := newCalcHost(b)
	client := host.NewClient(server.URL)
	ctx := context.Background()
	b.Run("rest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := client.Call(ctx, "Calc", "Add", core.Values{"a": 2, "b": 3})
			if err != nil || out.Float("sum") != 5 {
				b.Fatalf("%v %v", out, err)
			}
		}
	})
	b.Run("soap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := client.CallSOAP(ctx, "Calc", "Add", "http://soc.example/calc", core.Values{"a": 2, "b": 3})
			if err != nil || out["sum"] != "5" {
				b.Fatalf("%v %v", out, err)
			}
		}
	})
}

// BenchmarkWorkflowOverhead compares direct invocation against engine
// orchestration (ablation A3).
func BenchmarkWorkflowOverhead(b *testing.B) {
	svc, err := core.NewService("Calc", "http://soc.example/calc", "")
	if err != nil {
		b.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:   "Add",
		Input:  []core.Param{{Name: "a", Type: core.Int}, {Name: "b", Type: core.Int}},
		Output: []core.Param{{Name: "sum", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"sum": in.Int("a") + in.Int("b")}, nil
		},
	})
	ctx := context.Background()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.Invoke(ctx, "Add", core.Values{"a": 1, "b": 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	inv := workflow.InvokerFunc(func(ctx context.Context, _, op string, args map[string]any) (map[string]any, error) {
		out, err := svc.Invoke(ctx, op, core.Values(args))
		return map[string]any(out), err
	})
	wf, err := workflow.New("one", &workflow.Invoke{
		Label: "add", Service: "Calc", Operation: "Add", Invoker: inv,
		Inputs: map[string]string{"a": "x", "b": "y"}, Outputs: map[string]string{"sum": "s"},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("workflow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := wf.Run(ctx, map[string]any{"x": int64(1), "y": int64(2)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStateManagement measures the session cache under a skewed
// access pattern (ablation A4).
func BenchmarkStateManagement(b *testing.B) {
	c, err := session.NewCache(256)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("page-%d", i%512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if _, ok := c.Get(k); !ok {
			c.Put(k, "rendered")
		}
	}
}

// BenchmarkCloudScale runs the autoscaler elasticity simulation
// (ablation A5).
func BenchmarkCloudScale(b *testing.B) {
	demand := []int{10, 10, 20, 60, 120, 120, 80, 30, 10, 10, 10, 10}
	for i := 0; i < b.N; i++ {
		sim, err := cloud.NewSimulation(cloud.AutoscalerConfig{
			MinInstances: 1, MaxInstances: 16, InstanceCapacity: 10,
			TargetUtilization: 0.75, CooldownTicks: 1, StartupTicks: 1,
		}, cloud.LeastLoaded)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(demand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessagePlane is the hot-path suite gated by cmd/benchdiff: the
// SOAP codec, host dispatch, and an end-to-end echo round trip. Run it
// with `make bench`; compare runs with `make bench-compare`.
func BenchmarkMessagePlane(b *testing.B) {
	echo, err := core.NewService("Echo", "http://soc.example/echo", "echo")
	if err != nil {
		b.Fatal(err)
	}
	echo.MustAddOperation(core.Operation{
		Name:   "Echo",
		Input:  []core.Param{{Name: "text", Type: core.String}},
		Output: []core.Param{{Name: "echo", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"echo": in.Str("text")}, nil
		},
	})
	h := host.New()
	h.MustMount(echo)

	msg := soap.Message{
		Operation:  "Echo",
		Namespace:  "http://soc.example/echo",
		Params:     map[string]string{"text": "the quick <brown> fox & friends"},
		ParamOrder: []string{"text"},
	}
	encoded, err := soap.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("soap-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := soap.Encode(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("soap-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := soap.Decode(bytes.NewReader(encoded))
			if err != nil || m.Operation != "Echo" {
				b.Fatalf("%v %v", m, err)
			}
		}
	})
	b.Run("dispatch", func(b *testing.B) {
		// In-process dispatch of the SOAP binding: router match + decode +
		// invoke + encode, no network.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/services/Echo/soap", bytes.NewReader(encoded))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	})
	b.Run("soap-echo-e2e", func(b *testing.B) {
		server := httptest.NewServer(h)
		defer server.Close()
		client := host.NewClient(server.URL)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := client.CallSOAP(ctx, "Echo", "Echo", "http://soc.example/echo", core.Values{"text": "ping"})
			if err != nil || out["echo"] != "ping" {
				b.Fatalf("%v %v", out, err)
			}
		}
	})
	// Cached vs uncached invocation of an idempotent operation with real
	// work (AES-GCM decryption under a passphrase-derived key). The cached
	// host answers repeats from the idempotent-response cache.
	encSvc, err := services.NewEncryption()
	if err != nil {
		b.Fatal(err)
	}
	sealed, err := encSvc.Invoke(context.Background(), "Encrypt", core.Values{
		"passphrase": "correct horse battery", "plaintext": "the quick brown fox",
	})
	if err != nil {
		b.Fatal(err)
	}
	decryptURL := "/services/Encryption/invoke/Decrypt?" + url.Values{
		"passphrase": {"correct horse battery"},
		"ciphertext": {sealed.Str("ciphertext")},
	}.Encode()
	invoke := func(b *testing.B, h *host.Host) {
		b.Helper()
		req := httptest.NewRequest(http.MethodGet, decryptURL, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	b.Run("invoke-uncached", func(b *testing.B) {
		h := host.New()
		h.MustMount(encSvc)
		invoke(b, h) // warm pools
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			invoke(b, h)
		}
	})
	b.Run("invoke-cached", func(b *testing.B) {
		h := host.New()
		h.MustMount(encSvc)
		h.UseResponseCache(128, time.Minute)
		invoke(b, h) // warm pools and fill the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			invoke(b, h)
		}
	})

	b.Run("registry-lookup", func(b *testing.B) {
		reg := registry.New()
		for i := 0; i < 500; i++ {
			err := reg.Publish(registry.Entry{
				Name:       fmt.Sprintf("Service%d", i),
				Doc:        fmt.Sprintf("sample service number %d for keyword testing", i),
				Endpoint:   "http://example/svc",
				Category:   "testing",
				Operations: []string{"GetQuote", "PlaceOrder"},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reg.Search("sample keyword service", 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRegistrySearch measures broker keyword search as the directory
// grows (ablation A1 companion).
func BenchmarkRegistrySearch(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("entries-%d", n), func(b *testing.B) {
			reg := registry.New()
			for i := 0; i < n; i++ {
				err := reg.Publish(registry.Entry{
					Name:     fmt.Sprintf("Service%d", i),
					Doc:      fmt.Sprintf("sample service number %d for keyword testing", i),
					Endpoint: "http://example/svc",
					Category: "testing",
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.Search("sample keyword service", 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
