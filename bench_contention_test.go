// Contention benchmarks: the hot-path message plane measured under
// concurrency, not one goroutine at a time. Every dimension runs three
// ways, following the goavro low/high pattern:
//
//   - serial:    the plain single-goroutine loop (comparable to
//     BenchmarkMessagePlane numbers);
//   - parallel:  b.RunParallel at 4x GOMAXPROCS — the "low" concurrency
//     shape, worker-pool style;
//   - saturated: NumCPU x satFactor goroutines each driving b.N
//     iterations — deliberate oversubscription, the goavro "High"
//     variant. Reported ns/op here is wall time per b.N, so it scales
//     with the goroutine count; compare saturated runs only against
//     other saturated runs.
//
// The suite is gated by `make bench-contention` against
// BENCH_contention.json (ns/op and the parallel-contention ratio; see
// cmd/benchdiff -gate contention).
package soc

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soc/internal/core"
	"soc/internal/host"
	"soc/internal/registry"
	"soc/internal/respcache"
	"soc/internal/services"
	"soc/internal/soap"
	"soc/internal/telemetry"
)

// satFactor scales the saturated variant: NumCPU x satFactor goroutines.
// Large enough that preemption inside a critical section forms a convoy
// on a global lock, small enough that `make ci` stays fast.
const satFactor = 128

// benchWriter is a minimal ResponseWriter: header map, status, byte
// count. httptest.NewRecorder clones the header map on WriteHeader and
// buffers the body, which costs more than the server path under test;
// a real server writes headers to the wire without cloning, so this is
// the more honest harness. Pooled because the end-to-end benches share
// one op closure across goroutines.
type benchWriter struct {
	header http.Header
	status int
	n      int
}

func (w *benchWriter) Header() http.Header { return w.header }
func (w *benchWriter) WriteHeader(c int)   { w.status = c }
func (w *benchWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += len(p)
	return len(p), nil
}

var benchWriterPool = sync.Pool{New: func() any {
	return &benchWriter{header: make(http.Header, 8)}
}}

func getBenchWriter() *benchWriter {
	w := benchWriterPool.Get().(*benchWriter)
	w.status = 0
	w.n = 0
	clear(w.header)
	return w
}

// lowAndHigh runs op serially, under RunParallel, and under NumCPU x
// satFactor oversubscribed goroutines (each iterating b.N times).
func lowAndHigh(b *testing.B, op func()) {
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(4)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				op()
			}
		})
	})
	b.Run("saturated", func(b *testing.B) {
		concurrency := runtime.NumCPU() * satFactor
		var wg sync.WaitGroup
		wg.Add(concurrency)
		b.ReportAllocs()
		b.ResetTimer()
		for c := 0; c < concurrency; c++ {
			go func() {
				defer wg.Done()
				for n := 0; n < b.N; n++ {
					op()
				}
			}()
		}
		wg.Wait()
	})
}

// BenchmarkContention is the concurrency companion of
// BenchmarkMessagePlane: the same hot paths, hammered from many
// goroutines at once, so a single global lock shows up as a convoy
// instead of hiding inside an uncontended fast path.
func BenchmarkContention(b *testing.B) {
	b.Run("invoke-cached", benchContentionInvokeCached)
	b.Run("registry-lookup", benchContentionRegistryLookup)
	b.Run("registry-lookup-publish", benchContentionLookupDuringPublish)
	b.Run("soap-encode", benchContentionSOAPEncode)
	b.Run("soap-decode", benchContentionSOAPDecode)
	b.Run("dispatch", benchContentionDispatch)
	b.Run("respcache-hit", benchContentionRespcacheHit)
	b.Run("telemetry-record", benchContentionTelemetryRecord)
}

// benchContentionInvokeCached drives the idempotent-response-cache hit
// path end to end through host dispatch: router match, cache keying,
// cache lookup, replay, cache-hit telemetry.
func benchContentionInvokeCached(b *testing.B) {
	encSvc, err := services.NewEncryption()
	if err != nil {
		b.Fatal(err)
	}
	sealed, err := encSvc.Invoke(context.Background(), "Encrypt", core.Values{
		"passphrase": "correct horse battery", "plaintext": "the quick brown fox",
	})
	if err != nil {
		b.Fatal(err)
	}
	decryptURL := "/services/Encryption/invoke/Decrypt?" + url.Values{
		"passphrase": {"correct horse battery"},
		"ciphertext": {sealed.Str("ciphertext")},
	}.Encode()
	h := host.New()
	h.MustMount(encSvc)
	h.UseResponseCache(128, time.Hour)
	warm := httptest.NewRequest(http.MethodGet, decryptURL, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, warm)
	if w.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", w.Code, w.Body.String())
	}
	// Build requests by hand around one pre-parsed URL: the handlers only
	// read r.URL, and httptest.NewRequest would otherwise dominate the
	// loop, hiding the server-side cost we are gating.
	target, err := url.Parse(decryptURL)
	if err != nil {
		b.Fatal(err)
	}
	// Requests are pooled like the writers: each in-flight request is
	// exclusively owned between Get and Put, so reuse is race-free even
	// though the op closure is shared across goroutines.
	reqPool := sync.Pool{New: func() any {
		return &http.Request{
			Method: http.MethodGet, URL: target,
			Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header: make(http.Header), Host: "bench.local",
			RemoteAddr: "192.0.2.1:1234", RequestURI: decryptURL,
		}
	}}
	lowAndHigh(b, func() {
		req := reqPool.Get().(*http.Request)
		rec := getBenchWriter()
		h.ServeHTTP(rec, req)
		if rec.status != http.StatusOK {
			panic(fmt.Sprintf("status %d", rec.status))
		}
		benchWriterPool.Put(rec)
		reqPool.Put(req)
	})
}

func seededRegistry(b *testing.B, n int) *registry.Registry {
	b.Helper()
	reg := registry.New(registry.WithLease(24 * time.Hour))
	for i := 0; i < n; i++ {
		err := reg.Publish(registry.Entry{
			Name:       fmt.Sprintf("Service%d", i),
			Doc:        fmt.Sprintf("sample service number %d for keyword testing", i),
			Endpoint:   "http://example/svc",
			Category:   "testing",
			Operations: []string{"GetQuote", "PlaceOrder"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return reg
}

// benchContentionRegistryLookup is pure keyword search over a 500-entry
// directory — the discovery hot path with no writers in sight.
func benchContentionRegistryLookup(b *testing.B) {
	reg := seededRegistry(b, 500)
	lowAndHigh(b, func() {
		if _, err := reg.Search("sample keyword service", 10); err != nil {
			panic(err)
		}
	})
}

// benchContentionLookupDuringPublish is the same search with a provider
// continuously republishing entries — the scenario where a single
// RWMutex lets every publish stall every lookup. The publisher runs for
// the whole benchmark and stops when the measured loops are done.
func benchContentionLookupDuringPublish(b *testing.B) {
	reg := seededRegistry(b, 500)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			err := reg.Publish(registry.Entry{
				Name:       fmt.Sprintf("Service%d", i%500),
				Doc:        fmt.Sprintf("sample service number %d for keyword testing", i%500),
				Endpoint:   "http://example/svc",
				Category:   "testing",
				Operations: []string{"GetQuote", "PlaceOrder"},
			})
			if err != nil {
				panic(err)
			}
			i++
		}
	}()
	lowAndHigh(b, func() {
		if _, err := reg.Search("sample keyword service", 10); err != nil {
			panic(err)
		}
	})
	close(done)
	wg.Wait()
}

func benchSOAPMessage(b *testing.B) (soap.Message, []byte) {
	b.Helper()
	msg := soap.Message{
		Operation:  "Echo",
		Namespace:  "http://soc.example/echo",
		Params:     map[string]string{"text": "the quick <brown> fox & friends"},
		ParamOrder: []string{"text"},
	}
	encoded, err := soap.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	return msg, encoded
}

func benchContentionSOAPEncode(b *testing.B) {
	msg, _ := benchSOAPMessage(b)
	lowAndHigh(b, func() {
		if _, err := soap.Encode(msg); err != nil {
			panic(err)
		}
	})
}

func benchContentionSOAPDecode(b *testing.B) {
	_, encoded := benchSOAPMessage(b)
	lowAndHigh(b, func() {
		m, err := soap.Decode(bytes.NewReader(encoded))
		if err != nil || m.Operation != "Echo" {
			panic(err)
		}
	})
}

// benchContentionDispatch is in-process SOAP dispatch: router match +
// decode + invoke + encode, no network, many goroutines.
func benchContentionDispatch(b *testing.B) {
	echo, err := core.NewService("Echo", "http://soc.example/echo", "echo")
	if err != nil {
		b.Fatal(err)
	}
	echo.MustAddOperation(core.Operation{
		Name:   "Echo",
		Input:  []core.Param{{Name: "text", Type: core.String}},
		Output: []core.Param{{Name: "echo", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"echo": in.Str("text")}, nil
		},
	})
	h := host.New()
	h.MustMount(echo)
	_, encoded := benchSOAPMessage(b)
	target := &url.URL{Path: "/services/Echo/soap"}
	lowAndHigh(b, func() {
		req := &http.Request{
			Method: http.MethodPost, URL: target,
			Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header: make(http.Header), Host: "bench.local",
			RemoteAddr: "192.0.2.1:1234", RequestURI: target.Path,
			Body: io.NopCloser(bytes.NewReader(encoded)), ContentLength: int64(len(encoded)),
		}
		rec := getBenchWriter()
		h.ServeHTTP(rec, req)
		if rec.status != http.StatusOK {
			panic(fmt.Sprintf("status %d", rec.status))
		}
		benchWriterPool.Put(rec)
	})
}

// benchContentionRespcacheHit hits the response cache directly (no host
// around it) across a spread of warm keys, so per-shard locking — not
// dispatch cost — dominates.
func benchContentionRespcacheHit(b *testing.B) {
	c := respcache.New(256, time.Hour)
	entry := &respcache.Entry{Status: 200, Header: http.Header{"Content-Type": {"application/json"}}, Body: []byte(`{"ok":true}`)}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("op\x00key-%d", i)
		c.Do(keys[i], func() (*respcache.Entry, bool) { return entry, true })
	}
	var seq atomic.Uint32
	nextKey := func() string {
		// A lock-free rotating key pick, so the bench scaffold never
		// becomes the convoy it is trying to measure.
		return keys[seq.Add(1)%uint32(len(keys))]
	}
	lowAndHigh(b, func() {
		e, hit := c.Do(nextKey(), func() (*respcache.Entry, bool) { return entry, true })
		if !hit || e == nil {
			panic("expected warm hit")
		}
	})
}

// benchContentionTelemetryRecord exercises the per-call instrument path:
// one latency Record plus one cache-hit count, the two folds every
// dispatch performs.
func benchContentionTelemetryRecord(b *testing.B) {
	m := telemetry.NewMetrics()
	lowAndHigh(b, func() {
		m.Record("Svc.Op", 42*time.Microsecond, false)
		m.RecordCached("Svc.Op")
	})
}
