package soc

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"soc/internal/crawler"
	"soc/internal/ontology"
	"soc/internal/registry"
)

// TestIntegrationQoSFeedbackLoop closes the consumer-centric loop the
// paper's §V motivates: the availability monitor probes live endpoints,
// its measurements feed the registry's QoS records, and quality-weighted
// search then prefers the dependable provider over an equally relevant
// but flaky one.
func TestIntegrationQoSFeedbackLoop(t *testing.T) {
	var flakyDown atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if flakyDown.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer flaky.Close()
	stable := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer stable.Close()

	reg := registry.NewQoS(registry.New())
	publish := func(name, endpoint string) {
		t.Helper()
		if err := reg.Publish(registry.Entry{
			Name: name, Doc: "weather forecast service", Endpoint: endpoint,
		}); err != nil {
			t.Fatal(err)
		}
	}
	publish("FlakyWeather", flaky.URL)
	publish("StableWeather", stable.URL)

	// Monitor both endpoints over rounds with injected outages.
	mon := crawler.NewMonitor(nil)
	ctx := context.Background()
	for round := 0; round < 6; round++ {
		flakyDown.Store(round%2 == 0)
		mon.CheckAll(ctx, []string{flaky.URL, stable.URL})
	}
	// Feed measurements back into the broker.
	for _, st := range mon.Stats() {
		name := "StableWeather"
		if st.URL == flaky.URL {
			name = "FlakyWeather"
		}
		if err := reg.ReportQoS(name, registry.QoS{
			Uptime: st.Uptime(), MeanRTT: st.MeanRTT(), Samples: st.Checks,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Plain keyword search cannot tell them apart...
	plain, err := reg.Search("weather forecast", 0)
	if err != nil || len(plain) != 2 {
		t.Fatalf("plain search: %v %v", plain, err)
	}
	if plain[0].Score != plain[1].Score {
		t.Fatalf("expected identical relevance, got %v vs %v", plain[0].Score, plain[1].Score)
	}
	// ...but the QoS-weighted search prefers the dependable provider.
	weighted, err := reg.SearchQoS("weather forecast", 0)
	if err != nil {
		t.Fatal(err)
	}
	if weighted[0].Entry.Name != "StableWeather" {
		t.Errorf("QoS search top = %s", weighted[0].Entry.Name)
	}
	deps := reg.Dependable(0.9)
	if len(deps) != 1 || deps[0].Entry.Name != "StableWeather" {
		t.Errorf("dependable = %v", deps)
	}
}

// TestIntegrationSemanticDiscoveryOverCatalog annotates catalog-like
// entries with concept profiles and discovers by capability rather than
// keyword.
func TestIntegrationSemanticDiscoveryOverCatalog(t *testing.T) {
	onto := ontology.NewStore()
	for _, tr := range [][3]string{
		{"MortgageApproval", ontology.SubClassOf, "FinancialDecision"},
		{"CreditScore", ontology.SubClassOf, "Score"},
		{"Ciphertext", ontology.SubClassOf, "Blob"},
	} {
		if err := onto.Add(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	reg := registry.NewSemantic(registry.New(), onto)
	entries := []struct {
		name    string
		inputs  []string
		outputs []string
	}{
		{"Mortgage", []string{"SSN", "Income"}, []string{"MortgageApproval"}},
		{"CreditScore", []string{"SSN"}, []string{"CreditScore"}},
		{"Encryption", []string{"Plaintext", "Passphrase"}, []string{"Ciphertext"}},
	}
	for _, e := range entries {
		if err := reg.Publish(registry.Entry{Name: e.name, Endpoint: "http://venus/" + e.name}); err != nil {
			t.Fatal(err)
		}
		if err := reg.Annotate(e.name, e.inputs, e.outputs); err != nil {
			t.Fatal(err)
		}
	}
	// "I have an SSN and income; I want any financial decision."
	matches, err := reg.Discover([]string{"SSN", "Income"}, []string{"FinancialDecision"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Entry.Name != "Mortgage" {
		t.Fatalf("discover = %v", matches)
	}
	if matches[0].Degree != ontology.Plugin {
		t.Errorf("degree = %s (MortgageApproval ⊂ FinancialDecision should be plugin)", matches[0].Degree)
	}
}
