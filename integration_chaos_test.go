package soc

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"soc/internal/core"
	"soc/internal/faultinject"
	"soc/internal/host"
	"soc/internal/registry"
	"soc/internal/reliability"
)

// chaosSeed fixes the fault sequence; changing it changes which calls
// fail, never whether the suite passes (the margins are wide).
const chaosSeed = 445

// chaosPlan is the acceptance scenario: 30% transient errors, latency
// spikes on a fifth of calls, and a sprinkle of payload corruption on
// the Target.Work operation.
func chaosPlan(seed int64) faultinject.Plan {
	return faultinject.Plan{
		Seed: seed,
		Rules: map[string]faultinject.Rule{
			"Target.Work": {
				ErrorRate:     0.30,
				LatencyRate:   0.20,
				Latency:       10 * time.Millisecond,
				LatencyJitter: 10 * time.Millisecond,
				CorruptRate:   0.05,
			},
		},
	}
}

// newTargetHost builds a host serving Target.Work wrapped in a fault
// injector, and returns both.
func newTargetHost(t *testing.T, seed int64) (*host.Host, *faultinject.Injector) {
	t.Helper()
	svc, err := core.NewService("Target", "http://soc.example/target", "")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:   "Work",
		Input:  []core.Param{{Name: "x", Type: core.Int}},
		Output: []core.Param{{Name: "y", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"y": in.Int("x") * 2}, nil
		},
	})
	inj, err := faultinject.New(chaosPlan(seed))
	if err != nil {
		t.Fatal(err)
	}
	h := host.New()
	h.Use(inj.Middleware())
	// The idempotent-response cache rides inside the injector on every
	// chaos host. Work is not declared idempotent, so requests bypass it —
	// the suite proves the cache's presence never disturbs fault handling.
	h.UseResponseCache(64, time.Minute)
	h.MustMount(svc)
	return h, inj
}

// TestIntegrationChaosCachedIdempotent puts the response cache under
// fault injection with an operation that IS declared idempotent. The
// cache sits inside the injector, so injected errors short-circuit
// before it and corruption happens after it: only clean handler output
// is ever stored. The resilient client's retries then land on cache
// hits — the backend does each distinct computation exactly once no
// matter how many injected faults force replays.
func TestIntegrationChaosCachedIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is tier-2; skipped with -short")
	}
	const (
		calls    = 200
		distinct = 10
	)
	var handlerCalls atomic.Int64
	svc, err := core.NewService("Target", "http://soc.example/target", "")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:       "Work",
		Idempotent: true,
		Input:      []core.Param{{Name: "x", Type: core.Int}},
		Output:     []core.Param{{Name: "y", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			handlerCalls.Add(1)
			return core.Values{"y": in.Int("x") * 2}, nil
		},
	})
	inj, err := faultinject.New(chaosPlan(chaosSeed + 3))
	if err != nil {
		t.Fatal(err)
	}
	h := host.New()
	h.Use(inj.Middleware())
	cache := h.UseResponseCache(64, time.Minute)
	h.MustMount(svc)
	srv := httptest.NewServer(h)
	defer srv.Close()

	rc, err := host.NewResilientClient(host.Policy{
		Timeout: 2 * time.Second,
		Retry: reliability.RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		},
	}, srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	successes := 0
	for i := 0; i < calls; i++ {
		x := i % distinct
		out, err := rc.Call(context.Background(), "Target", "Work", core.Values{"x": x})
		if err != nil {
			continue
		}
		if out["y"] != float64(2*x) {
			t.Fatalf("call %d: wrong answer %v (corruption reached the cache)", i, out["y"])
		}
		successes++
	}
	if min := calls * 99 / 100; successes < min {
		t.Errorf("%d/%d successes under faults, want >= %d", successes, calls, min)
	}
	// Every injected-fault replay beyond the first clean pass per
	// distinct x must be a cache hit, not a recomputation.
	if got := handlerCalls.Load(); got != distinct {
		t.Errorf("handler ran %d times for %d distinct inputs, want exactly %d (cache absorbed replays)",
			got, distinct, distinct)
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Error("cache never served a hit under chaos")
	}
}

// TestIntegrationChaosResilientVsNaive is the chaos acceptance suite:
// three replicas of a real service — two injected with 30% transient
// errors plus latency spikes, one fully down — behind a ResilientClient
// with health-aware failover, versus a bare host.Client against a single
// faulty replica. The resilient stack must sustain >= 99% success while
// the naive client fails >= 20% of its calls, deterministically per seed.
func TestIntegrationChaosResilientVsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is tier-2; skipped with -short")
	}
	const calls = 300
	ctx := context.Background()

	// --- Naive baseline: one faulty replica, no resilience. ---
	naiveHost, _ := newTargetHost(t, chaosSeed)
	naiveSrv := httptest.NewServer(naiveHost)
	defer naiveSrv.Close()
	naive := host.NewClient(naiveSrv.URL)
	naiveFailures := 0
	for i := 0; i < calls; i++ {
		if _, err := naive.Call(ctx, "Target", "Work", core.Values{"x": i}); err != nil {
			naiveFailures++
		}
	}
	if min := calls * 20 / 100; naiveFailures < min {
		t.Errorf("naive client failed %d/%d calls, want >= %d under 30%% fault rate",
			naiveFailures, calls, min)
	}

	// --- Resilient stack: 2 faulty live replicas + 1 fully down. ---
	hostA, injA := newTargetHost(t, chaosSeed+1)
	srvA := httptest.NewServer(hostA)
	defer srvA.Close()
	hostC, injC := newTargetHost(t, chaosSeed+2)
	srvC := httptest.NewServer(hostC)
	defer srvC.Close()
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // connection refused from the first byte

	// Discovery side: each replica is a registry entry; health probes
	// feed observed QoS so search prefers live endpoints.
	qr := registry.NewQoS(registry.New())
	replicaEntry := map[string]string{
		srvA.URL: "TargetA",
		down.URL: "TargetB",
		srvC.URL: "TargetC",
	}
	for url, name := range replicaEntry {
		if err := qr.Publish(registry.Entry{Name: name, Doc: "chaos target replica", Endpoint: url}); err != nil {
			t.Fatal(err)
		}
	}

	policy := host.Policy{
		Timeout: 2 * time.Second,
		Retry: reliability.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
		},
		BreakerThreshold: 8,
		BreakerCooldown:  50 * time.Millisecond,
		MaxConcurrent:    32,
	}
	// Down replica in the middle so failover hops across it and the
	// demotion skip is observable.
	rc, err := host.NewResilientClient(policy, srvA.URL, down.URL, srvC.URL)
	if err != nil {
		t.Fatal(err)
	}
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	if err := rc.StartHealth(hctx, reliability.HealthCheckerConfig{
		Interval: 25 * time.Millisecond,
		OnProbe: func(replica string, up bool, rtt time.Duration) {
			_ = qr.ObserveProbe(replicaEntry[replica], up, rtt)
		},
	}); err != nil {
		t.Fatal(err)
	}
	defer rc.StopHealth()
	rc.Health().CheckNow(ctx) // deterministic: demote the dead replica up front

	successes := 0
	for i := 0; i < calls; i++ {
		out, err := rc.Call(ctx, "Target", "Work", core.Values{"x": i})
		if err != nil {
			continue
		}
		if out["y"] != float64(2*i) {
			t.Fatalf("call %d: wrong answer %v (corruption leaked through)", i, out["y"])
		}
		successes++
	}
	if min := calls * 99 / 100; successes < min {
		t.Errorf("resilient client: %d/%d successes, want >= %d (injected: A=%s C=%s)",
			successes, calls, min, injA, injC)
	}

	// The reliability stack must actually have been exercised.
	attempts, failovers, skipped, _ := rc.Counters()
	if attempts <= calls {
		t.Errorf("attempts = %d over %d calls: faults were never retried", attempts, calls)
	}
	if failovers == 0 {
		t.Error("failover never hopped replicas under 30% faults")
	}
	if skipped == 0 {
		t.Error("demoted dead replica was never skipped")
	}
	probes, demotions, _ := rc.Health().Counters()
	if probes == 0 || demotions == 0 {
		t.Errorf("health counters: probes=%d demotions=%d, want both > 0", probes, demotions)
	}
	if rc.Health().IsHealthy(down.URL) {
		t.Error("dead replica still classified healthy")
	}

	// Discovery prefers live endpoints after the QoS feed.
	dependable := qr.Dependable(0.9)
	names := map[string]bool{}
	for _, m := range dependable {
		names[m.Entry.Name] = true
	}
	if !names["TargetA"] || !names["TargetC"] || names["TargetB"] {
		t.Errorf("Dependable(0.9) = %v, want live replicas only", names)
	}

	// And the healthz endpoint the checker probes is real JSON with
	// per-service status.
	resp, err := http.Get(srvA.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var report struct {
		Status   string                     `json:"status"`
		Services map[string]json.RawMessage `json:"services"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if report.Status != "ok" || report.Services["Target"] == nil {
		t.Errorf("healthz report = %+v", report)
	}
}

// TestIntegrationChaosGracefulDegradation drives every replica into the
// ground and checks the fallback keeps answering with a degraded result.
func TestIntegrationChaosGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is tier-2; skipped with -short")
	}
	down1 := httptest.NewServer(http.NotFoundHandler())
	down1.Close()
	down2 := httptest.NewServer(http.NotFoundHandler())
	down2.Close()

	cache := core.Values{"y": float64(-1), "cached": true}
	policy := host.Policy{
		Timeout: time.Second,
		Retry: reliability.RetryPolicy{
			MaxAttempts: 2,
			Sleep:       func(context.Context, time.Duration) error { return nil },
		},
		Fallback: func(context.Context, string, string, core.Values) (core.Values, error) {
			return cache, nil
		},
	}
	rc, err := host.NewResilientClient(policy, down1.URL, down2.URL)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rc.Call(context.Background(), "Target", "Work", core.Values{"x": 1})
	if err != nil {
		t.Fatalf("fallback did not mask total outage: %v", err)
	}
	if out["cached"] != true {
		t.Errorf("out = %v, want the cached degraded answer", out)
	}
	_, _, _, fallbacks := rc.Counters()
	if fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", fallbacks)
	}
}
