package soc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"soc/internal/cloud"
	"soc/internal/core"
	"soc/internal/faultinject"
	"soc/internal/host"
	"soc/internal/registry"
	"soc/internal/reliability"
	"soc/internal/vtime"
)

// chaosSeed fixes the fault sequence; changing it changes which calls
// fail, never whether the suite passes (the margins are wide).
const chaosSeed = 445

// chaosPlan is the acceptance scenario: 30% transient errors, latency
// spikes on a fifth of calls, and a sprinkle of payload corruption on
// the Target.Work operation.
func chaosPlan(seed int64) faultinject.Plan {
	return faultinject.Plan{
		Seed: seed,
		Rules: map[string]faultinject.Rule{
			"Target.Work": {
				ErrorRate:     0.30,
				LatencyRate:   0.20,
				Latency:       10 * time.Millisecond,
				LatencyJitter: 10 * time.Millisecond,
				CorruptRate:   0.05,
			},
		},
	}
}

// newTargetHost builds a host serving Target.Work wrapped in a fault
// injector, and returns both.
func newTargetHost(t *testing.T, seed int64) (*host.Host, *faultinject.Injector) {
	t.Helper()
	svc, err := core.NewService("Target", "http://soc.example/target", "")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:   "Work",
		Input:  []core.Param{{Name: "x", Type: core.Int}},
		Output: []core.Param{{Name: "y", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"y": in.Int("x") * 2}, nil
		},
	})
	inj, err := faultinject.New(chaosPlan(seed))
	if err != nil {
		t.Fatal(err)
	}
	h := host.New()
	h.Use(inj.Middleware())
	// The idempotent-response cache rides inside the injector on every
	// chaos host. Work is not declared idempotent, so requests bypass it —
	// the suite proves the cache's presence never disturbs fault handling.
	h.UseResponseCache(64, time.Minute)
	h.MustMount(svc)
	return h, inj
}

// TestIntegrationChaosCachedIdempotent puts the response cache under
// fault injection with an operation that IS declared idempotent. The
// cache sits inside the injector, so injected errors short-circuit
// before it and corruption happens after it: only clean handler output
// is ever stored. The resilient client's retries then land on cache
// hits — the backend does each distinct computation exactly once no
// matter how many injected faults force replays.
func TestIntegrationChaosCachedIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is tier-2; skipped with -short")
	}
	const (
		calls    = 200
		distinct = 10
	)
	var handlerCalls atomic.Int64
	svc, err := core.NewService("Target", "http://soc.example/target", "")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:       "Work",
		Idempotent: true,
		Input:      []core.Param{{Name: "x", Type: core.Int}},
		Output:     []core.Param{{Name: "y", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			handlerCalls.Add(1)
			return core.Values{"y": in.Int("x") * 2}, nil
		},
	})
	inj, err := faultinject.New(chaosPlan(chaosSeed + 3))
	if err != nil {
		t.Fatal(err)
	}
	h := host.New()
	h.Use(inj.Middleware())
	cache := h.UseResponseCache(64, time.Minute)
	h.MustMount(svc)
	srv := httptest.NewServer(h)
	defer srv.Close()

	rc, err := host.NewResilientClient(host.Policy{
		Timeout: 2 * time.Second,
		Retry: reliability.RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		},
	}, srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	successes := 0
	for i := 0; i < calls; i++ {
		x := i % distinct
		out, err := rc.Call(context.Background(), "Target", "Work", core.Values{"x": x})
		if err != nil {
			continue
		}
		if out["y"] != float64(2*x) {
			t.Fatalf("call %d: wrong answer %v (corruption reached the cache)", i, out["y"])
		}
		successes++
	}
	if min := calls * 99 / 100; successes < min {
		t.Errorf("%d/%d successes under faults, want >= %d", successes, calls, min)
	}
	// Every injected-fault replay beyond the first clean pass per
	// distinct x must be a cache hit, not a recomputation.
	if got := handlerCalls.Load(); got != distinct {
		t.Errorf("handler ran %d times for %d distinct inputs, want exactly %d (cache absorbed replays)",
			got, distinct, distinct)
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Error("cache never served a hit under chaos")
	}
}

// TestIntegrationChaosResilientVsNaive is the chaos acceptance suite:
// three replicas of a real service — two injected with 30% transient
// errors plus latency spikes, one fully down — behind a ResilientClient
// with health-aware failover, versus a bare host.Client against a single
// faulty replica. The resilient stack must sustain >= 99% success while
// the naive client fails >= 20% of its calls, deterministically per seed.
func TestIntegrationChaosResilientVsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is tier-2; skipped with -short")
	}
	const calls = 300
	ctx := context.Background()

	// --- Naive baseline: one faulty replica, no resilience. ---
	naiveHost, _ := newTargetHost(t, chaosSeed)
	naiveSrv := httptest.NewServer(naiveHost)
	defer naiveSrv.Close()
	naive := host.NewClient(naiveSrv.URL)
	naiveFailures := 0
	for i := 0; i < calls; i++ {
		if _, err := naive.Call(ctx, "Target", "Work", core.Values{"x": i}); err != nil {
			naiveFailures++
		}
	}
	if min := calls * 20 / 100; naiveFailures < min {
		t.Errorf("naive client failed %d/%d calls, want >= %d under 30%% fault rate",
			naiveFailures, calls, min)
	}

	// --- Resilient stack: 2 faulty live replicas + 1 fully down. ---
	hostA, injA := newTargetHost(t, chaosSeed+1)
	srvA := httptest.NewServer(hostA)
	defer srvA.Close()
	hostC, injC := newTargetHost(t, chaosSeed+2)
	srvC := httptest.NewServer(hostC)
	defer srvC.Close()
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // connection refused from the first byte

	// Discovery side: each replica is a registry entry; health probes
	// feed observed QoS so search prefers live endpoints.
	qr := registry.NewQoS(registry.New())
	replicaEntry := map[string]string{
		srvA.URL: "TargetA",
		down.URL: "TargetB",
		srvC.URL: "TargetC",
	}
	for url, name := range replicaEntry {
		if err := qr.Publish(registry.Entry{Name: name, Doc: "chaos target replica", Endpoint: url}); err != nil {
			t.Fatal(err)
		}
	}

	policy := host.Policy{
		Timeout: 2 * time.Second,
		Retry: reliability.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
		},
		BreakerThreshold: 8,
		BreakerCooldown:  50 * time.Millisecond,
		MaxConcurrent:    32,
	}
	// Down replica in the middle so failover hops across it and the
	// demotion skip is observable.
	rc, err := host.NewResilientClient(policy, srvA.URL, down.URL, srvC.URL)
	if err != nil {
		t.Fatal(err)
	}
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	if err := rc.StartHealth(hctx, reliability.HealthCheckerConfig{
		Interval: 25 * time.Millisecond,
		OnProbe: func(replica string, up bool, rtt time.Duration) {
			_ = qr.ObserveProbe(replicaEntry[replica], up, rtt)
		},
	}); err != nil {
		t.Fatal(err)
	}
	defer rc.StopHealth()
	rc.Health().CheckNow(ctx) // deterministic: demote the dead replica up front

	successes := 0
	for i := 0; i < calls; i++ {
		out, err := rc.Call(ctx, "Target", "Work", core.Values{"x": i})
		if err != nil {
			continue
		}
		if out["y"] != float64(2*i) {
			t.Fatalf("call %d: wrong answer %v (corruption leaked through)", i, out["y"])
		}
		successes++
	}
	if min := calls * 99 / 100; successes < min {
		t.Errorf("resilient client: %d/%d successes, want >= %d (injected: A=%s C=%s)",
			successes, calls, min, injA, injC)
	}

	// The reliability stack must actually have been exercised.
	attempts, failovers, skipped, _ := rc.Counters()
	if attempts <= calls {
		t.Errorf("attempts = %d over %d calls: faults were never retried", attempts, calls)
	}
	if failovers == 0 {
		t.Error("failover never hopped replicas under 30% faults")
	}
	if skipped == 0 {
		t.Error("demoted dead replica was never skipped")
	}
	probes, demotions, _ := rc.Health().Counters()
	if probes == 0 || demotions == 0 {
		t.Errorf("health counters: probes=%d demotions=%d, want both > 0", probes, demotions)
	}
	if rc.Health().IsHealthy(down.URL) {
		t.Error("dead replica still classified healthy")
	}

	// Discovery prefers live endpoints after the QoS feed.
	dependable := qr.Dependable(0.9)
	names := map[string]bool{}
	for _, m := range dependable {
		names[m.Entry.Name] = true
	}
	if !names["TargetA"] || !names["TargetC"] || names["TargetB"] {
		t.Errorf("Dependable(0.9) = %v, want live replicas only", names)
	}

	// And the healthz endpoint the checker probes is real JSON with
	// per-service status.
	resp, err := http.Get(srvA.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var report struct {
		Status   string                     `json:"status"`
		Services map[string]json.RawMessage `json:"services"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if report.Status != "ok" || report.Services["Target"] == nil {
		t.Errorf("healthz report = %+v", report)
	}
}

// TestIntegrationChaosGracefulDegradation drives every replica into the
// ground and checks the fallback keeps answering with a degraded result.
func TestIntegrationChaosGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is tier-2; skipped with -short")
	}
	down1 := httptest.NewServer(http.NotFoundHandler())
	down1.Close()
	down2 := httptest.NewServer(http.NotFoundHandler())
	down2.Close()

	cache := core.Values{"y": float64(-1), "cached": true}
	policy := host.Policy{
		Timeout: time.Second,
		Retry: reliability.RetryPolicy{
			MaxAttempts: 2,
			Sleep:       func(context.Context, time.Duration) error { return nil },
		},
		Fallback: func(context.Context, string, string, core.Values) (core.Values, error) {
			return cache, nil
		},
	}
	rc, err := host.NewResilientClient(policy, down1.URL, down2.URL)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rc.Call(context.Background(), "Target", "Work", core.Values{"x": 1})
	if err != nil {
		t.Fatalf("fallback did not mask total outage: %v", err)
	}
	if out["cached"] != true {
		t.Errorf("out = %v, want the cached degraded answer", out)
	}
	_, _, _, fallbacks := rc.Counters()
	if fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", fallbacks)
	}
}

// aliveTransport models a replica process that can be killed mid-run:
// alive it serves through the wrapped transport, dead it refuses
// connections like a closed listener.
type aliveTransport struct {
	alive *atomic.Bool
	rt    http.RoundTripper
}

func (a aliveTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !a.alive.Load() {
		return nil, context.DeadlineExceeded // connection refused stand-in
	}
	return a.rt.RoundTrip(req)
}

// TestIntegrationChaosFrontDoorReplicaKill runs three replicas behind
// the cluster front door with lease-driven membership, then kills one
// cold mid-run (it refuses connections and stops heartbeating). The
// door's failover retry must keep client success at 99% or better, and
// once the dead replica's lease expires it must leave the rotation and
// never be picked again.
func TestIntegrationChaosFrontDoorReplicaKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is tier-2; skipped with -short")
	}
	clock := vtime.NewVirtual(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	const lease = 5 * time.Second
	reg := registry.New(registry.WithLease(lease), registry.WithClock(clock.Now))
	fd := cloud.NewFrontDoor(cloud.FrontDoorConfig{Clock: clock, Seed: chaosSeed})

	type liveReplica struct {
		name  string
		alive *atomic.Bool
		rep   *cloud.Replica
	}
	newCalcHost := func() *host.Host {
		svc, err := core.NewService("Calc", "http://soc.example/calc", "")
		if err != nil {
			t.Fatal(err)
		}
		svc.MustAddOperation(core.Operation{
			Name:   "Add",
			Input:  []core.Param{{Name: "a", Type: core.Int}, {Name: "b", Type: core.Int}},
			Output: []core.Param{{Name: "sum", Type: core.Int}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				return core.Values{"sum": in.Int("a") + in.Int("b")}, nil
			},
		})
		h := host.New()
		h.MustMount(svc)
		return h
	}
	var replicas []*liveReplica
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("replica-%d", i)
		h := newCalcHost()
		lr := &liveReplica{name: name, alive: &atomic.Bool{}}
		lr.alive.Store(true)
		lr.rep = cloud.NewReplica(name, aliveTransport{alive: lr.alive, rt: cloud.HandlerTransport(h)}, 0)
		if err := reg.Publish(registry.Entry{Name: name, Category: "replica", Endpoint: "local://" + name}); err != nil {
			t.Fatal(err)
		}
		fd.Add(lr.rep)
		replicas = append(replicas, lr)
	}
	victim := replicas[2]

	ctx := vtime.WithClock(context.Background(), clock)
	call := func() int {
		req := httptest.NewRequest(http.MethodGet,
			"http://cluster/services/Calc/invoke/Add?a=19&b=23", nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		fd.ServeHTTP(rec, req)
		return rec.Code
	}
	sync := func() {
		// Heartbeat the living, then reconcile the rotation against the
		// live lease view — what soccluster's heartbeat goroutines and
		// autoscaler Tick do each second.
		for _, lr := range replicas {
			if lr.alive.Load() {
				if err := reg.Heartbeat(lr.name); err != nil {
					t.Fatalf("heartbeat %s: %v", lr.name, err)
				}
			}
		}
		if _, _, err := fd.SyncMembership(reg.ByCategory("replica"), nil); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}

	// 40 virtual seconds at 50 req/s; the kill lands at t=15s, the lease
	// runs out by t≈20s.
	const total, perSecond = 2000, 50
	ok := 0
	var picksAtExpiry uint64
	expired := false
	for i := 0; i < total; i++ {
		tVirtual := time.Duration(i) * (time.Second / perSecond)
		if i == total*15/40 {
			victim.alive.Store(false) // the process dies cold
		}
		if code := call(); code == http.StatusOK {
			ok++
		}
		clock.Advance(time.Second / perSecond)
		if (i+1)%perSecond == 0 {
			sync()
		}
		if !expired && tVirtual > 15*time.Second+lease+2*time.Second {
			if fd.Replica(victim.name) != nil {
				t.Fatalf("dead replica still in rotation %v after its last heartbeat", lease)
			}
			picksAtExpiry = victim.rep.Picks()
			expired = true
		}
	}
	if !expired {
		t.Fatal("run never reached the lease-expiry checkpoint")
	}
	if got := victim.rep.Picks(); got != picksAtExpiry {
		t.Errorf("dead replica picked after lease expiry: picks %d -> %d", picksAtExpiry, got)
	}
	if fd.Replica(victim.name) != nil {
		t.Error("dead replica re-entered the rotation")
	}
	if len(fd.Replicas()) != 2 {
		t.Errorf("rotation has %d replicas at end, want 2", len(fd.Replicas()))
	}
	if rate := float64(ok) / float64(total); rate < 0.99 {
		t.Errorf("success rate %.4f < 0.99 (ok=%d of %d): failover did not cover the kill", rate, ok, total)
	}
	st := fd.Stats()
	if st.Admitted != st.Completed+st.Errored+st.ShedBusy {
		t.Errorf("ledger does not close: %+v", st)
	}
}
