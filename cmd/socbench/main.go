// Command socbench regenerates every table and figure of the paper plus
// the ablation studies:
//
//	socbench -exp all
//	socbench -exp fig3
//	socbench -list
//
// Experiments: fig1 fig2 fig3 fig4 table4 table5 acm crawl bindings
// workflow state cloud dependability msgplane.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"soc/internal/experiments"
)

type experiment struct {
	name string
	desc string
	run  func(ctx context.Context, dataDir string) (string, error)
}

func catalog() []experiment {
	return []experiment{
		{"fig1", "web robotics programming environment (Figure 1)",
			func(ctx context.Context, _ string) (string, error) { return experiments.Figure1(ctx, 3) }},
		{"fig2", "two-distance greedy vs baselines (Figure 2)",
			func(ctx context.Context, _ string) (string, error) {
				out, _, err := experiments.Figure2(ctx, experiments.DefaultFigure2)
				return out, err
			}},
		{"fig3", "Collatz speedup and efficiency, 1-32 cores (Figure 3)",
			func(context.Context, string) (string, error) {
				out, _, err := experiments.Figure3(experiments.DefaultFigure3)
				return out, err
			}},
		{"fig4", "account application web app end-to-end (Figure 4)",
			func(_ context.Context, dataDir string) (string, error) { return experiments.Figure4(dataDir) }},
		{"table4", "enrollment history + Figure 5 plot (Table 4)",
			func(context.Context, string) (string, error) { return experiments.Table4() }},
		{"table5", "student evaluation scores (Table 5)",
			func(context.Context, string) (string, error) { return experiments.Table5() }},
		{"acm", "ACM CS topic coverage (Tables 1-3)",
			func(context.Context, string) (string, error) { return experiments.TablesACM() }},
		{"textbook", "textbook chapter coverage (Section VI)",
			func(context.Context, string) (string, error) { return experiments.Textbook() }},
		{"crawl", "service crawler + availability monitor (A1)",
			func(ctx context.Context, _ string) (string, error) { return experiments.Crawl(ctx) }},
		{"bindings", "SOAP vs REST binding overhead (A2)",
			func(context.Context, string) (string, error) { return experiments.Bindings(0) }},
		{"workflow", "workflow orchestration overhead (A3)",
			func(context.Context, string) (string, error) { return experiments.WorkflowOverhead(0) }},
		{"state", "cache hit-ratio sweep (A4)",
			func(context.Context, string) (string, error) { return experiments.StateManagement(0) }},
		{"cloud", "autoscaler elasticity (A5)",
			func(context.Context, string) (string, error) { return experiments.CloudScale() }},
		{"dependability", "fault injection with breaker + failover (A6)",
			func(context.Context, string) (string, error) { return experiments.Dependability() }},
		{"msgplane", "hot-path message plane: codec + response cache (A7)",
			func(context.Context, string) (string, error) { return experiments.MessagePlane(0) }},
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := catalog()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-14s %s\n", e.name, e.desc)
		}
		return
	}
	dataDir, err := os.MkdirTemp("", "socbench-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "socbench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dataDir)

	ctx := context.Background()
	failed := 0
	ran := 0
	for _, e := range exps {
		if *exp != "all" && e.name != *exp {
			continue
		}
		ran++
		fmt.Printf("==== %s — %s ====\n\n", e.name, e.desc)
		out, err := e.run(ctx, dataDir)
		fmt.Println(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "socbench: %s FAILED: %v\n\n", e.name, err)
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "socbench: unknown experiment %q; valid: %s all\n",
			*exp, strings.Join(names(exps), " "))
		os.Exit(2)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func names(exps []experiment) []string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.name
	}
	return out
}
