// Command socload drives a service host with an open-loop,
// coordinated-omission-safe workload (see soc/internal/loadgen): a fixed
// arrival schedule at the offered rate, latency measured from each
// request's scheduled arrival, and a log-bucketed histogram reporting
// p50/p99/p99.9 alongside achieved-vs-offered throughput.
//
//	socload -rate 500 -duration 5s                  # in-process host
//	socload -rate 500 -duration 5s -target http://localhost:8080
//	socload -virtual -rate 2000 -duration 2s -stall 100ms -assert-open-loop
//
// With no -target, socload builds an in-process host (Encryption +
// Echo services behind the idempotent-response cache) and dispatches
// through ServeHTTP directly — the simtest-style transport, with no
// sockets to perturb the measurement. -virtual switches the whole run
// onto a deterministic virtual clock: a two-minute schedule completes
// instantly and replays identically, which is what `make load-smoke`
// gates in CI. -stall injects a one-off server stall mid-schedule; with
// -assert-open-loop the command exits nonzero unless the full schedule
// was still offered and the stall surfaced in the latency tail — the
// open-loop property itself, checked end to end.
//
// The workload mix is three request shapes, weighted by -mix:
//
//	cached  GET REST invoke of an idempotent operation (response-cache hit)
//	rest    GET REST invoke of a non-idempotent operation (full dispatch)
//	soap    POST SOAP envelope dispatch
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"soc/internal/core"
	"soc/internal/host"
	"soc/internal/loadgen"
	"soc/internal/rest"
	"soc/internal/services"
	"soc/internal/soap"
	"soc/internal/vtime"
)

func main() {
	var (
		rate     = flag.Float64("rate", 200, "offered arrival rate in `req/s`")
		duration = flag.Duration("duration", 5*time.Second, "schedule horizon")
		workers  = flag.Int("workers", 0, "issuing goroutines (0 = 8*GOMAXPROCS; virtual runs are single-worker)")
		target   = flag.String("target", "", "base `URL` of a live host; empty drives an in-process host")
		mix      = flag.String("mix", "cached=50,rest=30,soap=20", "workload `weights`")
		stall    = flag.Duration("stall", 0, "inject one server stall of this length mid-schedule (in-process only)")
		virtual  = flag.Bool("virtual", false, "run on a deterministic virtual clock (in-process only)")
		assertOL = flag.Bool("assert-open-loop", false, "exit nonzero unless the full schedule was offered and any injected stall shows in the tail")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request client `deadline` for -target runs; a saturation study sets this to the latency the caller would actually tolerate")
	)
	flag.Parse()
	if err := run(*rate, *duration, *workers, *target, *mix, *stall, *virtual, *assertOL, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "socload:", err)
		os.Exit(1)
	}
}

func run(rate float64, duration time.Duration, workers int, target, mix string, stall time.Duration, virtual, assertOL bool, timeout time.Duration) error {
	weights, err := parseMix(mix)
	if err != nil {
		return err
	}
	if virtual && target != "" {
		return fmt.Errorf("-virtual requires the in-process host (drop -target)")
	}
	if stall > 0 && target != "" {
		return fmt.Errorf("-stall requires the in-process host (drop -target)")
	}
	var clock vtime.Clock = vtime.Real{}
	if virtual {
		clock = vtime.NewVirtual(time.Unix(0, 0))
	}

	var ops workloadOps
	if target == "" {
		scheduled := int(rate * duration.Seconds())
		ops, err = inprocessOps(clock, stall, scheduled)
	} else {
		ops, err = liveOps(strings.TrimRight(target, "/"), timeout)
	}
	if err != nil {
		return err
	}

	op := mixedOp(weights, ops)
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Rate: rate, Duration: duration, Workers: workers, Clock: clock,
	}, op)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	if assertOL {
		if res.Issued != res.Scheduled {
			return fmt.Errorf("open-loop violation: issued %d of %d scheduled", res.Issued, res.Scheduled)
		}
		if stall > 0 && res.Latency.Max() < stall {
			return fmt.Errorf("open-loop violation: injected %v stall but max latency is %v (stall was absorbed by the schedule)", stall, res.Latency.Max())
		}
		fmt.Println("open-loop check: full schedule offered; stall visible in tail")
	}
	// Sheds are deliberate backpressure, reported above as their own
	// outcome class; only hard errors fail the run.
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", res.Errors, res.Issued)
	}
	return nil
}

// workloadOps are the three request shapes the mix draws from.
type workloadOps struct {
	cached loadgen.Op
	rest   loadgen.Op
	soapOp loadgen.Op
}

// mixedOp rotates deterministically through the weighted shapes: request
// i takes its shape from i mod totalWeight, so a virtual-clock run
// replays the exact same request sequence.
func mixedOp(w map[string]int, ops workloadOps) loadgen.Op {
	total := w["cached"] + w["rest"] + w["soap"]
	cachedUpto, restUpto := w["cached"], w["cached"]+w["rest"]
	var seq atomic.Int64
	return func(ctx context.Context) error {
		i := int(seq.Add(1)-1) % total
		switch {
		case i < cachedUpto:
			return ops.cached(ctx)
		case i < restUpto:
			return ops.rest(ctx)
		default:
			return ops.soapOp(ctx)
		}
	}
}

func parseMix(s string) (map[string]int, error) {
	w := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want name=weight)", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", part)
		}
		switch name {
		case "cached", "rest", "soap":
			w[name] = n
		default:
			return nil, fmt.Errorf("unknown -mix shape %q (want cached, rest or soap)", name)
		}
	}
	if w["cached"]+w["rest"]+w["soap"] <= 0 {
		return nil, fmt.Errorf("-mix has zero total weight")
	}
	return w, nil
}

// inprocessOps builds the simtest-style transport: a host with the
// Encryption and Echo services behind the response cache, driven through
// ServeHTTP with no sockets. An optional stall middleware sleeps once,
// at the request closest to the middle of the schedule, to demonstrate
// that an open-loop harness keeps offering load through a server pause.
func inprocessOps(clock vtime.Clock, stall time.Duration, scheduled int) (workloadOps, error) {
	encSvc, err := services.NewEncryption()
	if err != nil {
		return workloadOps{}, err
	}
	sealed, err := encSvc.Invoke(context.Background(), "Encrypt", core.Values{
		"passphrase": "correct horse battery", "plaintext": "the quick brown fox",
	})
	if err != nil {
		return workloadOps{}, err
	}
	echo, err := echoService()
	if err != nil {
		return workloadOps{}, err
	}
	h := host.New()
	h.MustMount(encSvc)
	h.MustMount(echo)
	// The stall middleware goes in first — outermost — so it counts and
	// can pause every request, including response-cache hits; installed
	// inside the cache it would only ever see misses.
	if stall > 0 {
		stallAt := int64(scheduled / 2)
		if stallAt < 1 {
			stallAt = 1
		}
		var n atomic.Int64
		h.Use(func(next rest.HandlerFunc) rest.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request, p rest.Params) {
				if n.Add(1) == stallAt {
					//soclint:ignore errdiscard a canceled stall just shortens the injected pause
					_ = clock.Sleep(r.Context(), stall)
				}
				next(w, r, p)
			}
		})
	}
	h.UseResponseCache(1024, time.Hour)

	cachedURL := "/services/Encryption/invoke/Decrypt?" + url.Values{
		"passphrase": {"correct horse battery"},
		"ciphertext": {sealed.Str("ciphertext")},
	}.Encode()
	restURL := "/services/Encryption/invoke/Encrypt?" + url.Values{
		"passphrase": {"correct horse battery"},
		"plaintext":  {"load generator payload"},
	}.Encode()
	envelope, err := soap.Encode(soap.Message{
		Operation:  "Echo",
		Namespace:  "http://soc.example/echo",
		Params:     map[string]string{"text": "socload"},
		ParamOrder: []string{"text"},
	})
	if err != nil {
		return workloadOps{}, err
	}

	get := func(target string) loadgen.Op {
		return func(ctx context.Context) error {
			req := httptest.NewRequest(http.MethodGet, target, nil).WithContext(ctx)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("GET %s: status %d", target, rec.Code)
			}
			return nil
		}
	}
	soapOp := func(ctx context.Context) error {
		req := httptest.NewRequest(http.MethodPost, "/services/Echo/soap", bytes.NewReader(envelope)).WithContext(ctx)
		req.Header.Set("Content-Type", "text/xml")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("POST /services/Echo/soap: status %d", rec.Code)
		}
		return nil
	}
	return workloadOps{cached: get(cachedURL), rest: get(restURL), soapOp: soapOp}, nil
}

// liveOps targets a running host (or cluster front door) over HTTP with
// the same three shapes. The host must serve the standard catalog
// (Encryption); shapes the host lacks fail and count as errors. A 503
// is classified as a shed — the server protecting itself — not an error.
func liveOps(base string, timeout time.Duration) (workloadOps, error) {
	client := &http.Client{Timeout: timeout}
	// One Encrypt round-trip up front produces the ciphertext the cached
	// shape replays.
	seal, err := client.Get(base + "/services/Encryption/invoke/Encrypt?" + url.Values{
		"passphrase": {"correct horse battery"},
		"plaintext":  {"the quick brown fox"},
	}.Encode())
	if err != nil {
		return workloadOps{}, fmt.Errorf("priming ciphertext: %w", err)
	}
	body, err := io.ReadAll(io.LimitReader(seal.Body, 1<<20))
	//soclint:ignore errdiscard the body is fully consumed; close failure has nothing left to affect
	_ = seal.Body.Close()
	if err != nil || seal.StatusCode != http.StatusOK {
		return workloadOps{}, fmt.Errorf("priming ciphertext: status %d err %v", seal.StatusCode, err)
	}
	ciphertext, err := extractJSONField(body, "ciphertext")
	if err != nil {
		return workloadOps{}, fmt.Errorf("priming ciphertext: %w", err)
	}
	cachedURL := base + "/services/Encryption/invoke/Decrypt?" + url.Values{
		"passphrase": {"correct horse battery"},
		"ciphertext": {ciphertext},
	}.Encode()
	restURL := base + "/services/Encryption/invoke/Encrypt?" + url.Values{
		"passphrase": {"correct horse battery"},
		"plaintext":  {"load generator payload"},
	}.Encode()
	envelope, err := soap.Encode(soap.Message{
		Operation: "Encrypt",
		Namespace: "http://soc.asu.example/wsrepository/encryption",
		Params: map[string]string{
			"passphrase": "correct horse battery",
			"plaintext":  "load generator payload",
		},
		ParamOrder: []string{"passphrase", "plaintext"},
	})
	if err != nil {
		return workloadOps{}, err
	}
	get := func(target string) loadgen.Op {
		return func(ctx context.Context) error {
			//soclint:ignore tracepropagate the load generator measures the raw server path; call-plane tracing would tax every request with the overhead being measured
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
			if err != nil {
				return err
			}
			return doOK(client, req)
		}
	}
	soapOp := func(ctx context.Context) error {
		//soclint:ignore tracepropagate the load generator measures the raw server path; call-plane tracing would tax every request with the overhead being measured
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/services/Encryption/soap", bytes.NewReader(envelope))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "text/xml")
		return doOK(client, req)
	}
	return workloadOps{cached: get(cachedURL), rest: get(restURL), soapOp: soapOp}, nil
}

func doOK(client *http.Client, req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	//soclint:ignore errdiscard the response is drained for connection reuse; its content is irrelevant
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	//soclint:ignore errdiscard nothing actionable on close failure after a drained body
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, loadgen.ErrShed)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	return nil
}

// extractJSONField pulls a string field out of a flat JSON object
// without committing to the response document's full shape.
func extractJSONField(body []byte, field string) (string, error) {
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		return "", err
	}
	if v, ok := doc[field].(string); ok && v != "" {
		return v, nil
	}
	// Invoke responses may nest outputs one level down.
	for _, v := range doc {
		if m, ok := v.(map[string]any); ok {
			if s, ok := m[field].(string); ok && s != "" {
				return s, nil
			}
		}
	}
	return "", fmt.Errorf("no %q field in response", field)
}

// echoService is the minimal SOAP-dispatch target.
func echoService() (*core.Service, error) {
	echo, err := core.NewService("Echo", "http://soc.example/echo", "echo")
	if err != nil {
		return nil, err
	}
	err = echo.AddOperation(core.Operation{
		Name:   "Echo",
		Input:  []core.Param{{Name: "text", Type: core.String}},
		Output: []core.Param{{Name: "echo", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"echo": in.Str("text")}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return echo, nil
}
