// Command mazesim is the CSE101 maze environment on the command line:
// generate a maze, run a navigation algorithm or a drop-down command
// program against it, and print the result.
//
//	mazesim -size 15 -seed 7 -alg two-distance-greedy
//	mazesim -size 9 -program prog.txt
//	mazesim -size 11 -dot             # print the Figure 2 FSM
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"soc/internal/maze"
	"soc/internal/nav"
	"soc/internal/robot"
)

func main() {
	size := flag.Int("size", 15, "maze size (square)")
	seed := flag.Int64("seed", 1, "generation seed")
	gen := flag.String("gen", "dfs", "generator: dfs|prim|division")
	alg := flag.String("alg", nav.AlgTwoDistance, "navigation algorithm: "+strings.Join(nav.Algorithms(), "|"))
	programPath := flag.String("program", "", "run a drop-down command program file instead of an algorithm")
	budget := flag.Int("budget", 50000, "step budget")
	dot := flag.Bool("dot", false, "print the two-distance FSM in DOT and exit")
	flag.Parse()

	if *dot {
		fmt.Print(nav.TwoDistanceDOT())
		return
	}
	var algorithm maze.Algorithm
	switch *gen {
	case "dfs":
		algorithm = maze.DFS
	case "prim":
		algorithm = maze.Prim
	case "division":
		algorithm = maze.Division
	default:
		log.Fatalf("mazesim: unknown generator %q", *gen)
	}
	m, err := maze.Generate(*size, *size, algorithm, *seed)
	if err != nil {
		log.Fatalf("mazesim: %v", err)
	}
	r, err := robot.New(m)
	if err != nil {
		log.Fatalf("mazesim: %v", err)
	}
	fmt.Println(m.String())

	ctx := context.Background()
	if *programPath != "" {
		src, err := os.ReadFile(*programPath)
		if err != nil {
			log.Fatalf("mazesim: %v", err)
		}
		prog, err := robot.ParseProgram(string(src))
		if err != nil {
			log.Fatalf("mazesim: %v", err)
		}
		runErr := prog.Run(ctx, r, *budget)
		fmt.Printf("program: atGoal=%v steps=%d turns=%d bumps=%d", r.AtGoal(), r.Steps(), r.Turns(), r.Bumps())
		if runErr != nil {
			fmt.Printf(" error=%v", runErr)
		}
		fmt.Println()
		return
	}

	ctrl, err := nav.New(*alg, *seed)
	if err != nil {
		log.Fatalf("mazesim: %v", err)
	}
	ep, err := nav.Run(ctx, ctrl, r, *budget)
	if err != nil {
		log.Fatalf("mazesim: %v", err)
	}
	fmt.Printf("%s: solved=%v steps=%d (optimal %d) turns=%d visited=%d bumps=%d\n",
		ep.Algorithm, ep.Solved, ep.Steps, ep.Optimal, ep.Turns, ep.Visited, ep.Bumps)
}
