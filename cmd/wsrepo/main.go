// Command wsrepo hosts the ASU repository of services and applications:
// the full sample-service catalog (SOAP + REST + WSDL for each), the
// Robot-as-a-Service environment, the service registry with keyword
// search, and the Figure 4 mortgage web application, on one port.
//
//	wsrepo -addr :8080 -data ./data
//
// Then, for example:
//
//	curl http://localhost:8080/services
//	curl 'http://localhost:8080/services/Encryption?wsdl'
//	curl -X POST http://localhost:8080/services/Calc... (see README)
//	curl 'http://localhost:8080/registry/search?q=captcha'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"soc/internal/host"
	"soc/internal/mortgageapp"
	"soc/internal/registry"
	"soc/internal/rest"
	"soc/internal/robot"
	"soc/internal/services"
	"soc/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "", "data directory for account.xml (default: temp dir)")
	baseURL := flag.String("base-url", "", "advertised base URL (default: http://localhost<addr>)")
	cacheTTL := flag.Duration("cache-ttl", 30*time.Second, "idempotent-response cache TTL (0 disables the cache)")
	flag.Parse()

	if *dataDir == "" {
		tmp, err := os.MkdirTemp("", "wsrepo-*")
		if err != nil {
			log.Fatal(err)
		}
		*dataDir = tmp
		log.Printf("wsrepo: using temporary data dir %s", tmp)
	}
	if *baseURL == "" {
		*baseURL = "http://localhost" + *addr
	}

	mux, h, err := buildServer(*dataDir, *baseURL)
	if err != nil {
		log.Fatalf("wsrepo: %v", err)
	}
	if *cacheTTL > 0 {
		// Operations declared Idempotent answer repeats from the cache
		// (X-Cache: HIT); everything else bypasses it.
		h.UseResponseCache(512, *cacheTTL)
		log.Printf("wsrepo: idempotent-response cache on (512 entries, ttl %s)", *cacheTTL)
	}
	log.Printf("wsrepo: %d services mounted; listening on %s", len(h.Names()), *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}

// buildServer assembles the repository server: the service host with the
// full catalog and the robot environment, the registry API (pre-seeded
// with the catalog), and the Figure 4 web application.
func buildServer(dataDir, baseURL string) (http.Handler, *host.Host, error) {
	h := host.New()
	h.BaseURL = baseURL

	catalogSvcs, err := services.NewCatalog(dataDir)
	if err != nil {
		return nil, nil, fmt.Errorf("building catalog: %w", err)
	}
	if err := catalogSvcs.MountAll(h); err != nil {
		return nil, nil, fmt.Errorf("mounting catalog: %w", err)
	}
	robotSvc, err := robot.NewService(robot.NewSessions())
	if err != nil {
		return nil, nil, fmt.Errorf("robot service: %w", err)
	}
	if err := h.Mount(robotSvc); err != nil {
		return nil, nil, fmt.Errorf("mounting robot: %w", err)
	}

	// The registry is durable: every publish, unpublish and lease renewal
	// is fsynced to a write-ahead log under <dataDir>/registry before it
	// is acknowledged, and restarts recover the directory (snapshot plus
	// log suffix, torn tails salvaged) before re-seeding the catalog.
	regFS, err := wal.NewOSFS(filepath.Join(dataDir, "registry"))
	if err != nil {
		return nil, nil, fmt.Errorf("registry dir: %w", err)
	}
	reg, err := registry.OpenDurable(regFS, registry.DurableOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("opening registry: %w", err)
	}
	if rec := reg.Recovery(); rec.LastIndex > 0 || rec.Salvaged {
		log.Printf("wsrepo: registry recovered: %s", rec)
	}
	if err := catalogSvcs.PublishAll(reg, baseURL, "wsrepo"); err != nil {
		return nil, nil, fmt.Errorf("publishing: %w", err)
	}
	// directory.xml is the human- and tool-readable UDDI-style export of
	// the recovered directory, rewritten atomically and durably (temp
	// file, fsync, rename, directory fsync) so a crash can never leave a
	// torn export behind.
	if err := reg.SaveFile(filepath.Join(dataDir, "directory.xml")); err != nil {
		return nil, nil, fmt.Errorf("exporting directory: %w", err)
	}

	app, err := mortgageapp.New(dataDir)
	if err != nil {
		return nil, nil, fmt.Errorf("mortgage app: %w", err)
	}

	api := registry.NewAPI(reg)
	// Registry lookups join the caller's trace in the same ring the host
	// dispatches record into, so /tracez shows discovery and invocation
	// as one tree.
	api.Use(rest.Tracing(h.Tracer(), nil))

	mux := http.NewServeMux()
	mux.Handle("/services", h)
	mux.Handle("/services/", h)
	mux.Handle("/healthz", h)
	mux.Handle("/tracez", h)
	mux.Handle("/metricz", h)
	mux.Handle("/registry/", api)
	mux.Handle("/app/", http.StripPrefix("/app", app))
	mux.HandleFunc("/robot/", robotPageHandler)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ASU-style service repository (Go reproduction)\n\n")
		fmt.Fprintf(w, "  GET  /healthz                       per-service health report\n")
		fmt.Fprintf(w, "  GET  /tracez                        recorded trace spans (?format=tree)\n")
		fmt.Fprintf(w, "  GET  /metricz                       per-operation instrument set\n")
		fmt.Fprintf(w, "  GET  /services                      hosted services\n")
		fmt.Fprintf(w, "  GET  /services/{name}?wsdl          WSDL 1.1\n")
		fmt.Fprintf(w, "  POST /services/{name}/soap          SOAP endpoint\n")
		fmt.Fprintf(w, "  POST /services/{name}/invoke/{op}   REST invocation\n")
		fmt.Fprintf(w, "  GET  /registry/services             registry listing\n")
		fmt.Fprintf(w, "  GET  /registry/search?q=...         keyword search\n")
		fmt.Fprintf(w, "  GET  /app/                          Figure 4 web application\n")
		fmt.Fprintf(w, "  GET  /robot/                        Figure 1 robotics environment\n")
	})
	return mux, h, nil
}
