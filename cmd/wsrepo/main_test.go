package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildServerEndpoints(t *testing.T) {
	mux, h, err := buildServer(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Names()); got != 13 { // 12 catalog services + Robot
		t.Errorf("mounted services = %d, want 13", got)
	}
	server := httptest.NewServer(mux)
	defer server.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(server.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	status, body := get("/")
	if status != http.StatusOK || !strings.Contains(body, "service repository") {
		t.Errorf("index: %d %q", status, body)
	}
	status, body = get("/services")
	if status != http.StatusOK || !strings.Contains(body, "Encryption") || !strings.Contains(body, "Robot") {
		t.Errorf("services: %d", status)
	}
	status, body = get("/services/Encryption?wsdl")
	if status != http.StatusOK || !strings.Contains(body, "wsdl:definitions") {
		t.Errorf("wsdl: %d", status)
	}
	status, body = get("/registry/search?q=mortgage")
	if status != http.StatusOK || !strings.Contains(body, "Mortgage") {
		t.Errorf("search: %d %s", status, body)
	}
	status, body = get("/app/")
	if status != http.StatusOK || !strings.Contains(body, "/subscribe") {
		t.Errorf("app: %d", status)
	}
	status, body = get("/robot/")
	if status != http.StatusOK || !strings.Contains(body, "WHILE NOT_GOAL") ||
		!strings.Contains(body, "/services/Robot/invoke/") {
		t.Errorf("robot page: %d", status)
	}
	status, body = get("/services/Calc/invoke/Add")
	if status != http.StatusNotFound {
		t.Errorf("unknown service: %d %s", status, body)
	}
	if status, _ := get("/totally/unknown"); status != http.StatusNotFound {
		t.Errorf("unknown path: %d", status)
	}
}

func TestBuildServerBadDataDir(t *testing.T) {
	if _, _, err := buildServer("", ""); err == nil {
		t.Error("empty dataDir accepted")
	}
}

// TestRegistryDurableAcrossRestarts: a service published through the
// REST API survives a full server rebuild over the same data directory —
// the registry recovers it from its write-ahead log — and the atomic
// directory.xml export exists after every boot.
func TestRegistryDurableAcrossRestarts(t *testing.T) {
	dataDir := t.TempDir()
	mux, _, err := buildServer(dataDir, "")
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(mux)
	body := strings.NewReader(`{"name":"ExternalSvc","endpoint":"http://elsewhere/svc",` +
		`"doc":"a third-party service published at runtime","category":"external/test"}`)
	resp, err := http.Post(server.URL+"/registry/services", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("publish: %d %s", resp.StatusCode, data)
	}
	resp.Body.Close()
	server.Close()

	if _, err := os.Stat(filepath.Join(dataDir, "directory.xml")); err != nil {
		t.Errorf("directory.xml not exported: %v", err)
	}

	// A fresh build over the same data dir is a restart: the runtime
	// publish must still be there, catalog re-seeding and all.
	mux2, _, err := buildServer(dataDir, "")
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	server2 := httptest.NewServer(mux2)
	defer server2.Close()
	resp, err = http.Get(server2.URL + "/registry/services/ExternalSvc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "http://elsewhere/svc") {
		t.Fatalf("entry did not survive the restart: %d %s", resp.StatusCode, data)
	}
}
