package main

import (
	"io"
	"net/http"
)

// robotPage is the Figure 1 web programming environment: a page where a
// maze-navigation program is composed from drop-down commands and run
// against the Robot-as-a-Service REST API, with the maze rendered back.
const robotPage = `<!DOCTYPE html>
<html>
<head><title>Web Robotics Programming Environment</title>
<style>
 body { font-family: monospace; margin: 2em; }
 pre  { background: #f4f4f4; padding: 1em; }
 select, button, textarea { font-family: monospace; margin: 2px; }
 textarea { width: 30em; height: 12em; }
</style>
</head>
<body>
<h1>Web Robotics Programming Environment</h1>
<p>Compose a program from the drop-down commands (Figure 1 of the course
paper), then run it against the simulated robot.</p>

<label>Add command:
<select id="cmd">
  <option>FORWARD</option>
  <option>LEFT</option>
  <option>RIGHT</option>
  <option>WHILE NOT_GOAL</option>
  <option>IF FRONT_OPEN</option>
  <option>IF FRONT_BLOCKED</option>
  <option>IF LEFT_OPEN</option>
  <option>IF RIGHT_OPEN</option>
  <option>ELSE</option>
  <option>END</option>
  <option>REPEAT 5</option>
</select></label>
<button onclick="addCmd()">add</button>
<button onclick="document.getElementById('prog').value=''">clear</button>
<button onclick="wallFollower()">load wall follower</button>
<br>
<textarea id="prog"></textarea><br>
<button onclick="run()">new maze + run program</button>
<pre id="maze">(no maze yet)</pre>
<pre id="result"></pre>

<script>
function addCmd() {
  var t = document.getElementById('prog');
  t.value += document.getElementById('cmd').value + '\n';
}
function wallFollower() {
  document.getElementById('prog').value =
    'WHILE NOT_GOAL\nIF RIGHT_OPEN\nRIGHT\nFORWARD\nELSE\n' +
    'IF FRONT_OPEN\nFORWARD\nELSE\nLEFT\nEND\nEND\nEND\n';
}
async function invoke(op, args) {
  var resp = await fetch('/services/Robot/invoke/' + op, {
    method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify(args)
  });
  return resp.json();
}
async function run() {
  var created = await invoke('CreateMaze',
    {width: 11, height: 11, algorithm: 'dfs', seed: Date.now() % 100000});
  var session = created.session;
  var rendered = await invoke('Render', {session: session});
  document.getElementById('maze').textContent = rendered.maze;
  var res = await invoke('RunProgram',
    {session: session, program: document.getElementById('prog').value});
  document.getElementById('result').textContent =
    'ok=' + res.ok + ' atGoal=' + res.atGoal + ' steps=' + res.steps +
    (res.error ? ('\nerror: ' + res.error) : '');
  await invoke('CloseSession', {session: session});
}
</script>
</body>
</html>`

func robotPageHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, robotPage)
}
