// Command socflow runs the durable workflow orchestrator as a small REST
// driver: workflow definitions execute against in-process services, every
// step is journaled to an on-disk WAL before its effect applies, and a
// restarted process resumes each instance at its exact step.
//
//	socflow -addr :8447 -data /var/lib/socflow
//
//	curl -X POST localhost:8447/instances/score-check \
//	     -d '{"id":"loan-1","vars":{"ssn":"123-45-6789","password":"s3cret!Pw"}}'
//	curl localhost:8447/instances            # all instances + status
//	curl localhost:8447/instances/loan-1     # one instance's journal audit
//	curl -X POST localhost:8447/instances/loan-1/resume
//
// Kill the process mid-instance and start it again: GET /instances shows
// the pending set recovered from the journal, and POST .../resume drives
// each one to its terminal state without re-issuing completed steps.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soc/internal/core"
	"soc/internal/services"
	"soc/internal/wal"
	"soc/internal/workflow"
)

func main() {
	addr := flag.String("addr", ":8447", "listen address")
	data := flag.String("data", "socflow-data", "journal directory (created if missing)")
	flag.Parse()

	srv, orch, err := newServer(*data)
	if err != nil {
		log.Fatalf("socflow: %v", err)
	}
	pending := orch.Pending()
	log.Printf("socflow: journal %s recovered: %s, %d instance(s) pending resume",
		*data, orch.Recovery(), len(pending))
	if len(pending) > 0 {
		log.Printf("socflow: pending: %s", strings.Join(pending, ", "))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		shctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		//soclint:ignore errdiscard shutdown path; the orchestrator close below reports the durable error
		_ = hs.Shutdown(shctx)
	}()
	log.Printf("socflow: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("socflow: %v", err)
	}
	if err := orch.Close(); err != nil {
		log.Fatalf("socflow: close journal: %v", err)
	}
}

// server is the REST surface over one orchestrator.
type server struct {
	orch *workflow.Orchestrator
	mux  *http.ServeMux
}

// newServer opens (or recovers) the journal under dir, wires the
// in-process invoker, and registers the built-in definitions.
func newServer(dir string) (*server, *workflow.Orchestrator, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	fs, err := wal.NewOSFS(dir)
	if err != nil {
		return nil, nil, err
	}
	inv, err := localInvoker()
	if err != nil {
		return nil, nil, err
	}
	orch, err := workflow.OpenOrchestrator(fs, workflow.Options{Deterministic: true})
	if err != nil {
		return nil, nil, err
	}
	def, err := scoreCheckWorkflow(inv)
	if err != nil {
		return nil, nil, err
	}
	orch.Define(def)
	orch.DefineCompensator("log-reject", func(_ context.Context, args map[string]any) error {
		log.Printf("socflow: compensating: rejecting instance with vars %v", args)
		return nil
	})
	s := &server{orch: orch, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/instances", s.listInstances)
	s.mux.HandleFunc("/instances/", s.instance)
	return s, orch, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// localInvoker routes workflow invokes to in-process service instances —
// the same Invoker seam the simulator fills with a wire client.
func localInvoker() (workflow.Invoker, error) {
	reg := map[string]*core.Service{}
	for _, mk := range []func() (*core.Service, error){services.NewCreditScore, services.NewRandomString} {
		svc, err := mk()
		if err != nil {
			return nil, err
		}
		reg[svc.Name] = svc
	}
	return workflow.InvokerFunc(func(ctx context.Context, service, op string, args map[string]any) (map[string]any, error) {
		svc, ok := reg[service]
		if !ok {
			return nil, fmt.Errorf("no such service %q", service)
		}
		out, err := svc.Invoke(ctx, op, core.Values(args))
		return out, err
	}), nil
}

// scoreCheckWorkflow is the built-in demo definition: score an applicant,
// check their chosen password, and approve only when both pass. The
// decision steps journal through the same machinery as any composite.
func scoreCheckWorkflow(inv workflow.Invoker) (*workflow.Workflow, error) {
	root := &workflow.Sequence{Label: "score-check", Steps: []workflow.Activity{
		&workflow.Invoke{Label: "score", Service: "CreditScore", Operation: "Score", Invoker: inv,
			Idempotent:   true,
			Inputs:       map[string]string{"ssn": "ssn"},
			Outputs:      map[string]string{"score": "score"},
			Compensation: &workflow.Undo{Name: "log-reject", ArgsFrom: map[string]string{"ssn": "ssn"}}},
		&workflow.Parallel{Label: "checks", Branches: []workflow.Activity{
			&workflow.Invoke{Label: "password", Service: "RandomString", Operation: "CheckStrength", Invoker: inv,
				Idempotent: true,
				Inputs:     map[string]string{"password": "password"},
				Outputs:    map[string]string{"strong": "strong", "reason": "reason"}},
			&workflow.Assign{Label: "threshold", Var: "creditOK", Expr: func(v *workflow.Vars) any {
				return v.GetInt("score") >= services.ApprovalThreshold
			}},
		}},
		&workflow.If{Label: "decide",
			Cond: func(v *workflow.Vars) bool {
				ok, _ := v.Get("strong")
				credit, _ := v.Get("creditOK")
				return ok == true && credit == true
			},
			Then: &workflow.Assign{Label: "approve", Var: "approved", Expr: func(*workflow.Vars) any { return true }},
			Else: &workflow.Assign{Label: "reject", Var: "approved", Expr: func(*workflow.Vars) any { return false }},
		},
	}}
	return workflow.New("score-check", root)
}

func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "pending": len(s.orch.Pending())})
}

// instanceView is the list-endpoint row.
type instanceView struct {
	ID     string `json:"id"`
	Def    string `json:"def"`
	Status string `json:"status"`
	Err    string `json:"err,omitempty"`
}

func (s *server) listInstances(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	audits := s.orch.Audits()
	out := make([]instanceView, 0, len(audits))
	for _, id := range s.orch.Instances() {
		a := audits[id]
		out = append(out, instanceView{ID: a.ID, Def: a.Def, Status: a.Status, Err: a.Err})
	}
	writeJSON(w, http.StatusOK, out)
}

// instance dispatches /instances/{id}, /instances/{def} (POST: start) and
// /instances/{id}/resume.
func (s *server) instance(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/instances/")
	name, action, _ := strings.Cut(rest, "/")
	if name == "" {
		http.Error(w, "missing instance or definition name", http.StatusBadRequest)
		return
	}
	switch {
	case action == "resume" && r.Method == http.MethodPost:
		s.resume(w, r, name)
	case action == "" && r.Method == http.MethodPost:
		s.start(w, r, name)
	case action == "" && r.Method == http.MethodGet:
		s.audit(w, name)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

type startRequest struct {
	ID   string         `json:"id"`
	Vars map[string]any `json:"vars"`
}

func (s *server) start(w http.ResponseWriter, r *http.Request, def string) {
	var req startRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.ID == "" {
		http.Error(w, "missing instance id", http.StatusBadRequest)
		return
	}
	res, err := s.orch.Start(r.Context(), req.ID, def, req.Vars)
	if err != nil {
		// The instance may still exist in a pending state; report the
		// result alongside the error so the caller can resume it.
		writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error(), "result": res})
		return
	}
	writeJSON(w, http.StatusCreated, res)
}

func (s *server) resume(w http.ResponseWriter, r *http.Request, id string) {
	res, err := s.orch.Resume(r.Context(), id)
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error(), "result": res})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) audit(w http.ResponseWriter, id string) {
	a, ok := s.orch.Audit(id)
	if !ok {
		http.Error(w, "no such instance", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"audit": a, "problems": a.Problems()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("socflow: write response: %v", err)
	}
}
