package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"soc/internal/services"
	"soc/internal/workflow"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//soclint:ignore errdiscard test helper; body already fully decoded
		_ = resp.Body.Close()
	}()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//soclint:ignore errdiscard test helper; body already fully decoded
		_ = resp.Body.Close()
	}()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp
}

// TestSocflowRestartResume drives the REST surface end to end: start an
// instance to completion, power-cut the journal under a second one, then
// rebuild the server over the same data directory — the journal must
// recover both instances, keep the completed one terminal, and resume the
// cut one to completion over HTTP.
func TestSocflowRestartResume(t *testing.T) {
	dir := t.TempDir()
	srv, orch, err := newServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)

	const ssn, password = "123-45-6789", "Str0ngpass"
	vars := map[string]any{"ssn": ssn, "password": password}

	// A clean instance completes synchronously.
	resp, res := postJSON(t, ts.URL+"/instances/score-check", map[string]any{"id": "loan-ok", "vars": vars})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("start loan-ok: status %d, body %v", resp.StatusCode, res)
	}
	if res["Status"] != workflow.StatusCompleted {
		t.Fatalf("loan-ok result: %v", res)
	}
	// The demo definition's decision must agree with the real services.
	score, err := services.CreditScoreOf(ssn)
	if err != nil {
		t.Fatal(err)
	}
	wantApproved := score >= services.ApprovalThreshold
	if got := res["Vars"].(map[string]any)["approved"]; got != wantApproved {
		t.Errorf("approved = %v, want %v (score %d)", got, wantApproved, score)
	}

	// Power-cut the journal three appends into the next instance: the
	// start request fails, the instance stays pending in the durable log.
	orch.ArmCrash(3, nil)
	resp, res = postJSON(t, ts.URL+"/instances/score-check", map[string]any{"id": "loan-cut", "vars": vars})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("start into a dead journal: status %d, body %v", resp.StatusCode, res)
	}
	ts.Close()

	// "Restart": a fresh server over the same directory recovers both.
	srv2, orch2, err := newServer(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer func() {
		if err := orch2.Close(); err != nil {
			t.Errorf("close recovered journal: %v", err)
		}
	}()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	var list []instanceView
	getJSON(t, ts2.URL+"/instances", &list)
	status := map[string]string{}
	for _, iv := range list {
		status[iv.ID] = iv.Status
	}
	if status["loan-ok"] != workflow.StatusCompleted {
		t.Errorf("loan-ok after restart: %q, want completed (list %v)", status["loan-ok"], list)
	}
	if status["loan-cut"] != workflow.StatusPending {
		t.Errorf("loan-cut after restart: %q, want pending (list %v)", status["loan-cut"], list)
	}

	// Resume the cut instance over HTTP; both idempotent invokes may
	// re-issue, completed steps replay from the journal.
	resp, res = postJSON(t, ts2.URL+"/instances/loan-cut/resume", nil)
	if resp.StatusCode != http.StatusOK || res["Status"] != workflow.StatusCompleted {
		t.Fatalf("resume loan-cut: status %d, body %v", resp.StatusCode, res)
	}

	// Audits for both instances must be problem-free.
	for _, id := range []string{"loan-ok", "loan-cut"} {
		var audit struct {
			Problems []string `json:"problems"`
		}
		if resp := getJSON(t, fmt.Sprintf("%s/instances/%s", ts2.URL, id), &audit); resp.StatusCode != http.StatusOK {
			t.Fatalf("audit %s: status %d", id, resp.StatusCode)
		}
		if len(audit.Problems) != 0 {
			t.Errorf("%s audit problems: %v", id, audit.Problems)
		}
	}

	var health struct {
		OK      bool `json:"ok"`
		Pending int  `json:"pending"`
	}
	getJSON(t, ts2.URL+"/healthz", &health)
	if !health.OK || health.Pending != 0 {
		t.Errorf("healthz after resume: %+v", health)
	}
}

// TestSocflowBadRequests pins the REST error contract.
func TestSocflowBadRequests(t *testing.T) {
	srv, orch, err := newServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := orch.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"start without id", func() (*http.Response, error) {
			return http.Post(ts.URL+"/instances/score-check", "application/json", bytes.NewBufferString(`{"vars":{}}`))
		}, http.StatusBadRequest},
		{"start unknown definition", func() (*http.Response, error) {
			return http.Post(ts.URL+"/instances/no-such-def", "application/json", bytes.NewBufferString(`{"id":"x"}`))
		}, http.StatusConflict},
		{"audit unknown instance", func() (*http.Response, error) {
			return http.Get(ts.URL + "/instances/ghost")
		}, http.StatusNotFound},
		{"resume unknown instance", func() (*http.Response, error) {
			return http.Post(ts.URL+"/instances/ghost/resume", "application/json", nil)
		}, http.StatusConflict},
		{"list with wrong method", func() (*http.Response, error) {
			return http.Post(ts.URL+"/instances", "application/json", nil)
		}, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		//soclint:ignore errdiscard test teardown of an already-judged response
		_ = resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
