// Command socsim runs the deterministic simulation harness: seeded
// property-based workloads over the in-process call plane — calls,
// workflows, durable-directory mutations (publish/unpublish/renew
// against each replica's write-ahead-logged registry), clock advances,
// power-cut kills that tear unsynced disk tails, and recovering
// restarts — with invariants (acked ⇒ durable included) checked after
// every step and failing schedules shrunk to a minimal replay.
//
// Corpus mode (default) sweeps -seeds consecutive seeds starting at
// -first; replay mode (-seed N) re-runs one seed and prints its event
// log. Every run executes twice and the event-log hashes must match —
// determinism is itself an invariant. On failure socsim prints the seed,
// the shrunk schedule and the verbatim replay command, and exits
// nonzero.
package main

import (
	"flag"
	"fmt"
	"os"

	"soc/internal/simtest"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 50, "number of consecutive seeds to sweep in corpus mode")
		first    = flag.Int64("first", 1, "first seed of the corpus sweep")
		seed     = flag.Int64("seed", 0, "replay exactly this seed and print its event log (disables corpus mode)")
		steps    = flag.Int("steps", 250, "schedule length per seed")
		clients  = flag.Int("clients", 3, "logical clients")
		replicas = flag.Int("replicas", 3, "simulated replicas")
		shrinkN  = flag.Int("shrink", 400, "max simulation runs to spend shrinking a failing schedule")
		verbose  = flag.Bool("v", false, "print the event log of every run, not just replays")
	)
	flag.Parse()

	cfg := simtest.Config{Clients: *clients, Replicas: *replicas}
	if *seed != 0 {
		os.Exit(replay(cfg, *seed, *steps, *clients, *replicas, *shrinkN))
	}
	os.Exit(corpus(cfg, *first, *seeds, *steps, *clients, *replicas, *shrinkN, *verbose))
}

// runTwice runs the seed's schedule twice and enforces the determinism
// contract: identical event-log hashes.
func runTwice(cfg simtest.Config, sched simtest.Schedule) (*simtest.RunRecord, error) {
	rec, err := simtest.Run(cfg, sched)
	if err != nil {
		return nil, err
	}
	again, err := simtest.Run(cfg, sched)
	if err != nil {
		return nil, err
	}
	if rec.Hash != again.Hash {
		return rec, fmt.Errorf("nondeterministic run: hash %s then %s for the same schedule", rec.Hash, again.Hash)
	}
	return rec, nil
}

func corpus(cfg simtest.Config, first int64, seeds, steps, clients, replicas, shrinkN int, verbose bool) int {
	failed := 0
	for i := 0; i < seeds; i++ {
		s := first + int64(i)
		sched := simtest.GenSchedule(s, steps, clients, replicas)
		rec, err := runTwice(cfg, sched)
		switch {
		case err != nil:
			failed++
			fmt.Printf("seed %d: FAIL: %v\n", s, err)
			printReplay(s, steps, clients, replicas)
		case len(rec.Violations) > 0:
			failed++
			report(cfg, s, steps, clients, replicas, shrinkN, sched, rec)
		default:
			fmt.Printf("seed %d: ok (%d steps, hash %.12s)\n", s, len(sched.Steps), rec.Hash)
			if verbose {
				printLog(rec)
			}
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d of %d seeds FAILED\n", failed, seeds)
		return 1
	}
	fmt.Printf("\nall %d seeds passed\n", seeds)
	return 0
}

func replay(cfg simtest.Config, seed int64, steps, clients, replicas, shrinkN int) int {
	sched := simtest.GenSchedule(seed, steps, clients, replicas)
	rec, err := runTwice(cfg, sched)
	if err != nil {
		fmt.Printf("seed %d: FAIL: %v\n", seed, err)
		return 1
	}
	printLog(rec)
	if len(rec.Violations) > 0 {
		report(cfg, seed, steps, clients, replicas, shrinkN, sched, rec)
		return 1
	}
	fmt.Printf("seed %d: ok (%d steps, hash %s)\n", seed, len(sched.Steps), rec.Hash)
	return 0
}

// report prints everything needed to chase a violation: what failed,
// the minimal schedule that still fails, and the exact command that
// reproduces the run.
func report(cfg simtest.Config, seed int64, steps, clients, replicas, shrinkN int, sched simtest.Schedule, rec *simtest.RunRecord) {
	fmt.Printf("seed %d: FAIL: %d invariant violation(s)\n", seed, len(rec.Violations))
	for _, v := range rec.Violations {
		fmt.Printf("  %s\n", v)
	}
	shrunk := simtest.Shrink(cfg, sched, shrinkN)
	fmt.Printf("shrunk to %d of %d steps:\n%s\n", len(shrunk.Steps), len(sched.Steps), shrunk.MarshalIndent())
	printReplay(seed, steps, clients, replicas)
}

func printReplay(seed int64, steps, clients, replicas int) {
	fmt.Printf("replay: go run ./cmd/socsim -seed %d -steps %d -clients %d -replicas %d\n",
		seed, steps, clients, replicas)
}

func printLog(rec *simtest.RunRecord) {
	for _, line := range rec.Log {
		fmt.Println(line)
	}
}
