// Contractgen regenerates the golden WSDL contracts under contracts/:
// the published "standard interfaces" (in the paper's SOA sense) of every
// contract-bound service in this repository — the full ASU service
// catalog plus the Robot-as-a-Service descriptor. It constructs each
// service exactly as production code does and renders its WSDL with
// soc/internal/wsdl, so the files are the runtime truth; the
// contractcheck analyzer in soclint then statically verifies that the
// source code never drifts from them.
//
// Run it via `make contracts` after changing any service signature, and
// commit the result. The -check flag verifies the files instead of
// writing them (used to keep the committed contracts honest).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"soc/internal/core"
	"soc/internal/robot"
	"soc/internal/services"
	"soc/internal/wsdl"
)

func main() {
	out := flag.String("out", "contracts", "directory to write .wsdl contracts into")
	check := flag.Bool("check", false, "verify the contracts on disk instead of rewriting them")
	flag.Parse()

	svcs, err := boundServices()
	if err != nil {
		log.Fatalf("contractgen: building services: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("contractgen: %v", err)
	}
	stale := 0
	for _, svc := range svcs {
		// The endpoint in a golden contract is a stable placeholder: the
		// contract pins the interface, not a deployment.
		doc, err := wsdl.Generate(svc, "http://localhost/services/"+svc.Name+"/soap")
		if err != nil {
			log.Fatalf("contractgen: generating %s: %v", svc.Name, err)
		}
		path := filepath.Join(*out, svc.Name+".wsdl")
		if *check {
			prev, err := os.ReadFile(path)
			if err != nil || !bytes.Equal(prev, doc) {
				fmt.Fprintf(os.Stderr, "contractgen: %s is stale; run `make contracts`\n", path)
				stale++
			}
			continue
		}
		if err := os.WriteFile(path, doc, 0o644); err != nil {
			log.Fatalf("contractgen: %v", err)
		}
		fmt.Printf("wrote %s (%d ops)\n", path, len(svc.Operations()))
	}
	if stale > 0 {
		os.Exit(1)
	}
}

// boundServices constructs every contract-bound service: the full
// repository catalog and the robot service.
func boundServices() ([]*core.Service, error) {
	dataDir, err := os.MkdirTemp("", "contractgen-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dataDir)
	catalog, err := services.NewCatalog(dataDir)
	if err != nil {
		return nil, err
	}
	robotSvc, err := robot.NewService(robot.NewSessions())
	if err != nil {
		return nil, err
	}
	return append(catalog.Services, robotSvc), nil
}
