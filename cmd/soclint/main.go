// Soclint is the repository's static-analysis driver: it loads every
// requested package of this module from source (stdlib go/parser +
// go/types only), runs the soc/internal/lint analyzer registry over each
// one, and prints findings as file:line:col diagnostics. It exits 0 when
// the tree is clean, 1 when any finding (or malformed ignore directive)
// is reported, and 2 when loading or analysis itself fails.
//
// Usage:
//
//	soclint [flags] [packages]
//
// Packages follow `go build` conventions relative to the module root:
// `./...` (the default) analyzes the whole module, `./internal/...` a
// subtree, `./internal/soap` a single package.
//
//	-contracts dir   golden WSDL directory for contractcheck
//	                 (default <module>/contracts)
//	-only a,b        run only the named analyzers
//	-list            print the registered analyzers and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"soc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("soclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	contractsDir := fs.String("contracts", "", "golden WSDL contract directory (default <module>/contracts)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var selected []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := lint.AnalyzerByName(name)
			if !ok {
				fmt.Fprintf(stderr, "soclint: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "soclint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintf(stderr, "soclint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expandPatterns(loader, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "soclint: %v\n", err)
		return 2
	}

	cfg := lint.DefaultConfig(moduleDir)
	if *contractsDir != "" {
		cfg.ContractsDir = *contractsDir
	}
	runner := &lint.Runner{Analyzers: analyzers, Config: cfg}

	var all []lint.Finding
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "soclint: %v\n", err)
			return 2
		}
		findings, err := runner.RunPackage(pkg)
		if err != nil {
			fmt.Fprintf(stderr, "soclint: %v\n", err)
			return 2
		}
		all = append(all, findings...)
	}
	lint.SortFindings(all)
	for _, f := range all {
		pos := f.Pos
		if rel, err := filepath.Rel(moduleDir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "soclint: %d finding(s) in %d package(s)\n", len(all), len(paths))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves go-style package patterns against the module.
func expandPatterns(loader *lint.Loader, patterns []string) ([]string, error) {
	modulePkgs, err := loader.ModulePackages()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, p := range modulePkgs {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			prefix = strings.TrimPrefix(prefix, "./")
			full := loader.ModulePath
			if prefix != "" && prefix != "." {
				full = loader.ModulePath + "/" + prefix
			}
			matched := false
			for _, p := range modulePkgs {
				if p == full || strings.HasPrefix(p, full+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matches no packages", pat)
			}
		default:
			p := strings.TrimPrefix(pat, "./")
			if p == "" || p == "." {
				p = loader.ModulePath
			} else if !strings.HasPrefix(p, loader.ModulePath) {
				p = loader.ModulePath + "/" + p
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}
