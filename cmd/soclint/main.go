// Soclint is the repository's static-analysis driver: it loads every
// requested package of this module from source (stdlib go/parser +
// go/types only), runs the soc/internal/lint analyzer registry over each
// one, and prints findings as file:line:col diagnostics. It exits 0 when
// the tree is clean, 1 when any finding (or malformed ignore directive)
// is reported, and 2 when loading or analysis itself fails.
//
// Usage:
//
//	soclint [flags] [packages]
//
// Packages follow `go build` conventions relative to the module root:
// `./...` (the default) analyzes the whole module, `./internal/...` a
// subtree, `./internal/soap` a single package.
//
//	-contracts dir   golden WSDL directory for contractcheck
//	                 (default <module>/contracts)
//	-only a,b        run only the named analyzers
//	-json            one JSON object per finding on stdout (suppressed
//	                 findings included, carrying their ignore reason)
//	-notests a,b     exclude _test.go files from the named analyzers
//	-list            print the registered analyzers and exit
//
// Test files are part of the analyzed code: each package's in-package
// _test.go files join its analysis pass, and external test packages
// (package foo_test) are analyzed as their own units, for the analyzers
// that opt in (the concurrency ones — tests spawn goroutines and take
// locks too). Interprocedural analyzers share one module-wide flow graph
// built once per run. Wall-clock timing is always reported on stderr so
// `make lint` shows what the analysis costs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"soc/internal/lint"
	"soc/internal/lint/flow"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable record: one per line on stdout.
type jsonFinding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	IgnoredBy string `json:"ignored_by,omitempty"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("soclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	contractsDir := fs.String("contracts", "", "golden WSDL contract directory (default <module>/contracts)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default all)")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding (suppressed findings included)")
	noTests := fs.String("notests", "", "comma-separated analyzer names that must not see _test.go files")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var selected []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := lint.AnalyzerByName(name)
			if !ok {
				fmt.Fprintf(stderr, "soclint: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	start := time.Now()
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "soclint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintf(stderr, "soclint: %v\n", err)
		return 2
	}
	loader.Tests = true

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expandPatterns(loader, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "soclint: %v\n", err)
		return 2
	}

	cfg := lint.DefaultConfig(moduleDir)
	if *contractsDir != "" {
		cfg.ContractsDir = *contractsDir
	}
	if *noTests != "" {
		for _, name := range strings.Split(*noTests, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.NoTestAnalyzers = append(cfg.NoTestAnalyzers, name)
			}
		}
	}
	runner := &lint.Runner{Analyzers: analyzers, Config: cfg}

	// Load every unit first: the per-path analysis packages plus the
	// external test packages riding along with them.
	var units []*lint.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "soclint: %v\n", err)
			return 2
		}
		units = append(units, pkg)
		xpkg, err := loader.ExternalTests(path)
		if err != nil {
			fmt.Fprintf(stderr, "soclint: %v\n", err)
			return 2
		}
		if xpkg != nil {
			units = append(units, xpkg)
		}
	}

	// One module-wide flow graph when any selected analyzer is
	// interprocedural; its fact base is every loaded unit.
	for _, a := range analyzers {
		if a.Flow {
			runner.Flow = flow.Build(loader.FileSet(), flowPackages(units))
			break
		}
	}

	var all []lint.Finding
	for _, pkg := range units {
		findings, err := runner.RunPackage(pkg)
		if err != nil {
			fmt.Fprintf(stderr, "soclint: %v\n", err)
			return 2
		}
		all = append(all, findings...)
	}
	lint.SortFindings(all)

	relativize := func(f lint.Finding) lint.Finding {
		if rel, err := filepath.Rel(moduleDir, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		return f
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		encodeErr := error(nil)
		emit := func(f lint.Finding) {
			f = relativize(f)
			err := enc.Encode(jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message, IgnoredBy: f.IgnoredBy,
			})
			if err != nil && encodeErr == nil {
				encodeErr = err
			}
		}
		for _, f := range all {
			emit(f)
		}
		suppressed := runner.Suppressed
		lint.SortFindings(suppressed)
		for _, f := range suppressed {
			emit(f)
		}
		if encodeErr != nil {
			fmt.Fprintf(stderr, "soclint: writing JSON output: %v\n", encodeErr)
			return 2
		}
	} else {
		for _, f := range all {
			f = relativize(f)
			fmt.Fprintf(stdout, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
		}
	}
	fmt.Fprintf(stderr, "soclint: analyzed %d package(s) in %s\n", len(units), time.Since(start).Round(time.Millisecond))
	if len(all) > 0 {
		fmt.Fprintf(stderr, "soclint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

// flowPackages adapts the loaded units for the flow graph builder.
func flowPackages(units []*lint.Package) []*flow.Package {
	var out []*flow.Package
	for _, u := range units {
		out = append(out, u.FlowPackage())
	}
	return out
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves go-style package patterns against the module.
func expandPatterns(loader *lint.Loader, patterns []string) ([]string, error) {
	modulePkgs, err := loader.ModulePackages()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, p := range modulePkgs {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			prefix = strings.TrimPrefix(prefix, "./")
			full := loader.ModulePath
			if prefix != "" && prefix != "." {
				full = loader.ModulePath + "/" + prefix
			}
			matched := false
			for _, p := range modulePkgs {
				if p == full || strings.HasPrefix(p, full+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matches no packages", pat)
			}
		default:
			p := strings.TrimPrefix(pat, "./")
			if p == "" || p == "." {
				p = loader.ModulePath
			} else if !strings.HasPrefix(p, loader.ModulePath) {
				p = loader.ModulePath + "/" + p
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}
