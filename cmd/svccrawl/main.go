// Command svccrawl runs the service crawler against seed directory pages,
// prints discovered services, optionally publishes them into a remote
// registry, and optionally monitors endpoint availability.
//
//	svccrawl -seeds http://host/dir.html
//	svccrawl -seeds http://host/dir.html -registry http://host:8080
//	svccrawl -monitor http://host/services/Calc,http://other/svc -rounds 5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"soc/internal/crawler"
	"soc/internal/registry"
)

func main() {
	seeds := flag.String("seeds", "", "comma-separated seed page URLs")
	registryURL := flag.String("registry", "", "publish discoveries to this registry base URL")
	monitor := flag.String("monitor", "", "comma-separated endpoints to monitor instead of crawling")
	rounds := flag.Int("rounds", 3, "monitoring rounds")
	interval := flag.Duration("interval", time.Second, "monitoring interval")
	sameHost := flag.Bool("same-host", true, "restrict crawl to the seeds' hosts")
	flag.Parse()

	ctx := context.Background()
	if *monitor != "" {
		urls := splitList(*monitor)
		mon := crawler.NewMonitor(nil)
		for i := 0; i < *rounds; i++ {
			mon.CheckAll(ctx, urls)
			if i < *rounds-1 {
				time.Sleep(*interval)
			}
		}
		fmt.Printf("%-50s %7s %8s %12s %s\n", "endpoint", "checks", "uptime", "mean RTT", "last error")
		for _, st := range mon.Stats() {
			fmt.Printf("%-50s %7d %7.0f%% %12v %s\n",
				st.URL, st.Checks, st.Uptime()*100, st.MeanRTT().Round(time.Millisecond), st.LastError)
		}
		return
	}

	if *seeds == "" {
		log.Fatal("svccrawl: -seeds or -monitor required")
	}
	found, err := crawler.Crawl(ctx, splitList(*seeds), crawler.Config{SameHostOnly: *sameHost})
	if err != nil {
		log.Fatalf("svccrawl: %v", err)
	}
	fmt.Printf("discovered %d services:\n", len(found))
	for _, d := range found {
		fmt.Printf("  %-20s %-5s %-40s ops=%s\n", d.Name, d.Kind, d.URL, strings.Join(d.Operations, ","))
	}
	if *registryURL != "" {
		client := registry.NewClient(*registryURL)
		published := 0
		for _, d := range found {
			err := client.Publish(ctx, registry.Entry{
				Name: d.Name, Namespace: d.Namespace, Doc: d.Doc,
				Endpoint: d.URL, Bindings: []string{d.Kind},
				Operations: d.Operations, Provider: "svccrawl",
			})
			if err != nil {
				log.Printf("svccrawl: publish %s: %v", d.Name, err)
				continue
			}
			published++
		}
		fmt.Printf("published %d/%d to %s\n", published, len(found), *registryURL)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
