// Command benchdiff diffs two `go test -bench` outputs and exits nonzero
// when a gated metric regressed past the threshold — the CI teeth behind
// `make bench-compare`. It can also record a run as a JSON baseline
// artifact (BENCH_messageplane.json) for later comparisons.
//
// Usage:
//
//	benchdiff -new new.txt [-old old.txt | -against baseline.json] \
//	          [-threshold 10] [-gate allocs|time|both|none|contention] \
//	          [-json out.json]
//
// -old parses a raw benchmark text file as the baseline; -against reads
// the "new" side of a previously written JSON report instead. With no
// baseline at all, benchdiff just summarizes -new (and can record it with
// -json); nothing gates.
//
// The contention gate is for lowAndHigh-style suites whose benchmarks
// come in Name/serial, Name/parallel and Name/saturated variants: it
// gates allocs/op per benchmark plus each family's parallel/serial
// ns ratio — the contention blow-up factor, which stays near 1.0 for a
// lock-free hot path and is far more CI-stable than raw oversubscribed
// wall time (saturated ratios are reported but never fail the gate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"soc/internal/perf"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline `file` of raw go test -bench output")
		newPath   = flag.String("new", "", "current `file` of raw go test -bench output (required)")
		against   = flag.String("against", "", "baseline JSON report `file` (its recorded run is the baseline)")
		threshold = flag.Float64("threshold", 10, "allowed worsening in `percent` before a diff is a regression")
		gate      = flag.String("gate", "allocs", "gated `metric`: allocs, time, both or none")
		jsonOut   = flag.String("json", "", "write the comparison report to this `file`")
	)
	flag.Parse()
	if err := run(*oldPath, *newPath, *against, *threshold, *gate, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath, against string, threshold float64, gate, jsonOut string) error {
	if newPath == "" {
		return fmt.Errorf("-new is required")
	}
	if oldPath != "" && against != "" {
		return fmt.Errorf("-old and -against are mutually exclusive")
	}
	switch gate {
	case "allocs", "time", "both", "none", "contention":
	default:
		return fmt.Errorf("unknown -gate %q", gate)
	}

	newSum, err := summarizeFile(newPath)
	if err != nil {
		return err
	}
	var oldSum map[string]perf.Summary
	switch {
	case oldPath != "":
		if oldSum, err = summarizeFile(oldPath); err != nil {
			return err
		}
	case against != "":
		if oldSum, err = baselineFromJSON(against); err != nil {
			return err
		}
	}

	report := perf.Compare(oldSum, newSum, threshold, gate)
	report.Format(os.Stdout)
	if jsonOut != "" {
		if err := writeJSON(jsonOut, report); err != nil {
			return err
		}
	}
	if report.HasRegression() {
		return fmt.Errorf("benchmark regression past %.1f%% (gate %s)", threshold, gate)
	}
	return nil
}

func summarizeFile(path string) (map[string]perf.Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	grouped, err := perf.ParseBench(f)
	if err != nil {
		return nil, err
	}
	if len(grouped) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return perf.SummarizeBench(grouped), nil
}

func baselineFromJSON(path string) (map[string]perf.Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep perf.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.New) == 0 {
		return nil, fmt.Errorf("%s: baseline report has no recorded run", path)
	}
	return rep.New, nil
}

func writeJSON(path string, report perf.Report) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
