// Command soccluster runs the elastic cluster data plane live: a front
// door balancing over a pool of in-process replica hosts (each the full
// SOAP/REST host serving the Encryption service with a modeled
// per-request service time), with registry-lease membership and the
// shared scaling policy driving a real autoscaler.
//
//	soccluster -addr :8446 -replicas 3 -work 2ms -replica-cap 1
//	soccluster -addr :8446 -replicas 1 -naive            # no admission control
//	soccluster -addr :8446 -min 1 -max 8 -cooldown 3s    # elastic pool
//
// Then drive it with the load generator and watch the balancer:
//
//	socload -target http://localhost:8446 -rate 800 -duration 10s
//	curl http://localhost:8446/clusterz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"soc/internal/cloud"
	"soc/internal/host"
	"soc/internal/registry"
	"soc/internal/rest"
	"soc/internal/services"
	"soc/internal/vtime"
)

func main() {
	addr := flag.String("addr", ":8446", "front door listen address")
	replicas := flag.Int("replicas", 3, "fixed replica count (-min/-max override for an elastic pool)")
	minR := flag.Int("min", 0, "minimum replicas (0: -replicas)")
	maxR := flag.Int("max", 0, "maximum replicas (0: -replicas)")
	work := flag.Duration("work", 2*time.Millisecond, "modeled per-request service time on every replica")
	replCap := flag.Int("replica-cap", 1, "per-replica concurrent request cap")
	maxInFlight := flag.Int("max-inflight", 0, "front door concurrent proxy cap (0: max replicas × replica-cap)")
	queue := flag.Int("queue", 0, "admission queue depth (0: same as the in-flight cap)")
	queueTimeout := flag.Duration("queue-timeout", 100*time.Millisecond, "longest admission-queue wait before shedding")
	naive := flag.Bool("naive", false, "disable admission control: unbounded queue, never shed (the saturation study's 'before')")
	cooldown := flag.Duration("cooldown", 3*time.Second, "minimum spacing between scaling actions")
	interval := flag.Duration("interval", time.Second, "autoscaler evaluation period")
	capacity := flag.Int("capacity", 0, "requests one replica absorbs per interval (0: interval/work × replica-cap)")
	target := flag.Float64("target", 0.7, "policy target utilization")
	lease := flag.Duration("lease", 15*time.Second, "registry lease duration")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "replica heartbeat period")
	flag.Parse()

	low, high := *minR, *maxR
	if low <= 0 {
		low = *replicas
	}
	if high <= 0 {
		high = max(*replicas, low)
	}
	per := *capacity
	if per <= 0 && *work > 0 {
		per = int(float64(*interval)/float64(*work)) * *replCap
	}
	if per <= 0 {
		per = 1
	}
	inFlight := *maxInFlight
	if inFlight <= 0 {
		inFlight = high * *replCap
	}
	queueDepth, queueWait := *queue, *queueTimeout
	if *naive {
		queueDepth, queueWait = -1, -1 // unbounded, never timed out
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := registry.New(registry.WithLease(*lease))
	fd := cloud.NewFrontDoor(cloud.FrontDoorConfig{
		MaxInFlight:  inFlight,
		QueueDepth:   queueDepth,
		QueueTimeout: queueWait,
	})
	launcher := &localLauncher{
		ctx:       ctx,
		reg:       reg,
		work:      *work,
		replCap:   *replCap,
		heartbeat: *heartbeat,
		cancels:   make(map[string]context.CancelFunc),
	}
	scaler, err := cloud.NewAutoscaler(fd, launcher, cloud.AutoscalerOptions{
		Policy: cloud.Policy{
			MinReplicas:       low,
			MaxReplicas:       high,
			ReplicaCapacity:   per,
			TargetUtilization: *target,
		},
		Cooldown:  *cooldown,
		Interval:  *interval,
		Clock:     vtime.Real{},
		Directory: reg,
		Category:  "replica",
	})
	if err != nil {
		log.Fatalf("soccluster: %v", err)
	}
	if err := scaler.Prime(ctx); err != nil {
		log.Fatalf("soccluster: priming replicas: %v", err)
	}
	go func() {
		//soclint:ignore errdiscard Run only returns the shutdown context's error
		_ = scaler.Run(ctx)
	}()

	srv := &http.Server{Addr: *addr, Handler: fd, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		<-ctx.Done()
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		//soclint:ignore errdiscard shutdown errors leave nothing to act on; the process is exiting
		_ = srv.Shutdown(shctx)
	}()
	mode := "admission control"
	if *naive {
		mode = "naive (no admission control)"
	}
	log.Printf("soccluster: front door on %s — replicas %d..%d, work %v, cap %d/replica, %s (GET /clusterz)",
		*addr, low, high, *work, *replCap, mode)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("soccluster: %v", err)
	}
	stop()
	launcher.wg.Wait()
}

// localLauncher runs replicas as in-process hosts: each Launch builds a
// full host (so the front door proxies the same catalog surface a real
// machine would serve), publishes its registry entry, and heartbeats the
// lease until Stop — killing a replica is exactly "stop heartbeating".
type localLauncher struct {
	ctx       context.Context // heartbeats end when the process does
	reg       *registry.Registry
	work      time.Duration
	replCap   int
	heartbeat time.Duration

	mu      sync.Mutex
	cancels map[string]context.CancelFunc
	wg      sync.WaitGroup
}

func (l *localLauncher) Launch(_ context.Context, id int) (*cloud.Replica, error) {
	name := fmt.Sprintf("replica-%d", id)
	h, err := buildReplicaHost(l.work)
	if err != nil {
		return nil, err
	}
	if err := l.reg.Publish(registry.Entry{
		Name:     name,
		Category: "replica",
		Endpoint: "local://" + name,
		Doc:      "soccluster in-process replica",
		Provider: "soccluster",
	}); err != nil {
		return nil, err
	}
	hbCtx, cancel := context.WithCancel(l.ctx)
	l.mu.Lock()
	l.cancels[name] = cancel
	l.mu.Unlock()
	l.wg.Add(1)
	go l.heartbeatLoop(hbCtx, name)
	rep := cloud.NewLocalReplica(name, h, l.replCap)
	// A scale-down drain reaches the host itself: its /healthz flips to
	// 503 "draining" while the replica empties out.
	rep.DrainNotify = h.SetDraining
	return rep, nil
}

func (l *localLauncher) heartbeatLoop(ctx context.Context, name string) {
	defer l.wg.Done()
	clock := vtime.Real{}
	for {
		if err := clock.Sleep(ctx, l.heartbeat); err != nil {
			return
		}
		if err := l.reg.Heartbeat(name); err != nil {
			return // unpublished: the replica was stopped
		}
	}
}

func (l *localLauncher) Stop(_ context.Context, rep *cloud.Replica) error {
	l.mu.Lock()
	cancel := l.cancels[rep.Name()]
	delete(l.cancels, rep.Name())
	l.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if err := l.reg.Unpublish(rep.Name()); err != nil {
		// A lease-expired replica may already be gone from the registry.
		log.Printf("soccluster: unpublish %s: %v", rep.Name(), err)
	}
	return nil
}

// buildReplicaHost assembles one replica: the Encryption service behind
// a middleware charging the modeled service time. The charge is
// outermost — cache hits pay it too — so cluster capacity is exactly
// replicas × replica-cap / work no matter the request mix, which is what
// makes the saturation study's arithmetic checkable.
func buildReplicaHost(work time.Duration) (*host.Host, error) {
	h := host.New()
	enc, err := services.NewEncryption()
	if err != nil {
		return nil, err
	}
	if err := h.Mount(enc); err != nil {
		return nil, err
	}
	if work > 0 {
		clock := vtime.Real{}
		h.Use(func(next rest.HandlerFunc) rest.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request, p rest.Params) {
				//soclint:ignore errdiscard a canceled request skips straight to the handler, which sees the dead context itself
				_ = clock.Sleep(r.Context(), work)
				next(w, r, p)
			}
		})
	}
	return h, nil
}
