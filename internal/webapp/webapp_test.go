package webapp

import (
	"bytes"
	"image/color"
	"image/png"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCanvasBasics(t *testing.T) {
	c, err := NewCanvas(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, h := c.Size()
	if w != 10 || h != 8 {
		t.Errorf("size = %dx%d", w, h)
	}
	red := color.RGBA{0xff, 0, 0, 0xff}
	c.Set(3, 3, red)
	r, _, _, _ := c.At(3, 3).RGBA()
	if r>>8 != 0xff {
		t.Errorf("pixel not red: %v", c.At(3, 3))
	}
	c.Set(-1, -1, red) // clipped, no panic
	c.Set(99, 99, red)
}

func TestNewCanvasValidation(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {9999, 5}} {
		if _, err := NewCanvas(dims[0], dims[1]); err == nil {
			t.Errorf("NewCanvas(%v) accepted", dims)
		}
	}
}

func TestLineEndpoints(t *testing.T) {
	c, _ := NewCanvas(20, 20)
	black := color.RGBA{0, 0, 0, 0xff}
	c.Line(2, 3, 15, 11, black)
	for _, pt := range [][2]int{{2, 3}, {15, 11}} {
		r, g, b, _ := c.At(pt[0], pt[1]).RGBA()
		if r != 0 || g != 0 || b != 0 {
			t.Errorf("endpoint %v not drawn", pt)
		}
	}
}

func TestTextRendersInk(t *testing.T) {
	c, _ := NewCanvas(100, 30)
	black := color.RGBA{0, 0, 0, 0xff}
	c.Text(2, 2, "AB3", 2, black)
	ink := 0
	for y := 0; y < 30; y++ {
		for x := 0; x < 100; x++ {
			r, g, b, _ := c.At(x, y).RGBA()
			if r == 0 && g == 0 && b == 0 {
				ink++
			}
		}
	}
	if ink < 50 {
		t.Errorf("only %d ink pixels for 'AB3'", ink)
	}
}

func TestTextWidth(t *testing.T) {
	if TextWidth("", 2) != 0 {
		t.Error("empty width nonzero")
	}
	if TextWidth("AB", 1) != 11 { // 2*(5+1)-1
		t.Errorf("width = %d", TextWidth("AB", 1))
	}
}

func TestHasGlyph(t *testing.T) {
	for _, r := range "abcXYZ0189-./:% " {
		if !HasGlyph(r) {
			t.Errorf("missing glyph %q", r)
		}
	}
	if HasGlyph('€') {
		t.Error("unexpected glyph")
	}
}

func TestPNGEncoding(t *testing.T) {
	c, _ := NewCanvas(16, 16)
	data, err := c.PNG()
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if img.Bounds().Dx() != 16 {
		t.Errorf("decoded size = %v", img.Bounds())
	}
}

func TestBarChart(t *testing.T) {
	c, err := BarChart("Enrollment", []string{"2006", "2010", "2013"}, []float64{39, 76, 134}, 320, 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PNG(); err != nil {
		t.Fatal(err)
	}
	// Taller value ⇒ more colored pixels in its column region.
	if _, err := BarChart("x", []string{"a"}, []float64{1, 2}, 100, 100); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := BarChart("x", nil, nil, 100, 100); err == nil {
		t.Error("empty chart accepted")
	}
	if _, err := BarChart("x", []string{"a"}, []float64{-1}, 100, 100); err == nil {
		t.Error("negative value accepted")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	if _, err := BarChart("zeros", []string{"a", "b"}, []float64{0, 0}, 120, 90); err != nil {
		t.Errorf("all-zero chart: %v", err)
	}
}

func TestLineChart(t *testing.T) {
	series := map[string][]float64{
		"cse445": {25, 24, 35, 33, 42, 30, 42, 44},
		"cse598": {14, 21, 23, 10, 34, 52, 35, 90},
	}
	c, err := LineChart("Enrollment", series, 400, 240)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PNG(); err != nil {
		t.Fatal(err)
	}
	if _, err := LineChart("x", nil, 100, 100); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := LineChart("x", map[string][]float64{"a": {1}}, 100, 100); err == nil {
		t.Error("single-point series accepted")
	}
	if _, err := LineChart("x", map[string][]float64{"a": {1, 2}, "b": {1, 2, 3}}, 100, 100); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestCaptchaDeterministicPerSeed(t *testing.T) {
	a, err := Captcha("X7QF2", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Captcha("X7QF2", 42)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := a.PNG()
	pb, _ := b.PNG()
	if !bytes.Equal(pa, pb) {
		t.Error("same seed produced different captchas")
	}
	c, _ := Captcha("X7QF2", 43)
	pc, _ := c.PNG()
	if bytes.Equal(pa, pc) {
		t.Error("different seeds produced identical captchas")
	}
}

func TestCaptchaValidation(t *testing.T) {
	if _, err := Captcha("", 1); err == nil {
		t.Error("empty text accepted")
	}
	if _, err := Captcha("WAYTOOLONGTEXT", 1); err == nil {
		t.Error("long text accepted")
	}
	if _, err := Captcha("ab€", 1); err == nil {
		t.Error("unrenderable char accepted")
	}
}

func TestFormValidation(t *testing.T) {
	form, err := NewForm(
		Field{Name: "name", Required: true},
		Field{Name: "ssn", Label: "SSN", Required: true, Pattern: PatternSSN},
		Field{Name: "dob", Label: "Date of birth", Pattern: PatternDate,
			Validate: ValidDate(func() time.Time { return time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC) })},
		Field{Name: "email", Pattern: PatternEmail},
	)
	if err != nil {
		t.Fatal(err)
	}
	clean, errs := form.ValidateValues(map[string]string{
		"name": " Ada Lovelace ", "ssn": "123-45-6789", "dob": "1990-12-10", "email": "ada@example.com",
	})
	if !errs.Ok() {
		t.Fatalf("valid form rejected: %v", errs)
	}
	if clean["name"] != "Ada Lovelace" {
		t.Errorf("not trimmed: %q", clean["name"])
	}

	_, errs = form.ValidateValues(map[string]string{"ssn": "123456789"})
	if errs.Ok() {
		t.Fatal("invalid form accepted")
	}
	if !strings.Contains(errs["name"], "required") {
		t.Errorf("name error = %q", errs["name"])
	}
	if !strings.Contains(errs["ssn"], "invalid format") {
		t.Errorf("ssn error = %q", errs["ssn"])
	}

	_, errs = form.ValidateValues(map[string]string{
		"name": "x", "ssn": "123-45-6789", "dob": "2099-01-01",
	})
	if errs["dob"] != "date is in the future" {
		t.Errorf("dob error = %q", errs["dob"])
	}
	_, errs = form.ValidateValues(map[string]string{
		"name": "x", "ssn": "123-45-6789", "dob": "1990-13-45",
	})
	if errs["dob"] == "" {
		t.Error("impossible date accepted")
	}
	if !strings.Contains(errs.Error(), "dob") {
		t.Errorf("Error() = %q", errs.Error())
	}
}

func TestFormDefinitionErrors(t *testing.T) {
	if _, err := NewForm(Field{}); err == nil {
		t.Error("unnamed field accepted")
	}
	if _, err := NewForm(Field{Name: "a"}, Field{Name: "a"}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewForm(Field{Name: "a", Pattern: "("}); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestValidateRequest(t *testing.T) {
	form, _ := NewForm(Field{Name: "user", Required: true})
	r := httptest.NewRequest("POST", "/signup", strings.NewReader("user=ada"))
	r.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	clean, errs := form.ValidateRequest(r)
	if !errs.Ok() || clean["user"] != "ada" {
		t.Errorf("clean=%v errs=%v", clean, errs)
	}
	r2 := httptest.NewRequest("POST", "/signup", strings.NewReader(""))
	r2.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	_, errs = form.ValidateRequest(r2)
	if errs.Ok() {
		t.Error("missing required field accepted")
	}
}
