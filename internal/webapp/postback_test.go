package webapp

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"soc/internal/session"
)

// TestPostbackRoundTrip models the classic ASP.NET-style postback the
// paper's Figure 4 project teaches: a form page carries its state in a
// signed viewstate token, the POST presents the token plus user input,
// and the server validates both — tamper breaks the token, bad input
// fails field validation, and valid postbacks see the prior state.
func TestPostbackRoundTrip(t *testing.T) {
	vs, err := session.NewViewState([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatalf("viewstate: %v", err)
	}
	form, err := NewForm(
		Field{Name: "ssn", Required: true, Pattern: PatternSSN},
		Field{Name: "dob", Required: true, Pattern: PatternDate,
			Validate: ValidDate(func() time.Time { return time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC) })},
	)
	if err != nil {
		t.Fatalf("form: %v", err)
	}

	// "Render" the page: server state sealed into the token.
	token, err := vs.Encode(map[string]string{"step": "2", "applicant": "alice"})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	postback := func(token, ssn, dob string) (map[string]string, map[string]string, Errors) {
		t.Helper()
		body := url.Values{"__viewstate": {token}, "ssn": {ssn}, "dob": {dob}}
		req := httptest.NewRequest(http.MethodPost, "/apply", strings.NewReader(body.Encode()))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		state, vsErr := vs.Decode(req.PostFormValue("__viewstate"))
		if vsErr != nil {
			return nil, nil, Errors{"__viewstate": vsErr.Error()}
		}
		clean, errs := form.ValidateRequest(req)
		return state, clean, errs
	}

	// Valid postback: token state survives the round trip, fields pass.
	state, clean, errs := postback(token, "123-45-6789", "2001-02-03")
	if !errs.Ok() {
		t.Fatalf("valid postback rejected: %v", errs)
	}
	if state["step"] != "2" || state["applicant"] != "alice" {
		t.Fatalf("viewstate lost across the round trip: %v", state)
	}
	if clean["ssn"] != "123-45-6789" {
		t.Fatalf("clean values: %v", clean)
	}

	// Bad field input fails validation but the token still decodes.
	state, _, errs = postback(token, "not-an-ssn", "2001-02-03")
	if errs.Ok() || errs["ssn"] == "" {
		t.Fatalf("malformed ssn accepted: %v", errs)
	}
	if state["applicant"] != "alice" {
		t.Fatalf("state lost on validation failure: %v", state)
	}

	// Future date fails the semantic validator, not just the pattern.
	_, _, errs = postback(token, "123-45-6789", "2031-01-01")
	if errs.Ok() || !strings.Contains(errs["dob"], "future") {
		t.Fatalf("future date accepted: %v", errs)
	}

	// A tampered token must be rejected outright.
	_, _, errs = postback(token[:len(token)-2]+"zz", "123-45-6789", "2001-02-03")
	if errs.Ok() || errs["__viewstate"] == "" {
		t.Fatalf("tampered viewstate accepted: %v", errs)
	}
}

// TestFormMissingAndUnparsable pins the two remaining request-level
// error paths of ValidateRequest.
func TestFormMissingAndUnparsable(t *testing.T) {
	form, err := NewForm(Field{Name: "email", Required: true, Pattern: PatternEmail})
	if err != nil {
		t.Fatalf("form: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, "/x", strings.NewReader(""))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if _, errs := form.ValidateRequest(req); errs.Ok() || errs["email"] == "" {
		t.Fatalf("missing required field accepted: %v", errs)
	}

	bad := httptest.NewRequest(http.MethodPost, "/x", strings.NewReader("%zz=1"))
	bad.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if _, errs := form.ValidateRequest(bad); errs.Ok() || errs["_form"] == "" {
		t.Fatalf("unparsable body accepted: %v", errs)
	}
}
