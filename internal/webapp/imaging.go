// Package webapp supplies the web-application layer pieces of CSE445 unit
// 5 that are not plain routing: dynamic graphics generation ("dynamic
// graphics generation to leverage the presentation of Web applications at
// the programming level") — bar and line charts and the captcha image of
// the repository's image-verifier service — plus form parsing and
// validation for the Figure 4 account application.
package webapp

import (
	"bytes"
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math/rand"
	"strings"
)

// ErrImage reports invalid drawing parameters.
var ErrImage = errors.New("webapp: invalid image spec")

// Canvas is a drawable RGBA image.
type Canvas struct {
	img *image.RGBA
}

// NewCanvas returns a white canvas of the given size.
func NewCanvas(w, h int) (*Canvas, error) {
	if w < 1 || h < 1 || w > 4096 || h > 4096 {
		return nil, fmt.Errorf("%w: %dx%d", ErrImage, w, h)
	}
	c := &Canvas{img: image.NewRGBA(image.Rect(0, 0, w, h))}
	c.FillRect(0, 0, w, h, color.White)
	return c, nil
}

// Size returns the canvas dimensions.
func (c *Canvas) Size() (int, int) {
	b := c.img.Bounds()
	return b.Dx(), b.Dy()
}

// Set paints one pixel (silently clipped).
func (c *Canvas) Set(x, y int, col color.Color) {
	if image.Pt(x, y).In(c.img.Bounds()) {
		c.img.Set(x, y, col)
	}
}

// At reads one pixel.
func (c *Canvas) At(x, y int) color.Color { return c.img.At(x, y) }

// FillRect fills the rectangle [x,x+w)×[y,y+h).
func (c *Canvas) FillRect(x, y, w, h int, col color.Color) {
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			c.Set(xx, yy, col)
		}
	}
}

// Line draws a Bresenham line.
func (c *Canvas) Line(x0, y0, x1, y1 int, col color.Color) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		c.Set(x0, y0, col)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// Text renders s at (x, y) with the bitmap font at the given scale.
// Unknown characters render as blanks.
func (c *Canvas) Text(x, y int, s string, scale int, col color.Color) {
	if scale < 1 {
		scale = 1
	}
	cx := x
	for _, r := range strings.ToUpper(s) {
		glyph, ok := glyphs[r]
		if ok {
			for row := 0; row < GlyphH; row++ {
				for colBit := 0; colBit < GlyphW; colBit++ {
					if glyph[row]&(1<<uint(GlyphW-1-colBit)) != 0 {
						c.FillRect(cx+colBit*scale, y+row*scale, scale, scale, col)
					}
				}
			}
		}
		cx += (GlyphW + 1) * scale
	}
}

// TextWidth returns the pixel width of s at the given scale.
func TextWidth(s string, scale int) int {
	if scale < 1 {
		scale = 1
	}
	n := len([]rune(s))
	if n == 0 {
		return 0
	}
	return n*(GlyphW+1)*scale - scale
}

// PNG encodes the canvas.
func (c *Canvas) PNG() ([]byte, error) {
	var buf bytes.Buffer
	if err := png.Encode(&buf, c.img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Palette is the default chart series palette.
var Palette = []color.RGBA{
	{0x2d, 0x6a, 0xb0, 0xff}, // blue
	{0xc2, 0x4d, 0x2f, 0xff}, // red
	{0x3f, 0x8f, 0x4f, 0xff}, // green
	{0x8f, 0x5f, 0xb8, 0xff}, // purple
	{0xb8, 0x8a, 0x2a, 0xff}, // ochre
}

// BarChart renders labeled values as vertical bars — the dynamic-image
// service's staple output.
func BarChart(title string, labels []string, values []float64, w, h int) (*Canvas, error) {
	if len(labels) == 0 || len(labels) != len(values) {
		return nil, fmt.Errorf("%w: %d labels vs %d values", ErrImage, len(labels), len(values))
	}
	c, err := NewCanvas(w, h)
	if err != nil {
		return nil, err
	}
	maxV := 0.0
	for _, v := range values {
		if v < 0 {
			return nil, fmt.Errorf("%w: negative value %v", ErrImage, v)
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	black := color.RGBA{0, 0, 0, 0xff}
	c.Text(8, 6, title, 2, black)
	top, bottom, left := 28, h-24, 30
	plotH := bottom - top
	c.Line(left, top, left, bottom, black)
	c.Line(left, bottom, w-10, bottom, black)
	n := len(values)
	slot := (w - left - 20) / n
	barW := slot * 2 / 3
	if barW < 1 {
		barW = 1
	}
	for i, v := range values {
		bh := int(float64(plotH) * v / maxV)
		x := left + 10 + i*slot
		c.FillRect(x, bottom-bh, barW, bh, Palette[i%len(Palette)])
		c.Text(x, bottom+6, truncate(labels[i], slot/(GlyphW+1)), 1, black)
	}
	return c, nil
}

// LineChart renders one or more series as polylines with a y-axis scaled
// to the global max.
func LineChart(title string, series map[string][]float64, w, h int) (*Canvas, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("%w: no series", ErrImage)
	}
	var n int
	maxV := 0.0
	for name, vals := range series {
		if len(vals) < 2 {
			return nil, fmt.Errorf("%w: series %q needs >= 2 points", ErrImage, name)
		}
		if n == 0 {
			n = len(vals)
		} else if len(vals) != n {
			return nil, fmt.Errorf("%w: ragged series lengths", ErrImage)
		}
		for _, v := range vals {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	c, err := NewCanvas(w, h)
	if err != nil {
		return nil, err
	}
	black := color.RGBA{0, 0, 0, 0xff}
	c.Text(8, 6, title, 2, black)
	top, bottom, left := 28, h-16, 30
	plotW, plotH := w-left-12, bottom-top
	c.Line(left, top, left, bottom, black)
	c.Line(left, bottom, w-10, bottom, black)
	// Deterministic series order for reproducible images.
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sortStrings(names)
	for si, name := range names {
		vals := series[name]
		col := Palette[si%len(Palette)]
		for i := 1; i < len(vals); i++ {
			x0 := left + (i-1)*plotW/(n-1)
			x1 := left + i*plotW/(n-1)
			y0 := bottom - int(float64(plotH)*vals[i-1]/maxV)
			y1 := bottom - int(float64(plotH)*vals[i]/maxV)
			c.Line(x0, y0, x1, y1, col)
		}
		c.Text(left+6, top+2+si*10, name, 1, col)
	}
	return c, nil
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func truncate(s string, n int) string {
	if n < 1 {
		return ""
	}
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Captcha renders text as a distorted, noisy verification image (the
// "random string image (image verifier) service"). The rendering is
// deterministic in seed.
func Captcha(text string, seed int64) (*Canvas, error) {
	if text == "" || len(text) > 12 {
		return nil, fmt.Errorf("%w: captcha text length %d", ErrImage, len(text))
	}
	for _, r := range text {
		if !HasGlyph(r) {
			return nil, fmt.Errorf("%w: unrenderable character %q", ErrImage, r)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	scale := 3
	w := TextWidth(text, scale) + 40
	h := GlyphH*scale + 30
	c, err := NewCanvas(w, h)
	if err != nil {
		return nil, err
	}
	// Background speckle.
	for i := 0; i < w*h/20; i++ {
		g := uint8(150 + rng.Intn(90))
		c.Set(rng.Intn(w), rng.Intn(h), color.RGBA{g, g, g, 0xff})
	}
	// Characters with per-glyph vertical jitter and color.
	x := 20
	for _, r := range strings.ToUpper(text) {
		col := Palette[rng.Intn(len(Palette))]
		jitter := rng.Intn(11) - 5
		c.Text(x, 12+jitter, string(r), scale, col)
		x += (GlyphW + 1) * scale
	}
	// Strike-through noise lines.
	for i := 0; i < 4; i++ {
		col := Palette[rng.Intn(len(Palette))]
		c.Line(rng.Intn(w/4), rng.Intn(h), w-1-rng.Intn(w/4), rng.Intn(h), col)
	}
	return c, nil
}
