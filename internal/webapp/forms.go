package webapp

import (
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"time"
)

// Field validates one form input.
type Field struct {
	Name     string
	Label    string
	Required bool
	// Pattern, when non-empty, must match the whole value.
	Pattern string
	// Validate, when set, runs after the pattern check.
	Validate func(value string) error
	compiled *regexp.Regexp
}

// Form is a declarative validator for POSTed forms — the presentation-
// layer validation of the Figure 4 project (SSN format, date of birth,
// matching passwords, ...).
type Form struct {
	fields []Field
}

// NewForm compiles the field declarations.
func NewForm(fields ...Field) (*Form, error) {
	f := &Form{fields: make([]Field, len(fields))}
	seen := map[string]bool{}
	for i, fd := range fields {
		if fd.Name == "" {
			return nil, fmt.Errorf("webapp: field %d unnamed", i)
		}
		if seen[fd.Name] {
			return nil, fmt.Errorf("webapp: duplicate field %q", fd.Name)
		}
		seen[fd.Name] = true
		if fd.Label == "" {
			fd.Label = fd.Name
		}
		if fd.Pattern != "" {
			re, err := regexp.Compile("^(?:" + fd.Pattern + ")$")
			if err != nil {
				return nil, fmt.Errorf("webapp: field %q pattern: %w", fd.Name, err)
			}
			fd.compiled = re
		}
		f.fields[i] = fd
	}
	return f, nil
}

// Errors maps field names to validation messages.
type Errors map[string]string

// Ok reports whether validation passed.
func (e Errors) Ok() bool { return len(e) == 0 }

// Error implements error.
func (e Errors) Error() string {
	if len(e) == 0 {
		return "webapp: no errors"
	}
	var parts []string
	for k, v := range e {
		parts = append(parts, k+": "+v)
	}
	sortStrings(parts)
	return "webapp: invalid form: " + strings.Join(parts, "; ")
}

// ValidateValues checks raw values against the form.
func (f *Form) ValidateValues(values map[string]string) (map[string]string, Errors) {
	clean := map[string]string{}
	errs := Errors{}
	for _, fd := range f.fields {
		v := strings.TrimSpace(values[fd.Name])
		if v == "" {
			if fd.Required {
				errs[fd.Name] = fd.Label + " is required"
			}
			continue
		}
		if fd.compiled != nil && !fd.compiled.MatchString(v) {
			errs[fd.Name] = fd.Label + " has an invalid format"
			continue
		}
		if fd.Validate != nil {
			if err := fd.Validate(v); err != nil {
				errs[fd.Name] = err.Error()
				continue
			}
		}
		clean[fd.Name] = v
	}
	return clean, errs
}

// ValidateRequest parses the request form and validates it.
func (f *Form) ValidateRequest(r *http.Request) (map[string]string, Errors) {
	if err := r.ParseForm(); err != nil {
		return nil, Errors{"_form": "unparsable form: " + err.Error()}
	}
	values := map[string]string{}
	for _, fd := range f.fields {
		values[fd.Name] = r.PostFormValue(fd.Name)
	}
	return f.ValidateValues(values)
}

// Common field patterns for course projects.
const (
	PatternSSN   = `\d{3}-\d{2}-\d{4}`
	PatternDate  = `\d{4}-\d{2}-\d{2}`
	PatternEmail = `[^@\s]+@[^@\s]+\.[^@\s]+`
)

// ValidDate verifies a YYYY-MM-DD value is a real calendar date no later
// than now.
func ValidDate(now func() time.Time) func(string) error {
	if now == nil {
		now = time.Now
	}
	return func(v string) error {
		t, err := time.Parse("2006-01-02", v)
		if err != nil {
			return fmt.Errorf("not a valid date")
		}
		if t.After(now()) {
			return fmt.Errorf("date is in the future")
		}
		return nil
	}
}
