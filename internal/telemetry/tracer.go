package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a span by the layer that emitted it.
type Kind string

// Span kinds emitted by the stack.
const (
	KindClient   Kind = "client"   // consumer-side call or attempt
	KindServer   Kind = "server"   // provider-side dispatch
	KindInternal Kind = "internal" // in-process work
	KindCache    Kind = "cache"    // idempotent-response cache hit
	KindFault    Kind = "fault"    // injected fault (chaos runs)
	KindWorkflow Kind = "workflow" // composition engine activity
)

// MaxAnnotations bounds per-span annotations so spans stay fixed-size
// values the ring buffer can copy without allocating.
const MaxAnnotations = 6

// Annotation is one key/value note on a span.
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed unit of work in a trace. Fields are exported because
// Tracer.Snapshot returns spans by value for inspection; live spans are
// owned by the tracer's pool and must only be touched through methods.
type Span struct {
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID
	Name    string
	Kind    Kind
	// Target is the peer of a client-kind span (replica base URL).
	Target string
	// Attempt numbers retry/failover attempts, 1-based; 0 means n/a.
	Attempt int
	Start   time.Time
	// Duration is filled at End; zero-duration Cached spans mark
	// responses answered from the idempotent-response cache.
	Duration time.Duration
	Err      string
	Cached   bool

	ann  [MaxAnnotations]Annotation
	nann uint8

	tracer *Tracer
	tp     string // cached traceparent wire value
}

// Annotate attaches a note; annotations beyond MaxAnnotations are
// dropped. Safe on a nil span (untraced paths).
func (sp *Span) Annotate(key, value string) {
	if sp == nil || int(sp.nann) >= len(sp.ann) {
		return
	}
	sp.ann[sp.nann] = Annotation{Key: key, Value: value}
	sp.nann++
}

// Annotations returns the attached notes (aliasing the span's storage).
func (sp *Span) Annotations() []Annotation {
	if sp == nil {
		return nil
	}
	return sp.ann[:sp.nann]
}

// Context returns the span's propagated identity.
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: sp.TraceID, SpanID: sp.SpanID}
}

// TraceParent returns the wire value for the X-Soc-Trace header and the
// SocTrace SOAP header entry, formatted once and cached on the span.
func (sp *Span) TraceParent() string {
	if sp == nil {
		return ""
	}
	if sp.tp == "" {
		sp.tp = FormatTraceParent(sp.Context())
	}
	return sp.tp
}

// End finishes the span and records it in its tracer's ring.
func (sp *Span) End() { sp.EndErr(nil) }

// EndErr finishes the span, recording err (if any) as the span error.
// The span must not be used after EndErr: it returns to the pool.
func (sp *Span) EndErr(err error) {
	if sp == nil {
		return
	}
	sp.Duration = time.Since(sp.Start)
	if err != nil {
		sp.Err = err.Error()
	}
	t := sp.tracer
	if t != nil {
		t.record(sp)
	}
	sp.reset()
	spanPool.Put(sp)
}

// reset clears the span in place before it returns to the pool.
func (sp *Span) reset() {
	*sp = Span{}
}

// spanPool recycles live spans across all tracers; every span passes
// through reset before Put.
var spanPool = sync.Pool{New: func() any { return &Span{} }}

// tracerSlot is one ring position: its own tiny mutex, the sequence
// number of the span it holds, and the span copy. Writers contend only
// when they land on the same slot, never on a tracer-wide lock.
type tracerSlot struct {
	mu   sync.Mutex
	seq  uint64
	span Span
}

// Tracer records finished spans into a bounded ring buffer: the newest
// capacity spans survive, older ones are overwritten — the per-host
// always-on flight recorder behind GET /tracez. The ring position is
// claimed with one atomic increment and each position has its own lock,
// so concurrent span ends don't serialize on a global mutex. The zero
// ring is allocated on first record, so idle tracers cost a struct. A
// nil *Tracer is valid and records nothing.
type Tracer struct {
	capacity int

	initMu sync.Mutex
	ring   atomic.Pointer[[]tracerSlot]
	// next is the total recorded count; span i (1-based) lives in slot
	// (i-1) mod capacity.
	next atomic.Uint64
}

// DefaultCapacity is the ring size used for NewTracer(0) and the
// package default tracer.
const DefaultCapacity = 1024

// NewTracer returns a tracer keeping the last capacity spans
// (capacity <= 0 means DefaultCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{capacity: capacity}
}

var defaultTracer = NewTracer(DefaultCapacity)

// Default returns the process-wide tracer that clients fall back to when
// no tracer was configured explicitly.
func Default() *Tracer { return defaultTracer }

// start acquires a pooled span with resolved parentage.
func (t *Tracer) start(kind Kind, name string, parent SpanContext) *Span {
	sp := spanPool.Get().(*Span)
	if parent.Valid() {
		sp.TraceID = parent.TraceID
		sp.Parent = parent.SpanID
	} else {
		sp.TraceID = NewTraceID()
	}
	sp.SpanID = NewSpanID()
	sp.Name = name
	sp.Kind = kind
	sp.Start = time.Now()
	sp.tracer = t
	return sp
}

// StartSpan starts a span parented on the context's active span, else
// its remote parent, else a fresh trace. The returned context carries
// the new span, so nested calls become children and InjectHTTP can stamp
// outbound requests. On a nil tracer it returns (nil, ctx).
func (t *Tracer) StartSpan(ctx context.Context, kind Kind, name string) (*Span, context.Context) {
	if t == nil {
		return nil, ctx
	}
	sp := t.start(kind, name, SpanContextOf(ctx))
	return sp, ContextWithSpan(ctx, sp)
}

// StartSpanRemote is StartSpan with an explicit remote parent (from a
// protocol-level header); an invalid remote falls back to the context.
func (t *Tracer) StartSpanRemote(ctx context.Context, kind Kind, name string, remote SpanContext) (*Span, context.Context) {
	if t == nil {
		return nil, ctx
	}
	if !remote.Valid() {
		remote = SpanContextOf(ctx)
	}
	sp := t.start(kind, name, remote)
	return sp, ContextWithSpan(ctx, sp)
}

// Event records an already-complete zero-duration span parented on
// remote (an invalid remote starts a fresh trace) — how cache hits and
// injected faults appear in traces without a live span. Cache-kind
// events are marked Cached. Steady-state cost: zero allocations.
func (t *Tracer) Event(remote SpanContext, kind Kind, name, key, value string) {
	if t == nil {
		return
	}
	sp := Span{
		SpanID: NewSpanID(),
		Name:   name,
		Kind:   kind,
		Start:  time.Now(),
		Cached: kind == KindCache,
	}
	if remote.Valid() {
		sp.TraceID = remote.TraceID
		sp.Parent = remote.SpanID
	} else {
		sp.TraceID = NewTraceID()
	}
	if key != "" {
		sp.ann[0] = Annotation{Key: key, Value: value}
		sp.nann = 1
	}
	t.record(&sp)
}

// slots returns the ring, allocating it on first use (double-checked so
// the steady state is one atomic load).
func (t *Tracer) slots() []tracerSlot {
	if r := t.ring.Load(); r != nil {
		return *r
	}
	t.initMu.Lock()
	defer t.initMu.Unlock()
	if r := t.ring.Load(); r != nil {
		return *r
	}
	r := make([]tracerSlot, t.capacity)
	t.ring.Store(&r)
	return r
}

// record copies the finished span value into the ring: claim a sequence
// number atomically, then fill the corresponding slot under its own
// lock. A slot keeps the newest sequence it has seen, so a lapped writer
// (preempted long enough for the ring to wrap past it) never clobbers a
// newer span.
func (t *Tracer) record(sp *Span) {
	ring := t.slots()
	seq := t.next.Add(1)
	s := &ring[(seq-1)%uint64(t.capacity)]
	s.mu.Lock()
	if seq > s.seq {
		s.seq = seq
		s.span = *sp
		s.span.tracer = nil
		s.span.tp = ""
	}
	s.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first (ascending record
// order).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	r := t.ring.Load()
	if r == nil {
		return nil
	}
	ring := *r
	type seqSpan struct {
		seq  uint64
		span Span
	}
	filled := make([]seqSpan, 0, len(ring))
	for i := range ring {
		s := &ring[i]
		s.mu.Lock()
		if s.seq > 0 {
			filled = append(filled, seqSpan{seq: s.seq, span: s.span})
		}
		s.mu.Unlock()
	}
	sort.Slice(filled, func(i, j int) bool { return filled[i].seq < filled[j].seq })
	out := make([]Span, len(filled))
	for i, f := range filled {
		out[i] = f.span
	}
	return out
}

// Recorded reports how many spans were ever recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Reset drops all retained spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.initMu.Lock()
	defer t.initMu.Unlock()
	t.ring.Store(nil)
	t.next.Store(0)
}
