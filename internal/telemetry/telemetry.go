// Package telemetry is the observability spine of the call plane: a
// W3C-traceparent-style trace context (trace ID, span ID, parent) that
// crosses service boundaries in the X-Soc-Trace HTTP header and the
// SocTrace SOAP header block, pooled span recording into a bounded ring
// buffer per host, and the shared instrument set (per-operation counters
// and latency histograms) that GET /metricz exposes. One originating call
// — through the resilient client, across retries and failover hops, into
// provider dispatch, cache lookups and workflow activities — renders as a
// single trace tree.
//
// The package is allocation-disciplined because it rides the hot message
// plane: span starts draw from a sync.Pool (reset before Put), finished
// spans are copied by value into a preallocated ring, IDs come from
// math/rand/v2 without heap traffic, and the header value is formatted
// once per span and cached.
package telemetry

import (
	"context"
	"math/rand/v2"
	"net/http"
)

// Wire names of the propagated trace context.
const (
	// HeaderName is the HTTP request header carrying the trace context,
	// formatted like a W3C traceparent: "00-<32 hex>-<16 hex>-01".
	HeaderName = "X-Soc-Trace"
	// SOAPHeaderName is the SOAP <Header> entry carrying the same value,
	// so the context survives SOAP intermediaries that drop HTTP headers.
	SOAPHeaderName = "SocTrace"
)

// TraceID identifies one end-to-end trace (16 bytes, hex on the wire).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, hex on the wire).
type SpanID [8]byte

// IsZero reports an unset trace ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports an unset span ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

const hexDigits = "0123456789abcdef"

func appendHex(dst []byte, b []byte) []byte {
	for _, x := range b {
		dst = append(dst, hexDigits[x>>4], hexDigits[x&0xF])
	}
	return dst
}

// String renders the trace ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	return string(appendHex(make([]byte, 0, 32), id[:]))
}

// String renders the span ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	return string(appendHex(make([]byte, 0, 16), id[:]))
}

// SpanContext is the propagated identity of one span: the trace it
// belongs to and its own ID (the parent of any child started under it).
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
		}
	}
	return id
}

// traceParentLen is len("00-") + 32 + len("-") + 16 + len("-01").
const traceParentLen = 3 + 32 + 1 + 16 + 3

// AppendTraceParent appends the wire form "00-<trace>-<span>-01" to dst.
func AppendTraceParent(dst []byte, sc SpanContext) []byte {
	dst = append(dst, "00-"...)
	dst = appendHex(dst, sc.TraceID[:])
	dst = append(dst, '-')
	dst = appendHex(dst, sc.SpanID[:])
	dst = append(dst, "-01"...)
	return dst
}

// FormatTraceParent renders the wire form of the span context.
func FormatTraceParent(sc SpanContext) string {
	return string(AppendTraceParent(make([]byte, 0, traceParentLen), sc))
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func parseHex(dst []byte, s string) bool {
	for i := range dst {
		hi, ok1 := hexNibble(s[2*i])
		lo, ok2 := hexNibble(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceParent parses the wire form back into a span context. It
// accepts any version prefix and trailing flags, requiring only the
// "xx-<32 hex>-<16 hex>-..." shape; zero IDs are rejected.
func ParseTraceParent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) < traceParentLen || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	if !parseHex(sc.TraceID[:], s[3:35]) || !parseHex(sc.SpanID[:], s[36:52]) {
		return sc, false
	}
	return sc, sc.Valid()
}

// FromHTTPHeader parses the X-Soc-Trace header, if present and valid.
// The parse allocates nothing, so provider hot paths call it per request.
func FromHTTPHeader(h http.Header) (SpanContext, bool) {
	v := h.Get(HeaderName)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceParent(v)
}

// ---- context plumbing ----

type (
	spanKey      struct{}
	remoteKey    struct{}
	tracerKey    struct{}
	cacheMissKey struct{}
)

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ContextWithRemote returns a context carrying a remote parent span
// context (typically extracted from an incoming request); spans started
// under it join the remote trace.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteKey{}, sc)
}

// RemoteFromContext returns the remote parent stored by ContextWithRemote.
func RemoteFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteKey{}).(SpanContext)
	return sc, ok
}

// ContextWithTracer returns a context carrying a tracer, so layers
// without an explicit tracer handle (workflow activities, library code)
// can still start child spans via StartSpanFromContext.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFromContext returns the ambient tracer, or nil.
func TracerFromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanContextOf resolves the identity a child span would be parented on:
// the active span's context, the remote parent, or invalid.
func SpanContextOf(ctx context.Context) SpanContext {
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.Context()
	}
	sc, _ := RemoteFromContext(ctx)
	return sc
}

// Annotate attaches a key/value annotation to the active span, if any.
func Annotate(ctx context.Context, key, value string) {
	SpanFromContext(ctx).Annotate(key, value)
}

// ExtractHTTP lifts the X-Soc-Trace request header into the context as a
// remote parent. Requests without (or with malformed) headers return ctx
// unchanged, costing nothing on untraced traffic.
func ExtractHTTP(ctx context.Context, h http.Header) context.Context {
	if sc, ok := FromHTTPHeader(h); ok {
		return ContextWithRemote(ctx, sc)
	}
	return ctx
}

// InjectHTTP stamps the active span's context into the X-Soc-Trace
// request header. No active span means no header: untraced calls stay
// untraced.
func InjectHTTP(ctx context.Context, h http.Header) {
	if sp := SpanFromContext(ctx); sp != nil {
		h.Set(HeaderName, sp.TraceParent())
	}
}

// MarkCacheMiss returns a context recording that the idempotent-response
// cache missed for this request, so the dispatch span downstream can
// annotate itself "respcache=miss".
func MarkCacheMiss(ctx context.Context) context.Context {
	return context.WithValue(ctx, cacheMissKey{}, true)
}

// IsCacheMiss reports whether MarkCacheMiss was applied upstream.
func IsCacheMiss(ctx context.Context) bool {
	miss, _ := ctx.Value(cacheMissKey{}).(bool)
	return miss
}

// StartSpanFromContext starts a child span on the ambient plane: the
// active span's tracer, or the context's tracer. With neither present it
// returns (nil, ctx) — a nil *Span no-ops on every method — so untraced
// call paths pay two context lookups and nothing else.
func StartSpanFromContext(ctx context.Context, kind Kind, name string) (*Span, context.Context) {
	t := TracerFromContext(ctx)
	if sp := SpanFromContext(ctx); sp != nil && sp.tracer != nil {
		t = sp.tracer
	}
	return t.StartSpan(ctx, kind, name)
}
