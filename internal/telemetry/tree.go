package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is one span with its resolved children.
type Node struct {
	Span     Span
	Children []*Node
}

// Tree is one reassembled trace: every retained span sharing a trace ID,
// nested by parentage. Spans whose parent fell out of the ring (or lives
// in another process's tracer) surface as extra roots rather than being
// dropped.
type Tree struct {
	TraceID TraceID
	Roots   []*Node
}

// BuildTraces reassembles trace trees from a flat span set — typically
// the concatenated Snapshots of the client tracer and every host tracer
// a call crossed. Trees are ordered by earliest span start; siblings by
// start time.
func BuildTraces(spans []Span) []Tree {
	byID := make(map[SpanID]*Node, len(spans))
	order := make([]*Node, 0, len(spans))
	for i := range spans {
		n := &Node{Span: spans[i]}
		// Last write wins on (vanishingly unlikely) span-ID collisions.
		byID[spans[i].SpanID] = n
		order = append(order, n)
	}
	trees := map[TraceID]*Tree{}
	var traceOrder []TraceID
	for _, n := range order {
		if parent, ok := byID[n.Span.Parent]; ok && !n.Span.Parent.IsZero() && parent != n && parent.Span.TraceID == n.Span.TraceID {
			parent.Children = append(parent.Children, n)
			continue
		}
		tr, ok := trees[n.Span.TraceID]
		if !ok {
			tr = &Tree{TraceID: n.Span.TraceID}
			trees[n.Span.TraceID] = tr
			traceOrder = append(traceOrder, n.Span.TraceID)
		}
		tr.Roots = append(tr.Roots, n)
	}
	out := make([]Tree, 0, len(traceOrder))
	for _, id := range traceOrder {
		tr := trees[id]
		sortNodes(tr.Roots)
		for _, r := range tr.Roots {
			sortChildren(r)
		}
		out = append(out, *tr)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return earliest(out[i]).Before(earliest(out[j]))
	})
	return out
}

func earliest(t Tree) time.Time {
	var min time.Time
	for i, r := range t.Roots {
		if i == 0 || r.Span.Start.Before(min) {
			min = r.Span.Start
		}
	}
	return min
}

func sortNodes(ns []*Node) {
	sort.SliceStable(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
}

func sortChildren(n *Node) {
	sortNodes(n.Children)
	for _, c := range n.Children {
		sortChildren(c)
	}
}

// Format renders the tree as indented ASCII, one span per line:
//
//	trace 0af7651916cd43dd8448eb211c80319c
//	└─ client Calc.Add 1.2ms
//	   ├─ client attempt #1 → http://a err="..." [breaker=open]
//	   └─ server Calc.Add 0.9ms
func (t Tree) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", t.TraceID)
	for i, r := range t.Roots {
		formatNode(&b, r, "", i == len(t.Roots)-1)
	}
	return b.String()
}

// FormatTraces renders every tree, separated by blank lines.
func FormatTraces(trees []Tree) string {
	parts := make([]string, len(trees))
	for i, t := range trees {
		parts[i] = t.Format()
	}
	return strings.Join(parts, "\n")
}

func formatNode(b *strings.Builder, n *Node, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	sp := n.Span
	fmt.Fprintf(b, "%s%s%s %s", prefix, branch, sp.Kind, sp.Name)
	if sp.Attempt > 0 {
		fmt.Fprintf(b, " #%d", sp.Attempt)
	}
	if sp.Target != "" {
		fmt.Fprintf(b, " → %s", sp.Target)
	}
	if sp.Cached {
		b.WriteString(" (cached)")
	} else {
		fmt.Fprintf(b, " %s", sp.Duration.Round(10*time.Microsecond))
	}
	if sp.Err != "" {
		fmt.Fprintf(b, " err=%q", sp.Err)
	}
	if anns := sp.Annotations(); len(anns) > 0 {
		b.WriteString(" [")
		for i, a := range anns {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "%s=%s", a.Key, a.Value)
		}
		b.WriteByte(']')
	}
	b.WriteByte('\n')
	for i, c := range n.Children {
		formatNode(b, c, childPrefix, i == len(n.Children)-1)
	}
}
