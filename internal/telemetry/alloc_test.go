//go:build !race

package telemetry

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// The span lifecycle rides the hot message plane, so its allocation cost
// is pinned: start+annotate+finish may allocate only the context carrying
// the span (one WithValue), and a recorded Event must allocate nothing at
// steady state.
func TestSpanAllocCeiling(t *testing.T) {
	tr := NewTracer(64)
	// Prime the pool and the ring.
	sp, _ := tr.StartSpan(context.Background(), KindClient, "warm")
	sp.End()

	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		sp, _ := tr.StartSpan(ctx, KindClient, "Calc.Add")
		sp.Annotate("binding", "rest")
		sp.EndErr(nil)
	})
	if allocs > 1 {
		t.Fatalf("span start/annotate/finish = %.1f allocs/op, want <= 1", allocs)
	}
}

func TestEventAllocCeiling(t *testing.T) {
	tr := NewTracer(64)
	tr.Event(SpanContext{}, KindCache, "warm", "", "")
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	allocs := testing.AllocsPerRun(200, func() {
		tr.Event(parent, KindCache, "Calc.Add", "respcache", "hit")
	})
	if allocs > 0 {
		t.Fatalf("Event = %.1f allocs/op, want 0", allocs)
	}
}

func TestHeaderParseAllocCeiling(t *testing.T) {
	h := make(http.Header)
	h.Set(HeaderName, FormatTraceParent(SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}))
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := FromHTTPHeader(h); !ok {
			t.Fatal("parse failed")
		}
	})
	if allocs > 0 {
		t.Fatalf("FromHTTPHeader = %.1f allocs/op, want 0", allocs)
	}
}

func TestMetricsRecordAllocCeiling(t *testing.T) {
	m := NewMetrics()
	m.Record("Calc.Add", time.Millisecond, false)
	allocs := testing.AllocsPerRun(200, func() {
		m.Record("Calc.Add", time.Millisecond, false)
		m.RecordCached("Calc.Add")
	})
	if allocs > 0 {
		t.Fatalf("Record+RecordCached = %.1f allocs/op, want 0", allocs)
	}
}
