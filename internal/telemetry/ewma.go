package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// EWMA is a lock-free exponentially weighted moving average of durations,
// the latency estimate the cluster front door feeds into its
// power-of-two-choices scores. The value is stored as float64 bits in one
// atomic word; Observe folds each sample in with a CAS loop, so readers
// on the pick path never take a lock and writers never block each other
// for long.
//
// The zero value is empty: Value reports 0 until the first observation,
// which seeds the average directly (no warm-up bias toward zero).
type EWMA struct {
	bits atomic.Uint64 // float64 bits of the average, in nanoseconds
	seen atomic.Bool   // false until the first Observe
}

// ewmaAlpha is the weight of each new sample. 0.2 tracks a shifting
// latency regime within ~10 samples while smoothing single outliers —
// responsive enough for load balancing, calm enough not to thrash picks.
const ewmaAlpha = 0.2

// Observe folds one latency sample into the average.
func (e *EWMA) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	sample := float64(d)
	if e.seen.CompareAndSwap(false, true) {
		e.bits.Store(math.Float64bits(sample))
		return
	}
	for {
		old := e.bits.Load()
		next := (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*sample
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() time.Duration {
	return time.Duration(math.Float64frombits(e.bits.Load()))
}
