package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestEWMAZeroValue(t *testing.T) {
	var e EWMA
	if got := e.Value(); got != 0 {
		t.Fatalf("zero EWMA reports %v, want 0", got)
	}
}

func TestEWMASeedsFromFirstSample(t *testing.T) {
	var e EWMA
	e.Observe(40 * time.Millisecond)
	if got := e.Value(); got != 40*time.Millisecond {
		t.Fatalf("first sample should seed directly: got %v", got)
	}
}

func TestEWMAConvergesToConstantStream(t *testing.T) {
	var e EWMA
	e.Observe(time.Second) // bad start
	for i := 0; i < 100; i++ {
		e.Observe(10 * time.Millisecond)
	}
	got := e.Value()
	if got < 9*time.Millisecond || got > 12*time.Millisecond {
		t.Fatalf("after 100 steady samples, EWMA = %v, want ~10ms", got)
	}
}

func TestEWMAOrdersDistinctRegimes(t *testing.T) {
	var fast, slow EWMA
	for i := 0; i < 50; i++ {
		fast.Observe(5 * time.Millisecond)
		slow.Observe(50 * time.Millisecond)
	}
	if fast.Value() >= slow.Value() {
		t.Fatalf("fast %v !< slow %v", fast.Value(), slow.Value())
	}
}

func TestEWMAConcurrentObserve(t *testing.T) {
	var e EWMA
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Observe(20 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	got := e.Value()
	if got < 15*time.Millisecond || got > 25*time.Millisecond {
		t.Fatalf("concurrent constant stream: EWMA = %v, want ~20ms", got)
	}
}

func TestEWMANegativeClampsToZero(t *testing.T) {
	var e EWMA
	e.Observe(-time.Second)
	if got := e.Value(); got != 0 {
		t.Fatalf("negative sample should clamp: got %v", got)
	}
}
