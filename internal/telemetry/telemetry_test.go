package telemetry

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	wire := FormatTraceParent(sc)
	if len(wire) != traceParentLen {
		t.Fatalf("wire length = %d, want %d (%q)", len(wire), traceParentLen, wire)
	}
	if !strings.HasPrefix(wire, "00-") || !strings.HasSuffix(wire, "-01") {
		t.Fatalf("unexpected wire form %q", wire)
	}
	got, ok := ParseTraceParent(wire)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short-01",
		"00-zzzz651916cd43dd8448eb211c80319czz-00f067aa0ba902b7-01",
		// zero trace ID
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		// zero span ID
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"000af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01",
	}
	for _, s := range bad {
		if _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want reject", s)
		}
	}
	// Foreign version and flags are tolerated.
	if _, ok := ParseTraceParent("01-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-00"); !ok {
		t.Error("version 01 rejected, want tolerated")
	}
}

func TestHTTPInjectExtract(t *testing.T) {
	tr := NewTracer(8)
	sp, ctx := tr.StartSpan(context.Background(), KindClient, "Calc.Add")
	h := make(http.Header)
	InjectHTTP(ctx, h)
	if h.Get(HeaderName) != sp.TraceParent() {
		t.Fatalf("header = %q, want %q", h.Get(HeaderName), sp.TraceParent())
	}
	want := sp.Context()

	sctx := ExtractHTTP(context.Background(), h)
	got, ok := RemoteFromContext(sctx)
	if !ok || got != want {
		t.Fatalf("extracted %+v ok=%v, want %+v", got, ok, want)
	}
	sp.End()

	// Absent header: context unchanged.
	base := context.Background()
	if ExtractHTTP(base, make(http.Header)) != base {
		t.Error("ExtractHTTP allocated a context for an untraced request")
	}
	// No active span: no header written.
	h2 := make(http.Header)
	InjectHTTP(context.Background(), h2)
	if len(h2) != 0 {
		t.Error("InjectHTTP wrote a header with no active span")
	}
}

func TestSpanParentage(t *testing.T) {
	tr := NewTracer(8)
	root, ctx := tr.StartSpan(context.Background(), KindClient, "root")
	rootCtx := root.Context()
	child, cctx := tr.StartSpan(ctx, KindInternal, "child")
	if child.TraceID != root.TraceID || child.Parent != rootCtx.SpanID {
		t.Fatalf("child not parented on root: %+v vs %+v", child, root)
	}
	grand, _ := tr.StartSpan(cctx, KindInternal, "grand")
	if grand.Parent != child.SpanID {
		t.Fatal("grandchild not parented on child")
	}
	grand.End()
	child.End()
	root.EndErr(errors.New("boom"))

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	// Finished in grand, child, root order.
	if spans[2].Err != "boom" || spans[2].Name != "root" {
		t.Fatalf("root span = %+v", spans[2])
	}
}

func TestStartSpanRemote(t *testing.T) {
	tr := NewTracer(8)
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	sp, _ := tr.StartSpanRemote(context.Background(), KindServer, "Echo.Echo", remote)
	if sp.TraceID != remote.TraceID || sp.Parent != remote.SpanID {
		t.Fatalf("remote parentage lost: %+v", sp)
	}
	sp.End()

	// Invalid remote falls back to the context's span.
	parent, ctx := tr.StartSpan(context.Background(), KindClient, "p")
	sp2, _ := tr.StartSpanRemote(ctx, KindServer, "s", SpanContext{})
	if sp2.Parent != parent.SpanID {
		t.Fatal("invalid remote did not fall back to context parent")
	}
	sp2.End()
	parent.End()
}

func TestAnnotationsBounded(t *testing.T) {
	tr := NewTracer(4)
	sp, _ := tr.StartSpan(context.Background(), KindClient, "x")
	for i := 0; i < MaxAnnotations+3; i++ {
		sp.Annotate("k", "v")
	}
	if got := len(sp.Annotations()); got != MaxAnnotations {
		t.Fatalf("annotations = %d, want capped at %d", got, MaxAnnotations)
	}
	sp.End()
	var nilSpan *Span
	nilSpan.Annotate("k", "v") // must not panic
	nilSpan.End()
}

func TestRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp, _ := tr.StartSpan(context.Background(), KindInternal, string(rune('a'+i)))
		sp.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot = %d spans, want capacity 4", len(spans))
	}
	// Oldest-first: spans g,h,i,j survive.
	want := []string{"g", "h", "i", "j"}
	for i, sp := range spans {
		if sp.Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, sp.Name, want[i])
		}
	}
	if tr.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", tr.Recorded())
	}
	tr.Reset()
	if tr.Snapshot() != nil || tr.Recorded() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestEvent(t *testing.T) {
	tr := NewTracer(8)
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	tr.Event(parent, KindCache, "Echo.Echo", "respcache", "hit")
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	ev := spans[0]
	if !ev.Cached || ev.Duration != 0 || ev.TraceID != parent.TraceID || ev.Parent != parent.SpanID {
		t.Fatalf("event span = %+v", ev)
	}
	if anns := ev.Annotations(); len(anns) != 1 || anns[0] != (Annotation{Key: "respcache", Value: "hit"}) {
		t.Fatalf("event annotations = %v", ev.Annotations())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	sp, ctx := tr.StartSpan(context.Background(), KindClient, "x")
	if sp != nil || ctx != context.Background() {
		t.Fatal("nil tracer must return (nil, ctx)")
	}
	sp.Annotate("k", "v")
	sp.EndErr(errors.New("x"))
	tr.Event(SpanContext{}, KindFault, "f", "", "")
	if tr.Snapshot() != nil || tr.Recorded() != 0 {
		t.Fatal("nil tracer recorded")
	}
}

func TestBuildTraces(t *testing.T) {
	tr := NewTracer(16)
	root, ctx := tr.StartSpan(context.Background(), KindClient, "Calc.Add")
	rootSC := root.Context()
	a1, _ := tr.StartSpan(ctx, KindClient, "attempt")
	a1.Attempt = 1
	a1.EndErr(errors.New("fail"))
	a2, a2ctx := tr.StartSpan(ctx, KindClient, "attempt")
	a2.Attempt = 2
	srv, _ := tr.StartSpanRemote(a2ctx, KindServer, "Calc.Add", a2.Context())
	srv.End()
	a2.End()
	root.End()
	// Unrelated second trace.
	other, _ := tr.StartSpan(context.Background(), KindInternal, "other")
	other.End()

	trees := BuildTraces(tr.Snapshot())
	if len(trees) != 2 {
		t.Fatalf("trees = %d, want 2", len(trees))
	}
	main := trees[0]
	if main.TraceID != rootSC.TraceID {
		t.Fatalf("first tree is %s, want root trace (earliest start)", main.TraceID)
	}
	if len(main.Roots) != 1 || main.Roots[0].Span.Name != "Calc.Add" {
		t.Fatalf("main roots = %+v", main.Roots)
	}
	kids := main.Roots[0].Children
	if len(kids) != 2 || kids[0].Span.Attempt != 1 || kids[1].Span.Attempt != 2 {
		t.Fatalf("attempt children wrong: %+v", kids)
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Span.Kind != KindServer {
		t.Fatal("server span not nested under attempt 2")
	}

	out := FormatTraces(trees)
	for _, want := range []string{"trace " + rootSC.TraceID.String(), "#1", "#2", `err="fail"`, "server Calc.Add"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestBuildTracesOrphan(t *testing.T) {
	// A span whose parent fell out of the ring becomes a root, not lost.
	sp := Span{TraceID: NewTraceID(), SpanID: NewSpanID(), Parent: NewSpanID(), Name: "orphan", Start: time.Now()}
	trees := BuildTraces([]Span{sp})
	if len(trees) != 1 || len(trees[0].Roots) != 1 || trees[0].Roots[0].Span.Name != "orphan" {
		t.Fatalf("orphan handling: %+v", trees)
	}
}

func TestMetrics(t *testing.T) {
	m := NewMetrics()
	m.Record("Calc.Add", 5*time.Millisecond, false)
	m.Record("Calc.Add", 15*time.Millisecond, true)
	m.RecordCached("Calc.Add")
	m.RecordCached("Calc.Add")

	snap := m.Snapshot()
	om := snap["Calc.Add"]
	if om.Calls != 2 || om.Errors != 1 || om.CacheHits != 2 {
		t.Fatalf("counters = %+v", om)
	}
	if om.TotalTime != 20*time.Millisecond {
		t.Fatalf("TotalTime = %v", om.TotalTime)
	}
	if om.MeanTime() != 10*time.Millisecond {
		t.Fatalf("MeanTime = %v, want 10ms (cache hits excluded)", om.MeanTime())
	}
	// 5ms and 15ms both land in the (1ms, 10ms] and (10ms, 100ms] buckets.
	if om.Buckets[2] != 1 || om.Buckets[3] != 1 {
		t.Fatalf("buckets = %v", om.Buckets)
	}
	if keys := m.Keys(); len(keys) != 1 || keys[0] != "Calc.Add" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestContextTracerPlumbing(t *testing.T) {
	tr := NewTracer(8)
	ctx := ContextWithTracer(context.Background(), tr)
	if TracerFromContext(ctx) != tr {
		t.Fatal("tracer not carried")
	}
	sp, sctx := StartSpanFromContext(ctx, KindWorkflow, "step")
	if sp == nil || sp.tracer != tr {
		t.Fatal("StartSpanFromContext did not use ambient tracer")
	}
	// Child started from the span's context reuses the span's tracer even
	// without the tracer key.
	child, _ := StartSpanFromContext(ContextWithSpan(context.Background(), sp), KindInternal, "sub")
	if child == nil || child.tracer != tr {
		t.Fatal("child did not inherit span tracer")
	}
	child.End()
	sp.End()
	_ = sctx

	// Neither tracer nor span: nil span, unchanged context.
	nsp, nctx := StartSpanFromContext(context.Background(), KindInternal, "x")
	if nsp != nil || nctx != context.Background() {
		t.Fatal("untraced StartSpanFromContext must no-op")
	}
}

func TestCacheMissMark(t *testing.T) {
	ctx := context.Background()
	if IsCacheMiss(ctx) {
		t.Fatal("fresh context is not a miss")
	}
	if !IsCacheMiss(MarkCacheMiss(ctx)) {
		t.Fatal("mark lost")
	}
}
