package telemetry

import (
	"sort"
	"sync"
	"time"
)

// BucketBounds are the latency histogram upper bounds; a final implicit
// +Inf bucket catches the rest. Exposed so /metricz consumers can label
// the buckets.
var BucketBounds = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// NumBuckets is the histogram length (BucketBounds plus +Inf).
const NumBuckets = len(BucketBounds) + 1

// OpMetrics is the instrument set of one operation: call/error counters,
// total handler time, the latency histogram — and a cache-hit counter
// kept apart from the latency instruments, so zero-cost cached answers
// never skew the mean or histogram that quality scoring reads.
type OpMetrics struct {
	Calls     uint64
	Errors    uint64
	CacheHits uint64
	TotalTime time.Duration
	Buckets   [NumBuckets]uint64
}

// MeanTime is the average handler latency over real (uncached) calls.
func (m OpMetrics) MeanTime() time.Duration {
	if m.Calls == 0 {
		return 0
	}
	return m.TotalTime / time.Duration(m.Calls)
}

// Metrics is a concurrency-safe registry of per-operation instruments
// keyed "Service.Operation" — the single instrument set shared by host
// metrics, /metricz and the trace plane.
type Metrics struct {
	mu sync.Mutex
	m  map[string]*OpMetrics
}

// NewMetrics returns an empty instrument set.
func NewMetrics() *Metrics { return &Metrics{m: make(map[string]*OpMetrics)} }

func (x *Metrics) get(key string) *OpMetrics {
	om, ok := x.m[key]
	if !ok {
		om = &OpMetrics{}
		x.m[key] = om
	}
	return om
}

// Record folds one real (handler-executed) call into the instruments.
func (x *Metrics) Record(key string, d time.Duration, failed bool) {
	x.mu.Lock()
	om := x.get(key)
	om.Calls++
	om.TotalTime += d
	if failed {
		om.Errors++
	}
	i := 0
	for i < len(BucketBounds) && d > BucketBounds[i] {
		i++
	}
	om.Buckets[i]++
	x.mu.Unlock()
}

// RecordCached counts a response served from the idempotent-response
// cache. Deliberately not folded into Calls, TotalTime or the histogram:
// a cached answer says nothing about handler latency, and counting its
// ~zero duration would flatter every latency-derived quality score.
func (x *Metrics) RecordCached(key string) {
	x.mu.Lock()
	x.get(key).CacheHits++
	x.mu.Unlock()
}

// Snapshot copies the instrument set.
func (x *Metrics) Snapshot() map[string]OpMetrics {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make(map[string]OpMetrics, len(x.m))
	for k, v := range x.m {
		out[k] = *v
	}
	return out
}

// Keys returns the sorted operation keys with any recorded activity.
func (x *Metrics) Keys() []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]string, 0, len(x.m))
	for k := range x.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
