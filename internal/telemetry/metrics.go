package telemetry

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BucketBounds are the latency histogram upper bounds; a final implicit
// +Inf bucket catches the rest. Exposed so /metricz consumers can label
// the buckets.
var BucketBounds = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// NumBuckets is the histogram length (BucketBounds plus +Inf).
const NumBuckets = len(BucketBounds) + 1

// OpMetrics is the instrument set of one operation: call/error counters,
// total handler time, the latency histogram — and a cache-hit counter
// kept apart from the latency instruments, so zero-cost cached answers
// never skew the mean or histogram that quality scoring reads.
type OpMetrics struct {
	Calls     uint64
	Errors    uint64
	CacheHits uint64
	TotalTime time.Duration
	Buckets   [NumBuckets]uint64
}

// MeanTime is the average handler latency over real (uncached) calls.
func (m OpMetrics) MeanTime() time.Duration {
	if m.Calls == 0 {
		return 0
	}
	return m.TotalTime / time.Duration(m.Calls)
}

// opStripe is one cache-line-padded stripe of an operation's counters.
// Every field is atomic: the record path takes no lock at all.
type opStripe struct {
	calls     atomic.Uint64
	errors    atomic.Uint64
	cacheHits atomic.Uint64
	totalTime atomic.Int64
	buckets   [NumBuckets]atomic.Uint64
	_         [48]byte // pad to 128 B so stripes don't share cache lines
}

// stripedOp is the live instrument block of one operation: counters
// striped so concurrent recorders on different cores touch different
// cache lines. Snapshot sums the stripes.
type stripedOp struct {
	stripes []opStripe
}

func (o *stripedOp) sum() OpMetrics {
	var out OpMetrics
	for i := range o.stripes {
		s := &o.stripes[i]
		out.Calls += s.calls.Load()
		out.Errors += s.errors.Load()
		out.CacheHits += s.cacheHits.Load()
		out.TotalTime += time.Duration(s.totalTime.Load())
		for b := range s.buckets {
			out.Buckets[b] += s.buckets[b].Load()
		}
	}
	return out
}

// stripeToken carries a stripe index between Record calls via a sync.Pool
// — per-P pools make the token a cheap core-affine stripe hint.
type stripeToken struct{ idx uint32 }

// Metrics is a concurrency-safe registry of per-operation instruments
// keyed "Service.Operation" — the single instrument set shared by host
// metrics, /metricz and the trace plane. The hot record path is
// lock-free: an RCU-style atomic map resolves the key, and the counters
// are striped atomics. The mutex guards only first-time key insertion
// and map replacement.
type Metrics struct {
	mu      sync.Mutex
	m       atomic.Pointer[map[string]*stripedOp]
	stripes int
	tokens  sync.Pool
	tokSeq  atomic.Uint32
}

// metricsStripes picks the per-op stripe count: one per core, power of
// two, capped at 8. A single-core box gets one stripe and skips token
// dispatch entirely.
func metricsStripes() int {
	n := 1
	for n*2 <= runtime.NumCPU() && n < 8 {
		n *= 2
	}
	return n
}

// NewMetrics returns an empty instrument set.
func NewMetrics() *Metrics {
	x := &Metrics{stripes: metricsStripes()}
	m := make(map[string]*stripedOp)
	x.m.Store(&m)
	x.tokens.New = func() any {
		return &stripeToken{idx: x.tokSeq.Add(1) % uint32(x.stripes)}
	}
	return x
}

// stripe picks the stripe to record on. With one stripe (single-core)
// it's free; otherwise a pooled token supplies a core-affine index.
func (x *Metrics) stripe(o *stripedOp) *opStripe {
	if x.stripes == 1 {
		return &o.stripes[0]
	}
	tok := x.tokens.Get().(*stripeToken)
	s := &o.stripes[tok.idx]
	x.tokens.Put(tok)
	return s
}

// get resolves (or lazily creates) the instrument block for key. The
// fast path is one atomic load and a map read; insertion copies the map
// under the mutex and swings the pointer (RCU), so readers never block.
func (x *Metrics) get(key string) *stripedOp {
	if om, ok := (*x.m.Load())[key]; ok {
		return om
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	old := *x.m.Load()
	if om, ok := old[key]; ok {
		return om
	}
	om := &stripedOp{stripes: make([]opStripe, x.stripes)}
	next := make(map[string]*stripedOp, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = om
	x.m.Store(&next)
	return om
}

// Record folds one real (handler-executed) call into the instruments.
func (x *Metrics) Record(key string, d time.Duration, failed bool) {
	s := x.stripe(x.get(key))
	s.calls.Add(1)
	s.totalTime.Add(int64(d))
	if failed {
		s.errors.Add(1)
	}
	i := 0
	for i < len(BucketBounds) && d > BucketBounds[i] {
		i++
	}
	s.buckets[i].Add(1)
}

// RecordCached counts a response served from the idempotent-response
// cache. Deliberately not folded into Calls, TotalTime or the histogram:
// a cached answer says nothing about handler latency, and counting its
// ~zero duration would flatter every latency-derived quality score.
func (x *Metrics) RecordCached(key string) {
	x.stripe(x.get(key)).cacheHits.Add(1)
}

// Snapshot copies the instrument set. Counters are summed per key with
// atomic loads; a snapshot taken while recorders are in flight is a
// monotone cut, not a single instant.
func (x *Metrics) Snapshot() map[string]OpMetrics {
	m := *x.m.Load()
	out := make(map[string]OpMetrics, len(m))
	for k, v := range m {
		out[k] = v.sum()
	}
	return out
}

// Keys returns the sorted operation keys with any recorded activity.
func (x *Metrics) Keys() []string {
	m := *x.m.Load()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
