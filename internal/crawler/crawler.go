// Package crawler implements the service crawler behind the paper's
// service search engine ("We also developed a service directory that lists
// services offered by other service directories and repositories using a
// service crawler that discovers available services online"): it walks
// seed directory pages, extracts links, probes candidates for WSDL or
// REST service descriptions, and feeds confirmed services into a registry.
//
// It also provides the availability monitor motivated by §V's complaints
// about free public services ("services are often offline or be removed
// without notice"): periodic endpoint probing with per-service uptime and
// latency accounting.
package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"soc/internal/callplane"
	"soc/internal/registry"
	"soc/internal/wsdl"
)

// ErrCrawl reports an unusable crawl configuration.
var ErrCrawl = errors.New("crawler: invalid configuration")

// Discovered is one confirmed service found by a crawl.
type Discovered struct {
	// Name is the service name from its description.
	Name string
	// URL is the probed endpoint (the WSDL URL or REST describe URL).
	URL string
	// Kind is "wsdl" or "rest".
	Kind string
	// Namespace is the service namespace, when known.
	Namespace string
	// Doc is the service documentation, when known.
	Doc string
	// Operations are the discovered operation names.
	Operations []string
	// Via is the page on which the link was found.
	Via string
}

// Config tunes a crawl.
type Config struct {
	// MaxPages bounds how many directory pages are fetched (default 32).
	MaxPages int
	// MaxDepth bounds link-following depth from the seeds (default 3).
	MaxDepth int
	// SameHostOnly restricts link following to the seeds' hosts.
	SameHostOnly bool
	// HTTPClient performs requests; nil uses a 10 s timeout client.
	HTTPClient *http.Client
}

func (c Config) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

var linkRE = regexp.MustCompile(`href\s*=\s*["']([^"']+)["']|\b(https?://[^\s"'<>]+)`)

// ExtractLinks returns the absolute URLs referenced by page, resolving
// relative hrefs against base.
func ExtractLinks(base *url.URL, page string) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range linkRE.FindAllStringSubmatch(page, -1) {
		raw := m[1]
		if raw == "" {
			raw = m[2]
		}
		u, err := url.Parse(strings.TrimSpace(raw))
		if err != nil {
			continue
		}
		abs := base.ResolveReference(u)
		if abs.Scheme != "http" && abs.Scheme != "https" {
			continue
		}
		s := abs.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// looksLikeService classifies a URL as a probe candidate.
func looksLikeService(u string) (kind string, ok bool) {
	lower := strings.ToLower(u)
	switch {
	case strings.Contains(lower, "wsdl"):
		return "wsdl", true
	case strings.Contains(lower, "/services/"):
		return "rest", true
	}
	return "", false
}

// Crawl walks the seed pages, probes candidate service links, and returns
// the confirmed services sorted by URL.
func Crawl(ctx context.Context, seeds []string, cfg Config) ([]Discovered, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("%w: no seeds", ErrCrawl)
	}
	if cfg.MaxPages <= 0 {
		cfg.MaxPages = 32
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 3
	}
	client := cfg.client()
	allowedHosts := map[string]bool{}
	type item struct {
		u     string
		depth int
		via   string
	}
	var queue []item
	for _, s := range seeds {
		u, err := url.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("%w: seed %q: %v", ErrCrawl, s, err)
		}
		allowedHosts[u.Host] = true
		queue = append(queue, item{u: s, depth: 0, via: ""})
	}

	visited := map[string]bool{}
	probed := map[string]bool{}
	var found []Discovered
	pages := 0
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return found, err
		}
		it := queue[0]
		queue = queue[1:]
		if visited[it.u] {
			continue
		}
		visited[it.u] = true

		if kind, ok := looksLikeService(it.u); ok && it.via != "" {
			if !probed[it.u] {
				probed[it.u] = true
				if d, err := probe(ctx, client, it.u, kind); err == nil {
					d.Via = it.via
					found = append(found, *d)
				}
			}
			continue
		}
		if pages >= cfg.MaxPages || it.depth > cfg.MaxDepth {
			continue
		}
		pages++
		body, base, err := fetchPage(ctx, client, it.u)
		if err != nil {
			continue
		}
		for _, link := range ExtractLinks(base, body) {
			lu, err := url.Parse(link)
			if err != nil {
				continue
			}
			if cfg.SameHostOnly && !allowedHosts[lu.Host] {
				continue
			}
			queue = append(queue, item{u: link, depth: it.depth + 1, via: it.u})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].URL < found[j].URL })
	return found, nil
}

func fetchPage(ctx context.Context, client *http.Client, u string) (string, *url.URL, error) {
	req, err := callplane.NewRequest(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", nil, fmt.Errorf("crawler: status %d for %s", resp.StatusCode, u)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", nil, err
	}
	return string(data), resp.Request.URL, nil
}

func probe(ctx context.Context, client *http.Client, u, kind string) (*Discovered, error) {
	req, err := callplane.NewRequest(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json, text/xml")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("crawler: probe status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if kind == "wsdl" || bytes.HasPrefix(bytes.TrimSpace(data), []byte("<")) {
		d, err := wsdl.Parse(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		disc := &Discovered{Name: d.Name, URL: u, Kind: "wsdl", Namespace: d.Namespace, Doc: d.Doc}
		for _, op := range d.Ops {
			disc.Operations = append(disc.Operations, op.Name)
		}
		return disc, nil
	}
	// REST description JSON (the host package's describe document).
	var desc struct {
		Name      string `json:"name"`
		Namespace string `json:"namespace"`
		Doc       string `json:"doc"`
		Ops       []struct {
			Name string `json:"name"`
		} `json:"operations"`
	}
	if err := json.Unmarshal(data, &desc); err != nil || desc.Name == "" {
		return nil, fmt.Errorf("crawler: unrecognized service description at %s", u)
	}
	disc := &Discovered{Name: desc.Name, URL: u, Kind: "rest", Namespace: desc.Namespace, Doc: desc.Doc}
	for _, op := range desc.Ops {
		disc.Operations = append(disc.Operations, op.Name)
	}
	return disc, nil
}

// Feed publishes discovered services into a registry under the given
// provider name; it returns how many were published.
func Feed(reg *registry.Registry, provider string, found []Discovered) (int, error) {
	n := 0
	for _, d := range found {
		err := reg.Publish(registry.Entry{
			Name:       d.Name,
			Namespace:  d.Namespace,
			Doc:        d.Doc,
			Endpoint:   d.URL,
			Bindings:   []string{d.Kind},
			Operations: d.Operations,
			Provider:   provider,
		})
		if err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Probe checks one endpoint and reports latency; used by the availability
// monitor and exported for direct liveness checks.
func Probe(ctx context.Context, client *http.Client, u string) (time.Duration, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	start := time.Now()
	req, err := callplane.NewRequest(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return time.Since(start), err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode >= 500 {
		return time.Since(start), fmt.Errorf("crawler: endpoint unhealthy: status %d", resp.StatusCode)
	}
	return time.Since(start), nil
}

// Availability accumulates probe outcomes for one endpoint.
type Availability struct {
	URL       string
	Checks    int
	Failures  int
	TotalRTT  time.Duration
	LastError string
	LastCheck time.Time
}

// Uptime is the fraction of successful checks in [0, 1].
func (a *Availability) Uptime() float64 {
	if a.Checks == 0 {
		return 0
	}
	return float64(a.Checks-a.Failures) / float64(a.Checks)
}

// MeanRTT is the average round-trip time of all checks.
func (a *Availability) MeanRTT() time.Duration {
	if a.Checks == 0 {
		return 0
	}
	return a.TotalRTT / time.Duration(a.Checks)
}

// Monitor tracks endpoint availability over repeated probe rounds.
type Monitor struct {
	mu     sync.Mutex
	stats  map[string]*Availability
	client *http.Client
}

// NewMonitor returns a monitor using the given client (nil for default).
func NewMonitor(client *http.Client) *Monitor {
	return &Monitor{stats: make(map[string]*Availability), client: client}
}

// CheckAll probes every URL once, concurrently, and updates statistics.
func (m *Monitor) CheckAll(ctx context.Context, urls []string) {
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			rtt, err := Probe(ctx, m.client, u)
			m.mu.Lock()
			defer m.mu.Unlock()
			st, ok := m.stats[u]
			if !ok {
				st = &Availability{URL: u}
				m.stats[u] = st
			}
			st.Checks++
			st.TotalRTT += rtt
			st.LastCheck = time.Now()
			if err != nil {
				st.Failures++
				st.LastError = err.Error()
			}
		}(u)
	}
	wg.Wait()
}

// Stats returns a snapshot of all availability records sorted by URL.
func (m *Monitor) Stats() []Availability {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Availability, 0, len(m.stats))
	for _, st := range m.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Unreliable returns URLs whose uptime is below threshold after at least
// minChecks probes — the "too flaky for class assignments" list.
func (m *Monitor) Unreliable(threshold float64, minChecks int) []string {
	var out []string
	for _, st := range m.Stats() {
		if st.Checks >= minChecks && st.Uptime() < threshold {
			out = append(out, st.URL)
		}
	}
	return out
}
