package crawler

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"soc/internal/core"
	"soc/internal/host"
	"soc/internal/registry"
	"soc/internal/wsdl"
)

func testWSDL(t *testing.T) []byte {
	t.Helper()
	svc, err := core.NewService("Weather", "http://soc.example/weather", "weather forecasts")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:   "Forecast",
		Input:  []core.Param{{Name: "city", Type: core.String}},
		Output: []core.Param{{Name: "celsius", Type: core.Float}},
		Handler: func(context.Context, core.Values) (core.Values, error) {
			return core.Values{"celsius": 21.0}, nil
		},
	})
	doc, err := wsdl.Generate(svc, "http://soc.example/weather/soap")
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// newDirectorySite builds a small site: an index page linking to a WSDL, a
// REST service description (via a real Host), a nested page, and junk.
func newDirectorySite(t *testing.T) *httptest.Server {
	t.Helper()
	wsdlDoc := testWSDL(t)

	h := host.New()
	echo, _ := core.NewService("Echo", "http://soc.example/echo", "echo service")
	echo.MustAddOperation(core.Operation{
		Name:   "Echo",
		Input:  []core.Param{{Name: "text", Type: core.String}},
		Output: []core.Param{{Name: "echo", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"echo": in.Str("text")}, nil
		},
	})
	h.MustMount(echo)

	mux := http.NewServeMux()
	var ts *httptest.Server
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `<html><body>
			<a href="/dir/weather.wsdl">Weather WSDL</a>
			<a href="/more.html">more services</a>
			<a href="/broken.wsdl">broken</a>
			<a href="mailto:admin@example.com">contact</a>
		</body></html>`)
	})
	mux.HandleFunc("/more.html", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `<html><body><p>REST: %s/services/Echo</p></body></html>`, ts.URL)
	})
	mux.HandleFunc("/dir/weather.wsdl", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml")
		_, _ = w.Write(wsdlDoc)
	})
	mux.HandleFunc("/broken.wsdl", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "this is not xml at all")
	})
	mux.Handle("/services/", h)
	ts = httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestExtractLinks(t *testing.T) {
	base, _ := url.Parse("http://site.example/dir/index.html")
	page := `<a href="a.wsdl">a</a> <a href='/abs/b'>b</a>
		plain http://other.example/x and <a href="ftp://skip/this">skip</a>
		dup <a href="a.wsdl">again</a>`
	links := ExtractLinks(base, page)
	want := []string{
		"http://site.example/dir/a.wsdl",
		"http://site.example/abs/b",
		"http://other.example/x",
	}
	if len(links) != len(want) {
		t.Fatalf("links = %v", links)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Errorf("links[%d] = %q, want %q", i, links[i], want[i])
		}
	}
}

func TestCrawlDiscoversServices(t *testing.T) {
	ts := newDirectorySite(t)
	found, err := Crawl(context.Background(), []string{ts.URL + "/"}, Config{SameHostOnly: true})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	byName := map[string]Discovered{}
	for _, d := range found {
		byName[d.Name] = d
	}
	w, ok := byName["Weather"]
	if !ok {
		t.Fatalf("Weather not discovered; found %v", found)
	}
	if w.Kind != "wsdl" || w.Namespace != "http://soc.example/weather" || len(w.Operations) != 1 {
		t.Errorf("Weather = %+v", w)
	}
	e, ok := byName["Echo"]
	if !ok {
		t.Fatalf("Echo not discovered; found %v", found)
	}
	if e.Kind != "rest" || e.Operations[0] != "Echo" {
		t.Errorf("Echo = %+v", e)
	}
	// The broken WSDL must not appear.
	if len(found) != 2 {
		t.Errorf("found %d services, want 2: %v", len(found), found)
	}
}

func TestCrawlValidation(t *testing.T) {
	if _, err := Crawl(context.Background(), nil, Config{}); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := Crawl(context.Background(), []string{"::bad::"}, Config{}); err == nil {
		t.Error("bad seed accepted")
	}
}

func TestCrawlRespectsMaxPages(t *testing.T) {
	var pages int32
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&pages, 1)
		// Endless chain of pages.
		fmt.Fprintf(w, `<a href="/p%d.html">next</a>`, atomic.LoadInt32(&pages))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	_, err := Crawl(context.Background(), []string{ts.URL + "/"}, Config{MaxPages: 5, MaxDepth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&pages) > 5 {
		t.Errorf("fetched %d pages, max 5", pages)
	}
}

func TestCrawlSameHostOnly(t *testing.T) {
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("crossed to another host")
	}))
	defer other.Close()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `<a href="%s/services/x">offsite</a>`, other.URL)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if _, err := Crawl(context.Background(), []string{ts.URL + "/"}, Config{SameHostOnly: true}); err != nil {
		t.Fatal(err)
	}
}

func TestFeedPublishesIntoRegistry(t *testing.T) {
	ts := newDirectorySite(t)
	found, err := Crawl(context.Background(), []string{ts.URL + "/"}, Config{SameHostOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	n, err := Feed(reg, "crawler", found)
	if err != nil || n != 2 {
		t.Fatalf("Feed: %d %v", n, err)
	}
	matches, err := reg.Search("weather forecast", 0)
	if err != nil || len(matches) == 0 || matches[0].Entry.Name != "Weather" {
		t.Errorf("search after feed: %v %v", matches, err)
	}
	if matches[0].Entry.Provider != "crawler" {
		t.Errorf("provider = %q", matches[0].Entry.Provider)
	}
}

func TestMonitorTracksAvailability(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer flaky.Close()
	stable := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer stable.Close()

	m := NewMonitor(nil)
	urls := []string{flaky.URL, stable.URL}
	ctx := context.Background()
	m.CheckAll(ctx, urls)
	healthy.Store(false)
	m.CheckAll(ctx, urls)
	m.CheckAll(ctx, urls)
	healthy.Store(true)
	m.CheckAll(ctx, urls)

	stats := m.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	byURL := map[string]Availability{}
	for _, s := range stats {
		byURL[s.URL] = s
	}
	f := byURL[flaky.URL]
	if f.Checks != 4 || f.Failures != 2 {
		t.Errorf("flaky stats = %+v", f)
	}
	if up := f.Uptime(); up != 0.5 {
		t.Errorf("flaky uptime = %v", up)
	}
	if f.LastError == "" {
		t.Error("flaky LastError empty")
	}
	s := byURL[stable.URL]
	if s.Failures != 0 || s.Uptime() != 1 {
		t.Errorf("stable stats = %+v", s)
	}
	if s.MeanRTT() <= 0 {
		t.Errorf("stable MeanRTT = %v", s.MeanRTT())
	}
	bad := m.Unreliable(0.9, 2)
	if len(bad) != 1 || bad[0] != flaky.URL {
		t.Errorf("unreliable = %v", bad)
	}
}

func TestMonitorUnreachableEndpoint(t *testing.T) {
	m := NewMonitor(&http.Client{Timeout: 200 * time.Millisecond})
	m.CheckAll(context.Background(), []string{"http://127.0.0.1:1/nothing"})
	stats := m.Stats()
	if len(stats) != 1 || stats[0].Failures != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats[0].Uptime() != 0 {
		t.Errorf("uptime = %v", stats[0].Uptime())
	}
}

func TestAvailabilityZeroChecks(t *testing.T) {
	var a Availability
	if a.Uptime() != 0 || a.MeanRTT() != 0 {
		t.Error("zero-check availability should report zeros")
	}
}

func TestLooksLikeService(t *testing.T) {
	cases := []struct {
		u    string
		kind string
		ok   bool
	}{
		{"http://x/a.wsdl", "wsdl", true},
		{"http://x/svc?WSDL", "wsdl", true},
		{"http://x/services/Echo", "rest", true},
		{"http://x/page.html", "", false},
	}
	for _, c := range cases {
		kind, ok := looksLikeService(c.u)
		if kind != c.kind || ok != c.ok {
			t.Errorf("looksLikeService(%q) = %q,%v", c.u, kind, ok)
		}
	}
}

func TestCrawlContextCancel(t *testing.T) {
	ts := newDirectorySite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Crawl(ctx, []string{ts.URL + "/"}, Config{}); err == nil {
		t.Error("canceled crawl succeeded")
	}
}
