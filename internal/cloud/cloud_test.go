package cloud

import (
	"strings"
	"testing"
)

func mkInstances(caps ...int) []*Instance {
	out := make([]*Instance, len(caps))
	for i, c := range caps {
		out[i] = &Instance{ID: i + 1, Capacity: c}
	}
	return out
}

func TestBalancerRoundRobinSpreadsEvenly(t *testing.T) {
	b, err := NewBalancer(RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	ins := mkInstances(10, 10, 10)
	served, dropped := b.Assign(ins, 9)
	if served != 9 || dropped != 0 {
		t.Fatalf("served=%d dropped=%d", served, dropped)
	}
	for _, i := range ins {
		if i.served != 3 {
			t.Errorf("instance %d served %d, want 3", i.ID, i.served)
		}
	}
}

func TestBalancerDropsBeyondCapacity(t *testing.T) {
	b, _ := NewBalancer(RoundRobin)
	ins := mkInstances(2, 2)
	served, dropped := b.Assign(ins, 10)
	if served != 4 || dropped != 6 {
		t.Errorf("served=%d dropped=%d", served, dropped)
	}
	served, dropped = b.Assign(nil, 5)
	if served != 0 || dropped != 5 {
		t.Errorf("no instances: served=%d dropped=%d", served, dropped)
	}
}

func TestBalancerLeastLoadedFavorsBigInstances(t *testing.T) {
	b, _ := NewBalancer(LeastLoaded)
	ins := mkInstances(30, 10)
	served, _ := b.Assign(ins, 20)
	if served != 20 {
		t.Fatalf("served = %d", served)
	}
	// Load ratios should end roughly equal: 15/30 vs 5/10.
	if ins[0].served != 15 || ins[1].served != 5 {
		t.Errorf("split = %d/%d, want 15/5", ins[0].served, ins[1].served)
	}
}

func TestBalancerValidation(t *testing.T) {
	if _, err := NewBalancer(Strategy(9)); err == nil {
		t.Error("bad strategy accepted")
	}
}

func baseConfig() AutoscalerConfig {
	return AutoscalerConfig{
		MinInstances: 1, MaxInstances: 8, InstanceCapacity: 10,
		TargetUtilization: 0.8, CooldownTicks: 0, StartupTicks: 0,
	}
}

func TestSimulationScalesUpUnderLoad(t *testing.T) {
	sim, err := NewSimulation(baseConfig(), RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	demand := []int{5, 5, 40, 40, 40, 40}
	stats, err := sim.Run(demand)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Instances != 1 {
		t.Errorf("tick0 instances = %d", stats[0].Instances)
	}
	last := stats[len(stats)-1]
	if last.Instances < 5 {
		t.Errorf("final instances = %d, want >= 5 for demand 40 at 80%% of cap 10", last.Instances)
	}
	if last.Dropped != 0 {
		t.Errorf("steady state still dropping %d", last.Dropped)
	}
}

func TestSimulationScalesDownAfterPeak(t *testing.T) {
	sim, _ := NewSimulation(baseConfig(), RoundRobin)
	demand := []int{40, 40, 40, 5, 5, 5, 5}
	stats, err := sim.Run(demand)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for _, st := range stats {
		if st.Instances > peak {
			peak = st.Instances
		}
	}
	last := stats[len(stats)-1]
	if last.Instances >= peak {
		t.Errorf("no scale-down: peak %d, final %d", peak, last.Instances)
	}
	if last.Instances < 1 {
		t.Error("scaled below minimum")
	}
}

func TestSimulationStartupDelayCausesDrops(t *testing.T) {
	cfg := baseConfig()
	cfg.StartupTicks = 2
	sim, _ := NewSimulation(cfg, RoundRobin)
	demand := []int{40, 40, 40, 40, 40}
	stats, err := sim.Run(demand)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Dropped == 0 {
		t.Error("cold start dropped nothing despite 4x overload")
	}
	if stats[0].Pending == 0 {
		t.Error("no pending instances during startup")
	}
	last := stats[len(stats)-1]
	if last.Dropped != 0 {
		t.Errorf("still dropping after startup: %+v", last)
	}
}

func TestSimulationCooldownLimitsFlapping(t *testing.T) {
	cfg := baseConfig()
	cfg.CooldownTicks = 100 // effectively one scaling action
	sim, _ := NewSimulation(cfg, RoundRobin)
	demand := []int{40, 5, 40, 5, 40, 5}
	stats, err := sim.Run(demand)
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	for i := 1; i < len(stats); i++ {
		if stats[i].Instances+stats[i].Pending != stats[i-1].Instances+stats[i-1].Pending {
			changes++
		}
	}
	if changes > 1 {
		t.Errorf("scaled %d times despite cooldown", changes)
	}
}

func TestSimulationRespectsMax(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxInstances = 2
	sim, _ := NewSimulation(cfg, RoundRobin)
	stats, err := sim.Run([]int{1000, 1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stats {
		if st.Instances > 2 {
			t.Errorf("exceeded max: %+v", st)
		}
	}
	if stats[2].Dropped == 0 {
		t.Error("capped pool dropped nothing under 50x overload")
	}
}

func TestMeteringAndBill(t *testing.T) {
	sim, _ := NewSimulation(baseConfig(), RoundRobin)
	_, err := sim.Run([]int{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sim.InstanceTicks() != 3 {
		t.Errorf("instance-ticks = %d, want 3 (1 instance x 3 ticks)", sim.InstanceTicks())
	}
	if sim.Bill(0.5) != 1.5 {
		t.Errorf("bill = %v", sim.Bill(0.5))
	}
}

func TestElasticBeatsStaticOnBurstyLoad(t *testing.T) {
	demand := []int{5, 5, 5, 80, 80, 5, 5, 5, 5, 5}
	sim, _ := NewSimulation(baseConfig(), RoundRobin)
	stats, err := sim.Run(demand)
	if err != nil {
		t.Fatal(err)
	}
	elasticServed := 0
	for _, st := range stats {
		elasticServed += st.Served
	}
	elasticTicks := sim.InstanceTicks()

	// A static pool sized for the average (2 instances) drops the burst;
	// a static pool sized for the peak (8) wastes instance-ticks.
	avgServed, avgDropped, err := StaticServed(demand, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if avgDropped == 0 {
		t.Error("average-sized static pool should drop during burst")
	}
	peakTicks := 8 * len(demand)
	if elasticServed <= avgServed {
		t.Errorf("elastic served %d <= static-average %d", elasticServed, avgServed)
	}
	if elasticTicks >= peakTicks {
		t.Errorf("elastic used %d instance-ticks >= static-peak %d", elasticTicks, peakTicks)
	}
}

func TestStaticServedValidation(t *testing.T) {
	if _, _, err := StaticServed([]int{1}, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := StaticServed([]int{-1}, 1, 1); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestSimulationValidation(t *testing.T) {
	bad := []AutoscalerConfig{
		{MinInstances: 0, MaxInstances: 1, InstanceCapacity: 1, TargetUtilization: 0.5},
		{MinInstances: 2, MaxInstances: 1, InstanceCapacity: 1, TargetUtilization: 0.5},
		{MinInstances: 1, MaxInstances: 2, InstanceCapacity: 0, TargetUtilization: 0.5},
		{MinInstances: 1, MaxInstances: 2, InstanceCapacity: 1, TargetUtilization: 0},
		{MinInstances: 1, MaxInstances: 2, InstanceCapacity: 1, TargetUtilization: 1.5},
		{MinInstances: 1, MaxInstances: 2, InstanceCapacity: 1, TargetUtilization: 0.5, CooldownTicks: -1},
	}
	for i, cfg := range bad {
		if _, err := NewSimulation(cfg, RoundRobin); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	sim, _ := NewSimulation(baseConfig(), RoundRobin)
	if _, err := sim.Run(nil); err == nil {
		t.Error("empty demand accepted")
	}
	if _, err := sim.Run([]int{-5}); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestFormatStats(t *testing.T) {
	sim, _ := NewSimulation(baseConfig(), RoundRobin)
	stats, _ := sim.Run([]int{5, 15})
	out := FormatStats(stats)
	if !strings.Contains(out, "demand") || !strings.Contains(out, "15") {
		t.Errorf("table:\n%s", out)
	}
}
