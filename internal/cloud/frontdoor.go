package cloud

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"soc/internal/callplane"
	"soc/internal/registry"
	"soc/internal/reliability"
	"soc/internal/rest"
	"soc/internal/telemetry"
	"soc/internal/vtime"
)

// Front-door dispatch errors. Exchange failures are retried onto another
// replica (nothing has been written to the client); the saturation and
// empty-rotation cases are terminal and answered with backpressure.
var (
	// ErrNoReplica reports an empty rotation: no replica is eligible.
	ErrNoReplica = errors.New("cloud: no eligible replica")
	// ErrReplicasSaturated reports that every eligible replica is at its
	// in-flight cap.
	ErrReplicasSaturated = errors.New("cloud: all replicas at capacity")
	// errExchange wraps a transport-level replica failure (peer dead,
	// connection refused); the request is replayable against a sibling.
	errExchange = errors.New("cloud: replica exchange failed")
)

// FrontDoorConfig shapes the cluster's single entry point.
type FrontDoorConfig struct {
	// MaxInFlight bounds concurrently proxied requests (0 = 256).
	MaxInFlight int
	// QueueDepth bounds arrivals waiting for an in-flight slot before the
	// door sheds: 0 means MaxInFlight, negative means unbounded (no
	// admission control — the "naive" mode the saturation study measures
	// against). A synchronous (virtual) clock never queues: blocking an
	// arrival would deadlock single-threaded deterministic runs, so
	// saturation sheds immediately there.
	QueueDepth int
	// QueueTimeout bounds the wait for a slot (0 = 100ms, negative = no
	// bound beyond the request's own deadline).
	QueueTimeout time.Duration
	// MaxAttempts is replica attempts per request — a transport-level
	// failure replays the request against another replica (0 = 2).
	MaxAttempts int
	// MaxBodyBytes caps the buffered request body (0 = 1 MiB). Bodies are
	// buffered so an attempt against a dead replica can be replayed.
	MaxBodyBytes int64
	// Clock supplies timestamps and queue timeouts; nil means wall clock.
	Clock vtime.Clock
	// Tracer records proxy spans; nil disables tracing.
	Tracer *telemetry.Tracer
	// Metrics receives frontdoor.proxy / frontdoor.shed instruments; nil
	// allocates a private set (served at GET /metricz either way).
	Metrics *telemetry.Metrics
	// Seed fixes the power-of-two-choices PRNG (0 = 1), so virtual-clock
	// runs replay identically.
	Seed int64
}

// FrontDoor is the cluster's entry point: an http.Handler that admits or
// sheds each arrival (bounded queue, 503 + Retry-After once saturated),
// picks a replica by power-of-two-choices over in-flight count × EWMA
// latency, and proxies the exchange over the callplane spine so every
// hop lands in the trace tree. Membership is a copy-on-write rotation,
// either managed directly (Add/Remove) or reconciled from the registry's
// live lease view (SyncMembership).
type FrontDoor struct {
	maxInFlight  int
	queueDepth   int
	queueTimeout time.Duration
	maxBody      int64

	clock   vtime.Clock
	tracer  *telemetry.Tracer
	metrics *telemetry.Metrics
	chain   callplane.Transport

	rotation atomic.Pointer[rotation]
	mu       sync.Mutex // guards rotation rebuilds and the pick PRNG
	rng      *rand.Rand

	sem    chan struct{}
	queued atomic.Int64

	admitted  atomic.Uint64
	shedQueue atomic.Uint64 // refused admission: queue full or wait timed out
	shedBusy  atomic.Uint64 // admitted but every replica at capacity
	completed atomic.Uint64 // a replica's response was delivered
	errored   atomic.Uint64 // attempts exhausted; the door answered 502
}

// rotation is the copy-on-write membership view: all replicas for
// /clusterz, the non-draining subset for picking.
type rotation struct {
	all      []*Replica
	eligible []*Replica
}

// NewFrontDoor builds the front door; replicas join via Add or
// SyncMembership.
func NewFrontDoor(cfg FrontDoorConfig) *FrontDoor {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = cfg.MaxInFlight
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = 100 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = vtime.Real{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewMetrics()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	fd := &FrontDoor{
		maxInFlight:  cfg.MaxInFlight,
		queueDepth:   cfg.QueueDepth,
		queueTimeout: cfg.QueueTimeout,
		maxBody:      cfg.MaxBodyBytes,
		clock:        cfg.Clock,
		tracer:       cfg.Tracer,
		metrics:      cfg.Metrics,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		sem:          make(chan struct{}, cfg.MaxInFlight),
	}
	fd.rotation.Store(&rotation{})
	fd.chain = callplane.Chain(callplane.Terminal,
		callplane.WithSpan(cfg.Tracer, telemetry.KindClient),
		callplane.WithRetry(retryPolicy(cfg.MaxAttempts)),
		callplane.WithAttemptSpan(cfg.Tracer),
	)
	return fd
}

// retryPolicy replays a request against another replica only after a
// transport-level failure — the one error class where no bytes reached
// the client. BaseDelay 0 makes the failover hop immediate.
func retryPolicy(attempts int) reliability.RetryPolicy {
	return reliability.RetryPolicy{
		MaxAttempts: attempts,
		Retryable:   func(err error) bool { return errors.Is(err, errExchange) },
	}
}

// Add puts a replica into the rotation (replacing any same-named one).
func (fd *FrontDoor) Add(rep *Replica) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	cur := fd.rotation.Load()
	next := make([]*Replica, 0, len(cur.all)+1)
	for _, r := range cur.all {
		if r.Name() != rep.Name() {
			next = append(next, r)
		}
	}
	next = append(next, rep)
	fd.storeLocked(next)
}

// Remove drops a replica from the rotation entirely, returning it (nil if
// absent). In-flight requests already on it finish; it just gets no new
// picks and no longer appears in /clusterz.
func (fd *FrontDoor) Remove(name string) *Replica {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	cur := fd.rotation.Load()
	var removed *Replica
	next := make([]*Replica, 0, len(cur.all))
	for _, r := range cur.all {
		if r.Name() == name {
			removed = r
			continue
		}
		next = append(next, r)
	}
	if removed != nil {
		fd.storeLocked(next)
	}
	return removed
}

// MarkDraining flips a replica's draining state: draining replicas stay
// visible in /clusterz and keep serving what they hold, but receive no
// new picks. Returns the replica (nil if absent).
func (fd *FrontDoor) MarkDraining(name string, draining bool) *Replica {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	cur := fd.rotation.Load()
	var found *Replica
	for _, r := range cur.all {
		if r.Name() == name {
			found = r
			break
		}
	}
	if found == nil {
		return nil
	}
	found.SetDraining(draining)
	fd.storeLocked(append([]*Replica(nil), cur.all...))
	return found
}

// Replica returns the named rotation member (nil if absent).
func (fd *FrontDoor) Replica(name string) *Replica {
	for _, r := range fd.rotation.Load().all {
		if r.Name() == name {
			return r
		}
	}
	return nil
}

// Replicas snapshots the rotation (draining members included).
func (fd *FrontDoor) Replicas() []*Replica {
	return append([]*Replica(nil), fd.rotation.Load().all...)
}

// storeLocked publishes a new rotation; fd.mu must be held.
func (fd *FrontDoor) storeLocked(all []*Replica) {
	rot := &rotation{all: all, eligible: make([]*Replica, 0, len(all))}
	for _, r := range all {
		if !r.Draining() {
			rot.eligible = append(rot.eligible, r)
		}
	}
	fd.rotation.Store(rot)
}

// SyncMembership reconciles the rotation against the registry's live
// lease view, making the registry the source of truth: entries without a
// rotation member are dialed and added; members whose entry is gone
// (lease expired or unpublished) are removed from rotation. Draining
// members are left alone — the autoscaler owns their exit.
func (fd *FrontDoor) SyncMembership(live []registry.Entry, dial func(registry.Entry) (*Replica, error)) (added, removed int, err error) {
	byName := make(map[string]registry.Entry, len(live))
	for _, e := range live {
		byName[e.Name] = e
	}
	fd.mu.Lock()
	defer fd.mu.Unlock()
	cur := fd.rotation.Load()
	next := make([]*Replica, 0, len(live))
	have := make(map[string]bool, len(cur.all))
	for _, r := range cur.all {
		if _, ok := byName[r.Name()]; ok || r.Draining() {
			next = append(next, r)
			have[r.Name()] = true
		} else {
			removed++
		}
	}
	var firstErr error
	for _, e := range live {
		if have[e.Name] {
			continue
		}
		rep, derr := dial(e)
		if derr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dial %s: %w", e.Name, derr)
			}
			continue
		}
		next = append(next, rep)
		added++
	}
	if added > 0 || removed > 0 {
		fd.storeLocked(next)
	}
	return added, removed, firstErr
}

// FrontDoorStats is the door's own counter block (replica detail lives on
// each ReplicaStatus).
type FrontDoorStats struct {
	Admitted  uint64 `json:"admitted"`
	ShedQueue uint64 `json:"shedQueue"`
	ShedBusy  uint64 `json:"shedBusy"`
	Completed uint64 `json:"completed"`
	Errored   uint64 `json:"errored"`
	InFlight  int    `json:"inFlight"`
	Queued    int64  `json:"queued"`
}

// Shed is total load-shed responses (queue refusals + saturated picks).
func (s FrontDoorStats) Shed() uint64 { return s.ShedQueue + s.ShedBusy }

// Stats snapshots the door's counters.
func (fd *FrontDoor) Stats() FrontDoorStats {
	return FrontDoorStats{
		Admitted:  fd.admitted.Load(),
		ShedQueue: fd.shedQueue.Load(),
		ShedBusy:  fd.shedBusy.Load(),
		Completed: fd.completed.Load(),
		Errored:   fd.errored.Load(),
		InFlight:  len(fd.sem),
		Queued:    fd.queued.Load(),
	}
}

// Metrics exposes the door's instrument set (frontdoor.proxy latency and
// outcome counters, frontdoor.shed) for composition into wider reports.
func (fd *FrontDoor) Metrics() *telemetry.Metrics { return fd.metrics }

// clusterzReport is the GET /clusterz document: the balancer's live view,
// the sibling of /metricz and /tracez.
type clusterzReport struct {
	MaxInFlight       int             `json:"maxInFlight"`
	QueueDepth        int             `json:"queueDepth"`
	QueueTimeoutNanos int64           `json:"queueTimeoutNanos"`
	Stats             FrontDoorStats  `json:"stats"`
	Replicas          []ReplicaStatus `json:"replicas"`
}

// ServeHTTP routes the door's own observability endpoints and proxies
// everything else to a replica.
func (fd *FrontDoor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/clusterz":
		fd.handleClusterz(w, r)
	case "/metricz":
		fd.handleMetricz(w, r)
	case "/healthz":
		rest.WriteResponse(w, r, http.StatusOK, map[string]any{
			"status":   "ok",
			"replicas": len(fd.rotation.Load().all),
		})
	default:
		fd.proxy(w, r)
	}
}

func (fd *FrontDoor) handleClusterz(w http.ResponseWriter, r *http.Request) {
	rot := fd.rotation.Load()
	report := clusterzReport{
		MaxInFlight:       fd.maxInFlight,
		QueueDepth:        fd.queueDepth,
		QueueTimeoutNanos: int64(fd.queueTimeout),
		Stats:             fd.Stats(),
		Replicas:          make([]ReplicaStatus, len(rot.all)),
	}
	for i, rep := range rot.all {
		report.Replicas[i] = rep.Status()
	}
	rest.WriteResponse(w, r, http.StatusOK, report)
}

// metriczOp and metriczReport mirror the host's GET /metricz document
// field for field, so cluster dashboards read one shape everywhere.
type metriczOp struct {
	Calls     uint64   `json:"calls"`
	Errors    uint64   `json:"errors"`
	CacheHits uint64   `json:"cacheHits"`
	MeanNanos int64    `json:"meanNanos"`
	Histogram []uint64 `json:"histogram"`
}

type metriczReport struct {
	BucketBoundsNanos []int64              `json:"bucketBoundsNanos"`
	Operations        map[string]metriczOp `json:"operations"`
}

func (fd *FrontDoor) handleMetricz(w http.ResponseWriter, r *http.Request) {
	snap := fd.metrics.Snapshot()
	report := metriczReport{
		BucketBoundsNanos: make([]int64, len(telemetry.BucketBounds)),
		Operations:        make(map[string]metriczOp, len(snap)),
	}
	for i, b := range telemetry.BucketBounds {
		report.BucketBoundsNanos[i] = int64(b)
	}
	for key, om := range snap {
		report.Operations[key] = metriczOp{
			Calls:     om.Calls,
			Errors:    om.Errors,
			CacheHits: om.CacheHits,
			MeanNanos: int64(om.MeanTime()),
			Histogram: append([]uint64(nil), om.Buckets[:]...),
		}
	}
	rest.WriteResponse(w, r, http.StatusOK, report)
}

// shedResponse answers backpressure: 503 with Retry-After, metered under
// frontdoor.shed.
func (fd *FrontDoor) shedResponse(w http.ResponseWriter, r *http.Request, why string) {
	fd.metrics.Record("frontdoor.shed", 0, true)
	w.Header().Set("Retry-After", "1")
	rest.WriteError(w, r, http.StatusServiceUnavailable, "cluster saturated: %s", why)
}

// proxy admits (or sheds) one arrival and exchanges it with a replica.
func (fd *FrontDoor) proxy(w http.ResponseWriter, r *http.Request) {
	ctx := vtime.WithClock(telemetry.ExtractHTTP(r.Context(), r.Header), fd.clock)

	// Buffer the body once so a failed attempt can be replayed against a
	// sibling replica.
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		b, err := io.ReadAll(io.LimitReader(r.Body, fd.maxBody+1))
		if err != nil {
			rest.WriteError(w, r, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		if int64(len(b)) > fd.maxBody {
			rest.WriteError(w, r, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", fd.maxBody)
			return
		}
		body = b
	}

	if !fd.admit(ctx) {
		fd.shedQueue.Add(1)
		fd.shedResponse(w, r, "admission queue full")
		return
	}
	defer func() { <-fd.sem }()
	fd.admitted.Add(1)

	start := fd.clock.Now()
	var resp *http.Response
	var lastFailed string
	inv := &callplane.Invocation{
		Service:   "frontdoor",
		Operation: r.Method + " " + r.URL.Path,
		Binding:   "proxy",
		Do: func(ctx context.Context, inv *callplane.Invocation) error {
			rep, err := fd.pickAcquired(lastFailed)
			if err != nil {
				return err
			}
			defer rep.release()
			inv.Target = rep.Name()
			req := r.Clone(ctx)
			req.Body = http.NoBody
			req.ContentLength = 0
			if body != nil {
				req.Body = io.NopCloser(bytes.NewReader(body))
				req.ContentLength = int64(len(body))
			}
			t0 := fd.clock.Now()
			rsp, err := rep.rt.RoundTrip(req)
			if err != nil {
				// A fast connection-refused must not make a dead replica
				// look attractive: penalize the EWMA with at least a
				// second so picks steer away until the lease reaps it.
				elapsed := fd.clock.Now().Sub(t0)
				if elapsed < time.Second {
					elapsed = time.Second
				}
				rep.observe(elapsed, true)
				lastFailed = rep.Name()
				return fmt.Errorf("%w: %s: %v", errExchange, rep.Name(), err)
			}
			rep.observe(fd.clock.Now().Sub(t0), rsp.StatusCode >= http.StatusInternalServerError)
			resp = rsp
			return nil
		},
	}
	err := fd.chain.RoundTrip(ctx, inv)
	switch {
	case err == nil:
		fd.completed.Add(1)
		fd.metrics.Record("frontdoor.proxy", fd.clock.Now().Sub(start), resp.StatusCode >= http.StatusInternalServerError)
		copyResponse(w, resp)
	case errors.Is(err, ErrNoReplica) || errors.Is(err, ErrReplicasSaturated):
		fd.shedBusy.Add(1)
		fd.shedResponse(w, r, err.Error())
	default:
		fd.errored.Add(1)
		fd.metrics.Record("frontdoor.proxy", fd.clock.Now().Sub(start), true)
		rest.WriteError(w, r, http.StatusBadGateway, "all replica attempts failed: %v", err)
	}
}

// admit claims an in-flight slot, waiting in the bounded queue when the
// door is saturated. False means shed. A synchronous clock never waits:
// time only advances inside Sleep there, so a blocked arrival would
// deadlock the single-threaded run — saturation sheds instantly instead.
func (fd *FrontDoor) admit(ctx context.Context) bool {
	select {
	case fd.sem <- struct{}{}:
		return true
	default:
	}
	if vtime.IsSynchronous(fd.clock) {
		return false
	}
	if n := fd.queued.Add(1); fd.queueDepth > 0 && n > int64(fd.queueDepth) {
		fd.queued.Add(-1)
		return false
	}
	defer fd.queued.Add(-1)
	qctx, cancel := ctx, context.CancelFunc(func() {})
	if fd.queueTimeout > 0 {
		qctx, cancel = fd.clock.WithTimeout(ctx, fd.queueTimeout)
	}
	defer cancel()
	select {
	case fd.sem <- struct{}{}:
		return true
	case <-qctx.Done():
		return false
	}
}

// pickAcquired chooses a replica by power of two choices over
// score = (in-flight + 1) × EWMA latency and claims a slot on it. When
// both sampled candidates are full it falls back to a linear sweep, so
// ErrReplicasSaturated genuinely means "no headroom anywhere". A retry
// passes the replica that just failed as exclude, so the failover hop
// always lands on a sibling when one exists.
func (fd *FrontDoor) pickAcquired(exclude string) (*Replica, error) {
	reps := fd.rotation.Load().eligible
	if exclude != "" && len(reps) > 1 {
		rest := make([]*Replica, 0, len(reps)-1)
		for _, r := range reps {
			if r.Name() != exclude {
				rest = append(rest, r)
			}
		}
		if len(rest) > 0 {
			reps = rest
		}
	}
	switch len(reps) {
	case 0:
		return nil, ErrNoReplica
	case 1:
		if reps[0].tryAcquire() {
			reps[0].picks.Add(1)
			return reps[0], nil
		}
		return nil, ErrReplicasSaturated
	}
	i, j := fd.twoIndices(len(reps))
	a, b := reps[i], reps[j]
	if b.score() < a.score() {
		a, b = b, a
	}
	if a.tryAcquire() {
		a.picks.Add(1)
		return a, nil
	}
	if b.tryAcquire() {
		b.picks.Add(1)
		return b, nil
	}
	for _, rep := range reps {
		if rep.tryAcquire() {
			rep.picks.Add(1)
			return rep, nil
		}
	}
	return nil, ErrReplicasSaturated
}

// twoIndices draws two distinct indices from the seeded pick PRNG.
func (fd *FrontDoor) twoIndices(n int) (int, int) {
	fd.mu.Lock()
	i := fd.rng.Intn(n)
	j := fd.rng.Intn(n - 1)
	fd.mu.Unlock()
	if j >= i {
		j++
	}
	return i, j
}

// copyResponse relays a replica's buffered response to the client.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer func() { _ = resp.Body.Close() }()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
