package cloud

import "fmt"

// Policy is the pure scaling decision: given observed demand for one
// evaluation window, how many replicas should exist. It is shared by the
// tick Simulation (which doubles as the policy's property-test harness)
// and the real Autoscaler driving live replicas — the sim and the data
// plane cannot drift apart because they call the same function.
//
// Units are deliberately abstract: ReplicaCapacity is "requests one
// replica absorbs per evaluation window", where a window is a tick for
// the simulation and the autoscaler's evaluation interval for the real
// thing. The policy holds no clock and no state; cooldown — the only
// stateful part of a scaling decision — lives in Cooldown so both
// engines gate actions identically.
type Policy struct {
	// MinReplicas and MaxReplicas bound the pool.
	MinReplicas, MaxReplicas int
	// ReplicaCapacity is the requests one replica absorbs per window.
	ReplicaCapacity int
	// TargetUtilization is the desired demand/capacity ratio in (0,1]:
	// the pool is sized so each replica runs at this fraction of its
	// capacity, leaving headroom for bursts.
	TargetUtilization float64
}

// Validate reports whether the policy is self-consistent.
func (p Policy) Validate() error {
	switch {
	case p.MinReplicas < 1 || p.MaxReplicas < p.MinReplicas:
		return fmt.Errorf("%w: replicas [%d,%d]", ErrConfig, p.MinReplicas, p.MaxReplicas)
	case p.ReplicaCapacity < 1:
		return fmt.Errorf("%w: capacity %d", ErrConfig, p.ReplicaCapacity)
	case p.TargetUtilization <= 0 || p.TargetUtilization > 1:
		return fmt.Errorf("%w: target %v", ErrConfig, p.TargetUtilization)
	}
	return nil
}

// Desired returns the replica count the policy wants for the observed
// demand: enough replicas that each runs at TargetUtilization, clamped
// to [MinReplicas, MaxReplicas]. Pure — same inputs, same answer.
func (p Policy) Desired(demand int) int {
	per := int(float64(p.ReplicaCapacity) * p.TargetUtilization)
	ideal := ceilDiv(demand, per)
	if ideal < p.MinReplicas {
		ideal = p.MinReplicas
	}
	if ideal > p.MaxReplicas {
		ideal = p.MaxReplicas
	}
	return ideal
}

// Direction classifies one evaluation's outcome.
type Direction int

// Evaluation outcomes.
const (
	Hold Direction = iota
	ScaleUp
	ScaleDown
)

func (d Direction) String() string {
	switch d {
	case ScaleUp:
		return "up"
	case ScaleDown:
		return "down"
	default:
		return "hold"
	}
}

// Evaluate compares the desired count against the current pool size and
// names the direction. Current should count replicas that are coming or
// staying (online + starting), not ones already draining away.
func (p Policy) Evaluate(demand, current int) (target int, dir Direction) {
	target = p.Desired(demand)
	switch {
	case target > current:
		return target, ScaleUp
	case target < current:
		return target, ScaleDown
	default:
		return target, Hold
	}
}

// Cooldown gates scaling actions to at most one per window. It is
// unit-agnostic — the simulation feeds it tick numbers, the autoscaler
// feeds it clock nanoseconds — so both engines share one spacing rule.
// The zero value is ready: the first action is never gated.
type Cooldown struct {
	last  int64
	fired bool
}

// Ready reports whether an action at instant now respects the window
// since the last fired action.
func (c *Cooldown) Ready(now, window int64) bool {
	return !c.fired || now-c.last >= window
}

// Fire records that a scaling action happened at instant now.
func (c *Cooldown) Fire(now int64) {
	c.last, c.fired = now, true
}
