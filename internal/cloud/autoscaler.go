package cloud

import (
	"context"
	"fmt"
	"sync"
	"time"

	"soc/internal/registry"
	"soc/internal/vtime"
)

// Launcher starts and stops real replicas for the Autoscaler: an
// implementation owns the replica's process/goroutine lifecycle and its
// registry presence (publish + heartbeats on Launch, unpublish on Stop).
type Launcher interface {
	// Launch starts replica number id and returns it ready to serve.
	Launch(ctx context.Context, id int) (*Replica, error)
	// Stop tears the replica down. The autoscaler only calls Stop for
	// replicas that are fully drained (in-flight zero) or already dead
	// (lease expired out of the rotation).
	Stop(ctx context.Context, rep *Replica) error
}

// AutoscalerOptions configure the real autoscaler.
type AutoscalerOptions struct {
	// Policy is the pure sizing rule, shared with the tick Simulation.
	// ReplicaCapacity is per evaluation window (one Tick).
	Policy Policy
	// Cooldown is the minimum spacing between scaling actions.
	Cooldown time.Duration
	// Interval is Run's evaluation period — the policy window.
	Interval time.Duration
	// Clock drives cooldown spacing and the Run loop; nil = wall clock.
	Clock vtime.Clock
	// Directory, when set, makes membership registry-driven: each Tick
	// reconciles the front door's rotation against the live lease view in
	// Category, so replicas whose leases expired (killed, wedged) drop
	// out of rotation and out of the autoscaler's books.
	Directory registry.Directory
	// Category selects which registry entries are cluster replicas.
	Category string
	// Dial turns a registry entry the autoscaler didn't launch (e.g. a
	// remote replica that joined on its own) into a rotation member; nil
	// ignores foreign entries.
	Dial func(registry.Entry) (*Replica, error)
}

// Autoscaler sizes a live cluster: each Tick it measures demand (admitted
// requests since the last tick), asks the shared Policy for a target, and
// launches or drains replicas under a cooldown. Scale-down never drops
// work: a victim replica is marked draining (no new picks), keeps serving
// what it holds, and is only stopped on a later tick once its in-flight
// count reaches zero.
type Autoscaler struct {
	fd       *FrontDoor
	launcher Launcher
	opts     AutoscalerOptions
	clock    vtime.Clock

	mu           sync.Mutex
	running      []*Replica
	draining     []*Replica
	cool         Cooldown
	lastAdmitted uint64
	nextID       int
	launched     int
	stopped      int
	lost         int // removed because their lease expired
	lastDemand   int
	lastTarget   int
}

// NewAutoscaler wires an autoscaler to the front door it feeds. Call
// Prime to launch the initial MinReplicas before serving.
func NewAutoscaler(fd *FrontDoor, l Launcher, opts AutoscalerOptions) (*Autoscaler, error) {
	if err := opts.Policy.Validate(); err != nil {
		return nil, err
	}
	if opts.Cooldown < 0 || opts.Interval < 0 {
		return nil, fmt.Errorf("%w: negative cooldown/interval", ErrConfig)
	}
	if opts.Interval == 0 {
		opts.Interval = time.Second
	}
	if opts.Clock == nil {
		opts.Clock = vtime.Real{}
	}
	if l == nil {
		return nil, fmt.Errorf("%w: nil launcher", ErrConfig)
	}
	return &Autoscaler{fd: fd, launcher: l, opts: opts, clock: opts.Clock}, nil
}

// Prime launches the policy's MinReplicas into the rotation.
func (a *Autoscaler) Prime(ctx context.Context) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.running) < a.opts.Policy.MinReplicas {
		if err := a.launchLocked(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (a *Autoscaler) launchLocked(ctx context.Context) error {
	a.nextID++
	rep, err := a.launcher.Launch(ctx, a.nextID)
	if err != nil {
		a.nextID--
		return err
	}
	a.running = append(a.running, rep)
	a.launched++
	a.fd.Add(rep)
	return nil
}

// AutoscalerStats is one snapshot of the scaler's books.
type AutoscalerStats struct {
	Running    int `json:"running"`
	Draining   int `json:"draining"`
	Launched   int `json:"launched"`
	Stopped    int `json:"stopped"`
	Lost       int `json:"lost"`
	LastDemand int `json:"lastDemand"`
	LastTarget int `json:"lastTarget"`
}

// Stats snapshots the scaler's books.
func (a *Autoscaler) Stats() AutoscalerStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AutoscalerStats{
		Running: len(a.running), Draining: len(a.draining),
		Launched: a.launched, Stopped: a.stopped, Lost: a.lost,
		LastDemand: a.lastDemand, LastTarget: a.lastTarget,
	}
}

// Tick runs one evaluation: reconcile membership with the registry,
// finalize drained replicas, measure the window's demand, and act on the
// policy's verdict under the cooldown. Deterministic given deterministic
// inputs — the virtual-clock cluster scenario calls it directly.
func (a *Autoscaler) Tick(ctx context.Context) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// 1. Registry-driven membership: the live lease view is the truth.
	// Replicas whose leases expired leave the rotation; if one of them is
	// on our books it is dead, not drained — stop it and forget it.
	if a.opts.Directory != nil {
		live := a.liveEntries()
		dial := a.opts.Dial
		if dial == nil {
			dial = func(registry.Entry) (*Replica, error) { return nil, fmt.Errorf("unmanaged entry ignored") }
		}
		_, _, _ = a.fd.SyncMembership(live, dial)
		survivors := a.running[:0]
		for _, rep := range a.running {
			if a.fd.Replica(rep.Name()) != nil {
				survivors = append(survivors, rep)
				continue
			}
			a.lost++
			keep(a.launcher.Stop(ctx, rep))
		}
		a.running = survivors
	}

	// 2. Finalize drains: a draining replica with nothing in flight can
	// stop; one still holding requests waits for a later tick — never a
	// drain race.
	stillDraining := a.draining[:0]
	for _, rep := range a.draining {
		if rep.InFlight() > 0 {
			stillDraining = append(stillDraining, rep)
			continue
		}
		a.fd.Remove(rep.Name())
		a.stopped++
		keep(a.launcher.Stop(ctx, rep))
	}
	a.draining = stillDraining

	// 3. Demand: requests the door admitted since the last tick.
	admitted := a.fd.admitted.Load()
	demand := int(admitted - a.lastAdmitted)
	a.lastAdmitted = admitted
	a.lastDemand = demand

	// 4. Policy under cooldown.
	now := a.clock.Now().UnixNano()
	if !a.cool.Ready(now, int64(a.opts.Cooldown)) {
		return firstErr
	}
	target, dir := a.opts.Policy.Evaluate(demand, len(a.running))
	a.lastTarget = target
	switch dir {
	case ScaleUp:
		for len(a.running) < target {
			if err := a.launchLocked(ctx); err != nil {
				keep(err)
				break
			}
		}
		a.cool.Fire(now)
	case ScaleDown:
		// Drain newest first, never below the minimum.
		for len(a.running) > target && len(a.running) > a.opts.Policy.MinReplicas {
			victim := a.running[len(a.running)-1]
			a.running = a.running[:len(a.running)-1]
			a.fd.MarkDraining(victim.Name(), true)
			a.draining = append(a.draining, victim)
		}
		a.cool.Fire(now)
	}
	return firstErr
}

// liveEntries returns the registry's current live replica view.
func (a *Autoscaler) liveEntries() []registry.Entry {
	if a.opts.Category != "" {
		return a.opts.Directory.ByCategory(a.opts.Category)
	}
	return a.opts.Directory.List(true)
}

// Run evaluates every Interval until ctx is done. It is the live-mode
// loop; deterministic harnesses call Tick directly instead.
func (a *Autoscaler) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := a.clock.Sleep(ctx, a.opts.Interval); err != nil {
			return err
		}
		if err := a.Tick(ctx); err != nil {
			// Scaling hiccups (a launch that failed) are retried next
			// tick; the loop itself only ends with the context.
			continue
		}
	}
}
