package cloud

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"soc/internal/registry"
	"soc/internal/vtime"
)

// fakeLauncher runs replicas as in-process handlers and records every
// Stop — including any drain race (a Stop while requests were still in
// flight), the violation the cluster smoke gates on.
type fakeLauncher struct {
	reg             *registry.Registry // optional registry presence
	launchedNames   []string
	stoppedNames    []string
	drainViolations int
}

func (l *fakeLauncher) Launch(ctx context.Context, id int) (*Replica, error) {
	name := fmt.Sprintf("replica-%d", id)
	l.launchedNames = append(l.launchedNames, name)
	if l.reg != nil {
		if err := l.reg.Publish(registry.Entry{Name: name, Category: "replica", Endpoint: "local://" + name}); err != nil {
			return nil, err
		}
	}
	return NewLocalReplica(name, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), 0), nil
}

func (l *fakeLauncher) Stop(ctx context.Context, rep *Replica) error {
	if rep.InFlight() > 0 {
		l.drainViolations++
	}
	l.stoppedNames = append(l.stoppedNames, rep.Name())
	if l.reg != nil {
		_ = l.reg.Unpublish(rep.Name())
	}
	return nil
}

func newScaler(t *testing.T, clock vtime.Clock, l Launcher, p Policy, cooldown time.Duration) (*FrontDoor, *Autoscaler) {
	t.Helper()
	fd := NewFrontDoor(FrontDoorConfig{Clock: clock})
	a, err := NewAutoscaler(fd, l, AutoscalerOptions{
		Policy: p, Cooldown: cooldown, Interval: time.Second, Clock: clock,
	})
	if err != nil {
		t.Fatalf("NewAutoscaler: %v", err)
	}
	return fd, a
}

func TestAutoscalerPrimeAndScaleUp(t *testing.T) {
	clock := vtime.NewVirtual(epoch)
	l := &fakeLauncher{}
	fd, a := newScaler(t, clock, l, Policy{MinReplicas: 1, MaxReplicas: 5, ReplicaCapacity: 100, TargetUtilization: 1}, 0)
	ctx := context.Background()
	if err := a.Prime(ctx); err != nil {
		t.Fatalf("Prime: %v", err)
	}
	if st := a.Stats(); st.Running != 1 {
		t.Fatalf("after Prime: %+v", st)
	}
	fd.admitted.Add(350) // the window's demand
	if err := a.Tick(ctx); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	st := a.Stats()
	if st.Running != 4 || st.LastDemand != 350 || st.LastTarget != 4 {
		t.Fatalf("after demand 350: %+v", st)
	}
	if len(fd.Replicas()) != 4 {
		t.Fatalf("rotation has %d replicas, want 4", len(fd.Replicas()))
	}
}

func TestAutoscalerCooldownGatesActions(t *testing.T) {
	clock := vtime.NewVirtual(epoch)
	l := &fakeLauncher{}
	fd, a := newScaler(t, clock, l, Policy{MinReplicas: 1, MaxReplicas: 8, ReplicaCapacity: 100, TargetUtilization: 1}, 10*time.Second)
	ctx := context.Background()
	if err := a.Prime(ctx); err != nil {
		t.Fatalf("Prime: %v", err)
	}
	fd.admitted.Add(250)
	if err := a.Tick(ctx); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if st := a.Stats(); st.Running != 3 {
		t.Fatalf("first action: %+v", st)
	}
	// 5s later more demand arrives — inside the cooldown, no action.
	clock.Advance(5 * time.Second)
	fd.admitted.Add(600)
	if err := a.Tick(ctx); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if st := a.Stats(); st.Running != 3 {
		t.Fatalf("cooldown violated: %+v", st)
	}
	// Once the window passes, the next evaluation acts.
	clock.Advance(6 * time.Second)
	fd.admitted.Add(600)
	if err := a.Tick(ctx); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if st := a.Stats(); st.Running != 6 {
		t.Fatalf("post-cooldown: %+v", st)
	}
}

func TestAutoscalerScaleDownDrainsBeforeStopping(t *testing.T) {
	clock := vtime.NewVirtual(epoch)
	l := &fakeLauncher{}
	fd, a := newScaler(t, clock, l, Policy{MinReplicas: 1, MaxReplicas: 5, ReplicaCapacity: 100, TargetUtilization: 1}, 0)
	ctx := context.Background()
	if err := a.Prime(ctx); err != nil {
		t.Fatalf("Prime: %v", err)
	}
	fd.admitted.Add(400)
	if err := a.Tick(ctx); err != nil {
		t.Fatalf("scale up: %v", err)
	}
	if st := a.Stats(); st.Running != 4 {
		t.Fatalf("setup: %+v", st)
	}

	// Every replica holds one request when demand vanishes.
	reps := fd.Replicas()
	for _, rep := range reps {
		if !rep.tryAcquire() {
			t.Fatalf("acquire on %s", rep.Name())
		}
	}
	if err := a.Tick(ctx); err != nil { // demand 0 → target 1 → 3 drain
		t.Fatalf("scale down: %v", err)
	}
	st := a.Stats()
	if st.Running != 1 || st.Draining != 3 || st.Stopped != 0 {
		t.Fatalf("drain started: %+v", st)
	}
	if l.drainViolations != 0 {
		t.Fatalf("stop while in flight")
	}
	// Still holding: another tick must not stop them.
	if err := a.Tick(ctx); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if st := a.Stats(); st.Stopped != 0 || st.Draining != 3 {
		t.Fatalf("drain raced: %+v", st)
	}
	// Release everything; the next tick finalizes the drains.
	for _, rep := range reps {
		rep.release()
	}
	if err := a.Tick(ctx); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	st = a.Stats()
	if st.Stopped != 3 || st.Draining != 0 || st.Running != 1 {
		t.Fatalf("after finalize: %+v", st)
	}
	if l.drainViolations != 0 {
		t.Fatalf("drain violations: %d", l.drainViolations)
	}
	if got := len(fd.Replicas()); got != 1 {
		t.Fatalf("rotation still has %d replicas", got)
	}
}

// TestAutoscalerLeaseExpiryReapsDeadReplica: a replica that stops
// heartbeating (killed) is removed from rotation and from the scaler's
// books via the registry's lease view, then capacity is replaced.
func TestAutoscalerLeaseExpiryReapsDeadReplica(t *testing.T) {
	clock := vtime.NewVirtual(epoch)
	reg := registry.New(registry.WithLease(time.Minute), registry.WithClock(clock.Now))
	l := &fakeLauncher{reg: reg}
	fd := NewFrontDoor(FrontDoorConfig{Clock: clock})
	a, err := NewAutoscaler(fd, l, AutoscalerOptions{
		Policy:    Policy{MinReplicas: 2, MaxReplicas: 4, ReplicaCapacity: 100, TargetUtilization: 1},
		Clock:     clock,
		Directory: reg,
		Category:  "replica",
	})
	if err != nil {
		t.Fatalf("NewAutoscaler: %v", err)
	}
	ctx := context.Background()
	if err := a.Prime(ctx); err != nil {
		t.Fatalf("Prime: %v", err)
	}

	// replica-1 heartbeats; replica-2 went dark at t0 and expires.
	clock.Advance(40 * time.Second)
	if err := reg.Heartbeat("replica-1"); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clock.Advance(40 * time.Second)
	if err := a.Tick(ctx); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	st := a.Stats()
	if st.Lost != 1 {
		t.Fatalf("dead replica not reaped: %+v", st)
	}
	// The same tick's policy pass relaunches back to the minimum.
	if st.Running != 2 {
		t.Fatalf("capacity not replaced: %+v", st)
	}
	if fd.Replica("replica-2") != nil {
		t.Fatalf("expired replica still in rotation")
	}
}

// TestAutoscalerDrainProperty drives random demand traces and random
// in-flight holds through the scaler and asserts the safety properties:
// pool bounds hold, scaling actions respect the cooldown, and no replica
// is ever stopped with requests in flight.
func TestAutoscalerDrainProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clock := vtime.NewVirtual(epoch)
		l := &fakeLauncher{}
		p := Policy{
			MinReplicas:       1 + rng.Intn(2),
			MaxReplicas:       3 + rng.Intn(5),
			ReplicaCapacity:   50 + rng.Intn(100),
			TargetUtilization: 0.5 + 0.5*rng.Float64(),
		}
		cooldown := time.Duration(rng.Intn(8)) * time.Second
		fd, a := newScaler(t, clock, l, p, cooldown)
		ctx := context.Background()
		if err := a.Prime(ctx); err != nil {
			t.Fatalf("seed %d: Prime: %v", seed, err)
		}

		var held []*Replica
		var lastAction int64
		haveAction := false
		for step := 0; step < 120; step++ {
			clock.Advance(time.Duration(500+rng.Intn(2000)) * time.Millisecond)
			fd.admitted.Add(uint64(rng.Intn(p.MaxReplicas * p.ReplicaCapacity * 2)))
			// Randomly hold and release replica slots, draining or not.
			for _, rep := range fd.Replicas() {
				if rng.Intn(3) == 0 && rep.tryAcquire() {
					held = append(held, rep)
				}
			}
			for len(held) > 0 && rng.Intn(2) == 0 {
				held[len(held)-1].release()
				held = held[:len(held)-1]
			}

			prevFired, prevLast := a.cool.fired, a.cool.last
			if err := a.Tick(ctx); err != nil {
				t.Fatalf("seed %d step %d: Tick: %v", seed, step, err)
			}
			if a.cool.fired && (!prevFired || a.cool.last != prevLast) {
				// A scaling action fired this tick.
				if haveAction && a.cool.last-lastAction < int64(cooldown) {
					t.Fatalf("seed %d step %d: actions %v apart, cooldown %v",
						seed, step, time.Duration(a.cool.last-lastAction), cooldown)
				}
				lastAction, haveAction = a.cool.last, true
			}
			st := a.Stats()
			if st.Running < p.MinReplicas || st.Running > p.MaxReplicas {
				t.Fatalf("seed %d step %d: running %d outside [%d,%d]",
					seed, step, st.Running, p.MinReplicas, p.MaxReplicas)
			}
			if l.drainViolations != 0 {
				t.Fatalf("seed %d step %d: replica stopped with requests in flight", seed, step)
			}
			// Draining replicas are out of the eligible pick set.
			for _, rep := range fd.rotation.Load().eligible {
				if rep.Draining() {
					t.Fatalf("seed %d step %d: draining replica in eligible set", seed, step)
				}
			}
		}
		// Quiesce: release all holds; two more ticks must finalize every
		// drain without violations.
		for _, rep := range held {
			rep.release()
		}
		clock.Advance(time.Minute)
		for i := 0; i < 2; i++ {
			if err := a.Tick(ctx); err != nil {
				t.Fatalf("seed %d quiesce: %v", seed, err)
			}
			clock.Advance(time.Minute)
		}
		if st := a.Stats(); st.Draining != 0 && st.Running+st.Draining > p.MaxReplicas {
			t.Fatalf("seed %d: drains never finalized: %+v", seed, st)
		}
		if l.drainViolations != 0 {
			t.Fatalf("seed %d: %d drain violations", seed, l.drainViolations)
		}
	}
}
