package cloud

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"soc/internal/registry"
	"soc/internal/vtime"
)

// epoch matches the simtest virtual epoch so virtual-clock tests here
// read naturally alongside the scenario harness.
var epoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

func okHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, body)
	})
}

// sleepHandler serves after d elapses on the request clock — virtual
// clocks advance instantly, so tests stay fast and deterministic.
func sleepHandler(d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = vtime.Sleep(r.Context(), d)
		w.WriteHeader(http.StatusOK)
	})
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestFrontDoorProxiesToReplica(t *testing.T) {
	fd := NewFrontDoor(FrontDoorConfig{})
	fd.Add(NewLocalReplica("r1", okHandler("hello"), 0))
	rec := get(t, fd, "/services/Echo/invoke/Echo")
	if rec.Code != http.StatusOK || rec.Body.String() != "hello" {
		t.Fatalf("proxy: got %d %q", rec.Code, rec.Body.String())
	}
	st := fd.Stats()
	if st.Admitted != 1 || st.Completed != 1 || st.Shed() != 0 {
		t.Fatalf("stats after one call: %+v", st)
	}
}

func TestFrontDoorNoReplicasSheds(t *testing.T) {
	fd := NewFrontDoor(FrontDoorConfig{})
	rec := get(t, fd, "/x")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty rotation: got %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatalf("503 must carry Retry-After")
	}
	if st := fd.Stats(); st.ShedBusy != 1 {
		t.Fatalf("shedBusy = %d, want 1: %+v", st.ShedBusy, st)
	}
}

// TestFrontDoorP2CSkewedLatency: the skewed-latency replica must receive
// measurably fewer picks — the defining property of p2c over EWMA scores.
func TestFrontDoorP2CSkewedLatency(t *testing.T) {
	clock := vtime.NewVirtual(epoch)
	fd := NewFrontDoor(FrontDoorConfig{Clock: clock, Seed: 7})
	// Virtual sleeps advance the shared clock, so the slow replica's
	// samples land in its EWMA while fast replicas stay near zero.
	fd.Add(NewLocalReplica("fast-a", sleepHandler(time.Millisecond), 0))
	fd.Add(NewLocalReplica("fast-b", sleepHandler(time.Millisecond), 0))
	fd.Add(NewLocalReplica("slow", sleepHandler(50*time.Millisecond), 0))

	const calls = 3000
	for i := 0; i < calls; i++ {
		req := httptest.NewRequest(http.MethodGet, "/ping", nil)
		req = req.WithContext(vtime.WithClock(req.Context(), clock))
		rec := httptest.NewRecorder()
		fd.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("call %d: %d", i, rec.Code)
		}
	}
	slow := fd.Replica("slow").Picks()
	fastA := fd.Replica("fast-a").Picks()
	fastB := fd.Replica("fast-b").Picks()
	if slow+fastA+fastB != calls {
		t.Fatalf("picks %d+%d+%d != %d", slow, fastA, fastB, calls)
	}
	// Uniform would give each ~1000. The slow replica should win only the
	// i==j-avoiding draws that never sample a fast sibling — p2c theory
	// says roughly 1/3 of its uniform share; assert well under half.
	if slow >= calls/6 {
		t.Fatalf("slow replica got %d of %d picks; p2c should starve it below %d (fast: %d, %d)",
			slow, calls, calls/6, fastA, fastB)
	}
	if fastA == 0 || fastB == 0 {
		t.Fatalf("fast replicas must both serve: %d, %d", fastA, fastB)
	}
}

// TestFrontDoorShedsWhenSaturated: with every in-flight slot held, a
// synchronous clock sheds instantly with 503 + Retry-After, metered in
// /metricz under frontdoor.shed.
func TestFrontDoorShedsWhenSaturated(t *testing.T) {
	clock := vtime.NewVirtual(epoch)
	block := make(chan struct{})
	started := make(chan struct{})
	fd := NewFrontDoor(FrontDoorConfig{Clock: clock, MaxInFlight: 2})
	fd.Add(NewLocalReplica("r1", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-block
	}), 0))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			get(t, fd, "/hold")
		}()
		<-started
	}
	rec := get(t, fd, "/one-too-many")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated door: got %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatalf("shed response must carry Retry-After")
	}
	close(block)
	wg.Wait()
	if st := fd.Stats(); st.ShedQueue != 1 || st.Admitted != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if snap := fd.Metrics().Snapshot(); snap["frontdoor.shed"].Calls != 1 {
		t.Fatalf("frontdoor.shed not metered: %+v", snap["frontdoor.shed"])
	}
}

// TestFrontDoorRetriesDeadReplica: a transport-level failure replays the
// request (body included) against a sibling; the client sees success.
func TestFrontDoorRetriesDeadReplica(t *testing.T) {
	fd := NewFrontDoor(FrontDoorConfig{Seed: 3})
	fd.Add(NewReplica("dead", roundTripperFunc(func(req *http.Request) (*http.Response, error) {
		return nil, errors.New("connection refused")
	}), 0))
	fd.Add(NewLocalReplica("live", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, 5)
		n, _ := r.Body.Read(b)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b[:n])
	}), 0))

	ok := 0
	for i := 0; i < 40; i++ {
		req := httptest.NewRequest(http.MethodPost, "/echo", strings.NewReader("ping!"))
		rec := httptest.NewRecorder()
		fd.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			ok++
			if rec.Body.String() != "ping!" {
				t.Fatalf("replayed body mangled: %q", rec.Body.String())
			}
		}
	}
	// With MaxAttempts 2 the only failures are dead→dead double draws,
	// impossible here with two replicas and distinct p2c candidates.
	if ok != 40 {
		t.Fatalf("retry over dead replica: %d/40 ok", ok)
	}
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestFrontDoorDrainingReceivesNoPicks: draining excludes a replica from
// new picks while keeping it visible in the rotation.
func TestFrontDoorDrainingReceivesNoPicks(t *testing.T) {
	fd := NewFrontDoor(FrontDoorConfig{Seed: 5})
	fd.Add(NewLocalReplica("a", okHandler("a"), 0))
	fd.Add(NewLocalReplica("b", okHandler("b"), 0))
	fd.MarkDraining("b", true)
	for i := 0; i < 50; i++ {
		if rec := get(t, fd, "/x"); rec.Code != http.StatusOK {
			t.Fatalf("call %d: %d", i, rec.Code)
		}
	}
	if picks := fd.Replica("b").Picks(); picks != 0 {
		t.Fatalf("draining replica got %d picks", picks)
	}
	if got := fd.Replica("a").Picks(); got != 50 {
		t.Fatalf("healthy replica got %d picks, want 50", got)
	}
	if len(fd.Replicas()) != 2 {
		t.Fatalf("draining replica must stay visible")
	}
}

func TestFrontDoorClusterz(t *testing.T) {
	fd := NewFrontDoor(FrontDoorConfig{MaxInFlight: 8})
	fd.Add(NewLocalReplica("r1", okHandler("x"), 4))
	fd.Add(NewLocalReplica("r2", okHandler("y"), 4))
	fd.MarkDraining("r2", true)
	for i := 0; i < 10; i++ {
		get(t, fd, "/work")
	}
	rec := get(t, fd, "/clusterz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/clusterz: %d", rec.Code)
	}
	var rep clusterzReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rep.MaxInFlight != 8 || len(rep.Replicas) != 2 {
		t.Fatalf("report: %+v", rep)
	}
	states := map[string]string{}
	var picks uint64
	for _, rs := range rep.Replicas {
		states[rs.Name] = rs.State
		picks += rs.Picks
		if rs.MaxInFlight != 4 {
			t.Fatalf("replica %s maxInFlight %d", rs.Name, rs.MaxInFlight)
		}
	}
	if states["r1"] != "healthy" || states["r2"] != "draining" {
		t.Fatalf("states: %v", states)
	}
	if picks != 10 || rep.Stats.Admitted != 10 {
		t.Fatalf("picks %d admitted %d, want 10", picks, rep.Stats.Admitted)
	}
}

func TestFrontDoorMetriczShape(t *testing.T) {
	fd := NewFrontDoor(FrontDoorConfig{})
	fd.Add(NewLocalReplica("r1", okHandler("x"), 0))
	get(t, fd, "/work")
	rec := get(t, fd, "/metricz")
	var rep metriczReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rep.BucketBoundsNanos) == 0 {
		t.Fatalf("metricz missing bucket bounds")
	}
	if op, ok := rep.Operations["frontdoor.proxy"]; !ok || op.Calls != 1 {
		t.Fatalf("frontdoor.proxy not metered: %+v", rep.Operations)
	}
}

// TestFrontDoorLeaseExpiryDropsReplica: membership follows the registry's
// live view — an expired lease takes the replica out of rotation.
func TestFrontDoorLeaseExpiryDropsReplica(t *testing.T) {
	clock := vtime.NewVirtual(epoch)
	reg := registry.New(registry.WithLease(time.Minute), registry.WithClock(clock.Now))
	for _, name := range []string{"r1", "r2"} {
		if err := reg.Publish(registry.Entry{Name: name, Category: "replica", Endpoint: "local"}); err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
	}
	fd := NewFrontDoor(FrontDoorConfig{Clock: clock})
	dial := func(e registry.Entry) (*Replica, error) {
		return NewLocalReplica(e.Name, okHandler(e.Name), 0), nil
	}
	if added, removed, err := fd.SyncMembership(reg.ByCategory("replica"), dial); err != nil || added != 2 || removed != 0 {
		t.Fatalf("initial sync: added=%d removed=%d err=%v", added, removed, err)
	}

	// r1 keeps heartbeating; r2 goes silent and its lease expires.
	clock.Advance(40 * time.Second)
	if err := reg.Heartbeat("r1"); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clock.Advance(40 * time.Second)
	if added, removed, err := fd.SyncMembership(reg.ByCategory("replica"), dial); err != nil || added != 0 || removed != 1 {
		t.Fatalf("post-expiry sync: added=%d removed=%d err=%v", added, removed, err)
	}
	if fd.Replica("r2") != nil {
		t.Fatalf("expired replica still in rotation")
	}
	for i := 0; i < 20; i++ {
		rec := get(t, fd, "/x")
		if rec.Code != http.StatusOK || rec.Body.String() != "r1" {
			t.Fatalf("call %d routed to %q (%d), want r1", i, rec.Body.String(), rec.Code)
		}
	}
}

// TestFrontDoorPerReplicaCapSheds: when every replica is at its own cap,
// the door answers 503 (shedBusy), not 502.
func TestFrontDoorPerReplicaCapSheds(t *testing.T) {
	clock := vtime.NewVirtual(epoch)
	block := make(chan struct{})
	started := make(chan struct{})
	fd := NewFrontDoor(FrontDoorConfig{Clock: clock, MaxInFlight: 8})
	fd.Add(NewLocalReplica("tiny", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-block
	}), 1))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, fd, "/hold")
	}()
	<-started
	rec := get(t, fd, "/over-cap")
	close(block)
	wg.Wait()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over replica cap: got %d, want 503", rec.Code)
	}
	if st := fd.Stats(); st.ShedBusy != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
