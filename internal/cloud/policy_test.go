package cloud

import (
	"math/rand"
	"testing"
)

// TestPolicyDesiredBounds: for any demand, the desired count stays inside
// [MinReplicas, MaxReplicas].
func TestPolicyDesiredBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := Policy{
			MinReplicas:       1 + rng.Intn(5),
			MaxReplicas:       1 + rng.Intn(20),
			ReplicaCapacity:   1 + rng.Intn(500),
			TargetUtilization: 0.05 + 0.95*rng.Float64(),
		}
		if p.MaxReplicas < p.MinReplicas {
			p.MaxReplicas = p.MinReplicas
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("generated invalid policy: %v", err)
		}
		d := rng.Intn(100000)
		got := p.Desired(d)
		if got < p.MinReplicas || got > p.MaxReplicas {
			t.Fatalf("Desired(%d) = %d outside [%d,%d] for %+v", d, got, p.MinReplicas, p.MaxReplicas, p)
		}
	}
}

// TestPolicyDesiredMonotone: more demand never wants fewer replicas.
func TestPolicyDesiredMonotone(t *testing.T) {
	p := Policy{MinReplicas: 1, MaxReplicas: 12, ReplicaCapacity: 40, TargetUtilization: 0.7}
	prev := 0
	for d := 0; d <= 2000; d++ {
		got := p.Desired(d)
		if got < prev {
			t.Fatalf("Desired(%d) = %d < Desired(%d) = %d", d, got, d-1, prev)
		}
		prev = got
	}
}

// TestPolicyDesiredHeadroom: the pool the policy asks for can absorb the
// demand at or below the target utilization whenever the max bound allows
// it at all — the defining property of target-utilization sizing.
func TestPolicyDesiredHeadroom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		p := Policy{
			MinReplicas:       1,
			MaxReplicas:       1 + rng.Intn(30),
			ReplicaCapacity:   1 + rng.Intn(200),
			TargetUtilization: 0.05 + 0.95*rng.Float64(),
		}
		d := rng.Intn(5000)
		n := p.Desired(d)
		per := int(float64(p.ReplicaCapacity) * p.TargetUtilization)
		if per < 1 {
			per = 1
		}
		// If the clamp didn't bite, n replicas at target utilization cover d.
		if n < p.MaxReplicas && n*per < d {
			t.Fatalf("Desired(%d) = %d covers only %d at target for %+v", d, n, n*per, p)
		}
	}
}

// TestPolicyEvaluateDirection: Evaluate's direction always agrees with the
// sign of target-current, and target is exactly Desired.
func TestPolicyEvaluateDirection(t *testing.T) {
	p := Policy{MinReplicas: 2, MaxReplicas: 10, ReplicaCapacity: 50, TargetUtilization: 0.8}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		d, cur := rng.Intn(2000), 1+rng.Intn(12)
		target, dir := p.Evaluate(d, cur)
		if target != p.Desired(d) {
			t.Fatalf("Evaluate target %d != Desired %d", target, p.Desired(d))
		}
		want := Hold
		if target > cur {
			want = ScaleUp
		} else if target < cur {
			want = ScaleDown
		}
		if dir != want {
			t.Fatalf("Evaluate(%d,%d) dir %v, want %v", d, cur, dir, want)
		}
	}
}

// TestCooldownSpacing: over a random action stream, Cooldown never admits
// two fired actions closer than the window, and the first is never gated.
func TestCooldownSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		var c Cooldown
		window := int64(1 + rng.Intn(20))
		now := int64(0)
		lastFired := int64(-1)
		firedAny := false
		for step := 0; step < 200; step++ {
			now += int64(rng.Intn(5))
			if !c.Ready(now, window) {
				continue
			}
			if rng.Intn(2) == 0 {
				continue // policy said Hold; Ready without Fire must not consume the window
			}
			if firedAny && now-lastFired < window {
				t.Fatalf("trial %d: actions at %d and %d violate window %d", trial, lastFired, now, window)
			}
			c.Fire(now)
			lastFired, firedAny = now, true
		}
		if !firedAny && window > 0 {
			// The zero value must admit the first action immediately.
			if !c.Ready(0, window) {
				t.Fatalf("zero-value cooldown gated the first action")
			}
		}
	}
}

// TestSimulationMatchesPolicy: the tick simulation is the policy's harness —
// every ScaledTo it reports must be reachable from the policy's Desired for
// that tick's demand, and instance counts stay within bounds throughout.
func TestSimulationMatchesPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		cfg := AutoscalerConfig{
			MinInstances:      1 + rng.Intn(3),
			MaxInstances:      3 + rng.Intn(8),
			InstanceCapacity:  5 + rng.Intn(50),
			TargetUtilization: 0.3 + 0.7*rng.Float64(),
			CooldownTicks:     rng.Intn(4),
			StartupTicks:      rng.Intn(3),
		}
		if cfg.MaxInstances < cfg.MinInstances {
			cfg.MaxInstances = cfg.MinInstances
		}
		sim, err := NewSimulation(cfg, LeastLoaded)
		if err != nil {
			t.Fatalf("NewSimulation: %v", err)
		}
		demand := make([]int, 50)
		for i := range demand {
			demand[i] = rng.Intn(cfg.MaxInstances * cfg.InstanceCapacity * 2)
		}
		stats, err := sim.Run(demand)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for _, st := range stats {
			total := st.Instances + st.Pending
			if st.Instances < cfg.MinInstances || total > cfg.MaxInstances {
				t.Fatalf("trial %d tick %d: pool %d online +%d pending outside [%d,%d]",
					trial, st.Tick, st.Instances, st.Pending, cfg.MinInstances, cfg.MaxInstances)
			}
			if st.ScaledTo < cfg.MinInstances || st.ScaledTo > cfg.MaxInstances {
				t.Fatalf("trial %d tick %d: ScaledTo %d outside bounds", trial, st.Tick, st.ScaledTo)
			}
		}
	}
}
