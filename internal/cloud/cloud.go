// Package cloud implements the "Cloud Computing and Software as a
// Service" unit of CSE446 as a deterministic simulation: a pool of
// virtual nodes hosting service instances, request load balancing
// (round-robin and least-loaded), an on-demand autoscaler driven by
// target utilization with a cooldown, and per-instance-tick metering —
// the on-demand, virtualized, pay-per-use properties the course defines
// cloud computing by.
package cloud

import (
	"errors"
	"fmt"
	"strings"
)

// ErrConfig reports an invalid simulation configuration.
var ErrConfig = errors.New("cloud: invalid configuration")

// Instance is one running copy of the service.
type Instance struct {
	ID int
	// Capacity is requests the instance can serve per tick.
	Capacity int
	// served accumulates this tick's assignment.
	served int
}

// Strategy selects how the balancer spreads requests.
type Strategy int

// Balancing strategies.
const (
	RoundRobin Strategy = iota
	LeastLoaded
)

// Balancer assigns requests to instances tick by tick.
type Balancer struct {
	strategy Strategy
	rrNext   int
}

// NewBalancer returns a balancer with the given strategy.
func NewBalancer(s Strategy) (*Balancer, error) {
	if s != RoundRobin && s != LeastLoaded {
		return nil, fmt.Errorf("%w: strategy %d", ErrConfig, s)
	}
	return &Balancer{strategy: s}, nil
}

// Assign distributes n requests across instances, returning how many were
// served and how many dropped (beyond total capacity). Instances' served
// counters are reset first.
func (b *Balancer) Assign(instances []*Instance, n int) (served, dropped int) {
	for _, ins := range instances {
		ins.served = 0
	}
	if len(instances) == 0 {
		return 0, n
	}
	for i := 0; i < n; i++ {
		var target *Instance
		switch b.strategy {
		case RoundRobin:
			// Scan from rrNext for an instance with headroom.
			for j := 0; j < len(instances); j++ {
				cand := instances[(b.rrNext+j)%len(instances)]
				if cand.served < cand.Capacity {
					target = cand
					b.rrNext = (b.rrNext + j + 1) % len(instances)
					break
				}
			}
		case LeastLoaded:
			for _, cand := range instances {
				if cand.served >= cand.Capacity {
					continue
				}
				if target == nil || float64(cand.served)/float64(cand.Capacity) <
					float64(target.served)/float64(target.Capacity) {
					target = cand
				}
			}
		}
		if target == nil {
			dropped = n - i
			break
		}
		target.served++
		served++
	}
	return served, dropped
}

// AutoscalerConfig tunes the scaling loop.
type AutoscalerConfig struct {
	// MinInstances and MaxInstances bound the pool.
	MinInstances, MaxInstances int
	// InstanceCapacity is each instance's requests/tick.
	InstanceCapacity int
	// TargetUtilization is the desired load/capacity ratio in (0,1].
	TargetUtilization float64
	// CooldownTicks is the minimum spacing between scaling actions.
	CooldownTicks int
	// StartupTicks is how long a new instance takes to come online.
	StartupTicks int
}

// policy extracts the pure scaling policy the simulation shares with the
// real Autoscaler (one window == one tick).
func (c AutoscalerConfig) policy() Policy {
	return Policy{
		MinReplicas:       c.MinInstances,
		MaxReplicas:       c.MaxInstances,
		ReplicaCapacity:   c.InstanceCapacity,
		TargetUtilization: c.TargetUtilization,
	}
}

func (c AutoscalerConfig) validate() error {
	if err := c.policy().Validate(); err != nil {
		return err
	}
	if c.CooldownTicks < 0 || c.StartupTicks < 0 {
		return fmt.Errorf("%w: negative ticks", ErrConfig)
	}
	return nil
}

// TickStats is one simulated tick's outcome.
type TickStats struct {
	Tick        int
	Demand      int
	Served      int
	Dropped     int
	Instances   int // online instances
	Pending     int // instances still starting
	Utilization float64
	ScaledTo    int // desired count after this tick's decision
}

// Simulation runs demand against an autoscaled pool.
type Simulation struct {
	cfg      AutoscalerConfig
	balancer *Balancer

	nextID       int
	online       []*Instance
	pending      []int    // remaining startup ticks per pending instance
	cool         Cooldown // spacing between scaling actions, in ticks
	instanceTick int      // metering: accumulated instance-ticks
}

// NewSimulation returns a simulation starting at MinInstances.
func NewSimulation(cfg AutoscalerConfig, strategy Strategy) (*Simulation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b, err := NewBalancer(strategy)
	if err != nil {
		return nil, err
	}
	s := &Simulation{cfg: cfg, balancer: b}
	for i := 0; i < cfg.MinInstances; i++ {
		s.addInstance()
	}
	return s, nil
}

func (s *Simulation) addInstance() {
	s.nextID++
	s.online = append(s.online, &Instance{ID: s.nextID, Capacity: s.cfg.InstanceCapacity})
}

// Run simulates the demand series and returns per-tick statistics.
func (s *Simulation) Run(demand []int) ([]TickStats, error) {
	if len(demand) == 0 {
		return nil, fmt.Errorf("%w: empty demand", ErrConfig)
	}
	stats := make([]TickStats, len(demand))
	for tick, d := range demand {
		if d < 0 {
			return nil, fmt.Errorf("%w: negative demand at tick %d", ErrConfig, tick)
		}
		// Pending instances come online.
		var stillPending []int
		for _, remain := range s.pending {
			if remain <= 1 {
				s.addInstance()
			} else {
				stillPending = append(stillPending, remain-1)
			}
		}
		s.pending = stillPending

		served, dropped := s.balancer.Assign(s.online, d)
		capacity := len(s.online) * s.cfg.InstanceCapacity
		util := 0.0
		if capacity > 0 {
			util = float64(served) / float64(capacity)
		}
		s.instanceTick += len(s.online)

		// Scaling decision on observed demand (not just served), shared
		// with the real Autoscaler via the extracted Policy.
		desired := len(s.online)
		if s.cool.Ready(int64(tick), int64(s.cfg.CooldownTicks)) {
			current := len(s.online) + len(s.pending)
			target, dir := s.cfg.policy().Evaluate(d, current)
			switch {
			case dir == ScaleUp:
				for i := current; i < target; i++ {
					if s.cfg.StartupTicks == 0 {
						s.addInstance()
					} else {
						s.pending = append(s.pending, s.cfg.StartupTicks)
					}
				}
				s.cool.Fire(int64(tick))
				desired = target
			case dir == ScaleDown && len(s.online) > s.cfg.MinInstances:
				// Scale down immediately (terminate newest first), never
				// below the configured minimum.
				drop := current - target
				for drop > 0 && len(s.pending) > 0 {
					s.pending = s.pending[:len(s.pending)-1]
					drop--
				}
				for drop > 0 && len(s.online) > s.cfg.MinInstances {
					s.online = s.online[:len(s.online)-1]
					drop--
				}
				s.cool.Fire(int64(tick))
				desired = len(s.online) + len(s.pending)
			}
		}

		stats[tick] = TickStats{
			Tick: tick, Demand: d, Served: served, Dropped: dropped,
			Instances: len(s.online), Pending: len(s.pending),
			Utilization: util, ScaledTo: desired,
		}
	}
	return stats, nil
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// InstanceTicks is the metering counter: total instance-ticks consumed.
func (s *Simulation) InstanceTicks() int { return s.instanceTick }

// Bill computes the metered cost at a rate per instance-tick.
func (s *Simulation) Bill(ratePerInstanceTick float64) float64 {
	return float64(s.instanceTick) * ratePerInstanceTick
}

// FormatStats renders the tick table of the elasticity experiment.
func FormatStats(stats []TickStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %7s %7s %8s %10s %8s %6s\n",
		"tick", "demand", "served", "dropped", "instances", "pending", "util")
	for _, st := range stats {
		fmt.Fprintf(&b, "%5d %7d %7d %8d %10d %8d %5.0f%%\n",
			st.Tick, st.Demand, st.Served, st.Dropped, st.Instances, st.Pending, st.Utilization*100)
	}
	return b.String()
}

// StaticServed computes how much of the demand a fixed pool of n
// instances would have served — the non-elastic baseline the cloud unit
// contrasts against.
func StaticServed(demand []int, n, capacity int) (served, dropped int, err error) {
	if n < 1 || capacity < 1 {
		return 0, 0, fmt.Errorf("%w: n=%d capacity=%d", ErrConfig, n, capacity)
	}
	for _, d := range demand {
		if d < 0 {
			return 0, 0, fmt.Errorf("%w: negative demand", ErrConfig)
		}
		cap := n * capacity
		if d <= cap {
			served += d
		} else {
			served += cap
			dropped += d - cap
		}
	}
	return served, dropped, nil
}
