package cloud

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"soc/internal/telemetry"
)

// Replica is one live backend in the front door's rotation: a name, an
// exchange transport (in-process handler or remote base URL), and the
// lock-free instrument block the power-of-two-choices picker reads —
// in-flight count, EWMA latency, pick/outcome counters, and the draining
// flag that takes it out of rotation while existing requests finish.
type Replica struct {
	name string
	rt   http.RoundTripper
	// maxInFlight caps concurrent requests on this replica (0 = no cap);
	// this is the per-machine capacity the balancer spreads around.
	maxInFlight int

	inflight  atomic.Int64
	picks     atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	rejected  atomic.Uint64 // tryAcquire refusals: replica at capacity
	draining  atomic.Bool
	latency   telemetry.EWMA

	// DrainNotify, when set, is called with the new draining state on every
	// SetDraining flip — the hook that propagates a scale-down drain to the
	// backing machine (e.g. host.SetDraining, so its own /healthz probes go
	// 503 while it empties). Set it before the replica joins a rotation.
	DrainNotify func(bool)
}

// NewReplica builds a replica over an arbitrary exchange transport. Most
// callers want NewLocalReplica or NewHTTPReplica; harnesses that need to
// model process death inject a transport whose RoundTrip fails like a
// dead TCP peer.
func NewReplica(name string, rt http.RoundTripper, maxInFlight int) *Replica {
	return &Replica{name: name, rt: rt, maxInFlight: maxInFlight}
}

// NewLocalReplica builds a replica over an in-process handler (e.g. a
// *host.Host), exchanged through HandlerTransport.
func NewLocalReplica(name string, h http.Handler, maxInFlight int) *Replica {
	return NewReplica(name, HandlerTransport(h), maxInFlight)
}

// NewHTTPReplica builds a replica proxying to a remote base URL. A nil
// client gets a 30s-timeout default.
func NewHTTPReplica(name, baseURL string, client *http.Client, maxInFlight int) (*Replica, error) {
	base, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("%w: replica %s base URL: %v", ErrConfig, name, err)
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return NewReplica(name, rebaseTransport{base: base, client: client}, maxInFlight), nil
}

// Name returns the replica's rotation name.
func (r *Replica) Name() string { return r.name }

// InFlight returns the number of requests currently on this replica.
func (r *Replica) InFlight() int64 { return r.inflight.Load() }

// Picks returns how many times the balancer has chosen this replica.
func (r *Replica) Picks() uint64 { return r.picks.Load() }

// Draining reports whether the replica is excluded from new picks.
func (r *Replica) Draining() bool { return r.draining.Load() }

// SetDraining flips the draining flag: a draining replica receives no new
// picks but keeps serving what it already holds. A DrainNotify hook, if
// set, hears about the flip so the backing machine can mirror it.
func (r *Replica) SetDraining(v bool) {
	r.draining.Store(v)
	if r.DrainNotify != nil {
		r.DrainNotify(v)
	}
}

// tryAcquire claims an in-flight slot, refusing at capacity or while
// draining.
func (r *Replica) tryAcquire() bool {
	if r.draining.Load() {
		return false
	}
	n := r.inflight.Add(1)
	if r.maxInFlight > 0 && n > int64(r.maxInFlight) {
		r.inflight.Add(-1)
		r.rejected.Add(1)
		return false
	}
	return true
}

func (r *Replica) release() { r.inflight.Add(-1) }

// score is the power-of-two-choices load estimate: EWMA latency scaled by
// queue depth (+1 so an idle replica still ranks by its latency). A
// replica with no samples yet scores near zero, which deliberately
// attracts traffic — new capacity warms up instead of idling.
func (r *Replica) score() float64 {
	ew := float64(r.latency.Value())
	if ew <= 0 {
		ew = 1
	}
	return (float64(r.inflight.Load()) + 1) * ew
}

// observe folds one completed exchange into the instruments.
func (r *Replica) observe(d time.Duration, failed bool) {
	r.latency.Observe(d)
	if failed {
		r.failed.Add(1)
	} else {
		r.completed.Add(1)
	}
}

// ReplicaStatus is one replica's row in the GET /clusterz document.
type ReplicaStatus struct {
	Name             string `json:"name"`
	State            string `json:"state"` // "healthy" or "draining"
	InFlight         int64  `json:"inFlight"`
	MaxInFlight      int    `json:"maxInFlight"`
	EWMALatencyNanos int64  `json:"ewmaLatencyNanos"`
	Picks            uint64 `json:"picks"`
	Completed        uint64 `json:"completed"`
	Failed           uint64 `json:"failed"`
	Rejected         uint64 `json:"rejected"`
}

// Status snapshots the replica's balancer-visible state.
func (r *Replica) Status() ReplicaStatus {
	state := "healthy"
	if r.draining.Load() {
		state = "draining"
	}
	return ReplicaStatus{
		Name:             r.name,
		State:            state,
		InFlight:         r.inflight.Load(),
		MaxInFlight:      r.maxInFlight,
		EWMALatencyNanos: int64(r.latency.Value()),
		Picks:            r.picks.Load(),
		Completed:        r.completed.Load(),
		Failed:           r.failed.Load(),
		Rejected:         r.rejected.Load(),
	}
}

// HandlerTransport adapts an in-process http.Handler to the RoundTripper
// exchange a Replica performs: the handler's response is buffered and
// returned as an *http.Response, so the front door treats local and
// remote replicas identically (including replaying a request against a
// different replica after a failure — nothing was written to the client).
func HandlerTransport(h http.Handler) http.RoundTripper {
	return handlerTransport{h: h}
}

type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	bw := &bufferedWriter{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(bw, req)
	body := bw.buf.Bytes()
	return &http.Response{
		Status:        http.StatusText(bw.code),
		StatusCode:    bw.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        bw.header,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}, nil
}

// bufferedWriter is the in-memory ResponseWriter behind HandlerTransport.
type bufferedWriter struct {
	header http.Header
	buf    bytes.Buffer
	code   int
	wrote  bool
}

func (w *bufferedWriter) Header() http.Header { return w.header }

func (w *bufferedWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
}

func (w *bufferedWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.buf.Write(p)
}

// rebaseTransport rewrites each request onto a remote replica's base URL
// and exchanges it over the replica's HTTP client.
type rebaseTransport struct {
	base   *url.URL
	client *http.Client
}

func (t rebaseTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	out := req.Clone(req.Context())
	out.URL.Scheme = t.base.Scheme
	out.URL.Host = t.base.Host
	out.Host = ""
	// Incoming server requests carry RequestURI; outbound client requests
	// must not.
	out.RequestURI = ""
	return t.client.Do(out)
}
