package respcache

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheConcurrentMixed hammers every public entry point from
// concurrent goroutines — hits, misses, replacing puts, invalidation,
// stats and length reads — so the race detector sees the full sharded
// locking protocol (read-locked gets with atomic recency stamps, write
// locked inserts, lock-free counters) in one schedule.
func TestCacheConcurrentMixed(t *testing.T) {
	c := New(256, time.Hour)
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*500+i)%64)
				e, _ := c.Do(key, func() (*Entry, bool) {
					return &Entry{Status: 200, Header: http.Header{}, Body: []byte(key)}, true
				})
				if string(e.Body) != key {
					t.Errorf("Do(%q) returned body %q", key, e.Body)
					return
				}
				ops.Add(1)
				switch i % 7 {
				case 3:
					c.Invalidate(key)
				case 5:
					c.Len()
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != ops.Load() {
		t.Errorf("hits %d + misses %d != %d Do calls", hits, misses, ops.Load())
	}
}

// TestCacheLRUBoundUnderChurn inserts far more distinct keys than the
// capacity from concurrent goroutines and checks the sharded LRU never
// exceeds its global bound — per-shard eviction must add up.
func TestCacheLRUBoundUnderChurn(t *testing.T) {
	const capacity = 128
	c := New(capacity, 0)
	if c.Shards() < 2 {
		t.Fatalf("capacity %d got %d shards, want a sharded cache", capacity, c.Shards())
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < capacity*10; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				c.Do(key, func() (*Entry, bool) {
					return &Entry{Status: 200, Body: []byte("x")}, true
				})
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Errorf("cache holds %d entries past capacity %d", n, capacity)
	}
}

// TestCacheSingleflightStampede aims many concurrent misses for one key
// at a slow fill: exactly one fill must run, and every collapsed caller
// must receive its entry.
func TestCacheSingleflightStampede(t *testing.T) {
	c := New(64, time.Hour)
	var fills atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, _ := c.Do("hot", func() (*Entry, bool) {
				fills.Add(1)
				<-release
				return &Entry{Status: 200, Body: []byte("filled")}, true
			})
			if string(e.Body) != "filled" {
				t.Errorf("collapsed caller got %q", e.Body)
			}
		}()
	}
	// Let the stampede pile onto the flight before releasing the fill.
	for c.Len() == 0 && fills.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times, want 1", n)
	}
}

// TestCacheConcurrentExpiry advances an injected clock while readers and
// writers run: expired reads must come back as misses and refills must
// land, with the race detector watching the clock swap (atomic pointer)
// against in-flight gets.
func TestCacheConcurrentExpiry(t *testing.T) {
	c := New(64, time.Minute)
	var tick atomic.Int64
	c.SetClock(func() time.Time {
		return time.Unix(0, tick.Load())
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			tick.Add(int64(time.Second))
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Do("aging", func() (*Entry, bool) {
					return &Entry{Status: 200, Body: []byte("v")}, true
				})
			}
		}()
	}
	wg.Wait()
}
