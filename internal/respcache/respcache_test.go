package respcache

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func entry(body string) *Entry {
	return &Entry{Status: http.StatusOK, Header: http.Header{"Content-Type": {"text/plain"}}, Body: []byte(body)}
}

func TestCacheHitAndMiss(t *testing.T) {
	c := New(4, time.Minute)
	calls := 0
	fill := func() (*Entry, bool) { calls++; return entry("v"), true }

	e, hit := c.Do("k", fill)
	if hit || string(e.Body) != "v" || calls != 1 {
		t.Fatalf("first Do: hit=%v body=%q calls=%d", hit, e.Body, calls)
	}
	e, hit = c.Do("k", fill)
	if !hit || string(e.Body) != "v" || calls != 1 {
		t.Fatalf("second Do: hit=%v body=%q calls=%d", hit, e.Body, calls)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Errorf("stats = %d hits %d misses, want 1/1", h, m)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	c := New(4, time.Minute)
	c.SetClock(func() time.Time { return now })
	calls := 0
	fill := func() (*Entry, bool) { calls++; return entry("v"), true }

	c.Do("k", fill)
	now = now.Add(59 * time.Second)
	if _, hit := c.Do("k", fill); !hit {
		t.Fatal("entry expired before TTL")
	}
	now = now.Add(2 * time.Second) // past the minute
	if _, hit := c.Do("k", fill); hit {
		t.Fatal("entry survived past TTL")
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(3, 0) // no TTL: only the LRU bound evicts
	fill := func(v string) func() (*Entry, bool) {
		return func() (*Entry, bool) { return entry(v), true }
	}
	for i := 0; i < 3; i++ {
		c.Do(fmt.Sprintf("k%d", i), fill("v"))
	}
	c.Do("k0", fill("v")) // touch k0 so k1 is now least recent
	c.Do("k3", fill("v")) // evicts k1
	if c.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", c.Len())
	}
	evicted := false
	c.Do("k1", func() (*Entry, bool) { evicted = true; return entry("refilled"), true })
	if !evicted {
		t.Error("k1 still cached; want LRU eviction")
	}
	if _, hit := c.Do("k0", fill("v")); !hit {
		t.Error("recently used k0 was evicted")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := New(4, time.Minute)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	results := make([]*Entry, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _ = c.Do("k", func() (*Entry, bool) {
			calls.Add(1)
			close(started)
			<-release
			return entry("once"), true
		})
	}()
	<-started
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, hit := c.Do("k", func() (*Entry, bool) {
				calls.Add(1)
				return entry("again"), true
			})
			if !hit {
				t.Errorf("waiter %d: not collapsed into flight", i)
			}
			results[i] = e
		}(i)
	}
	// Give waiters a moment to join the flight, then let it finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fill ran %d times for concurrent identical requests, want 1", n)
	}
	for i, e := range results {
		if string(e.Body) != "once" {
			t.Fatalf("result %d = %q, want the single flight's response", i, e.Body)
		}
	}
}

func TestCacheDoesNotStoreErrors(t *testing.T) {
	c := New(4, time.Minute)
	calls := 0
	errFill := func() (*Entry, bool) {
		calls++
		return &Entry{Status: http.StatusInternalServerError, Body: []byte("boom")}, false
	}
	e, _ := c.Do("k", errFill)
	if e.Status != http.StatusInternalServerError {
		t.Fatalf("status = %d", e.Status)
	}
	if _, hit := c.Do("k", errFill); hit {
		t.Fatal("error response was cached")
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := New(4, time.Minute)
	c.Do("k", func() (*Entry, bool) { return entry("v"), true })
	c.Invalidate("k")
	if _, hit := c.Do("k", func() (*Entry, bool) { return entry("v2"), true }); hit {
		t.Fatal("invalidated entry still served")
	}
}
