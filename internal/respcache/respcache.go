// Package respcache is the generalization of the paper's Caching service
// into transport middleware: a bounded, TTL'd LRU of rendered HTTP
// responses for idempotent operations, with singleflight collapse so a
// stampede of identical requests costs exactly one handler invocation.
//
// The cache stores complete responses (status, headers, body) under an
// opaque key the caller derives from the operation identity and its
// canonicalized parameters; see soc/internal/host for the keying rules.
package respcache

import (
	"container/list"
	"net/http"
	"sync"
	"time"

	"soc/internal/vtime"
)

// Entry is one cached response.
type Entry struct {
	Status int
	Header http.Header
	Body   []byte
}

func cloneHeader(h http.Header) http.Header {
	out := make(http.Header, len(h))
	for k, v := range h {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// WriteTo replays the entry to w. Headers are copied, never aliased, so a
// cached entry can serve many writers concurrently.
func (e *Entry) WriteTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, v := range e.Header {
		dst[k] = append([]string(nil), v...)
	}
	w.WriteHeader(e.Status)
	_, _ = w.Write(e.Body)
}

// flight is one in-progress fill. Waiters block on wg and then read
// entry; the publisher writes entry before wg.Done, so the WaitGroup's
// happens-before edge makes the read safe.
type flight struct {
	wg    sync.WaitGroup
	entry *Entry
}

type item struct {
	key     string
	entry   *Entry
	expires time.Time
}

// Cache is a TTL'd LRU response cache with singleflight fill, safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	flights  map[string]*flight
	now      func() time.Time

	hits, misses uint64
}

// New returns a cache holding at most capacity entries for at most ttl
// each. capacity <= 0 panics; ttl <= 0 means entries never expire (the
// LRU bound still applies).
func New(capacity int, ttl time.Duration) *Cache {
	if capacity <= 0 {
		panic("respcache: capacity must be positive")
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
		//soclint:ignore clockdiscipline real-clock default behind the injectable SetClock/UseClock hooks
		now: time.Now,
	}
}

// SetClock replaces the time source, for deterministic expiry tests.
func (c *Cache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// UseClock points the cache's TTL arithmetic at clk (vtime.Clock); nil
// restores the wall clock. This is the hook the deterministic simulation
// harness uses so cached entries age in virtual time.
func (c *Cache) UseClock(clk vtime.Clock) {
	if clk == nil {
		//soclint:ignore clockdiscipline nil clock restores the sanctioned wall-clock default
		c.SetClock(time.Now)
		return
	}
	c.SetClock(clk.Now)
}

// Len reports the number of cached entries (including any expired ones
// not yet evicted by access).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hits (served without invoking fill, whether
// from a fresh entry or a joined flight) and misses.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// getLocked returns the fresh entry for key, promoting it; expired
// entries are removed on the way.
func (c *Cache) getLocked(key string) (*Entry, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	it := el.Value.(*item)
	if c.ttl > 0 && !c.now().Before(it.expires) {
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return it.entry, true
}

// putLocked inserts (or replaces) the entry and evicts the LRU tail past
// capacity.
func (c *Cache) putLocked(key string, e *Entry) {
	expires := c.now().Add(c.ttl)
	if el, ok := c.items[key]; ok {
		it := el.Value.(*item)
		it.entry, it.expires = e, expires
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&item{key: key, entry: e, expires: expires})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*item).key)
	}
}

// Do returns the response for key, filling on a miss. fill's second
// result says whether to store the response (non-cacheable responses —
// errors, for example — are still returned to every collapsed waiter,
// just not kept). hit reports whether fill was NOT invoked by this call:
// either the entry was fresh in cache, or an identical in-flight request
// produced it.
func (c *Cache) Do(key string, fill func() (*Entry, bool)) (e *Entry, hit bool) {
	c.mu.Lock()
	if e, ok := c.getLocked(key); ok {
		c.hits++
		c.mu.Unlock()
		return e, true
	}
	if f, ok := c.flights[key]; ok {
		c.hits++
		c.mu.Unlock()
		f.wg.Wait()
		return f.entry, true
	}
	f := &flight{}
	f.wg.Add(1)
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	entry, store := fill()
	f.entry = entry

	c.mu.Lock()
	delete(c.flights, key)
	if store && entry != nil {
		c.putLocked(key, entry)
	}
	c.mu.Unlock()
	f.wg.Done()
	return entry, false
}

// Invalidate drops the entry for key, if present.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// Recorder is an http.ResponseWriter that captures the response for
// caching while it is produced.
type Recorder struct {
	status      int
	header      http.Header
	body        []byte
	wroteHeader bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{status: http.StatusOK, header: make(http.Header)}
}

// Header implements http.ResponseWriter.
func (r *Recorder) Header() http.Header { return r.header }

// WriteHeader implements http.ResponseWriter; like the real writer, only
// the first call sticks.
func (r *Recorder) WriteHeader(status int) {
	if r.wroteHeader || status <= 0 {
		return
	}
	r.status = status
	r.wroteHeader = true
}

// Write implements http.ResponseWriter.
func (r *Recorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}

// Entry snapshots the recorded response.
func (r *Recorder) Entry() *Entry {
	return &Entry{Status: r.status, Header: cloneHeader(r.header), Body: r.body}
}
