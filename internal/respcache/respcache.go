// Package respcache is the generalization of the paper's Caching service
// into transport middleware: a bounded, TTL'd LRU of rendered HTTP
// responses for idempotent operations, with singleflight collapse so a
// stampede of identical requests costs exactly one handler invocation.
//
// The cache stores complete responses (status, headers, body) under an
// opaque key the caller derives from the operation identity and its
// canonicalized parameters; see soc/internal/host for the keying rules.
//
// Internally the cache is lock-striped into power-of-two shards (one
// shard for small capacities, so tiny caches keep exact global LRU
// order). The hit path takes only a shard read-lock and records recency
// with an atomic touch sequence, so concurrent hits never serialize on a
// write lock; eviction resolves the least-recent touch at insert time.
package respcache

import (
	"hash/maphash"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"soc/internal/vtime"
)

// Entry is one cached response.
type Entry struct {
	Status int
	Header http.Header
	Body   []byte
}

// cloneHeader deep-copies h with exactly-sized value slices, so the
// stored slices can later be aliased into response headers append-safely
// (any append reallocates instead of scribbling on the cached copy).
func cloneHeader(h http.Header) http.Header {
	out := make(http.Header, len(h))
	for k, v := range h {
		vv := make([]string, len(v))
		copy(vv, v)
		out[k] = vv
	}
	return out
}

// WriteTo replays the entry to w. Header value slices are aliased, not
// copied — they are treated as immutable once cached (Recorder.Entry
// stores exactly-sized copies, so an append on the response side
// reallocates rather than mutating the shared cache entry).
func (e *Entry) WriteTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, v := range e.Header {
		dst[k] = v
	}
	w.WriteHeader(e.Status)
	_, _ = w.Write(e.Body)
}

// flight is one in-progress fill. Waiters block on wg and then read
// entry; the publisher writes entry before wg.Done, so the WaitGroup's
// happens-before edge makes the read safe.
type flight struct {
	wg    sync.WaitGroup
	entry *Entry
}

// item is one cached entry inside a shard. entry and expires are written
// only under the shard write lock; touched is bumped by readers holding
// just the read lock, so it is atomic.
type item struct {
	entry   *Entry
	expires time.Time
	touched atomic.Uint64
}

// shard is one lock stripe: its own map, flights, counters, and LRU
// clock. Recency is a per-shard atomic sequence stamped on every access;
// eviction (only on insert past capacity) scans the shard for the
// minimum stamp — shards are small, so the scan is a handful of loads.
type shard struct {
	mu       sync.RWMutex
	capacity int
	items    map[string]*item
	flights  map[string]*flight
	seq      atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
}

// clockFn adapts a time source for atomic storage.
type clockFn func() time.Time

// Cache is a TTL'd LRU response cache with singleflight fill, safe for
// concurrent use.
type Cache struct {
	shards []*shard
	mask   uint64
	ttl    time.Duration
	seed   maphash.Seed
	now    atomic.Pointer[clockFn]
}

// shardCount picks the power-of-two stripe count for a capacity: roughly
// one shard per eight entries, capped at 16. Small caches get a single
// shard and therefore exact global LRU order.
func shardCount(capacity int) int {
	n := 1
	for n*2 <= capacity/8 && n < 16 {
		n *= 2
	}
	return n
}

// New returns a cache holding at most capacity entries for at most ttl
// each. capacity <= 0 panics; ttl <= 0 means entries never expire (the
// LRU bound still applies, per shard).
func New(capacity int, ttl time.Duration) *Cache {
	if capacity <= 0 {
		panic("respcache: capacity must be positive")
	}
	n := shardCount(capacity)
	c := &Cache{
		shards: make([]*shard, n),
		mask:   uint64(n - 1),
		ttl:    ttl,
		seed:   maphash.MakeSeed(),
	}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		cap := base
		if i < extra {
			cap++
		}
		c.shards[i] = &shard{
			capacity: cap,
			items:    make(map[string]*item),
			flights:  make(map[string]*flight),
		}
	}
	//soclint:ignore clockdiscipline real-clock default behind the injectable SetClock/UseClock hooks
	fn := clockFn(time.Now)
	c.now.Store(&fn)
	return c
}

func (c *Cache) shardFor(key string) *shard {
	if c.mask == 0 {
		return c.shards[0]
	}
	return c.shards[maphash.String(c.seed, key)&c.mask]
}

func (c *Cache) clock() clockFn { return *c.now.Load() }

// SetClock replaces the time source, for deterministic expiry tests.
func (c *Cache) SetClock(now func() time.Time) {
	fn := clockFn(now)
	c.now.Store(&fn)
}

// UseClock points the cache's TTL arithmetic at clk (vtime.Clock); nil
// restores the wall clock. This is the hook the deterministic simulation
// harness uses so cached entries age in virtual time.
func (c *Cache) UseClock(clk vtime.Clock) {
	if clk == nil {
		//soclint:ignore clockdiscipline nil clock restores the sanctioned wall-clock default
		c.SetClock(time.Now)
		return
	}
	c.SetClock(clk.Now)
}

// Len reports the number of cached entries (including any expired ones
// not yet evicted by insertion pressure).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.RLock()
		n += len(s.items)
		s.mu.RUnlock()
	}
	return n
}

// Stats reports cumulative hits (served without invoking fill, whether
// from a fresh entry or a joined flight) and misses.
func (c *Cache) Stats() (hits, misses uint64) {
	for _, s := range c.shards {
		hits += s.hits.Load()
		misses += s.misses.Load()
	}
	return hits, misses
}

// get returns the fresh entry for key under the shard read lock, stamping
// its recency. Expired entries read as misses and are left for insertion
// pressure (or a replacing put) to clear — deleting here would need the
// write lock the hit path exists to avoid.
func (s *shard) get(key string, now func() time.Time, ttl time.Duration) (*Entry, bool) {
	it, ok := s.items[key]
	if !ok {
		return nil, false
	}
	if ttl > 0 && !now().Before(it.expires) {
		return nil, false
	}
	it.touched.Store(s.seq.Add(1))
	return it.entry, true
}

// put inserts (or replaces) the entry under the shard write lock and
// evicts least-recently-touched items past the shard capacity (expired
// items lose ties by construction: they haven't been touched recently).
func (s *shard) put(key string, e *Entry, now func() time.Time, ttl time.Duration) {
	expires := now().Add(ttl)
	if it, ok := s.items[key]; ok {
		it.entry, it.expires = e, expires
		it.touched.Store(s.seq.Add(1))
		return
	}
	it := &item{entry: e, expires: expires}
	it.touched.Store(s.seq.Add(1))
	s.items[key] = it
	for len(s.items) > s.capacity {
		var coldKey string
		coldSeq := uint64(1<<64 - 1)
		for k, cand := range s.items {
			if t := cand.touched.Load(); t <= coldSeq {
				coldKey, coldSeq = k, t
			}
		}
		delete(s.items, coldKey)
	}
}

// Do returns the response for key, filling on a miss. fill's second
// result says whether to store the response (non-cacheable responses —
// errors, for example — are still returned to every collapsed waiter,
// just not kept). hit reports whether fill was NOT invoked by this call:
// either the entry was fresh in cache, or an identical in-flight request
// produced it.
func (c *Cache) Do(key string, fill func() (*Entry, bool)) (e *Entry, hit bool) {
	s := c.shardFor(key)
	now := c.clock()

	// Fast path: a fresh entry or a joinable flight needs only the
	// shard read lock, so concurrent hits don't serialize.
	s.mu.RLock()
	if e, ok := s.get(key, now, c.ttl); ok {
		s.mu.RUnlock()
		s.hits.Add(1)
		return e, true
	}
	if f, ok := s.flights[key]; ok {
		s.mu.RUnlock()
		s.hits.Add(1)
		f.wg.Wait()
		return f.entry, true
	}
	s.mu.RUnlock()

	// Slow path: take the write lock and re-check, since another miss
	// may have filled or opened a flight in the window.
	s.mu.Lock()
	if e, ok := s.get(key, now, c.ttl); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return e, true
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		f.wg.Wait()
		return f.entry, true
	}
	f := &flight{}
	f.wg.Add(1)
	s.flights[key] = f
	s.misses.Add(1)
	s.mu.Unlock()

	entry, store := fill()
	f.entry = entry

	s.mu.Lock()
	delete(s.flights, key)
	if store && entry != nil {
		s.put(key, entry, now, c.ttl)
	}
	s.mu.Unlock()
	f.wg.Done()
	return entry, false
}

// Invalidate drops the entry for key, if present.
func (c *Cache) Invalidate(key string) {
	s := c.shardFor(key)
	s.mu.Lock()
	delete(s.items, key)
	s.mu.Unlock()
}

// Shards reports the stripe count, for tests asserting the sharding
// policy.
func (c *Cache) Shards() int { return len(c.shards) }

// Recorder is an http.ResponseWriter that captures the response for
// caching while it is produced.
type Recorder struct {
	status      int
	header      http.Header
	body        []byte
	wroteHeader bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{status: http.StatusOK, header: make(http.Header)}
}

// Header implements http.ResponseWriter.
func (r *Recorder) Header() http.Header { return r.header }

// WriteHeader implements http.ResponseWriter; like the real writer, only
// the first call sticks.
func (r *Recorder) WriteHeader(status int) {
	if r.wroteHeader || status <= 0 {
		return
	}
	r.status = status
	r.wroteHeader = true
}

// Write implements http.ResponseWriter.
func (r *Recorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}

// Entry snapshots the recorded response.
func (r *Recorder) Entry() *Entry {
	return &Entry{Status: r.status, Header: cloneHeader(r.header), Body: r.body}
}
