package robot

import (
	"context"
	"fmt"
	"sync"

	"soc/internal/core"
	"soc/internal/maze"
)

// ServiceNamespace is the XML namespace of the Robot-as-a-Service facade.
const ServiceNamespace = "http://soc.asu.example/raas"

// Sessions manages independent robot instances for service clients, the
// way the web environment gives each student a virtual robot.
type Sessions struct {
	mu     sync.Mutex
	nextID int64
	robots map[int64]*Robot
}

// NewSessions returns an empty session store.
func NewSessions() *Sessions {
	return &Sessions{robots: make(map[int64]*Robot)}
}

// Create generates a maze and a robot in it, returning the session id.
func (s *Sessions) Create(w, h int, alg maze.Algorithm, seed int64) (int64, error) {
	m, err := maze.Generate(w, h, alg, seed)
	if err != nil {
		return 0, err
	}
	r, err := New(m)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.robots[id] = r
	return id, nil
}

// Get returns the robot of a session.
func (s *Sessions) Get(id int64) (*Robot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.robots[id]
	if !ok {
		return nil, fmt.Errorf("robot: no session %d", id)
	}
	return r, nil
}

// Close removes a session.
func (s *Sessions) Close(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.robots[id]; !ok {
		return fmt.Errorf("robot: no session %d", id)
	}
	delete(s.robots, id)
	return nil
}

// Len returns the number of live sessions.
func (s *Sessions) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.robots)
}

// NewService wraps a session store in the Robot-as-a-Service descriptor.
// All robot interaction — creating a maze, sensing, moving, running whole
// command programs — happens through service operations, exactly the
// paper's "services hide the hardware and programming details" point.
func NewService(sessions *Sessions) (*core.Service, error) {
	svc, err := core.NewService("Robot", ServiceNamespace,
		"Robot as a Service: simulated maze robot with range sensors")
	if err != nil {
		return nil, err
	}
	svc.Category = "robotics"

	err = svc.AddOperation(core.Operation{
		Name: "CreateMaze",
		Doc:  "creates a maze and a robot in it; returns the session id",
		Input: []core.Param{
			{Name: "width", Type: core.Int},
			{Name: "height", Type: core.Int},
			{Name: "algorithm", Type: core.String, Doc: "dfs|prim|division", Optional: true},
			{Name: "seed", Type: core.Int, Optional: true},
		},
		Output: []core.Param{{Name: "session", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			alg := maze.DFS
			switch in.Str("algorithm") {
			case "", "dfs":
			case "prim":
				alg = maze.Prim
			case "division":
				alg = maze.Division
			default:
				return nil, fmt.Errorf("unknown algorithm %q", in.Str("algorithm"))
			}
			id, err := sessions.Create(int(in.Int("width")), int(in.Int("height")), alg, in.Int("seed"))
			if err != nil {
				return nil, err
			}
			return core.Values{"session": id}, nil
		},
	})
	if err != nil {
		return nil, err
	}

	sessionIn := []core.Param{{Name: "session", Type: core.Int}}
	withRobot := func(fn func(r *Robot, in core.Values) (core.Values, error)) core.Handler {
		return func(_ context.Context, in core.Values) (core.Values, error) {
			r, err := sessions.Get(in.Int("session"))
			if err != nil {
				return nil, err
			}
			return fn(r, in)
		}
	}

	ops := []core.Operation{
		{
			Name: "Forward", Doc: "moves one cell forward; blocked reports collision=true",
			Input:  sessionIn,
			Output: []core.Param{{Name: "collision", Type: core.Bool}, {Name: "atGoal", Type: core.Bool}},
			Handler: withRobot(func(r *Robot, _ core.Values) (core.Values, error) {
				err := r.Forward()
				return core.Values{"collision": err != nil, "atGoal": r.AtGoal()}, nil
			}),
		},
		{
			Name: "TurnLeft", Doc: "turns 90° left",
			Input:  sessionIn,
			Output: []core.Param{{Name: "heading", Type: core.String}},
			Handler: withRobot(func(r *Robot, _ core.Values) (core.Values, error) {
				r.TurnLeft()
				return core.Values{"heading": r.Heading().String()}, nil
			}),
		},
		{
			Name: "TurnRight", Doc: "turns 90° right",
			Input:  sessionIn,
			Output: []core.Param{{Name: "heading", Type: core.String}},
			Handler: withRobot(func(r *Robot, _ core.Values) (core.Values, error) {
				r.TurnRight()
				return core.Values{"heading": r.Heading().String()}, nil
			}),
		},
		{
			Name: "Sense", Doc: "reads the three range sensors and the goal flag",
			Input: sessionIn,
			Output: []core.Param{
				{Name: "front", Type: core.Int}, {Name: "left", Type: core.Int},
				{Name: "right", Type: core.Int}, {Name: "atGoal", Type: core.Bool},
			},
			Handler: withRobot(func(r *Robot, _ core.Values) (core.Values, error) {
				return core.Values{
					"front":  int64(r.FrontDistance()),
					"left":   int64(r.LeftDistance()),
					"right":  int64(r.RightDistance()),
					"atGoal": r.AtGoal(),
				}, nil
			}),
		},
		{
			Name: "State", Doc: "reports pose and odometry",
			Input: sessionIn,
			Output: []core.Param{
				{Name: "x", Type: core.Int}, {Name: "y", Type: core.Int},
				{Name: "heading", Type: core.String}, {Name: "steps", Type: core.Int},
				{Name: "bumps", Type: core.Int}, {Name: "atGoal", Type: core.Bool},
			},
			Handler: withRobot(func(r *Robot, _ core.Values) (core.Values, error) {
				return core.Values{
					"x": int64(r.Position().X), "y": int64(r.Position().Y),
					"heading": r.Heading().String(), "steps": int64(r.Steps()),
					"bumps": int64(r.Bumps()), "atGoal": r.AtGoal(),
				}, nil
			}),
		},
		{
			Name: "Render", Doc: "returns the maze as ASCII art",
			Input:  sessionIn,
			Output: []core.Param{{Name: "maze", Type: core.String}},
			Handler: withRobot(func(r *Robot, _ core.Values) (core.Values, error) {
				return core.Values{"maze": r.Maze().String()}, nil
			}),
		},
		{
			Name: "RunProgram",
			Doc:  "parses and runs a drop-down command program on the session robot",
			Input: []core.Param{
				{Name: "session", Type: core.Int},
				{Name: "program", Type: core.String},
				{Name: "budget", Type: core.Int, Optional: true},
			},
			Output: []core.Param{
				{Name: "ok", Type: core.Bool}, {Name: "error", Type: core.String},
				{Name: "steps", Type: core.Int}, {Name: "atGoal", Type: core.Bool},
			},
			Handler: func(ctx context.Context, in core.Values) (core.Values, error) {
				r, err := sessions.Get(in.Int("session"))
				if err != nil {
					return nil, err
				}
				prog, err := ParseProgram(in.Str("program"))
				if err != nil {
					return nil, err
				}
				runErr := prog.Run(ctx, r, int(in.Int("budget")))
				out := core.Values{
					"ok": runErr == nil, "error": "",
					"steps": int64(r.Steps()), "atGoal": r.AtGoal(),
				}
				if runErr != nil {
					out["error"] = runErr.Error()
				}
				return out, nil
			},
		},
		{
			Name: "CloseSession", Doc: "releases a robot session",
			Input:  sessionIn,
			Output: []core.Param{{Name: "closed", Type: core.Bool}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				if err := sessions.Close(in.Int("session")); err != nil {
					return nil, err
				}
				return core.Values{"closed": true}, nil
			},
		},
	}
	for _, op := range ops {
		if err := svc.AddOperation(op); err != nil {
			return nil, err
		}
	}
	return svc, nil
}
