// Package robot implements the CSE101 "Robot as a Service" environment
// (Figure 1): a simulated maze robot with distance sensors and motion
// actuators, an event stream for the event-driven programming model MRDS
// teaches, a drop-down-command program interpreter matching the web
// programming environment ("a maze navigation program can be written
// using a few drop-down commands"), and a service facade exposing the
// robot through soc/internal/core so it can be driven over REST or SOAP.
package robot

import (
	"errors"
	"fmt"

	"soc/internal/maze"
)

// ErrCollision reports a commanded move into a wall.
var ErrCollision = errors.New("robot: collision")

// EventKind enumerates robot events.
type EventKind string

// Event kinds delivered to listeners.
const (
	EventMoved   EventKind = "moved"
	EventTurned  EventKind = "turned"
	EventBlocked EventKind = "blocked"
	EventGoal    EventKind = "goal"
)

// Event is one notification from the robot.
type Event struct {
	Kind    EventKind
	Cell    maze.Cell
	Heading maze.Dir
	Detail  string
}

// Listener receives robot events.
type Listener func(Event)

// Robot is a simulated maze robot.
type Robot struct {
	m        *maze.Maze
	pos      maze.Cell
	heading  maze.Dir
	steps    int
	turns    int
	bumps    int
	visited  map[maze.Cell]int
	listener Listener
}

// New places a robot at the maze start, facing east.
func New(m *maze.Maze) (*Robot, error) {
	if m == nil {
		return nil, errors.New("robot: nil maze")
	}
	r := &Robot{m: m, pos: m.Start, heading: maze.East, visited: map[maze.Cell]int{}}
	r.visited[r.pos]++
	return r, nil
}

// SetListener installs the event listener (nil clears it).
func (r *Robot) SetListener(l Listener) { r.listener = l }

func (r *Robot) emit(kind EventKind, detail string) {
	if r.listener != nil {
		r.listener(Event{Kind: kind, Cell: r.pos, Heading: r.heading, Detail: detail})
	}
}

// Position returns the robot's cell.
func (r *Robot) Position() maze.Cell { return r.pos }

// Heading returns the robot's facing direction.
func (r *Robot) Heading() maze.Dir { return r.heading }

// Maze returns the robot's world.
func (r *Robot) Maze() *maze.Maze { return r.m }

// Steps returns the count of successful forward moves.
func (r *Robot) Steps() int { return r.steps }

// Turns returns the count of turns.
func (r *Robot) Turns() int { return r.turns }

// Bumps returns the count of blocked moves.
func (r *Robot) Bumps() int { return r.bumps }

// Visited returns how many distinct cells have been entered.
func (r *Robot) Visited() int { return len(r.visited) }

// VisitCount returns how many times the robot has entered c.
func (r *Robot) VisitCount(c maze.Cell) int { return r.visited[c] }

// AtGoal reports whether the robot stands on the goal cell.
func (r *Robot) AtGoal() bool { return r.pos == r.m.Goal }

// Forward advances one cell; a wall yields ErrCollision (and a "blocked"
// event) without moving.
func (r *Robot) Forward() error {
	if !r.m.CanMove(r.pos, r.heading) {
		r.bumps++
		r.emit(EventBlocked, "wall ahead")
		return fmt.Errorf("%w: at %v facing %s", ErrCollision, r.pos, r.heading)
	}
	r.pos = r.pos.Move(r.heading)
	r.steps++
	r.visited[r.pos]++
	r.emit(EventMoved, "")
	if r.AtGoal() {
		r.emit(EventGoal, "goal reached")
	}
	return nil
}

// TurnLeft rotates 90° counterclockwise.
func (r *Robot) TurnLeft() {
	r.heading = r.heading.Left()
	r.turns++
	r.emit(EventTurned, "left")
}

// TurnRight rotates 90° clockwise.
func (r *Robot) TurnRight() {
	r.heading = r.heading.Right()
	r.turns++
	r.emit(EventTurned, "right")
}

// Face turns the robot (shortest way) to the given heading.
func (r *Robot) Face(d maze.Dir) {
	for r.heading != d {
		// Turn the short way round.
		if r.heading.Right() == d {
			r.TurnRight()
		} else {
			r.TurnLeft()
		}
	}
}

// Distance returns the number of open cells from the robot in direction d
// before a wall — the robot's range sensor.
func (r *Robot) Distance(d maze.Dir) int {
	n := 0
	c := r.pos
	for r.m.CanMove(c, d) {
		c = c.Move(d)
		n++
	}
	return n
}

// FrontDistance, LeftDistance and RightDistance are the three range
// sensors of the simulated robot.
func (r *Robot) FrontDistance() int { return r.Distance(r.heading) }
func (r *Robot) LeftDistance() int  { return r.Distance(r.heading.Left()) }
func (r *Robot) RightDistance() int { return r.Distance(r.heading.Right()) }

// GoalDelta returns the (dx, dy) vector from the robot to the goal — the
// "GPS" used by the greedy two-distance algorithm.
func (r *Robot) GoalDelta() (int, int) {
	return r.m.Goal.X - r.pos.X, r.m.Goal.Y - r.pos.Y
}

// Reset returns the robot to the start cell facing east and clears
// counters.
func (r *Robot) Reset() {
	r.pos = r.m.Start
	r.heading = maze.East
	r.steps, r.turns, r.bumps = 0, 0, 0
	r.visited = map[maze.Cell]int{r.pos: 1}
}
