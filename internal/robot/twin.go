package robot

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"soc/internal/maze"
)

// Twin pairs the virtual robot of the web environment with a "physical"
// robot mirror — the paper's Figure 1 notes that "the virtual robot in
// the Web can communicate and synchronize with the physical robot to add
// excitement to the learners". Commands issued to the twin drive the
// primary (virtual) robot and are forwarded to the mirror over an
// unreliable link (a tunable drop rate models radio loss to an NXT
// brick); Sync detects divergence and drives the mirror back to the
// primary's pose with real movement commands.
type Twin struct {
	primary *Robot
	mirror  *Robot
	// dropRate is the probability a forwarded command is lost.
	dropRate float64
	rng      *rand.Rand
	dropped  int
	sent     int
}

// ErrTwin reports invalid twin construction.
var ErrTwin = errors.New("robot: invalid twin")

// NewTwin pairs two robots that must share the same maze geometry.
func NewTwin(primary, mirror *Robot, dropRate float64, seed int64) (*Twin, error) {
	if primary == nil || mirror == nil {
		return nil, fmt.Errorf("%w: nil robot", ErrTwin)
	}
	if dropRate < 0 || dropRate >= 1 {
		return nil, fmt.Errorf("%w: drop rate %v", ErrTwin, dropRate)
	}
	pm, mm := primary.Maze(), mirror.Maze()
	if pm.W != mm.W || pm.H != mm.H || pm.String() != mm.String() {
		return nil, fmt.Errorf("%w: mazes differ", ErrTwin)
	}
	return &Twin{primary: primary, mirror: mirror, dropRate: dropRate,
		rng: rand.New(rand.NewSource(seed))}, nil
}

// Primary returns the virtual robot.
func (t *Twin) Primary() *Robot { return t.primary }

// Mirror returns the physical-robot stand-in.
func (t *Twin) Mirror() *Robot { return t.mirror }

// Dropped reports how many forwarded commands the link lost.
func (t *Twin) Dropped() int { return t.dropped }

// Sent reports how many commands were forwarded (including lost ones).
func (t *Twin) Sent() int { return t.sent }

// forward delivers cmd to the mirror unless the link drops it.
func (t *Twin) forwardCmd(cmd func(*Robot) error) error {
	t.sent++
	if t.rng.Float64() < t.dropRate {
		t.dropped++
		return nil
	}
	return cmd(t.mirror)
}

// Forward moves the primary one cell and forwards the command.
func (t *Twin) Forward() error {
	if err := t.primary.Forward(); err != nil {
		return err
	}
	// A mirror collision (possible when earlier drops desynced the
	// poses) is absorbed: Sync will reconcile.
	_ = t.forwardCmd(func(r *Robot) error { return r.Forward() })
	return nil
}

// TurnLeft turns the primary and forwards the command.
func (t *Twin) TurnLeft() {
	t.primary.TurnLeft()
	_ = t.forwardCmd(func(r *Robot) error { r.TurnLeft(); return nil })
}

// TurnRight turns the primary and forwards the command.
func (t *Twin) TurnRight() {
	t.primary.TurnRight()
	_ = t.forwardCmd(func(r *Robot) error { r.TurnRight(); return nil })
}

// InSync reports whether both robots agree on pose.
func (t *Twin) InSync() bool {
	return t.primary.Position() == t.mirror.Position() &&
		t.primary.Heading() == t.mirror.Heading()
}

// Sync drives the mirror to the primary's pose using reliable movement
// commands (the synchronization message exchange happens over the
// "wire", i.e. directly, because sync traffic is acknowledged).
func (t *Twin) Sync(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	target := t.primary.Position()
	if t.mirror.Position() != target {
		dist, err := t.mirror.Maze().Distances(target)
		if err != nil {
			return err
		}
		if dist[t.mirror.Position().Y][t.mirror.Position().X] < 0 {
			return fmt.Errorf("robot: mirror at %v cannot reach %v", t.mirror.Position(), target)
		}
		for t.mirror.Position() != target {
			if err := ctx.Err(); err != nil {
				return err
			}
			cur := t.mirror.Position()
			moved := false
			for d := maze.North; d <= maze.West; d++ {
				if !t.mirror.Maze().CanMove(cur, d) {
					continue
				}
				n := cur.Move(d)
				if dist[n.Y][n.X] == dist[cur.Y][cur.X]-1 {
					t.mirror.Face(d)
					if err := t.mirror.Forward(); err != nil {
						return err
					}
					moved = true
					break
				}
			}
			if !moved {
				return fmt.Errorf("robot: sync stuck at %v", cur)
			}
		}
	}
	t.mirror.Face(t.primary.Heading())
	return nil
}
