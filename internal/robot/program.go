package robot

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// The drop-down command language of the web robotics environment. A
// program is a sequence of lines, one command each (case-insensitive):
//
//	FORWARD                  move one cell (collision faults the program)
//	LEFT | RIGHT             turn 90°
//	REPEAT n ... END         fixed repetition
//	WHILE NOT_GOAL ... END   loop until the goal (bounded)
//	IF <cond> ... [ELSE ...] END
//
// conditions: FRONT_OPEN, FRONT_BLOCKED, LEFT_OPEN, RIGHT_OPEN, AT_GOAL
//
// Lines starting with '#' are comments.

// ErrProgram reports a parse error.
var ErrProgram = errors.New("robot: invalid program")

// ErrBudget reports a program exceeding its action budget.
var ErrBudget = errors.New("robot: action budget exceeded")

type stmt interface {
	run(ctx context.Context, ex *executor) error
}

type actionStmt struct{ kind string }

type repeatStmt struct {
	n    int
	body []stmt
}

type whileStmt struct{ body []stmt }

type ifStmt struct {
	cond     string
	thenBody []stmt
	elseBody []stmt
}

// Program is a parsed command program.
type Program struct {
	stmts []stmt
	// Source preserves the original lines.
	Source []string
}

// ParseProgram parses the drop-down command language.
func ParseProgram(src string) (*Program, error) {
	var lines []string
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, strings.ToUpper(line))
	}
	p := &parser{lines: lines}
	stmts, err := p.block(nil)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("%w: unexpected %q at line %d", ErrProgram, p.lines[p.pos], p.pos+1)
	}
	return &Program{stmts: stmts, Source: lines}, nil
}

type parser struct {
	lines []string
	pos   int
}

var conditions = map[string]bool{
	"FRONT_OPEN": true, "FRONT_BLOCKED": true, "LEFT_OPEN": true,
	"RIGHT_OPEN": true, "AT_GOAL": true,
}

// block parses until one of the terminators (or EOF when nil); the
// terminator is not consumed.
func (p *parser) block(terminators []string) ([]stmt, error) {
	var out []stmt
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		for _, t := range terminators {
			if line == t {
				return out, nil
			}
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "FORWARD", "LEFT", "RIGHT":
			if len(fields) != 1 {
				return nil, fmt.Errorf("%w: %q takes no argument", ErrProgram, fields[0])
			}
			out = append(out, &actionStmt{kind: fields[0]})
			p.pos++
		case "REPEAT":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: REPEAT needs a count", ErrProgram)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > 10000 {
				return nil, fmt.Errorf("%w: bad REPEAT count %q", ErrProgram, fields[1])
			}
			p.pos++
			body, err := p.block([]string{"END"})
			if err != nil {
				return nil, err
			}
			if err := p.expect("END"); err != nil {
				return nil, err
			}
			out = append(out, &repeatStmt{n: n, body: body})
		case "WHILE":
			if len(fields) != 2 || fields[1] != "NOT_GOAL" {
				return nil, fmt.Errorf("%w: WHILE supports only NOT_GOAL", ErrProgram)
			}
			p.pos++
			body, err := p.block([]string{"END"})
			if err != nil {
				return nil, err
			}
			if err := p.expect("END"); err != nil {
				return nil, err
			}
			out = append(out, &whileStmt{body: body})
		case "IF":
			if len(fields) != 2 || !conditions[fields[1]] {
				return nil, fmt.Errorf("%w: bad IF condition %q", ErrProgram, line)
			}
			p.pos++
			thenBody, err := p.block([]string{"ELSE", "END"})
			if err != nil {
				return nil, err
			}
			var elseBody []stmt
			if p.pos < len(p.lines) && p.lines[p.pos] == "ELSE" {
				p.pos++
				elseBody, err = p.block([]string{"END"})
				if err != nil {
					return nil, err
				}
			}
			if err := p.expect("END"); err != nil {
				return nil, err
			}
			out = append(out, &ifStmt{cond: fields[1], thenBody: thenBody, elseBody: elseBody})
		default:
			return nil, fmt.Errorf("%w: unknown command %q", ErrProgram, line)
		}
	}
	if terminators != nil {
		return nil, fmt.Errorf("%w: missing %s", ErrProgram, strings.Join(terminators, "/"))
	}
	return out, nil
}

func (p *parser) expect(tok string) error {
	if p.pos >= len(p.lines) || p.lines[p.pos] != tok {
		return fmt.Errorf("%w: expected %s", ErrProgram, tok)
	}
	p.pos++
	return nil
}

type executor struct {
	r       *Robot
	actions int
	budget  int
}

func (ex *executor) spend() error {
	ex.actions++
	if ex.actions > ex.budget {
		return fmt.Errorf("%w: %d actions", ErrBudget, ex.budget)
	}
	return nil
}

func (a *actionStmt) run(ctx context.Context, ex *executor) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ex.spend(); err != nil {
		return err
	}
	switch a.kind {
	case "FORWARD":
		return ex.r.Forward()
	case "LEFT":
		ex.r.TurnLeft()
	case "RIGHT":
		ex.r.TurnRight()
	}
	return nil
}

func runBody(ctx context.Context, body []stmt, ex *executor) error {
	for _, s := range body {
		if err := s.run(ctx, ex); err != nil {
			return err
		}
	}
	return nil
}

func (r *repeatStmt) run(ctx context.Context, ex *executor) error {
	for i := 0; i < r.n; i++ {
		if err := runBody(ctx, r.body, ex); err != nil {
			return err
		}
	}
	return nil
}

func (w *whileStmt) run(ctx context.Context, ex *executor) error {
	for !ex.r.AtGoal() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := ex.spend(); err != nil {
			return err
		}
		if err := runBody(ctx, w.body, ex); err != nil {
			return err
		}
	}
	return nil
}

func evalCond(r *Robot, cond string) bool {
	switch cond {
	case "FRONT_OPEN":
		return r.FrontDistance() > 0
	case "FRONT_BLOCKED":
		return r.FrontDistance() == 0
	case "LEFT_OPEN":
		return r.LeftDistance() > 0
	case "RIGHT_OPEN":
		return r.RightDistance() > 0
	case "AT_GOAL":
		return r.AtGoal()
	}
	return false
}

func (i *ifStmt) run(ctx context.Context, ex *executor) error {
	if evalCond(ex.r, i.cond) {
		return runBody(ctx, i.thenBody, ex)
	}
	return runBody(ctx, i.elseBody, ex)
}

// Run executes the program on the robot. budget bounds the total actions
// and loop iterations (0 means 100000). Collisions abort the program, as
// in the web environment.
func (p *Program) Run(ctx context.Context, r *Robot, budget int) error {
	if budget <= 0 {
		budget = 100000
	}
	ex := &executor{r: r, budget: budget}
	return runBody(ctx, p.stmts, ex)
}
