package robot

import (
	"context"
	"errors"
	"strings"
	"testing"

	"soc/internal/maze"
)

// corridor builds a 4x1-style maze: a 4x2 maze with an open top row,
// start at (0,0), goal at (3,0).
func corridor(t *testing.T) *maze.Maze {
	t.Helper()
	m, err := maze.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 3; x++ {
		if err := m.SetWall(maze.Cell{X: x, Y: 0}, maze.East, false); err != nil {
			t.Fatal(err)
		}
	}
	m.Start = maze.Cell{X: 0, Y: 0}
	m.Goal = maze.Cell{X: 3, Y: 0}
	return m
}

func TestForwardAndSensors(t *testing.T) {
	r, err := New(corridor(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Heading() != maze.East {
		t.Fatalf("initial heading = %s", r.Heading())
	}
	if r.FrontDistance() != 3 || r.LeftDistance() != 0 || r.RightDistance() != 0 {
		t.Errorf("sensors = %d/%d/%d", r.FrontDistance(), r.LeftDistance(), r.RightDistance())
	}
	for i := 0; i < 3; i++ {
		if err := r.Forward(); err != nil {
			t.Fatalf("Forward %d: %v", i, err)
		}
	}
	if !r.AtGoal() || r.Steps() != 3 {
		t.Errorf("atGoal=%v steps=%d", r.AtGoal(), r.Steps())
	}
	if err := r.Forward(); !errors.Is(err, ErrCollision) {
		t.Errorf("wall move: %v", err)
	}
	if r.Bumps() != 1 {
		t.Errorf("bumps = %d", r.Bumps())
	}
}

func TestTurnsAndFace(t *testing.T) {
	r, _ := New(corridor(t))
	r.TurnLeft()
	if r.Heading() != maze.North {
		t.Errorf("after left: %s", r.Heading())
	}
	r.TurnRight()
	r.TurnRight()
	if r.Heading() != maze.South {
		t.Errorf("after rights: %s", r.Heading())
	}
	r.Face(maze.West)
	if r.Heading() != maze.West {
		t.Errorf("Face: %s", r.Heading())
	}
	if r.Turns() != 4 {
		t.Errorf("turns = %d", r.Turns())
	}
}

func TestEvents(t *testing.T) {
	r, _ := New(corridor(t))
	var kinds []EventKind
	r.SetListener(func(e Event) { kinds = append(kinds, e.Kind) })
	_ = r.Forward()
	r.TurnLeft()
	_ = r.Forward() // blocked (north wall)
	r.TurnRight()
	_ = r.Forward()
	_ = r.Forward() // reaches goal
	want := []EventKind{EventMoved, EventTurned, EventBlocked, EventTurned, EventMoved, EventMoved, EventGoal}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event[%d] = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestVisitedAndReset(t *testing.T) {
	r, _ := New(corridor(t))
	_ = r.Forward()
	_ = r.Forward()
	if r.Visited() != 3 {
		t.Errorf("visited = %d", r.Visited())
	}
	if r.VisitCount(maze.Cell{X: 1, Y: 0}) != 1 {
		t.Errorf("visit count wrong")
	}
	r.Reset()
	if r.Steps() != 0 || r.Position() != r.Maze().Start || r.Visited() != 1 {
		t.Error("reset incomplete")
	}
}

func TestGoalDelta(t *testing.T) {
	r, _ := New(corridor(t))
	dx, dy := r.GoalDelta()
	if dx != 3 || dy != 0 {
		t.Errorf("delta = %d,%d", dx, dy)
	}
}

func TestNewNilMaze(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil maze accepted")
	}
}

func TestProgramStraightLine(t *testing.T) {
	r, _ := New(corridor(t))
	prog, err := ParseProgram("FORWARD\nFORWARD\nFORWARD")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(context.Background(), r, 0); err != nil {
		t.Fatal(err)
	}
	if !r.AtGoal() {
		t.Error("not at goal")
	}
}

func TestProgramRepeat(t *testing.T) {
	r, _ := New(corridor(t))
	prog, err := ParseProgram("REPEAT 3\n  FORWARD\nEND")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(context.Background(), r, 0); err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 3 {
		t.Errorf("steps = %d", r.Steps())
	}
}

func TestProgramCollisionAborts(t *testing.T) {
	r, _ := New(corridor(t))
	prog, _ := ParseProgram("REPEAT 10\nFORWARD\nEND")
	err := prog.Run(context.Background(), r, 0)
	if !errors.Is(err, ErrCollision) {
		t.Errorf("err = %v", err)
	}
	if r.Steps() != 3 {
		t.Errorf("steps before collision = %d", r.Steps())
	}
}

// wallFollowerProgram is the right-hand-rule written in the drop-down
// language — the program a CSE101 student composes in the web UI.
const wallFollowerProgram = `
# right-hand wall following
WHILE NOT_GOAL
  IF RIGHT_OPEN
    RIGHT
    FORWARD
  ELSE
    IF FRONT_OPEN
      FORWARD
    ELSE
      LEFT
    END
  END
END`

func TestProgramWallFollowerSolvesGeneratedMazes(t *testing.T) {
	prog, err := ParseProgram(wallFollowerProgram)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		m, err := maze.Generate(9, 9, maze.DFS, seed)
		if err != nil {
			t.Fatal(err)
		}
		r, _ := New(m)
		if err := prog.Run(context.Background(), r, 100000); err != nil {
			t.Errorf("seed %d: %v", seed, err)
			continue
		}
		if !r.AtGoal() {
			t.Errorf("seed %d: wall follower did not reach goal", seed)
		}
	}
}

func TestProgramIfConditions(t *testing.T) {
	r, _ := New(corridor(t))
	prog, err := ParseProgram(`
IF FRONT_OPEN
  FORWARD
END
IF AT_GOAL
  LEFT
ELSE
  FORWARD
END`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(context.Background(), r, 0); err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 2 {
		t.Errorf("steps = %d", r.Steps())
	}
}

func TestProgramBudget(t *testing.T) {
	m, _ := maze.New(3, 3) // no exit: robot can never reach goal
	m.Goal = maze.Cell{X: 2, Y: 2}
	r, _ := New(m)
	prog, _ := ParseProgram("WHILE NOT_GOAL\nLEFT\nEND")
	err := prog.Run(context.Background(), r, 50)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v", err)
	}
}

func TestProgramParseErrors(t *testing.T) {
	cases := []string{
		"FLY",
		"FORWARD 2",
		"REPEAT\nFORWARD\nEND",
		"REPEAT x\nFORWARD\nEND",
		"REPEAT 0\nFORWARD\nEND",
		"REPEAT 2\nFORWARD",
		"IF\nFORWARD\nEND",
		"IF SUNNY\nFORWARD\nEND",
		"WHILE FOREVER\nFORWARD\nEND",
		"END",
		"ELSE",
	}
	for _, c := range cases {
		if _, err := ParseProgram(c); !errors.Is(err, ErrProgram) {
			t.Errorf("ParseProgram(%q) = %v", c, err)
		}
	}
}

func TestProgramCommentsAndCase(t *testing.T) {
	prog, err := ParseProgram("# a comment\n\nforward\nLeft\n")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := New(corridor(t))
	if err := prog.Run(context.Background(), r, 0); err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 1 || r.Heading() != maze.North {
		t.Error("case-insensitive parse failed")
	}
}

func TestProgramContextCancel(t *testing.T) {
	r, _ := New(corridor(t))
	prog, _ := ParseProgram("FORWARD")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := prog.Run(ctx, r, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestSessions(t *testing.T) {
	s := NewSessions()
	id, err := s.Create(5, 5, maze.DFS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	if _, err := s.Get(id); err != nil {
		t.Errorf("Get: %v", err)
	}
	if _, err := s.Get(999); err == nil {
		t.Error("missing session found")
	}
	if err := s.Close(id); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := s.Close(id); err == nil {
		t.Error("double close accepted")
	}
	if _, err := s.Create(1, 1, maze.DFS, 1); err == nil {
		t.Error("bad maze size accepted")
	}
}

func TestServiceOperations(t *testing.T) {
	svc, err := NewService(NewSessions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	out, err := svc.Invoke(ctx, "CreateMaze", map[string]any{
		"width": 7, "height": 7, "algorithm": "dfs", "seed": 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	session := out["session"]

	sense, err := svc.Invoke(ctx, "Sense", map[string]any{"session": session})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sense["front"]; !ok {
		t.Errorf("sense = %v", sense)
	}

	run, err := svc.Invoke(ctx, "RunProgram", map[string]any{
		"session": session,
		"program": wallFollowerProgram,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run["atGoal"] != true || run["ok"] != true {
		t.Errorf("run = %v", run)
	}

	state, err := svc.Invoke(ctx, "State", map[string]any{"session": session})
	if err != nil {
		t.Fatal(err)
	}
	if state["atGoal"] != true {
		t.Errorf("state = %v", state)
	}

	render, err := svc.Invoke(ctx, "Render", map[string]any{"session": session})
	if err != nil || !strings.Contains(render["maze"].(string), "G") {
		t.Errorf("render: %v %v", render, err)
	}

	if _, err := svc.Invoke(ctx, "CreateMaze", map[string]any{
		"width": 5, "height": 5, "algorithm": "voronoi",
	}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := svc.Invoke(ctx, "Forward", map[string]any{"session": 424242}); err == nil {
		t.Error("missing session accepted")
	}

	closed, err := svc.Invoke(ctx, "CloseSession", map[string]any{"session": session})
	if err != nil || closed["closed"] != true {
		t.Errorf("close: %v %v", closed, err)
	}

	badProg, err := svc.Invoke(ctx, "CreateMaze", map[string]any{"width": 5, "height": 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(ctx, "RunProgram", map[string]any{
		"session": badProg["session"], "program": "JUMP",
	}); err == nil {
		t.Error("bad program accepted")
	}
	// Colliding program: reported via ok=false, not an invocation error.
	collide, err := svc.Invoke(ctx, "RunProgram", map[string]any{
		"session": badProg["session"], "program": "REPEAT 100\nFORWARD\nEND",
	})
	if err != nil {
		t.Fatal(err)
	}
	if collide["ok"] != false || collide["error"] == "" {
		t.Errorf("collide = %v", collide)
	}
}
