package robot

import (
	"context"
	"testing"

	"soc/internal/maze"
)

func twinPair(t *testing.T, dropRate float64) *Twin {
	t.Helper()
	m1, err := maze.Generate(9, 9, maze.DFS, 7)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := maze.Generate(9, 9, maze.DFS, 7)
	if err != nil {
		t.Fatal(err)
	}
	primary, err := New(m1)
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := New(m2)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTwin(primary, mirror, dropRate, 11)
	if err != nil {
		t.Fatal(err)
	}
	return tw
}

func TestTwinValidation(t *testing.T) {
	m, _ := maze.Generate(9, 9, maze.DFS, 1)
	r, _ := New(m)
	if _, err := NewTwin(nil, r, 0, 1); err == nil {
		t.Error("nil primary accepted")
	}
	if _, err := NewTwin(r, r, -0.5, 1); err == nil {
		t.Error("negative drop rate accepted")
	}
	if _, err := NewTwin(r, r, 1.0, 1); err == nil {
		t.Error("drop rate 1.0 accepted")
	}
	other, _ := maze.Generate(9, 9, maze.DFS, 2)
	r2, _ := New(other)
	if _, err := NewTwin(r, r2, 0, 1); err == nil {
		t.Error("mismatched mazes accepted")
	}
}

func TestTwinPerfectLinkStaysInSync(t *testing.T) {
	tw := twinPair(t, 0)
	prog, err := ParseProgram(wallFollowerProgram)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the twin with the wall follower by adapting the twin to the
	// robot command surface manually.
	for i := 0; i < 500 && !tw.Primary().AtGoal(); i++ {
		if tw.Primary().RightDistance() > 0 {
			tw.TurnRight()
			if err := tw.Forward(); err != nil {
				t.Fatal(err)
			}
		} else if tw.Primary().FrontDistance() > 0 {
			if err := tw.Forward(); err != nil {
				t.Fatal(err)
			}
		} else {
			tw.TurnLeft()
		}
		if !tw.InSync() {
			t.Fatalf("desynced at step %d with perfect link", i)
		}
	}
	if !tw.Primary().AtGoal() || !tw.Mirror().AtGoal() {
		t.Error("twin pair did not both reach the goal")
	}
	if tw.Dropped() != 0 {
		t.Errorf("perfect link dropped %d", tw.Dropped())
	}
	_ = prog
}

func TestTwinLossyLinkDivergesThenSyncs(t *testing.T) {
	tw := twinPair(t, 0.35)
	// Drive the primary far enough that some commands are lost.
	diverged := false
	for i := 0; i < 200; i++ {
		if tw.Primary().FrontDistance() > 0 {
			_ = tw.Forward()
		} else {
			tw.TurnLeft()
		}
		if !tw.InSync() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("lossy link never diverged (drop rate 0.35 over 200 commands)")
	}
	if tw.Dropped() == 0 || tw.Sent() == 0 {
		t.Fatalf("drop accounting: %d/%d", tw.Dropped(), tw.Sent())
	}
	if err := tw.Sync(context.Background()); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if !tw.InSync() {
		t.Errorf("still desynced after Sync: primary %v/%v, mirror %v/%v",
			tw.Primary().Position(), tw.Primary().Heading(),
			tw.Mirror().Position(), tw.Mirror().Heading())
	}
}

func TestTwinSyncNoOpWhenAligned(t *testing.T) {
	tw := twinPair(t, 0)
	before := tw.Mirror().Steps()
	if err := tw.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tw.Mirror().Steps() != before {
		t.Error("sync moved an aligned mirror")
	}
}

func TestTwinSyncContextCancel(t *testing.T) {
	tw := twinPair(t, 0.9*0.99) // heavy loss
	for i := 0; i < 50; i++ {
		if tw.Primary().FrontDistance() > 0 {
			_ = tw.Forward()
		} else {
			tw.TurnRight()
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if tw.InSync() {
		t.Skip("no divergence to sync")
	}
	if err := tw.Sync(ctx); err == nil {
		t.Error("cancelled sync succeeded")
	}
}

func TestTwinForwardCollisionPropagates(t *testing.T) {
	tw := twinPair(t, 0)
	// Face a wall and push: the primary reports the collision.
	for tw.Primary().FrontDistance() > 0 {
		if err := tw.Forward(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Forward(); err == nil {
		t.Error("collision not reported")
	}
}
