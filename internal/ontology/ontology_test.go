package ontology

import (
	"testing"
)

// financeOntology: Loan ⊂ FinancialProduct; Mortgage ⊂ Loan;
// AutoLoan ⊂ Loan; CreditScore ⊂ Score.
func financeOntology(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	for _, tr := range []Triple{
		{"Loan", SubClassOf, "FinancialProduct"},
		{"Mortgage", SubClassOf, "Loan"},
		{"AutoLoan", SubClassOf, "Loan"},
		{"CreditScore", SubClassOf, "Score"},
		{"deal1", TypeOf, "Mortgage"},
		{"deal2", TypeOf, "AutoLoan"},
		{"deal3", TypeOf, "Loan"},
	} {
		if err := s.Add(tr.S, tr.P, tr.O); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAddAndQuery(t *testing.T) {
	s := financeOntology(t)
	if s.Len() != 7 {
		t.Errorf("len = %d", s.Len())
	}
	if err := s.Add("", "p", "o"); err == nil {
		t.Error("empty subject accepted")
	}
	// Idempotent add.
	_ = s.Add("Loan", SubClassOf, "FinancialProduct")
	if s.Len() != 7 {
		t.Errorf("duplicate add changed len to %d", s.Len())
	}
	if !s.Has("Mortgage", SubClassOf, "Loan") {
		t.Error("Has missed asserted triple")
	}
	if s.Has("Loan", SubClassOf, "Mortgage") {
		t.Error("Has found phantom triple")
	}
	all := s.Query("", SubClassOf, "")
	if len(all) != 4 {
		t.Errorf("subclass triples = %v", all)
	}
	loans := s.Query("", TypeOf, "Mortgage")
	if len(loans) != 1 || loans[0].S != "deal1" {
		t.Errorf("typed query = %v", loans)
	}
	if got := s.Query("deal1", "", ""); len(got) != 1 {
		t.Errorf("subject query = %v", got)
	}
}

func TestSubClassReasoning(t *testing.T) {
	s := financeOntology(t)
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"Mortgage", "Loan", true},
		{"Mortgage", "FinancialProduct", true}, // transitive
		{"Mortgage", "Mortgage", true},         // reflexive
		{"Loan", "Mortgage", false},
		{"CreditScore", "FinancialProduct", false},
	}
	for _, c := range cases {
		if got := s.IsSubClassOf(c.sub, c.super); got != c.want {
			t.Errorf("IsSubClassOf(%s,%s) = %v", c.sub, c.super, got)
		}
	}
	supers := s.Superclasses("Mortgage")
	if len(supers) != 2 || supers[0] != "FinancialProduct" || supers[1] != "Loan" {
		t.Errorf("superclasses = %v", supers)
	}
}

func TestSubClassCycleTolerance(t *testing.T) {
	s := NewStore()
	_ = s.Add("A", SubClassOf, "B")
	_ = s.Add("B", SubClassOf, "A") // degenerate but must not hang
	if !s.IsSubClassOf("A", "B") || !s.IsSubClassOf("B", "A") {
		t.Error("cycle members not mutually subclassed")
	}
	if s.IsSubClassOf("A", "C") {
		t.Error("phantom superclass")
	}
}

func TestInstancesOf(t *testing.T) {
	s := financeOntology(t)
	loans := s.InstancesOf("Loan")
	if len(loans) != 3 {
		t.Errorf("instances of Loan = %v", loans)
	}
	products := s.InstancesOf("FinancialProduct")
	if len(products) != 3 {
		t.Errorf("instances of FinancialProduct = %v", products)
	}
	mortgages := s.InstancesOf("Mortgage")
	if len(mortgages) != 1 || mortgages[0] != "deal1" {
		t.Errorf("instances of Mortgage = %v", mortgages)
	}
	if got := s.InstancesOf("Score"); len(got) != 0 {
		t.Errorf("instances of Score = %v", got)
	}
}

func TestObjects(t *testing.T) {
	s := financeOntology(t)
	got := s.Objects("Mortgage", SubClassOf)
	if len(got) != 1 || got[0] != "Loan" {
		t.Errorf("objects = %v", got)
	}
}

func TestMatchConcept(t *testing.T) {
	s := financeOntology(t)
	cases := []struct {
		req, adv string
		want     MatchDegree
	}{
		{"Loan", "Loan", Exact},
		{"Loan", "Mortgage", Plugin},  // advertised more specific
		{"Mortgage", "Loan", Subsume}, // advertised more general
		{"Loan", "CreditScore", Fail},
	}
	for _, c := range cases {
		if got := s.MatchConcept(c.req, c.adv); got != c.want {
			t.Errorf("MatchConcept(%s,%s) = %s, want %s", c.req, c.adv, got, c.want)
		}
	}
	if Exact.String() != "exact" || Fail.String() != "fail" {
		t.Error("degree names wrong")
	}
}

func TestMatchService(t *testing.T) {
	s := financeOntology(t)
	request := ServiceProfile{
		Name:    "need-loan-quote",
		Inputs:  []string{"CreditScore"},
		Outputs: []string{"Loan"},
	}
	exactAd := ServiceProfile{Name: "loan-svc", Inputs: []string{"CreditScore"}, Outputs: []string{"Loan"}}
	pluginAd := ServiceProfile{Name: "mortgage-svc", Inputs: []string{"CreditScore"}, Outputs: []string{"Mortgage"}}
	subsumeAd := ServiceProfile{Name: "product-svc", Inputs: []string{"CreditScore"}, Outputs: []string{"FinancialProduct"}}
	failAd := ServiceProfile{Name: "weather-svc", Inputs: []string{"City"}, Outputs: []string{"Forecast"}}

	if d := s.MatchService(request, exactAd); d != Exact {
		t.Errorf("exact ad = %s", d)
	}
	if d := s.MatchService(request, pluginAd); d != Plugin {
		t.Errorf("plugin ad = %s", d)
	}
	if d := s.MatchService(request, subsumeAd); d != Subsume {
		t.Errorf("subsume ad = %s", d)
	}
	if d := s.MatchService(request, failAd); d != Fail {
		t.Errorf("fail ad = %s", d)
	}

	ranked := s.RankServices(request, []ServiceProfile{failAd, subsumeAd, exactAd, pluginAd})
	if len(ranked) != 3 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Profile.Name != "loan-svc" || ranked[1].Profile.Name != "mortgage-svc" || ranked[2].Profile.Name != "product-svc" {
		t.Errorf("order = %v %v %v", ranked[0].Profile.Name, ranked[1].Profile.Name, ranked[2].Profile.Name)
	}
}

func TestMatchServiceInputDirection(t *testing.T) {
	s := financeOntology(t)
	// The advert demands a Mortgage input; the requester can only supply
	// a Loan. A Loan is not necessarily a Mortgage, so the match is the
	// weak "subsume" degree, not exact/plugin.
	request := ServiceProfile{Inputs: []string{"Loan"}, Outputs: []string{"Loan"}}
	advert := ServiceProfile{Inputs: []string{"Mortgage"}, Outputs: []string{"Loan"}}
	if d := s.MatchService(request, advert); d != Subsume {
		t.Errorf("input-direction match = %s, want subsume", d)
	}
	// Conversely an advert accepting any FinancialProduct input happily
	// takes our Loan: that direction is the strong "plugin" degree.
	generous := ServiceProfile{Inputs: []string{"FinancialProduct"}, Outputs: []string{"Loan"}}
	if d := s.MatchService(request, generous); d != Plugin {
		t.Errorf("generous-input match = %s, want plugin", d)
	}
}
