// Package ontology implements the "Ontology and Semantic Web" unit of
// CSE446: an RDF-style triple store with subclass/subproperty reasoning,
// pattern queries, and the semantic service-matching algorithm that rates
// how well an advertised service satisfies a request (exact / plugin /
// subsume / fail — the classic OWL-S matchmaking degrees).
package ontology

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Well-known predicates.
const (
	SubClassOf = "rdfs:subClassOf"
	TypeOf     = "rdf:type"
)

// Triple is one (subject, predicate, object) statement.
type Triple struct {
	S, P, O string
}

// ErrTriple reports an invalid statement or query.
var ErrTriple = errors.New("ontology: invalid triple")

// Store is a triple store with forward-chained subclass reasoning.
type Store struct {
	mu      sync.RWMutex
	triples map[Triple]bool
	bySP    map[[2]string][]string // (s,p) → objects
	byPO    map[[2]string][]string // (p,o) → subjects
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		triples: map[Triple]bool{},
		bySP:    map[[2]string][]string{},
		byPO:    map[[2]string][]string{},
	}
}

// Add asserts a triple (idempotent).
func (s *Store) Add(subject, predicate, object string) error {
	if subject == "" || predicate == "" || object == "" {
		return fmt.Errorf("%w: (%q,%q,%q)", ErrTriple, subject, predicate, object)
	}
	t := Triple{subject, predicate, object}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.triples[t] {
		return nil
	}
	s.triples[t] = true
	s.bySP[[2]string{subject, predicate}] = append(s.bySP[[2]string{subject, predicate}], object)
	s.byPO[[2]string{predicate, object}] = append(s.byPO[[2]string{predicate, object}], subject)
	return nil
}

// Has reports whether the exact triple is asserted.
func (s *Store) Has(subject, predicate, object string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.triples[Triple{subject, predicate, object}]
}

// Len reports the number of asserted triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.triples)
}

// Query returns triples matching the pattern; "" or "?" in a position is
// a wildcard. Results are sorted for determinism.
func (s *Store) Query(subject, predicate, object string) []Triple {
	wild := func(x string) bool { return x == "" || x == "?" }
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Triple
	for t := range s.triples {
		if !wild(subject) && t.S != subject {
			continue
		}
		if !wild(predicate) && t.P != predicate {
			continue
		}
		if !wild(object) && t.O != object {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].S != out[j].S {
			return out[i].S < out[j].S
		}
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		return out[i].O < out[j].O
	})
	return out
}

// Objects returns the objects of (subject, predicate, *), sorted.
func (s *Store) Objects(subject, predicate string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]string(nil), s.bySP[[2]string{subject, predicate}]...)
	sort.Strings(out)
	return out
}

// IsSubClassOf reports whether sub is a (possibly transitive) subclass of
// super; every class is a subclass of itself.
func (s *Store) IsSubClassOf(sub, super string) bool {
	if sub == super {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{sub: true}
	frontier := []string{sub}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, parent := range s.bySP[[2]string{cur, SubClassOf}] {
			if parent == super {
				return true
			}
			if !seen[parent] {
				seen[parent] = true
				frontier = append(frontier, parent)
			}
		}
	}
	return false
}

// Superclasses returns all (transitive) superclasses of c, sorted,
// excluding c itself.
func (s *Store) Superclasses(c string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	frontier := []string{c}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, parent := range s.bySP[[2]string{cur, SubClassOf}] {
			if !seen[parent] {
				seen[parent] = true
				frontier = append(frontier, parent)
			}
		}
	}
	delete(seen, c)
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// InstancesOf returns subjects typed (directly or via subclasses) as c.
func (s *Store) InstancesOf(c string) []string {
	s.mu.RLock()
	classes := []string{c}
	// collect all subclasses of c
	var subs []string
	for t := range s.triples {
		if t.P == SubClassOf {
			subs = append(subs, t.S)
		}
	}
	s.mu.RUnlock()
	for _, sub := range subs {
		if sub != c && s.IsSubClassOf(sub, c) {
			classes = append(classes, sub)
		}
	}
	seen := map[string]bool{}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, cls := range classes {
		for _, subj := range s.byPO[[2]string{TypeOf, cls}] {
			seen[subj] = true
		}
	}
	out := make([]string, 0, len(seen))
	for subj := range seen {
		out = append(out, subj)
	}
	sort.Strings(out)
	return out
}

// MatchDegree rates a semantic match.
type MatchDegree int

// OWL-S style matchmaking degrees, best to worst.
const (
	Exact MatchDegree = iota
	Plugin
	Subsume
	Fail
)

func (d MatchDegree) String() string {
	switch d {
	case Exact:
		return "exact"
	case Plugin:
		return "plugin"
	case Subsume:
		return "subsume"
	}
	return "fail"
}

// MatchConcept rates how advertised satisfies requested:
//
//	exact   — same concept
//	plugin  — advertised is more specific (a subclass of requested)
//	subsume — advertised is more general (a superclass of requested)
//	fail    — unrelated
func (s *Store) MatchConcept(requested, advertised string) MatchDegree {
	switch {
	case requested == advertised:
		return Exact
	case s.IsSubClassOf(advertised, requested):
		return Plugin
	case s.IsSubClassOf(requested, advertised):
		return Subsume
	default:
		return Fail
	}
}

// ServiceProfile advertises a service's semantic signature: the concepts
// of its inputs and outputs.
type ServiceProfile struct {
	Name    string
	Inputs  []string
	Outputs []string
}

// MatchService rates an advertisement against a request profile: the
// worst output-concept match dominates (a service is only as useful as
// its weakest promised output); inputs match in the reverse direction
// (the requester must be able to supply them).
func (s *Store) MatchService(request, advert ServiceProfile) MatchDegree {
	worst := Exact
	// Every requested output must be produced.
	for _, reqOut := range request.Outputs {
		best := Fail
		for _, advOut := range advert.Outputs {
			if d := s.MatchConcept(reqOut, advOut); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	// Every advertised input must be suppliable from the request's inputs.
	for _, advIn := range advert.Inputs {
		best := Fail
		for _, reqIn := range request.Inputs {
			if d := s.MatchConcept(advIn, reqIn); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// RankServices orders adverts by match quality against the request,
// dropping Fail matches.
func (s *Store) RankServices(request ServiceProfile, adverts []ServiceProfile) []ScoredService {
	var out []ScoredService
	for _, adv := range adverts {
		d := s.MatchService(request, adv)
		if d == Fail {
			continue
		}
		out = append(out, ScoredService{Profile: adv, Degree: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree != out[j].Degree {
			return out[i].Degree < out[j].Degree
		}
		return out[i].Profile.Name < out[j].Profile.Name
	})
	return out
}

// ScoredService is one ranked advertisement.
type ScoredService struct {
	Profile ServiceProfile
	Degree  MatchDegree
}
