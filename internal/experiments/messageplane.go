package experiments

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	"soc/internal/core"
	"soc/internal/host"
	"soc/internal/perf"
	"soc/internal/services"
	"soc/internal/soap"
)

// MessagePlane is ablation A7: the hot-path message plane. It times the
// SOAP codec in isolation, then a real idempotent operation (AES-GCM
// decryption with passphrase key derivation) invoked through the full
// host twice — once bare, once behind the idempotent-response cache —
// and reports the cache's speedup. The same path is gated in CI by
// `make bench-compare` (cmd/benchdiff); this experiment is the narrative
// version with wall-clock medians.
func MessagePlane(calls int) (string, error) {
	if calls < 1 {
		calls = 100
	}
	msg := soap.Message{
		Operation:  "Echo",
		Namespace:  "http://soc.example/echo",
		Params:     map[string]string{"text": "the quick <brown> fox & friends"},
		ParamOrder: []string{"text"},
	}
	encoded, err := soap.Encode(msg)
	if err != nil {
		return "", err
	}
	encStats, err := perf.Measure(calls, func() {
		if _, err := soap.Encode(msg); err != nil {
			panic(err)
		}
	})
	if err != nil {
		return "", err
	}
	decStats, err := perf.Measure(calls, func() {
		m, err := soap.DecodeBytes(encoded)
		if err != nil || m.Operation != "Echo" {
			panic(fmt.Sprintf("decode: %v %v", m, err))
		}
	})
	if err != nil {
		return "", err
	}

	encSvc, err := services.NewEncryption()
	if err != nil {
		return "", err
	}
	sealed, err := encSvc.Invoke(context.Background(), "Encrypt", core.Values{
		"passphrase": "correct horse battery", "plaintext": "the quick brown fox",
	})
	if err != nil {
		return "", err
	}
	target := "/services/Encryption/invoke/Decrypt?" + url.Values{
		"passphrase": {"correct horse battery"},
		"ciphertext": {sealed.Str("ciphertext")},
	}.Encode()
	invoke := func(h *host.Host) {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			panic(fmt.Sprintf("invoke status %d: %s", w.Code, w.Body.String()))
		}
	}

	bare := host.New()
	if err := bare.Mount(encSvc); err != nil {
		return "", err
	}
	bareStats, err := perf.Measure(calls, func() { invoke(bare) })
	if err != nil {
		return "", err
	}

	cached := host.New()
	if err := cached.Mount(encSvc); err != nil {
		return "", err
	}
	cached.UseResponseCache(64, time.Minute)
	invoke(cached) // fill the cache
	cachedStats, err := perf.Measure(calls, func() { invoke(cached) })
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("A7 — hot-path message plane: codec + idempotent-response cache\n\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %12s\n", "stage", "median", "min", "max")
	for _, row := range []struct {
		name  string
		stats perf.Stats
	}{
		{"soap-encode", encStats},
		{"soap-decode", decStats},
		{"invoke", bareStats},
		{"invoke-cached", cachedStats},
	} {
		fmt.Fprintf(&b, "%-16s %12v %12v %12v\n", row.name, row.stats.Median, row.stats.Min, row.stats.Max)
	}
	fmt.Fprintf(&b, "\ncache speedup on the idempotent Decrypt: %.1fx (hit skips key derivation + AES)\n",
		float64(bareStats.Median)/float64(cachedStats.Median))
	return b.String(), nil
}
