// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablation studies DESIGN.md calls out. Each
// experiment returns its report as text so cmd/socbench, the test suite,
// and the benchmark harness share one implementation.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"soc/internal/collatz"
	"soc/internal/curriculum"
	"soc/internal/maze"
	"soc/internal/nav"
	"soc/internal/perf"
	"soc/internal/robot"
	"soc/internal/vtime"
)

// Figure1 reproduces the web robotics programming environment experiment:
// a drop-down command program (as composed in the Figure 1 UI) is executed
// against the Robot-as-a-Service facade and must navigate the maze. It
// returns the rendered maze, the program, and the run outcome.
func Figure1(ctx context.Context, seed int64) (string, error) {
	sessions := robot.NewSessions()
	svc, err := robot.NewService(sessions)
	if err != nil {
		return "", err
	}
	out, err := svc.Invoke(ctx, "CreateMaze", map[string]any{
		"width": 9, "height": 9, "algorithm": "dfs", "seed": seed,
	})
	if err != nil {
		return "", err
	}
	session := out["session"]
	program := `# right-hand wall following, as composed from drop-down commands
WHILE NOT_GOAL
  IF RIGHT_OPEN
    RIGHT
    FORWARD
  ELSE
    IF FRONT_OPEN
      FORWARD
    ELSE
      LEFT
    END
  END
END`
	render, err := svc.Invoke(ctx, "Render", map[string]any{"session": session})
	if err != nil {
		return "", err
	}
	run, err := svc.Invoke(ctx, "RunProgram", map[string]any{
		"session": session, "program": program, "budget": 100000,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 1 — web robotics programming environment (Robot as a Service)\n\n")
	b.WriteString(render["maze"].(string))
	fmt.Fprintf(&b, "\nprogram:\n%s\n", program)
	fmt.Fprintf(&b, "\nresult: ok=%v atGoal=%v steps=%v\n", run["ok"], run["atGoal"], run["steps"])
	if run["atGoal"] != true {
		return b.String(), fmt.Errorf("experiments: figure 1 program did not reach the goal")
	}
	return b.String(), nil
}

// Figure2Spec configures the navigation-algorithm comparison.
type Figure2Spec struct {
	Sizes  []int
	Seeds  int
	Budget int
}

// DefaultFigure2 is the corpus used by socbench and the benchmarks.
var DefaultFigure2 = Figure2Spec{Sizes: []int{9, 15, 21}, Seeds: 12, Budget: 30000}

// Figure2 reproduces the maze-algorithm study implied by Figure 2: the
// two-distance greedy FSM against wall-following, random walk, and the
// BFS oracle, over a corpus of generated mazes. It also returns the DOT
// export of the greedy controller's FSM (the figure itself).
func Figure2(ctx context.Context, spec Figure2Spec) (string, []nav.Summary, error) {
	sums, err := nav.Evaluate(ctx, nav.Algorithms(), nav.CorpusSpec{
		Sizes: spec.Sizes, Seeds: spec.Seeds, Algorithm: maze.DFS, Budget: spec.Budget,
	})
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString("Figure 2 — two-distance greedy FSM vs baselines (DFS maze corpus)\n\n")
	b.WriteString(nav.FormatSummaries(sums))
	b.WriteString("\nFSM of the two-distance controller (Figure 2, mechanically):\n")
	b.WriteString(nav.TwoDistanceDOT())
	return b.String(), sums, nil
}

// Figure3Spec configures the Collatz speedup experiment.
type Figure3Spec struct {
	// Lo and Hi bound the validated range.
	Lo, Hi uint64
	// Cores are the virtual core counts (the paper's 1,4,8,16,32).
	Cores []int
	// Chunk is the virtual-task granularity.
	Chunk int
	// DispatchOverhead and CoreStartup feed the vtime cost model.
	DispatchOverhead int64
	CoreStartup      int64
	// SerialFraction is the inherently sequential share of the total
	// work (the Amdahl term that bends the paper's efficiency curve).
	SerialFraction float64
}

// DefaultFigure3 mirrors the paper's 1..32-core sweep at laptop scale.
var DefaultFigure3 = Figure3Spec{
	Lo: 1, Hi: 200_001, Cores: []int{1, 4, 8, 16, 32},
	Chunk: 64, DispatchOverhead: 6, CoreStartup: 2000,
	SerialFraction: 0.025,
}

// Figure3Result carries both halves of the experiment.
type Figure3Result struct {
	Virtual []vtime.ScalingPoint
	Real    []perf.ScalingPoint
}

// Figure3 reproduces the Collatz speedup/efficiency study: virtual-time
// scaling to 32 cores (the Manycore-Testing-Lab substitution) anchored by
// real wall-clock measurements up to the host's core count.
func Figure3(spec Figure3Spec) (string, *Figure3Result, error) {
	tasks, err := collatz.Tasks(spec.Lo, spec.Hi, spec.Chunk)
	if err != nil {
		return "", nil, err
	}
	var total int64
	for _, t := range tasks {
		total += t.Cost
	}
	ex, err := vtime.NewExecutor(vtime.Config{
		DispatchOverhead: spec.DispatchOverhead,
		CoreStartup:      spec.CoreStartup,
		SerialWork:       int64(spec.SerialFraction * float64(total)),
	})
	if err != nil {
		return "", nil, err
	}
	virtual, err := ex.Scaling(tasks, spec.Cores)
	if err != nil {
		return "", nil, err
	}

	// Real measurement on the host, up to its core count.
	seq, err := collatz.ValidateSeq(spec.Lo, spec.Hi)
	if err != nil {
		return "", nil, err
	}
	var procs []int
	var times []time.Duration
	for p := 1; p <= runtime.GOMAXPROCS(0); p *= 2 {
		stats, err := perf.Measure(3, func() {
			r, err := collatz.ValidateDynamic(spec.Lo, spec.Hi, p)
			if err != nil || r.TotalSteps != seq.TotalSteps {
				panic(fmt.Sprintf("experiments: collatz mismatch: %v", err))
			}
		})
		if err != nil {
			return "", nil, err
		}
		procs = append(procs, p)
		times = append(times, stats.Min)
	}
	real, err := perf.ScalingStudy(procs, times)
	if err != nil {
		return "", nil, err
	}

	var b strings.Builder
	b.WriteString("Figure 3 — Collatz validation speedup and efficiency\n\n")
	fmt.Fprintf(&b, "workload: validate [%d, %d), checksum %d total steps\n\n", spec.Lo, spec.Hi, seq.TotalSteps)
	b.WriteString("virtual-time many-core executor (Manycore Testing Lab substitution):\n")
	fmt.Fprintf(&b, "%6s %12s %9s %11s\n", "cores", "makespan", "speedup", "efficiency")
	for _, pt := range virtual {
		fmt.Fprintf(&b, "%6d %12d %9.2f %10.1f%%\n", pt.Cores, pt.Makespan, pt.Speedup, pt.Efficiency*100)
	}
	fmt.Fprintf(&b, "\nreal measurement on this host (GOMAXPROCS=%d):\n", runtime.GOMAXPROCS(0))
	b.WriteString(perf.FormatScaling(real))
	return b.String(), &Figure3Result{Virtual: virtual, Real: real}, nil
}

// Table4 renders the enrollment table and Figure 5.
func Table4() (string, error) {
	var b strings.Builder
	b.WriteString("Table 4 — CSE445/598 enrollments since Fall 2006\n\n")
	b.WriteString(curriculum.FormatTable4(curriculum.EnrollmentTable))
	g, err := curriculum.GrowthFactor(curriculum.EnrollmentTable)
	if err != nil {
		return "", err
	}
	slope, err := curriculum.LinearTrend(curriculum.EnrollmentTable)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\ngrowth 2006->2014: %.2fx; trend: %+.1f students/semester\n\n", g, slope)
	fig5, err := curriculum.Figure5(curriculum.EnrollmentTable)
	if err != nil {
		return "", err
	}
	b.WriteString(fig5)
	return b.String(), nil
}

// Table5 renders the evaluation-score table.
func Table5() (string, error) {
	var b strings.Builder
	b.WriteString("Table 5 — CSE445/598 student evaluation scores\n\n")
	b.WriteString(curriculum.FormatTable5(curriculum.EvaluationTable))
	m445, m598, err := curriculum.MeanScores(curriculum.EvaluationTable)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nmeans: CSE445 %.2f, CSE598 %.2f (out of 5.0)\n", m445, m598)
	return b.String(), nil
}

// Textbook renders the §VI chapter list with this repository's module
// coverage.
func Textbook() (string, error) {
	var b strings.Builder
	b.WriteString("§VI — textbook chapters mapped to repository modules\n\n")
	b.WriteString(curriculum.FormatTextbook(curriculum.TextbookChapters))
	covered, uncovered := curriculum.TextbookCoverage(curriculum.TextbookChapters)
	fmt.Fprintf(&b, "\n%d chapters covered, %d uncovered\n", covered, uncovered)
	if uncovered > 0 {
		return b.String(), fmt.Errorf("experiments: %d chapters uncovered", uncovered)
	}
	return b.String(), nil
}

// TablesACM renders the Tables 1–3 coverage report.
func TablesACM() (string, error) {
	report, uncovered := curriculum.CoverageReport(curriculum.ACMTopics)
	var b strings.Builder
	b.WriteString("Tables 1-3 — ACM CS topic coverage mapped to repository modules\n\n")
	b.WriteString(report)
	fmt.Fprintf(&b, "\n%d topics, %d uncovered\n", len(curriculum.ACMTopics), uncovered)
	if uncovered > 0 {
		return b.String(), fmt.Errorf("experiments: %d ACM topics uncovered", uncovered)
	}
	return b.String(), nil
}
