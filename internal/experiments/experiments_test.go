package experiments

import (
	"context"
	"strings"
	"testing"

	"soc/internal/services"
)

var ctx = context.Background()

func TestFigure1ProgramSolvesMaze(t *testing.T) {
	out, err := Figure1(ctx, 3)
	if err != nil {
		t.Fatalf("Figure1: %v\n%s", err, out)
	}
	for _, want := range []string{"Robot as a Service", "atGoal=true", "WHILE NOT_GOAL", " G "} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	spec := Figure2Spec{Sizes: []int{9}, Seeds: 6, Budget: 30000}
	out, sums, err := Figure2(ctx, spec)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	byAlg := map[string]float64{}
	steps := map[string]float64{}
	for _, s := range sums {
		byAlg[s.Algorithm] = s.SolveRate()
		steps[s.Algorithm] = s.MeanSteps
	}
	// Who wins: oracle and wall-followers solve everything; greedy close;
	// random is the straggler on step count.
	if byAlg["bfs-oracle"] != 1 || byAlg["wall-follow-right"] != 1 {
		t.Errorf("solve rates = %v", byAlg)
	}
	if steps["bfs-oracle"] > steps["wall-follow-right"] {
		t.Errorf("oracle steps %v > wall follow %v", steps["bfs-oracle"], steps["wall-follow-right"])
	}
	if !strings.Contains(out, "digraph") {
		t.Error("FSM DOT missing from report")
	}
}

func TestFigure3Shape(t *testing.T) {
	spec := DefaultFigure3
	spec.Hi = 50_001 // keep the test quick
	out, res, err := Figure3(spec)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	v := res.Virtual
	if len(v) != 5 || v[0].Cores != 1 || v[len(v)-1].Cores != 32 {
		t.Fatalf("virtual points = %+v", v)
	}
	// The paper's shape: monotone speedup, declining efficiency,
	// sub-linear at 32 cores but still well above 1.
	for i := 1; i < len(v); i++ {
		if v[i].Speedup < v[i-1].Speedup {
			t.Errorf("speedup not monotone: %+v", v)
		}
		if v[i].Efficiency > v[i-1].Efficiency+1e-9 {
			t.Errorf("efficiency not declining: %+v", v)
		}
	}
	last := v[len(v)-1]
	if last.Speedup < 4 || last.Speedup >= 32 {
		t.Errorf("32-core speedup %v outside plausible band", last.Speedup)
	}
	if len(res.Real) == 0 || res.Real[0].P != 1 {
		t.Errorf("real points = %+v", res.Real)
	}
	if !strings.Contains(out, "efficiency") {
		t.Error("report missing efficiency column")
	}
}

func TestFigure4EndToEnd(t *testing.T) {
	out, err := Figure4(t.TempDir())
	if err != nil {
		t.Fatalf("Figure4: %v\n%s", err, out)
	}
	for _, want := range []string{
		"credit-score service denies", "issued user ID", "weak password rejected",
		"mismatched retype rejected", "correct login succeeds", "account.xml",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTables(t *testing.T) {
	t4, err := Table4()
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	for _, want := range []string{"134", "2006 Fall", "growth", "enrollment"} {
		if !strings.Contains(t4, want) {
			t.Errorf("table4 missing %q", want)
		}
	}
	t5, err := Table5()
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	if !strings.Contains(t5, "4.63") || !strings.Contains(t5, "means") {
		t.Errorf("table5:\n%s", t5)
	}
	acm, err := TablesACM()
	if err != nil {
		t.Fatalf("TablesACM: %v", err)
	}
	if !strings.Contains(acm, "0 uncovered") {
		t.Errorf("acm:\n%s", acm)
	}
}

func TestBindingsAblation(t *testing.T) {
	out, err := Bindings(20)
	if err != nil {
		t.Fatalf("Bindings: %v", err)
	}
	if !strings.Contains(out, "rest") || !strings.Contains(out, "soap") {
		t.Errorf("report:\n%s", out)
	}
}

func TestWorkflowOverheadAblation(t *testing.T) {
	out, err := WorkflowOverhead(100)
	if err != nil {
		t.Fatalf("WorkflowOverhead: %v", err)
	}
	if !strings.Contains(out, "direct") || !strings.Contains(out, "workflow") {
		t.Errorf("report:\n%s", out)
	}
}

func TestStateManagementAblation(t *testing.T) {
	out, err := StateManagement(2000)
	if err != nil {
		t.Fatalf("StateManagement: %v", err)
	}
	if !strings.Contains(out, "hit ratio") || !strings.Contains(out, "1024") {
		t.Errorf("report:\n%s", out)
	}
}

func TestCloudScaleAblation(t *testing.T) {
	out, err := CloudScale()
	if err != nil {
		t.Fatalf("CloudScale: %v", err)
	}
	for _, want := range []string{"elastic", "static n=2", "static n=12", "instance-ticks"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDependabilityAblation(t *testing.T) {
	out, err := Dependability()
	if err != nil {
		t.Fatalf("Dependability: %v\n%s", err, out)
	}
	if !strings.Contains(out, "40 succeeded, 0 failed") {
		t.Errorf("report:\n%s", out)
	}
}

func TestCrawlAblation(t *testing.T) {
	out, err := Crawl(ctx)
	if err != nil {
		t.Fatalf("Crawl: %v\n%s", err, out)
	}
	if !strings.Contains(out, "1 published") && !strings.Contains(out, "discovered 1") {
		t.Errorf("report:\n%s", out)
	}
	if !strings.Contains(out, "flagged unreliable") {
		t.Errorf("report:\n%s", out)
	}
}

func TestFindSSNHelpers(t *testing.T) {
	good, err := findSSN(func(s int64) bool { return s >= services.ApprovalThreshold })
	if err != nil {
		t.Fatal(err)
	}
	score, _ := services.CreditScoreOf(good)
	if score < services.ApprovalThreshold {
		t.Errorf("good ssn score %d", score)
	}
	if _, err := findSSN(func(int64) bool { return false }); err == nil {
		t.Error("impossible predicate satisfied")
	}
}
