package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"time"

	"soc/internal/cloud"
	"soc/internal/core"
	"soc/internal/crawler"
	"soc/internal/host"
	"soc/internal/perf"
	"soc/internal/registry"
	"soc/internal/reliability"
	"soc/internal/session"
	"soc/internal/workflow"
)

// calcService builds the shared Add service for the binding/workflow
// ablations.
func calcService() (*core.Service, error) {
	svc, err := core.NewService("Calc", "http://soc.example/calc", "arithmetic")
	if err != nil {
		return nil, err
	}
	return svc, svc.AddOperation(core.Operation{
		Name:   "Add",
		Input:  []core.Param{{Name: "a", Type: core.Int}, {Name: "b", Type: core.Int}},
		Output: []core.Param{{Name: "sum", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"sum": in.Int("a") + in.Int("b")}, nil
		},
	})
}

// Bindings (A2) measures SOAP vs REST invocation latency for the same
// operation on the same host.
func Bindings(calls int) (string, error) {
	if calls < 1 {
		calls = 200
	}
	svc, err := calcService()
	if err != nil {
		return "", err
	}
	h := host.New()
	if err := h.Mount(svc); err != nil {
		return "", err
	}
	server := httptest.NewServer(h)
	defer server.Close()
	client := host.NewClient(server.URL)
	ctx := context.Background()

	restStats, err := perf.Measure(calls, func() {
		out, err := client.Call(ctx, "Calc", "Add", core.Values{"a": 2, "b": 3})
		if err != nil || out.Float("sum") != 5 {
			panic(fmt.Sprintf("rest call failed: %v %v", out, err))
		}
	})
	if err != nil {
		return "", err
	}
	soapStats, err := perf.Measure(calls, func() {
		out, err := client.CallSOAP(ctx, "Calc", "Add", "http://soc.example/calc", core.Values{"a": 2, "b": 3})
		if err != nil || out["sum"] != "5" {
			panic(fmt.Sprintf("soap call failed: %v %v", out, err))
		}
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("A2 — SOAP vs REST binding overhead (same operation, same host)\n\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %12s\n", "bind", "median", "min", "max")
	fmt.Fprintf(&b, "%-6s %12v %12v %12v\n", "rest", restStats.Median, restStats.Min, restStats.Max)
	fmt.Fprintf(&b, "%-6s %12v %12v %12v\n", "soap", soapStats.Median, soapStats.Min, soapStats.Max)
	fmt.Fprintf(&b, "\nsoap/rest median ratio: %.2fx (XML envelope + parse cost)\n",
		float64(soapStats.Median)/float64(restStats.Median))
	return b.String(), nil
}

// WorkflowOverhead (A3) compares direct in-process invocation with
// orchestration through the workflow engine.
func WorkflowOverhead(iterations int) (string, error) {
	if iterations < 1 {
		iterations = 2000
	}
	svc, err := calcService()
	if err != nil {
		return "", err
	}
	ctx := context.Background()
	inv := workflow.InvokerFunc(func(ctx context.Context, _, op string, args map[string]any) (map[string]any, error) {
		out, err := svc.Invoke(ctx, op, core.Values(args))
		return map[string]any(out), err
	})
	wf, err := workflow.New("add3", &workflow.Sequence{Label: "seq", Steps: []workflow.Activity{
		&workflow.Invoke{Label: "a", Service: "Calc", Operation: "Add", Invoker: inv,
			Inputs: map[string]string{"a": "x", "b": "y"}, Outputs: map[string]string{"sum": "t1"}},
		&workflow.Invoke{Label: "b", Service: "Calc", Operation: "Add", Invoker: inv,
			Inputs: map[string]string{"a": "t1", "b": "y"}, Outputs: map[string]string{"sum": "t2"}},
		&workflow.Invoke{Label: "c", Service: "Calc", Operation: "Add", Invoker: inv,
			Inputs: map[string]string{"a": "t2", "b": "y"}, Outputs: map[string]string{"sum": "total"}},
	}})
	if err != nil {
		return "", err
	}
	direct, err := perf.Measure(iterations, func() {
		v := core.Values{"a": int64(1), "b": int64(2)}
		for i := 0; i < 3; i++ {
			out, err := svc.Invoke(ctx, "Add", v)
			if err != nil {
				panic(err)
			}
			v = core.Values{"a": out.Int("sum"), "b": int64(2)}
		}
	})
	if err != nil {
		return "", err
	}
	orchestrated, err := perf.Measure(iterations, func() {
		out, _, err := wf.Run(ctx, map[string]any{"x": int64(1), "y": int64(2)})
		if err != nil || out["total"] != int64(7) {
			panic(fmt.Sprintf("workflow run: %v %v", out, err))
		}
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("A3 — workflow-engine orchestration overhead (3 chained Adds)\n\n")
	fmt.Fprintf(&b, "%-14s %12s %12s\n", "mode", "median", "min")
	fmt.Fprintf(&b, "%-14s %12v %12v\n", "direct", direct.Median, direct.Min)
	fmt.Fprintf(&b, "%-14s %12v %12v\n", "workflow", orchestrated.Median, orchestrated.Min)
	ratio := float64(orchestrated.Median) / float64(direct.Median)
	fmt.Fprintf(&b, "\norchestration/direct median ratio: %.1fx\n", ratio)
	return b.String(), nil
}

// StateManagement (A4) sweeps cache sizes against a Zipf-ish access
// pattern and reports hit ratios.
func StateManagement(requests int) (string, error) {
	if requests < 1 {
		requests = 20000
	}
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 4095)
	keys := make([]string, requests)
	for i := range keys {
		keys[i] = fmt.Sprintf("page-%d", zipf.Uint64())
	}
	var b strings.Builder
	b.WriteString("A4 — session/cache state management hit-ratio sweep (Zipf workload)\n\n")
	fmt.Fprintf(&b, "%10s %10s\n", "capacity", "hit ratio")
	for _, capacity := range []int{16, 64, 256, 1024} {
		c, err := session.NewCache(capacity)
		if err != nil {
			return "", err
		}
		for _, k := range keys {
			if _, ok := c.Get(k); !ok {
				c.Put(k, "rendered")
			}
		}
		fmt.Fprintf(&b, "%10d %9.1f%%\n", capacity, c.HitRatio()*100)
	}
	b.WriteString("\nlarger caches asymptote toward the workload's skew ceiling\n")
	return b.String(), nil
}

// CloudScale (A5) runs the autoscaler elasticity study against static
// provisioning baselines.
func CloudScale() (string, error) {
	demand := []int{10, 10, 20, 60, 120, 120, 80, 30, 10, 10, 10, 10}
	cfg := cloud.AutoscalerConfig{
		MinInstances: 1, MaxInstances: 16, InstanceCapacity: 10,
		TargetUtilization: 0.75, CooldownTicks: 1, StartupTicks: 1,
	}
	sim, err := cloud.NewSimulation(cfg, cloud.LeastLoaded)
	if err != nil {
		return "", err
	}
	stats, err := sim.Run(demand)
	if err != nil {
		return "", err
	}
	var served, dropped, total int
	for _, st := range stats {
		served += st.Served
		dropped += st.Dropped
		total += st.Demand
	}
	var b strings.Builder
	b.WriteString("A5 — cloud autoscaler elasticity under a load burst\n\n")
	b.WriteString(cloud.FormatStats(stats))
	fmt.Fprintf(&b, "\nelastic: served %d/%d (dropped %d), %d instance-ticks\n",
		served, total, dropped, sim.InstanceTicks())
	for _, n := range []int{2, 12} {
		s, d, err := cloud.StaticServed(demand, n, cfg.InstanceCapacity)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "static n=%-2d: served %d/%d (dropped %d), %d instance-ticks\n",
			n, s, total, d, n*len(demand))
	}
	return b.String(), nil
}

// Dependability (A6) injects faults into a replicated service and shows
// retry + circuit breaker + failover masking them.
func Dependability() (string, error) {
	// Replica 1 fails hard after 3 calls; replica 2 stays healthy.
	var calls1 int64
	replica1 := func(context.Context) error {
		if atomic.AddInt64(&calls1, 1) > 3 {
			return errors.New("replica1 crashed")
		}
		return nil
	}
	replica2 := func(context.Context) error { return nil }

	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	// Threshold 1: the first failure opens the circuit, so the sticky
	// failover immediately prefers the healthy replica afterwards.
	b1, err := reliability.NewBreaker(1, time.Minute, clock)
	if err != nil {
		return "", err
	}
	b2, err := reliability.NewBreaker(1, time.Minute, clock)
	if err != nil {
		return "", err
	}
	type guarded struct {
		name    string
		breaker *reliability.Breaker
		call    func(context.Context) error
	}
	group, err := reliability.NewFailover(
		guarded{"replica1", b1, replica1},
		guarded{"replica2", b2, replica2},
	)
	if err != nil {
		return "", err
	}
	ctx := context.Background()
	succeeded, failed := 0, 0
	for i := 0; i < 40; i++ {
		err := group.Do(ctx, func(ctx context.Context, g guarded) error {
			return g.breaker.Do(ctx, g.call)
		})
		if err != nil {
			failed++
		} else {
			succeeded++
		}
	}
	s1, f1, r1 := b1.Counters()
	s2, f2, r2 := b2.Counters()
	var b strings.Builder
	b.WriteString("A6 — dependability: fault injection with breaker + failover\n\n")
	fmt.Fprintf(&b, "client calls: %d succeeded, %d failed\n", succeeded, failed)
	fmt.Fprintf(&b, "replica1 breaker: %d ok, %d failed, %d rejected (state %s)\n", s1, f1, r1, b1.State())
	fmt.Fprintf(&b, "replica2 breaker: %d ok, %d failed, %d rejected (state %s)\n", s2, f2, r2, b2.State())
	if failed != 0 {
		return b.String(), fmt.Errorf("experiments: failover failed to mask all faults")
	}
	if b1.State() == reliability.Closed {
		return b.String(), fmt.Errorf("experiments: replica1 breaker never opened")
	}
	return b.String(), nil
}

// Crawl (A1) builds a small in-process service directory with one flaky
// endpoint, crawls it, feeds the registry, and monitors availability.
func Crawl(ctx context.Context) (string, error) {
	svc, err := calcService()
	if err != nil {
		return "", err
	}
	h := host.New()
	if err := h.Mount(svc); err != nil {
		return "", err
	}
	var flakyDown atomic.Bool
	mux := http.NewServeMux()
	var server *httptest.Server
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `<a href="%s/services/Calc">calc</a> <a href="/flaky">flaky</a>`, server.URL)
	})
	mux.HandleFunc("/flaky", func(w http.ResponseWriter, r *http.Request) {
		if flakyDown.Load() {
			http.Error(w, "down for maintenance", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	})
	mux.Handle("/services/", h)
	server = httptest.NewServer(mux)
	defer server.Close()

	found, err := crawler.Crawl(ctx, []string{server.URL + "/"}, crawler.Config{SameHostOnly: true})
	if err != nil {
		return "", err
	}
	reg := registry.New(registry.WithLease(time.Minute))
	n, err := crawler.Feed(reg, "crawler", found)
	if err != nil {
		return "", err
	}

	mon := crawler.NewMonitor(nil)
	urls := []string{server.URL + "/services/Calc", server.URL + "/flaky"}
	for round := 0; round < 6; round++ {
		flakyDown.Store(round%2 == 1)
		mon.CheckAll(ctx, urls)
	}
	var b strings.Builder
	b.WriteString("A1 — service crawler + availability monitor (flaky free services)\n\n")
	fmt.Fprintf(&b, "crawl discovered %d services; %d published to the registry\n\n", len(found), n)
	fmt.Fprintf(&b, "%-40s %7s %8s %10s\n", "endpoint", "checks", "uptime", "mean RTT")
	for _, st := range mon.Stats() {
		fmt.Fprintf(&b, "%-40s %7d %7.0f%% %10v\n",
			shorten(st.URL), st.Checks, st.Uptime()*100, st.MeanRTT().Round(time.Microsecond))
	}
	unreliable := mon.Unreliable(0.9, 3)
	fmt.Fprintf(&b, "\nflagged unreliable (<90%% uptime): %d endpoint(s)\n", len(unreliable))
	if len(unreliable) != 1 {
		return b.String(), fmt.Errorf("experiments: expected exactly the flaky endpoint flagged, got %v", unreliable)
	}
	return b.String(), nil
}

func shorten(u string) string {
	if i := strings.Index(u, "/"); i > 0 && len(u) > 40 {
		return "..." + u[len(u)-37:]
	}
	return u
}
