package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	"soc/internal/mortgageapp"
	"soc/internal/services"
)

// Figure4 reproduces the web-application project end-to-end over real
// HTTP: subscribe → credit check → user-ID issue → password creation
// (match + strength) → login → account access, plus every denial path
// the figure's decision diamonds show. dataDir holds account.xml.
func Figure4(dataDir string) (string, error) {
	app, err := mortgageapp.New(dataDir)
	if err != nil {
		return "", err
	}
	server := httptest.NewServer(app)
	defer server.Close()
	jar, err := cookiejar.New(nil)
	if err != nil {
		return "", err
	}
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}

	var b strings.Builder
	b.WriteString("Figure 4 — web application project (client + provider over HTTP)\n\n")
	step := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	goodSSN, err := findSSN(func(s int64) bool { return s >= services.ApprovalThreshold })
	if err != nil {
		return "", err
	}
	badSSN, err := findSSN(func(s int64) bool { return s < services.ApprovalThreshold })
	if err != nil {
		return "", err
	}

	post := func(path string, form url.Values) (int, map[string]any, error) {
		resp, err := client.PostForm(server.URL+path, form)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var body map[string]any
		_ = json.Unmarshal(data, &body)
		return resp.StatusCode, body, nil
	}

	// 1. Invalid form is rejected at the presentation layer.
	status, _, err := post("/subscribe", url.Values{"name": {"Ada"}, "ssn": {"badssn"}})
	if err != nil {
		return "", err
	}
	if status != http.StatusBadRequest {
		return b.String(), fmt.Errorf("figure4: invalid form got %d", status)
	}
	step("1. presentation-layer validation rejects malformed SSN (HTTP %d)", status)

	// 2. Low credit score → "You do not qualify".
	status, body, err := post("/subscribe", url.Values{
		"name": {"Bob"}, "ssn": {badSSN}, "address": {"1 Elm St"},
		"dob": {"1990-05-01"}, "income": {"90000"}, "amount": {"200000"},
	})
	if err != nil {
		return "", err
	}
	if status != http.StatusOK || body["approved"] != false {
		return b.String(), fmt.Errorf("figure4: low-credit flow got %d %v", status, body)
	}
	step("2. credit-score service denies SSN %s (score %v): %v", badSSN, body["score"], body["reason"])

	// 3. Approved application issues a user ID.
	status, body, err = post("/subscribe", url.Values{
		"name": {"Ada"}, "ssn": {goodSSN}, "address": {"2 Oak St"},
		"dob": {"1988-03-07"}, "income": {"95000"}, "amount": {"250000"},
	})
	if err != nil {
		return "", err
	}
	userID, _ := body["userId"].(string)
	if status != http.StatusOK || body["approved"] != true || userID == "" {
		return b.String(), fmt.Errorf("figure4: approval flow got %d %v", status, body)
	}
	step("3. application approved (score %v), issued user ID %s; stored in account.xml", body["score"], userID)

	// 4. Weak password rejected ("Strong?" diamond).
	status, _, err = post("/password", url.Values{
		"userId": {userID}, "password": {"weak"}, "retype": {"weak"},
	})
	if err != nil {
		return "", err
	}
	if status != http.StatusBadRequest {
		return b.String(), fmt.Errorf("figure4: weak password got %d", status)
	}
	step("4. weak password rejected (HTTP %d)", status)

	// 5. Mismatched retype rejected ("Match?" diamond).
	status, _, err = post("/password", url.Values{
		"userId": {userID}, "password": {"Str0ngPass!"}, "retype": {"Different1!"},
	})
	if err != nil {
		return "", err
	}
	if status != http.StatusBadRequest {
		return b.String(), fmt.Errorf("figure4: mismatch got %d", status)
	}
	step("5. mismatched retype rejected (HTTP %d)", status)

	// 6. Strong matching password accepted.
	status, body, err = post("/password", url.Values{
		"userId": {userID}, "password": {"Str0ngPass!"}, "retype": {"Str0ngPass!"},
	})
	if err != nil {
		return "", err
	}
	if status != http.StatusOK || body["ready"] != true {
		return b.String(), fmt.Errorf("figure4: password create got %d %v", status, body)
	}
	step("6. password created for %s", userID)

	// 7. Wrong password login denied; correct login succeeds.
	status, _, err = post("/login", url.Values{"userId": {userID}, "password": {"WrongPass1!"}})
	if err != nil {
		return "", err
	}
	if status != http.StatusUnauthorized {
		return b.String(), fmt.Errorf("figure4: wrong login got %d", status)
	}
	status, body, err = post("/login", url.Values{"userId": {userID}, "password": {"Str0ngPass!"}})
	if err != nil {
		return "", err
	}
	if status != http.StatusOK || body["loggedIn"] != true {
		return b.String(), fmt.Errorf("figure4: login got %d %v", status, body)
	}
	step("7. wrong password denied; correct login succeeds")

	// 8. Authenticated account access reads back the XML store.
	resp, err := client.Get(server.URL + "/account/" + userID)
	if err != nil {
		return "", err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var acct map[string]any
	_ = json.Unmarshal(data, &acct)
	if resp.StatusCode != http.StatusOK || acct["state"] != "approved" || acct["name"] != "Ada" {
		return b.String(), fmt.Errorf("figure4: account fetch got %d %v", resp.StatusCode, acct)
	}
	step("8. account page served from account.xml: user %v, state %v", acct["userId"], acct["state"])

	b.WriteString("\nall Figure 4 decision paths exercised successfully\n")
	return b.String(), nil
}

// findSSN searches the synthetic bureau for a score matching pred.
func findSSN(pred func(int64) bool) (string, error) {
	for a := 100; a < 1000; a++ {
		ssn := fmt.Sprintf("%03d-%02d-%04d", a, a%90+10, a*7%9000+1000)
		score, err := services.CreditScoreOf(ssn)
		if err != nil {
			return "", err
		}
		if pred(score) {
			return ssn, nil
		}
	}
	return "", fmt.Errorf("experiments: no SSN matches predicate")
}
