package workflow

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"soc/internal/wal"
)

// stubInvoker is a deterministic in-process service fabric for
// orchestrator tests: it counts every call (per operation and per
// fully-resolved argument set) and every compensator execution, so tests
// can assert at-most-once / exactly-once side-effect properties across
// crash/resume histories.
type stubInvoker struct {
	mu       sync.Mutex
	ops      map[string]int // op -> total calls
	calls    map[string]int // op|args -> calls
	comps    map[string]int // compensator name -> executions
	fail     map[string]string
	failOnce map[string]string
}

func newStubInvoker() *stubInvoker {
	return &stubInvoker{
		ops:      map[string]int{},
		calls:    map[string]int{},
		comps:    map[string]int{},
		fail:     map[string]string{},
		failOnce: map[string]string{},
	}
}

func (s *stubInvoker) Invoke(_ context.Context, _, op string, args map[string]any) (map[string]any, error) {
	buf, _ := json.Marshal(args) // map keys sort: stable across int/float round trips
	s.mu.Lock()
	s.ops[op]++
	n := s.ops[op]
	s.calls[op+"|"+string(buf)]++
	failMsg, failing := s.fail[op]
	onceMsg, failingOnce := s.failOnce[op]
	s.mu.Unlock()
	if failing {
		return nil, fmt.Errorf("%s", failMsg)
	}
	if failingOnce && n == 1 {
		return nil, fmt.Errorf("%s", onceMsg)
	}
	switch op {
	case "Reserve":
		return map[string]any{"token": "tok-1"}, nil
	case "Score":
		return map[string]any{"score": 720}, nil
	case "Check":
		return map[string]any{"strong": true}, nil
	case "Measure":
		item, _ := args["item"].(string)
		return map[string]any{"len": len(item)}, nil
	case "Commit":
		return map[string]any{"committed": true}, nil
	}
	return map[string]any{}, nil
}

func (s *stubInvoker) opCount(op string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops[op]
}

func (s *stubInvoker) callCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.calls))
	for k, v := range s.calls {
		out[k] = v
	}
	return out
}

func (s *stubInvoker) compensator(name string) Compensator {
	return func(_ context.Context, _ map[string]any) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.comps[name]++
		return nil
	}
}

func (s *stubInvoker) compCount(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.comps[name]
}

func (s *stubInvoker) compTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, n := range s.comps {
		total += n
	}
	return total
}

// everythingRoot exercises every activity shape the journal must
// resume through: Task (with a durable Compensate registration),
// non-idempotent Invoke with declared Undo, Parallel, parallel ForEach
// with CollectVar, While over a journaled counter, an armed Pick, and a
// final non-idempotent Invoke.
func everythingRoot(inv Invoker) Activity {
	return &Sequence{Label: "main", Steps: []Activity{
		&Task{Label: "announce", Fn: func(ctx context.Context, vars *Vars) error {
			vars.Set("amount", int64(40))
			vars.Set("counter", int64(0))
			return Compensate(ctx, "log-undo", map[string]any{"what": "announce"})
		}},
		&Invoke{Label: "reserve", Service: "Pay", Operation: "Reserve", Invoker: inv,
			Inputs:       map[string]string{"amount": "amount"},
			Outputs:      map[string]string{"token": "token"},
			Compensation: &Undo{Name: "release", ArgsFrom: map[string]string{"amount": "amount"}}},
		&Parallel{Label: "fan", Branches: []Activity{
			&Invoke{Label: "score", Service: "Credit", Operation: "Score", Invoker: inv, Idempotent: true,
				Inputs: map[string]string{"n": "amount"}, Outputs: map[string]string{"score": "score"}},
			&Invoke{Label: "check", Service: "Sec", Operation: "Check", Invoker: inv, Idempotent: true,
				Outputs: map[string]string{"strong": "strong"}},
		}},
		&ForEach{Label: "each", Items: "items", ItemVar: "item", IndexVar: "idx", Parallel: true, CollectVar: "len",
			Body: &Invoke{Label: "measure", Service: "Str", Operation: "Measure", Invoker: inv, Idempotent: true,
				Inputs: map[string]string{"item": "item"}, Outputs: map[string]string{"len": "len"}}},
		&While{Label: "loop", Cond: func(vars *Vars) bool { return vars.GetInt("counter") < 2 },
			Body: &Sequence{Label: "iter", Steps: []Activity{
				&Invoke{Label: "ping", Service: "Net", Operation: "Ping", Invoker: inv, Idempotent: true,
					Inputs: map[string]string{"n": "counter"}},
				&Assign{Label: "bump", Var: "counter",
					Expr: func(vars *Vars) any { return vars.GetInt("counter") + 1 }},
			}}},
		&Pick{Label: "pick", Events: []PickBranch{{
			Wait: func(context.Context) <-chan any {
				ch := make(chan any, 1)
				ch <- "ding"
				return ch
			},
			Var:  "sig",
			Then: &Assign{Label: "gotevt", Var: "gotevt", Expr: func(vars *Vars) any { return vars.GetString("sig") != "" }},
		}}},
		&Invoke{Label: "commit", Service: "Pay", Operation: "Commit", Invoker: inv,
			Inputs:       map[string]string{"token": "token"},
			Outputs:      map[string]string{"committed": "committed"},
			Compensation: &Undo{Name: "uncommit", ArgsFrom: map[string]string{"token": "token"}}},
		&Task{Label: "finish", Fn: func(_ context.Context, vars *Vars) error {
			vars.Set("finished", true)
			return nil
		}},
	}}
}

func mustWorkflow(t *testing.T, name string, root Activity) *Workflow {
	t.Helper()
	wf, err := New(name, root)
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return wf
}

func openOrch(t *testing.T, fs wal.FS, inv *stubInvoker, opts Options) *Orchestrator {
	t.Helper()
	if !opts.Deterministic {
		opts.Deterministic = true
	}
	o, err := OpenOrchestrator(fs, opts)
	if err != nil {
		t.Fatalf("OpenOrchestrator: %v", err)
	}
	o.Define(mustWorkflow(t, "everything", everythingRoot(inv)))
	for _, name := range []string{"release", "uncommit", "log-undo"} {
		o.DefineCompensator(name, inv.compensator(name))
	}
	return o
}

func initVars() map[string]any {
	return map[string]any{"items": []any{"aa", "bbb"}}
}

// settle resumes every pending instance until none remain (bounded).
func settle(t *testing.T, o *Orchestrator) []Result {
	t.Helper()
	var last []Result
	for round := 0; round < 4; round++ {
		if len(o.Pending()) == 0 {
			return last
		}
		last = o.ResumeAll(context.Background())
	}
	if pending := o.Pending(); len(pending) != 0 {
		t.Fatalf("instances never settled: %v", pending)
	}
	return last
}

func auditProblems(t *testing.T, o *Orchestrator, id string) (InstanceAudit, []string) {
	t.Helper()
	a, ok := o.Audit(id)
	if !ok {
		t.Fatalf("no audit for %s", id)
	}
	return a, a.Problems()
}

// cleanEverythingRun executes the definition once without faults and
// returns the instance's journal records (whose 1-based positions are
// exactly the global append ordinals, since it is the only instance).
func cleanEverythingRun(t *testing.T) ([]Record, int64) {
	t.Helper()
	inv := newStubInvoker()
	fs := wal.NewMemFS(1)
	o := openOrch(t, fs, inv, Options{})
	res, err := o.Start(context.Background(), "wf-1", "everything", initVars())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if res.Status != StatusCompleted {
		t.Fatalf("clean run status = %s, want completed", res.Status)
	}
	recs := o.lookup("wf-1").snapshotRecords()
	return recs, o.journal.appends
}

// ordinalOf finds the 1-based append ordinal of the first record
// matching the predicate.
func ordinalOf(t *testing.T, recs []Record, desc string, match func(Record) bool) int64 {
	t.Helper()
	for i, r := range recs {
		if match(r) {
			return int64(i + 1)
		}
	}
	t.Fatalf("no record matching %s", desc)
	return 0
}

func TestOrchestratorRunsAllShapes(t *testing.T) {
	inv := newStubInvoker()
	fs := wal.NewMemFS(7)
	o := openOrch(t, fs, inv, Options{})
	res, err := o.Start(context.Background(), "wf-1", "everything", initVars())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if res.Status != StatusCompleted {
		t.Fatalf("status = %s, want completed", res.Status)
	}
	for key, want := range map[string]string{
		"finished": "true", "gotevt": "true", "counter": "2",
		"committed": "true", "len": "[2 3]", "score": "720",
	} {
		if got := fmt.Sprint(res.Vars[key]); got != want {
			t.Errorf("final vars[%s] = %s, want %s", key, got, want)
		}
	}
	a, problems := auditProblems(t, o, "wf-1")
	if len(problems) != 0 {
		t.Fatalf("audit problems on clean run: %v", problems)
	}
	// Path-scoped step keys: branches, iterations and pick continuations
	// occupy distinct, deterministic namespaces.
	for _, key := range []string{
		"/main#0/announce#0",
		"/main#0/fan#0/b1/check#0",
		"/main#0/each#0/i1/measure#0",
		"/main#0/loop#0/t1/iter#0/bump#0",
		"/main#0/pick#0/gotevt#0",
	} {
		if a.Dones[key] != 1 {
			t.Errorf("done count for %s = %d, want 1 (keys: %v)", key, a.Dones[key], sortedKeys(a.Dones))
		}
	}
	if a.Picks["/main#0/pick#0"] != 1 {
		t.Errorf("pick record missing: %v", a.Picks)
	}
	if got := inv.opCount("Commit"); got != 1 {
		t.Errorf("Commit executed %d times, want 1", got)
	}
	if inv.compTotal() != 0 {
		t.Errorf("compensators ran on a completed instance: %v", inv.comps)
	}
}

// TestOrchestratorCrashResumeSweep power-cuts the journal at every
// single append ordinal of the definition, resumes on a fresh
// incarnation, and asserts the completes-or-compensates-exactly-once
// contract at every crash point: audits stay internally consistent,
// non-idempotent operations execute at most once, and idempotent steps
// re-execute at most once per incarnation.
func TestOrchestratorCrashResumeSweep(t *testing.T) {
	_, total := cleanEverythingRun(t)
	if total < 20 {
		t.Fatalf("suspiciously small clean run: %d appends", total)
	}
	for n := int64(1); n <= total; n++ {
		t.Run(fmt.Sprintf("crash-at-%02d", n), func(t *testing.T) {
			inv := newStubInvoker()
			fs := wal.NewMemFS(100 + n)
			o1 := openOrch(t, fs, inv, Options{})
			o1.ArmCrash(n, fs.Crash)
			if _, err := o1.Start(context.Background(), "wf-1", "everything", initVars()); err == nil {
				t.Fatalf("crash armed at append %d never surfaced", n)
			}
			_ = o1.Close()

			o2 := openOrch(t, fs, inv, Options{})
			if n == 1 {
				// The begin record itself was cut: the instance never
				// durably existed and must not resurrect.
				if got := o2.Instances(); len(got) != 0 {
					t.Fatalf("instance resurrected from a cut begin append: %v", got)
				}
				return
			}
			results := settle(t, o2)
			a, problems := auditProblems(t, o2, "wf-1")
			if len(problems) != 0 {
				t.Fatalf("audit problems: %v", problems)
			}
			if c := inv.opCount("Reserve"); c > 1 {
				t.Errorf("non-idempotent Reserve executed %d times", c)
			}
			if c := inv.opCount("Commit"); c > 1 {
				t.Errorf("non-idempotent Commit executed %d times", c)
			}
			for call, c := range inv.callCounts() {
				if c > 2 {
					t.Errorf("call %s executed %d times across 2 incarnations", call, c)
				}
			}
			switch a.Status {
			case StatusCompleted:
				if inv.compTotal() != 0 {
					t.Errorf("completed instance ran compensators: %v", inv.comps)
				}
				for _, r := range results {
					if r.ID == "wf-1" && fmt.Sprint(r.Vars["finished"]) != "true" {
						t.Errorf("completing incarnation lost final vars: %v", r.Vars)
					}
				}
			case StatusCompensated:
				// Compensation itself never crashed in this sweep, so
				// executions must match journaled comp-dones exactly.
				byName := map[string]int{}
				for _, c := range a.Comps {
					byName[c.Name] += a.CompDones[c.ID]
				}
				for name, want := range byName {
					if got := inv.compCount(name); got != want {
						t.Errorf("compensator %s executed %d times, journaled %d", name, got, want)
					}
				}
			default:
				t.Fatalf("instance settled in status %s", a.Status)
			}
		})
	}
}

// TestCompensationCrashSweep forces a terminal activity fault so every
// run takes the compensation path, then power-cuts at every append
// ordinal: compensation must survive failover, each undo running at
// least once but journaled exactly once.
func TestCompensationCrashSweep(t *testing.T) {
	// Probe the failing run's shape once.
	probeInv := newStubInvoker()
	probeInv.fail["Commit"] = "card declined"
	probeFS := wal.NewMemFS(2)
	probe := openOrch(t, probeFS, probeInv, Options{})
	res, err := probe.Start(context.Background(), "wf-1", "everything", initVars())
	if err != nil {
		t.Fatalf("probe run: %v", err)
	}
	if res.Status != StatusCompensated {
		t.Fatalf("probe status = %s, want compensated", res.Status)
	}
	total := probe.journal.appends

	for n := int64(2); n <= total; n++ {
		t.Run(fmt.Sprintf("crash-at-%02d", n), func(t *testing.T) {
			inv := newStubInvoker()
			inv.fail["Commit"] = "card declined"
			fs := wal.NewMemFS(300 + n)
			o1 := openOrch(t, fs, inv, Options{})
			o1.ArmCrash(n, fs.Crash)
			if _, err := o1.Start(context.Background(), "wf-1", "everything", initVars()); err == nil {
				t.Fatalf("crash armed at append %d never surfaced", n)
			}
			_ = o1.Close()

			o2 := openOrch(t, fs, inv, Options{})
			inv.mu.Lock()
			inv.fail["Commit"] = "card declined" // still failing on the new incarnation
			inv.mu.Unlock()
			settle(t, o2)
			a, problems := auditProblems(t, o2, "wf-1")
			if len(problems) != 0 {
				t.Fatalf("audit problems: %v", problems)
			}
			if a.Status != StatusCompensated {
				t.Fatalf("status = %s, want compensated", a.Status)
			}
			// Journal: exactly once. Execution: at least once, and at most
			// twice (a crash between an undo and its comp-done ack legally
			// re-runs that undo — compensators must be idempotent).
			for _, c := range a.Comps {
				if a.CompDones[c.ID] != 1 {
					t.Errorf("compensation %s journaled %d times", c.ID, a.CompDones[c.ID])
				}
				if got := inv.compCount(c.Name); got < 1 || got > 2 {
					t.Errorf("compensator %s executed %d times, want 1..2", c.Name, got)
				}
			}
			if c := inv.opCount("Reserve"); c > 1 {
				t.Errorf("non-idempotent Reserve executed %d times", c)
			}
			// Commit may be legally retried once: its first failure is
			// journaled as a clean step-fault, which resolves the start.
			if c := inv.opCount("Commit"); c > 2 {
				t.Errorf("Commit executed %d times, want <= 2", c)
			}
		})
	}
}

// TestResumeSkipsJournaledSteps crashes between the two ForEach
// iterations and checks that resume replays — not re-executes — every
// step whose done record was acked.
func TestResumeSkipsJournaledSteps(t *testing.T) {
	recs, _ := cleanEverythingRun(t)
	n := ordinalOf(t, recs, "second measure start", func(r Record) bool {
		return r.Kind == recStart && strings.Contains(r.Key, "/i1/measure")
	})
	inv := newStubInvoker()
	fs := wal.NewMemFS(11)
	o1 := openOrch(t, fs, inv, Options{})
	o1.ArmCrash(n, fs.Crash)
	if _, err := o1.Start(context.Background(), "wf-1", "everything", initVars()); err == nil {
		t.Fatal("armed crash never surfaced")
	}
	_ = o1.Close()

	o2 := openOrch(t, fs, inv, Options{})
	settle(t, o2)
	a, problems := auditProblems(t, o2, "wf-1")
	if len(problems) != 0 {
		t.Fatalf("audit problems: %v", problems)
	}
	if a.Status != StatusCompleted {
		t.Fatalf("status = %s, want completed", a.Status)
	}
	// Everything acked before the crash ran exactly once in total.
	for op, want := range map[string]int{"Reserve": 1, "Score": 1, "Check": 1, "Commit": 1} {
		if got := inv.opCount(op); got != want {
			t.Errorf("%s executed %d times, want %d", op, got, want)
		}
	}
	// Iteration 0 was journaled (executed pre-crash only); iteration 1
	// never started before the cut and runs on the new incarnation.
	calls := inv.callCounts()
	if got := calls[`Measure|{"item":"aa"}`]; got != 1 {
		t.Errorf("Measure(aa) executed %d times, want 1", got)
	}
	if got := calls[`Measure|{"item":"bbb"}`]; got != 1 {
		t.Errorf("Measure(bbb) executed %d times, want 1", got)
	}
}

// TestNonIdempotentInFlightCompensates crashes with the final
// non-idempotent Invoke in flight (start acked, completion cut): the
// resumed incarnation must refuse to re-issue it and drive the saga
// into compensation, undoing every registered step exactly once.
func TestNonIdempotentInFlightCompensates(t *testing.T) {
	recs, _ := cleanEverythingRun(t)
	n := ordinalOf(t, recs, "commit done", func(r Record) bool {
		return r.Kind == recDone && strings.Contains(r.Key, "/commit")
	})
	inv := newStubInvoker()
	fs := wal.NewMemFS(13)
	o1 := openOrch(t, fs, inv, Options{})
	o1.ArmCrash(n, fs.Crash)
	if _, err := o1.Start(context.Background(), "wf-1", "everything", initVars()); err == nil {
		t.Fatal("armed crash never surfaced")
	}
	_ = o1.Close()

	o2 := openOrch(t, fs, inv, Options{})
	settle(t, o2)
	a, problems := auditProblems(t, o2, "wf-1")
	if len(problems) != 0 {
		t.Fatalf("audit problems: %v", problems)
	}
	if a.Status != StatusCompensated {
		t.Fatalf("status = %s, want compensated", a.Status)
	}
	if !strings.Contains(a.Err, "non-idempotent") {
		t.Errorf("committed fault %q does not name the in-flight refusal", a.Err)
	}
	if got := inv.opCount("Commit"); got != 1 {
		t.Errorf("in-flight Commit executed %d times, want exactly 1 (never re-issued)", got)
	}
	// All three compensations registered before the cut ran exactly once:
	// the declared undos of both invokes plus the Task's Compensate call.
	for _, name := range []string{"release", "uncommit", "log-undo"} {
		if got := inv.compCount(name); got != 1 {
			t.Errorf("compensator %s executed %d times, want 1", name, got)
		}
	}
}

// TestStepFaultAllowsNonIdempotentReissue: a clean call failure is
// journaled as a step-fault, which resolves the start — so when the
// fault-commit append is also cut by a crash, the resumed incarnation
// may legally re-issue even a non-idempotent invoke.
func TestStepFaultAllowsNonIdempotentReissue(t *testing.T) {
	// Probe: first Commit attempt fails cleanly; find the fault append.
	probeInv := newStubInvoker()
	probeInv.fail["Commit"] = "transient outage"
	probeFS := wal.NewMemFS(3)
	probe := openOrch(t, probeFS, probeInv, Options{})
	if _, err := probe.Start(context.Background(), "wf-1", "everything", initVars()); err != nil {
		t.Fatalf("probe: %v", err)
	}
	n := ordinalOf(t, probe.lookup("wf-1").snapshotRecords(), "fault record", func(r Record) bool {
		return r.Kind == recFault
	})

	inv := newStubInvoker()
	inv.failOnce["Commit"] = "transient outage"
	fs := wal.NewMemFS(17)
	o1 := openOrch(t, fs, inv, Options{})
	o1.ArmCrash(n, fs.Crash)
	if _, err := o1.Start(context.Background(), "wf-1", "everything", initVars()); err == nil {
		t.Fatal("armed crash never surfaced")
	}
	_ = o1.Close()

	o2 := openOrch(t, fs, inv, Options{})
	settle(t, o2)
	a, problems := auditProblems(t, o2, "wf-1")
	if len(problems) != 0 {
		t.Fatalf("audit problems: %v", problems)
	}
	if a.Status != StatusCompleted {
		t.Fatalf("status = %s, want completed (transient fault retried)", a.Status)
	}
	if got := inv.opCount("Commit"); got != 2 {
		t.Errorf("Commit executed %d times, want 2 (failed once, re-issued once)", got)
	}
	if inv.compTotal() != 0 {
		t.Errorf("compensators ran on a completed instance: %v", inv.comps)
	}
}

// TestScopeAbsorbsInvokeFault: a Scope fault handler keeps the instance
// on the completed path, and the audit accepts the unfinished start
// because its failure was journaled as a clean step-fault.
func TestScopeAbsorbsInvokeFault(t *testing.T) {
	inv := newStubInvoker()
	inv.fail["Flaky"] = "always down"
	root := &Sequence{Label: "main", Steps: []Activity{
		&Scope{Label: "guard",
			Body: &Invoke{Label: "flaky", Service: "Ext", Operation: "Flaky", Invoker: inv},
			OnFault: &Assign{Label: "fallback", Var: "fallback",
				Expr: func(*Vars) any { return true }}},
		&Task{Label: "finish", Fn: func(_ context.Context, vars *Vars) error {
			vars.Set("finished", true)
			return nil
		}},
	}}
	fs := wal.NewMemFS(19)
	o, err := OpenOrchestrator(fs, Options{Deterministic: true})
	if err != nil {
		t.Fatalf("OpenOrchestrator: %v", err)
	}
	o.Define(mustWorkflow(t, "guarded", root))
	res, err := o.Start(context.Background(), "wf-1", "guarded", nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if res.Status != StatusCompleted {
		t.Fatalf("status = %s, want completed", res.Status)
	}
	if fmt.Sprint(res.Vars["fallback"]) != "true" {
		t.Errorf("fault handler never ran: %v", res.Vars)
	}
	a, problems := auditProblems(t, o, "wf-1")
	if len(problems) != 0 {
		t.Fatalf("audit problems: %v", problems)
	}
	if a.StepFaults["/main#0/guard#0/flaky#0"] != 1 {
		t.Errorf("clean failure not journaled as step-fault: %v", a.StepFaults)
	}
}

// TestPickExpiryReplays: an unarmed deterministic Pick expires
// immediately; after a crash past the pick record the decision is
// replayed (not re-raced) and the expiry continuation resumes.
func TestPickExpiryReplays(t *testing.T) {
	build := func(inv Invoker) Activity {
		return &Sequence{Label: "main", Steps: []Activity{
			&Pick{Label: "wait", Events: []PickBranch{{
				Wait: func(context.Context) <-chan any { return make(chan any) }, // never fires
				Then: &Assign{Label: "evt", Var: "evt", Expr: func(*Vars) any { return true }},
			}},
				OnExpire: &Sequence{Label: "expiry", Steps: []Activity{
					&Assign{Label: "expired", Var: "expired", Expr: func(*Vars) any { return true }},
					&Invoke{Label: "after", Service: "Ext", Operation: "After", Invoker: inv, Idempotent: true},
				}}},
			&Task{Label: "finish", Fn: func(_ context.Context, vars *Vars) error {
				vars.Set("finished", true)
				return nil
			}},
		}}
	}
	// Probe for the ordinal of the post-expiry invoke's done record.
	probeInv := newStubInvoker()
	probeFS := wal.NewMemFS(4)
	probe, err := OpenOrchestrator(probeFS, Options{Deterministic: true})
	if err != nil {
		t.Fatalf("OpenOrchestrator: %v", err)
	}
	probe.Define(mustWorkflow(t, "picky", build(probeInv)))
	if _, err := probe.Start(context.Background(), "wf-1", "picky", nil); err != nil {
		t.Fatalf("probe: %v", err)
	}
	n := ordinalOf(t, probe.lookup("wf-1").snapshotRecords(), "after done", func(r Record) bool {
		return r.Kind == recDone && strings.Contains(r.Key, "/after")
	})

	inv := newStubInvoker()
	fs := wal.NewMemFS(23)
	o1, err := OpenOrchestrator(fs, Options{Deterministic: true})
	if err != nil {
		t.Fatalf("OpenOrchestrator: %v", err)
	}
	o1.Define(mustWorkflow(t, "picky", build(inv)))
	o1.ArmCrash(n, fs.Crash)
	if _, err := o1.Start(context.Background(), "wf-1", "picky", nil); err == nil {
		t.Fatal("armed crash never surfaced")
	}
	_ = o1.Close()

	o2, err := OpenOrchestrator(fs, Options{Deterministic: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	o2.Define(mustWorkflow(t, "picky", build(inv)))
	res, err := o2.Resume(context.Background(), "wf-1")
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if res.Status != StatusCompleted {
		t.Fatalf("status = %s, want completed", res.Status)
	}
	if fmt.Sprint(res.Vars["expired"]) != "true" {
		t.Errorf("expiry continuation lost its journaled effect: %v", res.Vars)
	}
	a, problems := auditProblems(t, o2, "wf-1")
	if len(problems) != 0 {
		t.Fatalf("audit problems: %v", problems)
	}
	if a.Picks["/main#0/wait#0"] != 1 {
		t.Errorf("pick decided %d times, want exactly 1 (replayed, not re-raced)", a.Picks["/main#0/wait#0"])
	}
	// The idempotent invoke was in flight at the cut and re-issues.
	if got := inv.opCount("After"); got != 2 {
		t.Errorf("After executed %d times, want 2", got)
	}
}

// TestSnapshotCompaction proves instance journals survive WAL
// compaction: after enough appends fold into a snapshot and the tail
// segments are pruned, a crash-reopen still recovers every instance's
// full, auditable history.
func TestSnapshotCompaction(t *testing.T) {
	inv := newStubInvoker()
	fs := wal.NewMemFS(29)
	o1 := openOrch(t, fs, inv, Options{SnapshotEvery: 10, WAL: wal.Options{SegmentBytes: 2048}})
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("wf-%d", i)
		res, err := o1.Start(context.Background(), id, "everything", initVars())
		if err != nil {
			t.Fatalf("Start %s: %v", id, err)
		}
		if res.Status != StatusCompleted {
			t.Fatalf("%s status = %s", id, res.Status)
		}
	}
	fs.Crash()
	_ = o1.Close()

	o2 := openOrch(t, fs, inv, Options{SnapshotEvery: 10, WAL: wal.Options{SegmentBytes: 2048}})
	if got := len(o2.Instances()); got != 3 {
		t.Fatalf("recovered %d instances, want 3 (recovery: %s)", got, o2.Recovery())
	}
	for id, a := range o2.Audits() {
		if problems := a.Problems(); len(problems) != 0 {
			t.Errorf("%s audit problems after compaction: %v", id, problems)
		}
		if a.Status != StatusCompleted {
			t.Errorf("%s status = %s, want completed", id, a.Status)
		}
		if len(a.Dones) == 0 {
			t.Errorf("%s lost its step history to compaction", id)
		}
	}
	// The compacted journal still accepts new instances.
	res, err := o2.Start(context.Background(), "wf-4", "everything", initVars())
	if err != nil {
		t.Fatalf("Start after compaction: %v", err)
	}
	if res.Status != StatusCompleted {
		t.Fatalf("wf-4 status = %s", res.Status)
	}
}

func TestOrchestratorAPIErrors(t *testing.T) {
	inv := newStubInvoker()
	fs := wal.NewMemFS(31)
	o := openOrch(t, fs, inv, Options{})
	ctx := context.Background()
	if _, err := o.Start(ctx, "", "everything", nil); err == nil {
		t.Error("empty instance id accepted")
	}
	if _, err := o.Start(ctx, "wf-1", "no-such-def", nil); err == nil {
		t.Error("unknown definition accepted")
	}
	if _, err := o.Start(ctx, "wf-1", "everything", initVars()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := o.Start(ctx, "wf-1", "everything", initVars()); err == nil {
		t.Error("duplicate instance id accepted")
	}
	if _, err := o.Resume(ctx, "ghost"); err == nil {
		t.Error("resume of unknown instance accepted")
	}
	// Resuming a terminal instance is a no-op returning its result.
	res, err := o.Resume(ctx, "wf-1")
	if err != nil {
		t.Fatalf("terminal resume: %v", err)
	}
	if res.Status != StatusCompleted {
		t.Errorf("terminal resume status = %s", res.Status)
	}
	if got := inv.opCount("Commit"); got != 1 {
		t.Errorf("terminal resume re-executed work: Commit ran %d times", got)
	}
}

// TestJournalMutations proves the audit can fail: each mutation breaks
// one exactly-once rule and the checker must trip, while the clean twin
// stays silent. A checker that cannot fail checks nothing.
func TestJournalMutations(t *testing.T) {
	t.Run("drop-append", func(t *testing.T) {
		run := func(mutation string) []string {
			inv := newStubInvoker()
			fs := wal.NewMemFS(37)
			o1 := openOrch(t, fs, inv, Options{Mutation: mutation})
			res, err := o1.Start(context.Background(), "wf-1", "everything", initVars())
			if err != nil {
				t.Fatalf("Start: %v", err)
			}
			if res.Status != StatusCompleted {
				t.Fatalf("status = %s", res.Status)
			}
			// The lie only shows after a crash: in-memory state says the
			// dropped append was acked.
			fs.Crash()
			_ = o1.Close()
			o2 := openOrch(t, fs, inv, Options{})
			_, problems := auditProblems(t, o2, "wf-1")
			return problems
		}
		if problems := run(""); len(problems) != 0 {
			t.Fatalf("clean twin tripped: %v", problems)
		}
		problems := run(MutationDropAppend)
		if len(problems) == 0 {
			t.Fatal("dropped done append went undetected")
		}
		if !strings.Contains(strings.Join(problems, "\n"), "unresolved") {
			t.Errorf("unexpected problem set: %v", problems)
		}
	})

	t.Run("double-comp", func(t *testing.T) {
		run := func(mutation string) []string {
			inv := newStubInvoker()
			inv.fail["Commit"] = "card declined"
			fs := wal.NewMemFS(41)
			o := openOrch(t, fs, inv, Options{Mutation: mutation})
			res, err := o.Start(context.Background(), "wf-1", "everything", initVars())
			if err != nil {
				t.Fatalf("Start: %v", err)
			}
			if res.Status != StatusCompensated {
				t.Fatalf("status = %s", res.Status)
			}
			_, problems := auditProblems(t, o, "wf-1")
			return problems
		}
		if problems := run(""); len(problems) != 0 {
			t.Fatalf("clean twin tripped: %v", problems)
		}
		problems := run(MutationDoubleCompensate)
		if len(problems) == 0 {
			t.Fatal("double compensation went undetected")
		}
		if !strings.Contains(strings.Join(problems, "\n"), "applied 2 times") {
			t.Errorf("unexpected problem set: %v", problems)
		}
	})

	t.Run("resume-nonidem", func(t *testing.T) {
		recs, _ := cleanEverythingRun(t)
		n := ordinalOf(t, recs, "commit done", func(r Record) bool {
			return r.Kind == recDone && strings.Contains(r.Key, "/commit")
		})
		run := func(mutation string) (*stubInvoker, []string) {
			inv := newStubInvoker()
			fs := wal.NewMemFS(43)
			o1 := openOrch(t, fs, inv, Options{})
			o1.ArmCrash(n, fs.Crash)
			if _, err := o1.Start(context.Background(), "wf-1", "everything", initVars()); err == nil {
				t.Fatal("armed crash never surfaced")
			}
			_ = o1.Close()
			o2 := openOrch(t, fs, inv, Options{Mutation: mutation})
			settle(t, o2)
			_, problems := auditProblems(t, o2, "wf-1")
			return inv, problems
		}
		cleanInv, problems := run("")
		if len(problems) != 0 {
			t.Fatalf("clean twin tripped: %v", problems)
		}
		if got := cleanInv.opCount("Commit"); got != 1 {
			t.Fatalf("clean twin executed Commit %d times", got)
		}
		inv, problems := run(MutationResumeNonIdempotent)
		if len(problems) == 0 {
			t.Fatal("non-idempotent re-issue went undetected")
		}
		if !strings.Contains(strings.Join(problems, "\n"), "issued 2 times") {
			t.Errorf("unexpected problem set: %v", problems)
		}
		// The mutation really duplicated the side effect.
		if got := inv.opCount("Commit"); got != 2 {
			t.Errorf("mutated resume executed Commit %d times, want 2", got)
		}
	})
}
