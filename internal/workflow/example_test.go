package workflow_test

import (
	"context"
	"fmt"

	"soc/internal/workflow"
)

// Example composes a small orchestration: an assignment, a conditional,
// and a loop over a shared variable scope.
func Example() {
	wf, _ := workflow.New("countdown", &workflow.Sequence{Label: "main", Steps: []workflow.Activity{
		&workflow.Assign{Label: "init", Var: "n", Expr: func(*workflow.Vars) any { return int64(3) }},
		&workflow.While{
			Label: "loop",
			Cond:  func(v *workflow.Vars) bool { return v.GetInt("n") > 0 },
			Body: &workflow.Assign{Label: "dec", Var: "n", Expr: func(v *workflow.Vars) any {
				return v.GetInt("n") - 1
			}},
		},
		&workflow.If{
			Label: "check",
			Cond:  func(v *workflow.Vars) bool { return v.GetInt("n") == 0 },
			Then:  &workflow.Assign{Label: "done", Var: "msg", Expr: func(*workflow.Vars) any { return "liftoff" }},
		},
	}})
	out, _, err := wf.Run(context.Background(), nil)
	fmt.Println(out["msg"], err)
	// Output: liftoff <nil>
}

// ExampleForEach fans a computation out over a list with isolated
// parallel scopes and collects the results in order.
func ExampleForEach() {
	wf, _ := workflow.New("squares", &workflow.ForEach{
		Label: "fan", Items: "nums", ItemVar: "n", Parallel: true, CollectVar: "sq",
		Body: &workflow.Assign{Label: "square", Var: "sq", Expr: func(v *workflow.Vars) any {
			return v.GetInt("n") * v.GetInt("n")
		}},
	})
	out, _, _ := wf.Run(context.Background(), map[string]any{
		"nums": []any{int64(2), int64(3), int64(4)},
	})
	fmt.Println(out["sq"])
	// Output: [4 9 16]
}
