package workflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestForEachSequential(t *testing.T) {
	wf, err := New("sum", &Sequence{Label: "main", Steps: []Activity{
		&Assign{Label: "init", Var: "total", Expr: func(*Vars) any { return int64(0) }},
		&ForEach{
			Label: "loop", Items: "nums", ItemVar: "n", IndexVar: "i",
			Body: &Assign{Label: "acc", Var: "total", Expr: func(v *Vars) any {
				return v.GetInt("total") + v.GetInt("n")
			}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := wf.Run(context.Background(), map[string]any{
		"nums": []any{int64(1), int64(2), int64(3), int64(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out["total"] != int64(10) {
		t.Errorf("total = %v", out["total"])
	}
	// IndexVar left at the final index.
	if out["i"] != int64(3) {
		t.Errorf("i = %v", out["i"])
	}
}

func TestForEachParallelCollects(t *testing.T) {
	wf, err := New("squares", &ForEach{
		Label: "fan", Items: "nums", ItemVar: "n", Parallel: true, CollectVar: "sq",
		Body: &Assign{Label: "square", Var: "sq", Expr: func(v *Vars) any {
			return v.GetInt("n") * v.GetInt("n")
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := wf.Run(context.Background(), map[string]any{
		"nums": []any{int64(1), int64(2), int64(3), int64(4), int64(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out["sq"].([]any)
	if !ok || len(got) != 5 {
		t.Fatalf("sq = %v", out["sq"])
	}
	// Index order preserved despite parallel execution.
	for i, v := range got {
		want := int64((i + 1) * (i + 1))
		if v != want {
			t.Errorf("sq[%d] = %v, want %d", i, v, want)
		}
	}
}

func TestForEachParallelIsolation(t *testing.T) {
	// Parallel iterations write the same variable name without racing:
	// each has its own scope.
	wf, _ := New("iso", &ForEach{
		Label: "fan", Items: "items", ItemVar: "x", Parallel: true, CollectVar: "out",
		Body: &Sequence{Label: "body", Steps: []Activity{
			&Assign{Label: "tmp", Var: "scratch", Expr: func(v *Vars) any { return v.GetString("x") + "!" }},
			&Assign{Label: "emit", Var: "out", Expr: func(v *Vars) any { return v.GetString("scratch") }},
		}},
	})
	items := make([]any, 32)
	for i := range items {
		items[i] = fmt.Sprintf("item%d", i)
	}
	out, _, err := wf.Run(context.Background(), map[string]any{"items": items})
	if err != nil {
		t.Fatal(err)
	}
	results := out["out"].([]any)
	for i, r := range results {
		if r != fmt.Sprintf("item%d!", i) {
			t.Errorf("out[%d] = %v", i, r)
		}
	}
	// The parent scope's scratch variable is untouched.
	if _, ok := out["scratch"]; ok {
		t.Error("child scope leaked into parent")
	}
}

func TestForEachParallelFaultCancels(t *testing.T) {
	wf, _ := New("fault", &ForEach{
		Label: "fan", Items: "items", ItemVar: "x", Parallel: true,
		Body: &Task{Label: "maybe", Fn: func(_ context.Context, v *Vars) error {
			if v.GetInt("x") == 2 {
				return errors.New("item 2 exploded")
			}
			return nil
		}},
	})
	_, _, err := wf.Run(context.Background(), map[string]any{
		"items": []any{int64(0), int64(1), int64(2), int64(3)},
	})
	if err == nil || !strings.Contains(err.Error(), "item 2 exploded") {
		t.Errorf("err = %v", err)
	}
}

func TestForEachValidation(t *testing.T) {
	body := &Task{Label: "b", Fn: func(context.Context, *Vars) error { return nil }}
	bad := []*ForEach{
		{Items: "x", ItemVar: "i", Body: body},                              // no label
		{Label: "f", ItemVar: "i", Body: body},                              // no items
		{Label: "f", Items: "x", Body: body},                                // no item var
		{Label: "f", Items: "x", ItemVar: "i"},                              // no body
		{Label: "f", Items: "x", ItemVar: "i", Body: body, CollectVar: "c"}, // collect w/o parallel
	}
	for i, fe := range bad {
		if _, err := New("w", fe); !errors.Is(err, ErrDefinition) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestForEachRuntimeTypeErrors(t *testing.T) {
	wf, _ := New("w", &ForEach{
		Label: "f", Items: "items", ItemVar: "x",
		Body: &Task{Label: "b", Fn: func(context.Context, *Vars) error { return nil }},
	})
	if _, _, err := wf.Run(context.Background(), nil); err == nil {
		t.Error("missing items variable accepted")
	}
	if _, _, err := wf.Run(context.Background(), map[string]any{"items": "not a slice"}); err == nil {
		t.Error("non-slice items accepted")
	}
	// Empty list is a no-op.
	if _, _, err := wf.Run(context.Background(), map[string]any{"items": []any{}}); err != nil {
		t.Errorf("empty list: %v", err)
	}
}
