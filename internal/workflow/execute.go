package workflow

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// journalRun is the per-(instance, incarnation) execution context of a
// journaled run: deterministic step keys, the replay snapshot of prior
// incarnations' records, and the append path back to the orchestrator.
type journalRun struct {
	o    *Orchestrator
	inst *Instance
	seq  bool

	mu       sync.Mutex
	counters map[string]int

	prior priorState
}

// priorState is the read-only replay index built from the records acked
// before this incarnation's run began. Records appended during the run
// are not in it — within one run every step key is visited at most
// once, so the run never needs to replay its own appends.
type priorState struct {
	dones      map[string]Record
	starts     map[string]int
	stepFaults map[string]int
	picks      map[string]Record
}

func newJournalRun(o *Orchestrator, inst *Instance) *journalRun {
	jr := &journalRun{
		o:        o,
		inst:     inst,
		seq:      o.opts.Deterministic,
		counters: map[string]int{},
		prior: priorState{
			dones:      map[string]Record{},
			starts:     map[string]int{},
			stepFaults: map[string]int{},
			picks:      map[string]Record{},
		},
	}
	for _, r := range inst.snapshotRecords() {
		switch r.Kind {
		case recDone:
			jr.prior.dones[r.Key] = r
		case recStart:
			jr.prior.starts[r.Key]++
		case recStepFault:
			jr.prior.stepFaults[r.Key]++
		case recPick:
			jr.prior.picks[r.Key] = r
		}
	}
	return jr
}

// nextKey allocates the deterministic step key for the n-th occurrence
// of name under path. Composites scope their children's paths (branch,
// iteration), so re-executing the same control flow over the same
// journaled effects allocates the same keys — the property replay
// matching rests on.
func (jr *journalRun) nextKey(path, name string) string {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	ck := path + "/" + name
	n := jr.counters[ck]
	jr.counters[ck] = n + 1
	return fmt.Sprintf("%s#%d", ck, n)
}

func (jr *journalRun) append(r Record) error {
	r.Inst = jr.inst.id
	return jr.o.append(jr.inst, r)
}

// exec routes one activity through the journal: composites re-execute
// (they are pure control flow over journaled effects), leaves replay
// from their done record or execute-then-journal.
func (jr *journalRun) exec(ctx context.Context, a Activity, st *State) error {
	switch act := a.(type) {
	case *Pick:
		return jr.execPick(ctx, act, st)
	case *Invoke:
		return jr.execInvoke(ctx, act, st)
	}
	if isComposite(a) {
		key := jr.nextKey(st.path, a.Name())
		return plainExec(ctx, a, st.scoped(key))
	}
	return jr.execLeaf(ctx, a, st)
}

// isComposite reports whether a is pure control flow that should be
// re-executed on replay rather than journaled as a step. Unknown
// user-defined activities without children are treated as leaves.
func isComposite(a Activity) bool {
	switch a.(type) {
	case *Sequence, *Parallel, *If, *While, *ForEach, *Scope:
		return true
	}
	_, ok := a.(children)
	return ok
}

// execLeaf runs a leaf step with append-before-effect: the step
// executes against a buffered overlay of the scope, its resolved writes
// are journaled, and only an acked done record flushes them into the
// instance scope. Replayed leaves skip execution and apply the
// journaled effects.
func (jr *journalRun) execLeaf(ctx context.Context, a Activity, st *State) error {
	key := jr.nextKey(st.path, a.Name())
	if rec, ok := jr.prior.dones[key]; ok {
		applyEffects(st.Vars, rec.Effects)
		st.trace.add(TraceEntry{Activity: a.Name(), Replayed: true})
		return nil
	}
	overlay := newOverlay(st.Vars)
	cc := &compCollector{key: key}
	if err := plainExec(withCompCollector(ctx, cc), a, st.withVars(overlay)); err != nil {
		return err
	}
	rec := Record{Kind: recDone, Key: key, Effects: overlay.effects(), Comps: cc.comps}
	if err := jr.append(rec); err != nil {
		return err
	}
	overlay.flush()
	return nil
}

// execInvoke adds the in-flight protocol around a service invocation:
// a start record (carrying idempotence and the pessimistic
// compensation) is acked before the call goes out, so a crash mid-call
// leaves evidence. On resume, a start without a done re-issues only
// when the operation is idempotent; otherwise the instance faults —
// the side effect may or may not have happened and must be compensated,
// never duplicated.
func (jr *journalRun) execInvoke(ctx context.Context, inv *Invoke, st *State) error {
	key := jr.nextKey(st.path, inv.Label)
	if rec, ok := jr.prior.dones[key]; ok {
		applyEffects(st.Vars, rec.Effects)
		st.trace.add(TraceEntry{Activity: inv.Label, Replayed: true})
		return nil
	}
	// A prior start is in flight only if it never resolved: no done (we
	// would have replayed above) and no clean-failure record. In-flight
	// means the side effect may or may not have happened — re-issuing is
	// safe only for idempotent operations.
	if jr.prior.starts[key] > jr.prior.stepFaults[key] && !inv.Idempotent &&
		jr.o.opts.Mutation != MutationResumeNonIdempotent {
		return fmt.Errorf("%w: %s (%s.%s)", ErrNonIdempotentResume, key, inv.Service, inv.Operation)
	}
	start := Record{
		Kind: recStart, Key: key,
		Service: inv.Service, Op: inv.Operation, Idempotent: inv.Idempotent,
		Comps: inv.resolveCompensation(key, st.Vars),
	}
	if err := jr.append(start); err != nil {
		return err
	}
	overlay := newOverlay(st.Vars)
	if err := plainExec(ctx, inv, st.withVars(overlay)); err != nil {
		// A clean call failure resolves the start: the side effect did not
		// happen, so journal that fact (best-effort — if the journal is
		// down the start simply stays in flight, which is safe) and let
		// the fault propagate.
		if !isJournalErr(err) && ctx.Err() == nil {
			if aerr := jr.append(Record{Kind: recStepFault, Key: key, Err: err.Error()}); aerr != nil {
				return err
			}
		}
		return err
	}
	done := Record{Kind: recDone, Key: key, Service: inv.Service, Op: inv.Operation, Effects: overlay.effects()}
	if err := jr.append(done); err != nil {
		return err
	}
	overlay.flush()
	return nil
}

// execPick journals the branch decision: the winning branch (or
// expiry) and its payload are acked before the continuation runs, so
// replay re-runs the same continuation without re-racing the events.
func (jr *journalRun) execPick(ctx context.Context, p *Pick, st *State) error {
	key := jr.nextKey(st.path, p.Label)
	cst := st.scoped(key)
	if rec, ok := jr.prior.picks[key]; ok {
		return jr.runPickBranch(ctx, p, cst, rec)
	}
	idx, payload, expired, err := jr.selectPick(ctx, p)
	if err != nil {
		return err
	}
	rec := Record{Kind: recPick, Key: key, Branch: idx, Expired: expired, Payload: payload}
	if err := jr.append(rec); err != nil {
		return err
	}
	return jr.runPickBranch(ctx, p, cst, rec)
}

func (jr *journalRun) runPickBranch(ctx context.Context, p *Pick, st *State, rec Record) error {
	if rec.Expired {
		if p.OnExpire != nil {
			return exec(ctx, p.OnExpire, st)
		}
		return fmt.Errorf("pick %q timed out after %v", p.Label, p.Timeout)
	}
	if rec.Branch < 0 || rec.Branch >= len(p.Events) {
		return fmt.Errorf("pick %q: journaled branch %d out of range (definition drift?)", p.Label, rec.Branch)
	}
	br := p.Events[rec.Branch]
	if br.Var != "" {
		st.Vars.Set(br.Var, rec.Payload)
	}
	return exec(ctx, br.Then, st)
}

// selectPick resolves which branch wins. Deterministic mode polls each
// branch's event channel once, in definition order, and treats an
// unarmed pick as expired immediately — virtual-time-safe and a pure
// function of the event sources. Concurrent mode races the events
// exactly like the plain interpreter.
func (jr *journalRun) selectPick(ctx context.Context, p *Pick) (idx int, payload any, expired bool, err error) {
	if jr.seq {
		for i, e := range p.Events {
			select {
			case v, ok := <-e.Wait(ctx):
				if ok {
					return i, v, false, nil
				}
			default:
			}
		}
		return 0, nil, true, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type fired struct {
		idx     int
		payload any
	}
	ch := make(chan fired, len(p.Events))
	for i, e := range p.Events {
		go func(i int, e PickBranch) {
			select {
			case v, ok := <-e.Wait(ctx):
				if ok {
					ch <- fired{i, v}
				}
			case <-ctx.Done():
			}
		}(i, e)
	}
	var timeout <-chan time.Time
	if p.Timeout > 0 {
		timer := time.NewTimer(p.Timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case f := <-ch:
		return f.idx, f.payload, false, nil
	case <-timeout:
		return 0, nil, true, nil
	case <-ctx.Done():
		return 0, nil, false, ctx.Err()
	}
}

// isJournalErr distinguishes infrastructure failures (journal down,
// cancellation) from clean activity faults.
func isJournalErr(err error) bool {
	return errors.Is(err, ErrJournal) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// applyEffects writes a done record's journaled effects into the scope.
// Values went through a JSON round trip on recovery (ints come back as
// float64); GetInt and friends normalize on read.
func applyEffects(vars *Vars, effects map[string]any) {
	keys := make([]string, 0, len(effects))
	for k := range effects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vars.Set(k, effects[k])
	}
}

// newOverlay returns a buffered view of parent: reads fall through,
// writes stay local until flush. The local writes are the step's
// journaled effects.
func newOverlay(parent *Vars) *Vars {
	return &Vars{m: map[string]any{}, parent: parent}
}

// effects returns the overlay's JSON-serializable writes. Values that
// cannot be marshaled (closure lists from RegisterCompensation, live
// channels) are skipped: they are incarnation-local by nature and are
// documented not to survive failover.
func (v *Vars) effects() map[string]any {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]any, len(v.m))
	for k, val := range v.m {
		if _, err := json.Marshal(val); err != nil {
			continue
		}
		out[k] = val
	}
	return out
}

// flush applies the overlay's writes to its parent scope — called only
// after the journal acked the step's done record.
func (v *Vars) flush() {
	// Snapshot before writing through: the parent is a distinct Vars,
	// but taking its lock while holding the overlay's would order the
	// two instances — release first, then apply.
	v.mu.RLock()
	snap := make(map[string]any, len(v.m))
	for k, val := range v.m {
		snap[k] = val
	}
	v.mu.RUnlock()
	for k, val := range snap {
		v.parent.Set(k, val)
	}
}

// compCollector gathers durable compensations registered by leaf code
// during its execution; they ride on the step's done record.
type compCollector struct {
	mu    sync.Mutex
	key   string
	comps []Compensation
}

type compCollectorKey struct{}

func withCompCollector(ctx context.Context, cc *compCollector) context.Context {
	return context.WithValue(ctx, compCollectorKey{}, cc)
}

// Compensate registers a durable named compensation from inside a Task:
// the name must be bound to a Compensator on every incarnation, args
// must be JSON-serializable, and the registration becomes durable with
// the enclosing step's done record. Outside a journaled run it reports
// an error so misuse is loud.
func Compensate(ctx context.Context, name string, args map[string]any) error {
	cc, ok := ctx.Value(compCollectorKey{}).(*compCollector)
	if !ok {
		return fmt.Errorf("workflow: Compensate called outside a journaled run")
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	id := fmt.Sprintf("%s|%s#%d", cc.key, name, len(cc.comps))
	cc.comps = append(cc.comps, Compensation{ID: id, Name: name, Args: args})
	return nil
}
