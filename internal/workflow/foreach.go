package workflow

import (
	"context"
	"fmt"
)

// ForEach runs Body once per element of the variable named Items (which
// must hold a []any), binding the element to ItemVar and the index to
// IndexVar (when set) before each iteration — BPEL's <forEach>.
//
// Sequential mode shares the workflow scope. Parallel mode gives every
// iteration an isolated child scope seeded from a snapshot of the parent
// (so branches cannot race); when CollectVar is set, each iteration's
// value of that variable is gathered, in index order, into the parent
// variable of the same name as a []any.
type ForEach struct {
	Label      string
	Items      string
	ItemVar    string
	IndexVar   string
	Parallel   bool
	CollectVar string
	Body       Activity
}

// Name implements Activity.
func (f *ForEach) Name() string { return f.Label }

// Children implements the validation walker.
func (f *ForEach) Children() []Activity { return []Activity{f.Body} }

// Validate checks the definition.
func (f *ForEach) Validate() error {
	if f.Label == "" || f.Items == "" || f.ItemVar == "" || f.Body == nil {
		return fmt.Errorf("%w: foreach needs label, items, itemVar and body", ErrDefinition)
	}
	if f.CollectVar != "" && !f.Parallel {
		return fmt.Errorf("%w: foreach %q: CollectVar requires Parallel", ErrDefinition, f.Label)
	}
	return nil
}

// Execute implements Activity.
func (f *ForEach) Execute(ctx context.Context, st *State) error {
	raw, ok := st.Vars.Get(f.Items)
	if !ok {
		return fmt.Errorf("foreach %q: variable %q not set", f.Label, f.Items)
	}
	items, ok := raw.([]any)
	if !ok {
		return fmt.Errorf("foreach %q: variable %q is %T, want []any", f.Label, f.Items, raw)
	}
	if !f.Parallel {
		for i, item := range items {
			st.Vars.Set(f.ItemVar, item)
			if f.IndexVar != "" {
				st.Vars.Set(f.IndexVar, int64(i))
			}
			// Per-iteration key namespace: replay aligns by index, so a
			// resumed loop skips exactly the iterations that journaled.
			if err := exec(ctx, f.Body, st.branchScope("i", i)); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	snapshot := st.Vars.Snapshot()
	childVars := make([]*Vars, len(items))
	for i, item := range items {
		vars := NewVars(snapshot)
		vars.Set(f.ItemVar, item)
		if f.IndexVar != "" {
			vars.Set(f.IndexVar, int64(i))
		}
		childVars[i] = vars
	}
	// Deterministic journaled mode keeps the isolated child scopes but
	// runs iterations in index order; a crash still lands mid-ForEach.
	if st.sequential() {
		for i := range items {
			if err := exec(ctx, f.Body, st.child("i", i, childVars[i])); err != nil {
				return err
			}
		}
	} else {
		errs := make(chan error, len(items))
		for i := range items {
			go func(i int) {
				errs <- exec(ctx, f.Body, st.child("i", i, childVars[i]))
			}(i)
		}
		var first error
		for range items {
			if err := <-errs; err != nil && first == nil {
				first = err
				cancel()
			}
		}
		if first != nil {
			return first
		}
	}
	if f.CollectVar != "" {
		results := make([]any, len(items))
		for i, vars := range childVars {
			v, _ := vars.Get(f.CollectVar)
			results[i] = v
		}
		st.Vars.Set(f.CollectVar, results)
	}
	return nil
}
