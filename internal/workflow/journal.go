package workflow

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"soc/internal/wal"
)

// ErrJournal reports a failed journal append: the effect it was about to
// acknowledge never became durable, so the instance stays pending and
// must be resumed (possibly on a new incarnation) rather than continue.
var ErrJournal = errors.New("workflow: journal append failed")

// ErrNonIdempotentResume reports an instance that crashed with a
// non-idempotent Invoke in flight: the journal holds a start record but
// no completion, so the engine cannot know whether the side effect
// happened and refuses to re-issue the call. The instance faults and
// takes the compensation path instead.
var ErrNonIdempotentResume = errors.New("workflow: non-idempotent invoke was in flight at crash")

// Journal record kinds. One record is one durably acknowledged event of
// an instance's history; the full per-instance sequence is the
// event-sourced truth the orchestrator replays after a crash.
const (
	// recBegin opens an instance: definition name and fully-resolved
	// initial variables.
	recBegin = "begin"
	// recResume marks a new incarnation taking over a pending instance.
	recResume = "resume"
	// recStart marks an Invoke in flight: appended before the call is
	// issued, carrying the op's idempotence and the pessimistically
	// registered compensation (so a call that crashed mid-flight can
	// still be undone).
	recStart = "start"
	// recDone completes a step: the step's variable effects,
	// fully resolved, plus any compensations it registered. Appended
	// BEFORE the effects land in the instance scope: acked ⇒ durable.
	recDone = "done"
	// recPick records a Pick decision: the winning branch (or expiry)
	// and the event payload, so replay never re-races the events.
	recPick = "pick"
	// recStepFault resolves an in-flight start without a completion:
	// the call itself failed cleanly, so the side effect did not happen
	// and a later incarnation may legally re-issue the invoke even when
	// it is not idempotent.
	recStepFault = "step-fault"
	// recFault commits the instance to the compensation path. Appended
	// before the first undo runs, so a crash mid-compensation resumes
	// compensating instead of re-running forward activities.
	recFault = "fault"
	// recCompDone acknowledges one executed compensation. Appended
	// AFTER the undo ran: compensators execute at least once and are
	// journaled exactly once, which is why they must be idempotent.
	recCompDone = "comp-done"
	// recEnd closes the instance: completed or compensated.
	recEnd = "end"
)

// Terminal instance statuses, plus the in-between.
const (
	// StatusPending marks an instance with work left: running now, or
	// waiting to be resumed after a crash or journal fault.
	StatusPending = "pending"
	// StatusCompleted marks a successful terminal instance.
	StatusCompleted = "completed"
	// StatusCompensated marks an instance that faulted and ran all its
	// registered compensations.
	StatusCompensated = "compensated"
)

// Compensation is one durable undo registration: a named compensator
// (re-registered as code on every incarnation) plus fully-resolved
// arguments captured when the forward step was journaled.
type Compensation struct {
	ID   string         `json:"id"`
	Name string         `json:"name"`
	Args map[string]any `json:"args,omitempty"`
}

// Record is one journal entry. Fields are fully resolved at append time
// (no closures, no pointers into live state) so any later incarnation
// can replay from JSON alone.
type Record struct {
	Inst string `json:"inst"`
	Kind string `json:"kind"`
	Key  string `json:"key,omitempty"`

	// begin
	Def  string         `json:"def,omitempty"`
	Init map[string]any `json:"init,omitempty"`

	// resume
	Incarnation int `json:"incarnation,omitempty"`

	// start / done (Service+Op identify invoke steps in audits)
	Service    string         `json:"service,omitempty"`
	Op         string         `json:"op,omitempty"`
	Idempotent bool           `json:"idempotent,omitempty"`
	Comps      []Compensation `json:"comps,omitempty"`
	Effects    map[string]any `json:"effects,omitempty"`

	// pick
	Branch  int  `json:"branch,omitempty"`
	Expired bool `json:"expired,omitempty"`
	Payload any  `json:"payload,omitempty"`

	// comp-done
	Comp string `json:"comp,omitempty"`

	// fault / end
	Status string `json:"status,omitempty"`
	Err    string `json:"err,omitempty"`
}

// journal serializes appends to the orchestrator's WAL and carries the
// crash hook the simulation harness arms to power-cut a replica at an
// exact append ordinal.
type journal struct {
	mu  sync.Mutex
	log *wal.Log
	// appends counts attempted appends; crashAt fires the armed power
	// cut when the counter reaches it (0 = disarmed).
	appends int64
	crashAt int64
	crashFn func()
	// failed latches after a power cut: the disk under the log is gone,
	// so every later append must fail rather than write to a ghost.
	failed bool
	// dropDone is the MutationDropAppend hook: the Nth done-record
	// append is acknowledged without being written (1-based, 0 = off).
	// It exists to prove the journal-audit invariant can fail.
	dropDone  int
	doneSeen  int
	sinceSnap int
}

func (j *journal) append(r Record) error {
	buf, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("%w: marshal %s/%s: %v", ErrJournal, r.Inst, r.Kind, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return fmt.Errorf("%w: journal is down (crashed)", ErrJournal)
	}
	j.appends++
	if j.crashAt > 0 && j.appends >= j.crashAt {
		j.failed = true
		if j.crashFn != nil {
			j.crashFn()
		}
		return fmt.Errorf("%w: power cut at append %d", ErrJournal, j.appends)
	}
	if j.dropDone > 0 && r.Kind == recDone {
		j.doneSeen++
		if j.doneSeen == j.dropDone {
			// Mutation: ack without durability. The in-memory state moves
			// on; recovery after the next crash must expose the lie.
			j.sinceSnap++
			return nil
		}
	}
	if _, err := j.log.Append(buf); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	j.sinceSnap++
	return nil
}

// armCrash schedules a power cut after n more appends; fn runs once
// when it fires (typically crashing the MemFS under the log).
func (j *journal) armCrash(n int64, fn func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.crashAt = j.appends + n
	j.crashFn = fn
}

func (j *journal) snapshot(data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return fmt.Errorf("%w: journal is down (crashed)", ErrJournal)
	}
	if err := j.log.Snapshot(data); err != nil {
		return err
	}
	j.sinceSnap = 0
	return nil
}

func (j *journal) appendsSinceSnapshot() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinceSnap
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return nil
	}
	j.failed = true
	return j.log.Close()
}

// StartAudit summarizes the start records of one invoke key.
type StartAudit struct {
	Count      int
	Idempotent bool
}

// InstanceAudit is the order-insensitive summary of one instance's
// journal: exactly the evidence the completes-or-compensates-once
// invariant is checked against, across any number of incarnations.
type InstanceAudit struct {
	ID        string
	Def       string
	Status    string
	Err       string
	Begins    int
	Resumes   int
	Terminals int
	Faults    int
	// Dones counts done records per step key; Starts counts invoke
	// start records per key; StepFaults counts cleanly-failed invoke
	// attempts per key; Picks counts pick decisions per key; CompDones
	// counts executed-compensation acks per compensation ID.
	Dones      map[string]int
	Starts     map[string]StartAudit
	StepFaults map[string]int
	Picks      map[string]int
	CompDones  map[string]int
	// Comps lists registered compensations in journal order (the LIFO
	// stack is this slice reversed).
	Comps []Compensation
	// invokeDone marks keys whose done record carries a Service — i.e.
	// invoke completions, which require a matching start record.
	invokeDone map[string]bool
}

// AuditRecords folds a journal record sequence into its audit. It is a
// pure function of the records, so the same audit can be computed from
// in-memory acked state and from a recovered journal and compared.
func AuditRecords(id string, recs []Record) InstanceAudit {
	a := InstanceAudit{
		ID:         id,
		Status:     StatusPending,
		Dones:      map[string]int{},
		Starts:     map[string]StartAudit{},
		StepFaults: map[string]int{},
		Picks:      map[string]int{},
		CompDones:  map[string]int{},
		invokeDone: map[string]bool{},
	}
	// A re-issued invoke (idempotent retry, or retry after a clean
	// step-fault) re-registers the same compensation ID on its new start
	// record; registration is idempotent by ID.
	registered := map[string]bool{}
	addComps := func(comps []Compensation) {
		for _, c := range comps {
			if registered[c.ID] {
				continue
			}
			registered[c.ID] = true
			a.Comps = append(a.Comps, c)
		}
	}
	for _, r := range recs {
		switch r.Kind {
		case recBegin:
			a.Begins++
			a.Def = r.Def
		case recResume:
			a.Resumes++
		case recStart:
			s := a.Starts[r.Key]
			s.Count++
			s.Idempotent = r.Idempotent
			a.Starts[r.Key] = s
			addComps(r.Comps)
		case recDone:
			a.Dones[r.Key]++
			addComps(r.Comps)
			if r.Service != "" {
				a.invokeDone[r.Key] = true
			}
		case recPick:
			a.Picks[r.Key]++
		case recStepFault:
			a.StepFaults[r.Key]++
		case recFault:
			a.Faults++
			if a.Err == "" {
				a.Err = r.Err
			}
		case recCompDone:
			a.CompDones[r.Comp]++
		case recEnd:
			a.Terminals++
			a.Status = r.Status
			if r.Err != "" {
				a.Err = r.Err
			}
		}
	}
	return a
}

// Problems returns the internal-consistency violations of this audit —
// the completes-or-compensates-exactly-once rules that must hold for
// every instance across any crash/resume history. Empty means sound.
func (a InstanceAudit) Problems() []string {
	var out []string
	bad := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	if a.Begins != 1 {
		bad("instance %s has %d begin records, want exactly 1", a.ID, a.Begins)
	}
	if a.Terminals > 1 {
		bad("instance %s terminated %d times", a.ID, a.Terminals)
	}
	for _, k := range sortedKeys(a.Dones) {
		if a.Dones[k] > 1 {
			bad("instance %s: step %s completed %d times", a.ID, k, a.Dones[k])
		}
	}
	for _, k := range sortedKeys2(a.Starts) {
		s := a.Starts[k]
		// A non-idempotent invoke may be re-issued only after each prior
		// attempt resolved as a clean failure (step-fault): at most one
		// start may ever be unresolved-or-successful.
		if !s.Idempotent && s.Count > a.StepFaults[k]+1 {
			bad("instance %s: non-idempotent invoke %s issued %d times (%d resolved as clean failures)",
				a.ID, k, s.Count, a.StepFaults[k])
		}
	}
	for _, k := range sortedKeys(a.Dones) {
		// An invoke completion requires an in-flight record: a done
		// without any start means a start append was lost.
		if a.invokeDone[k] && a.Starts[k].Count == 0 {
			bad("instance %s: invoke %s completed without a start record", a.ID, k)
		}
	}
	registered := map[string]bool{}
	for _, c := range a.Comps {
		registered[c.ID] = true
	}
	for _, c := range sortedKeys(a.CompDones) {
		if a.CompDones[c] > 1 {
			bad("instance %s: compensation %s applied %d times", a.ID, c, a.CompDones[c])
		}
		if !registered[c] {
			bad("instance %s: compensation %s executed but never registered", a.ID, c)
		}
	}
	switch a.Status {
	case StatusCompleted:
		if a.Faults > 0 {
			bad("instance %s completed despite %d fault records", a.ID, a.Faults)
		}
		if len(a.CompDones) > 0 {
			bad("instance %s completed but ran %d compensations", a.ID, len(a.CompDones))
		}
		for _, k := range sortedKeys2(a.Starts) {
			// Every started invoke of a completed instance must have
			// resolved: a done record, or clean step-faults absorbed by a
			// fault handler. (An idempotent retry may leave extra starts
			// next to one done — that is resolution, not loss.) A start
			// with neither means a done append was lost.
			if a.Dones[k] == 0 && a.StepFaults[k] < a.Starts[k].Count {
				bad("instance %s completed with invoke %s unresolved (%d starts, %d dones, %d clean failures)",
					a.ID, k, a.Starts[k].Count, a.Dones[k], a.StepFaults[k])
			}
		}
	case StatusCompensated:
		if a.Faults == 0 {
			bad("instance %s compensated without a fault record", a.ID)
		}
		for _, c := range a.Comps {
			if a.CompDones[c.ID] != 1 {
				bad("instance %s: compensation %s applied %d times, want exactly 1 for a compensated instance",
					a.ID, c.ID, a.CompDones[c.ID])
			}
		}
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]StartAudit) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
