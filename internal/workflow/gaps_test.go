package workflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWhileFaultPath proves a fault inside a While body stops the loop at
// that iteration: no further iterations run, the fault propagates wrapped
// in ErrFaulted, and the effects of the iterations that completed before
// the fault are still visible in the final vars.
func TestWhileFaultPath(t *testing.T) {
	var bodies int32
	wf, err := New("while-fault", &While{
		Label: "loop",
		Cond:  func(v *Vars) bool { return v.GetInt("n") < 5 },
		Body: &Task{Label: "work", Fn: func(_ context.Context, v *Vars) error {
			atomic.AddInt32(&bodies, 1)
			n := v.GetInt("n")
			if n == 2 {
				return errors.New("pump seized")
			}
			v.Set(fmt.Sprintf("round%d", n), true)
			v.Set("n", n+1)
			return nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := wf.Run(context.Background(), map[string]any{"n": int64(0)})
	if !errors.Is(err, ErrFaulted) || !strings.Contains(err.Error(), "pump seized") {
		t.Fatalf("err = %v, want ErrFaulted wrapping the body fault", err)
	}
	if got := atomic.LoadInt32(&bodies); got != 3 {
		t.Errorf("body ran %d times, want 3 (two clean iterations plus the faulting one)", got)
	}
	// Earlier iterations' effects survive; the loop never reached round 2+.
	if out["round0"] != true || out["round1"] != true {
		t.Errorf("pre-fault iteration effects lost: %v", out)
	}
	if _, ok := out["round2"]; ok {
		t.Errorf("faulting iteration left an effect: %v", out)
	}
	if out["n"] != int64(2) {
		t.Errorf("n = %v, want 2 (the iteration that faulted)", out["n"])
	}
}

// TestPickTimeoutVsEventRace arms an event to fire at exactly the Pick
// timeout. Whichever side wins the race, the outcome must be consistent:
// exactly one of {event branch, OnExpire} runs, never both, never
// neither, and the run never faults.
func TestPickTimeoutVsEventRace(t *testing.T) {
	const deadline = 2 * time.Millisecond
	for round := 0; round < 20; round++ {
		wf, err := New("pick-race", &Pick{
			Label: "race",
			Events: []PickBranch{{
				Wait: func(ctx context.Context) <-chan any {
					ch := make(chan any, 1)
					// Fire right on the timeout boundary: some rounds the
					// event wins, some rounds the timer does.
					time.AfterFunc(deadline, func() { ch <- "ding" })
					return ch
				},
				Var:  "evt",
				Then: &Assign{Label: "won", Var: "outcome", Expr: func(*Vars) any { return "event" }},
			}},
			Timeout:  deadline,
			OnExpire: &Assign{Label: "expired", Var: "outcome", Expr: func(*Vars) any { return "timeout" }},
		})
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := wf.Run(context.Background(), nil)
		if err != nil {
			t.Fatalf("round %d: a timeout-vs-event race must never fault: %v", round, err)
		}
		switch out["outcome"] {
		case "event":
			if out["evt"] != "ding" {
				t.Fatalf("round %d: event branch won without its payload: %v", round, out)
			}
		case "timeout":
			if _, ok := out["evt"]; ok {
				t.Fatalf("round %d: OnExpire ran yet the event payload was bound: %v", round, out)
			}
		default:
			t.Fatalf("round %d: no branch ran, out = %v", round, out)
		}
	}
}

// TestPickEventBeatsGenerousTimeout pins the deterministic side of the
// race: a buffered event always wins over a timeout that has not fired.
func TestPickEventBeatsGenerousTimeout(t *testing.T) {
	wf, err := New("pick-event", &Pick{
		Label: "sure",
		Events: []PickBranch{{
			Wait: func(ctx context.Context) <-chan any {
				ch := make(chan any, 1)
				ch <- int64(7)
				return ch
			},
			Var:  "evt",
			Then: &Assign{Label: "won", Var: "outcome", Expr: func(*Vars) any { return "event" }},
		}},
		Timeout:  time.Hour,
		OnExpire: &Assign{Label: "expired", Var: "outcome", Expr: func(*Vars) any { return "timeout" }},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := wf.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["outcome"] != "event" || out["evt"] != int64(7) {
		t.Errorf("buffered event lost to an unfired one-hour timer: %v", out)
	}
}

// TestInvokeFailingInvokerFunc exercises Invoke against an InvokerFunc
// that always errors: the fault must carry the service/operation context
// and the original cause, and outputs must not be bound.
func TestInvokeFailingInvokerFunc(t *testing.T) {
	var calls int32
	inv := InvokerFunc(func(_ context.Context, service, op string, args map[string]any) (map[string]any, error) {
		atomic.AddInt32(&calls, 1)
		return map[string]any{"partial": true}, fmt.Errorf("%s.%s rejected: quota exhausted", service, op)
	})
	wf, err := New("invoke-fail", &Invoke{
		Label: "call", Service: "Billing", Operation: "Charge", Invoker: inv,
		Inputs:  map[string]string{"amount": "amount"},
		Outputs: map[string]string{"receipt": "receipt"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := wf.Run(context.Background(), map[string]any{"amount": int64(5)})
	if !errors.Is(err, ErrFaulted) {
		t.Fatalf("err = %v, want ErrFaulted", err)
	}
	for _, want := range []string{"Billing", "Charge", "quota exhausted"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("fault %q does not mention %q", err, want)
		}
	}
	if _, ok := out["receipt"]; ok {
		t.Errorf("failed invoke bound its output mapping: %v", out)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("invoker called %d times, want exactly 1 (no blind retry)", got)
	}
}

// TestInvokeFailureCancelsParallelSiblings puts the failing InvokerFunc
// inside a parallel ForEach: one item's invoke fails fast while the
// others block until their context is cancelled. The fan-out must
// propagate the invoke fault and cancel the slow siblings instead of
// waiting them out.
func TestInvokeFailureCancelsParallelSiblings(t *testing.T) {
	var cancelled int32
	inFlight := make(chan struct{}, 2)
	inv := InvokerFunc(func(ctx context.Context, _, _ string, args map[string]any) (map[string]any, error) {
		if args["item"] == "poison" {
			// Fail only once both healthy siblings are blocked in flight,
			// so the fault demonstrably cancels running work.
			<-inFlight
			<-inFlight
			return nil, errors.New("poisoned payload")
		}
		inFlight <- struct{}{}
		// Healthy siblings only finish when the fault cancels them.
		<-ctx.Done()
		atomic.AddInt32(&cancelled, 1)
		return nil, ctx.Err()
	})
	wf, err := New("fanout-fail", &ForEach{
		Label: "fan", Items: "items", ItemVar: "item", Parallel: true,
		Body: &Invoke{Label: "probe", Service: "Scan", Operation: "Check", Invoker: inv,
			Inputs: map[string]string{"item": "item"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, _, runErr = wf.Run(context.Background(), map[string]any{
			"items": []any{"ok-1", "poison", "ok-2"},
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fan-out hung: the invoke fault did not cancel its siblings")
	}
	if !errors.Is(runErr, ErrFaulted) || !strings.Contains(runErr.Error(), "poisoned payload") {
		t.Fatalf("err = %v, want ErrFaulted wrapping the poisoned invoke", runErr)
	}
	if got := atomic.LoadInt32(&cancelled); got != 2 {
		t.Errorf("%d siblings saw cancellation, want 2", got)
	}
}
