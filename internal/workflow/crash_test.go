package workflow

import (
	"context"
	"os"
	"strconv"
	"testing"

	"soc/internal/wal"
)

// The workflow-journal crash-point corpus: one full instance of the
// everything definition is journaled to a single WAL segment, then the
// segment is truncated at every byte offset and bit-flipped at every
// byte. Recovery from each damaged image must yield a journal the
// orchestrator can drive to a clean terminal state — replay forward or
// compensate — without ever re-issuing a non-idempotent invoke whose
// durable evidence says it may already have happened.

// crashStride spreads the sweep: `go test` samples every 7th offset to
// stay fast, `make crash` sets WORKFLOW_CRASH_STRIDE=1 for the
// exhaustive corpus.
func crashStride(t *testing.T) int {
	t.Helper()
	stride := 7
	if env := os.Getenv("WORKFLOW_CRASH_STRIDE"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("WORKFLOW_CRASH_STRIDE=%q: want a positive integer", env)
		}
		stride = v
	}
	return stride
}

// buildCrashImage journals one clean everything instance into a single
// segment and returns the raw segment bytes and name.
func buildCrashImage(t *testing.T) (raw []byte, segName string) {
	t.Helper()
	inv := newStubInvoker()
	fs := wal.NewMemFS(23)
	// Snapshots off: the sweep wants every record as a raw segment frame.
	o := openOrch(t, fs, inv, Options{SnapshotEvery: -1, WAL: wal.Options{SegmentBytes: 1 << 30}})
	res, err := o.Start(context.Background(), "wf-1", "everything", initVars())
	if err != nil {
		t.Fatalf("corpus run: %v", err)
	}
	if res.Status != StatusCompleted {
		t.Fatalf("corpus run status = %s, want completed", res.Status)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(names) != 1 {
		t.Fatalf("corpus spans %d files %v, want a single segment", len(names), names)
	}
	segName = names[0]
	var ok bool
	raw, ok = fs.RawFile(segName)
	if !ok {
		t.Fatalf("segment %s missing", segName)
	}
	return raw, segName
}

// recoverAndSettle opens an orchestrator over the damaged image, derives
// from the recovered prefix which non-idempotent invokes are unresolved
// (in flight at the cut), resumes to a terminal state, and asserts the
// crash-safety properties. Returns the ops the sweep proved were not
// re-issued, for the caller's accounting.
func recoverAndSettle(t *testing.T, fs *wal.MemFS, tag string) {
	t.Helper()
	inv := newStubInvoker()
	o := openOrch(t, fs, inv, Options{SnapshotEvery: -1, WAL: wal.Options{SegmentBytes: 1 << 30}})
	defer func() {
		//soclint:ignore errdiscard sweep teardown; close failures would have surfaced as append errors
		_ = o.Close()
	}()
	inst := o.lookup("wf-1")
	if inst == nil {
		// The cut landed before the begin record survived: no instance,
		// nothing to resume — a legal (if total) loss of unacked work.
		return
	}
	// From the recovered prefix alone: every non-idempotent invoke with
	// an unresolved start may already have had its side effect. Resume
	// must fault into compensation instead of re-issuing it.
	prior := AuditRecords("wf-1", inst.snapshotRecords())
	inFlight := map[string]bool{}
	for key, s := range prior.Starts {
		if !s.Idempotent && prior.Dones[key] == 0 && prior.StepFaults[key] < s.Count {
			for _, r := range inst.snapshotRecords() {
				if r.Kind == "start" && r.Key == key {
					inFlight[r.Op] = true
				}
			}
		}
	}
	settle(t, o)
	a, problems := auditProblems(t, o, "wf-1")
	if len(problems) != 0 {
		t.Fatalf("%s: settled instance audits dirty: %v", tag, problems)
	}
	if a.Status != StatusCompleted && a.Status != StatusCompensated {
		t.Fatalf("%s: settled status = %s, want a terminal state", tag, a.Status)
	}
	for op := range inFlight {
		if n := inv.opCount(op); n != 0 {
			t.Fatalf("%s: non-idempotent %s was in flight at the crash yet re-issued %d times", tag, op, n)
		}
	}
	if len(inFlight) > 0 && a.Status != StatusCompensated {
		t.Fatalf("%s: in-flight non-idempotent invoke must force compensation, got %s", tag, a.Status)
	}
}

// TestCrashWorkflowJournalTruncation cuts the journal at every byte
// offset — a torn write that persisted exactly that prefix — and proves
// recovery always reaches a clean terminal state with no duplicated
// side effect.
func TestCrashWorkflowJournalTruncation(t *testing.T) {
	raw, segName := buildCrashImage(t)
	stride := crashStride(t)
	for cut := 0; cut <= len(raw); cut += stride {
		fs := wal.NewMemFS(int64(cut))
		fs.WriteDurable(segName, raw[:cut])
		recoverAndSettle(t, fs, "cut="+strconv.Itoa(cut))
	}
}

// TestCrashWorkflowJournalBitFlip flips one bit in every byte of the
// journal image. The WAL's checksums turn the flip into a salvage point;
// the orchestrator must treat whatever survives as the acked prefix and
// still settle cleanly.
func TestCrashWorkflowJournalBitFlip(t *testing.T) {
	raw, segName := buildCrashImage(t)
	stride := crashStride(t)
	for off := 0; off < len(raw); off += stride {
		fs := wal.NewMemFS(int64(off))
		fs.WriteDurable(segName, raw)
		if err := fs.FlipBit(segName, off); err != nil {
			t.Fatalf("off=%d: FlipBit: %v", off, err)
		}
		recoverAndSettle(t, fs, "flip="+strconv.Itoa(off))
	}
}
