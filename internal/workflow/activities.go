package workflow

import (
	"context"
	"fmt"
	"time"
)

// Task is a leaf activity running an arbitrary function — the "code
// activity" of VPL.
type Task struct {
	Label string
	Fn    func(ctx context.Context, vars *Vars) error
}

// Name implements Activity.
func (t *Task) Name() string { return t.Label }

// Validate checks the definition.
func (t *Task) Validate() error {
	if t.Label == "" || t.Fn == nil {
		return fmt.Errorf("%w: task needs label and fn", ErrDefinition)
	}
	return nil
}

// Execute implements Activity.
func (t *Task) Execute(ctx context.Context, st *State) error { return t.Fn(ctx, st.Vars) }

// Assign sets a variable from an expression over the scope.
type Assign struct {
	Label string
	Var   string
	Expr  func(vars *Vars) any
}

func (a *Assign) Name() string { return a.Label }

func (a *Assign) Validate() error {
	if a.Label == "" || a.Var == "" || a.Expr == nil {
		return fmt.Errorf("%w: assign needs label, var and expr", ErrDefinition)
	}
	return nil
}

func (a *Assign) Execute(_ context.Context, st *State) error {
	st.Vars.Set(a.Var, a.Expr(st.Vars))
	return nil
}

// Invoker abstracts a service invocation target so the engine does not
// depend on a specific client. soc/internal/host.Client satisfies it via
// the InvokeAdapter below, and tests can stub it.
type Invoker interface {
	Invoke(ctx context.Context, service, operation string, args map[string]any) (map[string]any, error)
}

// InvokerFunc adapts a function to Invoker.
type InvokerFunc func(ctx context.Context, service, operation string, args map[string]any) (map[string]any, error)

// Invoke implements Invoker.
func (f InvokerFunc) Invoke(ctx context.Context, service, operation string, args map[string]any) (map[string]any, error) {
	return f(ctx, service, operation, args)
}

// Undo declares an Invoke's durable compensation: a compensator
// registered by name on the orchestrator, with arguments resolved from
// the scope (argument name → variable name) when the invoke's start
// record is journaled — pessimistically, so a call that crashed in
// flight can still be undone.
type Undo struct {
	Name     string
	ArgsFrom map[string]string
}

// Invoke calls a service operation: inputs are drawn from the scope by
// the Inputs mapping (parameter name → variable name) and outputs are
// written back by the Outputs mapping (result name → variable name).
//
// Idempotent declares that re-issuing the operation is safe; the
// orchestrator re-issues an in-flight invoke after a crash only when it
// is set, and otherwise faults the instance into compensation.
// Compensation (optional) is the durable undo journaled with the start
// record.
type Invoke struct {
	Label        string
	Service      string
	Operation    string
	Invoker      Invoker
	Inputs       map[string]string
	Outputs      map[string]string
	Idempotent   bool
	Compensation *Undo
}

func (i *Invoke) Name() string { return i.Label }

func (i *Invoke) Validate() error {
	if i.Label == "" || i.Service == "" || i.Operation == "" || i.Invoker == nil {
		return fmt.Errorf("%w: invoke needs label, service, operation and invoker", ErrDefinition)
	}
	if i.Compensation != nil && i.Compensation.Name == "" {
		return fmt.Errorf("%w: invoke %q: compensation needs a compensator name", ErrDefinition, i.Label)
	}
	return nil
}

// resolveCompensation materializes the declared undo with arguments
// resolved from the current scope, ready to be journaled.
func (i *Invoke) resolveCompensation(key string, vars *Vars) []Compensation {
	if i.Compensation == nil {
		return nil
	}
	args := make(map[string]any, len(i.Compensation.ArgsFrom))
	for arg, varName := range i.Compensation.ArgsFrom {
		if v, ok := vars.Get(varName); ok {
			args[arg] = v
		}
	}
	return []Compensation{{ID: key + "|" + i.Compensation.Name, Name: i.Compensation.Name, Args: args}}
}

func (i *Invoke) Execute(ctx context.Context, st *State) error {
	args := map[string]any{}
	for param, varName := range i.Inputs {
		if v, ok := st.Vars.Get(varName); ok {
			args[param] = v
		}
	}
	out, err := i.Invoker.Invoke(ctx, i.Service, i.Operation, args)
	if err != nil {
		return fmt.Errorf("invoke %s.%s: %w", i.Service, i.Operation, err)
	}
	for result, varName := range i.Outputs {
		if v, ok := out[result]; ok {
			st.Vars.Set(varName, v)
		}
	}
	return nil
}

// Sequence runs activities in order, stopping at the first fault.
type Sequence struct {
	Label string
	Steps []Activity
}

func (s *Sequence) Name() string { return s.Label }

// Children implements the validation walker.
func (s *Sequence) Children() []Activity { return s.Steps }

func (s *Sequence) Validate() error {
	if s.Label == "" || len(s.Steps) == 0 {
		return fmt.Errorf("%w: sequence needs label and steps", ErrDefinition)
	}
	return nil
}

func (s *Sequence) Execute(ctx context.Context, st *State) error {
	for _, step := range s.Steps {
		if err := exec(ctx, step, st); err != nil {
			return err
		}
	}
	return nil
}

// Parallel runs branches concurrently and joins them (AND-split/AND-join).
// The first branch fault cancels the remaining branches' context.
type Parallel struct {
	Label    string
	Branches []Activity
}

func (p *Parallel) Name() string { return p.Label }

func (p *Parallel) Children() []Activity { return p.Branches }

func (p *Parallel) Validate() error {
	if p.Label == "" || len(p.Branches) == 0 {
		return fmt.Errorf("%w: parallel needs label and branches", ErrDefinition)
	}
	return nil
}

func (p *Parallel) Execute(ctx context.Context, st *State) error {
	// Deterministic journaled mode runs branches in definition order:
	// the AND-join semantics are unchanged, and a crash still lands
	// "mid-Parallel" — some branches journaled done, the rest not.
	if st.sequential() {
		for i, b := range p.Branches {
			if err := exec(ctx, b, st.branchScope("b", i)); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make(chan error, len(p.Branches))
	for i, b := range p.Branches {
		go func(i int, b Activity) {
			errs <- exec(ctx, b, st.branchScope("b", i))
		}(i, b)
	}
	var first error
	for range p.Branches {
		if err := <-errs; err != nil && first == nil {
			first = err
			cancel()
		}
	}
	return first
}

// If runs Then when the condition holds, Else (optional) otherwise.
type If struct {
	Label string
	Cond  func(vars *Vars) bool
	Then  Activity
	Else  Activity
}

func (i *If) Name() string { return i.Label }

func (i *If) Children() []Activity {
	out := []Activity{i.Then}
	if i.Else != nil {
		out = append(out, i.Else)
	}
	return out
}

func (i *If) Validate() error {
	if i.Label == "" || i.Cond == nil || i.Then == nil {
		return fmt.Errorf("%w: if needs label, cond and then", ErrDefinition)
	}
	return nil
}

func (i *If) Execute(ctx context.Context, st *State) error {
	if i.Cond(st.Vars) {
		return exec(ctx, i.Then, st)
	}
	if i.Else != nil {
		return exec(ctx, i.Else, st)
	}
	return nil
}

// While repeats Body while the condition holds, bounded by MaxIterations
// (default 10000) to keep buggy compositions from spinning forever.
type While struct {
	Label         string
	Cond          func(vars *Vars) bool
	Body          Activity
	MaxIterations int
}

func (w *While) Name() string { return w.Label }

func (w *While) Children() []Activity { return []Activity{w.Body} }

func (w *While) Validate() error {
	if w.Label == "" || w.Cond == nil || w.Body == nil {
		return fmt.Errorf("%w: while needs label, cond and body", ErrDefinition)
	}
	return nil
}

func (w *While) Execute(ctx context.Context, st *State) error {
	max := w.MaxIterations
	if max <= 0 {
		max = 10000
	}
	for i := 0; w.Cond(st.Vars); i++ {
		if i >= max {
			return fmt.Errorf("while %q exceeded %d iterations", w.Label, max)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// Each iteration gets its own key namespace so replay aligns
		// iteration i's journal records with iteration i's re-execution.
		if err := exec(ctx, w.Body, st.branchScope("t", i)); err != nil {
			return err
		}
	}
	return nil
}

// Pick waits for the first of several events (the event-driven OR-join):
// each branch has a guard channel; the first channel to deliver runs its
// activity and the rest are abandoned. A timeout branch fires after
// Timeout when no event arrives.
type Pick struct {
	Label   string
	Events  []PickBranch
	Timeout time.Duration
	// OnExpire optionally runs when Timeout elapses with no event.
	OnExpire Activity
}

// PickBranch couples an event source with its continuation.
type PickBranch struct {
	// Wait returns a channel that delivers when the event fires. It is
	// called once per execution.
	Wait func(ctx context.Context) <-chan any
	// Var, when non-empty, receives the event payload.
	Var string
	// Then runs when this branch wins.
	Then Activity
}

func (p *Pick) Name() string { return p.Label }

func (p *Pick) Children() []Activity {
	var out []Activity
	for _, e := range p.Events {
		out = append(out, e.Then)
	}
	if p.OnExpire != nil {
		out = append(out, p.OnExpire)
	}
	return out
}

func (p *Pick) Validate() error {
	if p.Label == "" || len(p.Events) == 0 {
		return fmt.Errorf("%w: pick needs label and events", ErrDefinition)
	}
	for _, e := range p.Events {
		if e.Wait == nil || e.Then == nil {
			return fmt.Errorf("%w: pick branch needs wait and then", ErrDefinition)
		}
	}
	return nil
}

func (p *Pick) Execute(ctx context.Context, st *State) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type fired struct {
		idx     int
		payload any
	}
	ch := make(chan fired, len(p.Events))
	for idx, e := range p.Events {
		go func(idx int, e PickBranch) {
			select {
			case v, ok := <-e.Wait(ctx):
				if ok {
					ch <- fired{idx, v}
				}
			case <-ctx.Done():
			}
		}(idx, e)
	}
	var timeout <-chan time.Time
	if p.Timeout > 0 {
		timer := time.NewTimer(p.Timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case f := <-ch:
		br := p.Events[f.idx]
		if br.Var != "" {
			st.Vars.Set(br.Var, f.payload)
		}
		return exec(ctx, br.Then, st)
	case <-timeout:
		if p.OnExpire != nil {
			return exec(ctx, p.OnExpire, st)
		}
		return fmt.Errorf("pick %q timed out after %v", p.Label, p.Timeout)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Scope runs Body with BPEL-style fault and compensation handling: when
// Body faults, Compensation activities registered during execution run in
// reverse order, then OnFault (if set) may absorb the fault.
type Scope struct {
	Label string
	Body  Activity
	// OnFault handles a fault from Body; if it executes without error
	// the fault is considered handled.
	OnFault Activity
}

func (s *Scope) Name() string { return s.Label }

func (s *Scope) Children() []Activity {
	out := []Activity{s.Body}
	if s.OnFault != nil {
		out = append(out, s.OnFault)
	}
	return out
}

func (s *Scope) Validate() error {
	if s.Label == "" || s.Body == nil {
		return fmt.Errorf("%w: scope needs label and body", ErrDefinition)
	}
	return nil
}

type compKey struct{ scope string }

// RegisterCompensation records an undo action for the named enclosing
// scope. Compensations run LIFO when the scope faults.
func RegisterCompensation(vars *Vars, scope string, undo func(ctx context.Context) error) {
	key := compKey{scope}
	cur, _ := vars.Get(fmt.Sprint(key))
	list, _ := cur.([]func(ctx context.Context) error)
	vars.Set(fmt.Sprint(key), append(list, undo))
}

func (s *Scope) Execute(ctx context.Context, st *State) error {
	err := exec(ctx, s.Body, st)
	if err == nil {
		return nil
	}
	// Run compensations LIFO. Compensation runs on a context detached
	// from cancellation so a canceled workflow can still undo (bounded),
	// while deadline-exempt request values continue to flow.
	compCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
	defer cancel()
	key := fmt.Sprint(compKey{s.Label})
	if cur, ok := st.Vars.Get(key); ok {
		if list, ok := cur.([]func(ctx context.Context) error); ok {
			for i := len(list) - 1; i >= 0; i-- {
				if cerr := list[i](compCtx); cerr != nil {
					return fmt.Errorf("scope %q: fault %v; compensation also failed: %w", s.Label, err, cerr)
				}
			}
			st.Vars.Set(key, []func(ctx context.Context) error(nil))
		}
	}
	if s.OnFault != nil {
		st.Vars.Set("fault."+s.Label, err.Error())
		if herr := exec(ctx, s.OnFault, st); herr != nil {
			return fmt.Errorf("scope %q: fault handler failed: %w", s.Label, herr)
		}
		return nil // fault handled
	}
	return err
}

// Delay pauses the workflow — the "wait" activity.
type Delay struct {
	Label string
	D     time.Duration
}

func (d *Delay) Name() string { return d.Label }

func (d *Delay) Validate() error {
	if d.Label == "" || d.D < 0 {
		return fmt.Errorf("%w: delay needs label and non-negative duration", ErrDefinition)
	}
	return nil
}

func (d *Delay) Execute(ctx context.Context, _ *State) error {
	t := time.NewTimer(d.D)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
