package workflow

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"soc/internal/wal"
)

// raceRoot is a definition built to provoke data races the -race
// detector can see: Parallel branches and parallel ForEach iterations
// run as real goroutines (non-deterministic mode) and every branch
// mutates the shared scope through its journaled overlay.
func raceRoot(inv Invoker) Activity {
	branches := make([]Activity, 4)
	for i := range branches {
		i := i
		branches[i] = &Sequence{Label: fmt.Sprintf("branch%d", i), Steps: []Activity{
			&Invoke{Label: fmt.Sprintf("probe%d", i), Service: "Credit", Operation: "Score", Invoker: inv,
				Idempotent: true, Outputs: map[string]string{"score": fmt.Sprintf("score%d", i)}},
			&Task{Label: fmt.Sprintf("tally%d", i), Fn: func(_ context.Context, vars *Vars) error {
				vars.Set("tally", vars.GetInt("tally")+1)
				vars.Set(fmt.Sprintf("seen%d", i), true)
				return nil
			}},
		}}
	}
	return &Sequence{Label: "race", Steps: []Activity{
		&Task{Label: "init", Fn: func(_ context.Context, vars *Vars) error {
			vars.Set("tally", int64(0))
			return nil
		}},
		&Parallel{Label: "fan", Branches: branches},
		&ForEach{Label: "each", Items: "items", ItemVar: "item", Parallel: true, CollectVar: "len",
			Body: &Invoke{Label: "measure", Service: "Str", Operation: "Measure", Invoker: inv, Idempotent: true,
				Inputs: map[string]string{"item": "item"}, Outputs: map[string]string{"len": "len"}}},
		&Task{Label: "finish", Fn: func(_ context.Context, vars *Vars) error {
			vars.Set("finished", true)
			return nil
		}},
	}}
}

// openRaceOrch opens a NON-deterministic orchestrator (real goroutine
// fan-out) with both definitions registered.
func openRaceOrch(t *testing.T, fs wal.FS, inv *stubInvoker) *Orchestrator {
	t.Helper()
	o, err := OpenOrchestrator(fs, Options{})
	if err != nil {
		t.Fatalf("OpenOrchestrator: %v", err)
	}
	o.Define(mustWorkflow(t, "racey", raceRoot(inv)))
	o.Define(mustWorkflow(t, "everything", everythingRoot(inv)))
	for _, name := range []string{"release", "uncommit", "log-undo"} {
		o.DefineCompensator(name, inv.compensator(name))
	}
	return o
}

// TestConcurrentOrchestration starts many instances from concurrent
// goroutines — optionally power-cutting the journal mid-flight — then
// recovers on a fresh orchestrator with concurrent ResumeAll callers.
// Run under -race this proves no torn journal state and no unsynchronized
// scope access; the audit proves exactly-once semantics survived the
// concurrency.
func TestConcurrentOrchestration(t *testing.T) {
	instances := 24
	if testing.Short() {
		instances = 6
	}
	cases := []struct {
		name    string
		def     string
		crashAt int64 // journal append ordinal of the power cut; 0 = none
	}{
		{name: "racey-clean", def: "racey", crashAt: 0},
		{name: "racey-midflight-crash", def: "racey", crashAt: 40},
		{name: "everything-clean", def: "everything", crashAt: 0},
		{name: "everything-midflight-crash", def: "everything", crashAt: 60},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fs := wal.NewMemFS(fnvSeed(tc.name))
			inv := newStubInvoker()
			o := openRaceOrch(t, fs, inv)
			if tc.crashAt > 0 {
				o.ArmCrash(tc.crashAt, nil)
			}
			var wg sync.WaitGroup
			for i := 0; i < instances; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// Start outcomes are unasserted on purpose: under a mid-
					// flight power cut some instances fail their very first
					// append and stay pending — the audit judges the result.
					//soclint:ignore errdiscard concurrent starts race the armed power cut; journal errors are the scenario, not a failure
					_, _ = o.Start(context.Background(), fmt.Sprintf("wf-%03d", i), tc.def, initVars())
				}(i)
			}
			wg.Wait()
			// Power cut: everything unsynced is torn; acked appends survive.
			fs.Crash()

			// A fresh incarnation recovers the journal; several goroutines
			// race ResumeAll over the same pending set.
			o2 := openRaceOrch(t, fs, inv)
			var rg sync.WaitGroup
			for g := 0; g < 3; g++ {
				rg.Add(1)
				go func() {
					defer rg.Done()
					o2.ResumeAll(context.Background())
				}()
			}
			rg.Wait()
			settle(t, o2)

			for _, id := range o2.Instances() {
				a, ok := o2.Audit(id)
				if !ok {
					t.Fatalf("no audit for %s", id)
				}
				if problems := a.Problems(); len(problems) != 0 {
					t.Errorf("%s audits dirty after concurrent run: %v", id, problems)
				}
				if a.Status != StatusCompleted && a.Status != StatusCompensated {
					t.Errorf("%s settled at %s, want a terminal state", id, a.Status)
				}
			}
			// A third incarnation proves the journal itself was never torn
			// by concurrent appends: recovery reproduces the same audits.
			o3 := openRaceOrch(t, fs, inv)
			for _, id := range o2.Instances() {
				a2, _ := o2.Audit(id)
				a3, ok := o3.Audit(id)
				if !ok {
					t.Fatalf("instance %s lost on reopen", id)
				}
				if a3.Status != a2.Status || a3.Terminals != a2.Terminals {
					t.Errorf("%s: reopened audit (%s,%d terminals) != settled audit (%s,%d terminals)",
						id, a3.Status, a3.Terminals, a2.Status, a2.Terminals)
				}
				if problems := a3.Problems(); len(problems) != 0 {
					t.Errorf("%s audits dirty after reopen: %v", id, problems)
				}
			}
		})
	}
}

func fnvSeed(s string) int64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}
