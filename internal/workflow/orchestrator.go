package workflow

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"soc/internal/wal"
)

// Mutation hooks prove the journal-audit invariant can fail: each one
// deliberately breaks a durability or exactly-once rule so the checker
// built on InstanceAudit must trip. They mirror the analyzer
// mutation-testing discipline: a checker that cannot fail checks
// nothing. Never set outside tests.
const (
	// MutationDropAppend acknowledges one done append without writing
	// it: the acked ⇒ durable lie, exposed after the next crash.
	MutationDropAppend = "drop-append"
	// MutationDoubleCompensate runs and journals every compensation
	// twice, breaking compensated-exactly-once.
	MutationDoubleCompensate = "double-comp"
	// MutationResumeNonIdempotent re-issues in-flight non-idempotent
	// invokes on resume instead of faulting, breaking at-most-once
	// side effects.
	MutationResumeNonIdempotent = "resume-nonidem"
)

// Options configures an Orchestrator.
type Options struct {
	// WAL configures the underlying log (segment size etc).
	WAL wal.Options
	// SnapshotEvery folds the journal into a snapshot after this many
	// appends (default 64; <0 disables).
	SnapshotEvery int
	// Deterministic runs Parallel branches and parallel ForEach
	// iterations sequentially in definition order and polls Pick
	// branches instead of racing goroutines, so the journal append
	// order — and therefore the simulation hash — is a pure function
	// of the schedule. Resume semantics are identical; only scheduling
	// changes.
	Deterministic bool
	// Mutation enables one of the Mutation* fault hooks (tests only).
	Mutation string
}

// Compensator is a durable undo action. It is registered by name as
// code on every incarnation and receives the fully-resolved arguments
// captured in the journal when the forward step ran. It must be
// idempotent: a crash between executing the undo and journaling its
// comp-done record re-runs it on the next incarnation.
type Compensator func(ctx context.Context, args map[string]any) error

// Result is the outcome of driving an instance as far as it would go.
type Result struct {
	ID     string
	Status string
	// Err is the committed fault for compensated instances, or the
	// transient error that left the instance pending.
	Err string
	// Vars is the final variable scope — only populated by the
	// incarnation that actually completed the instance (it is not
	// journaled; replay reconstructs it from effects).
	Vars map[string]any
}

// Instance is one workflow instance's in-memory state: exactly the
// acked journal records plus derived status. All durable truth lives in
// the records; everything else is a cache.
type Instance struct {
	mu      sync.Mutex
	id      string
	def     string
	status  string
	err     string
	resumes int
	running bool
	init    map[string]any
	recs    []Record
	final   map[string]any
}

func (in *Instance) addRecord(r Record) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.applyLocked(r)
}

func (in *Instance) applyLocked(r Record) {
	in.recs = append(in.recs, r)
	switch r.Kind {
	case recBegin:
		in.def = r.Def
		in.init = r.Init
	case recResume:
		in.resumes++
	case recFault:
		if in.err == "" {
			in.err = r.Err
		}
	case recEnd:
		in.status = r.Status
		if r.Err != "" {
			in.err = r.Err
		}
	}
}

func (in *Instance) snapshotRecords() []Record {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Record(nil), in.recs...)
}

func (in *Instance) audit() InstanceAudit {
	return AuditRecords(in.id, in.snapshotRecords())
}

func (in *Instance) currentStatus() (status, errStr string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.status, in.err
}

func (in *Instance) faultCommitted() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.recs {
		if r.Kind == recFault {
			return true
		}
	}
	return false
}

func (in *Instance) terminal() bool {
	s, _ := in.currentStatus()
	return s == StatusCompleted || s == StatusCompensated
}

// Orchestrator runs many workflow instances over one journaled WAL and
// resumes every pending instance at its exact step after a crash.
// Definitions and compensators are code, re-registered on every
// incarnation; everything else is reconstructed from the journal.
type Orchestrator struct {
	opts    Options
	journal *journal

	mu    sync.Mutex
	defs  map[string]*Workflow
	comps map[string]Compensator
	insts map[string]*Instance
	order []string

	recovery wal.RecoveryInfo
}

// snapshotState is the WAL snapshot payload. A wal snapshot covers
// every record up to its index, so the full record history of every
// instance — pending and terminal alike — must ride in the payload or
// compaction would amputate journals mid-instance.
type snapshotState struct {
	Instances []snapshotInstance `json:"instances"`
}

type snapshotInstance struct {
	ID      string   `json:"id"`
	Records []Record `json:"records"`
}

// OpenOrchestrator opens (or creates) an orchestrator over fs,
// recovering every instance's journal: terminal instances keep their
// audit, pending instances await Resume. Definitions and compensators
// must be re-registered before resuming.
func OpenOrchestrator(fs wal.FS, opts Options) (*Orchestrator, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 64
	}
	log, rec, err := wal.Open(fs, opts.WAL)
	if err != nil {
		return nil, fmt.Errorf("workflow: opening journal: %w", err)
	}
	o := &Orchestrator{
		opts:    opts,
		journal: &journal{log: log},
		defs:    map[string]*Workflow{},
		comps:   map[string]Compensator{},
		insts:   map[string]*Instance{},
	}
	if opts.Mutation == MutationDropAppend {
		// Drop the second done append of this incarnation: late enough
		// that real work is in flight, early enough that every
		// non-trivial run exercises it.
		o.journal.dropDone = 2
	}
	if len(rec.Snapshot) > 0 {
		var snap snapshotState
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return nil, fmt.Errorf("workflow: decoding journal snapshot: %w", err)
		}
		for _, si := range snap.Instances {
			inst := o.instanceFor(si.ID)
			for _, r := range si.Records {
				inst.applyLocked(r)
			}
		}
	}
	for _, wr := range rec.Records {
		var r Record
		if err := json.Unmarshal(wr.Data, &r); err != nil {
			// A corrupt frame the WAL's checksum let through cannot
			// happen; a schema drift should not kill recovery of the
			// other instances. Count it as best we can and move on.
			continue
		}
		o.instanceFor(r.Inst).addRecord(r)
	}
	o.recovery = rec.Info
	return o, nil
}

// instanceFor finds or creates the in-memory instance (creation without
// a begin record is only reachable through corruption or mutation hooks
// and is exactly what the audit's Begins rule exists to flag).
func (o *Orchestrator) instanceFor(id string) *Instance {
	o.mu.Lock()
	defer o.mu.Unlock()
	if in, ok := o.insts[id]; ok {
		return in
	}
	in := &Instance{id: id, status: StatusPending}
	o.insts[id] = in
	o.order = append(o.order, id)
	return in
}

// Define registers (or replaces) a workflow definition.
func (o *Orchestrator) Define(wf *Workflow) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.defs[wf.Name] = wf
}

// DefineCompensator registers a named undo action.
func (o *Orchestrator) DefineCompensator(name string, fn Compensator) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.comps[name] = fn
}

func (o *Orchestrator) definition(name string) *Workflow {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.defs[name]
}

func (o *Orchestrator) compensator(name string) Compensator {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.comps[name]
}

// Recovery reports what journal recovery found at open.
func (o *Orchestrator) Recovery() wal.RecoveryInfo { return o.recovery }

// Close closes the journal. Running instances' next append fails and
// leaves them pending, the same contract as a crash.
func (o *Orchestrator) Close() error { return o.journal.close() }

// ArmCrash schedules a simulated power cut after n more journal
// appends; fn runs once when it fires (the harness crashes the MemFS
// there). The append that pulls the trigger fails and nothing later
// reaches the disk.
func (o *Orchestrator) ArmCrash(n int64, fn func()) { o.journal.armCrash(n, fn) }

// Instances returns all known instance IDs in start order.
func (o *Orchestrator) Instances() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.order...)
}

// Pending returns the IDs of non-terminal instances, sorted.
func (o *Orchestrator) Pending() []string {
	o.mu.Lock()
	ids := append([]string(nil), o.order...)
	o.mu.Unlock()
	var out []string
	for _, id := range ids {
		if in := o.lookup(id); in != nil && !in.terminal() {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func (o *Orchestrator) lookup(id string) *Instance {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.insts[id]
}

// Audit returns the journal audit of one instance.
func (o *Orchestrator) Audit(id string) (InstanceAudit, bool) {
	in := o.lookup(id)
	if in == nil {
		return InstanceAudit{}, false
	}
	return in.audit(), true
}

// Audits returns every instance's audit keyed by ID.
func (o *Orchestrator) Audits() map[string]InstanceAudit {
	out := map[string]InstanceAudit{}
	for _, id := range o.Instances() {
		if in := o.lookup(id); in != nil {
			out[id] = in.audit()
		}
	}
	return out
}

// Start begins a new instance: the begin record is journaled first
// (acked ⇒ durable), then the instance runs as far as it can. A journal
// failure mid-run leaves it pending for a later Resume.
func (o *Orchestrator) Start(ctx context.Context, id, def string, init map[string]any) (Result, error) {
	if id == "" {
		return Result{}, fmt.Errorf("workflow: empty instance id")
	}
	wf := o.definition(def)
	if wf == nil {
		return Result{}, fmt.Errorf("workflow: unknown definition %q", def)
	}
	o.mu.Lock()
	if _, exists := o.insts[id]; exists {
		o.mu.Unlock()
		return Result{}, fmt.Errorf("workflow: instance %q already exists", id)
	}
	o.mu.Unlock()
	begin := Record{Inst: id, Kind: recBegin, Def: def, Init: init}
	if err := o.journal.append(begin); err != nil {
		return Result{ID: id, Status: StatusPending, Err: err.Error()}, err
	}
	inst := o.instanceFor(id)
	inst.addRecord(begin)
	return o.drive(ctx, inst, wf)
}

// Resume drives a pending instance on this incarnation: replaying its
// journal skips completed steps, re-issues only idempotent in-flight
// invokes, and picks compensation back up exactly where it stopped.
// Resuming a terminal instance is a no-op returning its result.
func (o *Orchestrator) Resume(ctx context.Context, id string) (Result, error) {
	inst := o.lookup(id)
	if inst == nil {
		return Result{}, fmt.Errorf("workflow: unknown instance %q", id)
	}
	if inst.terminal() {
		st, errStr := inst.currentStatus()
		return Result{ID: id, Status: st, Err: errStr}, nil
	}
	inst.mu.Lock()
	def, resumes := inst.def, inst.resumes
	inst.mu.Unlock()
	wf := o.definition(def)
	if wf == nil {
		return Result{ID: id, Status: StatusPending},
			fmt.Errorf("workflow: instance %q needs unregistered definition %q", id, def)
	}
	rec := Record{Inst: id, Kind: recResume, Incarnation: resumes + 1}
	if err := o.append(inst, rec); err != nil {
		return Result{ID: id, Status: StatusPending, Err: err.Error()}, err
	}
	return o.drive(ctx, inst, wf)
}

// ResumeAll resumes every pending instance in sorted order and returns
// their results. Errors are carried in the results; the loop never
// stops early (one stuck instance must not strand the rest).
func (o *Orchestrator) ResumeAll(ctx context.Context) []Result {
	var out []Result
	for _, id := range o.Pending() {
		res, err := o.Resume(ctx, id)
		if err != nil && res.Err == "" {
			res.Err = err.Error()
		}
		out = append(out, res)
	}
	return out
}

// append journals a record and, only on ack, applies it to the
// instance: the in-memory state is exactly the acked journal.
func (o *Orchestrator) append(inst *Instance, r Record) error {
	if err := o.journal.append(r); err != nil {
		return err
	}
	inst.addRecord(r)
	return nil
}

// drive runs one instance as far as it can go on this incarnation:
// forward execution (with replay) unless a fault is already committed,
// then compensation, then the terminal record.
func (o *Orchestrator) drive(ctx context.Context, inst *Instance, wf *Workflow) (Result, error) {
	inst.mu.Lock()
	if inst.running {
		inst.mu.Unlock()
		return Result{ID: inst.id, Status: StatusPending}, fmt.Errorf("workflow: instance %q is already running", inst.id)
	}
	inst.running = true
	inst.mu.Unlock()
	defer func() {
		inst.mu.Lock()
		inst.running = false
		inst.mu.Unlock()
	}()

	jr := newJournalRun(o, inst)
	if !inst.faultCommitted() {
		inst.mu.Lock()
		init := inst.init
		inst.mu.Unlock()
		st := &State{Vars: NewVars(init), trace: &Trace{}, jr: jr}
		err := exec(ctx, wf.Root, st)
		switch {
		case err == nil:
			if aerr := o.append(inst, Record{Inst: inst.id, Kind: recEnd, Status: StatusCompleted}); aerr != nil {
				return o.pendingResult(inst, aerr), aerr
			}
			inst.mu.Lock()
			inst.final = st.Vars.Snapshot()
			inst.mu.Unlock()
			o.maybeSnapshot()
			return Result{ID: inst.id, Status: StatusCompleted, Vars: st.Vars.Snapshot()}, nil
		case errors.Is(err, ErrJournal), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Nothing was committed past the last ack: stay pending.
			return o.pendingResult(inst, err), err
		default:
			// Activity fault: commit the instance to compensation. Once
			// this record is acked, no incarnation runs forward again.
			fault := Record{Inst: inst.id, Kind: recFault, Err: err.Error()}
			if aerr := o.append(inst, fault); aerr != nil {
				return o.pendingResult(inst, aerr), aerr
			}
		}
	}
	if err := o.compensate(ctx, inst); err != nil {
		return o.pendingResult(inst, err), err
	}
	_, faultErr := inst.currentStatus()
	end := Record{Inst: inst.id, Kind: recEnd, Status: StatusCompensated, Err: faultErr}
	if aerr := o.append(inst, end); aerr != nil {
		return o.pendingResult(inst, aerr), aerr
	}
	o.maybeSnapshot()
	return Result{ID: inst.id, Status: StatusCompensated, Err: faultErr}, nil
}

func (o *Orchestrator) pendingResult(inst *Instance, err error) Result {
	return Result{ID: inst.id, Status: StatusPending, Err: err.Error()}
}

// compensate runs the instance's registered compensations in LIFO
// order, skipping those already journaled as done by any incarnation.
// Each undo executes, then its comp-done record is appended: at-least-
// once execution, exactly-once journal — which is why compensators must
// be idempotent.
func (o *Orchestrator) compensate(ctx context.Context, inst *Instance) error {
	audit := inst.audit()
	// Compensation must be able to finish after the forward path was
	// canceled, so it runs detached from cancellation (request-scoped
	// values, including the virtual clock, continue to flow).
	cctx := context.WithoutCancel(ctx)
	applications := 1
	if o.opts.Mutation == MutationDoubleCompensate {
		applications = 2
	}
	for i := len(audit.Comps) - 1; i >= 0; i-- {
		c := audit.Comps[i]
		if audit.CompDones[c.ID] > 0 {
			continue
		}
		fn := o.compensator(c.Name)
		if fn == nil {
			return fmt.Errorf("workflow: instance %s: no compensator %q registered", inst.id, c.Name)
		}
		for n := 0; n < applications; n++ {
			if err := fn(cctx, c.Args); err != nil {
				return fmt.Errorf("workflow: instance %s: compensation %s: %w", inst.id, c.ID, err)
			}
			rec := Record{Inst: inst.id, Kind: recCompDone, Comp: c.ID}
			if err := o.append(inst, rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// maybeSnapshot folds the journal into a snapshot when enough appends
// accumulated. Best-effort: a failed snapshot (injected disk fault)
// just means compaction waits for the next opportunity.
func (o *Orchestrator) maybeSnapshot() {
	if o.opts.SnapshotEvery <= 0 {
		return
	}
	if o.journal.appendsSinceSnapshot() < o.opts.SnapshotEvery {
		return
	}
	snap := snapshotState{}
	for _, id := range o.Instances() {
		in := o.lookup(id)
		if in == nil {
			continue
		}
		snap.Instances = append(snap.Instances, snapshotInstance{ID: id, Records: in.snapshotRecords()})
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return
	}
	//soclint:ignore errdiscard snapshotting is opportunistic compaction; a faulted disk write leaves the journal authoritative and the next ack retries
	_ = o.journal.snapshot(data)
}
