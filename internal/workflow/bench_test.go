package workflow

import (
	"context"
	"fmt"
	"testing"

	"soc/internal/wal"
)

// BenchmarkWorkflowJournalAppend measures the hot journaling path — JSON
// encode plus a durable WAL append over the deterministic in-memory disk,
// so allocs/op is exact and gated in CI.
func BenchmarkWorkflowJournalAppend(b *testing.B) {
	fs := wal.NewMemFS(7)
	log, _, err := wal.Open(fs, wal.Options{SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	j := &journal{log: log}
	rec := Record{
		Inst:    "wf-bench",
		Kind:    recDone,
		Key:     "/saga#0/fill#0/i1/add#0",
		Service: "ShoppingCart",
		Op:      "AddItem",
		Effects: map[string]any{"items": float64(3), "total": 129.95},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkflowInstanceComplete measures one whole orchestrated
// instance end to end: begin record, every step journaled before its
// effect, terminal record — the per-instance cost a driver pays.
func BenchmarkWorkflowInstanceComplete(b *testing.B) {
	inv := newStubInvoker()
	fs := wal.NewMemFS(7)
	o, err := OpenOrchestrator(fs, Options{
		Deterministic: true,
		SnapshotEvery: -1,
		WAL:           wal.Options{SegmentBytes: 1 << 30},
	})
	if err != nil {
		b.Fatal(err)
	}
	wf, err := New("everything", everythingRoot(inv))
	if err != nil {
		b.Fatal(err)
	}
	o.Define(wf)
	for _, name := range []string{"release", "uncommit", "log-undo"} {
		o.DefineCompensator(name, inv.compensator(name))
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := o.Start(ctx, fmt.Sprintf("wf-%06d", i), "everything", initVars())
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != StatusCompleted {
			b.Fatalf("instance %d: %s", i, res.Status)
		}
	}
}
