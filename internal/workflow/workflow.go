// Package workflow is the service-composition engine corresponding to the
// courses' VPL and BPEL units: applications are built by wiring existing
// services into control-flow graphs (sequence, parallel split/join,
// choice, loops, event picks) over a shared variable scope, with
// fault and compensation handlers — "generating executables directly from
// the flowchart", as the paper's keynote puts it.
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"soc/internal/telemetry"
)

// ErrDefinition reports an invalid workflow definition.
var ErrDefinition = errors.New("workflow: invalid definition")

// ErrFaulted reports a workflow that ended in an unhandled fault.
var ErrFaulted = errors.New("workflow: faulted")

// Vars is the shared variable scope of a workflow instance. Access is
// synchronized so parallel branches may read and write concurrently.
//
// A Vars may be an overlay (parent non-nil): reads fall through to the
// parent on a local miss, writes stay local. The journaled executor
// runs each leaf step against an overlay so its effects can be
// journaled before they land in the instance scope.
type Vars struct {
	mu     sync.RWMutex
	m      map[string]any
	parent *Vars
}

// NewVars returns a scope seeded with init (may be nil).
func NewVars(init map[string]any) *Vars {
	v := &Vars{m: make(map[string]any)}
	for k, val := range init {
		v.m[k] = val
	}
	return v
}

// Get reads a variable.
func (v *Vars) Get(key string) (any, bool) {
	v.mu.RLock()
	val, ok := v.m[key]
	parent := v.parent
	v.mu.RUnlock()
	if !ok && parent != nil {
		return parent.Get(key)
	}
	return val, ok
}

// GetString reads a variable as a string (zero value when absent).
func (v *Vars) GetString(key string) string {
	val, _ := v.Get(key)
	s, _ := val.(string)
	return s
}

// GetInt reads a variable as an int64, converting float64 and int.
func (v *Vars) GetInt(key string) int64 {
	val, _ := v.Get(key)
	switch x := val.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case float64:
		return int64(x)
	}
	return 0
}

// GetBool reads a variable as a bool.
func (v *Vars) GetBool(key string) bool {
	val, _ := v.Get(key)
	b, _ := val.(bool)
	return b
}

// Set writes a variable.
func (v *Vars) Set(key string, val any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.m[key] = val
}

// Snapshot copies the scope (parent layers included for overlays, with
// local writes winning).
func (v *Vars) Snapshot() map[string]any {
	v.mu.RLock()
	parent := v.parent
	local := make(map[string]any, len(v.m))
	for k, val := range v.m {
		local[k] = val
	}
	v.mu.RUnlock()
	if parent == nil {
		return local
	}
	out := parent.Snapshot()
	for k, val := range local {
		out[k] = val
	}
	return out
}

// Activity is a node of the workflow graph.
type Activity interface {
	// Name identifies the activity in traces.
	Name() string
	// Execute runs the activity against the instance state.
	Execute(ctx context.Context, st *State) error
}

// State is the execution state of one workflow instance. In a
// journaled run it additionally carries the journal context and the
// activity path that step keys are derived from.
type State struct {
	Vars  *Vars
	trace *Trace
	jr    *journalRun
	path  string
}

// scoped returns a copy of the state with the given activity path —
// how composites give branches and iterations distinct key namespaces.
func (st *State) scoped(path string) *State {
	return &State{Vars: st.Vars, trace: st.trace, jr: st.jr, path: path}
}

// withVars returns a copy of the state bound to a different scope
// (the journaled executor's effect overlay).
func (st *State) withVars(v *Vars) *State {
	return &State{Vars: v, trace: st.trace, jr: st.jr, path: st.path}
}

// branchScope extends the path for branch/iteration i of a fan-out
// composite. Outside a journaled run paths are irrelevant and the
// state is returned unchanged.
func (st *State) branchScope(prefix string, i int) *State {
	if st.jr == nil {
		return st
	}
	return st.scoped(fmt.Sprintf("%s/%s%d", st.path, prefix, i))
}

// child builds the state for an isolated-scope child (parallel ForEach
// iterations), preserving the journal context and extending the path.
func (st *State) child(prefix string, i int, vars *Vars) *State {
	c := st.branchScope(prefix, i)
	return &State{Vars: vars, trace: c.trace, jr: c.jr, path: c.path}
}

// sequential reports whether fan-out composites must run their
// branches in definition order (deterministic journaled mode).
func (st *State) sequential() bool { return st.jr != nil && st.jr.seq }

// Trace records executed activities in order.
type Trace struct {
	mu      sync.Mutex
	Entries []TraceEntry
}

// TraceEntry is one trace record.
type TraceEntry struct {
	Activity string
	Start    time.Time
	Elapsed  time.Duration
	Err      string
	// Replayed marks a step skipped by journal replay: its effects were
	// applied from the done record, the activity did not run again.
	Replayed bool
}

func (t *Trace) add(e TraceEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Entries = append(t.Entries, e)
}

// Names returns the executed activity names in order.
func (t *Trace) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.Activity
	}
	return out
}

// Workflow is a named, validated activity graph.
type Workflow struct {
	Name string
	Root Activity
}

// New builds a workflow after validating the graph.
func New(name string, root Activity) (*Workflow, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrDefinition)
	}
	if root == nil {
		return nil, fmt.Errorf("%w: nil root", ErrDefinition)
	}
	if err := validate(root, map[Activity]bool{}); err != nil {
		return nil, err
	}
	return &Workflow{Name: name, Root: root}, nil
}

type children interface{ Children() []Activity }

func validate(a Activity, onPath map[Activity]bool) error {
	if a == nil {
		return fmt.Errorf("%w: nil activity", ErrDefinition)
	}
	if onPath[a] {
		return fmt.Errorf("%w: cycle through %q", ErrDefinition, a.Name())
	}
	if v, ok := a.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return err
		}
	}
	if c, ok := a.(children); ok {
		onPath[a] = true
		for _, child := range c.Children() {
			if err := validate(child, onPath); err != nil {
				return err
			}
		}
		delete(onPath, a)
	}
	return nil
}

// Run executes the workflow with the given initial variables, returning
// the final scope and the execution trace.
func (w *Workflow) Run(ctx context.Context, init map[string]any) (map[string]any, *Trace, error) {
	st := &State{Vars: NewVars(init), trace: &Trace{}}
	err := exec(ctx, w.Root, st)
	if err != nil {
		return st.Vars.Snapshot(), st.trace, fmt.Errorf("%w: %v", ErrFaulted, err)
	}
	return st.Vars.Snapshot(), st.trace, nil
}

// exec runs one activity: through the journal in an orchestrated run,
// directly otherwise.
func exec(ctx context.Context, a Activity, st *State) error {
	if st.jr != nil {
		return st.jr.exec(ctx, a, st)
	}
	return plainExec(ctx, a, st)
}

// plainExec runs one activity with tracing: the workflow's own TraceEntry
// log, plus — when a tracer rides the context — a child span per activity,
// so composed sub-invocations nest under their activity in the trace tree.
func plainExec(ctx context.Context, a Activity, st *State) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sp, ctx := telemetry.StartSpanFromContext(ctx, telemetry.KindWorkflow, a.Name())
	start := time.Now()
	err := a.Execute(ctx, st)
	sp.EndErr(err)
	entry := TraceEntry{Activity: a.Name(), Start: start, Elapsed: time.Since(start)}
	if err != nil {
		entry.Err = err.Error()
	}
	st.trace.add(entry)
	return err
}
