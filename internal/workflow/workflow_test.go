package workflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func task(name string, fn func(v *Vars)) *Task {
	return &Task{Label: name, Fn: func(_ context.Context, v *Vars) error {
		if fn != nil {
			fn(v)
		}
		return nil
	}}
}

func failing(name, msg string) *Task {
	return &Task{Label: name, Fn: func(context.Context, *Vars) error {
		return errors.New(msg)
	}}
}

func TestSequenceRunsInOrder(t *testing.T) {
	var order []string
	wf, err := New("seq", &Sequence{Label: "main", Steps: []Activity{
		task("a", func(*Vars) { order = append(order, "a") }),
		task("b", func(*Vars) { order = append(order, "b") }),
		task("c", func(*Vars) { order = append(order, "c") }),
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := wf.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "abc" {
		t.Errorf("order = %v", order)
	}
	names := trace.Names()
	if len(names) != 4 || names[3] != "main" {
		t.Errorf("trace = %v", names)
	}
}

func TestSequenceStopsOnFault(t *testing.T) {
	ran := false
	wf, _ := New("seq", &Sequence{Label: "main", Steps: []Activity{
		failing("bad", "kaput"),
		task("never", func(*Vars) { ran = true }),
	}})
	_, _, err := wf.Run(context.Background(), nil)
	if !errors.Is(err, ErrFaulted) || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("err = %v", err)
	}
	if ran {
		t.Error("activity after fault ran")
	}
}

func TestVarsAndAssign(t *testing.T) {
	wf, _ := New("calc", &Sequence{Label: "main", Steps: []Activity{
		&Assign{Label: "init", Var: "x", Expr: func(*Vars) any { return int64(10) }},
		&Assign{Label: "double", Var: "x", Expr: func(v *Vars) any { return v.GetInt("x") * 2 }},
		&Assign{Label: "msg", Var: "msg", Expr: func(v *Vars) any { return fmt.Sprintf("x=%d", v.GetInt("x")) }},
	}})
	out, _, err := wf.Run(context.Background(), map[string]any{"seed": true})
	if err != nil {
		t.Fatal(err)
	}
	if out["x"] != int64(20) || out["msg"] != "x=20" || out["seed"] != true {
		t.Errorf("out = %v", out)
	}
}

func TestParallelJoin(t *testing.T) {
	var count int32
	branches := make([]Activity, 8)
	for i := range branches {
		branches[i] = task(fmt.Sprintf("b%d", i), func(*Vars) { atomic.AddInt32(&count, 1) })
	}
	wf, _ := New("par", &Parallel{Label: "split", Branches: branches})
	_, _, err := wf.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Errorf("count = %d", count)
	}
}

func TestParallelFaultCancelsSiblings(t *testing.T) {
	slowCancelled := make(chan bool, 1)
	wf, _ := New("par", &Parallel{Label: "split", Branches: []Activity{
		failing("bad", "branch fault"),
		&Task{Label: "slow", Fn: func(ctx context.Context, _ *Vars) error {
			select {
			case <-ctx.Done():
				slowCancelled <- true
				return ctx.Err()
			case <-time.After(5 * time.Second):
				slowCancelled <- false
				return nil
			}
		}},
	}})
	_, _, err := wf.Run(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "branch fault") {
		t.Errorf("err = %v", err)
	}
	if !<-slowCancelled {
		t.Error("sibling branch not cancelled")
	}
}

func TestIfBranches(t *testing.T) {
	mk := func() *Workflow {
		wf, _ := New("if", &If{
			Label: "check",
			Cond:  func(v *Vars) bool { return v.GetBool("flag") },
			Then:  &Assign{Label: "t", Var: "result", Expr: func(*Vars) any { return "then" }},
			Else:  &Assign{Label: "e", Var: "result", Expr: func(*Vars) any { return "else" }},
		})
		return wf
	}
	out, _, _ := mk().Run(context.Background(), map[string]any{"flag": true})
	if out["result"] != "then" {
		t.Errorf("then branch: %v", out["result"])
	}
	out, _, _ = mk().Run(context.Background(), map[string]any{"flag": false})
	if out["result"] != "else" {
		t.Errorf("else branch: %v", out["result"])
	}
}

func TestIfWithoutElse(t *testing.T) {
	wf, _ := New("if", &If{
		Label: "check",
		Cond:  func(*Vars) bool { return false },
		Then:  failing("no", "never"),
	})
	if _, _, err := wf.Run(context.Background(), nil); err != nil {
		t.Errorf("err = %v", err)
	}
}

func TestWhileLoop(t *testing.T) {
	wf, _ := New("loop", &Sequence{Label: "main", Steps: []Activity{
		&Assign{Label: "init", Var: "i", Expr: func(*Vars) any { return int64(0) }},
		&While{
			Label: "count",
			Cond:  func(v *Vars) bool { return v.GetInt("i") < 5 },
			Body:  &Assign{Label: "inc", Var: "i", Expr: func(v *Vars) any { return v.GetInt("i") + 1 }},
		},
	}})
	out, _, err := wf.Run(context.Background(), nil)
	if err != nil || out["i"] != int64(5) {
		t.Errorf("i = %v err = %v", out["i"], err)
	}
}

func TestWhileIterationBound(t *testing.T) {
	wf, _ := New("loop", &While{
		Label:         "forever",
		Cond:          func(*Vars) bool { return true },
		Body:          task("noop", nil),
		MaxIterations: 10,
	})
	_, _, err := wf.Run(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("err = %v", err)
	}
}

func TestInvokeMapsInputsAndOutputs(t *testing.T) {
	var gotArgs map[string]any
	inv := InvokerFunc(func(_ context.Context, svc, op string, args map[string]any) (map[string]any, error) {
		gotArgs = args
		if svc != "Calc" || op != "Add" {
			return nil, fmt.Errorf("unexpected target %s.%s", svc, op)
		}
		return map[string]any{"sum": args["a"].(int64) + args["b"].(int64)}, nil
	})
	wf, _ := New("invoke", &Invoke{
		Label: "add", Service: "Calc", Operation: "Add", Invoker: inv,
		Inputs:  map[string]string{"a": "x", "b": "y"},
		Outputs: map[string]string{"sum": "total"},
	})
	out, _, err := wf.Run(context.Background(), map[string]any{"x": int64(2), "y": int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if out["total"] != int64(5) {
		t.Errorf("total = %v", out["total"])
	}
	if gotArgs["a"] != int64(2) {
		t.Errorf("args = %v", gotArgs)
	}
}

func TestInvokeFault(t *testing.T) {
	inv := InvokerFunc(func(context.Context, string, string, map[string]any) (map[string]any, error) {
		return nil, errors.New("remote down")
	})
	wf, _ := New("invoke", &Invoke{Label: "call", Service: "S", Operation: "Op", Invoker: inv})
	_, _, err := wf.Run(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "remote down") {
		t.Errorf("err = %v", err)
	}
}

func TestPickFirstEventWins(t *testing.T) {
	fast := func(ctx context.Context) <-chan any {
		ch := make(chan any, 1)
		ch <- "payload"
		return ch
	}
	slow := func(ctx context.Context) <-chan any {
		return make(chan any) // never fires
	}
	wf, _ := New("pick", &Pick{
		Label: "race",
		Events: []PickBranch{
			{Wait: slow, Then: &Assign{Label: "s", Var: "winner", Expr: func(*Vars) any { return "slow" }}},
			{Wait: fast, Var: "evt", Then: &Assign{Label: "f", Var: "winner", Expr: func(*Vars) any { return "fast" }}},
		},
	})
	out, _, err := wf.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["winner"] != "fast" || out["evt"] != "payload" {
		t.Errorf("out = %v", out)
	}
}

func TestPickTimeout(t *testing.T) {
	never := func(ctx context.Context) <-chan any { return make(chan any) }
	wf, _ := New("pick", &Pick{
		Label:    "wait",
		Events:   []PickBranch{{Wait: never, Then: task("n", nil)}},
		Timeout:  10 * time.Millisecond,
		OnExpire: &Assign{Label: "to", Var: "expired", Expr: func(*Vars) any { return true }},
	})
	out, _, err := wf.Run(context.Background(), nil)
	if err != nil || out["expired"] != true {
		t.Errorf("out = %v err = %v", out, err)
	}
	// Without OnExpire a timeout is a fault.
	wf2, _ := New("pick2", &Pick{
		Label:   "wait2",
		Events:  []PickBranch{{Wait: never, Then: task("n", nil)}},
		Timeout: 10 * time.Millisecond,
	})
	if _, _, err := wf2.Run(context.Background(), nil); err == nil {
		t.Error("timeout without handler did not fault")
	}
}

func TestScopeFaultHandler(t *testing.T) {
	wf, _ := New("scope", &Scope{
		Label: "guarded",
		Body:  failing("bad", "inner fault"),
		OnFault: &Assign{Label: "handle", Var: "handled", Expr: func(v *Vars) any {
			return v.GetString("fault.guarded")
		}},
	})
	out, _, err := wf.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("handled fault escaped: %v", err)
	}
	if !strings.Contains(out["handled"].(string), "inner fault") {
		t.Errorf("handled = %v", out["handled"])
	}
}

func TestScopeCompensationLIFO(t *testing.T) {
	var undone []string
	body := &Sequence{Label: "book", Steps: []Activity{
		task("reserveFlight", func(v *Vars) {
			RegisterCompensation(v, "trip", func(context.Context) error {
				undone = append(undone, "flight")
				return nil
			})
		}),
		task("reserveHotel", func(v *Vars) {
			RegisterCompensation(v, "trip", func(context.Context) error {
				undone = append(undone, "hotel")
				return nil
			})
		}),
		failing("payment", "card declined"),
	}}
	wf, _ := New("saga", &Scope{Label: "trip", Body: body})
	_, _, err := wf.Run(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "card declined") {
		t.Errorf("err = %v", err)
	}
	if strings.Join(undone, ",") != "hotel,flight" {
		t.Errorf("compensation order = %v", undone)
	}
}

func TestScopeCompensationFailure(t *testing.T) {
	body := &Sequence{Label: "b", Steps: []Activity{
		task("step", func(v *Vars) {
			RegisterCompensation(v, "sc", func(context.Context) error { return errors.New("undo broke") })
		}),
		failing("bad", "original"),
	}}
	wf, _ := New("saga", &Scope{Label: "sc", Body: body})
	_, _, err := wf.Run(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "undo broke") || !strings.Contains(err.Error(), "original") {
		t.Errorf("err = %v", err)
	}
}

func TestDefinitionValidation(t *testing.T) {
	cases := []struct {
		name string
		root Activity
	}{
		{"nil root", nil},
		{"unnamed task", &Task{Fn: func(context.Context, *Vars) error { return nil }}},
		{"task without fn", &Task{Label: "x"}},
		{"empty sequence", &Sequence{Label: "s"}},
		{"if without cond", &If{Label: "i", Then: task("t", nil)}},
		{"invoke without invoker", &Invoke{Label: "i", Service: "s", Operation: "o"}},
		{"nested invalid", &Sequence{Label: "s", Steps: []Activity{&Task{Label: "bad"}}}},
		{"pick empty", &Pick{Label: "p"}},
		{"scope without body", &Scope{Label: "sc"}},
		{"negative delay", &Delay{Label: "d", D: -1}},
	}
	for _, c := range cases {
		if _, err := New("w", c.root); !errors.Is(err, ErrDefinition) {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
	if _, err := New("", task("t", nil)); !errors.Is(err, ErrDefinition) {
		t.Error("empty workflow name accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	seq := &Sequence{Label: "loop"}
	seq.Steps = []Activity{seq}
	if _, err := New("w", seq); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v", err)
	}
}

func TestSharedActivityIsNotACycle(t *testing.T) {
	shared := task("shared", nil)
	wf, err := New("w", &Sequence{Label: "main", Steps: []Activity{shared, shared}})
	if err != nil {
		t.Fatalf("diamond reuse rejected: %v", err)
	}
	if _, _, err := wf.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	wf, _ := New("w", task("t", nil))
	if _, _, err := wf.Run(ctx, nil); err == nil {
		t.Error("canceled run succeeded")
	}
}

func TestDelay(t *testing.T) {
	wf, _ := New("w", &Delay{Label: "nap", D: 5 * time.Millisecond})
	start := time.Now()
	if _, _, err := wf.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("delay too short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	wf2, _ := New("w2", &Delay{Label: "long", D: 5 * time.Second})
	if _, _, err := wf2.Run(ctx, nil); err == nil {
		t.Error("cancellation ignored")
	}
}

func TestTraceRecordsErrors(t *testing.T) {
	wf, _ := New("w", failing("bad", "oops"))
	_, trace, _ := wf.Run(context.Background(), nil)
	if len(trace.Entries) != 1 || trace.Entries[0].Err != "oops" {
		t.Errorf("trace = %+v", trace.Entries)
	}
}
