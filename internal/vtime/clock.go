package vtime

import (
	"context"
	"sync"
	"time"
)

// Clock is the time source the dependability stack consults for every
// timestamp, sleep and deadline: reliability backoffs and breaker
// cooldowns, respcache TTLs, and injected fault latencies all go through
// one of these instead of the time package directly. The default is the
// wall clock (Real); the deterministic simulation harness (soc/internal/
// simtest) substitutes a Virtual clock so whole multi-host scenarios run
// with no real waiting and replay byte-for-byte from a seed.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock or ctx is done,
	// returning the context's error when interrupted. d <= 0 returns
	// ctx.Err() immediately.
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives a context that expires after d on this clock.
	// Callers must call the cancel function, exactly as with
	// context.WithTimeout.
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// Real is the wall clock: Now is time.Now, Sleep waits on a timer, and
// WithTimeout is context.WithTimeout. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
//
//soclint:ignore clockdiscipline Real is the wall-clock Clock implementation; this is the one sanctioned time.Now site
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	//soclint:ignore clockdiscipline Real is the wall-clock Clock implementation; this is the one sanctioned timer site
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WithTimeout implements Clock.
func (Real) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d)
}

// Synchronous marks clocks whose Sleep never blocks a goroutine: time
// advances logically inside the call. Layers that would otherwise spawn
// a watchdog goroutine (reliability.WithTimeout) stay single-threaded —
// and therefore deterministic — when the context's clock reports
// synchronous.
type Synchronous interface {
	Synchronous() bool
}

// IsSynchronous reports whether c advances time logically (see
// Synchronous).
func IsSynchronous(c Clock) bool {
	s, ok := c.(Synchronous)
	return ok && s.Synchronous()
}

// Virtual is a discrete virtual clock: Now returns a logical instant
// that only moves when Advance or Sleep is called. Sleeping advances the
// clock immediately and returns — no goroutine ever blocks — so a
// simulation using it is both instant and deterministic. Virtual
// deadlines (WithTimeout) are carried as context values; Sleep clamps to
// them and returns context.DeadlineExceeded, which is how timeouts fire
// in simulated time. Safe for concurrent use, though deterministic
// replay additionally requires single-threaded stepping.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock reading start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// advanceTo moves the clock forward to t; it never moves backwards.
func (v *Virtual) advanceTo(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}

// Synchronous implements the Synchronous marker.
func (v *Virtual) Synchronous() bool { return true }

// Sleep implements Clock: it advances the virtual clock by d and returns
// immediately. When the context carries a virtual deadline that would be
// crossed, the clock stops at the deadline and Sleep reports
// context.DeadlineExceeded.
func (v *Virtual) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	if dl, ok := DeadlineOf(ctx); ok {
		if target := v.Now().Add(d); target.After(dl) {
			v.advanceTo(dl)
			return context.DeadlineExceeded
		}
	}
	v.Advance(d)
	return nil
}

// WithTimeout implements Clock by stamping a virtual deadline into the
// context (keeping any earlier one). The returned cancel is a no-op: a
// virtual deadline holds no resources.
func (v *Virtual) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	dl := v.Now().Add(d)
	if cur, ok := DeadlineOf(ctx); ok && cur.Before(dl) {
		dl = cur
	}
	return context.WithValue(ctx, deadlineKey{}, dl), func() {}
}

type (
	clockKey    struct{}
	deadlineKey struct{}
)

// WithClock returns a context carrying c; everything downstream that
// consults ClockFrom — retry backoffs, fault latencies, cache TTLs —
// runs on it.
func WithClock(ctx context.Context, c Clock) context.Context {
	return context.WithValue(ctx, clockKey{}, c)
}

// ClockFrom returns the context's clock, defaulting to the wall clock.
func ClockFrom(ctx context.Context) Clock {
	if c, ok := ctx.Value(clockKey{}).(Clock); ok && c != nil {
		return c
	}
	return Real{}
}

// Now is shorthand for ClockFrom(ctx).Now().
func Now(ctx context.Context) time.Time { return ClockFrom(ctx).Now() }

// Sleep is shorthand for ClockFrom(ctx).Sleep(ctx, d).
func Sleep(ctx context.Context, d time.Duration) error {
	return ClockFrom(ctx).Sleep(ctx, d)
}

// DeadlineOf returns the context's effective deadline: the virtual one
// stamped by Virtual.WithTimeout if present, else the context's own.
func DeadlineOf(ctx context.Context) (time.Time, bool) {
	if dl, ok := ctx.Value(deadlineKey{}).(time.Time); ok {
		return dl, true
	}
	return ctx.Deadline()
}

// Expired reports context.DeadlineExceeded when the context carries a
// virtual deadline that clock c has already passed, nil otherwise. The
// synchronous timeout path of reliability.WithTimeout uses it to convert
// "the work ran past the budget in virtual time" into the same error a
// wall-clock deadline would have produced.
func Expired(ctx context.Context, c Clock) error {
	if dl, ok := ctx.Value(deadlineKey{}).(time.Time); ok && !c.Now().Before(dl) {
		return context.DeadlineExceeded
	}
	return nil
}
