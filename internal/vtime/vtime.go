// Package vtime is a deterministic virtual-time many-core executor. The
// paper's Figure 3 measures Collatz validation on the Intel Manycore
// Testing Lab from 1 to 32 physical cores; this host has far fewer, so we
// reproduce the experiment's *shape* by scheduling cost-annotated tasks
// onto P virtual cores with a greedy list scheduler and an explicit
// synchronization-overhead model. Virtual makespan plays the role of wall
// time: speedup = T(1)/T(P), efficiency = speedup/P, exactly the metrics
// the figure plots.
//
// The model charges three costs, all in abstract "work units":
//
//   - the task's own cost;
//   - a per-task dispatch overhead (lock handoff / queue pop), paid
//     serially on the dispatching core's timeline, which caps scalability
//     the way a shared work queue does;
//   - a per-core startup cost (thread spawn), paid once per core.
//
// With zero overheads the executor reproduces ideal LPT-style scheduling;
// with realistic overheads efficiency decays as core count grows, which is
// the curve the paper reports.
package vtime

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadConfig reports an invalid executor configuration.
var ErrBadConfig = errors.New("vtime: invalid configuration")

// Task is a unit of work with a known cost in abstract work units.
type Task struct {
	// ID identifies the task in traces.
	ID int
	// Cost is the task's execution cost; must be positive.
	Cost int64
}

// Config tunes the cost model.
type Config struct {
	// DispatchOverhead is charged serially for every task handed to a
	// core, modeling contention on a shared ready queue.
	DispatchOverhead int64
	// CoreStartup is charged once per core before it runs any task,
	// modeling thread creation.
	CoreStartup int64
	// SerialWork is charged once per run regardless of core count,
	// modeling the program's inherently sequential portion (input
	// preparation, final reduction) — the Amdahl term.
	SerialWork int64
}

// Result reports the outcome of a virtual execution.
type Result struct {
	// Cores is the number of virtual cores used.
	Cores int
	// Makespan is the virtual finish time of the last core.
	Makespan int64
	// PerCoreBusy is the busy time of each core (excluding idle tail).
	PerCoreBusy []int64
	// TasksPerCore counts tasks assigned to each core.
	TasksPerCore []int
}

// Executor schedules tasks onto virtual cores.
type Executor struct {
	cfg Config
}

// NewExecutor returns an executor with the given cost model.
func NewExecutor(cfg Config) (*Executor, error) {
	if cfg.DispatchOverhead < 0 || cfg.CoreStartup < 0 || cfg.SerialWork < 0 {
		return nil, fmt.Errorf("%w: negative overhead", ErrBadConfig)
	}
	return &Executor{cfg: cfg}, nil
}

// Run schedules tasks onto p virtual cores using a greedy earliest-
// available-core policy over the task list in order, which models a shared
// FIFO work queue: each dispatch serializes on the queue, then the task
// runs on the core that becomes free first.
func (e *Executor) Run(tasks []Task, p int) (Result, error) {
	if p <= 0 {
		return Result{}, fmt.Errorf("%w: cores=%d", ErrBadConfig, p)
	}
	for _, t := range tasks {
		if t.Cost <= 0 {
			return Result{}, fmt.Errorf("%w: task %d has cost %d", ErrBadConfig, t.ID, t.Cost)
		}
	}
	coreFree := make([]int64, p)
	busy := make([]int64, p)
	counts := make([]int, p)
	for i := range coreFree {
		coreFree[i] = e.cfg.CoreStartup
	}
	// queueFree is the virtual time at which the shared dispatch queue
	// next becomes available; every dispatch occupies it for
	// DispatchOverhead units.
	var queueFree int64
	for _, t := range tasks {
		// Pick the earliest-free core (ties to the lowest index).
		best := 0
		for c := 1; c < p; c++ {
			if coreFree[c] < coreFree[best] {
				best = c
			}
		}
		start := coreFree[best]
		if start < queueFree {
			start = queueFree
		}
		queueFree = start + e.cfg.DispatchOverhead
		end := start + e.cfg.DispatchOverhead + t.Cost
		coreFree[best] = end
		busy[best] += e.cfg.DispatchOverhead + t.Cost
		counts[best]++
	}
	var makespan int64
	for c := 0; c < p; c++ {
		if coreFree[c] > makespan {
			makespan = coreFree[c]
		}
	}
	if len(tasks) == 0 {
		makespan = 0
	} else {
		makespan += e.cfg.SerialWork
	}
	return Result{Cores: p, Makespan: makespan, PerCoreBusy: busy, TasksPerCore: counts}, nil
}

// RunLPT schedules tasks with the Longest-Processing-Time-first heuristic
// (sorted by descending cost) — the "good static schedule" baseline taught
// alongside dynamic scheduling.
func (e *Executor) RunLPT(tasks []Task, p int) (Result, error) {
	sorted := make([]Task, len(tasks))
	copy(sorted, tasks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cost > sorted[j].Cost })
	return e.Run(sorted, p)
}

// ScalingPoint is one (cores, makespan, speedup, efficiency) row.
type ScalingPoint struct {
	Cores      int
	Makespan   int64
	Speedup    float64
	Efficiency float64
}

// Scaling runs the same task set at every core count and derives speedup
// and efficiency relative to the 1-core makespan.
func (e *Executor) Scaling(tasks []Task, cores []int) ([]ScalingPoint, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("%w: no core counts", ErrBadConfig)
	}
	base, err := e.Run(tasks, 1)
	if err != nil {
		return nil, err
	}
	if base.Makespan == 0 {
		return nil, fmt.Errorf("%w: empty task set", ErrBadConfig)
	}
	points := make([]ScalingPoint, len(cores))
	for i, p := range cores {
		r, err := e.Run(tasks, p)
		if err != nil {
			return nil, err
		}
		s := float64(base.Makespan) / float64(r.Makespan)
		points[i] = ScalingPoint{Cores: p, Makespan: r.Makespan, Speedup: s, Efficiency: s / float64(p)}
	}
	return points, nil
}
