package vtime

import (
	"testing"
	"testing/quick"
)

func uniformTasks(n int, cost int64) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = Task{ID: i, Cost: cost}
	}
	return ts
}

func TestSingleCoreMakespanIsTotalWork(t *testing.T) {
	e, err := NewExecutor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(uniformTasks(10, 5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 50 {
		t.Errorf("makespan = %d, want 50", r.Makespan)
	}
	if r.TasksPerCore[0] != 10 {
		t.Errorf("tasks on core 0 = %d", r.TasksPerCore[0])
	}
}

func TestIdealLinearSpeedupWithoutOverhead(t *testing.T) {
	e, _ := NewExecutor(Config{})
	pts, err := e.Scaling(uniformTasks(320, 10), []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Speedup != float64(pt.Cores) {
			t.Errorf("cores=%d speedup=%v, want %d (uniform tasks divide evenly)", pt.Cores, pt.Speedup, pt.Cores)
		}
		if pt.Efficiency != 1 {
			t.Errorf("cores=%d efficiency=%v, want 1", pt.Cores, pt.Efficiency)
		}
	}
}

func TestOverheadDegradesEfficiency(t *testing.T) {
	e, _ := NewExecutor(Config{DispatchOverhead: 2, CoreStartup: 100})
	pts, err := e.Scaling(uniformTasks(1000, 20), []int{1, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	// Speedup must rise monotonically but efficiency must fall: the
	// shape of the paper's Figure 3.
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup < pts[i-1].Speedup {
			t.Errorf("speedup not monotone: %v then %v", pts[i-1], pts[i])
		}
		if pts[i].Efficiency >= pts[i-1].Efficiency {
			t.Errorf("efficiency not declining: %v then %v", pts[i-1], pts[i])
		}
	}
	last := pts[len(pts)-1]
	if last.Speedup >= float64(last.Cores) {
		t.Errorf("32-core speedup %v should be sub-linear under overhead", last.Speedup)
	}
	if last.Speedup < 2 {
		t.Errorf("32-core speedup %v collapsed entirely", last.Speedup)
	}
}

func TestRunValidation(t *testing.T) {
	e, _ := NewExecutor(Config{})
	if _, err := e.Run(uniformTasks(1, 1), 0); err == nil {
		t.Error("cores=0 accepted")
	}
	if _, err := e.Run([]Task{{ID: 0, Cost: 0}}, 1); err == nil {
		t.Error("zero-cost task accepted")
	}
	if _, err := NewExecutor(Config{DispatchOverhead: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestEmptyTaskSet(t *testing.T) {
	e, _ := NewExecutor(Config{CoreStartup: 7})
	r, err := e.Run(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 0 {
		t.Errorf("empty makespan = %d", r.Makespan)
	}
	if _, err := e.Scaling(nil, []int{1, 2}); err == nil {
		t.Error("Scaling on empty task set accepted")
	}
}

func TestLPTNoWorseOnSkewedLoad(t *testing.T) {
	e, _ := NewExecutor(Config{})
	// One giant task plus many small ones: FIFO order with the giant
	// task last produces a bad schedule; LPT fixes it.
	tasks := uniformTasks(31, 10)
	tasks = append(tasks, Task{ID: 99, Cost: 300})
	fifo, err := e.Run(tasks, 4)
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := e.RunLPT(tasks, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lpt.Makespan > fifo.Makespan {
		t.Errorf("LPT makespan %d worse than FIFO %d", lpt.Makespan, fifo.Makespan)
	}
	if lpt.Makespan < 300 {
		t.Errorf("LPT makespan %d below critical path 300", lpt.Makespan)
	}
}

func TestMakespanLowerBoundProperty(t *testing.T) {
	// Property: makespan >= total work / p and >= max task cost,
	// for any task multiset (no overheads).
	e, _ := NewExecutor(Config{})
	prop := func(costs []uint8, pRaw uint8) bool {
		p := int(pRaw%16) + 1
		var tasks []Task
		var total, maxc int64
		for i, c := range costs {
			cost := int64(c%50) + 1
			tasks = append(tasks, Task{ID: i, Cost: cost})
			total += cost
			if cost > maxc {
				maxc = cost
			}
		}
		r, err := e.Run(tasks, p)
		if err != nil {
			return false
		}
		if len(tasks) == 0 {
			return r.Makespan == 0
		}
		lb := total / int64(p)
		return r.Makespan >= lb && r.Makespan >= maxc && r.Makespan <= total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBusyConservationProperty(t *testing.T) {
	// Property: sum of per-core busy time == total task cost + n*dispatch.
	e, _ := NewExecutor(Config{DispatchOverhead: 3})
	prop := func(costs []uint8, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		var tasks []Task
		var total int64
		for i, c := range costs {
			cost := int64(c%50) + 1
			tasks = append(tasks, Task{ID: i, Cost: cost})
			total += cost
		}
		r, err := e.Run(tasks, p)
		if err != nil {
			return false
		}
		var busy int64
		var count int
		for i := range r.PerCoreBusy {
			busy += r.PerCoreBusy[i]
			count += r.TasksPerCore[i]
		}
		return busy == total+int64(len(tasks))*3 && count == len(tasks)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
