package vtime

import (
	"context"
	"errors"
	"testing"
	"time"
)

var epoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNowAndAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("fresh clock reads %v, want %v", v.Now(), epoch)
	}
	v.Advance(3 * time.Second)
	if got := v.Now().Sub(epoch); got != 3*time.Second {
		t.Fatalf("advanced %v, want 3s", got)
	}
	v.Advance(-time.Second) // time never goes backwards
	if got := v.Now().Sub(epoch); got != 3*time.Second {
		t.Fatalf("negative advance moved the clock to +%v", got)
	}
}

func TestVirtualSleepAdvancesInstantly(t *testing.T) {
	v := NewVirtual(epoch)
	wall := time.Now()
	if err := v.Sleep(context.Background(), time.Hour); err != nil {
		t.Fatalf("sleep: %v", err)
	}
	if elapsed := time.Since(wall); elapsed > time.Second {
		t.Fatalf("virtual sleep took %v of wall time", elapsed)
	}
	if got := v.Now().Sub(epoch); got != time.Hour {
		t.Fatalf("clock advanced %v, want 1h", got)
	}
}

func TestVirtualSleepClampsToDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	ctx, cancel := v.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := v.Sleep(ctx, time.Minute)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sleep past the deadline returned %v, want DeadlineExceeded", err)
	}
	// The clock stops exactly at the deadline, not at the full duration.
	if got := v.Now().Sub(epoch); got != 10*time.Second {
		t.Fatalf("clock advanced %v, want exactly 10s", got)
	}
}

func TestVirtualWithTimeoutKeepsEarlierDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	outer, cancelOuter := v.WithTimeout(context.Background(), 5*time.Second)
	defer cancelOuter()
	inner, cancelInner := v.WithTimeout(outer, time.Minute)
	defer cancelInner()
	dl, ok := DeadlineOf(inner)
	if !ok || !dl.Equal(epoch.Add(5*time.Second)) {
		t.Fatalf("nested deadline %v (ok=%v), want the earlier 5s one", dl, ok)
	}
}

func TestVirtualSleepCancelledContext(t *testing.T) {
	v := NewVirtual(epoch)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := v.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleep on a cancelled context returned %v", err)
	}
	if !v.Now().Equal(epoch) {
		t.Fatal("cancelled sleep still advanced the clock")
	}
}

func TestExpired(t *testing.T) {
	v := NewVirtual(epoch)
	ctx, cancel := v.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := Expired(ctx, v); err != nil {
		t.Fatalf("fresh deadline already expired: %v", err)
	}
	v.Advance(time.Second)
	if err := Expired(ctx, v); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline reported %v", err)
	}
}

func TestClockFromDefaultsToReal(t *testing.T) {
	c := ClockFrom(context.Background())
	if _, ok := c.(Real); !ok {
		t.Fatalf("default clock is %T, want Real", c)
	}
	if IsSynchronous(c) {
		t.Fatal("the real clock must not claim to be synchronous")
	}
}

func TestWithClockThreadsThroughContext(t *testing.T) {
	v := NewVirtual(epoch)
	ctx := WithClock(context.Background(), v)
	if !Now(ctx).Equal(epoch) {
		t.Fatalf("Now(ctx) = %v, want the virtual epoch", Now(ctx))
	}
	if !IsSynchronous(ClockFrom(ctx)) {
		t.Fatal("virtual clock lost its synchronous marker through context")
	}
	if err := Sleep(ctx, 42*time.Millisecond); err != nil {
		t.Fatalf("sleep: %v", err)
	}
	if got := v.Now().Sub(epoch); got != 42*time.Millisecond {
		t.Fatalf("context sleep advanced %v, want 42ms", got)
	}
}

func TestRealSleepHonoursCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (Real{}).Sleep(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("real sleep on cancelled context returned %v", err)
	}
}

func TestRealSleepShortDuration(t *testing.T) {
	if err := (Real{}).Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("real sleep: %v", err)
	}
}

func TestDeadlineOfRealContext(t *testing.T) {
	dl := time.Now().Add(time.Hour)
	ctx, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()
	got, ok := DeadlineOf(ctx)
	if !ok || !got.Equal(dl) {
		t.Fatalf("DeadlineOf = %v (ok=%v), want the context deadline", got, ok)
	}
}
