package mortgageapp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"soc/internal/services"
)

type harness struct {
	t      *testing.T
	server *httptest.Server
	client *http.Client
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	app, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(app)
	t.Cleanup(server.Close)
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, server: server, client: &http.Client{Jar: jar}}
}

func (h *harness) post(path string, form url.Values) (int, map[string]any) {
	h.t.Helper()
	resp, err := h.client.PostForm(h.server.URL+path, form)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var body map[string]any
	_ = json.Unmarshal(data, &body)
	return resp.StatusCode, body
}

func (h *harness) get(path string) (int, map[string]any, string) {
	h.t.Helper()
	resp, err := h.client.Get(h.server.URL + path)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var body map[string]any
	_ = json.Unmarshal(data, &body)
	return resp.StatusCode, body, string(data)
}

func ssnWith(t *testing.T, pred func(int64) bool) string {
	t.Helper()
	for a := 100; a < 1000; a++ {
		ssn := fmt.Sprintf("%03d-%02d-%04d", a, a%90+10, a*3%9000+1000)
		if score, err := services.CreditScoreOf(ssn); err == nil && pred(score) {
			return ssn
		}
	}
	t.Fatal("no matching ssn")
	return ""
}

func goodApplication(ssn string) url.Values {
	return url.Values{
		"name": {"Ada"}, "ssn": {ssn}, "address": {"1 Analytical Way"},
		"dob": {"1985-12-10"}, "income": {"120000"}, "amount": {"300000"},
	}
}

func TestHomePageRendersForms(t *testing.T) {
	h := newHarness(t)
	status, _, raw := h.get("/")
	if status != http.StatusOK {
		t.Fatalf("home = %d", status)
	}
	for _, want := range []string{"/subscribe", "/login", "<form"} {
		if !strings.Contains(raw, want) {
			t.Errorf("home missing %q", want)
		}
	}
}

func TestSubscribeValidation(t *testing.T) {
	h := newHarness(t)
	cases := []url.Values{
		{},                                    // everything missing
		{"name": {"x"}, "ssn": {"123456789"}}, // bad SSN format
		{"name": {"x"}, "ssn": {"123-45-6789"}, "address": {"a"},
			"dob": {"2999-01-01"}, "income": {"1"}, "amount": {"1"}}, // future DoB
	}
	for i, form := range cases {
		if status, _ := h.post("/subscribe", form); status != http.StatusBadRequest {
			t.Errorf("case %d: status %d", i, status)
		}
	}
}

func TestPasswordRequiresPendingSession(t *testing.T) {
	h := newHarness(t)
	// No application in this session yet: forbidden.
	status, _ := h.post("/password", url.Values{
		"userId": {"U00001"}, "password": {"Str0ngPass!"}, "retype": {"Str0ngPass!"},
	})
	if status != http.StatusForbidden {
		t.Errorf("status = %d, want 403", status)
	}
}

func TestPasswordSessionIsolation(t *testing.T) {
	h := newHarness(t)
	good := ssnWith(t, func(s int64) bool { return s >= services.ApprovalThreshold })
	_, body := h.post("/subscribe", goodApplication(good))
	userID, _ := body["userId"].(string)
	if userID == "" {
		t.Fatalf("no approval: %v", body)
	}
	// A different client (no shared cookie jar) cannot set the password.
	other := &http.Client{}
	resp, err := other.PostForm(h.server.URL+"/password", url.Values{
		"userId": {userID}, "password": {"Str0ngPass!"}, "retype": {"Str0ngPass!"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("foreign session set password: %d", resp.StatusCode)
	}
	// The original session still can.
	if status, _ := h.post("/password", url.Values{
		"userId": {userID}, "password": {"Str0ngPass!"}, "retype": {"Str0ngPass!"},
	}); status != http.StatusOK {
		t.Errorf("own session denied: %d", status)
	}
}

func TestPendingUserConsumedAfterPassword(t *testing.T) {
	h := newHarness(t)
	good := ssnWith(t, func(s int64) bool { return s >= services.ApprovalThreshold })
	_, body := h.post("/subscribe", goodApplication(good))
	userID := body["userId"].(string)
	form := url.Values{"userId": {userID}, "password": {"Str0ngPass!"}, "retype": {"Str0ngPass!"}}
	if status, _ := h.post("/password", form); status != http.StatusOK {
		t.Fatal("first password set failed")
	}
	// Second attempt: pending entry consumed.
	if status, _ := h.post("/password", form); status != http.StatusForbidden {
		t.Error("password set twice")
	}
}

func TestAccountRequiresLogin(t *testing.T) {
	h := newHarness(t)
	good := ssnWith(t, func(s int64) bool { return s >= services.ApprovalThreshold })
	_, body := h.post("/subscribe", goodApplication(good))
	userID := body["userId"].(string)
	_, _ = h.post("/password", url.Values{
		"userId": {userID}, "password": {"Str0ngPass!"}, "retype": {"Str0ngPass!"},
	})
	if status, _, _ := h.get("/account/" + userID); status != http.StatusForbidden {
		t.Errorf("unauthenticated account access: %d", status)
	}
	if status, _ := h.post("/login", url.Values{"userId": {userID}, "password": {"Str0ngPass!"}}); status != http.StatusOK {
		t.Fatal("login failed")
	}
	status, acct, _ := h.get("/account/" + userID)
	if status != http.StatusOK || acct["state"] != "approved" {
		t.Errorf("account = %d %v", status, acct)
	}
	// Logged in as one user does not grant another's account.
	if status, _, _ := h.get("/account/U99999"); status == http.StatusOK {
		t.Error("cross-account access allowed")
	}
}

func TestLoginUnknownUser(t *testing.T) {
	h := newHarness(t)
	if status, _ := h.post("/login", url.Values{"userId": {"ghost"}, "password": {"x"}}); status != http.StatusUnauthorized {
		t.Errorf("status = %d", status)
	}
}

func TestDeniedApplicantGetsNoUserID(t *testing.T) {
	h := newHarness(t)
	bad := ssnWith(t, func(s int64) bool { return s < services.ApprovalThreshold })
	status, body := h.post("/subscribe", goodApplication(bad))
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if body["approved"] != false || body["userId"] != nil && body["userId"] != "" {
		t.Errorf("denial leaked a user id: %v", body)
	}
	reason, _ := body["reason"].(string)
	if !strings.Contains(reason, "credit score") {
		t.Errorf("reason = %q", reason)
	}
}

func TestPasswordChecks(t *testing.T) {
	h := newHarness(t)
	good := ssnWith(t, func(s int64) bool { return s >= services.ApprovalThreshold })
	_, body := h.post("/subscribe", goodApplication(good))
	userID := body["userId"].(string)
	// Weak password ("Strong?" diamond).
	if status, _ := h.post("/password", url.Values{
		"userId": {userID}, "password": {"weak"}, "retype": {"weak"},
	}); status != http.StatusBadRequest {
		t.Errorf("weak password: %d", status)
	}
	// Mismatch ("Match?" diamond).
	if status, _ := h.post("/password", url.Values{
		"userId": {userID}, "password": {"Str0ngPass!"}, "retype": {"Other1Pass!"},
	}); status != http.StatusBadRequest {
		t.Errorf("mismatch: %d", status)
	}
	// Finally accept, then wrong login password.
	if status, _ := h.post("/password", url.Values{
		"userId": {userID}, "password": {"Str0ngPass!"}, "retype": {"Str0ngPass!"},
	}); status != http.StatusOK {
		t.Error("good password rejected")
	}
	if status, _ := h.post("/login", url.Values{"userId": {userID}, "password": {"Nope1Nope!"}}); status != http.StatusUnauthorized {
		t.Errorf("wrong password login: %d", status)
	}
}

func TestAccountMissingRecord(t *testing.T) {
	// Log a session in as a user id that has no stored record: the
	// account page 404s rather than leaking.
	h := newHarness(t)
	good := ssnWith(t, func(s int64) bool { return s >= services.ApprovalThreshold })
	_, body := h.post("/subscribe", goodApplication(good))
	userID := body["userId"].(string)
	_, _ = h.post("/password", url.Values{
		"userId": {userID}, "password": {"Str0ngPass!"}, "retype": {"Str0ngPass!"},
	})
	_, _ = h.post("/login", url.Values{"userId": {userID}, "password": {"Str0ngPass!"}})
	if status, _, _ := h.get("/account/" + userID); status != http.StatusOK {
		t.Fatalf("own account: %d", status)
	}
}

func TestMortgageAccessor(t *testing.T) {
	app, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := app.Mortgage()
	if svc == nil || svc.Name != "Mortgage" {
		t.Errorf("Mortgage() = %v", svc)
	}
}

func TestSubscribeRejectedByService(t *testing.T) {
	// Form-valid input the business layer rejects (zero income fails the
	// form pattern, so use an SSN duplicate instead).
	h := newHarness(t)
	good := ssnWith(t, func(s int64) bool { return s >= services.ApprovalThreshold })
	_, body := h.post("/subscribe", goodApplication(good))
	if body["approved"] != true {
		t.Fatalf("setup approval failed: %v", body)
	}
	status, body2 := h.post("/subscribe", goodApplication(good))
	if status != http.StatusOK || body2["approved"] != false {
		t.Errorf("duplicate ssn: %d %v", status, body2)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("/nonexistent-dir-xyz/deeper"); err == nil {
		t.Skip("filesystem allowed the write") // xmlstore only writes lazily
	}
}
