// Package mortgageapp is the Figure 4 course project as a working web
// application: from the client an end user applies for an account by
// submitting personal information; the provider checks a credit-score
// web service, issues a user ID if approved, lets the user create a
// password (strength- and match-checked), persists the account to an XML
// file, and finally authenticates logins — "GUI design at the
// presentation layer, programming at business logic layer, and data
// manipulation and storage at data management".
package mortgageapp

import (
	"context"
	"errors"
	"html/template"
	"net/http"
	"sync"

	"soc/internal/core"
	"soc/internal/rest"
	"soc/internal/security"
	"soc/internal/services"
	"soc/internal/session"
	"soc/internal/webapp"
	"soc/internal/xmlstore"
)

// App is the provider side of Figure 4.
type App struct {
	mortgage  *core.Service
	accounts  *xmlstore.Store
	sessions  *session.Manager
	router    *rest.Router
	applyForm *webapp.Form

	mu        sync.Mutex
	passwords map[string]string // userID → password record (hashed)
}

// New assembles the application over a data directory (for account.xml).
// The credit-score dependency is the in-repo synthetic bureau.
func New(dataDir string) (*App, error) {
	accounts, err := xmlstore.Open(dataDir+"/account.xml", "accounts", "account")
	if err != nil {
		return nil, err
	}
	lookup := func(_ context.Context, ssn string) (int64, error) {
		return services.CreditScoreOf(ssn)
	}
	mortgage, err := services.NewMortgage(accounts, lookup)
	if err != nil {
		return nil, err
	}
	applyForm, err := webapp.NewForm(
		webapp.Field{Name: "name", Label: "Name", Required: true},
		webapp.Field{Name: "ssn", Label: "SSN", Required: true, Pattern: webapp.PatternSSN},
		webapp.Field{Name: "address", Label: "Address", Required: true},
		webapp.Field{Name: "dob", Label: "Date of birth", Required: true,
			Pattern: webapp.PatternDate, Validate: webapp.ValidDate(nil)},
		webapp.Field{Name: "income", Label: "Annual income", Required: true, Pattern: `\d+(\.\d+)?`},
		webapp.Field{Name: "amount", Label: "Loan amount", Required: true, Pattern: `\d+(\.\d+)?`},
	)
	if err != nil {
		return nil, err
	}
	a := &App{
		mortgage:  mortgage,
		accounts:  accounts,
		sessions:  session.NewManager(),
		router:    rest.NewRouter(),
		applyForm: applyForm,
		passwords: map[string]string{},
	}
	a.router.Use(rest.Recovery())
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(a.router.GET("/", a.home))
	must(a.router.POST("/subscribe", a.subscribe))
	must(a.router.POST("/password", a.createPassword))
	must(a.router.POST("/login", a.login))
	must(a.router.GET("/account/{id}", a.account))
	return a, nil
}

// ServeHTTP implements http.Handler.
func (a *App) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.router.ServeHTTP(w, r) }

var homeTmpl = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>Mortgage Application</title></head><body>
<h1>Apply for an account</h1>
<form action="/subscribe" method="POST">
  Name <input name="name"> SSN <input name="ssn" placeholder="123-45-6789">
  Address <input name="address"> DoB <input name="dob" placeholder="YYYY-MM-DD">
  Income <input name="income"> Amount <input name="amount">
  <input type="submit" value="Subscribe">
</form>
<h1>Login</h1>
<form action="/login" method="POST">
  User ID <input name="userId"> Password <input type="password" name="password">
  <input type="submit" value="Login">
</form>
</body></html>`))

func (a *App) home(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = homeTmpl.Execute(w, nil)
}

// subscribeResult is the JSON the subscribe endpoint answers with (the
// tests and the example client drive the flow programmatically; a browser
// shows the same fields rendered).
type subscribeResult struct {
	Approved bool   `json:"approved"`
	UserID   string `json:"userId,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Score    int64  `json:"score"`
}

func (a *App) subscribe(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	clean, errs := a.applyForm.ValidateRequest(r)
	if !errs.Ok() {
		rest.WriteError(w, r, http.StatusBadRequest, "%v", errs)
		return
	}
	sess := a.sessions.FromRequest(w, r)
	out, err := a.mortgage.Invoke(r.Context(), "Apply", core.Values{
		"name": clean["name"], "ssn": clean["ssn"],
		"income": clean["income"], "amount": clean["amount"],
	})
	if err != nil {
		rest.WriteError(w, r, http.StatusBadRequest, "application failed: %v", err)
		return
	}
	res := subscribeResult{
		Approved: out.Bool("approved"),
		UserID:   out.Str("userId"),
		Reason:   out.Str("reason"),
		Score:    out.Int("score"),
	}
	if res.Approved {
		// Remember which user this session may set a password for.
		sess.Set("pendingUser", res.UserID)
	}
	rest.WriteResponse(w, r, http.StatusOK, res)
}

func (a *App) createPassword(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	sess := a.sessions.FromRequest(w, r)
	if err := r.ParseForm(); err != nil {
		rest.WriteError(w, r, http.StatusBadRequest, "bad form: %v", err)
		return
	}
	userID := r.PostFormValue("userId")
	pw := r.PostFormValue("password")
	retype := r.PostFormValue("retype")
	pending := sess.GetString("pendingUser")
	if pending == "" || pending != userID {
		rest.WriteError(w, r, http.StatusForbidden, "no pending application for %q in this session", userID)
		return
	}
	// Figure 4's two checks: Match? and Strong?
	if pw != retype {
		rest.WriteError(w, r, http.StatusBadRequest, "passwords do not match")
		return
	}
	if err := security.DefaultPolicy.Check(pw); err != nil {
		rest.WriteError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	record, err := security.HashPassword(pw)
	if err != nil {
		rest.WriteError(w, r, http.StatusInternalServerError, "hashing: %v", err)
		return
	}
	a.mu.Lock()
	a.passwords[userID] = record
	a.mu.Unlock()
	sess.Delete("pendingUser")
	rest.WriteResponse(w, r, http.StatusOK, map[string]any{"userId": userID, "ready": true})
}

func (a *App) login(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	if err := r.ParseForm(); err != nil {
		rest.WriteError(w, r, http.StatusBadRequest, "bad form: %v", err)
		return
	}
	userID := r.PostFormValue("userId")
	pw := r.PostFormValue("password")
	a.mu.Lock()
	record, ok := a.passwords[userID]
	a.mu.Unlock()
	if !ok {
		rest.WriteError(w, r, http.StatusUnauthorized, "unknown user or missing password")
		return
	}
	if err := security.VerifyPassword(pw, record); err != nil {
		if errors.Is(err, security.ErrAuth) {
			rest.WriteError(w, r, http.StatusUnauthorized, "wrong password")
			return
		}
		rest.WriteError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	sess := a.sessions.FromRequest(w, r)
	sess.Set("user", userID)
	rest.WriteResponse(w, r, http.StatusOK, map[string]any{"userId": userID, "loggedIn": true})
}

func (a *App) account(w http.ResponseWriter, r *http.Request, p rest.Params) {
	sess := a.sessions.FromRequest(w, r)
	if sess.GetString("user") != p["id"] {
		rest.WriteError(w, r, http.StatusForbidden, "log in as %s first", p["id"])
		return
	}
	rec, err := a.accounts.Get(p["id"])
	if err != nil {
		rest.WriteError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	rest.WriteResponse(w, r, http.StatusOK, map[string]any{
		"userId": rec.ID,
		"name":   rec.Fields["name"],
		"state":  rec.Fields["state"],
		"amount": rec.Fields["amount"],
	})
}

// Mortgage exposes the underlying service (for mounting on a Host).
func (a *App) Mortgage() *core.Service { return a.mortgage }
