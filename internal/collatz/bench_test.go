package collatz

import (
	"runtime"
	"testing"
)

func BenchmarkSteps27(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Steps(27); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	const lo, hi = 1, 50_001
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ValidateSeq(lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ValidateStatic(lo, hi, runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ValidateDynamic(lo, hi, runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
