// Package collatz implements the Collatz-conjecture validation workload
// the paper uses to demonstrate multithreaded speedup (Figure 3: "a
// program that validates the Collatz conjecture has been used to evaluate
// the performance in a single core up through 32 cores using Intel
// Manycore Testing Lab").
//
// Validate(n) counts the steps of the 3n+1 iteration until reaching 1.
// The per-number cost is irregular (trajectory lengths vary wildly), which
// is exactly why the workload distinguishes static from dynamic schedules.
package collatz

import (
	"errors"
	"fmt"

	"soc/internal/parallel"
	"soc/internal/vtime"
)

// ErrBadRange reports an invalid validation range.
var ErrBadRange = errors.New("collatz: invalid range")

// ErrDiverged reports a number whose trajectory exceeded the step bound —
// a counterexample candidate (never produced for ranges a machine can
// enumerate, but the validator must bound the loop).
var ErrDiverged = errors.New("collatz: trajectory exceeded step bound")

// MaxSteps bounds a single trajectory; 64-bit inputs below 2^60 stay far
// under it.
const MaxSteps = 5000

// Steps returns the number of Collatz steps taken from n to reach 1.
func Steps(n uint64) (int, error) {
	if n == 0 {
		return 0, fmt.Errorf("%w: n=0", ErrBadRange)
	}
	steps := 0
	for n != 1 {
		if steps >= MaxSteps {
			return steps, ErrDiverged
		}
		if n%2 == 0 {
			n /= 2
		} else {
			// Overflow guard: 3n+1 must fit in uint64.
			if n > (1<<64-2)/3 {
				return steps, fmt.Errorf("%w: overflow at %d", ErrDiverged, n)
			}
			n = 3*n + 1
		}
		steps++
	}
	return steps, nil
}

// Result summarizes a validated range.
type Result struct {
	// Verified is the count of numbers whose trajectory reached 1.
	Verified uint64
	// TotalSteps is the sum of all trajectory lengths — the workload's
	// total "work" and the checksum used to compare implementations.
	TotalSteps uint64
	// MaxSteps is the longest trajectory seen.
	MaxSteps int
	// MaxAt is the number achieving MaxSteps.
	MaxAt uint64
}

// ValidateSeq validates [lo, hi) sequentially — the 1-core baseline.
func ValidateSeq(lo, hi uint64) (Result, error) {
	if lo == 0 || hi < lo {
		return Result{}, fmt.Errorf("%w: [%d,%d)", ErrBadRange, lo, hi)
	}
	var r Result
	for n := lo; n < hi; n++ {
		s, err := Steps(n)
		if err != nil {
			return r, err
		}
		r.Verified++
		r.TotalSteps += uint64(s)
		if s > r.MaxSteps {
			r.MaxSteps, r.MaxAt = s, n
		}
	}
	return r, nil
}

// ValidateStatic validates [lo, hi) with a static block partition over
// `workers` goroutines — the naive parallelization students write first.
func ValidateStatic(lo, hi uint64, workers int) (Result, error) {
	return validatePar(lo, hi, workers, true)
}

// ValidateDynamic validates [lo, hi) with dynamic chunk claiming — the
// TBB-style load-balanced schedule.
func ValidateDynamic(lo, hi uint64, workers int) (Result, error) {
	return validatePar(lo, hi, workers, false)
}

func validatePar(lo, hi uint64, workers int, static bool) (Result, error) {
	if lo == 0 || hi < lo {
		return Result{}, fmt.Errorf("%w: [%d,%d)", ErrBadRange, lo, hi)
	}
	if workers <= 0 {
		return Result{}, fmt.Errorf("%w: workers=%d", ErrBadRange, workers)
	}
	n := int(hi - lo)
	combine := func(a, b Result) Result {
		out := Result{
			Verified:   a.Verified + b.Verified,
			TotalSteps: a.TotalSteps + b.TotalSteps,
			MaxSteps:   a.MaxSteps,
			MaxAt:      a.MaxAt,
		}
		if b.MaxSteps > out.MaxSteps {
			out.MaxSteps, out.MaxAt = b.MaxSteps, b.MaxAt
		}
		return out
	}
	mapf := func(i int) Result {
		v := lo + uint64(i)
		s, err := Steps(v)
		if err != nil {
			// Unreachable for enumerable ranges; surface as a
			// zero result so the checksum mismatch is caught.
			return Result{}
		}
		return Result{Verified: 1, TotalSteps: uint64(s), MaxSteps: s, MaxAt: v}
	}
	opts := parallel.Options{Workers: workers}
	if static {
		// A static schedule is dynamic scheduling with one huge grain
		// per worker.
		opts.Grain = (n + workers - 1) / workers
		if opts.Grain < 1 {
			opts.Grain = 1
		}
	} else {
		opts.Grain = 256
	}
	return parallel.Reduce(0, n, Result{}, mapf, combine, opts)
}

// Tasks converts the range [lo, hi) into cost-annotated virtual-time tasks,
// chunked to the given size, with each chunk's cost equal to its total
// trajectory length. This drives the >host-core scaling study.
func Tasks(lo, hi uint64, chunk int) ([]vtime.Task, error) {
	if lo == 0 || hi < lo {
		return nil, fmt.Errorf("%w: [%d,%d)", ErrBadRange, lo, hi)
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("%w: chunk=%d", ErrBadRange, chunk)
	}
	var tasks []vtime.Task
	id := 0
	for start := lo; start < hi; {
		end := start + uint64(chunk)
		if end > hi {
			end = hi
		}
		var cost int64
		for n := start; n < end; n++ {
			s, err := Steps(n)
			if err != nil {
				return nil, err
			}
			cost += int64(s)
		}
		if cost == 0 {
			cost = 1 // n=1 has a zero-length trajectory
		}
		tasks = append(tasks, vtime.Task{ID: id, Cost: cost})
		id++
		start = end
	}
	return tasks, nil
}
