package collatz

import (
	"testing"
	"testing/quick"
)

func TestStepsKnownValues(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{
		{1, 0}, {2, 1}, {3, 7}, {4, 2}, {5, 5}, {6, 8}, {7, 16},
		{27, 111}, // the famous long trajectory
		{97, 118},
	}
	for _, c := range cases {
		got, err := Steps(c.n)
		if err != nil {
			t.Errorf("Steps(%d): %v", c.n, err)
			continue
		}
		if got != c.want {
			t.Errorf("Steps(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestStepsRejectsZero(t *testing.T) {
	if _, err := Steps(0); err == nil {
		t.Error("Steps(0) accepted")
	}
}

func TestStepsRecurrenceProperty(t *testing.T) {
	// Property: Steps(2n) == Steps(n) + 1 for n >= 1.
	prop := func(raw uint16) bool {
		n := uint64(raw) + 1
		a, err1 := Steps(n)
		b, err2 := Steps(2 * n)
		return err1 == nil && err2 == nil && b == a+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateSeq(t *testing.T) {
	r, err := ValidateSeq(1, 1001)
	if err != nil {
		t.Fatalf("ValidateSeq: %v", err)
	}
	if r.Verified != 1000 {
		t.Errorf("verified = %d, want 1000", r.Verified)
	}
	if r.MaxAt != 871 || r.MaxSteps != 178 {
		// 871 has the longest trajectory (178 steps) below 1000.
		t.Errorf("max = %d steps at %d, want 178 at 871", r.MaxSteps, r.MaxAt)
	}
}

func TestValidateSeqInvalid(t *testing.T) {
	if _, err := ValidateSeq(0, 10); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := ValidateSeq(10, 5); err == nil {
		t.Error("hi<lo accepted")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq, err := ValidateSeq(1, 20001)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		dyn, err := ValidateDynamic(1, 20001, workers)
		if err != nil {
			t.Fatalf("dynamic %d: %v", workers, err)
		}
		if dyn.Verified != seq.Verified || dyn.TotalSteps != seq.TotalSteps || dyn.MaxSteps != seq.MaxSteps {
			t.Errorf("dynamic %d workers: %+v != %+v", workers, dyn, seq)
		}
		st, err := ValidateStatic(1, 20001, workers)
		if err != nil {
			t.Fatalf("static %d: %v", workers, err)
		}
		if st.Verified != seq.Verified || st.TotalSteps != seq.TotalSteps || st.MaxSteps != seq.MaxSteps {
			t.Errorf("static %d workers: %+v != %+v", workers, st, seq)
		}
	}
}

func TestParallelInvalid(t *testing.T) {
	if _, err := ValidateDynamic(1, 100, 0); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := ValidateStatic(0, 100, 2); err == nil {
		t.Error("lo=0 accepted")
	}
}

func TestTasksCostEqualsTotalSteps(t *testing.T) {
	seq, err := ValidateSeq(2, 502)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := Tasks(2, 502, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 10 {
		t.Fatalf("chunks = %d, want 10", len(tasks))
	}
	var total int64
	for _, task := range tasks {
		if task.Cost <= 0 {
			t.Errorf("task %d has cost %d", task.ID, task.Cost)
		}
		total += task.Cost
	}
	if uint64(total) != seq.TotalSteps {
		t.Errorf("task cost sum %d != total steps %d", total, seq.TotalSteps)
	}
}

func TestTasksRaggedTail(t *testing.T) {
	tasks, err := Tasks(1, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 { // 3+3+3+1
		t.Errorf("chunks = %d, want 4", len(tasks))
	}
}

func TestTasksInvalid(t *testing.T) {
	if _, err := Tasks(1, 10, 0); err == nil {
		t.Error("chunk=0 accepted")
	}
	if _, err := Tasks(0, 10, 5); err == nil {
		t.Error("lo=0 accepted")
	}
}
