//go:build !race

package soap

import (
	"io"
	"runtime"
	"sync"
	"testing"
)

// Allocation ceilings for the codec hot path. These are asserted (not
// just benchmarked) so a regression fails `go test`. The numbers are
// ceilings with headroom, not exact counts — tighten them only with
// fresh measurements.

func allocMessage() Message {
	return Message{
		Operation:  "Echo",
		Namespace:  "http://soc.example/echo",
		Params:     map[string]string{"text": "hello world & <friends>", "count": "42"},
		ParamOrder: []string{"text", "count"},
	}
}

func TestEncodeAllocCeiling(t *testing.T) {
	m := allocMessage()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Encode(m); err != nil {
			t.Fatal(err)
		}
	})
	// Encode returns a fresh slice, so the envelope buffer itself is the
	// dominant (and unavoidable) allocation.
	if allocs > 6 {
		t.Errorf("Encode allocates %.1f/op, ceiling 6", allocs)
	}
}

func TestEncodeToAllocCeiling(t *testing.T) {
	m := allocMessage()
	// Warm the buffer pool.
	if err := EncodeTo(io.Discard, m); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := EncodeTo(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("EncodeTo allocates %.1f/op in steady state, want 0", allocs)
	}
}

// allocsPerOpParallel is AllocsPerRun's concurrent cousin: workers
// goroutines each run op iters times and the total heap allocation count
// is averaged per op. Interleaved goroutines defeat the put-then-get
// rhythm that makes serial sync.Pool reuse look free, so this is the
// number the contended hot path actually pays.
func allocsPerOpParallel(workers, iters int, op func()) float64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				op()
			}
		}()
	}
	wg.Wait()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(workers*iters)
}

func TestEncodeAllocCeilingParallel(t *testing.T) {
	m := allocMessage()
	allocs := allocsPerOpParallel(8, 500, func() {
		if _, err := Encode(m); err != nil {
			t.Error(err)
		}
	})
	// Pool misses from goroutine interleaving may add a buffer or two
	// over the serial ceiling, but never a per-op blowup.
	if allocs > 9 {
		t.Errorf("parallel Encode allocates %.1f/op, ceiling 9", allocs)
	}
}

func TestDecodeAllocCeilingParallel(t *testing.T) {
	env, err := Encode(allocMessage())
	if err != nil {
		t.Fatal(err)
	}
	allocs := allocsPerOpParallel(8, 500, func() {
		if _, err := DecodeBytes(env); err != nil {
			t.Error(err)
		}
	})
	if allocs > 20 {
		t.Errorf("parallel DecodeBytes allocates %.1f/op, ceiling 20", allocs)
	}
}

func TestDecodeAllocCeiling(t *testing.T) {
	env, err := Encode(allocMessage())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeBytes(env); err != nil {
			t.Fatal(err)
		}
	})
	// The returned Message owns fresh maps and strings; everything else
	// (scanner, scratch buffers) is pooled.
	if allocs > 16 {
		t.Errorf("DecodeBytes allocates %.1f/op, ceiling 16", allocs)
	}
}
