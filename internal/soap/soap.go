// Package soap implements the SOAP 1.1 document-style message protocol of
// CSE445 unit 3: envelope encoding and decoding, fault reporting, and the
// HTTP binding (both the server handler and the client), with SOAPAction-
// based operation dispatch.
//
// Messages are document/literal: the body carries a single operation
// element in the service namespace whose children are the named
// parameters. This mirrors what WSDL generation in soc/internal/wsdl
// advertises.
package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"soc/internal/callplane"
	"soc/internal/telemetry"
	"soc/internal/xmlkit"
)

// Namespace constants for SOAP 1.1.
const (
	EnvelopeNS  = "http://schemas.xmlsoap.org/soap/envelope/"
	ContentType = "text/xml; charset=utf-8"
)

// ErrProtocol reports a malformed SOAP message.
var ErrProtocol = errors.New("soap: protocol error")

// Fault is a SOAP fault. It implements error so handlers can return it
// directly and clients can detect it with errors.As.
type Fault struct {
	// Code is the fault code: conventionally "Client" for caller errors
	// and "Server" for service-side failures.
	Code string
	// String is the human-readable fault string.
	String string
	// Detail carries optional application-specific detail.
	Detail string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("soap: fault %s: %s", f.Code, f.String)
}

// ClientFault returns a Client fault (the caller's message was at fault).
func ClientFault(format string, args ...any) *Fault {
	return &Fault{Code: "Client", String: fmt.Sprintf(format, args...)}
}

// ServerFault returns a Server fault (the service failed).
func ServerFault(format string, args ...any) *Fault {
	return &Fault{Code: "Server", String: fmt.Sprintf(format, args...)}
}

// Message is a decoded SOAP request or response body: the operation
// element name and its child parameter values.
type Message struct {
	// Operation is the local name of the body's single child element.
	Operation string
	// Namespace is the operation element's declared namespace URI (from
	// its xmlns attribute), if any.
	Namespace string
	// Params maps parameter element names to their text content, in the
	// order they appeared (ParamOrder preserves it).
	Params map[string]string
	// ParamOrder lists parameter names in document order.
	ParamOrder []string
	// Header holds SOAP header entries (name → text), if present.
	Header map[string]string
}

// ---- pooled buffers and messages (the hot-path allocation discipline;
// see DESIGN.md "Hot-path message plane") ----

// encPool recycles the byte slices the encoder and the transport paths
// build envelopes in. Oversized buffers are dropped rather than pooled so
// one huge message cannot pin memory.
var encPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

const maxPooledBuf = 64 << 10

func getEncBuf() *[]byte { return encPool.Get().(*[]byte) }

func putEncBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	encPool.Put(bp)
}

// msgPool recycles decoded request messages inside Server.ServeHTTP. The
// maps are cleared (not reallocated) between requests, so steady-state
// request decoding does not grow the heap.
var msgPool = sync.Pool{New: func() any {
	return &Message{Params: make(map[string]string, 8), Header: make(map[string]string, 2)}
}}

func acquireMessage() *Message { return msgPool.Get().(*Message) }

func releaseMessage(m *Message) {
	m.resetForReuse()
	msgPool.Put(m)
}

// resetForReuse clears the message in place, keeping map and slice
// capacity. Every pooled message passes through here before Put.
func (m *Message) resetForReuse() {
	m.Operation = ""
	m.Namespace = ""
	clear(m.Params)
	clear(m.Header)
	m.ParamOrder = m.ParamOrder[:0]
}

// xmlProlog matches encoding/xml's xml.Header.
const xmlProlog = `<?xml version="1.0" encoding="UTF-8"?>` + "\n"

// validName reports whether s is usable as an element name without
// re-parsing ambiguity. The check is deliberately loose (prefixes pass);
// it exists to stop markup injection through operation or parameter
// names, since values are escaped but names are written literally.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<', '>', '&', '/', '=', '"', '\'', ' ', '\t', '\r', '\n':
			return false
		}
	}
	return s[0] != '-' && s[0] != '.' && (s[0] < '0' || s[0] > '9')
}

// appendMessage renders the envelope into dst in a single pass: values
// are escaped directly into the output buffer with no intermediate
// escape buffer or DOM materialization.
func appendMessage(dst []byte, m Message) ([]byte, error) {
	if m.Operation == "" {
		return dst, fmt.Errorf("%w: empty operation", ErrProtocol)
	}
	if !validName(m.Operation) {
		return dst, fmt.Errorf("%w: invalid operation name %q", ErrProtocol, m.Operation)
	}
	dst = append(dst, xmlProlog...)
	dst = append(dst, `<soap:Envelope xmlns:soap="`...)
	dst = append(dst, EnvelopeNS...)
	dst = append(dst, `">`...)
	if len(m.Header) > 0 {
		dst = append(dst, "<soap:Header>"...)
		for _, name := range sortedKeys(m.Header) {
			var err error
			dst, err = appendTextElement(dst, name, m.Header[name])
			if err != nil {
				return dst, err
			}
		}
		dst = append(dst, "</soap:Header>"...)
	}
	dst = append(dst, "<soap:Body><"...)
	dst = append(dst, m.Operation...)
	if m.Namespace != "" {
		dst = append(dst, ` xmlns="`...)
		dst = xmlkit.EscapeAttrValue(dst, m.Namespace)
		dst = append(dst, '"')
	}
	dst = append(dst, '>')
	order := m.ParamOrder
	if order == nil {
		order = sortedKeys(m.Params)
	}
	for _, name := range order {
		v, ok := m.Params[name]
		if !ok {
			return dst, fmt.Errorf("%w: ParamOrder names missing param %q", ErrProtocol, name)
		}
		var err error
		dst, err = appendTextElement(dst, name, v)
		if err != nil {
			return dst, err
		}
	}
	dst = append(dst, "</"...)
	dst = append(dst, m.Operation...)
	dst = append(dst, "></soap:Body></soap:Envelope>"...)
	return dst, nil
}

// appendTextElement writes <name>escaped(value)</name>.
func appendTextElement(dst []byte, name, value string) ([]byte, error) {
	if !validName(name) {
		return dst, fmt.Errorf("%w: invalid element name %q", ErrProtocol, name)
	}
	dst = append(dst, '<')
	dst = append(dst, name...)
	dst = append(dst, '>')
	dst = xmlkit.EscapeElementText(dst, value)
	dst = append(dst, "</"...)
	dst = append(dst, name...)
	dst = append(dst, '>')
	return dst, nil
}

// Encode renders the message as a SOAP envelope.
func Encode(m Message) ([]byte, error) {
	return appendMessage(nil, m)
}

// EncodeTo streams the envelope to w through a pooled buffer: one
// encoding pass, one Write call, no allocation in steady state. This is
// what Server.ServeHTTP uses to write straight to the ResponseWriter.
func EncodeTo(w io.Writer, m Message) error {
	bp := getEncBuf()
	defer putEncBuf(bp)
	b, err := appendMessage((*bp)[:0], m)
	*bp = b[:0]
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func appendFault(dst []byte, f *Fault) ([]byte, error) {
	if f == nil {
		return dst, fmt.Errorf("%w: nil fault", ErrProtocol)
	}
	dst = append(dst, xmlProlog...)
	dst = append(dst, `<soap:Envelope xmlns:soap="`...)
	dst = append(dst, EnvelopeNS...)
	dst = append(dst, `"><soap:Body><soap:Fault><faultcode>soap:`...)
	dst = xmlkit.EscapeElementText(dst, f.Code)
	dst = append(dst, "</faultcode><faultstring>"...)
	dst = xmlkit.EscapeElementText(dst, f.String)
	dst = append(dst, "</faultstring>"...)
	if f.Detail != "" {
		dst = append(dst, "<detail>"...)
		dst = xmlkit.EscapeElementText(dst, f.Detail)
		dst = append(dst, "</detail>"...)
	}
	dst = append(dst, "</soap:Fault></soap:Body></soap:Envelope>"...)
	return dst, nil
}

// EncodeFault renders a fault envelope.
func EncodeFault(f *Fault) ([]byte, error) {
	return appendFault(nil, f)
}

// Decode parses a SOAP envelope. A fault body decodes into a *Fault error.
func Decode(r io.Reader) (Message, error) {
	bp := getEncBuf()
	defer putEncBuf(bp)
	b := (*bp)[:0]
	var err error
	b, err = readAllInto(b, r)
	*bp = b[:0]
	if err != nil {
		return Message{}, fmt.Errorf("%w: reading envelope: %v", ErrProtocol, err)
	}
	return DecodeBytes(b)
}

// readAllInto is io.ReadAll appending into a reusable buffer.
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// DecodeBytes parses an in-memory SOAP envelope on the xmlkit streaming
// scanner — no DOM is materialized; the only allocations are the strings
// and maps of the returned Message.
func DecodeBytes(data []byte) (Message, error) {
	m := Message{Params: map[string]string{}, Header: map[string]string{}}
	if err := decodeInto(&m, data); err != nil {
		return Message{}, err
	}
	return m, nil
}

// scanEvent classifies what nextElement stopped on.
type scanEvent int

const (
	scanStart scanEvent = iota
	scanEnd
	scanEOF
)

// nextElement advances the scanner to the next element boundary,
// skipping text (structural positions tolerate stray text, matching the
// DOM decoder's behavior).
func nextElement(s *xmlkit.Scanner) (scanEvent, error) {
	for {
		kind, err := s.Next()
		if err != nil {
			return scanEOF, err
		}
		switch kind {
		case xmlkit.NoToken:
			return scanEOF, nil
		case xmlkit.StartToken:
			return scanStart, nil
		case xmlkit.EndToken:
			return scanEnd, nil
		}
	}
}

// decodeInto decodes the envelope into m, reusing m's maps and slices
// (the pooled-request fast path of Server.ServeHTTP).
func decodeInto(m *Message, data []byte) error {
	s := xmlkit.AcquireScanner(data)
	defer xmlkit.ReleaseScanner(s)
	bp := getEncBuf()
	scratch := (*bp)[:0]
	defer func() { *bp = scratch[:0]; putEncBuf(bp) }()

	ev, err := nextElement(s)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if ev != scanStart {
		return fmt.Errorf("%w: no root element", ErrProtocol)
	}
	if string(s.LocalName()) != "Envelope" {
		return fmt.Errorf("%w: root is <%s>, want Envelope", ErrProtocol, s.Name())
	}

	sawBody := false
	var fault *Fault
	for {
		ev, err := nextElement(s)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		if ev == scanEOF {
			break
		}
		if ev == scanEnd {
			continue // </Envelope>; keep scanning so trailing junk still errors
		}
		switch string(s.LocalName()) {
		case "Header":
			if err := decodeHeader(s, m, &scratch); err != nil {
				return err
			}
		case "Body":
			if sawBody {
				return fmt.Errorf("%w: multiple Body elements", ErrProtocol)
			}
			sawBody = true
			if fault, err = decodeBody(s, m, &scratch); err != nil {
				return err
			}
		default:
			if err := skipSubtree(s); err != nil {
				return fmt.Errorf("%w: %v", ErrProtocol, err)
			}
		}
	}
	if !sawBody {
		return fmt.Errorf("%w: missing Body", ErrProtocol)
	}
	if fault != nil {
		return fault
	}
	return nil
}

// decodeHeader consumes a <Header> subtree into m.Header.
func decodeHeader(s *xmlkit.Scanner, m *Message, scratch *[]byte) error {
	base := s.Depth() // depth of the Header element itself
	for {
		ev, err := nextElement(s)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		switch ev {
		case scanEOF:
			return fmt.Errorf("%w: truncated Header", ErrProtocol)
		case scanEnd:
			if s.Depth() < base {
				return nil // </Header>
			}
		case scanStart:
			var name string
			// Intern the trace-context entry name: it appears on every
			// traced call and the comparison itself doesn't allocate.
			if string(s.LocalName()) == telemetry.SOAPHeaderName {
				name = telemetry.SOAPHeaderName
			} else {
				name = string(s.LocalName())
			}
			val, err := readElementText(s, scratch)
			if err != nil {
				return err
			}
			m.Header[name] = val
		}
	}
}

// decodeBody consumes a <Body> subtree: exactly one child, either an
// operation element (into m) or a soap:Fault (returned).
func decodeBody(s *xmlkit.Scanner, m *Message, scratch *[]byte) (*Fault, error) {
	base := s.Depth()
	children := 0
	var fault *Fault
	for {
		ev, err := nextElement(s)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		switch ev {
		case scanEOF:
			return nil, fmt.Errorf("%w: truncated Body", ErrProtocol)
		case scanEnd:
			if s.Depth() < base { // </Body>
				if children != 1 {
					return nil, fmt.Errorf("%w: Body has %d children, want 1", ErrProtocol, children)
				}
				return fault, nil
			}
		case scanStart:
			children++
			if children > 1 {
				if err := skipSubtree(s); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
				}
				continue
			}
			if string(s.LocalName()) == "Fault" {
				if fault, err = decodeFault(s, scratch); err != nil {
					return nil, err
				}
			} else if err := decodeOperation(s, m, scratch); err != nil {
				return nil, err
			}
		}
	}
}

// decodeOperation consumes the operation element: its name, xmlns, and
// child parameters in document order.
func decodeOperation(s *xmlkit.Scanner, m *Message, scratch *[]byte) error {
	m.Operation = string(s.LocalName())
	if raw, ok := s.Attr("xmlns"); ok {
		ns, err := xmlkit.AttrValue(raw)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		m.Namespace = ns
	}
	base := s.Depth()
	for {
		ev, err := nextElement(s)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		switch ev {
		case scanEOF:
			return fmt.Errorf("%w: truncated operation", ErrProtocol)
		case scanEnd:
			if s.Depth() < base {
				return nil
			}
		case scanStart:
			nameB := s.LocalName()
			_, dup := m.Params[string(nameB)] // no alloc: map lookup on converted key
			name := string(nameB)
			val, err := readElementText(s, scratch)
			if err != nil {
				return err
			}
			if !dup {
				m.ParamOrder = append(m.ParamOrder, name)
			}
			m.Params[name] = val
		}
	}
}

// decodeFault consumes a soap:Fault subtree.
func decodeFault(s *xmlkit.Scanner, scratch *[]byte) (*Fault, error) {
	f := &Fault{}
	base := s.Depth()
	for {
		ev, err := nextElement(s)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		switch ev {
		case scanEOF:
			return nil, fmt.Errorf("%w: truncated Fault", ErrProtocol)
		case scanEnd:
			if s.Depth() < base {
				return f, nil
			}
		case scanStart:
			name := string(s.LocalName())
			val, err := readElementText(s, scratch)
			if err != nil {
				return nil, err
			}
			switch name {
			case "faultcode":
				// The code may carry any prefix ("soap:Client"); keep the
				// local part, as the DOM decoder did.
				f.Code = local(val)
			case "faultstring":
				f.String = val
			case "detail":
				f.Detail = val
			}
		}
	}
}

// readElementText consumes the current element's subtree and returns its
// concatenated non-whitespace text content, trimmed — the streaming
// equivalent of Node.Text() over a DOM whose builder dropped ignorable
// whitespace.
func readElementText(s *xmlkit.Scanner, scratch *[]byte) (string, error) {
	target := s.Depth() - 1
	buf := (*scratch)[:0]
	for s.Depth() > target {
		kind, err := s.Next()
		if err != nil {
			*scratch = buf
			return "", fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		switch kind {
		case xmlkit.NoToken:
			*scratch = buf
			return "", fmt.Errorf("%w: truncated element", ErrProtocol)
		case xmlkit.TextToken:
			if !s.IsWhitespace() {
				if buf, err = s.AppendTo(buf); err != nil {
					*scratch = buf
					return "", fmt.Errorf("%w: %v", ErrProtocol, err)
				}
			}
		}
	}
	*scratch = buf
	return string(bytes.TrimSpace(buf)), nil
}

// skipSubtree consumes the current element's entire subtree.
func skipSubtree(s *xmlkit.Scanner) error {
	target := s.Depth() - 1
	for s.Depth() > target {
		kind, err := s.Next()
		if err != nil {
			return err
		}
		if kind == xmlkit.NoToken {
			return errors.New("truncated document")
		}
	}
	return nil
}

func local(name string) string {
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort: tiny maps
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// HandlerFunc processes one decoded request message and returns the
// response message. The context is the transport's request context (the
// HTTP request's, for the Server binding), so cancellation and deadlines
// propagate into service handlers. Returning a *Fault (or any error)
// produces a SOAP fault; other errors become Server faults.
type HandlerFunc func(ctx context.Context, req Message) (Message, error)

// Server is the HTTP binding of a SOAP endpoint. Operations are matched by
// the body's operation element name; the SOAPAction header, when present,
// must agree.
type Server struct {
	// Namespace is the service namespace advertised in responses.
	Namespace string
	handlers  map[string]HandlerFunc
	// respNames precomputes "<op>Response" per operation at registration
	// time so the dispatch fast path does not concatenate per request.
	respNames map[string]string
}

// NewServer returns an empty SOAP endpoint for the namespace.
func NewServer(namespace string) *Server {
	return &Server{
		Namespace: namespace,
		handlers:  make(map[string]HandlerFunc),
		respNames: make(map[string]string),
	}
}

// Handle registers a handler for the operation name. The response message
// returned by h gets the operation's conventional "<op>Response" name and
// the server namespace unless h set them.
func (s *Server) Handle(operation string, h HandlerFunc) error {
	if operation == "" || h == nil {
		return fmt.Errorf("%w: invalid handler registration", ErrProtocol)
	}
	if _, dup := s.handlers[operation]; dup {
		return fmt.Errorf("%w: duplicate operation %q", ErrProtocol, operation)
	}
	s.handlers[operation] = h
	s.respNames[operation] = operation + "Response"
	return nil
}

// Operations lists the registered operation names.
func (s *Server) Operations() []string {
	m := make(map[string]string, len(s.handlers))
	for k := range s.handlers {
		m[k] = ""
	}
	return sortedKeys(m)
}

// ServeHTTP implements http.Handler. The request message handed to the
// handler is pooled: its maps and slices are valid only for the duration
// of the handler call, so handlers must copy anything they retain (the
// host binding copies params into core.Values before invoking).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, ClientFault("SOAP requires POST, got %s", r.Method))
		return
	}
	req := acquireMessage()
	defer releaseMessage(req)
	bp := getEncBuf()
	body, err := readAllInto((*bp)[:0], r.Body)
	if err == nil {
		err = decodeInto(req, body)
	} else {
		err = fmt.Errorf("%w: reading envelope: %v", ErrProtocol, err)
	}
	*bp = body[:0]
	putEncBuf(bp)
	if err != nil {
		writeFault(w, http.StatusBadRequest, ClientFault("malformed envelope: %v", err))
		return
	}
	if action := strings.Trim(r.Header.Get("SOAPAction"), `"`); action != "" {
		// SOAPAction is conventionally namespace#operation or just the
		// operation; the suffix must match the body operation.
		if !strings.HasSuffix(action, req.Operation) {
			writeFault(w, http.StatusBadRequest, ClientFault("SOAPAction %q does not match operation %q", action, req.Operation))
			return
		}
	}
	h, ok := s.handlers[req.Operation]
	if !ok {
		writeFault(w, http.StatusBadRequest, ClientFault("unknown operation %q", req.Operation))
		return
	}
	// Lift the trace context (if any) off the transport so handlers can
	// join the caller's trace; the in-message SocTrace header entry is
	// available to handlers via req.Header as a fallback.
	resp, err := h(telemetry.ExtractHTTP(r.Context(), r.Header), *req)
	if err != nil {
		var f *Fault
		if !errors.As(err, &f) {
			f = ServerFault("%v", err)
		}
		writeFault(w, http.StatusInternalServerError, f)
		return
	}
	if resp.Operation == "" {
		resp.Operation = s.respNames[req.Operation]
	}
	if resp.Namespace == "" {
		resp.Namespace = s.Namespace
	}
	out := getEncBuf()
	enc, err := appendMessage((*out)[:0], resp)
	if err != nil {
		*out = enc[:0]
		putEncBuf(out)
		writeFault(w, http.StatusInternalServerError, ServerFault("response encoding: %v", err))
		return
	}
	w.Header().Set("Content-Type", ContentType)
	_, _ = w.Write(enc)
	*out = enc[:0]
	putEncBuf(out)
}

func writeFault(w http.ResponseWriter, status int, f *Fault) {
	out, err := EncodeFault(f)
	if err != nil {
		http.Error(w, f.String, status)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	_, _ = w.Write(out)
}

// Client invokes SOAP operations over HTTP — a thin binding over the
// call plane: trace context rides both the X-Soc-Trace transport header
// and an in-message SocTrace header entry, so it survives intermediaries
// that drop either layer.
type Client struct {
	// HTTPClient performs the requests; nil uses a client with a 30 s
	// timeout.
	HTTPClient *http.Client
	// Tracer records client spans; nil uses the process default.
	Tracer *telemetry.Tracer
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) tracer() *telemetry.Tracer {
	if c.Tracer != nil {
		return c.Tracer
	}
	return telemetry.Default()
}

// Call sends the message to url and decodes the response. SOAP faults are
// returned as *Fault errors. The context cancels the in-flight HTTP
// request, not just the wait for it.
func (c *Client) Call(ctx context.Context, url string, req Message) (Message, error) {
	sp, ctx := c.tracer().StartSpan(ctx, telemetry.KindClient, req.Operation)
	if sp != nil {
		sp.Target = url
		sp.Annotate("binding", "soap")
		// Copy-on-write: the caller's header map stays untouched.
		hdr := make(map[string]string, len(req.Header)+1)
		for k, v := range req.Header {
			hdr[k] = v
		}
		hdr[telemetry.SOAPHeaderName] = sp.TraceParent()
		req.Header = hdr
	}
	resp, err := c.call(ctx, url, req)
	sp.EndErr(err)
	return resp, err
}

func (c *Client) call(ctx context.Context, url string, req Message) (Message, error) {
	bp := getEncBuf()
	payload, err := appendMessage((*bp)[:0], req)
	if err != nil {
		*bp = payload[:0]
		putEncBuf(bp)
		return Message{}, err
	}
	httpReq, err := callplane.NewRequest(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		*bp = payload[:0]
		putEncBuf(bp)
		return Message{}, fmt.Errorf("soap: building request: %w", err)
	}
	httpReq.Header.Set("Content-Type", ContentType)
	action := req.Operation
	if req.Namespace != "" {
		action = req.Namespace + "#" + req.Operation
	}
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	httpResp, err := c.httpClient().Do(httpReq)
	// Do has fully sent (or abandoned) the request body by the time it
	// returns, so the payload buffer can go back to the pool here.
	*bp = payload[:0]
	putEncBuf(bp)
	if err != nil {
		return Message{}, fmt.Errorf("soap: transport: %w", err)
	}
	defer httpResp.Body.Close()
	return Decode(httpResp.Body)
}
