// Package soap implements the SOAP 1.1 document-style message protocol of
// CSE445 unit 3: envelope encoding and decoding, fault reporting, and the
// HTTP binding (both the server handler and the client), with SOAPAction-
// based operation dispatch.
//
// Messages are document/literal: the body carries a single operation
// element in the service namespace whose children are the named
// parameters. This mirrors what WSDL generation in soc/internal/wsdl
// advertises.
package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"soc/internal/xmlkit"
)

// Namespace constants for SOAP 1.1.
const (
	EnvelopeNS  = "http://schemas.xmlsoap.org/soap/envelope/"
	ContentType = "text/xml; charset=utf-8"
)

// ErrProtocol reports a malformed SOAP message.
var ErrProtocol = errors.New("soap: protocol error")

// Fault is a SOAP fault. It implements error so handlers can return it
// directly and clients can detect it with errors.As.
type Fault struct {
	// Code is the fault code: conventionally "Client" for caller errors
	// and "Server" for service-side failures.
	Code string
	// String is the human-readable fault string.
	String string
	// Detail carries optional application-specific detail.
	Detail string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("soap: fault %s: %s", f.Code, f.String)
}

// ClientFault returns a Client fault (the caller's message was at fault).
func ClientFault(format string, args ...any) *Fault {
	return &Fault{Code: "Client", String: fmt.Sprintf(format, args...)}
}

// ServerFault returns a Server fault (the service failed).
func ServerFault(format string, args ...any) *Fault {
	return &Fault{Code: "Server", String: fmt.Sprintf(format, args...)}
}

// Message is a decoded SOAP request or response body: the operation
// element name and its child parameter values.
type Message struct {
	// Operation is the local name of the body's single child element.
	Operation string
	// Namespace is the operation element's declared namespace URI (from
	// its xmlns attribute), if any.
	Namespace string
	// Params maps parameter element names to their text content, in the
	// order they appeared (ParamOrder preserves it).
	Params map[string]string
	// ParamOrder lists parameter names in document order.
	ParamOrder []string
	// Header holds SOAP header entries (name → text), if present.
	Header map[string]string
}

// Encode renders the message as a SOAP envelope.
func Encode(m Message) ([]byte, error) {
	if m.Operation == "" {
		return nil, fmt.Errorf("%w: empty operation", ErrProtocol)
	}
	env := xmlkit.NewElement("soap:Envelope")
	env.SetAttr("xmlns:soap", EnvelopeNS)
	if len(m.Header) > 0 {
		hdr := env.AppendChild(xmlkit.NewElement("soap:Header"))
		for _, name := range sortedKeys(m.Header) {
			h := hdr.AppendChild(xmlkit.NewElement(name))
			h.AppendChild(xmlkit.NewText(m.Header[name]))
		}
	}
	body := env.AppendChild(xmlkit.NewElement("soap:Body"))
	op := body.AppendChild(xmlkit.NewElement(m.Operation))
	if m.Namespace != "" {
		op.SetAttr("xmlns", m.Namespace)
	}
	order := m.ParamOrder
	if order == nil {
		order = sortedKeys(m.Params)
	}
	for _, name := range order {
		v, ok := m.Params[name]
		if !ok {
			return nil, fmt.Errorf("%w: ParamOrder names missing param %q", ErrProtocol, name)
		}
		p := op.AppendChild(xmlkit.NewElement(name))
		p.AppendChild(xmlkit.NewText(v))
	}
	doc := &xmlkit.Document{Root: env}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeFault renders a fault envelope.
func EncodeFault(f *Fault) ([]byte, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil fault", ErrProtocol)
	}
	env := xmlkit.NewElement("soap:Envelope")
	env.SetAttr("xmlns:soap", EnvelopeNS)
	body := env.AppendChild(xmlkit.NewElement("soap:Body"))
	fault := body.AppendChild(xmlkit.NewElement("soap:Fault"))
	code := fault.AppendChild(xmlkit.NewElement("faultcode"))
	code.AppendChild(xmlkit.NewText("soap:" + f.Code))
	str := fault.AppendChild(xmlkit.NewElement("faultstring"))
	str.AppendChild(xmlkit.NewText(f.String))
	if f.Detail != "" {
		det := fault.AppendChild(xmlkit.NewElement("detail"))
		det.AppendChild(xmlkit.NewText(f.Detail))
	}
	doc := &xmlkit.Document{Root: env}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses a SOAP envelope. A fault body decodes into a *Fault error.
func Decode(r io.Reader) (Message, error) {
	doc, err := xmlkit.ParseDocument(r)
	if err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	root := doc.Root
	if local(root.Name) != "Envelope" {
		return Message{}, fmt.Errorf("%w: root is <%s>, want Envelope", ErrProtocol, root.Name)
	}
	var body *xmlkit.Node
	header := map[string]string{}
	for _, c := range root.Elements() {
		switch local(c.Name) {
		case "Body":
			body = c
		case "Header":
			for _, h := range c.Elements() {
				header[local(h.Name)] = h.Text()
			}
		}
	}
	if body == nil {
		return Message{}, fmt.Errorf("%w: missing Body", ErrProtocol)
	}
	kids := body.Elements()
	if len(kids) != 1 {
		return Message{}, fmt.Errorf("%w: Body has %d children, want 1", ErrProtocol, len(kids))
	}
	op := kids[0]
	if local(op.Name) == "Fault" {
		f := &Fault{
			Code:   strings.TrimPrefix(local(op.ChildText("faultcode")), "soap:"),
			String: op.ChildText("faultstring"),
			Detail: op.ChildText("detail"),
		}
		// faultcode text may carry a prefix; strip any prefix.
		f.Code = local(f.Code)
		return Message{}, f
	}
	m := Message{Operation: local(op.Name), Params: map[string]string{}, Header: header}
	if ns, ok := op.Attr("xmlns"); ok {
		m.Namespace = ns
	}
	for _, p := range op.Elements() {
		name := local(p.Name)
		if _, dup := m.Params[name]; !dup {
			m.ParamOrder = append(m.ParamOrder, name)
		}
		m.Params[name] = p.Text()
	}
	return m, nil
}

func local(name string) string {
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort: tiny maps
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// HandlerFunc processes one decoded request message and returns the
// response message. The context is the transport's request context (the
// HTTP request's, for the Server binding), so cancellation and deadlines
// propagate into service handlers. Returning a *Fault (or any error)
// produces a SOAP fault; other errors become Server faults.
type HandlerFunc func(ctx context.Context, req Message) (Message, error)

// Server is the HTTP binding of a SOAP endpoint. Operations are matched by
// the body's operation element name; the SOAPAction header, when present,
// must agree.
type Server struct {
	// Namespace is the service namespace advertised in responses.
	Namespace string
	handlers  map[string]HandlerFunc
}

// NewServer returns an empty SOAP endpoint for the namespace.
func NewServer(namespace string) *Server {
	return &Server{Namespace: namespace, handlers: make(map[string]HandlerFunc)}
}

// Handle registers a handler for the operation name. The response message
// returned by h gets the operation's conventional "<op>Response" name and
// the server namespace unless h set them.
func (s *Server) Handle(operation string, h HandlerFunc) error {
	if operation == "" || h == nil {
		return fmt.Errorf("%w: invalid handler registration", ErrProtocol)
	}
	if _, dup := s.handlers[operation]; dup {
		return fmt.Errorf("%w: duplicate operation %q", ErrProtocol, operation)
	}
	s.handlers[operation] = h
	return nil
}

// Operations lists the registered operation names.
func (s *Server) Operations() []string {
	m := make(map[string]string, len(s.handlers))
	for k := range s.handlers {
		m[k] = ""
	}
	return sortedKeys(m)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, ClientFault("SOAP requires POST, got %s", r.Method))
		return
	}
	req, err := Decode(r.Body)
	if err != nil {
		writeFault(w, http.StatusBadRequest, ClientFault("malformed envelope: %v", err))
		return
	}
	if action := strings.Trim(r.Header.Get("SOAPAction"), `"`); action != "" {
		// SOAPAction is conventionally namespace#operation or just the
		// operation; the suffix must match the body operation.
		if !strings.HasSuffix(action, req.Operation) {
			writeFault(w, http.StatusBadRequest, ClientFault("SOAPAction %q does not match operation %q", action, req.Operation))
			return
		}
	}
	h, ok := s.handlers[req.Operation]
	if !ok {
		writeFault(w, http.StatusBadRequest, ClientFault("unknown operation %q", req.Operation))
		return
	}
	resp, err := h(r.Context(), req)
	if err != nil {
		var f *Fault
		if !errors.As(err, &f) {
			f = ServerFault("%v", err)
		}
		writeFault(w, http.StatusInternalServerError, f)
		return
	}
	if resp.Operation == "" {
		resp.Operation = req.Operation + "Response"
	}
	if resp.Namespace == "" {
		resp.Namespace = s.Namespace
	}
	out, err := Encode(resp)
	if err != nil {
		writeFault(w, http.StatusInternalServerError, ServerFault("response encoding: %v", err))
		return
	}
	w.Header().Set("Content-Type", ContentType)
	_, _ = w.Write(out)
}

func writeFault(w http.ResponseWriter, status int, f *Fault) {
	out, err := EncodeFault(f)
	if err != nil {
		http.Error(w, f.String, status)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	_, _ = w.Write(out)
}

// Client invokes SOAP operations over HTTP.
type Client struct {
	// HTTPClient performs the requests; nil uses a client with a 30 s
	// timeout.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Call sends the message to url and decodes the response. SOAP faults are
// returned as *Fault errors. The context cancels the in-flight HTTP
// request, not just the wait for it.
func (c *Client) Call(ctx context.Context, url string, req Message) (Message, error) {
	payload, err := Encode(req)
	if err != nil {
		return Message{}, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return Message{}, fmt.Errorf("soap: building request: %w", err)
	}
	httpReq.Header.Set("Content-Type", ContentType)
	action := req.Operation
	if req.Namespace != "" {
		action = req.Namespace + "#" + req.Operation
	}
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return Message{}, fmt.Errorf("soap: transport: %w", err)
	}
	defer httpResp.Body.Close()
	return Decode(httpResp.Body)
}
