package soap

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// sanitizeName maps arbitrary fuzz input to a valid XML element name so
// the property exercises value handling, not name validation.
func sanitizeName(s string, fallback string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return fallback
	}
	out := b.String()
	if len(out) > 24 {
		out = out[:24]
	}
	return out
}

// sanitizeValue strips the code points encoding/xml cannot carry
// (control characters other than tab/newline/cr are unrepresentable in
// XML 1.0) while keeping everything else, including markup characters.
func sanitizeValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == 0xFFFD || (r < 0x20 && r != '\t' && r != '\n' && r != '\r') {
			continue
		}
		b.WriteRune(r)
	}
	// The DOM builder drops whitespace-only text nodes, so wrap
	// whitespace-only values.
	if strings.TrimSpace(b.String()) == "" {
		return "v" + b.String() + "v"
	}
	return strings.TrimSpace(b.String())
}

func TestEncodeDecodeProperty(t *testing.T) {
	prop := func(opRaw string, keys [3]string, vals [3]string) bool {
		op := sanitizeName(opRaw, "Op")
		msg := Message{Operation: op, Params: map[string]string{}}
		for i := range keys {
			k := sanitizeName(keys[i], fmt.Sprintf("p%d", i))
			msg.Params[k] = sanitizeValue(vals[i])
		}
		data, err := Encode(msg)
		if err != nil {
			return false
		}
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return false
		}
		if got.Operation != op {
			return false
		}
		for k, v := range msg.Params {
			if got.Params[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFaultRoundTripProperty(t *testing.T) {
	prop := func(msgRaw, detailRaw string) bool {
		f := &Fault{Code: "Server", String: sanitizeValue(msgRaw), Detail: sanitizeValue(detailRaw)}
		data, err := EncodeFault(f)
		if err != nil {
			return false
		}
		_, err = Decode(bytes.NewReader(data))
		got, ok := err.(*Fault)
		if !ok {
			return false
		}
		return got.Code == "Server" && got.String == f.String && got.Detail == f.Detail
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
