package soap

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	req := Message{
		Operation:  "Encrypt",
		Namespace:  "http://soc.example/enc",
		Params:     map[string]string{"plaintext": "hello <world>", "key": "k1"},
		ParamOrder: []string{"plaintext", "key"},
		Header:     map[string]string{"token": "abc"},
	}
	data, err := Encode(req)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Operation != "Encrypt" || got.Namespace != "http://soc.example/enc" {
		t.Errorf("op/ns = %q/%q", got.Operation, got.Namespace)
	}
	if got.Params["plaintext"] != "hello <world>" || got.Params["key"] != "k1" {
		t.Errorf("params = %v", got.Params)
	}
	if len(got.ParamOrder) != 2 || got.ParamOrder[0] != "plaintext" {
		t.Errorf("order = %v", got.ParamOrder)
	}
	if got.Header["token"] != "abc" {
		t.Errorf("header = %v", got.Header)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(Message{}); err == nil {
		t.Error("empty operation accepted")
	}
	if _, err := Encode(Message{Operation: "Op", ParamOrder: []string{"missing"}}); err == nil {
		t.Error("ParamOrder with missing param accepted")
	}
}

func TestDecodeFault(t *testing.T) {
	data, err := EncodeFault(&Fault{Code: "Client", String: "bad input", Detail: "d"})
	if err != nil {
		t.Fatalf("EncodeFault: %v", err)
	}
	_, err = Decode(bytes.NewReader(data))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Decode returned %v, want *Fault", err)
	}
	if f.Code != "Client" || f.String != "bad input" || f.Detail != "d" {
		t.Errorf("fault = %+v", f)
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := []string{
		`not xml`,
		`<notenvelope/>`,
		`<soap:Envelope xmlns:soap="` + EnvelopeNS + `"/>`,
		`<soap:Envelope xmlns:soap="` + EnvelopeNS + `"><soap:Body/></soap:Envelope>`,
		`<soap:Envelope xmlns:soap="` + EnvelopeNS + `"><soap:Body><a/><b/></soap:Body></soap:Envelope>`,
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("Decode(%q) succeeded", c)
		}
	}
}

func TestEncodeFaultNil(t *testing.T) {
	if _, err := EncodeFault(nil); err == nil {
		t.Error("nil fault accepted")
	}
}

func newEchoServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer("http://soc.example/echo")
	if err := s.Handle("Echo", func(_ context.Context, req Message) (Message, error) {
		return Message{Params: map[string]string{"echo": req.Params["text"]}}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Handle("Fail", func(_ context.Context, req Message) (Message, error) {
		return Message{}, ClientFault("you asked for it")
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Handle("Crash", func(_ context.Context, req Message) (Message, error) {
		return Message{}, errors.New("internal breakage")
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServerClientRoundTrip(t *testing.T) {
	ts := httptest.NewServer(newEchoServer(t))
	defer ts.Close()
	c := &Client{}
	resp, err := c.Call(context.Background(), ts.URL, Message{
		Operation: "Echo",
		Namespace: "http://soc.example/echo",
		Params:    map[string]string{"text": "ping"},
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Operation != "EchoResponse" {
		t.Errorf("response op = %q", resp.Operation)
	}
	if resp.Params["echo"] != "ping" {
		t.Errorf("echo = %q", resp.Params["echo"])
	}
	if resp.Namespace != "http://soc.example/echo" {
		t.Errorf("response ns = %q", resp.Namespace)
	}
}

func TestServerFaultPropagation(t *testing.T) {
	ts := httptest.NewServer(newEchoServer(t))
	defer ts.Close()
	c := &Client{}
	_, err := c.Call(context.Background(), ts.URL, Message{Operation: "Fail"})
	var f *Fault
	if !errors.As(err, &f) || f.Code != "Client" {
		t.Errorf("err = %v, want Client fault", err)
	}
	_, err = c.Call(context.Background(), ts.URL, Message{Operation: "Crash"})
	if !errors.As(err, &f) || f.Code != "Server" || !strings.Contains(f.String, "internal breakage") {
		t.Errorf("err = %v, want Server fault", err)
	}
}

func TestServerUnknownOperation(t *testing.T) {
	ts := httptest.NewServer(newEchoServer(t))
	defer ts.Close()
	c := &Client{}
	_, err := c.Call(context.Background(), ts.URL, Message{Operation: "Nope"})
	var f *Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "unknown operation") {
		t.Errorf("err = %v", err)
	}
}

func TestServerRejectsGet(t *testing.T) {
	ts := httptest.NewServer(newEchoServer(t))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestServerSOAPActionMismatch(t *testing.T) {
	ts := httptest.NewServer(newEchoServer(t))
	defer ts.Close()
	payload, _ := Encode(Message{Operation: "Echo", Params: map[string]string{"text": "x"}})
	req, _ := http.NewRequest(http.MethodPost, ts.URL, bytes.NewReader(payload))
	req.Header.Set("Content-Type", ContentType)
	req.Header.Set("SOAPAction", `"http://soc.example/echo#Different"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestServerHandleValidation(t *testing.T) {
	s := NewServer("ns")
	if err := s.Handle("", func(context.Context, Message) (Message, error) { return Message{}, nil }); err == nil {
		t.Error("empty op accepted")
	}
	if err := s.Handle("X", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if err := s.Handle("X", func(context.Context, Message) (Message, error) { return Message{}, nil }); err != nil {
		t.Errorf("valid registration rejected: %v", err)
	}
	if err := s.Handle("X", func(context.Context, Message) (Message, error) { return Message{}, nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
	ops := s.Operations()
	if len(ops) != 1 || ops[0] != "X" {
		t.Errorf("ops = %v", ops)
	}
}

func TestClientTransportError(t *testing.T) {
	c := &Client{}
	if _, err := c.Call(context.Background(), "http://127.0.0.1:1/closed", Message{Operation: "Op"}); err == nil {
		t.Error("transport error not reported")
	}
}

// TestClientCallContextCancel proves cancellation aborts the in-flight
// HTTP request itself: the stalled server handler observes its request
// context dying, so no goroutine is left holding a live connection.
func TestClientCallContextCancel(t *testing.T) {
	released := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so net/http starts its background read —
		// that's what lets the server notice the client went away.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // stall until the client gives up
		close(released)
	}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := &Client{}
	start := time.Now()
	_, err := c.Call(ctx, ts.URL, Message{Operation: "Slow"})
	if err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("server handler never saw the request die: request not cancelled")
	}
}

func TestFaultHelpers(t *testing.T) {
	f := ClientFault("bad %d", 7)
	if f.Code != "Client" || f.String != "bad 7" {
		t.Errorf("ClientFault = %+v", f)
	}
	if !strings.Contains(f.Error(), "Client") {
		t.Errorf("Error() = %q", f.Error())
	}
	if ServerFault("x").Code != "Server" {
		t.Error("ServerFault code wrong")
	}
}
