package xmlstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func tempStore(t *testing.T) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "account.xml")
	s, err := Open(path, "accounts", "account")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInsertGetUpdateDelete(t *testing.T) {
	s := tempStore(t)
	rec := Record{ID: "u1", Fields: map[string]string{"name": "Ada", "ssn": "123-45-6789"}}
	if err := s.Insert(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(rec); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate insert: %v", err)
	}
	got, err := s.Get("u1")
	if err != nil || got.Fields["name"] != "Ada" {
		t.Errorf("Get: %+v %v", got, err)
	}
	got.Fields["name"] = "Ada L."
	if err := s.Update(got); err != nil {
		t.Fatal(err)
	}
	got2, _ := s.Get("u1")
	if got2.Fields["name"] != "Ada L." {
		t.Errorf("update lost: %+v", got2)
	}
	if err := s.Update(Record{ID: "ghost"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing: %v", err)
	}
	if err := s.Delete("u1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("u1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if _, err := s.Get("u1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "account.xml")
	s, err := Open(path, "accounts", "account")
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Insert(Record{ID: "u1", Fields: map[string]string{"name": "Ada"}})
	_ = s.Insert(Record{ID: "u2", Fields: map[string]string{"name": "Grace"}})

	reopened, err := Open(path, "accounts", "account")
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 2 {
		t.Fatalf("len = %d", reopened.Len())
	}
	rec, err := reopened.Get("u2")
	if err != nil || rec.Fields["name"] != "Grace" {
		t.Errorf("reopened record: %+v %v", rec, err)
	}
	// The on-disk format is real XML with the expected element names.
	data, _ := os.ReadFile(path)
	for _, want := range []string{"<accounts>", `<account id="u1">`, "<name>Ada</name>"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("file missing %q:\n%s", want, data)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", "r", "i"); err == nil {
		t.Error("empty path accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.xml")
	_ = os.WriteFile(bad, []byte("not xml"), 0o644)
	if _, err := Open(bad, "accounts", "account"); err == nil {
		t.Error("corrupt file accepted")
	}
	wrongRoot := filepath.Join(dir, "wrong.xml")
	_ = os.WriteFile(wrongRoot, []byte("<other/>"), 0o644)
	if _, err := Open(wrongRoot, "accounts", "account"); err == nil {
		t.Error("wrong root accepted")
	}
	noID := filepath.Join(dir, "noid.xml")
	_ = os.WriteFile(noID, []byte("<accounts><account><name>x</name></account></accounts>"), 0o644)
	s, err := Open(noID, "accounts", "account")
	if err != nil {
		t.Fatalf("id-less record must be skipped, not fatal: %v", err)
	}
	if s.Len() != 0 || s.Report().SkippedItems != 1 {
		t.Errorf("len=%d report=%+v, want 0 records and 1 skipped", s.Len(), s.Report())
	}
}

// TestSalvageTornFile: a file cut mid-record — the shape a crashed
// writer leaves — loads every complete record and reports the salvage.
func TestSalvageTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "accounts.xml")
	s, err := Open(path, "accounts", "account")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, id := range []string{"alice", "bob", "carol"} {
		if err := s.Insert(Record{ID: id, Fields: map[string]string{"name": id}}); err != nil {
			t.Fatalf("insert %s: %v", id, err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Tear the file in the middle of the last record.
	cut := len(data) - len("rol</name></account></accounts>")
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatalf("tear: %v", err)
	}

	re, err := Open(path, "accounts", "account")
	if err != nil {
		t.Fatalf("torn file must salvage, not fail: %v", err)
	}
	rep := re.Report()
	if !rep.Salvaged || rep.ParseErr == "" {
		t.Errorf("report = %+v, want Salvaged with the parse error recorded", rep)
	}
	if re.Len() != 2 {
		t.Fatalf("salvaged %d records, want the 2 complete ones: %v", re.Len(), re.All())
	}
	for _, id := range []string{"alice", "bob"} {
		if rec, err := re.Get(id); err != nil || rec.Fields["name"] != id {
			t.Errorf("record %q did not survive the tear: %+v %v", id, rec, err)
		}
	}
	// The next flush heals the file: a further reopen is clean.
	if err := re.Insert(Record{ID: "dave", Fields: map[string]string{"name": "dave"}}); err != nil {
		t.Fatalf("insert after salvage: %v", err)
	}
	healed, err := Open(path, "accounts", "account")
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	if healed.Report().Salvaged || healed.Len() != 3 {
		t.Fatalf("heal failed: report=%+v len=%d", healed.Report(), healed.Len())
	}
}

// TestSalvageNoCompleteRecord: a file torn before any record closes
// salvages to an empty store as long as the root opened.
func TestSalvageNoCompleteRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "accounts.xml")
	_ = os.WriteFile(path, []byte(`<accounts><account id="a"><nam`), 0o644)
	s, err := Open(path, "accounts", "account")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !s.Report().Salvaged || s.Len() != 0 {
		t.Fatalf("report=%+v len=%d, want empty salvaged store", s.Report(), s.Len())
	}
}

func TestInsertValidation(t *testing.T) {
	s := tempStore(t)
	if err := s.Insert(Record{}); err == nil {
		t.Error("record without id accepted")
	}
}

func TestFindAndAll(t *testing.T) {
	s := tempStore(t)
	_ = s.Insert(Record{ID: "b", Fields: map[string]string{"state": "approved"}})
	_ = s.Insert(Record{ID: "a", Fields: map[string]string{"state": "approved"}})
	_ = s.Insert(Record{ID: "c", Fields: map[string]string{"state": "pending"}})
	got := s.Find("state", "approved")
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Errorf("Find = %+v", got)
	}
	if len(s.Find("state", "rejected")) != 0 {
		t.Error("phantom find")
	}
	all := s.All()
	if len(all) != 3 || all[0].ID != "a" || all[2].ID != "c" {
		t.Errorf("All = %+v", all)
	}
}

func TestRecordIsolation(t *testing.T) {
	s := tempStore(t)
	orig := Record{ID: "u", Fields: map[string]string{"k": "v"}}
	_ = s.Insert(orig)
	orig.Fields["k"] = "mutated-after-insert"
	got, _ := s.Get("u")
	if got.Fields["k"] != "v" {
		t.Error("insert did not copy the record")
	}
	got.Fields["k"] = "mutated-after-get"
	again, _ := s.Get("u")
	if again.Fields["k"] != "v" {
		t.Error("get returned aliased record")
	}
}

func TestEscapedContent(t *testing.T) {
	s := tempStore(t)
	_ = s.Insert(Record{ID: "x", Fields: map[string]string{"note": `a<b & "c"`}})
	got, err := s.Get("x")
	if err != nil || got.Fields["note"] != `a<b & "c"` {
		t.Errorf("escaped round trip: %+v %v", got, err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := tempStore(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a' + i))
			if err := s.Insert(Record{ID: id, Fields: map[string]string{"n": id}}); err != nil {
				t.Errorf("Insert %s: %v", id, err)
			}
			for j := 0; j < 20; j++ {
				_, _ = s.Get(id)
				s.Find("n", id)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Errorf("len = %d", s.Len())
	}
}
