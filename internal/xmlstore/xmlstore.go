// Package xmlstore is the XML-file record store behind the Figure 4 web
// application, whose provider explicitly persists accounts to an
// "account.xml" file: typed records as XML elements, atomic durable file
// rewrites (write-temp, fsync, rename, fsync the directory), a
// corruption-tolerant loader that salvages torn files instead of erroring
// wholesale, concurrent access via an RW mutex, and simple field
// matching. It is deliberately a file-backed store, not a database —
// matching what the course project actually uses.
package xmlstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"soc/internal/wal"
	"soc/internal/xmlkit"
)

// ErrNotFound reports a missing record.
var ErrNotFound = errors.New("xmlstore: not found")

// ErrDuplicate reports an insert with an existing id.
var ErrDuplicate = errors.New("xmlstore: duplicate id")

// Record is one stored entity: an id plus flat string fields.
type Record struct {
	ID     string
	Fields map[string]string
}

// Store is an XML-file-backed record collection.
type Store struct {
	mu     sync.RWMutex
	path   string
	root   string // root element name, e.g. "accounts"
	item   string // record element name, e.g. "account"
	recs   map[string]Record
	report LoadReport
}

// LoadReport describes what Open found on disk: a clean file, or
// corruption it tolerated. A salvaged load keeps every record that could
// still be decoded and remembers what it had to give up — callers decide
// whether that is acceptable for their data.
type LoadReport struct {
	// Salvaged is true when the file did not parse wholesale and the
	// loader fell back to recovering the parseable prefix (a torn write
	// from a crashed process leaves exactly that shape).
	Salvaged bool
	// SkippedItems counts records dropped for structural damage: a
	// missing id or an unparseable element.
	SkippedItems int
	// ParseErr is the original whole-document parse error when Salvaged,
	// kept for diagnostics.
	ParseErr string
}

// Open loads (or initializes) a store at path with the given root and
// record element names. A damaged file — torn tail from a crashed
// writer, or structurally broken records — does not fail the open:
// the loader salvages every decodable record and reports what it
// skipped via Report.
func Open(path, root, item string) (*Store, error) {
	if path == "" || root == "" || item == "" {
		return nil, errors.New("xmlstore: path, root and item are required")
	}
	s := &Store{path: path, root: root, item: item, recs: map[string]Record{}}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return s, nil
	case err != nil:
		return nil, fmt.Errorf("xmlstore: reading %s: %w", path, err)
	}
	doc, err := xmlkit.ParseDocumentString(string(data))
	if err != nil {
		doc = salvageDocument(string(data), root, item)
		if doc == nil {
			return nil, fmt.Errorf("xmlstore: parsing %s: %w", path, err)
		}
		s.report.Salvaged = true
		s.report.ParseErr = err.Error()
	}
	if doc.Root.Name != root {
		return nil, fmt.Errorf("xmlstore: %s has root <%s>, want <%s>", path, doc.Root.Name, root)
	}
	for _, el := range doc.Root.Elements() {
		if el.Name != item {
			continue
		}
		id, _ := el.Attr("id")
		if id == "" {
			s.report.SkippedItems++
			continue
		}
		rec := Record{ID: id, Fields: map[string]string{}}
		for _, f := range el.Elements() {
			rec.Fields[f.Name] = f.Text()
		}
		s.recs[id] = rec
	}
	return s, nil
}

// salvageDocument recovers the parseable prefix of a damaged store file:
// it cuts the raw bytes at the last complete closing item tag, reseals
// the root element and reparses. A file torn mid-record by a crash loses
// only the torn record; anything before it survives. Returns nil when
// nothing can be recovered.
func salvageDocument(data, root, item string) *xmlkit.Document {
	closeTag := "</" + item + ">"
	cut := strings.LastIndex(data, closeTag)
	if cut < 0 {
		// No complete record; an intact opening root still means a valid
		// empty store.
		cut = strings.Index(data, "<"+root+">")
		if cut < 0 {
			return nil
		}
		cut += len("<" + root + ">")
		doc, err := xmlkit.ParseDocumentString(data[:cut] + "</" + root + ">")
		if err != nil {
			return nil
		}
		return doc
	}
	doc, err := xmlkit.ParseDocumentString(data[:cut+len(closeTag)] + "</" + root + ">")
	if err != nil {
		return nil
	}
	return doc
}

// Report returns what Open found on disk (clean load, or the salvage
// decisions it made).
func (s *Store) Report() LoadReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.report
}

// flushLocked writes the store atomically and durably (temp file,
// fsync, rename, directory fsync — the full crash-safe sequence, shared
// with the WAL engine). Callers hold the write lock.
func (s *Store) flushLocked() error {
	root := xmlkit.NewElement(s.root)
	ids := make([]string, 0, len(s.recs))
	for id := range s.recs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := s.recs[id]
		el := root.AppendChild(xmlkit.NewElement(s.item))
		el.SetAttr("id", rec.ID)
		fields := make([]string, 0, len(rec.Fields))
		for f := range rec.Fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			fe := el.AppendChild(xmlkit.NewElement(f))
			fe.AppendChild(xmlkit.NewText(rec.Fields[f]))
		}
	}
	doc := &xmlkit.Document{Root: root}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		return fmt.Errorf("xmlstore: rendering: %w", err)
	}
	if err := wal.WriteFileAtomic(s.path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("xmlstore: replacing %s: %w", s.path, err)
	}
	return nil
}

func copyRecord(r Record) Record {
	out := Record{ID: r.ID, Fields: make(map[string]string, len(r.Fields))}
	for k, v := range r.Fields {
		out.Fields[k] = v
	}
	return out
}

// Insert adds a new record.
func (s *Store) Insert(rec Record) error {
	if rec.ID == "" {
		return errors.New("xmlstore: record needs an id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.recs[rec.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, rec.ID)
	}
	s.recs[rec.ID] = copyRecord(rec)
	return s.flushLocked()
}

// Update replaces an existing record.
func (s *Store) Update(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[rec.ID]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, rec.ID)
	}
	s.recs[rec.ID] = copyRecord(rec)
	return s.flushLocked()
}

// Get fetches a record by id.
func (s *Store) Get(id string) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.recs[id]
	if !ok {
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return copyRecord(rec), nil
}

// Delete removes a record by id.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(s.recs, id)
	return s.flushLocked()
}

// Find returns records whose field equals value, sorted by id.
func (s *Store) Find(field, value string) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, rec := range s.recs {
		if rec.Fields[field] == value {
			out = append(out, copyRecord(rec))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// All returns every record sorted by id.
func (s *Store) All() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.recs))
	for _, rec := range s.recs {
		out = append(out, copyRecord(rec))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the record count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}
