package nav

import (
	"context"
	"fmt"
	"strings"

	"soc/internal/maze"
	"soc/internal/robot"
)

// Summary aggregates episodes of one algorithm over a corpus.
type Summary struct {
	Algorithm   string
	Runs        int
	Solved      int
	MeanSteps   float64 // over solved runs
	MeanVisited float64 // over solved runs
	MeanExcess  float64 // mean Steps/Optimal over solved runs
}

// SolveRate is the fraction of solved runs.
func (s Summary) SolveRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Solved) / float64(s.Runs)
}

// CorpusSpec describes a maze corpus: sizes × seeds × generator.
type CorpusSpec struct {
	Sizes     []int // square mazes, must be odd-friendly ≥ 2
	Seeds     int   // seeds 0..Seeds-1 per size
	Algorithm maze.Algorithm
	Budget    int // step budget per episode (0 = default)
}

// Evaluate runs every named controller over the corpus and returns one
// summary per controller in the given order.
func Evaluate(ctx context.Context, algorithms []string, spec CorpusSpec) ([]Summary, error) {
	if len(algorithms) == 0 || len(spec.Sizes) == 0 || spec.Seeds <= 0 {
		return nil, fmt.Errorf("nav: empty evaluation spec")
	}
	summaries := make([]Summary, len(algorithms))
	for i, alg := range algorithms {
		summaries[i].Algorithm = alg
		var steps, visited, excess float64
		for _, size := range spec.Sizes {
			for seed := 0; seed < spec.Seeds; seed++ {
				m, err := maze.Generate(size, size, spec.Algorithm, int64(seed))
				if err != nil {
					return nil, err
				}
				r, err := robot.New(m)
				if err != nil {
					return nil, err
				}
				ctrl, err := New(alg, int64(seed))
				if err != nil {
					return nil, err
				}
				ep, err := Run(ctx, ctrl, r, spec.Budget)
				if err != nil {
					return nil, fmt.Errorf("nav: %s on %dx%d seed %d: %w", alg, size, size, seed, err)
				}
				summaries[i].Runs++
				if ep.Solved {
					summaries[i].Solved++
					steps += float64(ep.Steps)
					visited += float64(ep.Visited)
					if ep.Optimal > 0 {
						excess += float64(ep.Steps) / float64(ep.Optimal)
					}
				}
			}
		}
		if summaries[i].Solved > 0 {
			n := float64(summaries[i].Solved)
			summaries[i].MeanSteps = steps / n
			summaries[i].MeanVisited = visited / n
			summaries[i].MeanExcess = excess / n
		}
	}
	return summaries, nil
}

// FormatSummaries renders the evaluation as the Figure 2 experiment table.
func FormatSummaries(summaries []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %8s %10s %10s %8s\n",
		"algorithm", "runs", "solved", "meanSteps", "visited", "excess")
	for _, s := range summaries {
		fmt.Fprintf(&b, "%-22s %6d %7.0f%% %10.1f %10.1f %7.2fx\n",
			s.Algorithm, s.Runs, s.SolveRate()*100, s.MeanSteps, s.MeanVisited, s.MeanExcess)
	}
	return b.String()
}
