package nav

import (
	"context"
	"strings"
	"testing"

	"soc/internal/maze"
	"soc/internal/robot"
)

func runOn(t *testing.T, alg string, m *maze.Maze, budget int) Episode {
	t.Helper()
	r, err := robot.New(m)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(alg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Run(context.Background(), ctrl, r, budget)
	if err != nil {
		t.Fatalf("Run(%s): %v", alg, err)
	}
	return ep
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := New("dijkstra-magic", 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgorithmsList(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 5 || algs[0] != AlgTwoDistance {
		t.Errorf("algorithms = %v", algs)
	}
	for _, a := range algs {
		if _, err := New(a, 0); err != nil {
			t.Errorf("New(%s): %v", a, err)
		}
	}
}

func TestOracleIsOptimal(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		m, _ := maze.Generate(11, 11, maze.DFS, seed)
		ep := runOn(t, AlgOracle, m, 0)
		if !ep.Solved {
			t.Fatalf("seed %d: oracle failed", seed)
		}
		if ep.Steps != ep.Optimal {
			t.Errorf("seed %d: oracle took %d steps, optimal %d", seed, ep.Steps, ep.Optimal)
		}
		if ep.Bumps != 0 {
			t.Errorf("seed %d: oracle bumped %d times", seed, ep.Bumps)
		}
	}
}

func TestWallFollowersSolvePerfectMazes(t *testing.T) {
	for _, alg := range []string{AlgWallLeft, AlgWallRight} {
		for seed := int64(0); seed < 8; seed++ {
			m, _ := maze.Generate(9, 9, maze.DFS, seed)
			ep := runOn(t, alg, m, 20000)
			if !ep.Solved {
				t.Errorf("%s seed %d: unsolved", alg, seed)
			}
			if ep.Steps < ep.Optimal {
				t.Errorf("%s seed %d: %d steps beats optimal %d", alg, seed, ep.Steps, ep.Optimal)
			}
		}
	}
}

func TestTwoDistanceSolvesPerfectMazes(t *testing.T) {
	solved := 0
	for seed := int64(0); seed < 12; seed++ {
		m, _ := maze.Generate(9, 9, maze.DFS, seed)
		ep := runOn(t, AlgTwoDistance, m, 20000)
		if ep.Solved {
			solved++
		}
	}
	// The greedy+escape controller must solve the large majority; its
	// occasional failure versus wall-following is the lesson.
	if solved < 10 {
		t.Errorf("two-distance solved only %d/12", solved)
	}
}

func TestTwoDistanceBeatsWallFollowOnOpenMazes(t *testing.T) {
	// On division mazes (rooms, multiple routes) greedy should usually
	// take fewer steps than wall-following when both solve.
	greedyWins := 0
	comparisons := 0
	for seed := int64(0); seed < 10; seed++ {
		m, _ := maze.Generate(11, 11, maze.Division, seed)
		epG := runOn(t, AlgTwoDistance, m, 20000)
		m2, _ := maze.Generate(11, 11, maze.Division, seed)
		epW := runOn(t, AlgWallRight, m2, 20000)
		if epG.Solved && epW.Solved {
			comparisons++
			if epG.Steps <= epW.Steps {
				greedyWins++
			}
		}
	}
	if comparisons == 0 {
		t.Fatal("no comparable runs")
	}
	if greedyWins*2 < comparisons {
		t.Errorf("greedy won only %d/%d open-maze comparisons", greedyWins, comparisons)
	}
}

func TestRandomWalkEventuallySolvesSmallMaze(t *testing.T) {
	m, _ := maze.Generate(5, 5, maze.DFS, 3)
	ep := runOn(t, AlgRandom, m, 100000)
	if !ep.Solved {
		t.Error("random walk failed on tiny maze with huge budget")
	}
}

func TestBudgetExhaustionIsNotAnError(t *testing.T) {
	m, _ := maze.Generate(15, 15, maze.DFS, 1)
	r, _ := robot.New(m)
	ctrl, _ := New(AlgRandom, 1)
	ep, err := Run(context.Background(), ctrl, r, 3)
	if err != nil {
		t.Fatalf("budget exhaustion errored: %v", err)
	}
	if ep.Solved {
		t.Error("solved in 3 steps?!")
	}
}

func TestRunRecordsOptimal(t *testing.T) {
	m, _ := maze.Generate(9, 9, maze.DFS, 2)
	ep := runOn(t, AlgOracle, m, 0)
	want, _ := m.ShortestPath()
	if ep.Optimal != len(want)-1 {
		t.Errorf("optimal = %d, want %d", ep.Optimal, len(want)-1)
	}
}

func TestTwoDistanceMachineExport(t *testing.T) {
	ctrl, _ := New(AlgTwoDistance, 0)
	td, ok := ctrl.(*twoDistance)
	if !ok {
		t.Fatal("wrong controller type")
	}
	dot := td.Machine().DOT()
	for _, want := range []string{"decide", "escape", "done", "greedy-unvisited"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestEvaluateCorpus(t *testing.T) {
	spec := CorpusSpec{Sizes: []int{7, 9}, Seeds: 4, Algorithm: maze.DFS, Budget: 20000}
	sums, err := Evaluate(context.Background(), []string{AlgOracle, AlgWallRight}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summaries = %v", sums)
	}
	oracle := sums[0]
	if oracle.Runs != 8 || oracle.Solved != 8 || oracle.SolveRate() != 1 {
		t.Errorf("oracle summary = %+v", oracle)
	}
	if oracle.MeanExcess < 0.99 || oracle.MeanExcess > 1.01 {
		t.Errorf("oracle excess = %v", oracle.MeanExcess)
	}
	wall := sums[1]
	if wall.Solved != 8 {
		t.Errorf("wall summary = %+v", wall)
	}
	if wall.MeanSteps < oracle.MeanSteps {
		t.Errorf("wall (%v) beat oracle (%v)", wall.MeanSteps, oracle.MeanSteps)
	}
	out := FormatSummaries(sums)
	if !strings.Contains(out, AlgOracle) || !strings.Contains(out, "100%") {
		t.Errorf("table:\n%s", out)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(context.Background(), nil, CorpusSpec{Sizes: []int{5}, Seeds: 1}); err == nil {
		t.Error("empty algorithms accepted")
	}
	if _, err := Evaluate(context.Background(), []string{AlgOracle}, CorpusSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Evaluate(context.Background(), []string{"nope"}, CorpusSpec{Sizes: []int{5}, Seeds: 1}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSummaryZeroRuns(t *testing.T) {
	var s Summary
	if s.SolveRate() != 0 {
		t.Error("zero-run solve rate wrong")
	}
}
