// Package nav implements the maze-navigation algorithms the CSE101 course
// teaches through the robotics environment: the short-distance greedy
// ("two-distance") algorithm of the paper's Figure 2, left- and right-hand
// wall following, a random walk, and the BFS-optimal oracle baseline.
// Controllers are expressed as finite state machines over the robot
// environment (soc/internal/fsm + soc/internal/robot) and evaluated with
// uniform episode metrics.
package nav

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"soc/internal/fsm"
	"soc/internal/maze"
	"soc/internal/robot"
)

// Controller names.
const (
	AlgTwoDistance = "two-distance-greedy"
	AlgWallLeft    = "wall-follow-left"
	AlgWallRight   = "wall-follow-right"
	AlgRandom      = "random-walk"
	AlgOracle      = "bfs-oracle"
)

// Algorithms lists the controller names in canonical order.
func Algorithms() []string {
	return []string{AlgTwoDistance, AlgWallRight, AlgWallLeft, AlgRandom, AlgOracle}
}

// Episode is the outcome of one navigation run.
type Episode struct {
	Algorithm string
	Solved    bool
	Steps     int // forward moves
	Turns     int
	Bumps     int
	Visited   int // distinct cells entered
	Optimal   int // BFS shortest-path length for reference
}

// Controller drives a robot toward the goal.
type Controller interface {
	// Name identifies the algorithm.
	Name() string
	// Step performs one decision; it is called until the robot reaches
	// the goal or the budget runs out.
	Step(ctx context.Context, r *robot.Robot) error
}

// New returns a controller by algorithm name. seed feeds the stochastic
// controllers.
func New(name string, seed int64) (Controller, error) {
	switch name {
	case AlgTwoDistance:
		return newTwoDistance(), nil
	case AlgWallLeft:
		return &wallFollow{left: true}, nil
	case AlgWallRight:
		return &wallFollow{left: false}, nil
	case AlgRandom:
		return &randomWalk{rng: rand.New(rand.NewSource(seed))}, nil
	case AlgOracle:
		return &oracle{}, nil
	default:
		return nil, fmt.Errorf("nav: unknown algorithm %q", name)
	}
}

// ErrBudget reports a run exceeding the step budget.
var ErrBudget = errors.New("nav: step budget exceeded")

// Run drives the controller until the goal or the budget is exhausted and
// returns the episode metrics. A run that cannot finish is not an error —
// Solved is simply false (greedy legitimately fails on some mazes, which
// is the pedagogical point).
func Run(ctx context.Context, ctrl Controller, r *robot.Robot, budget int) (Episode, error) {
	if budget <= 0 {
		budget = 10000
	}
	optimal := -1
	if path, err := r.Maze().ShortestPath(); err == nil {
		optimal = len(path) - 1
	}
	var runErr error
	for i := 0; !r.AtGoal(); i++ {
		if i >= budget {
			runErr = ErrBudget
			break
		}
		if err := ctx.Err(); err != nil {
			return Episode{}, err
		}
		if err := ctrl.Step(ctx, r); err != nil {
			runErr = err
			break
		}
	}
	ep := Episode{
		Algorithm: ctrl.Name(),
		Solved:    r.AtGoal(),
		Steps:     r.Steps(),
		Turns:     r.Turns(),
		Bumps:     r.Bumps(),
		Visited:   r.Visited(),
		Optimal:   optimal,
	}
	if runErr != nil && !errors.Is(runErr, ErrBudget) && !ep.Solved {
		return ep, runErr
	}
	return ep, nil
}

// twoDistance is the paper's Figure 2 algorithm as an FSM: in the DECIDE
// state the robot compares the two goal-axis distances (|dx| and |dy|) and
// prefers the open direction that most reduces the larger one; when the
// preferred directions are blocked or lead to an already-visited cell it
// falls back to any open unvisited direction, then to wall-following for
// one step (ESCAPE state) to get around obstacles.
type twoDistance struct {
	machine *fsm.Machine[*robot.Robot]
	runner  *fsm.Runner[*robot.Robot]
}

func newTwoDistance() *twoDistance {
	move := func(d func(r *robot.Robot) (maze.Dir, bool)) fsm.Action[*robot.Robot] {
		return func(_ context.Context, r *robot.Robot) error {
			dir, ok := d(r)
			if !ok {
				return nil
			}
			r.Face(dir)
			return r.Forward()
		}
	}
	m, err := fsm.NewBuilder[*robot.Robot]("two-distance").
		State("decide", "escape", "done").
		Initial("decide").
		Accepting("done").
		On(fsm.Transition[*robot.Robot]{
			From: "decide", To: "done", Label: "at-goal",
			Guard: func(r *robot.Robot) bool { return r.AtGoal() },
		}).
		On(fsm.Transition[*robot.Robot]{
			From: "decide", To: "decide", Label: "greedy-unvisited",
			Guard:  func(r *robot.Robot) bool { _, ok := greedyDir(r, true); return ok },
			Action: move(func(r *robot.Robot) (maze.Dir, bool) { return greedyDir(r, true) }),
		}).
		On(fsm.Transition[*robot.Robot]{
			From: "decide", To: "escape", Label: "blocked",
		}).
		On(fsm.Transition[*robot.Robot]{
			From: "escape", To: "decide", Label: "least-visited",
			Action: move(leastVisitedDir),
		}).
		Build()
	if err != nil {
		panic(err) // static definition; failure is a programming bug
	}
	return &twoDistance{machine: m, runner: m.NewRunner()}
}

func (t *twoDistance) Name() string { return AlgTwoDistance }

// Machine exposes the underlying FSM (for DOT export, Figure 2).
func (t *twoDistance) Machine() *fsm.Machine[*robot.Robot] { return t.machine }

// TwoDistanceDOT renders the two-distance controller's state machine in
// Graphviz DOT — the mechanical form of the paper's Figure 2.
func TwoDistanceDOT() string { return newTwoDistance().machine.DOT() }

func (t *twoDistance) Step(ctx context.Context, r *robot.Robot) error {
	return t.runner.Step(ctx, r)
}

// greedyDir picks the open direction that reduces the goal distance,
// preferring the axis with the larger remaining distance (the
// two-distance comparison). When unvisitedOnly, directions into visited
// cells are skipped.
func greedyDir(r *robot.Robot, unvisitedOnly bool) (maze.Dir, bool) {
	dx, dy := r.GoalDelta()
	var prefs []maze.Dir
	xDir := maze.East
	if dx < 0 {
		xDir = maze.West
	}
	yDir := maze.South
	if dy < 0 {
		yDir = maze.North
	}
	if abs(dx) >= abs(dy) {
		prefs = []maze.Dir{xDir, yDir}
	} else {
		prefs = []maze.Dir{yDir, xDir}
	}
	for _, d := range prefs {
		if d == xDir && dx == 0 {
			continue
		}
		if d == yDir && dy == 0 {
			continue
		}
		if !r.Maze().CanMove(r.Position(), d) {
			continue
		}
		if unvisitedOnly && r.VisitCount(r.Position().Move(d)) > 0 {
			continue
		}
		return d, true
	}
	if !unvisitedOnly {
		return 0, false
	}
	// Any open unvisited direction.
	for _, d := range r.Maze().OpenDirections(r.Position()) {
		if r.VisitCount(r.Position().Move(d)) == 0 {
			return d, true
		}
	}
	return 0, false
}

// leastVisitedDir returns the open direction whose target cell has the
// fewest visits — a Tremaux-style escape that guarantees progress.
func leastVisitedDir(r *robot.Robot) (maze.Dir, bool) {
	best := maze.Dir(-1)
	bestCount := int(^uint(0) >> 1)
	for _, d := range r.Maze().OpenDirections(r.Position()) {
		if c := r.VisitCount(r.Position().Move(d)); c < bestCount {
			best, bestCount = d, c
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// wallFollow keeps one hand on a wall: for the right-hand rule, turn right
// if open, else forward, else turn left. Complete for simply-connected
// mazes with the goal on a wall-connected path.
type wallFollow struct{ left bool }

func (w *wallFollow) Name() string {
	if w.left {
		return AlgWallLeft
	}
	return AlgWallRight
}

func (w *wallFollow) Step(_ context.Context, r *robot.Robot) error {
	side, other := r.RightDistance(), func() { r.TurnRight() }
	back := func() { r.TurnLeft() }
	if w.left {
		side, other = r.LeftDistance(), func() { r.TurnLeft() }
		back = func() { r.TurnRight() }
	}
	switch {
	case side > 0:
		other()
		return r.Forward()
	case r.FrontDistance() > 0:
		return r.Forward()
	default:
		back()
		return nil
	}
}

// randomWalk turns uniformly toward a random open direction each step.
type randomWalk struct{ rng *rand.Rand }

func (randomWalk) Name() string { return AlgRandom }

func (w *randomWalk) Step(_ context.Context, r *robot.Robot) error {
	open := r.Maze().OpenDirections(r.Position())
	if len(open) == 0 {
		return fmt.Errorf("nav: robot sealed in at %v", r.Position())
	}
	d := open[w.rng.Intn(len(open))]
	r.Face(d)
	return r.Forward()
}

// oracle follows the BFS shortest path — the upper baseline.
type oracle struct {
	path []maze.Cell
	next int
}

func (oracle) Name() string { return AlgOracle }

func (o *oracle) Step(_ context.Context, r *robot.Robot) error {
	if o.path == nil {
		p, err := r.Maze().ShortestPath()
		if err != nil {
			return err
		}
		o.path = p
		o.next = 1
	}
	if o.next >= len(o.path) {
		return errors.New("nav: oracle path exhausted")
	}
	target := o.path[o.next]
	cur := r.Position()
	for d := maze.North; d <= maze.West; d++ {
		if cur.Move(d) == target {
			r.Face(d)
			if err := r.Forward(); err != nil {
				return err
			}
			o.next++
			return nil
		}
	}
	return fmt.Errorf("nav: oracle lost at %v", cur)
}
