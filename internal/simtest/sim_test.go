package simtest

import (
	"reflect"
	"strings"
	"testing"

	"soc/internal/faultinject"
)

// TestRunDeterministic is the core contract: the same schedule run twice
// in two fresh worlds produces byte-identical event logs, fault
// injection, breaker churn, kills and all.
func TestRunDeterministic(t *testing.T) {
	sched := GenSchedule(42, 120, 3, 3)
	a, err := Run(Config{}, sched)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(Config{}, sched)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("same schedule, different hashes: %s vs %s", a.Hash, b.Hash)
	}
	if !reflect.DeepEqual(a.Log, b.Log) {
		for i := range a.Log {
			if i < len(b.Log) && a.Log[i] != b.Log[i] {
				t.Fatalf("logs diverge at step %d:\n  %s\n  %s", i, a.Log[i], b.Log[i])
			}
		}
		t.Fatalf("logs differ in length: %d vs %d", len(a.Log), len(b.Log))
	}
}

// TestSeedsDiffer sanity-checks that the seed actually drives the world:
// different seeds must not collapse onto one trajectory.
func TestSeedsDiffer(t *testing.T) {
	a, err := Run(Config{}, GenSchedule(1, 60, 3, 3))
	if err != nil {
		t.Fatalf("seed 1: %v", err)
	}
	b, err := Run(Config{}, GenSchedule(2, 60, 3, 3))
	if err != nil {
		t.Fatalf("seed 2: %v", err)
	}
	if a.Hash == b.Hash {
		t.Fatalf("seeds 1 and 2 produced the same hash %s", a.Hash)
	}
}

// TestCorpusInvariantsHold runs a small seed corpus under the default
// chaos mix and expects every invariant to hold — the stack's promises
// survive faults, kills and clock skew.
func TestCorpusInvariantsHold(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rec, err := Run(Config{}, GenSchedule(seed, 80, 3, 3))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rec.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestScheduleRoundTrip: a generated schedule survives the JSON round
// trip that replaying a shrunk schedule depends on, and replaying the
// parsed copy reproduces the original run's hash.
func TestScheduleRoundTrip(t *testing.T) {
	sched := GenSchedule(7, 50, 3, 3)
	parsed, err := ParseSchedule([]byte(sched.MarshalIndent()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(sched, parsed) {
		t.Fatalf("schedule did not survive the JSON round trip")
	}
	a, err := Run(Config{}, sched)
	if err != nil {
		t.Fatalf("original: %v", err)
	}
	b, err := Run(Config{}, parsed)
	if err != nil {
		t.Fatalf("parsed: %v", err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("replay of parsed schedule diverged: %s vs %s", a.Hash, b.Hash)
	}
}

func TestGenScheduleDeterministic(t *testing.T) {
	if !reflect.DeepEqual(GenSchedule(9, 40, 2, 2), GenSchedule(9, 40, 2, 2)) {
		t.Fatal("GenSchedule is not a pure function of its arguments")
	}
}

// TestCacheHitPath drives the cache-once machinery directly: in a
// fault-free world the second identical idempotent call is answered by
// the response cache (a cache span, no second server span) and the
// handler-run ledger shows exactly one execution per distinct input.
func TestCacheHitPath(t *testing.T) {
	cfg := Config{Faults: &faultinject.Rule{}}
	call := Step{Kind: StepCall, Client: 0, Service: "CreditScore", Op: "Score",
		Args: map[string]string{"ssn": "123-45-6789"}}
	rec, err := Run(cfg, Schedule{Seed: 3, Steps: []Step{call, call, call}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rec.Violations) > 0 {
		t.Fatalf("violations: %v", rec.Violations)
	}
	if rec.Steps[0].CacheSpans != 0 || rec.Steps[0].ServerSpans != 1 {
		t.Fatalf("first call: server=%d cache=%d, want 1/0", rec.Steps[0].ServerSpans, rec.Steps[0].CacheSpans)
	}
	for i := 1; i < 3; i++ {
		if rec.Steps[i].CacheSpans != 1 || rec.Steps[i].ServerSpans != 0 {
			t.Fatalf("call %d: server=%d cache=%d, want 0/1 (cache hit)", i, rec.Steps[i].ServerSpans, rec.Steps[i].CacheSpans)
		}
	}
	for key, n := range rec.HandlerRuns {
		if n != 1 {
			t.Errorf("handler ran %d times for %s", n, key)
		}
	}
}

// TestKillAndRestart: with every replica dead calls fail; after a
// restart and a cooldown's worth of virtual time they succeed again.
func TestKillAndRestart(t *testing.T) {
	cfg := Config{Faults: &faultinject.Rule{}}
	call := Step{Kind: StepCall, Client: 1, Service: "RandomString", Op: "CheckStrength",
		Args: map[string]string{"password": "hunter2"}}
	rec, err := Run(cfg, Schedule{Seed: 5, Steps: []Step{
		{Kind: StepKill, Replica: 0}, {Kind: StepKill, Replica: 1}, {Kind: StepKill, Replica: 2},
		call,
		{Kind: StepRestart, Replica: 0},
		{Kind: StepAdvance, AdvanceMs: 5000},
		call,
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rec.Violations) > 0 {
		t.Fatalf("violations: %v", rec.Violations)
	}
	if rec.Steps[3].Err == "" {
		t.Fatal("call with all replicas dead unexpectedly succeeded")
	}
	if !strings.Contains(rec.Steps[3].Err, "connection refused") {
		t.Fatalf("dead-replica call failed with %q, want a refused connection", rec.Steps[3].Err)
	}
	if rec.Steps[6].Err != "" {
		t.Fatalf("call after restart failed: %s", rec.Steps[6].Err)
	}
}

// TestShrinkWithMinimises checks the minimiser on a synthetic predicate:
// a schedule fails iff it still contains both the kill of replica 1 and
// the CreditScore call. The shrunk schedule must be exactly those two
// steps, in order.
func TestShrinkWithMinimises(t *testing.T) {
	kill := Step{Kind: StepKill, Replica: 1}
	call := Step{Kind: StepCall, Service: "CreditScore", Op: "Score"}
	var steps []Step
	for i := 0; i < 9; i++ {
		steps = append(steps, Step{Kind: StepAdvance, AdvanceMs: int64(i + 1)})
		if i == 2 {
			steps = append(steps, kill)
		}
		if i == 6 {
			steps = append(steps, call)
		}
	}
	failing := func(s Schedule) bool {
		var hasKill, hasCall bool
		for _, st := range s.Steps {
			hasKill = hasKill || reflect.DeepEqual(st, kill)
			hasCall = hasCall || reflect.DeepEqual(st, call)
		}
		return hasKill && hasCall
	}
	shrunk := ShrinkWith(failing, Schedule{Seed: 1, Steps: steps}, 1000)
	want := []Step{kill, call}
	if !reflect.DeepEqual(shrunk.Steps, want) {
		t.Fatalf("shrunk to %v, want %v", shrunk.Steps, want)
	}
	if shrunk.Seed != 1 {
		t.Fatalf("shrinking changed the seed to %d", shrunk.Seed)
	}
}

// TestShrinkWithPassingSchedule: a schedule that does not fail comes
// back untouched.
func TestShrinkWithPassingSchedule(t *testing.T) {
	s := Schedule{Seed: 2, Steps: []Step{{Kind: StepAdvance, AdvanceMs: 10}}}
	got := ShrinkWith(func(Schedule) bool { return false }, s, 100)
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("passing schedule was modified: %v", got)
	}
}

// TestShrinkWithBudgetExhaustion: with a budget too small to finish, the
// minimiser still returns a failing schedule (the best found so far).
func TestShrinkWithBudgetExhaustion(t *testing.T) {
	var steps []Step
	for i := 0; i < 32; i++ {
		steps = append(steps, Step{Kind: StepAdvance, AdvanceMs: int64(i + 1)})
	}
	marker := Step{Kind: StepKill, Replica: 2}
	steps = append(steps, marker)
	failing := func(s Schedule) bool {
		for _, st := range s.Steps {
			if reflect.DeepEqual(st, marker) {
				return true
			}
		}
		return false
	}
	shrunk := ShrinkWith(failing, Schedule{Steps: steps}, 5)
	if !failing(shrunk) {
		t.Fatal("budget-limited shrink returned a passing schedule")
	}
}

// TestDurableDirectoryRecovery drives the acked ⇒ durable contract
// end-to-end through the world: publishes acked on a replica must be
// discoverable after a power-cut kill and a recovering restart, and the
// restart's canonical log line must carry the recovery report so
// recovery itself is pinned by the determinism hash.
func TestDurableDirectoryRecovery(t *testing.T) {
	cfg := Config{Faults: &faultinject.Rule{}, DiskFaults: &faultinject.DiskRule{}}
	rec, err := Run(cfg, Schedule{Seed: 11, Steps: []Step{
		{Kind: StepPublish, Replica: 0, Service: "MazeSolver",
			Args: map[string]string{"endpoint": "sim://alpha", "category": "games/maze"}},
		{Kind: StepPublish, Replica: 0, Service: "WeatherMap",
			Args: map[string]string{"endpoint": "sim://beta", "category": "data/weather"}},
		{Kind: StepAdvance, AdvanceMs: 60000},
		{Kind: StepRenew, Replica: 0, Service: "MazeSolver"},
		{Kind: StepUnpublish, Replica: 0, Service: "WeatherMap"},
		{Kind: StepKill, Replica: 0},
		{Kind: StepRestart, Replica: 0},
		{Kind: StepRenew, Replica: 0, Service: "MazeSolver"},
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, v := range rec.Violations {
		t.Errorf("violation: %s", v)
	}
	for i := 0; i < 5; i++ {
		if rec.Steps[i].Err != "" {
			t.Fatalf("step %d failed on a perfect disk: %s", i, rec.Steps[i].Err)
		}
	}
	// The restart step reports its recovery in the canonical log.
	restart := rec.Steps[6]
	if !strings.Contains(restart.Out, "replayed=") || !strings.Contains(restart.Out, "snap=") {
		t.Fatalf("restart did not log a recovery report: %q", restart.Out)
	}
	// A renew after recovery only acks if the recovered directory still
	// holds the entry — the strongest signal the publish survived.
	if rec.Steps[7].Err != "" {
		t.Fatalf("renew after recovery failed: %s", rec.Steps[7].Err)
	}
}

// TestDirectoryStepsAgainstDeadReplica: mutations against a dead replica
// are refused (never acked) and must not end up durable.
func TestDirectoryStepsAgainstDeadReplica(t *testing.T) {
	cfg := Config{Faults: &faultinject.Rule{}, DiskFaults: &faultinject.DiskRule{}}
	rec, err := Run(cfg, Schedule{Seed: 12, Steps: []Step{
		{Kind: StepKill, Replica: 1},
		{Kind: StepPublish, Replica: 1, Service: "MazeSolver",
			Args: map[string]string{"endpoint": "sim://alpha", "category": "games/maze"}},
		{Kind: StepRestart, Replica: 1},
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, v := range rec.Violations {
		t.Errorf("violation: %s", v)
	}
	if !strings.Contains(rec.Steps[1].Err, "is down") {
		t.Fatalf("publish to a dead replica was not refused: %q", rec.Steps[1].Err)
	}
}

// TestDurableRecoveryDeterministicUnderFaults runs a chaos-heavy
// generated corpus with the default hostile disks twice: recovery
// reports, salvage decisions and directory acks are all part of the
// canonical log, so the hashes must match — and no seed may violate
// acked ⇒ durable.
func TestDurableRecoveryDeterministicUnderFaults(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		sched := GenSchedule(seed, 100, 3, 3)
		a, err := Run(Config{}, sched)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Run(Config{}, sched)
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if a.Hash != b.Hash {
			t.Fatalf("seed %d: recovery is not deterministic: %s vs %s", seed, a.Hash, b.Hash)
		}
		for _, v := range a.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}
