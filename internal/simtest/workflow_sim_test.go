package simtest

import (
	"strings"
	"testing"

	"soc/internal/workflow"
)

// TestWorkflowSmoke is the workflow-orchestration gate: a workflow-heavy
// schedule with hundreds of instances, power cuts armed mid-instance
// (landing mid-Parallel and mid-ForEach), kills, restarts and resumes —
// run twice. Both runs must settle every instance, violate nothing, and
// hash identically.
func TestWorkflowSmoke(t *testing.T) {
	steps := 700
	wantStarts := 200
	if testing.Short() {
		steps, wantStarts = 200, 50
	}
	for _, seed := range []int64{11, 12} {
		sched := GenWorkflowSchedule(seed, steps, 3, 3)
		a, err := Run(Config{}, sched)
		if err != nil {
			t.Fatalf("seed %d first run: %v", seed, err)
		}
		b, err := Run(Config{}, sched)
		if err != nil {
			t.Fatalf("seed %d second run: %v", seed, err)
		}
		if a.Hash != b.Hash {
			t.Fatalf("seed %d: same schedule, different hashes: %s vs %s", seed, a.Hash, b.Hash)
		}
		for _, v := range a.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}

		var starts, armed, cuts, resumed, completed, compensated int
		for _, sr := range a.Steps {
			switch sr.Step.Kind {
			case StepWorkflowStart:
				starts++
				if sr.Step.AfterAppends > 0 {
					armed++
				}
			case StepWorkflowResume:
				if strings.Contains(sr.Out, ":") {
					resumed++
				}
			}
			if strings.Contains(sr.Err, "power cut") {
				cuts++
			}
			completed += strings.Count(sr.Out, ":"+workflow.StatusCompleted)
			compensated += strings.Count(sr.Out, ":"+workflow.StatusCompensated)
		}
		if starts < wantStarts {
			t.Errorf("seed %d: only %d workflow instances started, want >= %d", seed, starts, wantStarts)
		}
		if armed == 0 || cuts == 0 {
			t.Errorf("seed %d: no mid-workflow power cuts landed (%d armed, %d fired)", seed, armed, cuts)
		}
		if resumed == 0 {
			t.Errorf("seed %d: no instance was ever resumed", seed)
		}
		if completed == 0 || compensated == 0 {
			t.Errorf("seed %d: want both terminal kinds, saw %d completed / %d compensated results",
				seed, completed, compensated)
		}
	}
}

// TestWorkflowMutationsTrip proves the workflow invariant can fail: each
// orchestrator mutation hook breaks one exactly-once rule, and the same
// schedule that runs clean without the hook must produce workflow
// violations with it. A checker that cannot fail checks nothing.
func TestWorkflowMutationsTrip(t *testing.T) {
	cases := []struct {
		mutation string
		substr   string
		seed     int64
	}{
		{workflow.MutationDropAppend, "lost acked", 11},
		{workflow.MutationDoubleCompensate, "applied 2 times", 11},
		{workflow.MutationResumeNonIdempotent, "issued 2 times", 11},
	}
	steps := 700
	if testing.Short() {
		steps = 300
	}
	for _, tc := range cases {
		t.Run(tc.mutation, func(t *testing.T) {
			sched := GenWorkflowSchedule(tc.seed, steps, 3, 3)
			clean, err := Run(Config{}, sched)
			if err != nil {
				t.Fatalf("clean twin: %v", err)
			}
			for _, v := range clean.Violations {
				t.Errorf("clean twin: %s", v)
			}
			broken, err := Run(Config{WorkflowMutation: tc.mutation}, sched)
			if err != nil {
				t.Fatalf("mutated run: %v", err)
			}
			wantViolation(t, broken.Violations, InvWorkflow, tc.substr)
		})
	}
}

// Fixture-level mutation tests for CheckWorkflows itself, mirroring the
// other checkers: a broken audit pair must trip, its corrected twin must
// stay silent.

func auditOf(id string, recs []workflow.Record) workflow.InstanceAudit {
	return workflow.AuditRecords(id, recs)
}

func TestCheckWorkflowsCleanPair(t *testing.T) {
	recs := []workflow.Record{
		{Inst: "wf-1", Kind: "begin", Def: DefRetryPoll},
		{Inst: "wf-1", Kind: "start", Key: "/poll#0/probe#0", Service: "CreditScore", Op: "Score", Idempotent: true},
		{Inst: "wf-1", Kind: "done", Key: "/poll#0/probe#0", Service: "CreditScore", Op: "Score"},
		{Inst: "wf-1", Kind: "end", Status: workflow.StatusCompleted},
	}
	acked := map[string]workflow.InstanceAudit{"wf-1": auditOf("wf-1", recs)}
	audits := map[string]workflow.InstanceAudit{"wf-1": auditOf("wf-1", recs)}
	wantClean(t, CheckWorkflows(3, "replica-0", acked, audits))
}

func TestCheckWorkflowsLostCompletion(t *testing.T) {
	full := []workflow.Record{
		{Inst: "wf-1", Kind: "begin", Def: DefRetryPoll},
		{Inst: "wf-1", Kind: "start", Key: "/poll#0/probe#0", Service: "CreditScore", Op: "Score", Idempotent: true},
		{Inst: "wf-1", Kind: "done", Key: "/poll#0/probe#0", Service: "CreditScore", Op: "Score"},
	}
	acked := map[string]workflow.InstanceAudit{"wf-1": auditOf("wf-1", full)}
	// The recovered journal is missing the acked done append — the
	// drop-append lie, exposed after a crash.
	audits := map[string]workflow.InstanceAudit{"wf-1": auditOf("wf-1", full[:2])}
	wantViolation(t, CheckWorkflows(3, "replica-0", acked, audits), InvWorkflow, "lost acked completion")
}

func TestCheckWorkflowsLostInstance(t *testing.T) {
	recs := []workflow.Record{{Inst: "wf-1", Kind: "begin", Def: DefRetryPoll}}
	acked := map[string]workflow.InstanceAudit{"wf-1": auditOf("wf-1", recs)}
	wantViolation(t, CheckWorkflows(3, "replica-0", acked, map[string]workflow.InstanceAudit{}),
		InvWorkflow, "lost")
}

func TestCheckWorkflowsResurrectedInstance(t *testing.T) {
	recs := []workflow.Record{{Inst: "wf-9", Kind: "begin", Def: DefRetryPoll}}
	audits := map[string]workflow.InstanceAudit{"wf-9": auditOf("wf-9", recs)}
	wantViolation(t, CheckWorkflows(3, "replica-0", map[string]workflow.InstanceAudit{}, audits),
		InvWorkflow, "never acked")
}

func TestCheckWorkflowsDoubleCompensation(t *testing.T) {
	recs := []workflow.Record{
		{Inst: "wf-1", Kind: "begin", Def: DefOrderSaga},
		{Inst: "wf-1", Kind: "start", Key: "/saga#0/create#0", Service: "ShoppingCart", Op: "CreateCart",
			Comps: []workflow.Compensation{{ID: "/saga#0/create#0|undo-cart", Name: "undo-cart"}}},
		{Inst: "wf-1", Kind: "fault", Err: "boom"},
		{Inst: "wf-1", Kind: "comp-done", Comp: "/saga#0/create#0|undo-cart"},
		{Inst: "wf-1", Kind: "comp-done", Comp: "/saga#0/create#0|undo-cart"},
		{Inst: "wf-1", Kind: "end", Status: workflow.StatusCompensated},
	}
	a := auditOf("wf-1", recs)
	both := map[string]workflow.InstanceAudit{"wf-1": a}
	wantViolation(t, CheckWorkflows(3, "replica-0", both, both), InvWorkflow, "applied 2 times")

	// Corrected twin: exactly one comp-done.
	fixed := append(append([]workflow.Record{}, recs[:4]...), recs[5])
	f := auditOf("wf-1", fixed)
	bothFixed := map[string]workflow.InstanceAudit{"wf-1": f}
	wantClean(t, CheckWorkflows(3, "replica-0", bothFixed, bothFixed))
}

func TestCheckWorkflowsTerminalStatusFlip(t *testing.T) {
	acked := map[string]workflow.InstanceAudit{"wf-1": auditOf("wf-1", []workflow.Record{
		{Inst: "wf-1", Kind: "begin", Def: DefRetryPoll},
		{Inst: "wf-1", Kind: "fault", Err: "boom"},
		{Inst: "wf-1", Kind: "end", Status: workflow.StatusCompensated, Err: "boom"},
	})}
	audits := map[string]workflow.InstanceAudit{"wf-1": auditOf("wf-1", []workflow.Record{
		{Inst: "wf-1", Kind: "begin", Def: DefRetryPoll},
		{Inst: "wf-1", Kind: "end", Status: workflow.StatusCompleted},
	})}
	wantViolation(t, CheckWorkflows(3, "replica-0", acked, audits), InvWorkflow, "changed terminal status")
}

func TestCheckWorkflowsNonIdempotentReissue(t *testing.T) {
	recs := []workflow.Record{
		{Inst: "wf-1", Kind: "begin", Def: DefOrderSaga},
		{Inst: "wf-1", Kind: "start", Key: "/saga#0/create#0", Service: "ShoppingCart", Op: "CreateCart"},
		{Inst: "wf-1", Kind: "resume", Incarnation: 2},
		{Inst: "wf-1", Kind: "start", Key: "/saga#0/create#0", Service: "ShoppingCart", Op: "CreateCart"},
		{Inst: "wf-1", Kind: "done", Key: "/saga#0/create#0", Service: "ShoppingCart", Op: "CreateCart"},
		{Inst: "wf-1", Kind: "end", Status: workflow.StatusCompleted},
	}
	a := auditOf("wf-1", recs)
	both := map[string]workflow.InstanceAudit{"wf-1": a}
	wantViolation(t, CheckWorkflows(3, "replica-0", both, both), InvWorkflow, "issued 2 times")
}
