package simtest

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"soc/internal/cloud"
	"soc/internal/registry"
	"soc/internal/vtime"
)

// Cluster invariant names.
const (
	// InvClusterAccounting: the front door's ledger closes every window —
	// admitted == completed + errored + shedBusy, and the counters agree
	// with what clients actually observed. An admitted request that a
	// scale-down (or anything else) silently dropped breaks this.
	InvClusterAccounting = "cluster-accounting"
	// InvClusterBounds: the running pool stays inside [MinReplicas,
	// MaxReplicas] at every window.
	InvClusterBounds = "cluster-bounds"
	// InvClusterDrain: no replica is ever stopped with requests still in
	// flight — scale-down drains, it never drops.
	InvClusterDrain = "cluster-drain"
	// InvClusterExpiry: a killed replica leaves the rotation once its
	// lease expires and is never picked again afterwards.
	InvClusterExpiry = "cluster-expiry"
)

// ClusterConfig sizes the deterministic elastic-cluster scenario: a
// front door plus autoscaler on the virtual clock, driven by a ramp
// up/down load profile with replica kills mid-ramp. The zero value gets
// workable defaults.
type ClusterConfig struct {
	// Policy is the shared sizing rule (default 2..6 replicas, capacity
	// 50/window, target utilization 0.7).
	Policy cloud.Policy
	// Cooldown spaces scaling actions (default 3 s virtual).
	Cooldown time.Duration
	// Lease is the registry lease; a killed replica stops heartbeating
	// and expires out of rotation after this long (default 5 s virtual).
	Lease time.Duration
	// FaultRate is the seeded probability a replica answers 500 — the
	// injected fault class admitted requests are allowed to fail with
	// (default 0.03).
	FaultRate float64
	// Seed drives every random choice (backend faults, balancer picks).
	Seed int64
	// Profile is requests per one-second window; nil uses
	// DefaultClusterProfile (warm, ramp up, peak, ramp down, cool).
	Profile []int
	// KillAt marks windows at whose start the newest healthy replica is
	// killed (process death: stops heartbeating, refuses connections);
	// nil uses DefaultClusterKills — one kill on each ramp.
	KillAt map[int]bool
}

// DefaultClusterProfile is the smoke's load shape: 5 warm windows at 20
// req/s, a 10-window ramp to 200, 10 at peak, a 10-window ramp back
// down, 10 cool windows at 10 — enough swing to force scale-up to the
// maximum and scale-down drains on the way back.
func DefaultClusterProfile() []int {
	var p []int
	for i := 0; i < 5; i++ {
		p = append(p, 20)
	}
	for i := 1; i <= 10; i++ {
		p = append(p, 20+18*i)
	}
	for i := 0; i < 10; i++ {
		p = append(p, 200)
	}
	for i := 1; i <= 10; i++ {
		p = append(p, 200-18*i)
	}
	for i := 0; i < 10; i++ {
		p = append(p, 10)
	}
	return p
}

// DefaultClusterKills kills one replica in the middle of each ramp.
func DefaultClusterKills() map[int]bool { return map[int]bool{9: true, 28: true} }

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Policy == (cloud.Policy{}) {
		c.Policy = cloud.Policy{MinReplicas: 2, MaxReplicas: 6, ReplicaCapacity: 50, TargetUtilization: 0.7}
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3 * time.Second
	}
	if c.Lease <= 0 {
		c.Lease = 5 * time.Second
	}
	if c.FaultRate == 0 {
		c.FaultRate = 0.03
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Profile == nil {
		c.Profile = DefaultClusterProfile()
	}
	if c.KillAt == nil {
		c.KillAt = DefaultClusterKills()
	}
	return c
}

// ClusterRecord is one completed cluster run: the canonical per-window
// log with its determinism hash, every invariant violation, and the
// final ledgers.
type ClusterRecord struct {
	Violations []Violation
	Log        []string
	Hash       string
	FrontDoor  cloud.FrontDoorStats
	Scaler     cloud.AutoscalerStats
	// Client-observed outcome classes across the whole run.
	OK      int // 200 from a replica
	Faulted int // 500 injected by a replica
	Gateway int // 502: every attempt failed (kill window)
	Shed    int // 503: admission control
	Killed  int // replicas killed by the schedule
}

// clusterBackend is one simulated replica process: alive it answers in
// zero virtual time (the scenario paces time explicitly), dead it
// refuses connections like a killed process.
type clusterBackend struct {
	name  string
	alive bool
	rng   *rand.Rand
	rate  float64
	serve int
}

func (b *clusterBackend) RoundTrip(req *http.Request) (*http.Response, error) {
	if !b.alive {
		return nil, fmt.Errorf("simnet: %s: connection refused", b.name)
	}
	b.serve++
	rec := httptest.NewRecorder()
	if b.rng.Float64() < b.rate {
		rec.WriteHeader(http.StatusInternalServerError)
		//soclint:ignore errdiscard httptest recorder writes cannot fail
		_, _ = rec.WriteString(`{"error":"injected fault"}`)
	} else {
		rec.WriteHeader(http.StatusOK)
		//soclint:ignore errdiscard httptest recorder writes cannot fail
		_, _ = rec.WriteString(`{"ok":true}`)
	}
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// clusterLauncher starts and stops simulated replica processes and
// records the one thing the smoke gates hardest on: a Stop with
// requests still in flight (a drain race).
type clusterLauncher struct {
	w               *clusterWorld
	backends        map[string]*clusterBackend
	reps            map[string]*cloud.Replica
	stopped         map[string]bool
	drainViolations int
}

func (l *clusterLauncher) Launch(_ context.Context, id int) (*cloud.Replica, error) {
	name := fmt.Sprintf("replica-%d", id)
	b := &clusterBackend{name: name, alive: true, rng: rand.New(rand.NewSource(l.w.cfg.Seed ^ fnv64(name))), rate: l.w.cfg.FaultRate}
	if err := l.w.reg.Publish(registry.Entry{Name: name, Category: "replica", Endpoint: "sim://" + name, Provider: "cluster-sim"}); err != nil {
		return nil, err
	}
	rep := cloud.NewReplica(name, b, 0)
	l.backends[name] = b
	l.reps[name] = rep
	return rep, nil
}

func (l *clusterLauncher) Stop(_ context.Context, rep *cloud.Replica) error {
	if rep.InFlight() > 0 {
		l.drainViolations++
	}
	l.stopped[rep.Name()] = true
	//soclint:ignore errdiscard a lease-expired replica may already be gone from the registry
	_ = l.w.reg.Unpublish(rep.Name())
	return nil
}

// clusterWorld is the deterministic elastic-cluster universe: virtual
// clock, lease registry, front door, autoscaler, simulated replica
// processes. Single-threaded; every source of randomness is seeded.
type clusterWorld struct {
	cfg      ClusterConfig
	clock    *vtime.Virtual
	ctx      context.Context
	reg      *registry.Registry
	fd       *cloud.FrontDoor
	scaler   *cloud.Autoscaler
	launcher *clusterLauncher

	// expiry bookkeeping per killed replica.
	killedAt   map[string]int    // window the kill happened in
	goneAt     map[string]int    // window the rotation first dropped it
	gonePicks  map[string]uint64 // its pick counter at that moment
	violations []Violation
}

// RunCluster executes the scenario and returns the full record. The
// returned error reports harness malfunction only; invariant violations
// are data. Two runs of the same config produce the same Hash — that is
// the determinism contract the smoke test holds it to.
func RunCluster(cfg ClusterConfig) (*ClusterRecord, error) {
	cfg = cfg.withDefaults()
	w := &clusterWorld{
		cfg:       cfg,
		clock:     vtime.NewVirtual(simEpoch),
		killedAt:  map[string]int{},
		goneAt:    map[string]int{},
		gonePicks: map[string]uint64{},
	}
	w.ctx = vtime.WithClock(context.Background(), w.clock)
	w.reg = registry.New(registry.WithClock(w.clock.Now), registry.WithLease(cfg.Lease))
	w.fd = cloud.NewFrontDoor(cloud.FrontDoorConfig{Clock: w.clock, Seed: cfg.Seed})
	w.launcher = &clusterLauncher{
		w:        w,
		backends: map[string]*clusterBackend{},
		reps:     map[string]*cloud.Replica{},
		stopped:  map[string]bool{},
	}
	scaler, err := cloud.NewAutoscaler(w.fd, w.launcher, cloud.AutoscalerOptions{
		Policy:    cfg.Policy,
		Cooldown:  cfg.Cooldown,
		Interval:  time.Second,
		Clock:     w.clock,
		Directory: w.reg,
		Category:  "replica",
	})
	if err != nil {
		return nil, err
	}
	w.scaler = scaler
	if err := scaler.Prime(w.ctx); err != nil {
		return nil, err
	}

	rec := &ClusterRecord{}
	for wi, rate := range cfg.Profile {
		if cfg.KillAt[wi] {
			w.kill(wi)
			rec.Killed++
		}
		if rate < 1 {
			rate = 1
		}
		pace := time.Second / time.Duration(rate)
		var ok, faulted, gateway, shed int
		for i := 0; i < rate; i++ {
			switch status := w.call(); status {
			case http.StatusOK:
				ok++
			case http.StatusInternalServerError:
				faulted++
			case http.StatusBadGateway:
				gateway++
			case http.StatusServiceUnavailable:
				shed++
			default:
				w.violate(wi, InvClusterAccounting, "unexpected client status %d", status)
			}
			w.clock.Advance(pace)
		}
		rec.OK += ok
		rec.Faulted += faulted
		rec.Gateway += gateway
		rec.Shed += shed
		w.heartbeatAlive()
		if err := w.scaler.Tick(w.ctx); err != nil {
			w.violate(wi, InvClusterBounds, "tick failed: %v", err)
		}
		w.checkWindow(wi, rec)
		st, as := w.fd.Stats(), w.scaler.Stats()
		rec.Log = append(rec.Log, fmt.Sprintf(
			"w=%d t=%dms rate=%d admitted=%d completed=%d errored=%d shedq=%d shedb=%d running=%d draining=%d launched=%d stopped=%d lost=%d demand=%d target=%d ok=%d fault=%d gw=%d shed=%d",
			wi, w.clock.Now().Sub(simEpoch)/time.Millisecond, rate,
			st.Admitted, st.Completed, st.Errored, st.ShedQueue, st.ShedBusy,
			as.Running, as.Draining, as.Launched, as.Stopped, as.Lost, as.LastDemand, as.LastTarget,
			ok, faulted, gateway, shed))
	}
	// Quiesce: let every pending drain finalize.
	for i := 0; i < 3; i++ {
		w.clock.Advance(time.Second)
		w.heartbeatAlive()
		if err := w.scaler.Tick(w.ctx); err != nil {
			w.violate(len(cfg.Profile), InvClusterBounds, "quiesce tick failed: %v", err)
		}
	}
	w.checkWindow(len(cfg.Profile), rec)

	rec.Violations = w.violations
	rec.FrontDoor = w.fd.Stats()
	rec.Scaler = w.scaler.Stats()
	sum := sha256.Sum256([]byte(strings.Join(rec.Log, "\n")))
	rec.Hash = hex.EncodeToString(sum[:])
	return rec, nil
}

// call pushes one request through the front door and returns the status
// the client saw.
func (w *clusterWorld) call() int {
	req := httptest.NewRequest(http.MethodGet, "http://cluster/services/Echo/invoke/Ping", nil)
	req = req.WithContext(w.ctx)
	rec := httptest.NewRecorder()
	w.fd.ServeHTTP(rec, req)
	return rec.Code
}

// kill takes the newest healthy replica down the hard way: the process
// dies mid-service, so it refuses connections and its lease silently
// runs out.
func (w *clusterWorld) kill(window int) {
	var victim *clusterBackend
	for _, rep := range w.fd.Replicas() {
		b := w.launcher.backends[rep.Name()]
		if b == nil || !b.alive || rep.Draining() {
			continue
		}
		if victim == nil || b.name > victim.name {
			victim = b
		}
	}
	if victim == nil {
		return
	}
	victim.alive = false
	w.killedAt[victim.name] = window
}

// heartbeatAlive renews the lease of every live, unstopped replica —
// exactly what a real replica's heartbeat goroutine does each second.
func (w *clusterWorld) heartbeatAlive() {
	for name, b := range w.launcher.backends {
		if !b.alive || w.launcher.stopped[name] {
			continue
		}
		//soclint:ignore errdiscard a draining replica may already be unpublished; its heartbeat simply stops mattering
		_ = w.reg.Heartbeat(name)
	}
}

func (w *clusterWorld) violate(window int, inv, format string, args ...any) {
	w.violations = append(w.violations, Violation{Step: window, Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// checkWindow audits the cluster invariants after one window.
func (w *clusterWorld) checkWindow(window int, rec *ClusterRecord) {
	st := w.fd.Stats()
	// The ledger closes: nothing admitted is unaccounted for. (The world
	// is single-threaded, so no request is in flight between windows.)
	if st.Admitted != st.Completed+st.Errored+st.ShedBusy {
		w.violate(window, InvClusterAccounting,
			"admitted %d != completed %d + errored %d + shedBusy %d",
			st.Admitted, st.Completed, st.Errored, st.ShedBusy)
	}
	// Counters match what clients observed: every admitted request came
	// back as a replica response (200/500) or an exhausted-attempts 502;
	// every shed came back 503.
	if uint64(rec.OK+rec.Faulted) != st.Completed || uint64(rec.Gateway) != st.Errored {
		w.violate(window, InvClusterAccounting,
			"client saw ok=%d fault=%d gw=%d; door completed=%d errored=%d",
			rec.OK, rec.Faulted, rec.Gateway, st.Completed, st.Errored)
	}
	if uint64(rec.Shed) != st.ShedQueue+st.ShedBusy {
		w.violate(window, InvClusterAccounting,
			"client saw shed=%d; door shed=%d", rec.Shed, st.ShedQueue+st.ShedBusy)
	}

	as := w.scaler.Stats()
	if as.Running < w.cfg.Policy.MinReplicas || as.Running > w.cfg.Policy.MaxReplicas {
		w.violate(window, InvClusterBounds, "running %d outside [%d,%d]",
			as.Running, w.cfg.Policy.MinReplicas, w.cfg.Policy.MaxReplicas)
	}
	if w.launcher.drainViolations > 0 {
		w.violate(window, InvClusterDrain, "%d replica(s) stopped with requests in flight", w.launcher.drainViolations)
	}

	// Killed replicas: once the lease runs out the rotation must drop
	// them, and their pick counters must freeze forever after.
	leaseWindows := int(w.cfg.Lease/time.Second) + 2
	for name, killed := range w.killedAt {
		inRotation := w.fd.Replica(name) != nil
		if gone, ok := w.goneAt[name]; ok {
			if inRotation {
				w.violate(window, InvClusterExpiry, "%s re-entered rotation after expiry", name)
			}
			if picks := w.launcher.reps[name].Picks(); picks != w.gonePicks[name] {
				w.violate(window, InvClusterExpiry,
					"%s picked after leaving rotation at w=%d: picks %d -> %d",
					name, gone, w.gonePicks[name], picks)
			}
			continue
		}
		if !inRotation {
			w.goneAt[name] = window
			w.gonePicks[name] = w.launcher.reps[name].Picks()
			continue
		}
		if window-killed > leaseWindows {
			w.violate(window, InvClusterExpiry,
				"%s killed at w=%d still in rotation at w=%d (lease %v)",
				name, killed, window, w.cfg.Lease)
		}
	}
}
