package simtest

import (
	"strings"
	"testing"
	"time"

	"soc/internal/registry"
	"soc/internal/telemetry"
)

// These are mutation-style tests: each checker is fed an intentionally
// broken fixture and must produce a violation, then the corrected twin
// and must stay silent. A checker that cannot fail checks nothing.

func wantViolation(t *testing.T, vs []Violation, invariant, substr string) {
	t.Helper()
	for _, v := range vs {
		if v.Invariant == invariant && strings.Contains(v.Detail, substr) {
			return
		}
	}
	t.Fatalf("no %s violation containing %q in %v", invariant, substr, vs)
}

func wantClean(t *testing.T, vs []Violation) {
	t.Helper()
	if len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestCheckCacheOnce(t *testing.T) {
	broken := map[string]int{"replica-0|inc-1|CreditScore.Score|ssn=1": 2}
	wantViolation(t, CheckCacheOnce(4, broken), InvCacheOnce, "ran 2 times")
	clean := map[string]int{
		"replica-0|inc-1|CreditScore.Score|ssn=1": 1,
		"replica-0|inc-2|CreditScore.Score|ssn=1": 1, // new incarnation may legally re-run
	}
	wantClean(t, CheckCacheOnce(4, clean))
}

func TestCheckBreakerEdges(t *testing.T) {
	legal := []Transition{
		{Step: 1, From: "closed", To: "open"},
		{Step: 2, From: "open", To: "half-open"},
		{Step: 3, From: "half-open", To: "closed"},
		{Step: 4, From: "half-open", To: "open"},
	}
	wantClean(t, CheckBreakerEdges(legal))

	illegal := []Transition{{Step: 7, Client: 1, Replica: "http://r0", From: "closed", To: "half-open"}}
	wantViolation(t, CheckBreakerEdges(illegal), InvBreakerFSM, "closed→half-open")
	skip := []Transition{{Step: 8, From: "open", To: "closed"}}
	wantViolation(t, CheckBreakerEdges(skip), InvBreakerFSM, "open→closed")
}

// span builds a test span; parent zero means root.
func span(trace byte, id byte, parent byte, name string, kind telemetry.Kind) telemetry.Span {
	sp := telemetry.Span{Name: name, Kind: kind}
	sp.TraceID = telemetry.TraceID{trace}
	sp.SpanID = telemetry.SpanID{id}
	if parent != 0 {
		sp.Parent = telemetry.SpanID{parent}
	}
	return sp
}

func TestCheckTraceStepWellFormed(t *testing.T) {
	root := span(1, 1, 0, "call CreditScore.Score", telemetry.KindClient)
	attempt := span(1, 2, 1, "attempt", telemetry.KindClient)
	attempt.Attempt = 1
	server := span(1, 3, 2, "CreditScore.Score", telemetry.KindServer)
	wantClean(t, CheckTraceStep(0, StepCall, []telemetry.Span{root, attempt, server}))
}

func TestCheckTraceStepNonCallStepsExempt(t *testing.T) {
	wantClean(t, CheckTraceStep(0, StepKill, nil))
	wantClean(t, CheckTraceStep(0, StepAdvance, nil))
}

func TestCheckTraceStepNoSpans(t *testing.T) {
	wantViolation(t, CheckTraceStep(2, StepCall, nil), InvTraceTree, "no spans")
}

func TestCheckTraceStepSplitTrace(t *testing.T) {
	a := span(1, 1, 0, "call", telemetry.KindClient)
	b := span(2, 2, 0, "stray", telemetry.KindServer)
	wantViolation(t, CheckTraceStep(3, StepCall, []telemetry.Span{a, b}), InvTraceTree, "2 traces")
}

func TestCheckTraceStepMultipleRoots(t *testing.T) {
	a := span(1, 1, 0, "call", telemetry.KindClient)
	b := span(1, 2, 0, "second root", telemetry.KindServer)
	wantViolation(t, CheckTraceStep(4, StepCall, []telemetry.Span{a, b}), InvTraceTree, "2 roots")
}

func TestCheckTraceStepOrphanAttempt(t *testing.T) {
	orphan := span(1, 2, 9, "attempt", telemetry.KindClient) // parent 9 never recorded
	orphan.Attempt = 2
	vs := CheckTraceStep(5, StepCall, []telemetry.Span{orphan})
	wantViolation(t, vs, InvTraceTree, "surfaced as a root")
	wantViolation(t, vs, InvTraceTree, "not in the trace")
}

func TestCheckTraceStepCachedDuration(t *testing.T) {
	root := span(1, 1, 0, "call", telemetry.KindClient)
	hit := span(1, 2, 1, "cache hit", telemetry.KindCache)
	hit.Cached = true
	hit.Duration = 3 * time.Millisecond
	wantViolation(t, CheckTraceStep(6, StepWorkflow, []telemetry.Span{root, hit}), InvTraceTree, "cached span")
	hit.Duration = 0
	wantClean(t, CheckTraceStep(6, StepWorkflow, []telemetry.Span{root, hit}))
}

func TestCheckDelivery(t *testing.T) {
	wantClean(t, CheckDelivery(1, 3, 2, 1))
	wantClean(t, CheckDelivery(1, 0, 0, 0))
	wantViolation(t, CheckDelivery(2, 2, 1, 0), InvDelivery, "2 requests delivered but 1 terminal")
	wantViolation(t, CheckDelivery(3, 1, 1, 1), InvDelivery, "1 requests delivered but 2 terminal")
}

func TestCheckQoSBounds(t *testing.T) {
	agg := QoSAgg{Samples: 4, Succ: 3, MinRTT: 10 * time.Millisecond, MaxRTT: 30 * time.Millisecond}
	good := registry.QoS{Uptime: 0.75, MeanRTT: 20 * time.Millisecond, Samples: 4}
	wantClean(t, CheckQoSBounds(1, "Svc", agg, good, true))

	bad := good
	bad.Samples = 5
	wantViolation(t, CheckQoSBounds(2, "Svc", agg, bad, true), InvQoSBounds, "5 samples")

	bad = good
	bad.Uptime = 0.5
	wantViolation(t, CheckQoSBounds(3, "Svc", agg, bad, true), InvQoSBounds, "uptime")

	bad = good
	bad.MeanRTT = 50 * time.Millisecond
	wantViolation(t, CheckQoSBounds(4, "Svc", agg, bad, true), InvQoSBounds, "outside observed")

	wantViolation(t, CheckQoSBounds(5, "Svc", agg, registry.QoS{}, false), InvQoSBounds, "no QoS record")

	wantViolation(t, CheckQoSBounds(6, "Svc", QoSAgg{}, registry.QoS{Samples: 2}, true), InvQoSBounds, "no observations were fed")
	wantClean(t, CheckQoSBounds(6, "Svc", QoSAgg{}, registry.QoS{}, false))

	allDown := QoSAgg{Samples: 2}
	wantViolation(t, CheckQoSBounds(7, "Svc", allDown, registry.QoS{Uptime: 0, MeanRTT: time.Millisecond, Samples: 2}, true),
		InvQoSBounds, "zero successful")
	wantClean(t, CheckQoSBounds(7, "Svc", allDown, registry.QoS{Uptime: 0, MeanRTT: 0, Samples: 2}, true))
}

// fakeDirectory is a minimal DirectoryReader for mutating the durable
// invariant's inputs without a real WAL behind them.
type fakeDirectory map[string]registry.Entry

func (f fakeDirectory) Get(name string) (registry.Entry, error) {
	e, ok := f[name]
	if !ok {
		return registry.Entry{}, registry.ErrNotFound
	}
	return e, nil
}

func (f fakeDirectory) List(bool) []registry.Entry {
	out := make([]registry.Entry, 0, len(f))
	for _, e := range f {
		out = append(out, e)
	}
	return out
}

func TestCheckDurable(t *testing.T) {
	entry := registry.Entry{
		Name: "MazeSolver", Endpoint: "sim://alpha", Category: "games/maze",
		Provider:     "replica-0",
		Published:    time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC),
		LeaseExpires: time.Date(2030, 1, 1, 1, 0, 0, 0, time.UTC),
	}
	acked := map[string]registry.Entry{entry.Name: entry}

	// Faithful recovery: ledger and directory agree exactly.
	wantClean(t, CheckDurable(1, "replica-0", acked, fakeDirectory{entry.Name: entry}))

	// Lost write: an acked entry is gone after recovery.
	wantViolation(t, CheckDurable(2, "replica-0", acked, fakeDirectory{}),
		InvDurable, "not discoverable")

	// Mangled recovery: present but the lease does not match the ack.
	stale := entry
	stale.LeaseExpires = stale.LeaseExpires.Add(-time.Minute)
	wantViolation(t, CheckDurable(3, "replica-0", acked, fakeDirectory{entry.Name: stale}),
		InvDurable, "diverged from its acked state")

	// Resurrection: a never-acked (nacked or rolled-back) entry reappears.
	ghost := entry
	ghost.Name = "Ghost"
	wantViolation(t, CheckDurable(4, "replica-0", acked,
		fakeDirectory{entry.Name: entry, ghost.Name: ghost}),
		InvDurable, "never acked")
}
