package simtest

import (
	"testing"

	"soc/internal/cloud"
)

// TestClusterSmoke is the `make cluster-smoke` gate: the deterministic
// elastic-cluster scenario — load ramping up and down with replica
// kills mid-ramp — must finish with zero invariant violations (the
// ledger closes, the pool stays bounded, no drain ever races, expired
// replicas never get picked) and must replay to the identical hash.
func TestClusterSmoke(t *testing.T) {
	rec, err := RunCluster(ClusterConfig{})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	for _, v := range rec.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		for _, line := range rec.Log {
			t.Log(line)
		}
		t.FailNow()
	}

	// The scenario must actually exercise the machinery it gates: the
	// ramp reaches the maximum pool, the descent drains replicas, and
	// both kills are reaped via lease expiry.
	// Both kills must happen; at least the up-ramp one leaves via lease
	// expiry (the down-ramp kill may exit through the drain path instead,
	// if scale-down picked the dead replica as its victim — either way
	// the expiry invariant holds it out of rotation).
	if rec.Killed != 2 {
		t.Errorf("kills = %d, want 2", rec.Killed)
	}
	if rec.Scaler.Lost < 1 {
		t.Errorf("lease-reaped = %d, want at least 1", rec.Scaler.Lost)
	}
	if rec.Scaler.Stopped == 0 {
		t.Error("no replica was ever drained and stopped: the ramp-down never exercised scale-down")
	}
	if rec.Scaler.Launched <= 2 {
		t.Errorf("launched = %d: the ramp-up never exercised scale-up", rec.Scaler.Launched)
	}
	if rec.Gateway > rec.OK/50 {
		t.Errorf("gateway errors %d exceed 2%% of %d successes: retry is not covering kills", rec.Gateway, rec.OK)
	}
	if rec.OK == 0 || rec.Faulted == 0 {
		t.Errorf("outcome classes missing: ok=%d faulted=%d", rec.OK, rec.Faulted)
	}

	// Determinism: the same config replays to the identical event log.
	again, err := RunCluster(ClusterConfig{})
	if err != nil {
		t.Fatalf("RunCluster (replay): %v", err)
	}
	if again.Hash != rec.Hash {
		t.Fatalf("replay diverged: %s != %s", again.Hash, rec.Hash)
	}
}

// TestClusterSmokeCustomPolicy pins the scenario's scaling arithmetic on
// a second configuration, so the gate is not tuned to one profile.
func TestClusterSmokeCustomPolicy(t *testing.T) {
	cfg := ClusterConfig{
		Policy: cloud.Policy{MinReplicas: 1, MaxReplicas: 4, ReplicaCapacity: 80, TargetUtilization: 0.9},
		Seed:   42,
	}
	rec, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	for _, v := range rec.Violations {
		t.Errorf("violation: %s", v)
	}
	again, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("RunCluster (replay): %v", err)
	}
	if again.Hash != rec.Hash {
		t.Fatalf("replay diverged: %s != %s", again.Hash, rec.Hash)
	}
}
