package simtest

import (
	"fmt"
	"math"
	"sort"
	"time"

	"soc/internal/registry"
	"soc/internal/reliability"
	"soc/internal/telemetry"
	"soc/internal/workflow"
)

// Violation is one invariant breach, tagged with the step that exposed
// it. A run with any violation is a failing run; the schedule that
// produced it is the bug report.
type Violation struct {
	Step      int    `json:"step"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d: %s: %s", v.Step, v.Invariant, v.Detail)
}

// Invariant names, one per checker.
const (
	InvCacheOnce  = "cache-once"
	InvBreakerFSM = "breaker-fsm"
	InvTraceTree  = "trace-tree"
	InvQoSBounds  = "qos-bounds"
	InvDelivery   = "delivery"
	InvDurable    = "acked-durable"
	// InvWorkflow is the completes-or-compensates-exactly-once invariant:
	// every workflow journal must audit clean, and recovery must preserve
	// every acked record of every instance.
	InvWorkflow = "workflow-once"
	// InvWorkflowSettle is its liveness half: after the settle phase,
	// every started instance has reached a terminal status.
	InvWorkflowSettle = "workflow-settle"
)

// CheckCacheOnce verifies the idempotent-response cache contract: within
// one replica incarnation, a successful idempotent handler executes at
// most once per distinct input — every later identical request must be
// answered from cache. The runs map is keyed
// "replica|incarnation|Svc.Op|canonical-input" and counts successful
// handler executions.
func CheckCacheOnce(step int, runs map[string]int) []Violation {
	var out []Violation
	for key, n := range runs {
		if n > 1 {
			out = append(out, Violation{
				Step:      step,
				Invariant: InvCacheOnce,
				Detail:    fmt.Sprintf("idempotent handler ran %d times for %s", n, key),
			})
		}
	}
	return out
}

// DirectoryReader is the read surface CheckDurable audits — satisfied by
// *registry.DurableRegistry.
type DirectoryReader interface {
	Get(name string) (registry.Entry, error)
	List(liveOnly bool) []registry.Entry
}

// CheckDurable verifies the acked ⇒ durable contract for one replica's
// directory: every entry in the acked ledger is discoverable, field for
// field (leases and publication times included — recovery must be exact,
// not just present), and nothing the ledger does not account for has
// crept in. Because the ledger only moves on acknowledged mutations and
// the directory recovers from its write-ahead log after crashes, any
// divergence means an acked write was lost, resurrected or mangled.
func CheckDurable(step int, replica string, acked map[string]registry.Entry, dir DirectoryReader) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{Step: step, Invariant: InvDurable, Detail: fmt.Sprintf(format, args...)})
	}
	for name, want := range acked {
		got, err := dir.Get(name)
		if err != nil {
			bad("%s: acked publish of %q is not discoverable: %v", replica, name, err)
			continue
		}
		if !durableEntryEqual(want, got) {
			bad("%s: entry %q diverged from its acked state: acked %s, have %s",
				replica, name, durableEntryString(want), durableEntryString(got))
		}
	}
	for _, e := range dir.List(false) {
		if _, ok := acked[e.Name]; !ok {
			bad("%s: entry %q present but never acked (resurrected nacked write?)", replica, e.Name)
		}
	}
	return out
}

func durableEntryEqual(a, b registry.Entry) bool {
	return a.Name == b.Name && a.Endpoint == b.Endpoint && a.Category == b.Category &&
		a.Doc == b.Doc && a.Provider == b.Provider &&
		a.Published.Equal(b.Published) && a.LeaseExpires.Equal(b.LeaseExpires)
}

func durableEntryString(e registry.Entry) string {
	return fmt.Sprintf("{endpoint=%s category=%s provider=%s published=%s lease=%s}",
		e.Endpoint, e.Category, e.Provider,
		e.Published.UTC().Format(time.RFC3339Nano), e.LeaseExpires.UTC().Format(time.RFC3339Nano))
}

// legalEdges is the circuit breaker's legal transition relation:
// closed→open on threshold, open→half-open after cooldown, half-open
// settles closed (probe success) or back open (probe failure).
var legalEdges = map[[2]string]bool{
	{reliability.Closed.String(), reliability.Open.String()}:     true,
	{reliability.Open.String(), reliability.HalfOpen.String()}:   true,
	{reliability.HalfOpen.String(), reliability.Closed.String()}: true,
	{reliability.HalfOpen.String(), reliability.Open.String()}:   true,
}

// CheckBreakerEdges verifies every observed breaker transition is an
// edge of the legal state machine.
func CheckBreakerEdges(transitions []Transition) []Violation {
	var out []Violation
	for _, t := range transitions {
		if !legalEdges[[2]string{t.From, t.To}] {
			out = append(out, Violation{
				Step:      t.Step,
				Invariant: InvBreakerFSM,
				Detail: fmt.Sprintf("illegal breaker transition %s→%s (client %d, %s)",
					t.From, t.To, t.Client, t.Replica),
			})
		}
	}
	return out
}

// CheckTraceStep verifies the trace plane for one call or workflow step:
// the step's spans reassemble into exactly one well-formed trace — a
// single root with no parent, no orphaned attempt spans surfacing as
// roots, and every cached span zero-duration.
func CheckTraceStep(step int, kind string, spans []telemetry.Span) []Violation {
	if kind != StepCall && kind != StepWorkflow {
		return nil
	}
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{Step: step, Invariant: InvTraceTree, Detail: fmt.Sprintf(format, args...)})
	}
	if len(spans) == 0 {
		bad("%s step produced no spans at all", kind)
		return out
	}
	trees := telemetry.BuildTraces(spans)
	if len(trees) != 1 {
		bad("%s step produced %d traces, want exactly 1", kind, len(trees))
	}
	for _, tree := range trees {
		if len(tree.Roots) != 1 {
			names := make([]string, len(tree.Roots))
			for i, r := range tree.Roots {
				names[i] = r.Span.Name
			}
			bad("trace %s has %d roots %v, want exactly 1", tree.TraceID, len(tree.Roots), names)
		}
		for _, r := range tree.Roots {
			if !r.Span.Parent.IsZero() {
				bad("root span %q carries a parent %s that is not in the trace", r.Span.Name, r.Span.Parent)
			}
			if r.Span.Attempt > 0 {
				bad("attempt span %q #%d surfaced as a root (orphaned from its call span)", r.Span.Name, r.Span.Attempt)
			}
		}
	}
	for _, sp := range spans {
		if sp.Cached && sp.Duration != 0 {
			bad("cached span %q has duration %v, want 0 (cache hits must not fake service time)", sp.Name, sp.Duration)
		}
	}
	return out
}

// CheckDelivery verifies request accounting: every request delivered to
// a live replica produced exactly one terminal span — a server span when
// the handler ran, a cache span when the response cache answered.
func CheckDelivery(step, delivered, serverSpans, cacheSpans int) []Violation {
	if delivered == serverSpans+cacheSpans {
		return nil
	}
	return []Violation{{
		Step:      step,
		Invariant: InvDelivery,
		Detail: fmt.Sprintf("%d requests delivered but %d terminal spans recorded (%d server + %d cache)",
			delivered, serverSpans+cacheSpans, serverSpans, cacheSpans),
	}}
}

// CheckWorkflows audits one replica's workflow orchestrator against the
// world's acked ledger. Two obligations:
//
//  1. Internal soundness: every instance's journal must satisfy the
//     completes-or-compensates-exactly-once rules (InstanceAudit.Problems),
//     across any number of crash/resume incarnations.
//  2. Acked ⇒ durable: every instance the world saw acknowledged must
//     still exist with at least the acked history — step completions,
//     invoke starts, executed compensations and terminal decisions never
//     regress — and a terminal status, once acked, never changes. And
//     nothing the ledger does not account for may appear (a resurrected
//     nacked append).
func CheckWorkflows(step int, replica string, acked, audits map[string]workflow.InstanceAudit) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{Step: step, Invariant: InvWorkflow, Detail: fmt.Sprintf(format, args...)})
	}
	for _, id := range sortedAuditKeys(audits) {
		for _, p := range audits[id].Problems() {
			bad("%s: %s", replica, p)
		}
		if _, ok := acked[id]; !ok {
			bad("%s: instance %s present but never acked (resurrected nacked append?)", replica, id)
		}
	}
	for _, id := range sortedAuditKeys(acked) {
		want := acked[id]
		got, ok := audits[id]
		if !ok {
			bad("%s: acked instance %s lost", replica, id)
			continue
		}
		for k, n := range want.Dones {
			if got.Dones[k] < n {
				bad("%s: instance %s lost acked completion of step %s (%d acked, %d recovered)",
					replica, id, k, n, got.Dones[k])
			}
		}
		for k, s := range want.Starts {
			if got.Starts[k].Count < s.Count {
				bad("%s: instance %s lost acked start of invoke %s (%d acked, %d recovered)",
					replica, id, k, s.Count, got.Starts[k].Count)
			}
		}
		for c, n := range want.CompDones {
			if got.CompDones[c] < n {
				bad("%s: instance %s lost acked compensation %s (%d acked, %d recovered)",
					replica, id, c, n, got.CompDones[c])
			}
		}
		if got.Terminals < want.Terminals {
			bad("%s: instance %s lost its acked terminal record", replica, id)
		}
		if want.Terminals > 0 && got.Terminals > 0 && got.Status != want.Status {
			bad("%s: instance %s changed terminal status %s → %s after recovery",
				replica, id, want.Status, got.Status)
		}
	}
	return out
}

func sortedAuditKeys(m map[string]workflow.InstanceAudit) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// QoSAgg is the world's independent book-keeping of what the QoS
// registry was told: counts and RTT bounds over non-cached observations.
// CheckQoSBounds compares the registry's derived record against it.
type QoSAgg struct {
	Samples int
	Succ    int
	MinRTT  time.Duration
	MaxRTT  time.Duration
}

// Add folds one non-cached observation into the aggregate.
func (a *QoSAgg) Add(up bool, rtt time.Duration) {
	a.Samples++
	if !up {
		return
	}
	if a.Succ == 0 || rtt < a.MinRTT {
		a.MinRTT = rtt
	}
	if rtt > a.MaxRTT {
		a.MaxRTT = rtt
	}
	a.Succ++
}

// CheckQoSBounds verifies the registry's QoS record against the
// independently aggregated observations: sample count exact, uptime the
// exact success ratio, and mean RTT inside the [min, max] envelope of
// successful round trips (a mean cannot leave the range of its inputs).
func CheckQoSBounds(step int, service string, agg QoSAgg, q registry.QoS, ok bool) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{Step: step, Invariant: InvQoSBounds, Detail: fmt.Sprintf(format, args...)})
	}
	if agg.Samples == 0 {
		if ok && q.Samples != 0 {
			bad("%s: registry reports %d samples but no observations were fed", service, q.Samples)
		}
		return out
	}
	if !ok {
		bad("%s: observations were fed but the registry has no QoS record", service)
		return out
	}
	if q.Samples != agg.Samples {
		bad("%s: registry reports %d samples, observed %d", service, q.Samples, agg.Samples)
	}
	wantUptime := float64(agg.Succ) / float64(agg.Samples)
	if math.Abs(q.Uptime-wantUptime) > 1e-9 {
		bad("%s: uptime %.9f, want %.9f (%d/%d)", service, q.Uptime, wantUptime, agg.Succ, agg.Samples)
	}
	if agg.Succ == 0 {
		if q.MeanRTT != 0 {
			bad("%s: mean RTT %v with zero successful observations, want 0", service, q.MeanRTT)
		}
		return out
	}
	// The incremental mean is computed in float64 and truncated to a
	// Duration, so allow 1ns of slack at each bound.
	if q.MeanRTT < agg.MinRTT-time.Nanosecond || q.MeanRTT > agg.MaxRTT+time.Nanosecond {
		bad("%s: mean RTT %v outside observed successful range [%v, %v]", service, q.MeanRTT, agg.MinRTT, agg.MaxRTT)
	}
	return out
}
