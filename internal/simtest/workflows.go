package simtest

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"time"

	"soc/internal/workflow"
)

// The canned durable workflow definitions every replica's orchestrator
// registers at boot. Between them they cover the full activity
// vocabulary the journal must resume through: non-idempotent sagas with
// declared undos (order-saga), Parallel fan-out plus a parallel ForEach
// with result collection and an armed Pick (fanout-check), and a While
// loop ending in a Pick timeout (retry-poll).
const (
	DefOrderSaga   = "order-saga"
	DefFanoutCheck = "fanout-check"
	DefRetryPoll   = "retry-poll"
)

// wfCompensators names every compensator the canned definitions
// reference; each must be bound on every incarnation or a saga's
// compensation pass fails.
var wfCompensators = []string{"undo-cart", "undo-add"}

// buildWorkflowDefs constructs the canned definitions over the given
// invoker (the replica's own service plane in the simulation).
func buildWorkflowDefs(inv workflow.Invoker) ([]*workflow.Workflow, error) {
	roots := []struct {
		name string
		root workflow.Activity
	}{
		{DefOrderSaga, orderSagaRoot(inv)},
		{DefFanoutCheck, fanoutCheckRoot(inv)},
		{DefRetryPoll, retryPollRoot(inv)},
	}
	defs := make([]*workflow.Workflow, 0, len(roots))
	for _, r := range roots {
		wf, err := workflow.New(r.name, r.root)
		if err != nil {
			return nil, err
		}
		defs = append(defs, wf)
	}
	return defs, nil
}

// orderSagaRoot is the compensation workhorse: every cart operation is
// non-idempotent with a declared undo, and carts live in one replica
// incarnation's memory — so an instance resumed after a crash fails its
// next cart call cleanly and walks the saga back through the journaled
// compensations. The invalid-SSN pool entry also faults mid-saga on a
// healthy replica.
func orderSagaRoot(inv workflow.Invoker) workflow.Activity {
	return &workflow.Sequence{Label: "saga", Steps: []workflow.Activity{
		&workflow.Invoke{
			Label: "create", Service: "ShoppingCart", Operation: "CreateCart", Invoker: inv,
			Outputs:      map[string]string{"cart": "cart"},
			Compensation: &workflow.Undo{Name: "undo-cart", ArgsFrom: map[string]string{"cart": "cart"}},
		},
		&workflow.ForEach{
			Label: "fill", Items: "items", ItemVar: "item",
			Body: &workflow.Invoke{
				Label: "add", Service: "ShoppingCart", Operation: "AddItem", Invoker: inv,
				Inputs:       map[string]string{"cart": "cart", "item": "item", "quantity": "quantity", "price": "price"},
				Outputs:      map[string]string{"items": "count"},
				Compensation: &workflow.Undo{Name: "undo-add", ArgsFrom: map[string]string{"cart": "cart", "item": "item"}},
			},
		},
		&workflow.Invoke{
			Label: "score", Service: "CreditScore", Operation: "Score", Invoker: inv, Idempotent: true,
			Inputs: map[string]string{"ssn": "ssn"}, Outputs: map[string]string{"score": "score"},
		},
		&workflow.Invoke{
			Label: "total", Service: "ShoppingCart", Operation: "Total", Invoker: inv,
			Inputs: map[string]string{"cart": "cart"}, Outputs: map[string]string{"total": "total"},
		},
		&workflow.If{
			Label: "approve",
			Cond:  func(v *workflow.Vars) bool { return v.GetInt("score") >= 600 },
			Then:  assignBool("ok", "approved", true),
			Else:  assignBool("no", "approved", false),
		},
	}}
}

// fanoutCheckRoot exercises the fan-out shapes: an AND-join Parallel, a
// parallel ForEach collecting per-iteration verdicts in index order, and
// an armed Pick whose journaled decision replays without re-racing.
func fanoutCheckRoot(inv workflow.Invoker) workflow.Activity {
	return &workflow.Sequence{Label: "fanout", Steps: []workflow.Activity{
		&workflow.Parallel{Label: "fan", Branches: []workflow.Activity{
			&workflow.Invoke{
				Label: "score", Service: "CreditScore", Operation: "Score", Invoker: inv, Idempotent: true,
				Inputs: map[string]string{"ssn": "ssn"}, Outputs: map[string]string{"score": "score"},
			},
			&workflow.Invoke{
				Label: "check", Service: "RandomString", Operation: "CheckStrength", Invoker: inv, Idempotent: true,
				Inputs: map[string]string{"password": "password"}, Outputs: map[string]string{"strong": "strong"},
			},
		}},
		&workflow.ForEach{
			Label: "sweep", Items: "passwords", ItemVar: "pw", Parallel: true, CollectVar: "verdict",
			Body: &workflow.Invoke{
				Label: "probe", Service: "RandomString", Operation: "CheckStrength", Invoker: inv, Idempotent: true,
				Inputs: map[string]string{"password": "pw"}, Outputs: map[string]string{"strong": "verdict"},
			},
		},
		&workflow.Pick{Label: "confirm", Events: []workflow.PickBranch{{
			Wait: armedEvent("confirm"),
			Var:  "signal",
			Then: assignBool("confirmed", "confirmed", true),
		}}},
	}}
}

// retryPollRoot exercises While resumption (the loop re-executes and
// replays exactly the journaled iterations) and the Pick expiry path.
func retryPollRoot(inv workflow.Invoker) workflow.Activity {
	return &workflow.Sequence{Label: "poll", Steps: []workflow.Activity{
		&workflow.While{
			Label: "loop",
			Cond:  func(v *workflow.Vars) bool { return v.GetInt("n") < v.GetInt("rounds") },
			Body: &workflow.Sequence{Label: "round", Steps: []workflow.Activity{
				&workflow.Invoke{
					Label: "probe", Service: "CreditScore", Operation: "Score", Invoker: inv, Idempotent: true,
					Inputs: map[string]string{"ssn": "ssn"}, Outputs: map[string]string{"score": "score"},
				},
				&workflow.Assign{Label: "bump", Var: "n", Expr: func(v *workflow.Vars) any { return v.GetInt("n") + 1 }},
			}},
		},
		&workflow.Pick{
			Label:   "wait",
			Timeout: time.Millisecond,
			Events: []workflow.PickBranch{{
				Wait: unarmedEvent,
				Then: assignBool("signaled", "signaled", true),
			}},
			OnExpire: assignBool("expire", "timedout", true),
		},
	}}
}

func assignBool(label, varName string, val bool) workflow.Activity {
	return &workflow.Assign{Label: label, Var: varName, Expr: func(*workflow.Vars) any { return val }}
}

// armedEvent is a Pick source that has already fired: deterministic mode
// polls it and journals the branch win with the payload.
func armedEvent(payload string) func(ctx context.Context) <-chan any {
	return func(context.Context) <-chan any {
		ch := make(chan any, 1)
		ch <- payload
		return ch
	}
}

// unarmedEvent never fires; deterministic mode treats the pick as
// expired immediately.
func unarmedEvent(context.Context) <-chan any { return nil }

// workflowInit converts a wfstart step's string Args into the typed
// initial scope its definition expects. Comma-separated lists become
// []any so ForEach can range them; numbers parse leniently (a malformed
// generator value degrades to zero rather than crashing the harness).
func workflowInit(def string, args map[string]string) map[string]any {
	init := map[string]any{}
	switch def {
	case DefOrderSaga:
		init["ssn"] = args["ssn"]
		init["items"] = splitList(args["items"])
		init["quantity"] = parseInt64(args["quantity"])
		init["price"] = parseFloat64(args["price"])
	case DefFanoutCheck:
		init["ssn"] = args["ssn"]
		init["password"] = args["password"]
		init["passwords"] = splitList(args["passwords"])
	case DefRetryPoll:
		init["ssn"] = args["ssn"]
		init["rounds"] = parseInt64(args["rounds"])
		init["n"] = int64(0)
	}
	return init
}

func splitList(s string) []any {
	parts := strings.Split(s, ",")
	out := make([]any, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInt64(s string) int64 {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func parseFloat64(s string) float64 {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return f
}

// wfResultOut renders one orchestrator result canonically (no spaces —
// it feeds the hash-checked event log; the error rides the step's Err).
func wfResultOut(res workflow.Result) string {
	return res.ID + ":" + res.Status
}

// wfResultsOut renders a ResumeAll batch sorted by instance id.
func wfResultsOut(results []workflow.Result) string {
	if len(results) == 0 {
		return "-"
	}
	parts := make([]string, len(results))
	for i, r := range results {
		parts[i] = wfResultOut(r)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
