// Package simtest is the deterministic simulation harness of the
// dependability stack: whole multi-replica scenarios — resilient
// clients, hosts, response caches, circuit breakers, fault injection,
// workflows — run in-process on a seeded in-memory network and a virtual
// clock, so a run is byte-for-byte reproducible from its seed and a
// failing schedule shrinks to a minimal replay. The harness is the
// correctness backstop of the reliability unit: property-based workloads
// explore schedules no hand-written test would, and invariant checkers
// validate every step against the contracts the layers promise.
package simtest

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
)

// Step kinds a schedule is made of.
const (
	// StepCall invokes Service.Op as the given client with Args.
	StepCall = "call"
	// StepWorkflow runs the harness's two-invoke composition workflow as
	// the given client (Args feed the workflow's initial variables).
	StepWorkflow = "workflow"
	// StepKill marks a replica dead: deliveries fail like a refused
	// connection until it restarts.
	StepKill = "kill"
	// StepRestart boots a dead (or live) replica as a fresh incarnation:
	// new process state, empty response cache, same network identity.
	StepRestart = "restart"
	// StepAdvance moves the virtual clock forward by AdvanceMs — how
	// breaker cooldowns elapse and cache TTLs age in a simulation.
	StepAdvance = "advance"
	// StepPublish registers Service into the target replica's durable
	// directory (write-ahead logged to its simulated disk). A successful
	// step is an ACK: the entry must be discoverable on that replica after
	// any crash — the acked ⇒ durable invariant.
	StepPublish = "publish"
	// StepUnpublish durably removes Service from the replica's directory.
	StepUnpublish = "unpublish"
	// StepRenew durably renews Service's lease on the replica.
	StepRenew = "renew"
	// StepWorkflowStart starts a durable workflow instance (definition
	// Def, initial variables from Args) on the target replica's
	// journaled orchestrator. When AfterAppends > 0 the replica's power
	// is cut at that journal-append ordinal — which lands the kill
	// mid-workflow, possibly during a later step's appends.
	StepWorkflowStart = "wfstart"
	// StepWorkflowResume resumes every pending workflow instance on the
	// target replica — after a restart, replay drives each instance
	// from its exact journaled step.
	StepWorkflowResume = "wfresume"
)

// Step is one event of a simulation schedule. The zero-value fields not
// used by a kind are omitted from JSON so shrunk schedules stay
// readable.
type Step struct {
	Kind      string            `json:"kind"`
	Client    int               `json:"client,omitempty"`
	Service   string            `json:"service,omitempty"`
	Op        string            `json:"op,omitempty"`
	Args      map[string]string `json:"args,omitempty"`
	Replica   int               `json:"replica,omitempty"`
	AdvanceMs int64             `json:"advanceMs,omitempty"`
	// Def names the workflow definition a wfstart step instantiates.
	Def string `json:"def,omitempty"`
	// AfterAppends arms a power cut on the replica after that many more
	// workflow-journal appends (0 = no cut).
	AfterAppends int64 `json:"afterAppends,omitempty"`
}

// Schedule is a complete, self-contained simulation input: the seed that
// derives every fault decision plus the explicit step sequence. Replaying
// a schedule byte-identically reproduces the run that generated it.
type Schedule struct {
	Seed  int64  `json:"seed"`
	Steps []Step `json:"steps"`
}

// MarshalIndent renders the schedule as indented JSON for replay logs.
func (s Schedule) MarshalIndent() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Sprintf("<unmarshalable schedule: %v>", err)
	}
	return string(b)
}

// ParseSchedule decodes a schedule produced by MarshalIndent.
func ParseSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("simtest: parsing schedule: %w", err)
	}
	return s, nil
}

// Workload pools: small fixed vocabularies keep the generated argument
// space dense enough that cache hits, repeated inputs and cross-client
// collisions actually happen.
var (
	ssnPool = []string{
		"123-45-6789", "111-22-3333", "987-65-4321", "555-00-1234",
		"222-33-4444", "not-an-ssn", // one invalid form exercises the error path
	}
	passwordPool = []string{
		"correct horse battery staple", "Tr0ub4dor&3", "hunter2",
		"aA1!aA1!aA1!", "qwerty",
	}
	itemPool  = []string{"widget", "gadget", "sprocket", "flange"}
	pricePool = []string{"1.25", "9.99", "42.00", "0.50"}
	// dirSvcPool names the services the directory steps publish and
	// remove. Small on purpose: re-publishes, renewals of missing entries
	// and unpublish races all happen within a run.
	dirSvcPool = []string{"MazeSolver", "WeatherMap", "TranslateX", "CaptchaGen", "LedgerSync"}
	// endpointPool gives published entries a couple of distinct endpoints
	// so re-publishes actually change state.
	endpointPool = []string{"sim://alpha", "sim://beta", "sim://gamma"}
	categoryPool = []string{"games/maze", "data/weather", "text/translate"}
	// wfDefPool names the canned durable workflow definitions every
	// replica's orchestrator registers at boot (see workflows.go).
	wfDefPool = []string{DefOrderSaga, DefFanoutCheck, DefRetryPoll}
	// wfItemsPool feeds order-saga ForEach bodies (comma-separated so a
	// list fits the string-valued Args map).
	wfItemsPool = []string{"widget", "widget,gadget", "sprocket,flange,widget"}
	// wfPasswordsPool feeds fanout-check's parallel ForEach sweep.
	wfPasswordsPool = []string{"hunter2,qwerty", "Tr0ub4dor&3,aA1!aA1!aA1!,hunter2"}
)

// GenSchedule derives a property-based workload from a seed: a random
// mix of repository-service calls across logical clients, workflow
// compositions, replica kills/restarts and virtual-clock advances. The
// same (seed, steps, clients, replicas) always yields the same schedule.
func GenSchedule(seed int64, steps, clients, replicas int) Schedule {
	if steps < 1 {
		steps = 1
	}
	if clients < 1 {
		clients = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	rng := rand.New(rand.NewSource(seed))
	sched := Schedule{Seed: seed, Steps: make([]Step, 0, steps)}
	for i := 0; i < steps; i++ {
		sched.Steps = append(sched.Steps, genStep(rng, clients, replicas))
	}
	return sched
}

func genStep(rng *rand.Rand, clients, replicas int) Step {
	client := rng.Intn(clients)
	switch p := rng.Float64(); {
	case p < 0.42:
		return genCall(rng, client)
	case p < 0.50:
		return Step{Kind: StepWorkflow, Client: client, Args: map[string]string{
			"ssn":      pick(rng, ssnPool),
			"password": pick(rng, passwordPool),
		}}
	case p < 0.56:
		return genWorkflowStart(rng, replicas)
	case p < 0.60:
		return Step{Kind: StepWorkflowResume, Replica: rng.Intn(replicas)}
	case p < 0.65:
		return Step{Kind: StepPublish, Replica: rng.Intn(replicas),
			Service: pick(rng, dirSvcPool), Args: map[string]string{
				"endpoint": pick(rng, endpointPool),
				"category": pick(rng, categoryPool),
			}}
	case p < 0.68:
		return Step{Kind: StepUnpublish, Replica: rng.Intn(replicas), Service: pick(rng, dirSvcPool)}
	case p < 0.71:
		return Step{Kind: StepRenew, Replica: rng.Intn(replicas), Service: pick(rng, dirSvcPool)}
	case p < 0.83:
		return Step{Kind: StepAdvance, AdvanceMs: 50 + rng.Int63n(2950)}
	case p < 0.91:
		return Step{Kind: StepKill, Replica: rng.Intn(replicas)}
	default:
		return Step{Kind: StepRestart, Replica: rng.Intn(replicas)}
	}
}

// genWorkflowStart instantiates a canned durable workflow. Roughly a
// third of the starts arm a mid-workflow power cut, at an append
// ordinal low enough to land inside the instance's own run — including
// mid-Parallel and mid-ForEach.
func genWorkflowStart(rng *rand.Rand, replicas int) Step {
	st := Step{Kind: StepWorkflowStart, Replica: rng.Intn(replicas), Def: pick(rng, wfDefPool)}
	switch st.Def {
	case DefOrderSaga:
		st.Args = map[string]string{
			"ssn":      pick(rng, ssnPool),
			"items":    pick(rng, wfItemsPool),
			"quantity": strconv.Itoa(1 + rng.Intn(3)),
			"price":    pick(rng, pricePool),
		}
	case DefFanoutCheck:
		st.Args = map[string]string{
			"ssn":       pick(rng, ssnPool),
			"password":  pick(rng, passwordPool),
			"passwords": pick(rng, wfPasswordsPool),
		}
	case DefRetryPoll:
		st.Args = map[string]string{
			"ssn":    pick(rng, ssnPool),
			"rounds": strconv.Itoa(1 + rng.Intn(3)),
		}
	}
	if rng.Float64() < 0.35 {
		st.AfterAppends = 2 + rng.Int63n(16)
	}
	return st
}

// GenWorkflowSchedule derives a workflow-heavy workload: mostly
// wfstart/wfresume with enough kills, restarts and clock advances that
// instances crash mid-flight and settle across incarnations. Used by
// the workflow smoke gate, which needs hundreds of instances per run.
func GenWorkflowSchedule(seed int64, steps, clients, replicas int) Schedule {
	if steps < 1 {
		steps = 1
	}
	if clients < 1 {
		clients = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	rng := rand.New(rand.NewSource(seed))
	sched := Schedule{Seed: seed, Steps: make([]Step, 0, steps)}
	for i := 0; i < steps; i++ {
		switch p := rng.Float64(); {
		case p < 0.34:
			sched.Steps = append(sched.Steps, genWorkflowStart(rng, replicas))
		case p < 0.48:
			sched.Steps = append(sched.Steps, Step{Kind: StepWorkflowResume, Replica: rng.Intn(replicas)})
		case p < 0.58:
			sched.Steps = append(sched.Steps, Step{Kind: StepKill, Replica: rng.Intn(replicas)})
		case p < 0.72:
			sched.Steps = append(sched.Steps, Step{Kind: StepRestart, Replica: rng.Intn(replicas)})
		case p < 0.86:
			sched.Steps = append(sched.Steps, Step{Kind: StepAdvance, AdvanceMs: 50 + rng.Int63n(1950)})
		default:
			sched.Steps = append(sched.Steps, genCall(rng, rng.Intn(clients)))
		}
	}
	return sched
}

func genCall(rng *rand.Rand, client int) Step {
	st := Step{Kind: StepCall, Client: client}
	switch p := rng.Float64(); {
	case p < 0.28:
		st.Service, st.Op = "CreditScore", "Score"
		st.Args = map[string]string{"ssn": pick(rng, ssnPool)}
	case p < 0.52:
		st.Service, st.Op = "RandomString", "CheckStrength"
		st.Args = map[string]string{"password": pick(rng, passwordPool)}
	case p < 0.62:
		// CreateCart takes no arguments; nil Args survives the JSON round
		// trip (an empty map would be dropped by omitempty and parse back
		// as nil, breaking schedule equality).
		st.Service, st.Op = "ShoppingCart", "CreateCart"
	case p < 0.78:
		st.Service, st.Op = "ShoppingCart", "AddItem"
		st.Args = map[string]string{
			"cart":     cartID(rng),
			"item":     pick(rng, itemPool),
			"quantity": strconv.Itoa(1 + rng.Intn(3)),
			"price":    pick(rng, pricePool),
		}
	case p < 0.88:
		st.Service, st.Op = "ShoppingCart", "Total"
		st.Args = map[string]string{"cart": cartID(rng)}
	case p < 0.94:
		st.Service, st.Op = "ShoppingCart", "RemoveItem"
		st.Args = map[string]string{"cart": cartID(rng), "item": pick(rng, itemPool)}
	default:
		st.Service, st.Op = "ShoppingCart", "Checkout"
		st.Args = map[string]string{"cart": cartID(rng)}
	}
	return st
}

// cartID guesses a low cart id: CreateCart issues them sequentially from
// 1, so small guesses hit live carts often enough to exercise state and
// missing carts often enough to exercise the error paths.
func cartID(rng *rand.Rand) string {
	return strconv.Itoa(1 + rng.Intn(5))
}

func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}
