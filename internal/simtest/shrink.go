package simtest

// Failing reports whether running the schedule yields any invariant
// violation (harness errors count as failures too: a schedule the world
// cannot even execute is worth reporting).
func Failing(cfg Config, s Schedule) bool {
	rec, err := Run(cfg, s)
	return err != nil || len(rec.Violations) > 0
}

// Shrink greedily minimises a failing schedule: repeatedly try removing
// chunks of steps — halving the chunk size as removals stop helping —
// and keep any candidate that still fails. Schedules are self-contained
// (the seed drives the fault plan, not the step list), so every subset
// replays deterministically. budget caps the number of simulation runs
// spent shrinking; the best schedule found within it is returned. The
// result still fails, and removing any single remaining step (within
// budget) makes it pass.
func Shrink(cfg Config, s Schedule, budget int) Schedule {
	return ShrinkWith(func(c Schedule) bool { return Failing(cfg, c) }, s, budget)
}

// ShrinkWith is Shrink against an arbitrary failure predicate — the
// minimisation algorithm itself, decoupled from the simulator so it can
// be exercised (and trusted) on synthetic predicates.
func ShrinkWith(failing func(Schedule) bool, s Schedule, budget int) Schedule {
	fails := func(c Schedule) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return failing(c)
	}
	if !fails(s) {
		return s
	}
	best := s
	chunk := len(best.Steps) / 2
	if chunk < 1 {
		chunk = 1
	}
	for {
		removed := false
		for start := 0; start+chunk <= len(best.Steps); {
			steps := make([]Step, 0, len(best.Steps)-chunk)
			steps = append(steps, best.Steps[:start]...)
			steps = append(steps, best.Steps[start+chunk:]...)
			if cand := (Schedule{Seed: best.Seed, Steps: steps}); fails(cand) {
				best = cand
				removed = true
			} else {
				start += chunk
			}
		}
		if chunk == 1 {
			if !removed || budget <= 0 {
				return best
			}
			continue
		}
		chunk /= 2
	}
}
