package simtest

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"soc/internal/core"
	"soc/internal/faultinject"
	"soc/internal/host"
	"soc/internal/registry"
	"soc/internal/reliability"
	"soc/internal/services"
	"soc/internal/telemetry"
	"soc/internal/vtime"
	"soc/internal/wal"
	"soc/internal/workflow"
)

// simEpoch is the fixed instant every simulation starts at: virtual time
// is part of the reproducible state, so it cannot depend on when the run
// happens to execute.
var simEpoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// Config sizes a simulated world. The zero value gets workable defaults;
// durations are virtual time.
type Config struct {
	// Replicas is the simulated replica count (default 3).
	Replicas int
	// Clients is the logical client count; each gets its own
	// ResilientClient with private breakers and failover stickiness
	// (default 3).
	Clients int
	// CacheCapacity and CacheTTL size each replica's idempotent-response
	// cache. Defaults (4096 entries, 24 h virtual) are deliberately large
	// enough that neither LRU eviction nor TTL expiry legally re-runs a
	// handler mid-run, which is what makes the cache-once invariant
	// checkable.
	CacheCapacity int
	CacheTTL      time.Duration
	// Timeout bounds each attempt; BreakerThreshold/BreakerCooldown and
	// RetryAttempts/RetryBase configure the reliability stack (defaults:
	// 2 s, 3 failures, 1 s cooldown, 3 attempts, 25 ms base backoff).
	Timeout          time.Duration
	BreakerThreshold int
	BreakerCooldown  time.Duration
	RetryAttempts    int
	RetryBase        time.Duration
	// BaseRTT is the virtual wire latency charged per delivery attempt
	// (default 1 ms).
	BaseRTT time.Duration
	// Faults is the per-link fault rule; nil uses DefaultFaults. Point at
	// a zero Rule for a fault-free world.
	Faults *faultinject.Rule
	// DiskFaults is the per-replica disk fault rule applied to the durable
	// directory's write-ahead log; nil uses DefaultDiskFaults. Point at a
	// zero DiskRule for perfect disks.
	DiskFaults *faultinject.DiskRule
	// SnapshotEvery folds each replica's directory log into a snapshot
	// after this many records (default 6, small enough that generated
	// schedules exercise snapshot + compaction + recovery-from-snapshot).
	SnapshotEvery int
	// SegmentBytes is the replica WAL rotation threshold (default 2048,
	// small enough that schedules span multiple segments).
	SegmentBytes int64
	// WorkflowSnapshotEvery folds each replica's workflow journal into a
	// snapshot after this many appends (default 48 — large enough that
	// instances span snapshots, small enough that compaction happens).
	WorkflowSnapshotEvery int
	// WorkflowMutation enables one of the workflow.Mutation* fault hooks
	// on every replica's orchestrator (tests only): the workflow audit
	// invariant must trip under each of them.
	WorkflowMutation string
}

// DefaultFaults is the standard chaos mix: errors, drops, the occasional
// hang, and latency spikes. Hangs are safe under virtual time — they
// advance the clock to the attempt deadline instead of stalling a
// goroutine.
var DefaultFaults = faultinject.Rule{
	ErrorRate:     0.10,
	DropRate:      0.07,
	HangRate:      0.02,
	MaxHang:       10 * time.Second,
	LatencyRate:   0.25,
	Latency:       40 * time.Millisecond,
	LatencyJitter: 20 * time.Millisecond,
}

// DefaultDiskFaults is the standard hostile-disk mix for the durable
// directory: failed writes, torn (short) writes, failed fsyncs. Crashes
// additionally tear whatever was written but not synced.
var DefaultDiskFaults = faultinject.DiskRule{
	WriteErrorRate: 0.02,
	ShortWriteRate: 0.05,
	SyncErrorRate:  0.04,
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 3
	}
	if c.Clients < 1 {
		c.Clients = 3
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 4096
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 24 * time.Hour
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.BaseRTT <= 0 {
		c.BaseRTT = time.Millisecond
	}
	if c.Faults == nil {
		f := DefaultFaults
		c.Faults = &f
	}
	if c.DiskFaults == nil {
		d := DefaultDiskFaults
		c.DiskFaults = &d
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 6
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 2048
	}
	if c.WorkflowSnapshotEvery == 0 {
		c.WorkflowSnapshotEvery = 48
	}
	return c
}

// Transition is one observed breaker state change, tagged with the step
// it happened in and the (client, replica) breaker it belongs to.
type Transition struct {
	Step    int    `json:"step"`
	Client  int    `json:"client"`
	Replica string `json:"replica"`
	From    string `json:"from"`
	To      string `json:"to"`
}

// Observation is one QoS data point the world fed into the registry.
type Observation struct {
	Service string
	Up      bool
	RTT     time.Duration
	Cached  bool
}

// StepRecord is everything one step produced: the outcome, the spans
// drained from every tracer, delivery and cache counters, and breaker
// transitions. Invariant checkers consume these.
type StepRecord struct {
	Index       int
	Step        Step
	Err         string
	Out         string
	ElapsedMs   int64
	Delivered   int
	ServerSpans int
	CacheSpans  int
	Spans       []telemetry.Span
	Transitions []Transition
}

// RunRecord is a completed simulation: the schedule, per-step records,
// the violations found by the invariant checkers, and the canonical
// event log with its hash (two runs of the same schedule must produce
// the same hash — that IS the determinism contract).
type RunRecord struct {
	Schedule     Schedule
	Steps        []StepRecord
	Violations   []Violation
	HandlerRuns  map[string]int
	Observations []Observation
	Log          []string
	Hash         string
}

// simReplica is one simulated backend: a network identity that survives
// restarts, and a process incarnation (host, services, response cache)
// that does not.
type simReplica struct {
	w           *World
	idx         int
	name        string
	baseURL     string
	alive       bool
	incarnation int
	h           *host.Host
	rt          http.RoundTripper // fault injector wrapped around delivery

	// disk is the replica's simulated disk: it survives restarts (it is
	// the durable medium) and tears its unsynced tails on kill. faultFS
	// is the same disk behind the write-fault injector (reads pass
	// through unfaulted, so recovery always sees the disk as it is).
	disk    *wal.MemFS
	faultFS wal.FS
	dreg    *registry.DurableRegistry

	// wfdisk is the second durable medium: the workflow journal's disk,
	// torn on the same power cuts, behind its own seeded fault injector.
	wfdisk    *wal.MemFS
	wfFaultFS wal.FS
	orch      *workflow.Orchestrator
}

// World is one simulated universe: virtual clock, replicas, clients,
// QoS registry and the per-step counters the invariants read. A World
// runs single-threaded; determinism relies on sequential stepping.
type World struct {
	cfg          Config
	clock        *vtime.Virtual
	ctx          context.Context
	clientTracer *telemetry.Tracer
	replicas     []*simReplica
	clients      []*host.ResilientClient
	qosReg       *registry.QoSRegistry

	stepIdx         int
	stepDelivered   int
	stepTransitions []Transition
	pendingSpans    []telemetry.Span
	handlerRuns     map[string]int
	qosAgg          map[string]*QoSAgg
	observations    []Observation
	// acked is the per-replica ledger of durably acknowledged directory
	// state: exactly the entries whose publish/renew/unpublish acks the
	// world has seen. The acked ⇒ durable invariant holds each replica's
	// directory to it after every step, crashes included.
	acked []map[string]registry.Entry
	// wfAcked is the per-replica ledger of acked workflow-journal state:
	// a snapshot of every instance's audit taken after each workflow
	// step. Recovery may never lose or contradict it — the workflow
	// twin of acked ⇒ durable.
	wfAcked []map[string]workflow.InstanceAudit
}

// NewWorld builds a world for the schedule's seed. Fault plans for each
// replica link are derived from the seed, so the whole universe is a
// pure function of (Config, Schedule).
func NewWorld(cfg Config, seed int64) (*World, error) {
	cfg = cfg.withDefaults()
	w := &World{
		cfg:          cfg,
		clock:        vtime.NewVirtual(simEpoch),
		clientTracer: telemetry.NewTracer(4096),
		handlerRuns:  map[string]int{},
		qosAgg:       map[string]*QoSAgg{},
	}
	w.ctx = vtime.WithClock(context.Background(), w.clock)

	reg := registry.New(registry.WithClock(w.clock.Now), registry.WithLease(100000*time.Hour))
	w.qosReg = registry.NewQoS(reg)
	for _, name := range []string{"CreditScore", "RandomString", "ShoppingCart"} {
		if err := reg.Publish(registry.Entry{Name: name, Endpoint: "sim://" + name}); err != nil {
			return nil, fmt.Errorf("simtest: publishing %s: %w", name, err)
		}
	}

	for i := 0; i < cfg.Replicas; i++ {
		r := &simReplica{w: w, idx: i, name: fmt.Sprintf("replica-%d", i)}
		r.baseURL = "http://" + r.name
		r.disk = wal.NewMemFS(seed ^ fnv64(r.name+"/disk"))
		di, err := faultinject.NewDisk(faultinject.DiskPlan{
			Seed: seed ^ fnv64(r.name+"/disk-faults"),
			Rule: *cfg.DiskFaults,
		})
		if err != nil {
			return nil, err
		}
		r.faultFS = di.FS(r.disk)
		r.wfdisk = wal.NewMemFS(seed ^ fnv64(r.name+"/wfdisk"))
		wdi, err := faultinject.NewDisk(faultinject.DiskPlan{
			Seed: seed ^ fnv64(r.name+"/wfdisk-faults"),
			Rule: *cfg.DiskFaults,
		})
		if err != nil {
			return nil, err
		}
		r.wfFaultFS = wdi.FS(r.wfdisk)
		w.acked = append(w.acked, map[string]registry.Entry{})
		w.wfAcked = append(w.wfAcked, map[string]workflow.InstanceAudit{})
		if err := r.boot(); err != nil {
			return nil, err
		}
		inj, err := faultinject.New(faultinject.Plan{
			Seed:    seed ^ fnv64(r.name),
			Default: *cfg.Faults,
		})
		if err != nil {
			return nil, err
		}
		inj.Tracer = w.clientTracer
		r.rt = inj.Transport(deliverer{r})
		w.replicas = append(w.replicas, r)
	}

	urls := make([]string, len(w.replicas))
	for i, r := range w.replicas {
		urls[i] = r.baseURL
	}
	//soclint:ignore noclientliteral the simulated network cannot hang in wall time — hangs advance the virtual clock to the attempt deadline, and a wall-clock Timeout here would leak real time into a deterministic run
	httpClient := &http.Client{Transport: linkNet{w}}
	for ci := 0; ci < cfg.Clients; ci++ {
		rc, err := host.NewResilientClient(host.Policy{
			Timeout: cfg.Timeout,
			Retry: reliability.RetryPolicy{
				MaxAttempts: cfg.RetryAttempts,
				BaseDelay:   cfg.RetryBase,
				MaxDelay:    time.Second,
			},
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
			MaxConcurrent:    16,
			HTTPClient:       httpClient,
			Tracer:           w.clientTracer,
			Clock:            w.clock,
		}, urls...)
		if err != nil {
			return nil, err
		}
		for _, u := range urls {
			u, ci := u, ci
			rc.Breaker(u).OnTransition = func(from, to reliability.BreakerState) {
				w.stepTransitions = append(w.stepTransitions, Transition{
					Step: w.stepIdx, Client: ci, Replica: u,
					From: from.String(), To: to.String(),
				})
			}
		}
		w.clients = append(w.clients, rc)
	}
	return w, nil
}

// boot starts a fresh incarnation of the replica: new host, new service
// state, empty response cache on the virtual clock. Idempotent-operation
// handlers are wrapped to count successful executions per distinct
// input — the raw data of the cache-once invariant.
func (r *simReplica) boot() error {
	r.incarnation++
	r.alive = true
	h := host.New()
	cs, err := services.NewCreditScore()
	if err != nil {
		return err
	}
	rs, err := services.NewRandomString()
	if err != nil {
		return err
	}
	sc, err := services.NewShoppingCart(services.NewCarts())
	if err != nil {
		return err
	}
	for _, svc := range []*core.Service{cs, rs, sc} {
		svcName, inc, idx, w := svc.Name, r.incarnation, r.idx, r.w
		for _, op := range svc.Operations() {
			if !op.Idempotent {
				continue
			}
			opName, orig := op.Name, op.Handler
			op.Handler = func(ctx context.Context, in core.Values) (core.Values, error) {
				out, err := orig(ctx, in)
				if err == nil {
					key := fmt.Sprintf("replica-%d|inc-%d|%s.%s|%s", idx, inc, svcName, opName, canonValues(in))
					w.handlerRuns[key]++
				}
				return out, err
			}
		}
		if err := h.Mount(svc); err != nil {
			return err
		}
	}
	cache := h.UseResponseCache(r.w.cfg.CacheCapacity, r.w.cfg.CacheTTL)
	cache.UseClock(r.w.clock)
	r.h = h
	// Recover the durable directory from the replica's disk: the write-
	// ahead log (as salvaged after any crash) rebuilds exactly the acked
	// directory state of the previous incarnations.
	dreg, err := registry.OpenDurable(r.faultFS, registry.DurableOptions{
		WAL:           wal.Options{SegmentBytes: r.w.cfg.SegmentBytes},
		SnapshotEvery: r.w.cfg.SnapshotEvery,
	}, registry.WithClock(r.w.clock.Now), registry.WithLease(time.Hour))
	if err != nil {
		return err
	}
	r.dreg = dreg
	// Recover the durable workflow orchestrator from its own disk and
	// re-register the canned definitions and compensators (code is
	// per-incarnation; journals are the only durable truth). Its invoker
	// is the replica's own service plane over the simulated wire, so
	// workflow invocations produce the same spans, delivery counts and
	// cache hits the invariants audit.
	wfClient := &host.Client{
		BaseURL: r.baseURL,
		//soclint:ignore noclientliteral workflow invocations ride the deterministic in-memory wire; a wall-clock timeout would leak real time into the run
		HTTPClient: &http.Client{Transport: deliverer{r}},
		Tracer:     r.w.clientTracer,
	}
	inv := workflow.InvokerFunc(func(ctx context.Context, service, operation string, args map[string]any) (map[string]any, error) {
		out, err := wfClient.Call(ctx, service, operation, core.Values(args))
		return map[string]any(out), err
	})
	orch, err := workflow.OpenOrchestrator(r.wfFaultFS, workflow.Options{
		WAL:           wal.Options{SegmentBytes: r.w.cfg.SegmentBytes},
		SnapshotEvery: r.w.cfg.WorkflowSnapshotEvery,
		Deterministic: true,
		Mutation:      r.w.cfg.WorkflowMutation,
	})
	if err != nil {
		return err
	}
	defs, err := buildWorkflowDefs(inv)
	if err != nil {
		return err
	}
	for _, wf := range defs {
		orch.Define(wf)
	}
	for _, name := range wfCompensators {
		orch.DefineCompensator(name, func(context.Context, map[string]any) error { return nil })
	}
	r.orch = orch
	return nil
}

// kill power-cuts the replica: deliveries start failing and both durable
// media keep only their fsynced prefixes plus seeded-random torn tails.
func (r *simReplica) kill() {
	r.alive = false
	r.disk.Crash()
	r.wfdisk.Crash()
}

// deliverer delivers a request to one replica's current incarnation —
// the in-memory wire. A delivery attempt costs BaseRTT of virtual time
// whether or not the replica is up.
type deliverer struct{ r *simReplica }

func (d deliverer) RoundTrip(req *http.Request) (*http.Response, error) {
	w := d.r.w
	//soclint:ignore errdiscard crossing a virtual deadline mid-wire still delivers; the timeout layer converts it after the fact
	_ = vtime.Sleep(req.Context(), w.cfg.BaseRTT)
	if !d.r.alive {
		return nil, fmt.Errorf("simnet: %s: connection refused", d.r.name)
	}
	w.stepDelivered++
	rec := httptest.NewRecorder()
	d.r.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// linkNet routes by URL host to the per-replica fault-injected link.
type linkNet struct{ w *World }

func (ln linkNet) RoundTrip(req *http.Request) (*http.Response, error) {
	for _, r := range ln.w.replicas {
		if r.name == req.URL.Host {
			return r.rt.RoundTrip(req)
		}
	}
	return nil, fmt.Errorf("simnet: unknown host %q", req.URL.Host)
}

// Run executes the schedule in a fresh world and returns the full
// record, invariants checked after every step. The returned error
// reports harness malfunction only; invariant violations are data.
func Run(cfg Config, sched Schedule) (*RunRecord, error) {
	w, err := NewWorld(cfg, sched.Seed)
	if err != nil {
		return nil, err
	}
	rec := &RunRecord{Schedule: sched}
	runOne := func(st Step) {
		i := len(rec.Steps)
		sr := w.runStep(i, st)
		rec.Steps = append(rec.Steps, sr)
		rec.Log = append(rec.Log, w.logLine(sr))
		rec.Violations = append(rec.Violations, w.checkStep(sr)...)
	}
	for _, st := range sched.Steps {
		runOne(st)
	}
	// Settle phase: every started workflow instance must eventually
	// complete or compensate, so the world keeps restarting dead
	// replicas and resuming pending instances with synthesized steps
	// (which flow through the same runStep/logLine/checkStep pipeline —
	// settling is part of the hashed, invariant-checked run). The round
	// bound only guards against a livelocked harness; a run that
	// exhausts it fails the settle invariant below.
	for round := 0; round < 64; round++ {
		synth := w.settleSteps()
		if len(synth) == 0 {
			break
		}
		for _, st := range synth {
			runOne(st)
		}
	}
	rec.Violations = append(rec.Violations, w.checkSettled(len(rec.Steps))...)
	rec.HandlerRuns = w.handlerRuns
	rec.Observations = w.observations
	sum := sha256.Sum256([]byte(strings.Join(rec.Log, "\n")))
	rec.Hash = hex.EncodeToString(sum[:])
	return rec, nil
}

func (w *World) runStep(i int, st Step) StepRecord {
	w.stepIdx = i
	w.stepDelivered = 0
	w.stepTransitions = w.stepTransitions[:0]
	w.pendingSpans = w.pendingSpans[:0]
	sr := StepRecord{Index: i, Step: st}
	start := w.clock.Now()

	switch st.Kind {
	case StepCall:
		client := w.clients[mod(st.Client, len(w.clients))]
		args := make(core.Values, len(st.Args))
		for k, v := range st.Args {
			args[k] = v
		}
		out, err := client.Call(w.ctx, st.Service, st.Op, args)
		sr.Err = errString(err)
		sr.Out = canonValues(out)
	case StepWorkflow:
		client := w.clients[mod(st.Client, len(w.clients))]
		out, names, err := w.runWorkflow(client, st.Args)
		sr.Err = errString(err)
		sr.Out = canonValues(out) + "|activities=" + strings.Join(names, ",")
	case StepKill:
		r := w.replicas[mod(st.Replica, len(w.replicas))]
		// A kill is a power cut, not a clean exit: each disk keeps only
		// what was fsynced plus a seeded-random torn tail of the rest.
		r.kill()
	case StepRestart:
		r := w.replicas[mod(st.Replica, len(w.replicas))]
		// Archive anything still in the dying incarnation's ring before
		// the host is replaced (normally empty: every step drains).
		w.pendingSpans = append(w.pendingSpans, drain(r.h.Tracer())...)
		if err := r.boot(); err != nil {
			// A failed boot (recovery tripped over an injected disk fault)
			// leaves the replica down; a later restart retries.
			r.alive = false
			sr.Err = errString(err)
		} else {
			// The recovery reports (snapshot index, replayed records,
			// salvage decisions) of both durable media feed the canonical
			// log, so recovery itself is held to the determinism hash.
			sr.Out = strings.ReplaceAll(r.dreg.Recovery().String(), " ", ",") +
				"|wf=" + strings.ReplaceAll(r.orch.Recovery().String(), " ", ",")
		}
	case StepWorkflowStart:
		r := w.replicas[mod(st.Replica, len(w.replicas))]
		if !r.alive {
			sr.Err = fmt.Sprintf("simtest: %s is down", r.name)
			sr.Out = "-"
			break
		}
		if st.AfterAppends > 0 {
			// The armed power cut fires INSTEAD of the journal write at
			// that ordinal — mid-instance, possibly mid-Parallel or
			// mid-ForEach, possibly during a later step on this replica.
			r.orch.ArmCrash(st.AfterAppends, r.kill)
		}
		id := fmt.Sprintf("wf-%03d", i)
		res, err := r.orch.Start(w.ctx, id, st.Def, workflowInit(st.Def, st.Args))
		sr.Err = errString(err)
		sr.Out = wfResultOut(res)
		w.wfAcked[r.idx] = r.orch.Audits()
	case StepWorkflowResume:
		r := w.replicas[mod(st.Replica, len(w.replicas))]
		if !r.alive {
			sr.Err = fmt.Sprintf("simtest: %s is down", r.name)
			sr.Out = "-"
			break
		}
		sr.Out = wfResultsOut(r.orch.ResumeAll(w.ctx))
		w.wfAcked[r.idx] = r.orch.Audits()
	case StepPublish, StepUnpublish, StepRenew:
		sr.Err, sr.Out = w.runDirectoryStep(st)
	case StepAdvance:
		w.clock.Advance(time.Duration(st.AdvanceMs) * time.Millisecond)
	default:
		sr.Err = fmt.Sprintf("simtest: unknown step kind %q", st.Kind)
	}

	sr.ElapsedMs = int64(w.clock.Now().Sub(start) / time.Millisecond)
	spans := append([]telemetry.Span(nil), w.pendingSpans...)
	spans = append(spans, drain(w.clientTracer)...)
	for _, r := range w.replicas {
		spans = append(spans, drain(r.h.Tracer())...)
	}
	sr.Spans = spans
	sr.Delivered = w.stepDelivered
	sr.Transitions = append([]Transition(nil), w.stepTransitions...)
	for _, sp := range spans {
		switch sp.Kind {
		case telemetry.KindServer:
			sr.ServerSpans++
		case telemetry.KindCache:
			sr.CacheSpans++
		}
	}

	if st.Kind == StepCall {
		obs := Observation{
			Service: st.Service,
			Up:      sr.Err == "",
			RTT:     w.clock.Now().Sub(start),
			Cached:  sr.CacheSpans > 0,
		}
		w.observations = append(w.observations, obs)
		//soclint:ignore errdiscard the three simulated services are always published; a lookup failure would surface in the QoS invariant
		_ = w.qosReg.ObserveCall(obs.Service, obs.Up, obs.RTT, obs.Cached)
		if !obs.Cached {
			agg := w.qosAgg[obs.Service]
			if agg == nil {
				agg = &QoSAgg{}
				w.qosAgg[obs.Service] = agg
			}
			agg.Add(obs.Up, obs.RTT)
		}
	}
	return sr
}

// runDirectoryStep executes one durable-directory mutation against the
// target replica and settles the acked ledger: only a nil error is an
// ack, and only acks move the ledger. The outcome string renders the
// resulting lease deterministically (virtual milliseconds since epoch).
func (w *World) runDirectoryStep(st Step) (errStr, out string) {
	r := w.replicas[mod(st.Replica, len(w.replicas))]
	if !r.alive {
		return fmt.Sprintf("simtest: %s is down", r.name), "-"
	}
	ledger := w.acked[r.idx]
	switch st.Kind {
	case StepPublish:
		err := r.dreg.Publish(registry.Entry{
			Name:     st.Service,
			Endpoint: st.Args["endpoint"],
			Category: st.Args["category"],
			Doc:      "simulated directory entry " + st.Service,
			Provider: r.name,
		})
		if err != nil {
			return errString(err), "-"
		}
		stored, err := r.dreg.Get(st.Service)
		if err != nil {
			return "simtest: acked publish not readable: " + err.Error(), "-"
		}
		ledger[st.Service] = stored
		return "", fmt.Sprintf("lease=%dms", stored.LeaseExpires.Sub(simEpoch)/time.Millisecond)
	case StepUnpublish:
		if err := r.dreg.Unpublish(st.Service); err != nil {
			return errString(err), "-"
		}
		delete(ledger, st.Service)
		return "", "removed"
	case StepRenew:
		if err := r.dreg.Heartbeat(st.Service); err != nil {
			return errString(err), "-"
		}
		stored, err := r.dreg.Get(st.Service)
		if err != nil {
			return "simtest: acked renew not readable: " + err.Error(), "-"
		}
		ledger[st.Service] = stored
		return "", fmt.Sprintf("lease=%dms", stored.LeaseExpires.Sub(simEpoch)/time.Millisecond)
	}
	return "simtest: unknown directory step " + st.Kind, "-"
}

// checkStep runs all five invariant checkers after a step: the per-step
// ones on this step's record, the cumulative ones on the aggregates so
// far.
func (w *World) checkStep(sr StepRecord) []Violation {
	var out []Violation
	out = append(out, CheckTraceStep(sr.Index, sr.Step.Kind, sr.Spans)...)
	out = append(out, CheckDelivery(sr.Index, sr.Delivered, sr.ServerSpans, sr.CacheSpans)...)
	out = append(out, CheckBreakerEdges(sr.Transitions)...)
	out = append(out, CheckCacheOnce(sr.Index, w.handlerRuns)...)
	names := make([]string, 0, len(w.qosAgg))
	for name := range w.qosAgg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		q, ok := w.qosReg.QoSOf(name)
		out = append(out, CheckQoSBounds(sr.Index, name, *w.qosAgg[name], q, ok)...)
	}
	for i, r := range w.replicas {
		if !r.alive {
			// A dead replica's directory is unreadable by definition; its
			// ledger is settled the moment it restarts and recovers.
			continue
		}
		out = append(out, CheckDurable(sr.Index, r.name, w.acked[i], r.dreg)...)
	}
	// The workflow audit is only consulted after steps that moved
	// workflow state: starts and resumes append to journals, restarts
	// recover them (the moment the acked ⇒ durable comparison bites).
	switch sr.Step.Kind {
	case StepWorkflowStart, StepWorkflowResume, StepRestart:
		for i, r := range w.replicas {
			if !r.alive {
				continue
			}
			out = append(out, CheckWorkflows(sr.Index, r.name, w.wfAcked[i], r.orch.Audits())...)
		}
	}
	return out
}

// runWorkflow composes two resilient calls — credit score, then password
// strength — as a workflow Sequence, so workflow spans join the same
// trace plane the call steps exercise.
func (w *World) runWorkflow(client *host.ResilientClient, args map[string]string) (core.Values, []string, error) {
	inv := workflow.InvokerFunc(func(ctx context.Context, service, operation string, a map[string]any) (map[string]any, error) {
		out, err := client.Call(ctx, service, operation, core.Values(a))
		return map[string]any(out), err
	})
	wf, err := workflow.New("score-and-check", &workflow.Sequence{
		Label: "score-and-check",
		Steps: []workflow.Activity{
			&workflow.Invoke{
				Label: "credit-score", Service: "CreditScore", Operation: "Score", Invoker: inv,
				Inputs: map[string]string{"ssn": "ssn"}, Outputs: map[string]string{"score": "score"},
			},
			&workflow.Invoke{
				Label: "check-strength", Service: "RandomString", Operation: "CheckStrength", Invoker: inv,
				Inputs: map[string]string{"password": "password"}, Outputs: map[string]string{"strong": "strong"},
			},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	ctx := telemetry.ContextWithTracer(w.ctx, w.clientTracer)
	out, tr, err := wf.Run(ctx, map[string]any{"ssn": args["ssn"], "password": args["password"]})
	var names []string
	if tr != nil {
		names = tr.Names()
	}
	return core.Values(out), names, err
}

// logLine renders one step as a canonical event-log line: everything
// deterministic (virtual times, outcomes, counters), nothing wall-clock
// or randomized (no span IDs, no durations measured in real time).
func (w *World) logLine(sr StepRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "step=%d t=%dms kind=%s", sr.Index, w.clock.Now().Sub(simEpoch)/time.Millisecond, sr.Step.Kind)
	switch sr.Step.Kind {
	case StepCall:
		fmt.Fprintf(&b, " client=%d op=%s.%s args=%s", sr.Step.Client, sr.Step.Service, sr.Step.Op, canonStringMap(sr.Step.Args))
	case StepWorkflow:
		fmt.Fprintf(&b, " client=%d args=%s", sr.Step.Client, canonStringMap(sr.Step.Args))
	case StepKill, StepRestart:
		fmt.Fprintf(&b, " replica=%d", sr.Step.Replica)
	case StepPublish:
		fmt.Fprintf(&b, " replica=%d service=%s args=%s", sr.Step.Replica, sr.Step.Service, canonStringMap(sr.Step.Args))
	case StepUnpublish, StepRenew:
		fmt.Fprintf(&b, " replica=%d service=%s", sr.Step.Replica, sr.Step.Service)
	case StepWorkflowStart:
		fmt.Fprintf(&b, " replica=%d def=%s args=%s afterAppends=%d",
			sr.Step.Replica, sr.Step.Def, canonStringMap(sr.Step.Args), sr.Step.AfterAppends)
	case StepWorkflowResume:
		fmt.Fprintf(&b, " replica=%d", sr.Step.Replica)
	case StepAdvance:
		fmt.Fprintf(&b, " advance=%dms", sr.Step.AdvanceMs)
	}
	fmt.Fprintf(&b, " err=%q out=%s elapsed=%dms delivered=%d server=%d cached=%d",
		sr.Err, sr.Out, sr.ElapsedMs, sr.Delivered, sr.ServerSpans, sr.CacheSpans)
	if len(sr.Transitions) > 0 {
		b.WriteString(" transitions=")
		for i, t := range sr.Transitions {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "c%d:%s:%s>%s", t.Client, t.Replica, t.From, t.To)
		}
	}
	return b.String()
}

// settleSteps synthesizes the next settle round: restart what is down,
// resume what is pending. Empty means the world has settled.
func (w *World) settleSteps() []Step {
	var out []Step
	for idx, r := range w.replicas {
		switch {
		case !r.alive:
			out = append(out, Step{Kind: StepRestart, Replica: idx})
		case len(r.orch.Pending()) > 0:
			out = append(out, Step{Kind: StepWorkflowResume, Replica: idx})
		}
	}
	return out
}

// checkSettled enforces the eventually-terminal half of the workflow
// invariant once the settle phase ends: no replica still down, no
// instance still pending.
func (w *World) checkSettled(step int) []Violation {
	var out []Violation
	for _, r := range w.replicas {
		if !r.alive {
			out = append(out, Violation{Step: step, Invariant: InvWorkflowSettle,
				Detail: r.name + " still down after the settle phase"})
			continue
		}
		for _, id := range r.orch.Pending() {
			out = append(out, Violation{Step: step, Invariant: InvWorkflowSettle,
				Detail: fmt.Sprintf("%s: instance %s never reached a terminal status", r.name, id)})
		}
	}
	return out
}

func drain(t *telemetry.Tracer) []telemetry.Span {
	s := t.Snapshot()
	t.Reset()
	return s
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// canonValues renders a Values map canonically: keys sorted, values in
// their lexical forms.
func canonValues(v core.Values) string {
	if len(v) == 0 {
		return "-"
	}
	keys := v.Keys()
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + core.FormatValue(v[k])
	}
	return strings.Join(parts, "&")
}

func canonStringMap(m map[string]string) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, "&")
}

func mod(i, n int) int {
	if n <= 0 {
		return 0
	}
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// fnv64 hashes a link name into the injector seed derivation.
func fnv64(s string) int64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}
