package maze

import "testing"

func BenchmarkGenerate(b *testing.B) {
	algs := map[string]Algorithm{"dfs": DFS, "prim": Prim, "division": Division}
	for name, alg := range algs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := Generate(31, 31, alg, int64(i))
				if err != nil || !m.Solvable() {
					b.Fatalf("seed %d: %v", i, err)
				}
			}
		})
	}
}

func BenchmarkDistances(b *testing.B) {
	m, err := Generate(31, 31, DFS, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Distances(m.Goal); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStringParse(b *testing.B) {
	m, err := Generate(31, 31, Prim, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := m.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}
