package maze

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDirHelpers(t *testing.T) {
	if North.Opposite() != South || East.Opposite() != West {
		t.Error("Opposite wrong")
	}
	if North.Left() != West || North.Right() != East {
		t.Error("turns wrong")
	}
	if West.Right() != North || West.Left() != South {
		t.Error("west turns wrong")
	}
	if North.String() != "north" || Dir(9).String() == "" {
		t.Error("String wrong")
	}
	dxv, dyv := South.Delta()
	if dxv != 0 || dyv != 1 {
		t.Error("Delta wrong")
	}
}

func TestNewAllWalls(t *testing.T) {
	m, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			for d := North; d <= West; d++ {
				if !m.HasWall(Cell{x, y}, d) {
					t.Fatalf("cell %d,%d missing wall %s", x, y, d)
				}
			}
		}
	}
	if m.Solvable() {
		t.Error("fully-walled maze reported solvable")
	}
}

func TestNewValidation(t *testing.T) {
	for _, dims := range [][2]int{{1, 5}, {5, 1}, {0, 0}, {2000, 2}} {
		if _, err := New(dims[0], dims[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", dims[0], dims[1])
		}
	}
}

func TestSetWallSymmetry(t *testing.T) {
	m, _ := New(3, 3)
	if err := m.SetWall(Cell{1, 1}, East, false); err != nil {
		t.Fatal(err)
	}
	if m.HasWall(Cell{1, 1}, East) || m.HasWall(Cell{2, 1}, West) {
		t.Error("wall not opened on both sides")
	}
	if err := m.SetWall(Cell{1, 1}, East, true); err != nil {
		t.Fatal(err)
	}
	if !m.HasWall(Cell{2, 1}, West) {
		t.Error("wall not restored on both sides")
	}
	if err := m.SetWall(Cell{0, 0}, North, false); err == nil {
		t.Error("boundary wall opened")
	}
	if err := m.SetWall(Cell{9, 9}, North, true); err == nil {
		t.Error("out-of-grid cell accepted")
	}
}

func TestGeneratePerfectMazes(t *testing.T) {
	for _, alg := range []Algorithm{DFS, Prim} {
		for seed := int64(0); seed < 5; seed++ {
			m, err := Generate(9, 7, alg, seed)
			if err != nil {
				t.Fatalf("Generate(%v,%d): %v", alg, seed, err)
			}
			if !m.Solvable() {
				t.Errorf("alg %v seed %d: unsolvable", alg, seed)
			}
			// A perfect maze over N cells has exactly N-1 open internal
			// wall pairs (it is a spanning tree).
			open := 0
			for y := 0; y < m.H; y++ {
				for x := 0; x < m.W; x++ {
					c := Cell{x, y}
					if m.CanMove(c, East) {
						open++
					}
					if m.CanMove(c, South) {
						open++
					}
				}
			}
			if open != m.W*m.H-1 {
				t.Errorf("alg %v seed %d: %d open walls, want %d", alg, seed, open, m.W*m.H-1)
			}
			// Every cell reachable.
			dist, _ := m.Distances(m.Start)
			for y := range dist {
				for x := range dist[y] {
					if dist[y][x] < 0 {
						t.Errorf("alg %v seed %d: cell %d,%d unreachable", alg, seed, x, y)
					}
				}
			}
		}
	}
}

func TestGenerateDivisionSolvable(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m, err := Generate(11, 9, Division, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Solvable() {
			t.Errorf("division seed %d unsolvable", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(15, 15, DFS, 42)
	b, _ := Generate(15, 15, DFS, 42)
	if a.String() != b.String() {
		t.Error("same seed produced different mazes")
	}
	c, _ := Generate(15, 15, DFS, 43)
	if a.String() == c.String() {
		t.Error("different seeds produced identical mazes")
	}
}

func TestGenerateUnknownAlgorithm(t *testing.T) {
	if _, err := Generate(5, 5, Algorithm(99), 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDistancesAndShortestPath(t *testing.T) {
	m, _ := Generate(9, 9, DFS, 7)
	dist, err := m.Distances(m.Goal)
	if err != nil {
		t.Fatal(err)
	}
	path, err := m.ShortestPath()
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != m.Start || path[len(path)-1] != m.Goal {
		t.Errorf("path endpoints: %v ... %v", path[0], path[len(path)-1])
	}
	if len(path)-1 != dist[m.Start.Y][m.Start.X] {
		t.Errorf("path length %d != distance %d", len(path)-1, dist[m.Start.Y][m.Start.X])
	}
	// Consecutive path cells must be adjacent and connected.
	for i := 1; i < len(path); i++ {
		prev, cur := path[i-1], path[i]
		found := false
		for d := North; d <= West; d++ {
			if prev.Move(d) == cur && m.CanMove(prev, d) {
				found = true
			}
		}
		if !found {
			t.Fatalf("path step %v -> %v not a legal move", prev, cur)
		}
	}
}

func TestShortestPathUnsolvable(t *testing.T) {
	m, _ := New(3, 3)
	if _, err := m.ShortestPath(); err == nil {
		t.Error("unsolvable maze produced a path")
	}
	if _, err := m.Distances(Cell{-1, 0}); err == nil {
		t.Error("out-of-grid distance source accepted")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	orig, _ := Generate(7, 5, Prim, 3)
	orig.Start = Cell{2, 1}
	orig.Goal = Cell{6, 4}
	s := orig.String()
	parsed, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, s)
	}
	if parsed.String() != s {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", s, parsed.String())
	}
	if parsed.Start != orig.Start || parsed.Goal != orig.Goal {
		t.Errorf("markers lost: %v %v", parsed.Start, parsed.Goal)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"+---+\n|   |\n+---+", // no S/G markers
		"junk\nlines\nhere",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) accepted", c)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(seedRaw uint16, algRaw uint8) bool {
		alg := Algorithm(algRaw % 3)
		m, err := Generate(6, 6, alg, int64(seedRaw))
		if err != nil {
			return false
		}
		p, err := Parse(m.String())
		if err != nil {
			return false
		}
		return p.String() == m.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOpenDirections(t *testing.T) {
	m, _ := New(3, 3)
	_ = m.SetWall(Cell{1, 1}, North, false)
	_ = m.SetWall(Cell{1, 1}, East, false)
	dirs := m.OpenDirections(Cell{1, 1})
	if len(dirs) != 2 || dirs[0] != North || dirs[1] != East {
		t.Errorf("dirs = %v", dirs)
	}
	if got := m.OpenDirections(Cell{0, 0}); len(got) != 0 {
		t.Errorf("walled cell dirs = %v", got)
	}
}

func TestStringHasMarkers(t *testing.T) {
	m, _ := Generate(5, 5, DFS, 1)
	s := m.String()
	if !strings.Contains(s, " S ") || !strings.Contains(s, " G ") {
		t.Errorf("markers missing:\n%s", s)
	}
}
