// Package maze implements the maze world of the CSE101 robotics
// environment (Figure 1): grid mazes with per-cell walls, deterministic
// generation, ASCII serialization, and BFS analysis (distance fields,
// solvability, shortest paths). The robot simulator in soc/internal/robot
// runs on these mazes and the navigation algorithms in soc/internal/nav
// are evaluated over corpora of them.
package maze

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Dir is a cardinal direction.
type Dir int

// The four directions, clockwise from north.
const (
	North Dir = iota
	East
	South
	West
)

// String returns the direction name.
func (d Dir) String() string {
	switch d {
	case North:
		return "north"
	case East:
		return "east"
	case South:
		return "south"
	case West:
		return "west"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// Opposite returns the reverse direction.
func (d Dir) Opposite() Dir { return (d + 2) % 4 }

// Left returns the direction after a 90° left turn.
func (d Dir) Left() Dir { return (d + 3) % 4 }

// Right returns the direction after a 90° right turn.
func (d Dir) Right() Dir { return (d + 1) % 4 }

// DX and DY give the unit step of each direction (y grows south).
var (
	dx = [4]int{0, 1, 0, -1}
	dy = [4]int{-1, 0, 1, 0}
)

// Delta returns the (dx, dy) step for the direction.
func (d Dir) Delta() (int, int) { return dx[d], dy[d] }

// Cell is a grid coordinate.
type Cell struct{ X, Y int }

// Move returns the neighboring cell in the direction.
func (c Cell) Move(d Dir) Cell { return Cell{c.X + dx[d], c.Y + dy[d]} }

// ErrMaze reports invalid maze parameters or documents.
var ErrMaze = errors.New("maze: invalid")

// Maze is a rectangular grid with walls between cells. The boundary is
// always walled.
type Maze struct {
	W, H  int
	Start Cell
	Goal  Cell
	// walls[y][x] is a bitmask of walls present on cell (x,y):
	// bit d set ⇒ wall on side d.
	walls [][]uint8
}

// New returns a w×h maze with all internal walls present, start at the
// top-left and goal at the bottom-right.
func New(w, h int) (*Maze, error) {
	if w < 2 || h < 2 || w > 1024 || h > 1024 {
		return nil, fmt.Errorf("%w: size %dx%d", ErrMaze, w, h)
	}
	m := &Maze{W: w, H: h, Start: Cell{0, 0}, Goal: Cell{w - 1, h - 1}}
	m.walls = make([][]uint8, h)
	for y := range m.walls {
		m.walls[y] = make([]uint8, w)
		for x := range m.walls[y] {
			m.walls[y][x] = 0b1111
		}
	}
	return m, nil
}

// In reports whether the cell lies inside the grid.
func (m *Maze) In(c Cell) bool { return c.X >= 0 && c.X < m.W && c.Y >= 0 && c.Y < m.H }

// HasWall reports whether the cell has a wall on side d. Out-of-grid cells
// are treated as fully walled.
func (m *Maze) HasWall(c Cell, d Dir) bool {
	if !m.In(c) {
		return true
	}
	return m.walls[c.Y][c.X]&(1<<uint(d)) != 0
}

// SetWall adds or removes the wall on side d of c, keeping the adjacent
// cell's matching wall consistent. Boundary walls cannot be removed.
func (m *Maze) SetWall(c Cell, d Dir, present bool) error {
	if !m.In(c) {
		return fmt.Errorf("%w: cell %v outside %dx%d", ErrMaze, c, m.W, m.H)
	}
	n := c.Move(d)
	if !m.In(n) && !present {
		return fmt.Errorf("%w: cannot open boundary wall at %v %s", ErrMaze, c, d)
	}
	set := func(cc Cell, dd Dir, on bool) {
		if !m.In(cc) {
			return
		}
		if on {
			m.walls[cc.Y][cc.X] |= 1 << uint(dd)
		} else {
			m.walls[cc.Y][cc.X] &^= 1 << uint(dd)
		}
	}
	set(c, d, present)
	set(n, d.Opposite(), present)
	return nil
}

// CanMove reports whether a step from c in direction d is open.
func (m *Maze) CanMove(c Cell, d Dir) bool {
	return m.In(c) && m.In(c.Move(d)) && !m.HasWall(c, d)
}

// Algorithm selects a generation algorithm.
type Algorithm int

const (
	// DFS is a recursive-backtracker: long winding corridors.
	DFS Algorithm = iota
	// Prim is randomized Prim's algorithm: short branchy passages.
	Prim
	// Division is recursive division: rooms split by walls with doors.
	Division
)

// Generate returns a random perfect maze of the given size using the
// algorithm, deterministic in seed.
func Generate(w, h int, alg Algorithm, seed int64) (*Maze, error) {
	m, err := New(w, h)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	switch alg {
	case DFS:
		m.generateDFS(rng)
	case Prim:
		m.generatePrim(rng)
	case Division:
		m.generateDivision(rng)
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrMaze, alg)
	}
	return m, nil
}

func (m *Maze) generateDFS(rng *rand.Rand) {
	visited := make([]bool, m.W*m.H)
	idx := func(c Cell) int { return c.Y*m.W + c.X }
	stack := []Cell{m.Start}
	visited[idx(m.Start)] = true
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		dirs := rng.Perm(4)
		moved := false
		for _, di := range dirs {
			d := Dir(di)
			n := c.Move(d)
			if m.In(n) && !visited[idx(n)] {
				_ = m.SetWall(c, d, false)
				visited[idx(n)] = true
				stack = append(stack, n)
				moved = true
				break
			}
		}
		if !moved {
			stack = stack[:len(stack)-1]
		}
	}
}

func (m *Maze) generatePrim(rng *rand.Rand) {
	visited := make([]bool, m.W*m.H)
	idx := func(c Cell) int { return c.Y*m.W + c.X }
	type edge struct {
		c Cell
		d Dir
	}
	var frontier []edge
	addEdges := func(c Cell) {
		for d := North; d <= West; d++ {
			if m.In(c.Move(d)) {
				frontier = append(frontier, edge{c, d})
			}
		}
	}
	visited[idx(m.Start)] = true
	addEdges(m.Start)
	for len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		e := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		n := e.c.Move(e.d)
		if visited[idx(n)] {
			continue
		}
		_ = m.SetWall(e.c, e.d, false)
		visited[idx(n)] = true
		addEdges(n)
	}
}

func (m *Maze) generateDivision(rng *rand.Rand) {
	// Start from an empty room, then divide recursively.
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			c := Cell{x, y}
			for d := North; d <= West; d++ {
				if m.In(c.Move(d)) {
					_ = m.SetWall(c, d, false)
				}
			}
		}
	}
	var divide func(x0, y0, x1, y1 int)
	divide = func(x0, y0, x1, y1 int) {
		w, h := x1-x0, y1-y0
		if w < 2 && h < 2 {
			return
		}
		horizontal := h > w || (h == w && rng.Intn(2) == 0)
		if horizontal && h >= 2 {
			// Wall along row wy (between wy-1 and wy), door at dxp.
			wy := y0 + 1 + rng.Intn(h-1)
			door := x0 + rng.Intn(w)
			for x := x0; x < x1; x++ {
				if x != door {
					_ = m.SetWall(Cell{x, wy}, North, true)
				}
			}
			divide(x0, y0, x1, wy)
			divide(x0, wy, x1, y1)
		} else if w >= 2 {
			wx := x0 + 1 + rng.Intn(w-1)
			door := y0 + rng.Intn(h)
			for y := y0; y < y1; y++ {
				if y != door {
					_ = m.SetWall(Cell{wx, y}, West, true)
				}
			}
			divide(x0, y0, wx, y1)
			divide(wx, y0, x1, y1)
		}
	}
	divide(0, 0, m.W, m.H)
}

// Distances returns the BFS distance of every cell from the given cell;
// unreachable cells get -1.
func (m *Maze) Distances(from Cell) ([][]int, error) {
	if !m.In(from) {
		return nil, fmt.Errorf("%w: cell %v outside grid", ErrMaze, from)
	}
	dist := make([][]int, m.H)
	for y := range dist {
		dist[y] = make([]int, m.W)
		for x := range dist[y] {
			dist[y][x] = -1
		}
	}
	dist[from.Y][from.X] = 0
	queue := []Cell{from}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for d := North; d <= West; d++ {
			if !m.CanMove(c, d) {
				continue
			}
			n := c.Move(d)
			if dist[n.Y][n.X] == -1 {
				dist[n.Y][n.X] = dist[c.Y][c.X] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist, nil
}

// Solvable reports whether the goal is reachable from the start.
func (m *Maze) Solvable() bool {
	dist, err := m.Distances(m.Start)
	if err != nil {
		return false
	}
	return dist[m.Goal.Y][m.Goal.X] >= 0
}

// ShortestPath returns a minimal start→goal cell sequence (inclusive), or
// an error when the maze is unsolvable.
func (m *Maze) ShortestPath() ([]Cell, error) {
	dist, err := m.Distances(m.Goal)
	if err != nil {
		return nil, err
	}
	if dist[m.Start.Y][m.Start.X] < 0 {
		return nil, fmt.Errorf("%w: unsolvable", ErrMaze)
	}
	path := []Cell{m.Start}
	c := m.Start
	for c != m.Goal {
		for d := North; d <= West; d++ {
			if !m.CanMove(c, d) {
				continue
			}
			n := c.Move(d)
			if dist[n.Y][n.X] == dist[c.Y][c.X]-1 {
				c = n
				break
			}
		}
		path = append(path, c)
	}
	return path, nil
}

// String renders the maze as ASCII art: '+', '-', '|' walls, 'S' start,
// 'G' goal.
func (m *Maze) String() string {
	var b strings.Builder
	for x := 0; x < m.W; x++ {
		b.WriteString("+")
		if m.HasWall(Cell{x, 0}, North) {
			b.WriteString("---")
		} else {
			b.WriteString("   ")
		}
	}
	b.WriteString("+\n")
	for y := 0; y < m.H; y++ {
		// Cell row.
		for x := 0; x < m.W; x++ {
			c := Cell{x, y}
			if m.HasWall(c, West) {
				b.WriteString("|")
			} else {
				b.WriteString(" ")
			}
			switch c {
			case m.Start:
				b.WriteString(" S ")
			case m.Goal:
				b.WriteString(" G ")
			default:
				b.WriteString("   ")
			}
		}
		if m.HasWall(Cell{m.W - 1, y}, East) {
			b.WriteString("|\n")
		} else {
			b.WriteString(" \n")
		}
		// Southern wall row.
		for x := 0; x < m.W; x++ {
			b.WriteString("+")
			if m.HasWall(Cell{x, y}, South) {
				b.WriteString("---")
			} else {
				b.WriteString("   ")
			}
		}
		b.WriteString("+\n")
	}
	return b.String()
}

// Parse reads the ASCII format produced by String.
func Parse(s string) (*Maze, error) {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) < 3 || len(lines)%2 == 0 {
		return nil, fmt.Errorf("%w: %d lines", ErrMaze, len(lines))
	}
	h := (len(lines) - 1) / 2
	w := (len(lines[0]) - 1) / 4
	m, err := New(w, h)
	if err != nil {
		return nil, err
	}
	var haveStart, haveGoal bool
	for y := 0; y < h; y++ {
		cellLine := lines[2*y+1]
		southLine := lines[2*y+2]
		if len(cellLine) < 4*w+1 || len(southLine) < 4*w+1 {
			return nil, fmt.Errorf("%w: short line at row %d", ErrMaze, y)
		}
		for x := 0; x < w; x++ {
			c := Cell{x, y}
			if cellLine[4*x] == ' ' {
				if err := m.SetWall(c, West, false); err != nil {
					return nil, err
				}
			}
			if southLine[4*x+1] == ' ' {
				if err := m.SetWall(c, South, false); err != nil {
					return nil, err
				}
			}
			switch cellLine[4*x+2] {
			case 'S':
				m.Start = c
				haveStart = true
			case 'G':
				m.Goal = c
				haveGoal = true
			}
		}
	}
	if !haveStart || !haveGoal {
		return nil, fmt.Errorf("%w: missing S or G marker", ErrMaze)
	}
	return m, nil
}

// OpenDirections lists the open directions from c.
func (m *Maze) OpenDirections(c Cell) []Dir {
	var out []Dir
	for d := North; d <= West; d++ {
		if m.CanMove(c, d) {
			out = append(out, d)
		}
	}
	return out
}
