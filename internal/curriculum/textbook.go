package curriculum

import (
	"fmt"
	"strings"
)

// Chapter is one chapter of the course textbook (paper §VI: the fourth
// edition's fourteen chapters in three parts, one part per course).
type Chapter struct {
	Part   int // 1: CSE445, 2: CSE446, 3 would be the CSE101 appendices
	Number int
	Title  string
	// Packages lists this repository's packages implementing the
	// chapter's material.
	Packages []string
}

// TextbookChapters transcribes the paper's §VI chapter list with the
// module mapping of this reproduction.
var TextbookChapters = []Chapter{
	{1, 1, "Introduction to Distributed Service-Oriented Computing",
		[]string{"soc/internal/core", "soc/internal/host"}},
	{1, 2, "Distributed Computing with Multithreading",
		[]string{"soc/internal/parallel", "soc/internal/collatz", "soc/internal/perf", "soc/internal/vtime"}},
	{1, 3, "Essentials in Service-Oriented Software Development",
		[]string{"soc/internal/soap", "soc/internal/wsdl", "soc/internal/rest", "soc/internal/registry"}},
	{1, 4, "XML Data Representation and Processing",
		[]string{"soc/internal/xmlkit"}},
	{1, 5, "Web Application and State Management",
		[]string{"soc/internal/session", "soc/internal/webapp", "soc/internal/mortgageapp"}},
	{1, 6, "Dependability of Service-Oriented Software",
		[]string{"soc/internal/security", "soc/internal/reliability"}},
	{2, 7, "Advanced Services and Architecture-Driven Application Development",
		[]string{"soc/internal/workflow", "soc/internal/host"}},
	{2, 8, "Enterprise Software Development and Integration",
		[]string{"soc/internal/workflow", "soc/internal/eventbus"}},
	{2, 9, "Internet of Things and Robot as a Service",
		[]string{"soc/internal/robot", "soc/internal/maze", "soc/internal/nav"}},
	{2, 10, "Interfacing Service-Oriented Software with Databases",
		[]string{"soc/internal/xmlstore"}},
	{2, 11, "Big Data Systems and Ontology",
		[]string{"soc/internal/ontology"}},
	{2, 12, "Service-Oriented Application Architecture",
		[]string{"soc/internal/core", "soc/internal/registry", "soc/internal/crawler"}},
	{2, 13, "A Mini Walkthrough of Service-Oriented Software Development",
		[]string{"soc/internal/services", "soc/internal/mortgageapp"}},
	{2, 14, "Cloud Computing and Software as a Service",
		[]string{"soc/internal/cloud"}},
}

// FormatTextbook renders the chapter/module map (the §VI table of
// contents with this repository's coverage).
func FormatTextbook(chapters []Chapter) string {
	var b strings.Builder
	part := 0
	for _, c := range chapters {
		if c.Part != part {
			part = c.Part
			switch part {
			case 1:
				b.WriteString("Part I — Distributed Service-Oriented Software Development (CSE445)\n")
			case 2:
				b.WriteString("Part II — Advanced Service-Oriented Computing and System Integration (CSE446)\n")
			default:
				fmt.Fprintf(&b, "Part %d\n", part)
			}
		}
		fmt.Fprintf(&b, "  ch.%2d %-62s %s\n", c.Number, c.Title, strings.Join(c.Packages, ", "))
	}
	return b.String()
}

// TextbookCoverage reports chapters with no implementing packages.
func TextbookCoverage(chapters []Chapter) (covered, uncovered int) {
	for _, c := range chapters {
		if len(c.Packages) > 0 {
			covered++
		} else {
			uncovered++
		}
	}
	return covered, uncovered
}
