// Package curriculum holds the paper's evaluation data and analytics: the
// ACM CS topic coverage of Tables 1–3 (with Bloom levels and the modules
// of this repository that exercise each topic), the CSE445/598 enrollment
// history of Table 4, the student evaluation scores of Table 5, the
// ASCII rendition of Figure 5, and trend statistics.
package curriculum

// Semester identifies a term.
type Semester struct {
	Year int
	Term string // "Spring" or "Fall"
}

// String renders "2006 Fall".
func (s Semester) String() string { return itoa(s.Year) + " " + s.Term }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Enrollment is one row of Table 4.
type Enrollment struct {
	Semester Semester
	CSE445   int
	CSE598   int
	// PrintedTotal is the total column as printed in the paper. For
	// 2009 Fall the paper prints 45 although 33+10=43; we preserve the
	// printed value and expose Computed() separately.
	PrintedTotal int
}

// Computed returns CSE445+CSE598.
func (e Enrollment) Computed() int { return e.CSE445 + e.CSE598 }

// EnrollmentTable is Table 4 of the paper, verbatim.
var EnrollmentTable = []Enrollment{
	{Semester{2006, "Fall"}, 25, 14, 39},
	{Semester{2007, "Spring"}, 16, 16, 32},
	{Semester{2007, "Fall"}, 24, 21, 45},
	{Semester{2008, "Spring"}, 39, 8, 47},
	{Semester{2008, "Fall"}, 35, 23, 58},
	{Semester{2009, "Spring"}, 38, 13, 51},
	{Semester{2009, "Fall"}, 33, 10, 45},
	{Semester{2010, "Spring"}, 38, 22, 60},
	{Semester{2010, "Fall"}, 42, 34, 76},
	{Semester{2011, "Spring"}, 50, 20, 70},
	{Semester{2011, "Fall"}, 30, 52, 82},
	{Semester{2012, "Spring"}, 52, 15, 67},
	{Semester{2012, "Fall"}, 42, 35, 77},
	{Semester{2013, "Spring"}, 55, 38, 93},
	{Semester{2013, "Fall"}, 44, 90, 134},
	{Semester{2014, "Spring"}, 50, 62, 112},
}

// Evaluation is one row of Table 5 (course evaluation scores out of 5.0).
type Evaluation struct {
	Semester Semester
	Score445 float64
	Score598 float64
}

// EvaluationTable is Table 5 of the paper, verbatim.
var EvaluationTable = []Evaluation{
	{Semester{2006, "Fall"}, 3.69, 4.37},
	{Semester{2007, "Spring"}, 3.99, 4.13},
	{Semester{2007, "Fall"}, 4.03, 4.33},
	{Semester{2008, "Fall"}, 4.52, 4.81},
	{Semester{2009, "Spring"}, 4.22, 4.37},
	{Semester{2010, "Spring"}, 4.44, 4.46},
	{Semester{2010, "Fall"}, 4.56, 4.63},
	{Semester{2011, "Spring"}, 4.49, 4.52},
	{Semester{2011, "Fall"}, 4.44, 4.53},
	{Semester{2012, "Spring"}, 4.55, 4.66},
	{Semester{2012, "Fall"}, 4.36, 4.60},
	{Semester{2013, "Spring"}, 4.13, 4.50},
	{Semester{2013, "Fall"}, 4.17, 4.63},
}

// Bloom is a Bloom's-taxonomy learning objective level.
type Bloom string

// The levels used by the paper's tables.
const (
	Knowledge     Bloom = "K"
	Comprehension Bloom = "C"
	Application   Bloom = "A"
)

// Topic is one ACM CS curriculum topic row from Tables 1–3.
type Topic struct {
	Table   int // 1: programming, 2: algorithms, 3: cross-cutting
	Name    string
	Blooms  []Bloom
	Outcome string
	// Modules lists the soc packages that exercise the topic in this
	// reproduction — the coverage mapping checked by the Table 1–3
	// experiment.
	Modules []string
}

// ACMTopics transcribes Tables 1–3 with this repository's module mapping.
var ACMTopics = []Topic{
	{1, "Client Server", []Bloom{Comprehension},
		"notions of invoking and providing services (RPC, web services) as concurrent processes",
		[]string{"soc/internal/core", "soc/internal/soap", "soc/internal/rest", "soc/internal/host"}},
	{1, "Task/thread spawning", []Bloom{Application},
		"write correct programs with threads, synchronize, use dynamic thread creation",
		[]string{"soc/internal/parallel"}},
	{1, "Libraries", []Bloom{Application},
		"know one task-parallel library in detail (TBB/TPL analogues)",
		[]string{"soc/internal/parallel"}},
	{1, "Tasks and threads", []Bloom{Knowledge},
		"relationship between tasks/threads and cores; context-switch impact",
		[]string{"soc/internal/parallel", "soc/internal/vtime"}},
	{1, "Synchronization", []Bloom{Application},
		"shared-memory programs with critical regions, producer-consumer; monitors, semaphores",
		[]string{"soc/internal/parallel"}},
	{1, "Performance metrics", []Bloom{Comprehension},
		"speedup, efficiency, work, cost, Amdahl's law, scalability",
		[]string{"soc/internal/perf"}},
	{2, "Speedup", []Bloom{Comprehension},
		"use parallelism to solve the same problem faster or a larger problem in the same time",
		[]string{"soc/internal/collatz", "soc/internal/perf"}},
	{2, "Scalability in algorithms and architectures", []Bloom{Knowledge},
		"more processors does not always mean faster execution",
		[]string{"soc/internal/vtime", "soc/internal/perf"}},
	{2, "Dependencies", []Bloom{Knowledge, Application},
		"impact of dependencies; data dependencies in web caching applications",
		[]string{"soc/internal/session"}},
	{3, "Cloud", []Bloom{Knowledge},
		"on-demand, virtualized, service-oriented shared resources",
		[]string{"soc/internal/cloud"}},
	{3, "P2P", []Bloom{Knowledge},
		"server and client roles of nodes with distributed data",
		[]string{"soc/internal/registry", "soc/internal/crawler"}},
	{3, "Security in Distributed Systems", []Bloom{Knowledge},
		"distributed systems are more vulnerable; attack modes; privacy/security tension",
		[]string{"soc/internal/security", "soc/internal/reliability"}},
	{3, "Web services", []Bloom{Application},
		"develop web services and service clients to invoke services",
		[]string{"soc/internal/core", "soc/internal/host", "soc/internal/services"}},
}
