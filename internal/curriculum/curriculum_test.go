package curriculum

import (
	"math"
	"strings"
	"testing"
)

func TestTable4MatchesPaperHeadlines(t *testing.T) {
	if len(EnrollmentTable) != 16 {
		t.Fatalf("rows = %d, want 16", len(EnrollmentTable))
	}
	first := EnrollmentTable[0]
	if first.Semester.String() != "2006 Fall" || first.PrintedTotal != 39 {
		t.Errorf("first row = %+v", first)
	}
	// "The combined enrollment has increased from 39 in Fall 2006 to 134
	// in Fall 2013."
	var fall2013 Enrollment
	for _, r := range EnrollmentTable {
		if r.Semester.Year == 2013 && r.Semester.Term == "Fall" {
			fall2013 = r
		}
	}
	if fall2013.PrintedTotal != 134 || fall2013.CSE445 != 44 || fall2013.CSE598 != 90 {
		t.Errorf("Fall 2013 = %+v", fall2013)
	}
	last := EnrollmentTable[len(EnrollmentTable)-1]
	if last.Semester.String() != "2014 Spring" || last.PrintedTotal != 112 {
		t.Errorf("last row = %+v", last)
	}
}

func TestTable4InternalConsistency(t *testing.T) {
	// Every row's printed total equals 445+598 except the known
	// 2009 Fall misprint (33+10=43 printed as 45).
	for _, r := range EnrollmentTable {
		if r.Semester.Year == 2009 && r.Semester.Term == "Fall" {
			if r.PrintedTotal != 45 || r.Computed() != 43 {
				t.Errorf("2009 Fall transcription changed: %+v", r)
			}
			continue
		}
		if r.Computed() != r.PrintedTotal {
			t.Errorf("%s: %d+%d != %d", r.Semester, r.CSE445, r.CSE598, r.PrintedTotal)
		}
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	if len(EvaluationTable) != 13 {
		t.Fatalf("rows = %d, want 13", len(EvaluationTable))
	}
	if EvaluationTable[0].Score445 != 3.69 || EvaluationTable[0].Score598 != 4.37 {
		t.Errorf("first = %+v", EvaluationTable[0])
	}
	last := EvaluationTable[len(EvaluationTable)-1]
	if last.Semester.String() != "2013 Fall" || last.Score445 != 4.17 || last.Score598 != 4.63 {
		t.Errorf("last = %+v", last)
	}
	// All scores in the plausible [3.5, 5.0] band the paper shows.
	for _, r := range EvaluationTable {
		if r.Score445 < 3.5 || r.Score445 > 5 || r.Score598 < 3.5 || r.Score598 > 5 {
			t.Errorf("out-of-band score: %+v", r)
		}
	}
}

func TestGrowthFactor(t *testing.T) {
	g, err := GrowthFactor(EnrollmentTable)
	if err != nil {
		t.Fatal(err)
	}
	// 112/39 ≈ 2.87: enrollment roughly tripled.
	if g < 2.5 || g > 3.5 {
		t.Errorf("growth = %v", g)
	}
	if _, err := GrowthFactor(nil); err == nil {
		t.Error("empty rows accepted")
	}
}

func TestLinearTrendPositive(t *testing.T) {
	slope, err := LinearTrend(EnrollmentTable)
	if err != nil {
		t.Fatal(err)
	}
	if slope <= 0 {
		t.Errorf("slope = %v, want positive growth", slope)
	}
	// Roughly 39→112 over 15 steps ≈ 5/semester.
	if slope < 2 || slope > 10 {
		t.Errorf("slope = %v implausible", slope)
	}
	if _, err := LinearTrend(EnrollmentTable[:1]); err == nil {
		t.Error("single row accepted")
	}
}

func TestMeanScores(t *testing.T) {
	m445, m598, err := MeanScores(EvaluationTable)
	if err != nil {
		t.Fatal(err)
	}
	// 598 consistently rates above 445 in the paper.
	if m598 <= m445 {
		t.Errorf("mean598 %v <= mean445 %v", m598, m445)
	}
	if math.Abs(m445-4.27) > 0.1 || math.Abs(m598-4.50) > 0.1 {
		t.Errorf("means = %v, %v", m445, m598)
	}
	if _, _, err := MeanScores(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestFormatTables(t *testing.T) {
	t4 := FormatTable4(EnrollmentTable)
	for _, want := range []string{"2006 Fall", "134", "CSE445"} {
		if !strings.Contains(t4, want) {
			t.Errorf("table4 missing %q", want)
		}
	}
	t5 := FormatTable5(EvaluationTable)
	for _, want := range []string{"2013 Fall", "4.63"} {
		if !strings.Contains(t5, want) {
			t.Errorf("table5 missing %q", want)
		}
	}
}

func TestFigure5(t *testing.T) {
	chart, err := Figure5(EnrollmentTable)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"4", "5", "*", "134", "enrollment"} {
		if !strings.Contains(chart, want) {
			t.Errorf("figure 5 missing %q:\n%s", want, chart)
		}
	}
	lines := strings.Split(chart, "\n")
	if len(lines) < 14 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
	if _, err := Figure5(nil); err == nil {
		t.Error("empty rows accepted")
	}
}

func TestAsciiChartValidation(t *testing.T) {
	if _, err := AsciiChart(1, nil, map[rune][]int{'x': {1}}); err == nil {
		t.Error("height 1 accepted")
	}
	if _, err := AsciiChart(5, nil, nil); err == nil {
		t.Error("no series accepted")
	}
	if _, err := AsciiChart(5, nil, map[rune][]int{'a': {1, 2}, 'b': {1}}); err == nil {
		t.Error("ragged series accepted")
	}
	if _, err := AsciiChart(5, nil, map[rune][]int{'a': {-1}}); err == nil {
		t.Error("negative value accepted")
	}
	out, err := AsciiChart(5, []string{"2006"}, map[rune][]int{'a': {0}})
	if err != nil || out == "" {
		t.Errorf("all-zero chart: %v", err)
	}
}

func TestACMTopicsCoverage(t *testing.T) {
	if len(ACMTopics) != 13 {
		t.Errorf("topics = %d, want 13 (6+3+4 across Tables 1-3)", len(ACMTopics))
	}
	counts := map[int]int{}
	for _, topic := range ACMTopics {
		counts[topic.Table]++
		if topic.Name == "" || topic.Outcome == "" || len(topic.Blooms) == 0 {
			t.Errorf("incomplete topic %+v", topic)
		}
		if len(topic.Modules) == 0 {
			t.Errorf("topic %q uncovered", topic.Name)
		}
		for _, m := range topic.Modules {
			if !strings.HasPrefix(m, "soc/internal/") {
				t.Errorf("topic %q references non-repo module %q", topic.Name, m)
			}
		}
	}
	if counts[1] != 6 || counts[2] != 3 || counts[3] != 4 {
		t.Errorf("per-table counts = %v", counts)
	}
	report, uncovered := CoverageReport(ACMTopics)
	if uncovered != 0 {
		t.Errorf("%d uncovered topics", uncovered)
	}
	if !strings.Contains(report, "Web services") || !strings.Contains(report, "soc/internal/perf") {
		t.Errorf("report:\n%s", report)
	}
	_, uncovered = CoverageReport([]Topic{{Name: "x", Blooms: []Bloom{Knowledge}}})
	if uncovered != 1 {
		t.Error("uncovered topic not flagged")
	}
}
