package curriculum

import (
	"strings"
	"testing"
)

func TestTextbookStructureMatchesPaper(t *testing.T) {
	if len(TextbookChapters) != 14 {
		t.Fatalf("chapters = %d, want 14", len(TextbookChapters))
	}
	// Part I is chapters 1-6 (CSE445), Part II is 7-14 (CSE446).
	for i, c := range TextbookChapters {
		if c.Number != i+1 {
			t.Errorf("chapter %d numbered %d", i+1, c.Number)
		}
		wantPart := 1
		if c.Number >= 7 {
			wantPart = 2
		}
		if c.Part != wantPart {
			t.Errorf("chapter %d in part %d, want %d", c.Number, c.Part, wantPart)
		}
		if c.Title == "" {
			t.Errorf("chapter %d untitled", c.Number)
		}
	}
	// Spot-check titles from the paper's list.
	if TextbookChapters[3].Title != "XML Data Representation and Processing" {
		t.Errorf("ch4 = %q", TextbookChapters[3].Title)
	}
	if TextbookChapters[8].Title != "Internet of Things and Robot as a Service" {
		t.Errorf("ch9 = %q", TextbookChapters[8].Title)
	}
	if TextbookChapters[13].Title != "Cloud Computing and Software as a Service" {
		t.Errorf("ch14 = %q", TextbookChapters[13].Title)
	}
}

func TestTextbookFullyCovered(t *testing.T) {
	covered, uncovered := TextbookCoverage(TextbookChapters)
	if covered != 14 || uncovered != 0 {
		t.Errorf("coverage = %d/%d", covered, uncovered)
	}
	for _, c := range TextbookChapters {
		for _, p := range c.Packages {
			if !strings.HasPrefix(p, "soc/internal/") {
				t.Errorf("ch%d references %q", c.Number, p)
			}
		}
	}
}

func TestFormatTextbook(t *testing.T) {
	out := FormatTextbook(TextbookChapters)
	for _, want := range []string{"Part I", "Part II", "ch. 9", "Robot as a Service", "soc/internal/cloud"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
