package curriculum

import (
	"errors"
	"fmt"
	"strings"
)

// ErrData reports empty or malformed dataset input.
var ErrData = errors.New("curriculum: invalid data")

// GrowthFactor is last/first of the combined enrollment — the paper's
// headline "increased from 39 in Fall 2006 to 134 in Fall 2013".
func GrowthFactor(rows []Enrollment) (float64, error) {
	if len(rows) < 2 {
		return 0, fmt.Errorf("%w: need >= 2 rows", ErrData)
	}
	first := float64(rows[0].PrintedTotal)
	last := float64(rows[len(rows)-1].PrintedTotal)
	if first <= 0 {
		return 0, fmt.Errorf("%w: non-positive first total", ErrData)
	}
	return last / first, nil
}

// LinearTrend fits y = a + b·x by least squares over the combined totals
// (x = row index) and returns the slope b in students per semester.
func LinearTrend(rows []Enrollment) (slope float64, err error) {
	n := len(rows)
	if n < 2 {
		return 0, fmt.Errorf("%w: need >= 2 rows", ErrData)
	}
	var sx, sy, sxx, sxy float64
	for i, r := range rows {
		x, y := float64(i), float64(r.PrintedTotal)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	denom := fn*sxx - sx*sx
	if denom == 0 {
		return 0, fmt.Errorf("%w: degenerate x", ErrData)
	}
	return (fn*sxy - sx*sy) / denom, nil
}

// MeanScores averages Table 5 per course.
func MeanScores(rows []Evaluation) (mean445, mean598 float64, err error) {
	if len(rows) == 0 {
		return 0, 0, fmt.Errorf("%w: empty", ErrData)
	}
	for _, r := range rows {
		mean445 += r.Score445
		mean598 += r.Score598
	}
	n := float64(len(rows))
	return mean445 / n, mean598 / n, nil
}

// FormatTable4 renders Table 4 as the paper prints it.
func FormatTable4(rows []Enrollment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "semester", "CSE445", "CSE598", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %8d %8d\n", r.Semester, r.CSE445, r.CSE598, r.PrintedTotal)
	}
	return b.String()
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s\n", "semester", "445 score", "598 score")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f\n", r.Semester, r.Score445, r.Score598)
	}
	return b.String()
}

// AsciiChart renders series as a fixed-height ASCII line chart — the
// text rendition of Figure 5. Series are drawn with their marker runes
// in the given order (later series overwrite earlier at collisions).
func AsciiChart(height int, labels []string, series map[rune][]int) (string, error) {
	if height < 2 || len(series) == 0 {
		return "", fmt.Errorf("%w: height %d, %d series", ErrData, height, len(series))
	}
	n := 0
	maxV := 0
	for marker, vals := range series {
		if n == 0 {
			n = len(vals)
		} else if len(vals) != n {
			return "", fmt.Errorf("%w: ragged series %q", ErrData, marker)
		}
		for _, v := range vals {
			if v < 0 {
				return "", fmt.Errorf("%w: negative value", ErrData)
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if n == 0 {
		return "", fmt.Errorf("%w: empty series", ErrData)
	}
	if maxV == 0 {
		maxV = 1
	}
	grid := make([][]rune, height)
	for y := range grid {
		grid[y] = make([]rune, n)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	markers := make([]rune, 0, len(series))
	for m := range series {
		markers = append(markers, m)
	}
	// Deterministic order.
	for i := 1; i < len(markers); i++ {
		for j := i; j > 0 && markers[j] < markers[j-1]; j-- {
			markers[j], markers[j-1] = markers[j-1], markers[j]
		}
	}
	for _, m := range markers {
		for x, v := range series[m] {
			row := height - 1 - (v*(height-1))/maxV
			grid[row][x] = m
		}
	}
	var b strings.Builder
	for y, row := range grid {
		level := maxV * (height - 1 - y) / (height - 1)
		fmt.Fprintf(&b, "%4d |", level)
		for _, r := range row {
			b.WriteString("  ")
			b.WriteRune(r)
		}
		b.WriteString("\n")
	}
	b.WriteString("     +")
	b.WriteString(strings.Repeat("---", n))
	b.WriteString("\n      ")
	for i := range make([]struct{}, n) {
		if i < len(labels) && len(labels[i]) > 0 {
			b.WriteString(" ")
			b.WriteString(labels[i][len(labels[i])-2:])
		} else {
			b.WriteString("   ")
		}
	}
	b.WriteString("\n")
	return b.String(), nil
}

// Figure5 renders the paper's enrollment plot in ASCII: CSE445 ('4'),
// CSE598 ('5'), combined ('*').
func Figure5(rows []Enrollment) (string, error) {
	if len(rows) == 0 {
		return "", fmt.Errorf("%w: empty", ErrData)
	}
	var labels []string
	s445 := make([]int, len(rows))
	s598 := make([]int, len(rows))
	comb := make([]int, len(rows))
	for i, r := range rows {
		labels = append(labels, itoa(r.Semester.Year))
		s445[i] = r.CSE445
		s598[i] = r.CSE598
		comb[i] = r.PrintedTotal
	}
	chart, err := AsciiChart(14, labels, map[rune][]int{'4': s445, '5': s598, '*': comb})
	if err != nil {
		return "", err
	}
	return "CSE445/598 enrollment 2006-2014  (4=CSE445, 5=CSE598, *=combined)\n" + chart, nil
}

// CoverageReport maps each ACM topic to the repository modules exercising
// it, flagging uncovered topics.
func CoverageReport(topics []Topic) (string, int) {
	var b strings.Builder
	uncovered := 0
	fmt.Fprintf(&b, "%-45s %-6s %s\n", "topic", "bloom", "modules")
	for _, t := range topics {
		blooms := make([]string, len(t.Blooms))
		for i, bl := range t.Blooms {
			blooms[i] = string(bl)
		}
		mods := strings.Join(t.Modules, ", ")
		if len(t.Modules) == 0 {
			mods = "UNCOVERED"
			uncovered++
		}
		fmt.Fprintf(&b, "%-45s %-6s %s\n", truncateTo(t.Name, 45), strings.Join(blooms, ","), mods)
	}
	return b.String(), uncovered
}

func truncateTo(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
