// Package wsdl generates and parses WSDL 1.1 service descriptions for
// soc/internal/core services — the "standard interfaces" of the paper's
// SOA definition. Generation covers types (inline XSD), messages, portType
// operations, a document/literal SOAP binding, and the service endpoint;
// Parse recovers the operation signatures from such a document, which is
// what the service broker and crawler use to understand a discovered
// service.
package wsdl

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"

	"soc/internal/core"
	"soc/internal/xmlkit"
)

// Namespaces used in generated documents.
const (
	WSDLNS = "http://schemas.xmlsoap.org/wsdl/"
	SOAPNS = "http://schemas.xmlsoap.org/wsdl/soap/"
	XSDNS  = "http://www.w3.org/2001/XMLSchema"
)

// ErrWSDL reports a malformed or unsupported WSDL document.
var ErrWSDL = errors.New("wsdl: invalid document")

func xsdType(t core.Type) string {
	switch t {
	case core.Int:
		return "xsd:long"
	case core.Float:
		return "xsd:double"
	case core.Bool:
		return "xsd:boolean"
	default:
		return "xsd:string"
	}
}

func coreType(xsd string) core.Type {
	switch strings.TrimPrefix(xsd, "xsd:") {
	case "long", "int", "integer", "short":
		return core.Int
	case "double", "float", "decimal":
		return core.Float
	case "boolean":
		return core.Bool
	default:
		return core.String
	}
}

// Generate renders the WSDL 1.1 description of svc bound at endpoint.
func Generate(svc *core.Service, endpoint string) ([]byte, error) {
	if svc == nil {
		return nil, fmt.Errorf("%w: nil service", ErrWSDL)
	}
	if endpoint == "" {
		return nil, fmt.Errorf("%w: empty endpoint", ErrWSDL)
	}
	def := xmlkit.NewElement("wsdl:definitions")
	def.SetAttr("xmlns:wsdl", WSDLNS)
	def.SetAttr("xmlns:soap", SOAPNS)
	def.SetAttr("xmlns:xsd", XSDNS)
	def.SetAttr("xmlns:tns", svc.Namespace)
	def.SetAttr("targetNamespace", svc.Namespace)
	def.SetAttr("name", svc.Name)
	if svc.Doc != "" {
		d := def.AppendChild(xmlkit.NewElement("wsdl:documentation"))
		d.AppendChild(xmlkit.NewText(svc.Doc))
	}

	// types: one request element per operation, one response element.
	types := def.AppendChild(xmlkit.NewElement("wsdl:types"))
	schema := types.AppendChild(xmlkit.NewElement("xsd:schema"))
	schema.SetAttr("targetNamespace", svc.Namespace)
	for _, op := range svc.Operations() {
		schema.AppendChild(elementDecl(op.Name, op.Input))
		schema.AppendChild(elementDecl(op.Name+"Response", op.Output))
	}

	// messages.
	for _, op := range svc.Operations() {
		in := def.AppendChild(xmlkit.NewElement("wsdl:message"))
		in.SetAttr("name", op.Name+"Input")
		part := in.AppendChild(xmlkit.NewElement("wsdl:part"))
		part.SetAttr("name", "parameters")
		part.SetAttr("element", "tns:"+op.Name)
		out := def.AppendChild(xmlkit.NewElement("wsdl:message"))
		out.SetAttr("name", op.Name+"Output")
		part = out.AppendChild(xmlkit.NewElement("wsdl:part"))
		part.SetAttr("name", "parameters")
		part.SetAttr("element", "tns:"+op.Name+"Response")
	}

	// portType.
	pt := def.AppendChild(xmlkit.NewElement("wsdl:portType"))
	pt.SetAttr("name", svc.Name+"PortType")
	for _, op := range svc.Operations() {
		o := pt.AppendChild(xmlkit.NewElement("wsdl:operation"))
		o.SetAttr("name", op.Name)
		if op.Doc != "" {
			d := o.AppendChild(xmlkit.NewElement("wsdl:documentation"))
			d.AppendChild(xmlkit.NewText(op.Doc))
		}
		in := o.AppendChild(xmlkit.NewElement("wsdl:input"))
		in.SetAttr("message", "tns:"+op.Name+"Input")
		out := o.AppendChild(xmlkit.NewElement("wsdl:output"))
		out.SetAttr("message", "tns:"+op.Name+"Output")
	}

	// binding (document/literal SOAP over HTTP).
	bind := def.AppendChild(xmlkit.NewElement("wsdl:binding"))
	bind.SetAttr("name", svc.Name+"Binding")
	bind.SetAttr("type", "tns:"+svc.Name+"PortType")
	sb := bind.AppendChild(xmlkit.NewElement("soap:binding"))
	sb.SetAttr("style", "document")
	sb.SetAttr("transport", "http://schemas.xmlsoap.org/soap/http")
	for _, op := range svc.Operations() {
		o := bind.AppendChild(xmlkit.NewElement("wsdl:operation"))
		o.SetAttr("name", op.Name)
		so := o.AppendChild(xmlkit.NewElement("soap:operation"))
		so.SetAttr("soapAction", svc.Namespace+"#"+op.Name)
		in := o.AppendChild(xmlkit.NewElement("wsdl:input"))
		ib := in.AppendChild(xmlkit.NewElement("soap:body"))
		ib.SetAttr("use", "literal")
		out := o.AppendChild(xmlkit.NewElement("wsdl:output"))
		ob := out.AppendChild(xmlkit.NewElement("soap:body"))
		ob.SetAttr("use", "literal")
	}

	// service + port.
	servEl := def.AppendChild(xmlkit.NewElement("wsdl:service"))
	servEl.SetAttr("name", svc.Name)
	port := servEl.AppendChild(xmlkit.NewElement("wsdl:port"))
	port.SetAttr("name", svc.Name+"Port")
	port.SetAttr("binding", "tns:"+svc.Name+"Binding")
	addr := port.AppendChild(xmlkit.NewElement("soap:address"))
	addr.SetAttr("location", endpoint)

	doc := &xmlkit.Document{Root: def}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func elementDecl(name string, params []core.Param) *xmlkit.Node {
	el := xmlkit.NewElement("xsd:element")
	el.SetAttr("name", name)
	ct := el.AppendChild(xmlkit.NewElement("xsd:complexType"))
	seq := ct.AppendChild(xmlkit.NewElement("xsd:sequence"))
	for _, p := range params {
		pe := seq.AppendChild(xmlkit.NewElement("xsd:element"))
		pe.SetAttr("name", p.Name)
		pe.SetAttr("type", xsdType(p.Type))
		if p.Optional {
			pe.SetAttr("minOccurs", "0")
		}
	}
	return el
}

// Description is the information recovered from a parsed WSDL document.
type Description struct {
	Name      string
	Namespace string
	Doc       string
	Endpoint  string
	Ops       []OpDescription
}

// OpDescription is a parsed operation signature.
type OpDescription struct {
	Name   string
	Doc    string
	Input  []core.Param
	Output []core.Param
}

// Parse reads a WSDL document (one generated by this package, or any
// single-service document/literal description following the same shape)
// and recovers the service description.
func Parse(r io.Reader) (*Description, error) {
	doc, err := xmlkit.ParseDocument(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWSDL, err)
	}
	root := doc.Root
	if local(root.Name) != "definitions" {
		return nil, fmt.Errorf("%w: root is <%s>", ErrWSDL, root.Name)
	}
	d := &Description{}
	d.Name, _ = root.Attr("name")
	d.Namespace, _ = root.Attr("targetNamespace")

	// Element declarations by name.
	elements := map[string][]core.Param{}
	for _, types := range childrenByLocal(root, "types") {
		for _, schema := range childrenByLocal(types, "schema") {
			for _, el := range childrenByLocal(schema, "element") {
				name, _ := el.Attr("name")
				var params []core.Param
				for _, ct := range childrenByLocal(el, "complexType") {
					for _, seq := range childrenByLocal(ct, "sequence") {
						for _, pe := range childrenByLocal(seq, "element") {
							pn, _ := pe.Attr("name")
							pt, _ := pe.Attr("type")
							mo, _ := pe.Attr("minOccurs")
							params = append(params, core.Param{
								Name:     pn,
								Type:     coreType(stripPrefix(pt)),
								Optional: mo == "0",
							})
						}
					}
				}
				elements[name] = params
			}
		}
	}

	// Messages: name → element name.
	messages := map[string]string{}
	for _, msg := range childrenByLocal(root, "message") {
		name, _ := msg.Attr("name")
		for _, part := range childrenByLocal(msg, "part") {
			el, _ := part.Attr("element")
			messages[name] = stripPrefix(el)
		}
	}

	// portType operations.
	for _, pt := range childrenByLocal(root, "portType") {
		for _, op := range childrenByLocal(pt, "operation") {
			name, _ := op.Attr("name")
			od := OpDescription{Name: name}
			for _, docEl := range childrenByLocal(op, "documentation") {
				od.Doc = docEl.Text()
			}
			for _, in := range childrenByLocal(op, "input") {
				msg, _ := in.Attr("message")
				od.Input = elements[messages[stripPrefix(msg)]]
			}
			for _, out := range childrenByLocal(op, "output") {
				msg, _ := out.Attr("message")
				od.Output = elements[messages[stripPrefix(msg)]]
			}
			d.Ops = append(d.Ops, od)
		}
	}

	// service endpoint.
	for _, svc := range childrenByLocal(root, "service") {
		for _, port := range childrenByLocal(svc, "port") {
			for _, addr := range childrenByLocal(port, "address") {
				d.Endpoint, _ = addr.Attr("location")
			}
		}
	}
	for _, docEl := range childrenByLocal(root, "documentation") {
		d.Doc = docEl.Text()
	}
	if len(d.Ops) == 0 {
		return nil, fmt.Errorf("%w: no operations", ErrWSDL)
	}
	return d, nil
}

func childrenByLocal(n *xmlkit.Node, localName string) []*xmlkit.Node {
	var out []*xmlkit.Node
	for _, c := range n.Elements() {
		if local(c.Name) == localName {
			out = append(out, c)
		}
	}
	return out
}

func local(name string) string {
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func stripPrefix(name string) string { return local(name) }
