package wsdl

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"soc/internal/core"
)

func calcService(t *testing.T) *core.Service {
	t.Helper()
	svc, err := core.NewService("Calc", "http://soc.example/calc", "arithmetic service")
	if err != nil {
		t.Fatal(err)
	}
	h := func(context.Context, core.Values) (core.Values, error) { return core.Values{}, nil }
	svc.MustAddOperation(core.Operation{
		Name:    "Add",
		Doc:     "adds",
		Input:   []core.Param{{Name: "a", Type: core.Int}, {Name: "b", Type: core.Int}},
		Output:  []core.Param{{Name: "sum", Type: core.Int}},
		Handler: h,
	})
	svc.MustAddOperation(core.Operation{
		Name:    "Describe",
		Input:   []core.Param{{Name: "verbose", Type: core.Bool, Optional: true}},
		Output:  []core.Param{{Name: "text", Type: core.String}, {Name: "version", Type: core.Float}},
		Handler: h,
	})
	return svc
}

func TestGenerateStructure(t *testing.T) {
	doc, err := Generate(calcService(t), "http://127.0.0.1/services/Calc/soap")
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	s := string(doc)
	for _, want := range []string{
		"wsdl:definitions", "targetNamespace=\"http://soc.example/calc\"",
		"wsdl:portType", "wsdl:binding", "soap:address",
		"location=\"http://127.0.0.1/services/Calc/soap\"",
		"soapAction=\"http://soc.example/calc#Add\"",
		"xsd:long", "xsd:boolean", "xsd:double",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("WSDL missing %q", want)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(nil, "x"); err == nil {
		t.Error("nil service accepted")
	}
	if _, err := Generate(calcService(t), ""); err == nil {
		t.Error("empty endpoint accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	svc := calcService(t)
	doc, err := Generate(svc, "http://h/services/Calc/soap")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Parse(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Name != "Calc" || d.Namespace != "http://soc.example/calc" {
		t.Errorf("identity = %q %q", d.Name, d.Namespace)
	}
	if d.Endpoint != "http://h/services/Calc/soap" {
		t.Errorf("endpoint = %q", d.Endpoint)
	}
	if d.Doc != "arithmetic service" {
		t.Errorf("doc = %q", d.Doc)
	}
	if len(d.Ops) != 2 {
		t.Fatalf("ops = %d", len(d.Ops))
	}
	add := d.Ops[0]
	if add.Name != "Add" || add.Doc != "adds" {
		t.Errorf("op[0] = %+v", add)
	}
	if len(add.Input) != 2 || add.Input[0].Name != "a" || add.Input[0].Type != core.Int {
		t.Errorf("Add input = %+v", add.Input)
	}
	if len(add.Output) != 1 || add.Output[0].Name != "sum" || add.Output[0].Type != core.Int {
		t.Errorf("Add output = %+v", add.Output)
	}
	desc := d.Ops[1]
	if len(desc.Input) != 1 || !desc.Input[0].Optional {
		t.Errorf("optional lost: %+v", desc.Input)
	}
	if desc.Output[1].Type != core.Float {
		t.Errorf("float type lost: %+v", desc.Output)
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := []string{
		"not xml",
		"<other/>",
		`<wsdl:definitions xmlns:wsdl="` + WSDLNS + `" name="x"/>`,
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) succeeded", c)
		}
	}
}

func TestCoreTypeMapping(t *testing.T) {
	pairs := []struct {
		xsd  string
		want core.Type
	}{
		{"xsd:long", core.Int}, {"xsd:int", core.Int}, {"xsd:double", core.Float},
		{"xsd:boolean", core.Bool}, {"xsd:string", core.String}, {"xsd:anyURI", core.String},
	}
	for _, p := range pairs {
		if got := coreType(p.xsd); got != p.want {
			t.Errorf("coreType(%s) = %s, want %s", p.xsd, got, p.want)
		}
	}
}
