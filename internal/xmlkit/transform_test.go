package xmlkit

import (
	"errors"
	"strings"
	"testing"
)

const catalogXSL = `<stylesheet>
  <template match="catalog">
    <html>
      <h1>Service Repository</h1>
      <ul><apply-templates select="service"/></ul>
    </html>
  </template>
  <template match="service">
    <li class="svc"><value-of select="name"/> [<value-of select="@kind"/>] at <value-of select="endpoint"/></li>
  </template>
</stylesheet>`

func TestTransformCatalogToHTML(t *testing.T) {
	xsl, err := ParseStylesheet(catalogXSL)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocumentString(catalog)
	if err != nil {
		t.Fatal(err)
	}
	out, err := xsl.Transform(doc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Root.Name != "html" {
		t.Fatalf("root = %s", out.Root.Name)
	}
	rendered := out.String()
	for _, want := range []string{
		"Service Repository", "<ul>", `class="svc"`,
		"Encryption", "ShoppingCart", "http://venus/mortgage",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("output missing %q:\n%s", want, rendered)
		}
	}
	items, err := Query(out.Root, "//li")
	if err != nil || len(items) != 3 {
		t.Fatalf("li count = %d %v", len(items), err)
	}
	// Text content of each rendered item interleaves literals and
	// value-of results (whitespace-insensitive comparison).
	flat := strings.Join(strings.Fields(items[0].Text()), " ")
	if flat != "Encryption [rest] at http://venus/enc" {
		t.Errorf("li[0] text = %q", flat)
	}
	flat = strings.Join(strings.Fields(items[1].Text()), " ")
	if !strings.Contains(flat, "soap") || !strings.Contains(flat, "ShoppingCart") {
		t.Errorf("li[1] text = %q", flat)
	}
}

func TestTransformBuiltInRuleRecurses(t *testing.T) {
	// No template for the root: the built-in rule descends to children.
	xsl, err := ParseStylesheet(`<stylesheet>
	  <template match="service"><s><value-of select="name"/></s></template>
	</stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := ParseDocumentString(`<catalog><group><service><name>A</name></service></group></catalog>`)
	out, err := xsl.Transform(doc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Root.Name != "s" || out.Root.Text() != "A" {
		t.Errorf("out = %s", out.String())
	}
}

func TestTransformApplyAllChildren(t *testing.T) {
	// apply-templates without select processes every child element.
	xsl, err := ParseStylesheet(`<stylesheet>
	  <template match="root"><r><apply-templates/></r></template>
	  <template match="a"><x>1</x></template>
	  <template match="b"><y>2</y></template>
	</stylesheet>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := ParseDocumentString(`<root><a/><b/><a/></root>`)
	out, err := xsl.Transform(doc)
	if err != nil {
		t.Fatal(err)
	}
	xs, _ := Query(out.Root, "x")
	ys, _ := Query(out.Root, "y")
	if len(xs) != 2 || len(ys) != 1 {
		t.Errorf("out = %s", out.String())
	}
}

func TestTransformValueOfMissingSelectsNothing(t *testing.T) {
	xsl, _ := ParseStylesheet(`<stylesheet>
	  <template match="a"><out><value-of select="ghost"/></out></template>
	</stylesheet>`)
	doc, _ := ParseDocumentString(`<a><b>x</b></a>`)
	out, err := xsl.Transform(doc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Root.Text() != "" {
		t.Errorf("text = %q", out.Root.Text())
	}
}

func TestParseStylesheetErrors(t *testing.T) {
	cases := []string{
		"not xml",
		"<wrong/>",
		"<stylesheet/>",
		"<stylesheet><other/></stylesheet>",
		"<stylesheet><template/></stylesheet>",
		`<stylesheet><template match="a"/><template match="a"/></stylesheet>`,
	}
	for _, c := range cases {
		if _, err := ParseStylesheet(c); !errors.Is(err, ErrStylesheet) {
			t.Errorf("ParseStylesheet(%q) = %v", c, err)
		}
	}
}

func TestTransformErrors(t *testing.T) {
	xsl, _ := ParseStylesheet(`<stylesheet><template match="a"><out/></template></stylesheet>`)
	if _, err := xsl.Transform(nil); !errors.Is(err, ErrStylesheet) {
		t.Errorf("nil doc: %v", err)
	}
	// A document whose transformation yields nothing.
	doc, _ := ParseDocumentString(`<unmatched><deep/></unmatched>`)
	if _, err := xsl.Transform(doc); !errors.Is(err, ErrStylesheet) {
		t.Errorf("empty result: %v", err)
	}
	// Multiple root results.
	multi, _ := ParseStylesheet(`<stylesheet><template match="a"><x/><y/></template></stylesheet>`)
	docA, _ := ParseDocumentString(`<a/>`)
	if _, err := multi.Transform(docA); !errors.Is(err, ErrStylesheet) {
		t.Errorf("multi-root: %v", err)
	}
	// value-of without select.
	bad, _ := ParseStylesheet(`<stylesheet><template match="a"><out><value-of/></out></template></stylesheet>`)
	if _, err := bad.Transform(docA); !errors.Is(err, ErrStylesheet) {
		t.Errorf("value-of without select: %v", err)
	}
}

func TestTransformRecursionGuard(t *testing.T) {
	// A template that applies itself to its own element loops; the depth
	// guard must catch it. <a> containing <a> with a self-recursive rule:
	xsl, _ := ParseStylesheet(`<stylesheet>
	  <template match="a"><wrap><apply-templates select="."/></wrap></template>
	</stylesheet>`)
	doc, _ := ParseDocumentString(`<a/>`)
	if _, err := xsl.Transform(doc); !errors.Is(err, ErrStylesheet) {
		t.Errorf("recursion guard: %v", err)
	}
}
