package xmlkit

import (
	"fmt"
	"strings"
	"testing"
)

func benchDoc(services int) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < services; i++ {
		fmt.Fprintf(&b, `<service id="s%d" kind="rest"><name>Svc%d</name><endpoint>http://venus/s%d</endpoint></service>`, i, i, i)
	}
	b.WriteString("</catalog>")
	return b.String()
}

func BenchmarkSAXParse(b *testing.B) {
	doc := benchDoc(200)
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		c := NewCountingHandler()
		if err := ParseString(doc, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDOMParse(b *testing.B) {
	doc := benchDoc(200)
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseDocumentString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXPathQuery(b *testing.B) {
	doc, err := ParseDocumentString(benchDoc(200))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes, err := Query(doc.Root, "/catalog/service[@kind='rest']/name")
		if err != nil || len(nodes) != 200 {
			b.Fatalf("%d %v", len(nodes), err)
		}
	}
}

func BenchmarkSchemaValidate(b *testing.B) {
	s, err := NewSchema("catalog",
		ElementDecl{Name: "catalog", Children: []ChildDecl{{Name: "service", Min: 1, Max: -1}}},
		ElementDecl{Name: "service",
			Attrs:    []AttrDecl{{Name: "id", Required: true}, {Name: "kind", Required: true}},
			Children: []ChildDecl{{Name: "name", Min: 1, Max: 1}, {Name: "endpoint", Min: 1, Max: 1}}},
		ElementDecl{Name: "name"},
		ElementDecl{Name: "endpoint"},
	)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := ParseDocumentString(benchDoc(200))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(doc); err != nil {
			b.Fatal(err)
		}
	}
}
