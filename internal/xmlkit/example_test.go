package xmlkit_test

import (
	"fmt"

	"soc/internal/xmlkit"
)

// ExampleQuery shows XPath-subset selection over a parsed document.
func ExampleQuery() {
	doc, _ := xmlkit.ParseDocumentString(`<repo>
	  <service kind="rest"><name>Cart</name></service>
	  <service kind="soap"><name>Enc</name></service>
	</repo>`)
	nodes, _ := xmlkit.Query(doc.Root, "/repo/service[@kind='rest']/name")
	for _, n := range nodes {
		fmt.Println(n.Text())
	}
	// Output: Cart
}

// ExampleStylesheet_Transform shows the XSLT-subset processor turning a
// service catalog into an HTML list.
func ExampleStylesheet_Transform() {
	xsl, _ := xmlkit.ParseStylesheet(`<stylesheet>
	  <template match="repo"><ul><apply-templates select="service"/></ul></template>
	  <template match="service"><li><value-of select="name"/></li></template>
	</stylesheet>`)
	doc, _ := xmlkit.ParseDocumentString(`<repo>
	  <service><name>Cart</name></service>
	  <service><name>Enc</name></service>
	</repo>`)
	out, _ := xsl.Transform(doc)
	items, _ := xmlkit.Query(out.Root, "li")
	fmt.Println(len(items), items[0].Text(), items[1].Text())
	// Output: 2 Cart Enc
}

// ExampleSchema_Validate shows schema validation catching a bad document.
func ExampleSchema_Validate() {
	schema, _ := xmlkit.NewSchema("order",
		xmlkit.ElementDecl{Name: "order", Children: []xmlkit.ChildDecl{{Name: "qty", Min: 1, Max: 1}}},
		xmlkit.ElementDecl{Name: "qty", Text: xmlkit.TypeInt},
	)
	good, _ := xmlkit.ParseDocumentString(`<order><qty>3</qty></order>`)
	bad, _ := xmlkit.ParseDocumentString(`<order><qty>three</qty></order>`)
	fmt.Println(schema.Validate(good) == nil, schema.Validate(bad) == nil)
	// Output: true false
}
