package xmlkit

import (
	"bytes"
	"fmt"
	"sync"
	"unicode/utf8"
)

// Scanner is a pull-mode XML tokenizer over an in-memory document — the
// zero-allocation fast path under soc/internal/soap's envelope codec. It
// trades the generality of encoding/xml (DTD entity definitions, custom
// charsets, io.Reader streaming) for speed: names, attributes and text are
// returned as sub-slices of the input buffer, so a full envelope scan
// performs no heap allocation beyond what the caller copies out.
//
// The scanner verifies well-formedness as it goes: tags must nest and
// match, exactly one root element must be present, and only the five
// predefined entities plus numeric character references are accepted.
// It is not safe for concurrent use; acquire one per goroutine with
// AcquireScanner and return it with ReleaseScanner.
type Scanner struct {
	data []byte
	pos  int

	// Current token state, valid until the next call to Next.
	kind  TokenKind
	name  []byte // element name for Start/End tokens (raw, with prefix)
	text  []byte // raw text for Text tokens (entities still encoded)
	cdata bool   // current Text token came from a CDATA section
	attrs []RawAttr

	// openElems tracks open element names for end-tag matching; the
	// slices alias data so the stack itself is allocation-free after
	// warm-up.
	openElems []([]byte)
	roots     int
	// pendingEnd is set after a self-closing tag: the next call to Next
	// synthesizes the matching EndToken without consuming input.
	pendingEnd bool
}

// TokenKind discriminates scanner tokens.
type TokenKind int

const (
	// NoToken is returned with io-level completion: the document ended.
	NoToken TokenKind = iota
	// StartToken is an opening (or self-closing) tag.
	StartToken
	// EndToken is a closing tag (synthesized for self-closing tags).
	EndToken
	// TextToken is character data or a CDATA section.
	TextToken
)

// RawAttr is one attribute of a StartToken; Value holds the raw bytes
// between the quotes, entities still encoded (decode with AttrValue).
type RawAttr struct {
	Name  []byte
	Value []byte
}

var scannerPool = sync.Pool{New: func() any { return &Scanner{} }}

// AcquireScanner returns a pooled scanner positioned at the start of data.
func AcquireScanner(data []byte) *Scanner {
	s := scannerPool.Get().(*Scanner)
	s.Reset(data)
	return s
}

// ReleaseScanner resets and returns the scanner to the pool.
func ReleaseScanner(s *Scanner) {
	if s == nil {
		return
	}
	s.Reset(nil)
	scannerPool.Put(s)
}

// Reset repositions the scanner over a new document, dropping all state.
func (s *Scanner) Reset(data []byte) {
	s.data = data
	s.pos = 0
	s.kind = NoToken
	s.name = nil
	s.text = nil
	s.cdata = false
	s.attrs = s.attrs[:0]
	s.openElems = s.openElems[:0]
	s.roots = 0
	s.pendingEnd = false
	// Skip a UTF-8 byte-order mark if present.
	if len(s.data) >= 3 && s.data[0] == 0xEF && s.data[1] == 0xBB && s.data[2] == 0xBF {
		s.pos = 3
	}
}

// Kind returns the current token kind.
func (s *Scanner) Kind() TokenKind { return s.kind }

// Name returns the current element name (raw, including any prefix). The
// slice aliases the input buffer and is invalidated by Next.
func (s *Scanner) Name() []byte { return s.name }

// LocalName returns the element name with any namespace prefix stripped.
func (s *Scanner) LocalName() []byte {
	for i := len(s.name) - 1; i >= 0; i-- {
		if s.name[i] == ':' {
			return s.name[i+1:]
		}
	}
	return s.name
}

// Attrs returns the current start tag's attributes. The slices alias the
// input buffer and are invalidated by Next.
func (s *Scanner) Attrs() []RawAttr { return s.attrs }

// Attr returns the raw value of the named attribute (exact match against
// the raw attribute name) and whether it is present.
func (s *Scanner) Attr(name string) ([]byte, bool) {
	for _, a := range s.attrs {
		if string(a.Name) == name { // no alloc: compiler-optimized compare
			return a.Value, true
		}
	}
	return nil, false
}

// Depth returns the number of currently open elements.
func (s *Scanner) Depth() int { return len(s.openElems) }

// errf formats a positioned parse error.
func (s *Scanner) errf(format string, args ...any) error {
	return fmt.Errorf("%w: offset %d: %s", ErrParse, s.pos, fmt.Sprintf(format, args...))
}

// Next advances to the next token. It returns NoToken with a nil error at
// a well-formed end of input.
func (s *Scanner) Next() (TokenKind, error) {
	s.attrs = s.attrs[:0]
	if s.pendingEnd {
		s.pendingEnd = false
		s.kind = EndToken
		s.name = s.openElems[len(s.openElems)-1]
		s.openElems = s.openElems[:len(s.openElems)-1]
		return s.kind, nil
	}
	for s.pos < len(s.data) {
		if s.data[s.pos] != '<' {
			return s.scanText()
		}
		// Some kind of markup.
		if s.pos+1 >= len(s.data) {
			return NoToken, s.errf("truncated markup")
		}
		switch s.data[s.pos+1] {
		case '?':
			if err := s.skipUntil("?>"); err != nil {
				return NoToken, err
			}
		case '!':
			switch {
			case hasPrefixAt(s.data, s.pos, "<!--"):
				if err := s.skipUntil("-->"); err != nil {
					return NoToken, err
				}
			case hasPrefixAt(s.data, s.pos, "<![CDATA["):
				return s.scanCDATA()
			case hasPrefixAt(s.data, s.pos, "<!DOCTYPE"):
				if err := s.skipDoctype(); err != nil {
					return NoToken, err
				}
			default:
				return NoToken, s.errf("unsupported markup declaration")
			}
		case '/':
			return s.scanEndTag()
		default:
			return s.scanStartTag()
		}
	}
	if len(s.openElems) > 0 {
		return NoToken, s.errf("%d unclosed elements", len(s.openElems))
	}
	if s.roots == 0 {
		return NoToken, s.errf("no root element")
	}
	s.kind = NoToken
	return NoToken, nil
}

func hasPrefixAt(data []byte, pos int, prefix string) bool {
	return len(data)-pos >= len(prefix) && string(data[pos:pos+len(prefix)]) == prefix
}

func (s *Scanner) skipUntil(terminator string) error {
	idx := indexFrom(s.data, s.pos, terminator)
	if idx < 0 {
		return s.errf("unterminated %q section", terminator)
	}
	s.pos = idx + len(terminator)
	return nil
}

func indexFrom(data []byte, from int, sub string) int {
	if i := bytes.Index(data[from:], []byte(sub)); i >= 0 {
		return from + i
	}
	return -1
}

func (s *Scanner) skipDoctype() error {
	depth := 0
	for i := s.pos; i < len(s.data); i++ {
		switch s.data[i] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				s.pos = i + 1
				return nil
			}
		}
	}
	return s.errf("unterminated DOCTYPE")
}

// scanText captures raw character data up to the next '<'. Text outside
// the root element is tolerated here (SOAP decoding skips whitespace);
// well-formedness of the element structure is still enforced.
func (s *Scanner) scanText() (TokenKind, error) {
	start := s.pos
	for s.pos < len(s.data) && s.data[s.pos] != '<' {
		s.pos++
	}
	s.kind = TextToken
	s.text = s.data[start:s.pos]
	s.cdata = false
	return s.kind, nil
}

func (s *Scanner) scanCDATA() (TokenKind, error) {
	start := s.pos + len("<![CDATA[")
	end := indexFrom(s.data, start, "]]>")
	if end < 0 {
		return NoToken, s.errf("unterminated CDATA section")
	}
	s.kind = TextToken
	s.text = s.data[start:end]
	s.cdata = true
	s.pos = end + len("]]>")
	return s.kind, nil
}

// isNameByte reports bytes acceptable inside an element or attribute
// name. Multi-byte UTF-8 name characters pass through unvalidated — the
// scanner compares names, it does not police the XML name grammar.
func isNameByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_', c == '-', c == '.', c == ':', c >= 0x80:
		return true
	}
	return false
}

func (s *Scanner) scanName() ([]byte, error) {
	start := s.pos
	for s.pos < len(s.data) && isNameByte(s.data[s.pos]) {
		s.pos++
	}
	if s.pos == start {
		return nil, s.errf("expected name")
	}
	c := s.data[start]
	if c >= '0' && c <= '9' || c == '-' || c == '.' {
		return nil, s.errf("invalid name start %q", c)
	}
	return s.data[start:s.pos], nil
}

func (s *Scanner) skipSpace() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\t', '\r', '\n':
			s.pos++
		default:
			return
		}
	}
}

func (s *Scanner) scanStartTag() (TokenKind, error) {
	if s.roots > 0 && len(s.openElems) == 0 {
		return NoToken, s.errf("multiple root elements")
	}
	s.pos++ // consume '<'
	name, err := s.scanName()
	if err != nil {
		return NoToken, err
	}
	for {
		s.skipSpace()
		if s.pos >= len(s.data) {
			return NoToken, s.errf("unterminated start tag <%s", name)
		}
		switch s.data[s.pos] {
		case '>':
			s.pos++
			s.kind = StartToken
			s.name = name
			if len(s.openElems) == 0 {
				s.roots++
			}
			s.openElems = append(s.openElems, name)
			return s.kind, nil
		case '/':
			if s.pos+1 >= len(s.data) || s.data[s.pos+1] != '>' {
				return NoToken, s.errf("malformed self-closing tag <%s", name)
			}
			s.pos += 2
			s.kind = StartToken
			s.name = name
			if len(s.openElems) == 0 {
				s.roots++
			}
			s.openElems = append(s.openElems, name)
			s.pendingEnd = true
			return s.kind, nil
		default:
			if err := s.scanAttr(); err != nil {
				return NoToken, err
			}
		}
	}
}

func (s *Scanner) scanAttr() error {
	name, err := s.scanName()
	if err != nil {
		return err
	}
	s.skipSpace()
	if s.pos >= len(s.data) || s.data[s.pos] != '=' {
		return s.errf("attribute %s missing '='", name)
	}
	s.pos++
	s.skipSpace()
	if s.pos >= len(s.data) || (s.data[s.pos] != '"' && s.data[s.pos] != '\'') {
		return s.errf("attribute %s missing quoted value", name)
	}
	quote := s.data[s.pos]
	s.pos++
	start := s.pos
	for s.pos < len(s.data) && s.data[s.pos] != quote {
		if s.data[s.pos] == '<' {
			return s.errf("'<' in attribute value of %s", name)
		}
		s.pos++
	}
	if s.pos >= len(s.data) {
		return s.errf("unterminated attribute value of %s", name)
	}
	s.attrs = append(s.attrs, RawAttr{Name: name, Value: s.data[start:s.pos]})
	s.pos++ // closing quote
	return nil
}

func (s *Scanner) scanEndTag() (TokenKind, error) {
	s.pos += 2 // consume "</"
	name, err := s.scanName()
	if err != nil {
		return NoToken, err
	}
	s.skipSpace()
	if s.pos >= len(s.data) || s.data[s.pos] != '>' {
		return NoToken, s.errf("malformed end tag </%s", name)
	}
	s.pos++
	if len(s.openElems) == 0 {
		return NoToken, s.errf("unexpected </%s>", name)
	}
	open := s.openElems[len(s.openElems)-1]
	if string(open) != string(name) {
		return NoToken, s.errf("mismatched end tag </%s>, open <%s>", name, open)
	}
	s.openElems = s.openElems[:len(s.openElems)-1]
	s.kind = EndToken
	s.name = name
	return s.kind, nil
}

// RawText returns the current Text token's raw bytes, entities still
// encoded. The slice aliases the input buffer.
func (s *Scanner) RawText() []byte { return s.text }

// AppendTo appends the current Text token's decoded content to dst:
// entity references are resolved (except inside CDATA sections, which
// carry no markup) and line endings are normalized to "\n".
func (s *Scanner) AppendTo(dst []byte) ([]byte, error) {
	if s.cdata {
		return appendNormalized(dst, s.text), nil
	}
	return appendUnescaped(dst, s.text, true)
}

// appendNormalized copies raw with "\r\n" and "\r" folded to "\n".
func appendNormalized(dst, raw []byte) []byte {
	for i := 0; i < len(raw); i++ {
		if raw[i] == '\r' {
			dst = append(dst, '\n')
			if i+1 < len(raw) && raw[i+1] == '\n' {
				i++
			}
			continue
		}
		dst = append(dst, raw[i])
	}
	return dst
}

// IsWhitespace reports whether the current Text token is entirely XML
// whitespace (so a structural decoder can skip it without unescaping).
func (s *Scanner) IsWhitespace() bool {
	for _, c := range s.text {
		switch c {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// AppendText appends the current Text token's content to dst with
// entities decoded and XML line endings ("\r\n", "\r") normalized to
// "\n", returning the extended slice.
func AppendText(dst, raw []byte) ([]byte, error) {
	return appendUnescaped(dst, raw, true)
}

// AttrValue decodes an attribute's raw value (entities decoded; line
// ends normalized per attribute-value normalization to spaces is NOT
// applied — callers here compare URIs, which carry no newlines).
func AttrValue(raw []byte) (string, error) {
	if !needsUnescape(raw) {
		return string(raw), nil
	}
	out, err := appendUnescaped(nil, raw, false)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

func needsUnescape(raw []byte) bool {
	for _, c := range raw {
		if c == '&' || c == '\r' {
			return true
		}
	}
	return false
}

func appendUnescaped(dst, raw []byte, normalizeNewlines bool) ([]byte, error) {
	for i := 0; i < len(raw); {
		c := raw[i]
		switch c {
		case '&':
			end := i + 1
			for end < len(raw) && end-i < 12 && raw[end] != ';' {
				end++
			}
			if end >= len(raw) || raw[end] != ';' {
				return dst, fmt.Errorf("%w: unterminated entity", ErrParse)
			}
			ent := string(raw[i+1 : end])
			switch ent {
			case "amp":
				dst = append(dst, '&')
			case "lt":
				dst = append(dst, '<')
			case "gt":
				dst = append(dst, '>')
			case "quot":
				dst = append(dst, '"')
			case "apos":
				dst = append(dst, '\'')
			default:
				r, err := decodeCharRef(ent)
				if err != nil {
					return dst, err
				}
				dst = utf8.AppendRune(dst, r)
			}
			i = end + 1
		case '\r':
			if normalizeNewlines {
				dst = append(dst, '\n')
				if i+1 < len(raw) && raw[i+1] == '\n' {
					i++
				}
			} else {
				dst = append(dst, c)
			}
			i++
		default:
			dst = append(dst, c)
			i++
		}
	}
	return dst, nil
}

func decodeCharRef(ent string) (rune, error) {
	if len(ent) < 2 || ent[0] != '#' {
		return 0, fmt.Errorf("%w: unknown entity &%s;", ErrParse, ent)
	}
	body := ent[1:]
	base := 10
	if body[0] == 'x' || body[0] == 'X' {
		body = body[1:]
		base = 16
	}
	var n rune
	if body == "" {
		return 0, fmt.Errorf("%w: empty character reference", ErrParse)
	}
	for _, c := range body {
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = c - '0'
		case base == 16 && c >= 'a' && c <= 'f':
			d = c - 'a' + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = c - 'A' + 10
		default:
			return 0, fmt.Errorf("%w: bad character reference &%s;", ErrParse, ent)
		}
		n = n*rune(base) + d
		if n > utf8.MaxRune {
			return 0, fmt.Errorf("%w: character reference out of range", ErrParse)
		}
	}
	return n, nil
}

// EscapeElementText appends s to dst with the characters that cannot
// appear literally in element content escaped: '&', '<', '>' and '\r'
// (which XML parsers would otherwise normalize to '\n'). This writes the
// escaped form directly — no intermediate buffer — which is the soap
// encoder's single-pass fast path.
func EscapeElementText(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '\r':
			dst = append(dst, "&#xD;"...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// EscapeAttrValue appends s to dst escaped for a double-quoted attribute
// value: '&', '<', '"' plus the whitespace characters attribute-value
// normalization would fold ('\t', '\n', '\r').
func EscapeAttrValue(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '"':
			dst = append(dst, "&quot;"...)
		case '\t':
			dst = append(dst, "&#x9;"...)
		case '\n':
			dst = append(dst, "&#xA;"...)
		case '\r':
			dst = append(dst, "&#xD;"...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}
