package xmlkit

import (
	"errors"
	"fmt"
	"strings"
)

// ErrStylesheet reports an invalid stylesheet or transformation failure.
var ErrStylesheet = errors.New("xmlkit: invalid stylesheet")

// The XSLT-subset processor covering what CSE445 unit 4 teaches ("XML
// Stylesheet language"): template rules matched by element name, literal
// result elements, <value-of select="..."/> and
// <apply-templates select="..."/>, with the standard built-in rule
// (recurse into children) when no template matches.
//
// A stylesheet is itself an XML document:
//
//	<stylesheet>
//	  <template match="catalog">
//	    <ul><apply-templates select="service"/></ul>
//	  </template>
//	  <template match="service">
//	    <li><value-of select="name"/> (<value-of select="@id"/>)</li>
//	  </template>
//	</stylesheet>

// Stylesheet is a compiled set of template rules.
type Stylesheet struct {
	templates map[string]*Node // match name → template element
	maxDepth  int
}

// ParseStylesheet compiles a stylesheet document.
func ParseStylesheet(src string) (*Stylesheet, error) {
	doc, err := ParseDocumentString(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStylesheet, err)
	}
	if doc.Root.Name != "stylesheet" {
		return nil, fmt.Errorf("%w: root is <%s>, want <stylesheet>", ErrStylesheet, doc.Root.Name)
	}
	s := &Stylesheet{templates: map[string]*Node{}, maxDepth: 64}
	for _, t := range doc.Root.Elements() {
		if t.Name != "template" {
			return nil, fmt.Errorf("%w: unexpected <%s>", ErrStylesheet, t.Name)
		}
		match, ok := t.Attr("match")
		if !ok || match == "" {
			return nil, fmt.Errorf("%w: template without match", ErrStylesheet)
		}
		if _, dup := s.templates[match]; dup {
			return nil, fmt.Errorf("%w: duplicate template for %q", ErrStylesheet, match)
		}
		s.templates[match] = t
	}
	if len(s.templates) == 0 {
		return nil, fmt.Errorf("%w: no templates", ErrStylesheet)
	}
	return s, nil
}

// Transform applies the stylesheet to the document, returning the result
// document. The root result must be a single element.
func (s *Stylesheet) Transform(doc *Document) (*Document, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("%w: empty input document", ErrStylesheet)
	}
	nodes, err := s.apply(doc.Root, 0)
	if err != nil {
		return nil, err
	}
	var rootEl *Node
	for _, n := range nodes {
		if n.Type == ElementNode {
			if rootEl != nil {
				return nil, fmt.Errorf("%w: transformation produced multiple root elements", ErrStylesheet)
			}
			rootEl = n
		}
	}
	if rootEl == nil {
		return nil, fmt.Errorf("%w: transformation produced no element", ErrStylesheet)
	}
	return &Document{Root: rootEl}, nil
}

// apply processes one source node: a matching template instantiates its
// body; otherwise the built-in rule applies templates to child elements.
func (s *Stylesheet) apply(src *Node, depth int) ([]*Node, error) {
	if depth > s.maxDepth {
		return nil, fmt.Errorf("%w: recursion deeper than %d (template loop?)", ErrStylesheet, s.maxDepth)
	}
	if tmpl, ok := s.templates[src.Name]; ok {
		return s.instantiate(tmpl.Children, src, depth)
	}
	// Built-in rule: process child elements, concatenating results.
	var out []*Node
	for _, c := range src.Elements() {
		nodes, err := s.apply(c, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, nodes...)
	}
	return out, nil
}

// instantiate renders template body nodes against the current source node.
func (s *Stylesheet) instantiate(body []*Node, src *Node, depth int) ([]*Node, error) {
	var out []*Node
	for _, n := range body {
		switch {
		case n.Type == TextNode:
			if strings.TrimSpace(n.Data) != "" {
				out = append(out, NewText(n.Data))
			}
		case n.Type != ElementNode:
			// comments in templates are dropped
		case n.Name == "value-of":
			sel, _ := n.Attr("select")
			if sel == "" {
				return nil, fmt.Errorf("%w: value-of without select", ErrStylesheet)
			}
			vals, err := QueryStrings(src, sel)
			if err != nil {
				return nil, fmt.Errorf("%w: value-of select %q: %v", ErrStylesheet, sel, err)
			}
			if len(vals) > 0 {
				out = append(out, NewText(vals[0]))
			}
		case n.Name == "apply-templates":
			sel, _ := n.Attr("select")
			var targets []*Node
			if sel == "" {
				targets = src.Elements()
			} else {
				var err error
				targets, err = Query(src, sel)
				if err != nil {
					return nil, fmt.Errorf("%w: apply-templates select %q: %v", ErrStylesheet, sel, err)
				}
			}
			for _, t := range targets {
				nodes, err := s.apply(t, depth+1)
				if err != nil {
					return nil, err
				}
				out = append(out, nodes...)
			}
		default:
			// Literal result element: copy, recursing into its body.
			el := NewElement(n.Name)
			for _, a := range n.Attrs {
				el.SetAttr(a.Name, a.Value)
			}
			kids, err := s.instantiate(n.Children, src, depth+1)
			if err != nil {
				return nil, err
			}
			for _, k := range kids {
				el.AppendChild(k)
			}
			out = append(out, el)
		}
	}
	return out, nil
}
