package xmlkit

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// NodeType discriminates DOM node kinds.
type NodeType int

const (
	// ElementNode is an XML element.
	ElementNode NodeType = iota
	// TextNode is character data.
	TextNode
	// CommentNode is an XML comment.
	CommentNode
)

// Node is a node of the DOM tree.
type Node struct {
	Type     NodeType
	Name     string // element name (ElementNode only)
	Data     string // text or comment content
	Attrs    []Attr
	Parent   *Node
	Children []*Node
}

// NewElement returns a detached element node.
func NewElement(name string) *Node { return &Node{Type: ElementNode, Name: name} }

// NewText returns a detached text node.
func NewText(data string) *Node { return &Node{Type: TextNode, Data: data} }

// AppendChild attaches child as the last child of n and returns child.
func (n *Node) AppendChild(child *Node) *Node {
	child.Parent = n
	n.Children = append(n.Children, child)
	return child
}

// RemoveChild detaches child from n; it reports whether child was found.
func (n *Node) RemoveChild(child *Node) bool {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			child.Parent = nil
			return true
		}
	}
	return false
}

// SetAttr sets (or replaces) an attribute.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Text returns the concatenated text content of the subtree, trimmed.
func (n *Node) Text() string {
	var b strings.Builder
	var walk func(*Node)
	walk = func(x *Node) {
		if x.Type == TextNode {
			b.WriteString(x.Data)
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	return strings.TrimSpace(b.String())
}

// Elements returns the element children of n (skipping text/comments).
func (n *Node) Elements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the first element child with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Type == ElementNode && c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns Child(name).Text(), or "" if the child is absent.
func (n *Node) ChildText(name string) string {
	if c := n.Child(name); c != nil {
		return c.Text()
	}
	return ""
}

// Walk visits every node of the subtree in document order. Returning a
// non-nil error from fn aborts the walk.
func (n *Node) Walk(fn func(*Node) error) error {
	if err := fn(n); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := c.Walk(fn); err != nil {
			return err
		}
	}
	return nil
}

// Document is a parsed XML document.
type Document struct {
	Root *Node
}

// domBuilder builds a DOM via SAX events, demonstrating the layering the
// course teaches (DOM on top of streaming parse).
type domBuilder struct {
	BaseHandler
	doc   *Document
	stack []*Node
}

func (b *domBuilder) StartElement(name string, attrs []Attr) error {
	el := &Node{Type: ElementNode, Name: name, Attrs: attrs}
	if len(b.stack) == 0 {
		b.doc.Root = el
	} else {
		b.stack[len(b.stack)-1].AppendChild(el)
	}
	b.stack = append(b.stack, el)
	return nil
}

func (b *domBuilder) EndElement(string) error {
	b.stack = b.stack[:len(b.stack)-1]
	return nil
}

func (b *domBuilder) Characters(text string) error {
	if len(b.stack) == 0 {
		return nil // ignore whitespace outside the root
	}
	if strings.TrimSpace(text) == "" {
		return nil // drop ignorable whitespace
	}
	b.stack[len(b.stack)-1].AppendChild(&Node{Type: TextNode, Data: text})
	return nil
}

func (b *domBuilder) Comment(text string) error {
	if len(b.stack) == 0 {
		return nil
	}
	b.stack[len(b.stack)-1].AppendChild(&Node{Type: CommentNode, Data: text})
	return nil
}

// ParseDocument parses r into a Document.
func ParseDocument(r io.Reader) (*Document, error) {
	b := &domBuilder{doc: &Document{}}
	if err := Parse(r, b); err != nil {
		return nil, err
	}
	return b.doc, nil
}

// ParseDocumentString parses an in-memory document.
func ParseDocumentString(doc string) (*Document, error) {
	return ParseDocument(strings.NewReader(doc))
}

// Write serializes the document to w with 2-space indentation.
func (d *Document) Write(w io.Writer) error {
	if d.Root == nil {
		return fmt.Errorf("%w: empty document", ErrParse)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	return writeNode(w, d.Root, 0)
}

// String serializes the document to a string; it returns "" on error.
func (d *Document) String() string {
	var b strings.Builder
	if err := d.Write(&b); err != nil {
		return ""
	}
	return b.String()
}

func writeNode(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	switch n.Type {
	case TextNode:
		var esc strings.Builder
		if err := xml.EscapeText(&esc, []byte(n.Data)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s%s\n", indent, esc.String())
		return err
	case CommentNode:
		_, err := fmt.Fprintf(w, "%s<!--%s-->\n", indent, n.Data)
		return err
	}
	var attrs strings.Builder
	for _, a := range n.Attrs {
		var esc strings.Builder
		if err := xml.EscapeText(&esc, []byte(a.Value)); err != nil {
			return err
		}
		fmt.Fprintf(&attrs, " %s=%q", a.Name, esc.String())
	}
	if len(n.Children) == 0 {
		_, err := fmt.Fprintf(w, "%s<%s%s/>\n", indent, n.Name, attrs.String())
		return err
	}
	// Single text child renders inline: <a>text</a>.
	if len(n.Children) == 1 && n.Children[0].Type == TextNode {
		var esc strings.Builder
		if err := xml.EscapeText(&esc, []byte(n.Children[0].Data)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s<%s%s>%s</%s>\n", indent, n.Name, attrs.String(), esc.String(), n.Name)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s%s>\n", indent, n.Name, attrs.String()); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Name)
	return err
}

// ElementNames returns the sorted distinct element names in the document —
// a convenience for tests and schema inference.
func (d *Document) ElementNames() []string {
	seen := map[string]bool{}
	if d.Root != nil {
		_ = d.Root.Walk(func(n *Node) error {
			if n.Type == ElementNode {
				seen[n.Name] = true
			}
			return nil
		})
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
