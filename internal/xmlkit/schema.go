package xmlkit

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// ErrSchema reports a schema definition problem; validation failures are
// returned as *ValidationError.
var ErrSchema = errors.New("xmlkit: invalid schema")

// DataType enumerates the simple types the validator checks, mirroring the
// XSD simple types the course covers.
type DataType string

const (
	TypeString DataType = "string"
	TypeInt    DataType = "int"
	TypeFloat  DataType = "float"
	TypeBool   DataType = "bool"
	TypeDate   DataType = "date" // YYYY-MM-DD
)

// CheckValue validates a lexical value against the data type.
func CheckValue(t DataType, v string) error {
	switch t {
	case TypeString, "":
		return nil
	case TypeInt:
		if _, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err != nil {
			return fmt.Errorf("%q is not an int", v)
		}
	case TypeFloat:
		if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil {
			return fmt.Errorf("%q is not a float", v)
		}
	case TypeBool:
		s := strings.TrimSpace(v)
		if s != "true" && s != "false" && s != "0" && s != "1" {
			return fmt.Errorf("%q is not a bool", v)
		}
	case TypeDate:
		if _, err := time.Parse("2006-01-02", strings.TrimSpace(v)); err != nil {
			return fmt.Errorf("%q is not a date (want YYYY-MM-DD)", v)
		}
	default:
		return fmt.Errorf("unknown type %q", t)
	}
	return nil
}

// AttrDecl declares an attribute of an element.
type AttrDecl struct {
	Name     string
	Type     DataType
	Required bool
	// Pattern, when non-empty, is a regular expression the whole value
	// must match.
	Pattern string
	pattern *regexp.Regexp
}

// ChildDecl declares an allowed child element with occurrence bounds.
type ChildDecl struct {
	Name string
	// Min and Max bound the occurrence count; Max < 0 means unbounded.
	Min, Max int
}

// ElementDecl declares an element: its attributes, allowed children, and
// (for leaf elements) its text content type.
type ElementDecl struct {
	Name     string
	Attrs    []AttrDecl
	Children []ChildDecl
	// Text is the content type checked when the element has no child
	// declarations. Empty means unconstrained.
	Text DataType
	// TextPattern, when non-empty, constrains the text content.
	TextPattern string
	textPattern *regexp.Regexp
	// Ordered requires children to appear in declaration order.
	Ordered bool
}

// Schema is a set of element declarations plus the expected root.
type Schema struct {
	Root     string
	elements map[string]*ElementDecl
}

// NewSchema compiles element declarations into a validator. Every child
// referenced by a declaration must itself be declared.
func NewSchema(root string, decls ...ElementDecl) (*Schema, error) {
	if root == "" {
		return nil, fmt.Errorf("%w: empty root", ErrSchema)
	}
	s := &Schema{Root: root, elements: make(map[string]*ElementDecl, len(decls))}
	for i := range decls {
		d := decls[i]
		if d.Name == "" {
			return nil, fmt.Errorf("%w: unnamed element declaration", ErrSchema)
		}
		if _, dup := s.elements[d.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate declaration %q", ErrSchema, d.Name)
		}
		if d.TextPattern != "" {
			re, err := regexp.Compile("^(?:" + d.TextPattern + ")$")
			if err != nil {
				return nil, fmt.Errorf("%w: element %q text pattern: %v", ErrSchema, d.Name, err)
			}
			d.textPattern = re
		}
		for j := range d.Attrs {
			if d.Attrs[j].Pattern != "" {
				re, err := regexp.Compile("^(?:" + d.Attrs[j].Pattern + ")$")
				if err != nil {
					return nil, fmt.Errorf("%w: element %q attr %q pattern: %v", ErrSchema, d.Name, d.Attrs[j].Name, err)
				}
				d.Attrs[j].pattern = re
			}
		}
		s.elements[d.Name] = &d
	}
	if _, ok := s.elements[root]; !ok {
		return nil, fmt.Errorf("%w: root %q not declared", ErrSchema, root)
	}
	for _, d := range s.elements {
		for _, c := range d.Children {
			if _, ok := s.elements[c.Name]; !ok {
				return nil, fmt.Errorf("%w: %q references undeclared child %q", ErrSchema, d.Name, c.Name)
			}
			if c.Min < 0 || (c.Max >= 0 && c.Max < c.Min) {
				return nil, fmt.Errorf("%w: %q child %q has bounds [%d,%d]", ErrSchema, d.Name, c.Name, c.Min, c.Max)
			}
		}
	}
	return s, nil
}

// ValidationError collects every violation found in a document.
type ValidationError struct {
	Violations []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("xmlkit: %d schema violations: %s", len(e.Violations), strings.Join(e.Violations, "; "))
}

// Validate checks the document against the schema and returns a
// *ValidationError listing every violation, or nil when valid.
func (s *Schema) Validate(doc *Document) error {
	ve := &ValidationError{}
	if doc == nil || doc.Root == nil {
		ve.Violations = append(ve.Violations, "empty document")
		return ve
	}
	if doc.Root.Name != s.Root {
		ve.Violations = append(ve.Violations, fmt.Sprintf("root is <%s>, want <%s>", doc.Root.Name, s.Root))
		return ve
	}
	s.validateElement(doc.Root, "/"+doc.Root.Name, ve)
	if len(ve.Violations) > 0 {
		return ve
	}
	return nil
}

func (s *Schema) validateElement(n *Node, path string, ve *ValidationError) {
	decl, ok := s.elements[n.Name]
	if !ok {
		ve.Violations = append(ve.Violations, fmt.Sprintf("%s: undeclared element", path))
		return
	}
	// Attributes.
	declared := map[string]*AttrDecl{}
	for i := range decl.Attrs {
		declared[decl.Attrs[i].Name] = &decl.Attrs[i]
	}
	for _, a := range n.Attrs {
		ad, ok := declared[a.Name]
		if !ok {
			ve.Violations = append(ve.Violations, fmt.Sprintf("%s: undeclared attribute %q", path, a.Name))
			continue
		}
		if err := CheckValue(ad.Type, a.Value); err != nil {
			ve.Violations = append(ve.Violations, fmt.Sprintf("%s/@%s: %v", path, a.Name, err))
		}
		if ad.pattern != nil && !ad.pattern.MatchString(a.Value) {
			ve.Violations = append(ve.Violations, fmt.Sprintf("%s/@%s: %q does not match pattern %s", path, a.Name, a.Value, ad.Pattern))
		}
	}
	for name, ad := range declared {
		if !ad.Required {
			continue
		}
		if _, ok := n.Attr(name); !ok {
			ve.Violations = append(ve.Violations, fmt.Sprintf("%s: missing required attribute %q", path, name))
		}
	}
	// Children.
	kids := n.Elements()
	if len(decl.Children) == 0 {
		if len(kids) > 0 {
			ve.Violations = append(ve.Violations, fmt.Sprintf("%s: unexpected child <%s>", path, kids[0].Name))
		}
		text := n.Text()
		if decl.Text != "" {
			if err := CheckValue(decl.Text, text); err != nil {
				ve.Violations = append(ve.Violations, fmt.Sprintf("%s: %v", path, err))
			}
		}
		if decl.textPattern != nil && !decl.textPattern.MatchString(text) {
			ve.Violations = append(ve.Violations, fmt.Sprintf("%s: text %q does not match pattern %s", path, text, decl.TextPattern))
		}
		return
	}
	counts := map[string]int{}
	allowed := map[string]int{}
	order := map[string]int{}
	for i, c := range decl.Children {
		allowed[c.Name]++
		order[c.Name] = i
	}
	lastOrder := -1
	for _, k := range kids {
		if _, ok := allowed[k.Name]; !ok {
			ve.Violations = append(ve.Violations, fmt.Sprintf("%s: unexpected child <%s>", path, k.Name))
			continue
		}
		if decl.Ordered {
			if o := order[k.Name]; o < lastOrder {
				ve.Violations = append(ve.Violations, fmt.Sprintf("%s: child <%s> out of order", path, k.Name))
			} else {
				lastOrder = o
			}
		}
		counts[k.Name]++
		s.validateElement(k, path+"/"+k.Name, ve)
	}
	for _, c := range decl.Children {
		got := counts[c.Name]
		if got < c.Min {
			ve.Violations = append(ve.Violations, fmt.Sprintf("%s: child <%s> occurs %d times, min %d", path, c.Name, got, c.Min))
		}
		if c.Max >= 0 && got > c.Max {
			ve.Violations = append(ve.Violations, fmt.Sprintf("%s: child <%s> occurs %d times, max %d", path, c.Name, got, c.Max))
		}
	}
}
