// Package xmlkit is the XML data representation and processing substrate
// of CSE445 unit 4: SAX-style streaming parsing, a DOM tree model, an
// XPath-subset evaluator, a lightweight schema validator, and an
// XSLT-subset stylesheet processor. It is built
// on encoding/xml's tokenizer so the wire-level parsing is battle-tested
// while the three processing models (SAX, DOM, XPath) taught in the course
// are implemented here.
package xmlkit

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrParse reports malformed XML.
var ErrParse = errors.New("xmlkit: parse error")

// Attr is a name/value attribute pair.
type Attr struct {
	Name  string
	Value string
}

// Handler receives SAX events. Any method may return an error to abort
// the parse.
type Handler interface {
	// StartDocument is called once before any other event.
	StartDocument() error
	// EndDocument is called once after all other events.
	EndDocument() error
	// StartElement is called for each opening tag.
	StartElement(name string, attrs []Attr) error
	// EndElement is called for each closing tag.
	EndElement(name string) error
	// Characters is called for text content (may be called multiple
	// times per text node).
	Characters(text string) error
	// ProcessingInstruction is called for <?target data?>.
	ProcessingInstruction(target, data string) error
	// Comment is called for <!-- ... -->.
	Comment(text string) error
}

// BaseHandler is a no-op Handler; embed it to implement only the events
// you care about.
type BaseHandler struct{}

func (BaseHandler) StartDocument() error                            { return nil }
func (BaseHandler) EndDocument() error                              { return nil }
func (BaseHandler) StartElement(string, []Attr) error               { return nil }
func (BaseHandler) EndElement(string) error                         { return nil }
func (BaseHandler) Characters(string) error                         { return nil }
func (BaseHandler) ProcessingInstruction(target, data string) error { return nil }
func (BaseHandler) Comment(string) error                            { return nil }

var _ Handler = BaseHandler{}

// Parse streams the document from r, pushing events into h. It verifies
// well-formedness (every start tag closed, single root element).
func Parse(r io.Reader, h Handler) error {
	if h == nil {
		return fmt.Errorf("%w: nil handler", ErrParse)
	}
	dec := xml.NewDecoder(r)
	if err := h.StartDocument(); err != nil {
		return err
	}
	depth := 0
	roots := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrParse, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 {
				roots++
				if roots > 1 {
					return fmt.Errorf("%w: multiple root elements", ErrParse)
				}
			}
			depth++
			attrs := make([]Attr, len(t.Attr))
			for i, a := range t.Attr {
				attrs[i] = Attr{Name: a.Name.Local, Value: a.Value}
			}
			if err := h.StartElement(t.Name.Local, attrs); err != nil {
				return err
			}
		case xml.EndElement:
			depth--
			if err := h.EndElement(t.Name.Local); err != nil {
				return err
			}
		case xml.CharData:
			if err := h.Characters(string(t)); err != nil {
				return err
			}
		case xml.ProcInst:
			if err := h.ProcessingInstruction(t.Target, string(t.Inst)); err != nil {
				return err
			}
		case xml.Comment:
			if err := h.Comment(string(t)); err != nil {
				return err
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("%w: %d unclosed elements", ErrParse, depth)
	}
	if roots == 0 {
		return fmt.Errorf("%w: no root element", ErrParse)
	}
	return h.EndDocument()
}

// ParseString is Parse over an in-memory document.
func ParseString(doc string, h Handler) error {
	return Parse(strings.NewReader(doc), h)
}

// CountingHandler tallies SAX events — useful both as an example handler
// and for cheap document statistics without building a tree.
type CountingHandler struct {
	BaseHandler
	Elements map[string]int
	Chars    int
	MaxDepth int
	depth    int
}

// NewCountingHandler returns a ready-to-use CountingHandler.
func NewCountingHandler() *CountingHandler {
	return &CountingHandler{Elements: make(map[string]int)}
}

func (c *CountingHandler) StartElement(name string, _ []Attr) error {
	c.Elements[name]++
	c.depth++
	if c.depth > c.MaxDepth {
		c.MaxDepth = c.depth
	}
	return nil
}

func (c *CountingHandler) EndElement(string) error {
	c.depth--
	return nil
}

func (c *CountingHandler) Characters(text string) error {
	c.Chars += len(strings.TrimSpace(text))
	return nil
}
