package xmlkit

import (
	"errors"
	"strings"
	"testing"
)

const catalog = `<?xml version="1.0"?>
<catalog owner="asu">
  <!-- sample repository listing -->
  <service id="s1" kind="rest">
    <name>Encryption</name>
    <endpoint>http://venus/enc</endpoint>
  </service>
  <service id="s2" kind="soap">
    <name>ShoppingCart</name>
    <endpoint>http://venus/cart</endpoint>
  </service>
  <service id="s3" kind="rest">
    <name>Mortgage</name>
    <endpoint>http://venus/mortgage</endpoint>
  </service>
</catalog>`

type recordingHandler struct {
	BaseHandler
	events []string
}

func (r *recordingHandler) StartDocument() error {
	r.events = append(r.events, "start-doc")
	return nil
}
func (r *recordingHandler) EndDocument() error { r.events = append(r.events, "end-doc"); return nil }
func (r *recordingHandler) StartElement(name string, attrs []Attr) error {
	r.events = append(r.events, "<"+name+">")
	return nil
}
func (r *recordingHandler) EndElement(name string) error {
	r.events = append(r.events, "</"+name+">")
	return nil
}
func (r *recordingHandler) Comment(text string) error {
	r.events = append(r.events, "<!--")
	return nil
}

func TestSAXEventOrder(t *testing.T) {
	h := &recordingHandler{}
	if err := ParseString(`<a><b/><c>x</c></a>`, h); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []string{"start-doc", "<a>", "<b>", "</b>", "<c>", "</c>", "</a>", "end-doc"}
	if strings.Join(h.events, " ") != strings.Join(want, " ") {
		t.Errorf("events = %v, want %v", h.events, want)
	}
}

func TestSAXComment(t *testing.T) {
	h := &recordingHandler{}
	if err := ParseString(`<a><!-- hi --></a>`, h); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	found := false
	for _, e := range h.events {
		if e == "<!--" {
			found = true
		}
	}
	if !found {
		t.Error("comment event not delivered")
	}
}

func TestSAXMalformed(t *testing.T) {
	for _, doc := range []string{`<a><b></a>`, `<a>`, ``, `<a/><b/>`} {
		if err := ParseString(doc, &recordingHandler{}); err == nil {
			t.Errorf("malformed %q accepted", doc)
		}
	}
}

func TestSAXNilHandler(t *testing.T) {
	if err := ParseString("<a/>", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestSAXHandlerAbort(t *testing.T) {
	h := &abortHandler{}
	err := ParseString(`<a><b/></a>`, h)
	if err == nil || !strings.Contains(err.Error(), "abort") {
		t.Errorf("err = %v", err)
	}
}

type abortHandler struct{ BaseHandler }

func (abortHandler) StartElement(name string, _ []Attr) error {
	if name == "b" {
		return errAbort
	}
	return nil
}

var errAbort = errors.New("handler abort")

func TestCountingHandler(t *testing.T) {
	c := NewCountingHandler()
	if err := ParseString(catalog, c); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Elements["service"] != 3 {
		t.Errorf("service count = %d, want 3", c.Elements["service"])
	}
	if c.Elements["name"] != 3 || c.Elements["endpoint"] != 3 {
		t.Errorf("counts = %v", c.Elements)
	}
	if c.MaxDepth != 3 {
		t.Errorf("max depth = %d, want 3", c.MaxDepth)
	}
	if c.Chars == 0 {
		t.Error("no characters counted")
	}
}

func TestDOMParseAndNavigate(t *testing.T) {
	doc, err := ParseDocumentString(catalog)
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	if doc.Root.Name != "catalog" {
		t.Fatalf("root = %q", doc.Root.Name)
	}
	if v, ok := doc.Root.Attr("owner"); !ok || v != "asu" {
		t.Errorf("owner attr = %q,%v", v, ok)
	}
	services := doc.Root.Elements()
	if len(services) != 3 {
		t.Fatalf("children = %d, want 3", len(services))
	}
	if services[1].ChildText("name") != "ShoppingCart" {
		t.Errorf("second service name = %q", services[1].ChildText("name"))
	}
	if services[0].Child("nonexistent") != nil {
		t.Error("Child found nonexistent element")
	}
	if services[0].ChildText("nonexistent") != "" {
		t.Error("ChildText nonzero for missing child")
	}
}

func TestDOMMutation(t *testing.T) {
	root := NewElement("repo")
	svc := root.AppendChild(NewElement("service"))
	svc.SetAttr("id", "x1")
	svc.SetAttr("id", "x2") // replace
	svc.AppendChild(NewText("hello"))
	if v, _ := svc.Attr("id"); v != "x2" {
		t.Errorf("attr = %q", v)
	}
	if svc.Text() != "hello" {
		t.Errorf("text = %q", svc.Text())
	}
	if svc.Parent != root {
		t.Error("parent not set")
	}
	if !root.RemoveChild(svc) {
		t.Error("RemoveChild failed")
	}
	if root.RemoveChild(svc) {
		t.Error("RemoveChild succeeded twice")
	}
	if len(root.Children) != 0 || svc.Parent != nil {
		t.Error("detach incomplete")
	}
}

func TestDOMRoundTrip(t *testing.T) {
	doc, err := ParseDocumentString(catalog)
	if err != nil {
		t.Fatal(err)
	}
	out := doc.String()
	if out == "" {
		t.Fatal("serialize failed")
	}
	doc2, err := ParseDocumentString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(doc2.Root.Elements()) != 3 {
		t.Errorf("round trip lost services: %d", len(doc2.Root.Elements()))
	}
	if doc2.Root.Elements()[0].ChildText("name") != "Encryption" {
		t.Error("round trip lost text")
	}
}

func TestDOMSerializeEscapes(t *testing.T) {
	root := NewElement("a")
	root.SetAttr("q", `x<y&"z"`)
	root.AppendChild(NewText("1 < 2 & 3"))
	doc := &Document{Root: root}
	out := doc.String()
	if strings.Contains(out, "1 < 2") {
		t.Errorf("unescaped text in %q", out)
	}
	doc2, err := ParseDocumentString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if doc2.Root.Text() != "1 < 2 & 3" {
		t.Errorf("text = %q", doc2.Root.Text())
	}
	if v, _ := doc2.Root.Attr("q"); v != `x<y&"z"` {
		t.Errorf("attr = %q", v)
	}
}

func TestElementNames(t *testing.T) {
	doc, _ := ParseDocumentString(catalog)
	names := doc.ElementNames()
	want := []string{"catalog", "endpoint", "name", "service"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("names = %v", names)
	}
}

func TestXPathChildPaths(t *testing.T) {
	doc, _ := ParseDocumentString(catalog)
	nodes, err := Query(doc.Root, "/catalog/service")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(nodes) != 3 {
		t.Errorf("matches = %d, want 3", len(nodes))
	}
	nodes, err = Query(doc.Root, "service/name")
	if err != nil || len(nodes) != 3 {
		t.Errorf("relative query = %d,%v", len(nodes), err)
	}
}

func TestXPathDescendant(t *testing.T) {
	doc, _ := ParseDocumentString(catalog)
	names, err := QueryStrings(doc.Root, "//name")
	if err != nil {
		t.Fatalf("QueryStrings: %v", err)
	}
	if len(names) != 3 || names[0] != "Encryption" || names[2] != "Mortgage" {
		t.Errorf("names = %v", names)
	}
}

func TestXPathPredicates(t *testing.T) {
	doc, _ := ParseDocumentString(catalog)
	cases := []struct {
		expr string
		want int
	}{
		{"/catalog/service[@kind='rest']", 2},
		{"/catalog/service[@kind='soap']", 1},
		{"/catalog/service[@kind]", 3},
		{"/catalog/service[@missing]", 0},
		{"/catalog/service[2]", 1},
		{"/catalog/service[last()]", 1},
		{"/catalog/service[9]", 0},
		{"/catalog/service[name='Mortgage']", 1},
		{"/catalog/service[name]", 3},
		{"/catalog/service[@kind='rest'][2]", 1},
		{"//service[name='ShoppingCart']", 1},
		{"/catalog/*", 3},
	}
	for _, c := range cases {
		nodes, err := Query(doc.Root, c.expr)
		if err != nil {
			t.Errorf("Query(%q): %v", c.expr, err)
			continue
		}
		if len(nodes) != c.want {
			t.Errorf("Query(%q) = %d matches, want %d", c.expr, len(nodes), c.want)
		}
	}
}

func TestXPathPositionalSemantics(t *testing.T) {
	doc, _ := ParseDocumentString(catalog)
	n, err := QueryOne(doc.Root, "/catalog/service[2]")
	if err != nil || n == nil {
		t.Fatalf("QueryOne: %v %v", n, err)
	}
	if n.ChildText("name") != "ShoppingCart" {
		t.Errorf("service[2] = %q", n.ChildText("name"))
	}
	last, err := QueryOne(doc.Root, "/catalog/service[last()]")
	if err != nil || last == nil || last.ChildText("name") != "Mortgage" {
		t.Errorf("service[last()] wrong")
	}
}

func TestXPathAttributeAndText(t *testing.T) {
	doc, _ := ParseDocumentString(catalog)
	ids, err := QueryStrings(doc.Root, "/catalog/service/@id")
	if err != nil {
		t.Fatalf("QueryStrings: %v", err)
	}
	if strings.Join(ids, ",") != "s1,s2,s3" {
		t.Errorf("ids = %v", ids)
	}
	texts, err := QueryStrings(doc.Root, "/catalog/service[1]/name/text()")
	if err != nil || len(texts) != 1 || texts[0] != "Encryption" {
		t.Errorf("text() = %v, %v", texts, err)
	}
}

func TestXPathParentAndSelf(t *testing.T) {
	doc, _ := ParseDocumentString(catalog)
	svc, _ := QueryOne(doc.Root, "//service[@id='s2']")
	up, err := Query(svc, "..")
	if err != nil || len(up) != 1 || up[0].Name != "catalog" {
		t.Errorf("parent = %v, %v", up, err)
	}
	self, err := Query(svc, ".")
	if err != nil || len(self) != 1 || self[0] != svc {
		t.Errorf("self = %v, %v", self, err)
	}
}

func TestXPathErrors(t *testing.T) {
	doc, _ := ParseDocumentString(catalog)
	for _, expr := range []string{"", "/", "a[", "a[0]", "a[@k=v]", "//"} {
		if _, err := Query(doc.Root, expr); err == nil {
			t.Errorf("Query(%q) accepted", expr)
		}
	}
	if _, err := Query(doc.Root, "/catalog/service/@id"); err == nil {
		t.Error("Query on @attr expression accepted (should need QueryStrings)")
	}
	if _, err := Query(nil, "/a"); err == nil {
		t.Error("nil context accepted")
	}
}

func TestXPathAbsoluteFromNestedNode(t *testing.T) {
	doc, _ := ParseDocumentString(catalog)
	name, _ := QueryOne(doc.Root, "//service[1]/name")
	// Absolute query from a nested context must search from the root.
	all, err := Query(name, "//service")
	if err != nil || len(all) != 3 {
		t.Errorf("absolute from nested = %d, %v", len(all), err)
	}
}

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("catalog",
		ElementDecl{Name: "catalog", Attrs: []AttrDecl{{Name: "owner", Required: true}},
			Children: []ChildDecl{{Name: "service", Min: 1, Max: -1}}},
		ElementDecl{Name: "service",
			Attrs: []AttrDecl{
				{Name: "id", Required: true, Pattern: `s\d+`},
				{Name: "kind", Required: true, Pattern: `rest|soap`},
			},
			Children: []ChildDecl{{Name: "name", Min: 1, Max: 1}, {Name: "endpoint", Min: 1, Max: 1}},
			Ordered:  true},
		ElementDecl{Name: "name"},
		ElementDecl{Name: "endpoint", TextPattern: `http://.+`},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaValidDocument(t *testing.T) {
	s := testSchema(t)
	doc, _ := ParseDocumentString(catalog)
	if err := s.Validate(doc); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestSchemaViolations(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		doc  string
		want string
	}{
		{`<wrong/>`, "root is"},
		{`<catalog><service id="s1" kind="rest"><name>n</name><endpoint>http://x</endpoint></service></catalog>`, "missing required attribute"},
		{`<catalog owner="a"/>`, "occurs 0 times"},
		{`<catalog owner="a"><service id="bad" kind="rest"><name>n</name><endpoint>http://x</endpoint></service></catalog>`, "does not match pattern"},
		{`<catalog owner="a"><service id="s1" kind="ftp"><name>n</name><endpoint>http://x</endpoint></service></catalog>`, "does not match pattern"},
		{`<catalog owner="a"><service id="s1" kind="rest"><endpoint>http://x</endpoint><name>n</name></service></catalog>`, "out of order"},
		{`<catalog owner="a"><service id="s1" kind="rest"><name>n</name><endpoint>ftp://x</endpoint></service></catalog>`, "does not match pattern"},
		{`<catalog owner="a"><service id="s1" kind="rest"><name>n</name><endpoint>http://x</endpoint><extra/></service></catalog>`, "unexpected child"},
	}
	for _, c := range cases {
		doc, err := ParseDocumentString(c.doc)
		if err != nil {
			t.Fatalf("parse %q: %v", c.doc, err)
		}
		verr := s.Validate(doc)
		if verr == nil {
			t.Errorf("doc %q validated, want violation %q", c.doc, c.want)
			continue
		}
		if !strings.Contains(verr.Error(), c.want) {
			t.Errorf("doc %q: violations %v do not mention %q", c.doc, verr, c.want)
		}
	}
}

func TestSchemaTypedText(t *testing.T) {
	s, err := NewSchema("n",
		ElementDecl{Name: "n", Children: []ChildDecl{{Name: "age", Min: 1, Max: 1}, {Name: "dob", Min: 0, Max: 1}}},
		ElementDecl{Name: "age", Text: TypeInt},
		ElementDecl{Name: "dob", Text: TypeDate},
	)
	if err != nil {
		t.Fatal(err)
	}
	good, _ := ParseDocumentString(`<n><age>42</age><dob>2006-01-02</dob></n>`)
	if err := s.Validate(good); err != nil {
		t.Errorf("good doc rejected: %v", err)
	}
	bad, _ := ParseDocumentString(`<n><age>forty</age><dob>01/02/2006</dob></n>`)
	verr := s.Validate(bad)
	if verr == nil {
		t.Fatal("typed violations missed")
	}
	if got := verr.(*ValidationError); len(got.Violations) != 2 {
		t.Errorf("violations = %v, want 2", got.Violations)
	}
}

func TestSchemaDefinitionErrors(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty root accepted")
	}
	if _, err := NewSchema("a", ElementDecl{Name: "b"}); err == nil {
		t.Error("undeclared root accepted")
	}
	if _, err := NewSchema("a", ElementDecl{Name: "a", Children: []ChildDecl{{Name: "ghost"}}}); err == nil {
		t.Error("undeclared child accepted")
	}
	if _, err := NewSchema("a", ElementDecl{Name: "a"}, ElementDecl{Name: "a"}); err == nil {
		t.Error("duplicate declaration accepted")
	}
	if _, err := NewSchema("a", ElementDecl{Name: "a", TextPattern: "("}); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := NewSchema("a", ElementDecl{Name: "a"}, ElementDecl{Name: "b"}); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestCheckValue(t *testing.T) {
	good := []struct {
		t DataType
		v string
	}{
		{TypeString, "anything"}, {TypeInt, " 42 "}, {TypeFloat, "3.14"},
		{TypeBool, "true"}, {TypeBool, "0"}, {TypeDate, "2014-02-07"},
	}
	for _, c := range good {
		if err := CheckValue(c.t, c.v); err != nil {
			t.Errorf("CheckValue(%s, %q) = %v", c.t, c.v, err)
		}
	}
	bad := []struct {
		t DataType
		v string
	}{
		{TypeInt, "4.2"}, {TypeFloat, "pi"}, {TypeBool, "yes"},
		{TypeDate, "Feb 7 2014"}, {"weird", "x"},
	}
	for _, c := range bad {
		if err := CheckValue(c.t, c.v); err == nil {
			t.Errorf("CheckValue(%s, %q) accepted", c.t, c.v)
		}
	}
}
