package xmlkit

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// genTree builds a random DOM tree from a seed: bounded depth and fanout,
// element names from a fixed alphabet, text from printable runes.
func genTree(rng *rand.Rand, depth int) *Node {
	names := []string{"svc", "op", "param", "doc", "item"}
	n := NewElement(names[rng.Intn(len(names))])
	if rng.Intn(2) == 0 {
		n.SetAttr("id", genText(rng))
	}
	if depth <= 0 {
		if rng.Intn(2) == 0 {
			n.AppendChild(NewText(genText(rng)))
		}
		return n
	}
	kids := rng.Intn(3)
	if kids == 0 && rng.Intn(2) == 0 {
		n.AppendChild(NewText(genText(rng)))
	}
	for i := 0; i < kids; i++ {
		n.AppendChild(genTree(rng, depth-1))
	}
	return n
}

func genText(rng *rand.Rand) string {
	alphabet := "abcXYZ019 <>&\"'."
	n := rng.Intn(12) + 1
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	s := strings.TrimSpace(b.String())
	if s == "" {
		return "x"
	}
	return s
}

// shape extracts the structural identity of a tree: names, attrs, and
// text per node in document order (ignoring whitespace normalization).
func shape(n *Node) []string {
	var out []string
	_ = n.Walk(func(x *Node) error {
		switch x.Type {
		case ElementNode:
			entry := "<" + x.Name
			for _, a := range x.Attrs {
				entry += " " + a.Name + "=" + a.Value
			}
			out = append(out, entry+">")
		case TextNode:
			if s := strings.TrimSpace(x.Data); s != "" {
				out = append(out, "text:"+s)
			}
		}
		return nil
	})
	return out
}

func TestDOMSerializeParsePreservesShape(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := genTree(rng, 3)
		doc := &Document{Root: root}
		s := doc.String()
		if s == "" {
			return false
		}
		parsed, err := ParseDocumentString(s)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(shape(root), shape(parsed.Root))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestXPathDescendantSupersetOfChildProperty(t *testing.T) {
	// Property: //name matches at least the nodes /root/.../name does,
	// and every Query result is an element with the queried name.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := genTree(rng, 3)
		doc := &Document{Root: root}
		reparsed, err := ParseDocumentString(doc.String())
		if err != nil {
			return false
		}
		for _, name := range []string{"svc", "op", "param"} {
			desc, err := Query(reparsed.Root, "//"+name)
			if err != nil {
				return false
			}
			for _, d := range desc {
				if d.Type != ElementNode || d.Name != name {
					return false
				}
			}
			children, err := Query(reparsed.Root, name)
			if err != nil {
				return false
			}
			if len(children) > len(desc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSAXCountMatchesDOMProperty(t *testing.T) {
	// Property: the SAX element counts equal the DOM element counts for
	// the same document.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := genTree(rng, 3)
		doc := &Document{Root: root}
		s := doc.String()
		counter := NewCountingHandler()
		if err := ParseString(s, counter); err != nil {
			return false
		}
		parsed, err := ParseDocumentString(s)
		if err != nil {
			return false
		}
		domCounts := map[string]int{}
		_ = parsed.Root.Walk(func(x *Node) error {
			if x.Type == ElementNode {
				domCounts[x.Name]++
			}
			return nil
		})
		return reflect.DeepEqual(map[string]int(counter.Elements), domCounts)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
