package xmlkit

import (
	"strings"
	"testing"
)

// collectTokens drains the scanner into a compact trace for comparison.
func collectTokens(t *testing.T, doc string) ([]string, error) {
	t.Helper()
	s := AcquireScanner([]byte(doc))
	defer ReleaseScanner(s)
	var out []string
	for {
		kind, err := s.Next()
		if err != nil {
			return out, err
		}
		switch kind {
		case NoToken:
			return out, nil
		case StartToken:
			entry := "<" + string(s.Name())
			for _, a := range s.Attrs() {
				v, err := AttrValue(a.Value)
				if err != nil {
					return out, err
				}
				entry += " " + string(a.Name) + "=" + v
			}
			out = append(out, entry)
		case EndToken:
			out = append(out, "</"+string(s.Name()))
		case TextToken:
			if s.IsWhitespace() {
				continue
			}
			txt, err := s.AppendTo(nil)
			if err != nil {
				return out, err
			}
			out = append(out, "#"+string(txt))
		}
	}
}

func TestScannerBasic(t *testing.T) {
	doc := `<?xml version="1.0"?><a x="1" y="a&amp;b"><!-- c --><b>hi &lt;there&gt;</b><c/></a>`
	got, err := collectTokens(t, doc)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<a x=1 y=a&b", "<b", "#hi <there>", "</b", "<c", "</c", "</a"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestScannerCDATAAndCharRefs(t *testing.T) {
	got, err := collectTokens(t, `<a><![CDATA[x < y & z]]><b>&#65;&#x42;</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<a", "#x < y & z", "<b", "#AB", "</b", "</a"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestScannerNewlineNormalization(t *testing.T) {
	got, err := collectTokens(t, "<a>x\r\ny\rz</a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != "#x\ny\nz" {
		t.Errorf("tokens = %q", got)
	}
}

func TestScannerDoctypeSkipped(t *testing.T) {
	got, err := collectTokens(t, `<!DOCTYPE note [<!ELEMENT note (#PCDATA)>]><note>v</note>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "<note" {
		t.Errorf("tokens = %v", got)
	}
}

func TestScannerMalformed(t *testing.T) {
	cases := map[string]string{
		"no root":            `not xml`,
		"unclosed":           `<a><b></b>`,
		"mismatched":         `<a></b>`,
		"multiple roots":     `<a/><b/>`,
		"stray end":          `</a>`,
		"bad entity":         `<a>&bogus;</a>`,
		"unterminated ent":   `<a>&amp</a>`,
		"unterminated attr":  `<a x="1></a>`,
		"attr missing value": `<a x></a>`,
		"lt in attr":         `<a x="<"></a>`,
		"unterminated cdata": `<a><![CDATA[x</a>`,
		"unterminated pi":    `<?xml <a/>`,
		"truncated tag":      `<a`,
		"bad name start":     `<1tag/>`,
		"empty document":     ``,
	}
	for name, doc := range cases {
		if _, err := collectTokens(t, doc); err == nil {
			t.Errorf("%s: scan(%q) succeeded", name, doc)
		}
	}
}

func TestScannerSelfClosingRoot(t *testing.T) {
	got, err := collectTokens(t, `<only attr='v'/>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<only attr=v", "</only"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v", got)
	}
}

func TestScannerLocalName(t *testing.T) {
	s := AcquireScanner([]byte(`<soap:Envelope xmlns:soap="u"><soap:Body/></soap:Envelope>`))
	defer ReleaseScanner(s)
	var locals []string
	for {
		kind, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if kind == NoToken {
			break
		}
		if kind == StartToken {
			locals = append(locals, string(s.LocalName()))
		}
	}
	if strings.Join(locals, ",") != "Envelope,Body" {
		t.Errorf("locals = %v", locals)
	}
}

func TestEscapeElementTextRoundTrip(t *testing.T) {
	for _, val := range []string{
		"plain", "a&b<c>d", `"quoted" & 'apos'`, "tab\tnl\ncr\rend", "uni ☃ 漢",
	} {
		doc := append([]byte("<v>"), EscapeElementText(nil, val)...)
		doc = append(doc, "</v>"...)
		s := AcquireScanner(doc)
		var got []byte
		for {
			kind, err := s.Next()
			if err != nil {
				t.Fatalf("%q: %v", val, err)
			}
			if kind == NoToken {
				break
			}
			if kind == TextToken {
				got, err = s.AppendTo(got)
				if err != nil {
					t.Fatalf("%q: %v", val, err)
				}
			}
		}
		ReleaseScanner(s)
		want := strings.ReplaceAll(strings.ReplaceAll(val, "\r\n", "\n"), "\r", "\n")
		if string(got) != want && val != "tab\tnl\ncr\rend" {
			t.Errorf("round trip %q = %q", val, got)
		}
		// \r survives because the encoder escapes it as &#xD;.
		if val == "tab\tnl\ncr\rend" && string(got) != val {
			t.Errorf("cr round trip = %q", got)
		}
	}
}

func TestScannerZeroAlloc(t *testing.T) {
	doc := []byte(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body><Echo xmlns="http://soc.example/echo"><text>hello world</text></Echo></soap:Body></soap:Envelope>`)
	s := AcquireScanner(doc)
	defer ReleaseScanner(s)
	// Warm up internal slices (attr and element stacks grow once).
	for {
		kind, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if kind == NoToken {
			break
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset(doc)
		for {
			kind, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if kind == NoToken {
				return
			}
		}
	})
	if allocs > 0 {
		t.Errorf("scan allocates %.1f per document, want 0", allocs)
	}
}
