package xmlkit

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrXPath reports an unsupported or malformed path expression.
var ErrXPath = errors.New("xmlkit: invalid xpath")

// The XPath subset implemented here covers the forms CSE445 exercises use:
//
//	/a/b/c          absolute child path
//	//c             descendant-or-self search
//	a/b             relative path
//	*               any element
//	.               self
//	..              parent
//	a[3]            positional predicate (1-based)
//	a[last()]       last element
//	a[@id]          attribute-existence predicate
//	a[@id='x']      attribute-value predicate
//	a[b='x']        child-text predicate
//	a/@id           attribute value selection (string result)
//	a/text()        text selection (string result)

type step struct {
	axis       string // "child" or "descendant"
	name       string // element name, "*", ".", "..", "@attr", "text()"
	predicates []predicate
}

type predicate struct {
	kind  string // "pos", "last", "attr", "attrEq", "child", "childEq"
	name  string
	value string
	pos   int
}

func parsePath(expr string) (steps []step, absolute bool, err error) {
	if expr == "" {
		return nil, false, fmt.Errorf("%w: empty expression", ErrXPath)
	}
	rest := expr
	if strings.HasPrefix(rest, "//") {
		absolute = true
		rest = rest[2:]
		steps = append(steps, step{axis: "descendant"})
	} else if strings.HasPrefix(rest, "/") {
		absolute = true
		rest = rest[1:]
	}
	if rest == "" {
		return nil, false, fmt.Errorf("%w: %q has no steps", ErrXPath, expr)
	}
	// Split on '/', honoring '//' as a descendant marker. Predicates
	// never contain '/' in our subset.
	parts := strings.Split(rest, "/")
	for i := 0; i < len(parts); i++ {
		p := parts[i]
		if p == "" {
			// came from '//' in the middle: next step is descendant
			if i+1 >= len(parts) || parts[i+1] == "" {
				return nil, false, fmt.Errorf("%w: %q", ErrXPath, expr)
			}
			st, err := parseStep(parts[i+1], "descendant")
			if err != nil {
				return nil, false, err
			}
			steps = append(steps, st)
			i++
			continue
		}
		axis := "child"
		if len(steps) > 0 && steps[len(steps)-1].axis == "descendant" && steps[len(steps)-1].name == "" {
			// the leading '//' placeholder: fold into this step
			steps = steps[:len(steps)-1]
			axis = "descendant"
		}
		st, err := parseStep(p, axis)
		if err != nil {
			return nil, false, err
		}
		steps = append(steps, st)
	}
	return steps, absolute, nil
}

func parseStep(s, axis string) (step, error) {
	st := step{axis: axis}
	name := s
	for {
		open := strings.IndexByte(name, '[')
		if open < 0 {
			break
		}
		close_ := strings.IndexByte(name, ']')
		if close_ < open {
			return st, fmt.Errorf("%w: unbalanced predicate in %q", ErrXPath, s)
		}
		pred, err := parsePredicate(name[open+1 : close_])
		if err != nil {
			return st, err
		}
		st.predicates = append(st.predicates, pred)
		name = name[:open] + name[close_+1:]
	}
	if name == "" {
		return st, fmt.Errorf("%w: empty step in %q", ErrXPath, s)
	}
	st.name = name
	return st, nil
}

func parsePredicate(p string) (predicate, error) {
	p = strings.TrimSpace(p)
	if p == "" {
		return predicate{}, fmt.Errorf("%w: empty predicate", ErrXPath)
	}
	if p == "last()" {
		return predicate{kind: "last"}, nil
	}
	if n, err := strconv.Atoi(p); err == nil {
		if n < 1 {
			return predicate{}, fmt.Errorf("%w: position %d", ErrXPath, n)
		}
		return predicate{kind: "pos", pos: n}, nil
	}
	if eq := strings.Index(p, "="); eq >= 0 {
		name := strings.TrimSpace(p[:eq])
		val := strings.TrimSpace(p[eq+1:])
		if len(val) < 2 || (val[0] != '\'' && val[0] != '"') || val[len(val)-1] != val[0] {
			return predicate{}, fmt.Errorf("%w: predicate value %q must be quoted", ErrXPath, val)
		}
		val = val[1 : len(val)-1]
		if strings.HasPrefix(name, "@") {
			return predicate{kind: "attrEq", name: name[1:], value: val}, nil
		}
		return predicate{kind: "childEq", name: name, value: val}, nil
	}
	if strings.HasPrefix(p, "@") {
		return predicate{kind: "attr", name: p[1:]}, nil
	}
	return predicate{kind: "child", name: p}, nil
}

func matchPredicates(nodes []*Node, preds []predicate) []*Node {
	for _, pr := range preds {
		var kept []*Node
		switch pr.kind {
		case "pos":
			if pr.pos <= len(nodes) {
				kept = []*Node{nodes[pr.pos-1]}
			}
		case "last":
			if len(nodes) > 0 {
				kept = []*Node{nodes[len(nodes)-1]}
			}
		default:
			for _, n := range nodes {
				ok := false
				switch pr.kind {
				case "attr":
					_, ok = n.Attr(pr.name)
				case "attrEq":
					v, has := n.Attr(pr.name)
					ok = has && v == pr.value
				case "child":
					ok = n.Child(pr.name) != nil
				case "childEq":
					c := n.Child(pr.name)
					ok = c != nil && c.Text() == pr.value
				}
				if ok {
					kept = append(kept, n)
				}
			}
		}
		nodes = kept
	}
	return nodes
}

func childElements(n *Node, name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode && (name == "*" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

func descendantElements(n *Node, name string) []*Node {
	var out []*Node
	_ = n.Walk(func(x *Node) error {
		if x != n && x.Type == ElementNode && (name == "*" || x.Name == name) {
			out = append(out, x)
		}
		return nil
	})
	return out
}

// Query evaluates the path expression against n and returns matching
// element nodes. Expressions ending in @attr or text() are rejected here;
// use QueryStrings for those.
func Query(n *Node, expr string) ([]*Node, error) {
	if n == nil {
		return nil, fmt.Errorf("%w: nil context node", ErrXPath)
	}
	steps, absolute, err := parsePath(expr)
	if err != nil {
		return nil, err
	}
	last := steps[len(steps)-1]
	if strings.HasPrefix(last.name, "@") || last.name == "text()" {
		return nil, fmt.Errorf("%w: %q selects strings; use QueryStrings", ErrXPath, expr)
	}
	return eval(n, steps, absolute)
}

// QueryStrings evaluates the expression and returns string results: the
// attribute values for @attr steps, text for text() steps, and Text() of
// matched elements otherwise.
func QueryStrings(n *Node, expr string) ([]string, error) {
	if n == nil {
		return nil, fmt.Errorf("%w: nil context node", ErrXPath)
	}
	steps, absolute, err := parsePath(expr)
	if err != nil {
		return nil, err
	}
	last := steps[len(steps)-1]
	if strings.HasPrefix(last.name, "@") {
		parents, err := eval(n, steps[:len(steps)-1], absolute)
		if err != nil {
			return nil, err
		}
		if len(steps) == 1 {
			parents = []*Node{contextRoot(n, absolute)}
		}
		var out []string
		attr := last.name[1:]
		for _, p := range parents {
			if v, ok := p.Attr(attr); ok {
				out = append(out, v)
			}
		}
		return out, nil
	}
	if last.name == "text()" {
		parents, err := eval(n, steps[:len(steps)-1], absolute)
		if err != nil {
			return nil, err
		}
		if len(steps) == 1 {
			parents = []*Node{contextRoot(n, absolute)}
		}
		var out []string
		for _, p := range parents {
			for _, c := range p.Children {
				if c.Type == TextNode {
					if s := strings.TrimSpace(c.Data); s != "" {
						out = append(out, s)
					}
				}
			}
		}
		return out, nil
	}
	nodes, err := eval(n, steps, absolute)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(nodes))
	for i, m := range nodes {
		out[i] = m.Text()
	}
	return out, nil
}

// QueryOne returns the first match of Query, or nil when nothing matches.
func QueryOne(n *Node, expr string) (*Node, error) {
	nodes, err := Query(n, expr)
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, nil
	}
	return nodes[0], nil
}

func contextRoot(n *Node, absolute bool) *Node {
	if !absolute {
		return n
	}
	root := n
	for root.Parent != nil {
		root = root.Parent
	}
	return root
}

func eval(ctx *Node, steps []step, absolute bool) ([]*Node, error) {
	start := contextRoot(ctx, absolute)
	current := []*Node{start}
	if absolute && len(steps) > 0 && steps[0].axis == "child" {
		// An absolute path's first step names the root itself:
		// /root/a means root element "root", then child a.
		first := steps[0]
		var kept []*Node
		if first.name == "*" || first.name == start.Name {
			kept = matchPredicates([]*Node{start}, first.predicates)
		}
		current = kept
		steps = steps[1:]
	}
	for _, st := range steps {
		var next []*Node
		for _, c := range current {
			switch st.name {
			case ".":
				next = append(next, matchPredicates([]*Node{c}, st.predicates)...)
			case "..":
				if c.Parent != nil {
					next = append(next, matchPredicates([]*Node{c.Parent}, st.predicates)...)
				}
			default:
				var cands []*Node
				if st.axis == "descendant" {
					cands = descendantElements(c, st.name)
				} else {
					cands = childElements(c, st.name)
				}
				next = append(next, matchPredicates(cands, st.predicates)...)
			}
		}
		current = dedup(next)
	}
	return current, nil
}

func dedup(nodes []*Node) []*Node {
	seen := make(map[*Node]bool, len(nodes))
	var out []*Node
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
