package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrClosed reports an operation on a closed primitive.
var ErrClosed = errors.New("parallel: closed")

// Semaphore is a counting semaphore built on a buffered channel, the
// resource-locking primitive contrasted with unbreakable operations in
// CSE445 unit 2.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore with n permits.
func NewSemaphore(n int) (*Semaphore, error) {
	if n <= 0 {
		return nil, fmt.Errorf("parallel: semaphore permits must be positive, got %d", n)
	}
	return &Semaphore{slots: make(chan struct{}, n)}, nil
}

// Acquire takes a permit, blocking until one is available or ctx is done.
func (s *Semaphore) Acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a permit without blocking.
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a permit. Releasing more permits than were acquired is a
// programming error and panics.
func (s *Semaphore) Release() {
	select {
	case <-s.slots:
	default:
		panic("parallel: semaphore release without acquire")
	}
}

// InUse reports the number of permits currently held.
func (s *Semaphore) InUse() int { return len(s.slots) }

// CountdownEvent becomes signaled after Signal has been called n times —
// the "event coordination" primitive of the multithreading unit (the
// MRDS/CCR join pattern).
type CountdownEvent struct {
	mu    sync.Mutex
	count int
	done  chan struct{}
}

// NewCountdownEvent returns an event that fires after n signals.
func NewCountdownEvent(n int) (*CountdownEvent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("parallel: countdown must be positive, got %d", n)
	}
	return &CountdownEvent{count: n, done: make(chan struct{})}, nil
}

// Signal decrements the count; the final signal releases all waiters.
// Signaling past zero is ignored.
func (e *CountdownEvent) Signal() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.count == 0 {
		return
	}
	e.count--
	if e.count == 0 {
		close(e.done)
	}
}

// Wait blocks until the count reaches zero or ctx is done.
func (e *CountdownEvent) Wait(ctx context.Context) error {
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Remaining reports the number of outstanding signals.
func (e *CountdownEvent) Remaining() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Barrier is a reusable (cyclic) barrier for n parties.
type Barrier struct {
	mu      sync.Mutex
	n       int
	waiting int
	gen     chan struct{}
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) (*Barrier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("parallel: barrier parties must be positive, got %d", n)
	}
	return &Barrier{n: n, gen: make(chan struct{})}, nil
}

// Await blocks until n parties have arrived, then releases them all and
// resets for the next generation. It returns true for exactly one caller
// per generation (the "leader"), which can perform a serial phase.
func (b *Barrier) Await(ctx context.Context) (leader bool, err error) {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.gen = make(chan struct{})
		close(gen)
		b.mu.Unlock()
		return true, nil
	}
	b.mu.Unlock()
	select {
	case <-gen:
		return false, nil
	case <-ctx.Done():
		// Withdraw from the current generation if it has not tripped.
		b.mu.Lock()
		if b.gen == gen && b.waiting > 0 {
			b.waiting--
		}
		b.mu.Unlock()
		return false, ctx.Err()
	}
}

// Queue is a bounded blocking producer/consumer queue (the monitor-style
// buffer of the synchronization unit, and the "messaging buffer service"
// of the ASU repository).
type Queue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []T
	head     int
	size     int
	closed   bool
}

// NewQueue returns a queue with the given capacity.
func NewQueue[T any](capacity int) (*Queue[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("parallel: queue capacity must be positive, got %d", capacity)
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q, nil
}

// Put appends v, blocking while the queue is full. It fails once the queue
// is closed.
func (q *Queue[T]) Put(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	q.notEmpty.Signal()
	return nil
}

// TryPut appends v without blocking; it reports false when the queue is
// full or closed.
func (q *Queue[T]) TryPut(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	q.notEmpty.Signal()
	return true
}

// Take removes the oldest element, blocking while the queue is empty.
// After Close, Take drains remaining elements and then reports ErrClosed.
func (q *Queue[T]) Take() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	var zero T
	if q.size == 0 {
		return zero, ErrClosed
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.notFull.Signal()
	return v, nil
}

// TryTake removes the oldest element without blocking.
func (q *Queue[T]) TryTake() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.size == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.notFull.Signal()
	return v, true
}

// Close marks the queue closed: producers fail immediately, consumers
// drain the backlog.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		q.notFull.Broadcast()
		q.notEmpty.Broadcast()
	}
}

// Len reports the number of buffered elements.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Cap reports the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }
