// Package parallel is a Threading-Building-Blocks-style task parallelism
// substrate built on goroutines. It provides the abstractions CSE445 unit 2
// teaches — parallel loops with grain control, reductions, pipelines,
// fork-join task groups, futures that turn synchronous calls into
// asynchronous ones — together with the classic coordination primitives
// (counting semaphore, countdown event, cyclic barrier, bounded
// producer/consumer queue).
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrBadRange reports an invalid iteration space or grain size.
var ErrBadRange = errors.New("parallel: invalid range")

// Options configures the parallel loop primitives.
type Options struct {
	// Workers is the number of concurrent workers. Zero means GOMAXPROCS.
	Workers int
	// Grain is the minimum chunk of iterations given to a worker at a
	// time. Zero picks a heuristic chunk (range/(8*workers), at least 1).
	Grain int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) grain(n, workers int) int {
	if o.Grain > 0 {
		return o.Grain
	}
	g := n / (8 * workers)
	if g < 1 {
		g = 1
	}
	return g
}

// For executes body(i) for every i in [lo, hi) using a dynamic
// (work-stealing-like) chunked schedule: workers repeatedly claim the next
// grain-sized chunk from a shared counter, which balances irregular
// iteration costs the way TBB's auto partitioner does.
func For(lo, hi int, body func(i int), opts Options) error {
	if body == nil {
		return fmt.Errorf("%w: nil body", ErrBadRange)
	}
	if hi < lo {
		return fmt.Errorf("%w: [%d,%d)", ErrBadRange, lo, hi)
	}
	n := hi - lo
	if n == 0 {
		return nil
	}
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	grain := opts.grain(n, workers)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(lo + i)
				}
			}
		}()
	}
	wg.Wait()
	return nil
}

// ForStatic executes body(i) for i in [lo, hi) with a static block
// partition: worker w gets one contiguous block. It mirrors the naive
// partitioning students implement first, and is the baseline against which
// the dynamic schedule's load balancing is measured.
func ForStatic(lo, hi int, body func(i int), opts Options) error {
	if body == nil {
		return fmt.Errorf("%w: nil body", ErrBadRange)
	}
	if hi < lo {
		return fmt.Errorf("%w: [%d,%d)", ErrBadRange, lo, hi)
	}
	n := hi - lo
	if n == 0 {
		return nil
	}
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		start := lo + w*n/workers
		end := lo + (w+1)*n/workers
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				body(i)
			}
		}(start, end)
	}
	wg.Wait()
	return nil
}

// Reduce computes combine over map(i) for i in [lo, hi). Each worker folds
// its chunk locally starting from identity; partial results are combined at
// the end. combine must be associative, and commutative results require a
// commutative combine (chunk order is nondeterministic).
func Reduce[T any](lo, hi int, identity T, mapf func(i int) T, combine func(a, b T) T, opts Options) (T, error) {
	var zero T
	if mapf == nil || combine == nil {
		return zero, fmt.Errorf("%w: nil func", ErrBadRange)
	}
	if hi < lo {
		return zero, fmt.Errorf("%w: [%d,%d)", ErrBadRange, lo, hi)
	}
	n := hi - lo
	if n == 0 {
		return identity, nil
	}
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	grain := opts.grain(n, workers)
	partials := make([]T, workers)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			acc := identity
			for {
				start := int(atomic.AddInt64(&next, int64(grain))) - grain
				if start >= n {
					break
				}
				end := start + grain
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					acc = combine(acc, mapf(lo+i))
				}
			}
			partials[w] = acc
		}(w)
	}
	wg.Wait()
	result := identity
	for _, p := range partials {
		result = combine(result, p)
	}
	return result, nil
}

// TaskGroup is a fork-join scope: Go spawns tasks (possibly recursively),
// Wait joins them all and returns the first error. A panicking task is
// recovered and reported as an error rather than crashing the process,
// matching the "dependable services" discipline of unit 6.
type TaskGroup struct {
	wg   sync.WaitGroup
	once sync.Once
	err  error
	sem  chan struct{} // nil means unlimited
}

// NewTaskGroup returns a TaskGroup that runs at most limit tasks
// concurrently; limit <= 0 means unlimited.
func NewTaskGroup(limit int) *TaskGroup {
	tg := &TaskGroup{}
	if limit > 0 {
		tg.sem = make(chan struct{}, limit)
	}
	return tg
}

// Go spawns fn as a task of the group.
func (g *TaskGroup) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			g.sem <- struct{}{}
			defer func() { <-g.sem }()
		}
		defer func() {
			if r := recover(); r != nil {
				g.once.Do(func() { g.err = fmt.Errorf("parallel: task panic: %v", r) })
			}
		}()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait joins all spawned tasks and returns the first recorded error.
func (g *TaskGroup) Wait() error {
	g.wg.Wait()
	return g.err
}

// Future is the result of an asynchronous call: the TBB/TPL pattern of
// "turning synchronous calls into asynchronous calls" from the CSE445
// server-design project.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Async runs fn in its own goroutine and returns a Future for its result.
func Async[T any](fn func() (T, error)) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("parallel: async panic: %v", r)
			}
		}()
		f.val, f.err = fn()
	}()
	return f
}

// Get blocks until the result is available.
func (f *Future[T]) Get() (T, error) {
	<-f.done
	return f.val, f.err
}

// GetContext blocks until the result is available or ctx is done.
func (f *Future[T]) GetContext(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// Done reports whether the result is ready without blocking.
func (f *Future[T]) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}
