package parallel_test

import (
	"fmt"

	"soc/internal/parallel"
)

// ExampleReduce sums squares with a TBB-style parallel reduction.
func ExampleReduce() {
	sum, _ := parallel.Reduce(1, 11, 0,
		func(i int) int { return i * i },
		func(a, b int) int { return a + b },
		parallel.Options{Workers: 4})
	fmt.Println(sum)
	// Output: 385
}

// ExampleAsync turns a synchronous call into an asynchronous one — the
// course's server-design pattern.
func ExampleAsync() {
	future := parallel.Async(func() (string, error) {
		return "computed in the background", nil
	})
	// ... caller does other work here ...
	v, err := future.Get()
	fmt.Println(v, err)
	// Output: computed in the background <nil>
}
