package parallel

import (
	"sync/atomic"
	"testing"
)

// skewedWork simulates irregular per-iteration cost: iteration i costs
// O(i % 64) — the load-balancing case dynamic scheduling exists for.
func skewedWork(i int) int64 {
	var acc int64
	for k := 0; k < i%64; k++ {
		acc += int64(k * i)
	}
	return acc
}

func BenchmarkForDynamicSkewed(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		var local int64
		_ = For(0, 4096, func(j int) { atomic.AddInt64(&local, skewedWork(j)) }, Options{Grain: 64})
		sink += local
	}
	_ = sink
}

func BenchmarkForStaticSkewed(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		var local int64
		_ = ForStatic(0, 4096, func(j int) { atomic.AddInt64(&local, skewedWork(j)) }, Options{})
		sink += local
	}
	_ = sink
}

func BenchmarkReduceSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		got, err := Reduce(0, 1<<16, int64(0),
			func(j int) int64 { return int64(j) },
			func(a, c int64) int64 { return a + c }, Options{})
		if err != nil || got != (1<<16-1)*(1<<16)/2 {
			b.Fatalf("got %d err %v", got, err)
		}
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	p, err := NewPipeline(8,
		Stage[int]{Name: "a", Workers: 2, Fn: func(v int) (int, error) { return v + 1, nil }},
		Stage[int]{Name: "b", Workers: 2, Fn: func(v int) (int, error) { return v * 2, nil }},
	)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]int, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueuePutTake(b *testing.B) {
	q, err := NewQueue[int](1024)
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if q.TryPut(1) {
				_, _ = q.TryTake()
			}
		}
	})
}
