package parallel

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestForCoversRange(t *testing.T) {
	const n = 1000
	var hits [n]int32
	err := For(0, n, func(i int) { atomic.AddInt32(&hits[i], 1) }, Options{Workers: 4})
	if err != nil {
		t.Fatalf("For: %v", err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForOffsetRange(t *testing.T) {
	var sum int64
	err := For(10, 20, func(i int) { atomic.AddInt64(&sum, int64(i)) }, Options{Workers: 3, Grain: 2})
	if err != nil {
		t.Fatalf("For: %v", err)
	}
	if sum != 145 { // 10+11+...+19
		t.Errorf("sum = %d, want 145", sum)
	}
}

func TestForEmptyAndInvalid(t *testing.T) {
	if err := For(5, 5, func(int) { t.Error("body called on empty range") }, Options{}); err != nil {
		t.Errorf("empty range: %v", err)
	}
	if err := For(5, 4, func(int) {}, Options{}); err == nil {
		t.Error("reversed range accepted")
	}
	if err := For(0, 1, nil, Options{}); err == nil {
		t.Error("nil body accepted")
	}
}

func TestForStaticCoversRange(t *testing.T) {
	const n = 777
	var hits [n]int32
	err := ForStatic(0, n, func(i int) { atomic.AddInt32(&hits[i], 1) }, Options{Workers: 5})
	if err != nil {
		t.Fatalf("ForStatic: %v", err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForStaticMoreWorkersThanWork(t *testing.T) {
	var count int32
	err := ForStatic(0, 3, func(int) { atomic.AddInt32(&count, 1) }, Options{Workers: 64})
	if err != nil || count != 3 {
		t.Errorf("count=%d err=%v", count, err)
	}
}

func TestForCoverageProperty(t *testing.T) {
	prop := func(nRaw uint8, wRaw, gRaw uint8) bool {
		n := int(nRaw)
		var visited sync.Map
		err := For(0, n, func(i int) { visited.Store(i, true) },
			Options{Workers: int(wRaw%8) + 1, Grain: int(gRaw % 16)})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if _, ok := visited.Load(i); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReduceSum(t *testing.T) {
	got, err := Reduce(1, 101, 0,
		func(i int) int { return i },
		func(a, b int) int { return a + b },
		Options{Workers: 4, Grain: 7})
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
}

func TestReduceEmptyReturnsIdentity(t *testing.T) {
	got, err := Reduce(3, 3, 42, func(int) int { return 0 }, func(a, b int) int { return a + b }, Options{})
	if err != nil || got != 42 {
		t.Errorf("got %d err=%v, want identity 42", got, err)
	}
}

func TestReduceMatchesSequentialProperty(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw)
		seq := 0
		for i := 0; i < n; i++ {
			seq += i * i
		}
		par, err := Reduce(0, n, 0,
			func(i int) int { return i * i },
			func(a, b int) int { return a + b }, Options{Workers: 3})
		return err == nil && par == seq
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTaskGroupJoinsAll(t *testing.T) {
	tg := NewTaskGroup(0)
	var count int32
	for i := 0; i < 50; i++ {
		tg.Go(func() error { atomic.AddInt32(&count, 1); return nil })
	}
	if err := tg.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if count != 50 {
		t.Errorf("count = %d, want 50", count)
	}
}

func TestTaskGroupReportsError(t *testing.T) {
	tg := NewTaskGroup(2)
	sentinel := errors.New("boom")
	tg.Go(func() error { return nil })
	tg.Go(func() error { return sentinel })
	if err := tg.Wait(); !errors.Is(err, sentinel) {
		t.Errorf("Wait = %v, want %v", err, sentinel)
	}
}

func TestTaskGroupRecoversPanic(t *testing.T) {
	tg := NewTaskGroup(0)
	tg.Go(func() error { panic("kaboom") })
	err := tg.Wait()
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestTaskGroupLimit(t *testing.T) {
	tg := NewTaskGroup(2)
	var inFlight, peak int32
	for i := 0; i < 20; i++ {
		tg.Go(func() error {
			cur := atomic.AddInt32(&inFlight, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&inFlight, -1)
			return nil
		})
	}
	if err := tg.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if peak > 2 {
		t.Errorf("peak concurrency %d exceeds limit 2", peak)
	}
}

func TestTaskGroupRecursiveSpawn(t *testing.T) {
	// Fork-join fib, the canonical recursive task-spawning exercise.
	var fib func(g *TaskGroup, n int, out *int64)
	fib = func(g *TaskGroup, n int, out *int64) {
		if n < 2 {
			atomic.AddInt64(out, int64(n))
			return
		}
		inner := NewTaskGroup(0)
		inner.Go(func() error { fib(inner, n-1, out); return nil })
		inner.Go(func() error { fib(inner, n-2, out); return nil })
		if err := inner.Wait(); err != nil {
			panic(err)
		}
	}
	var result int64
	g := NewTaskGroup(0)
	g.Go(func() error { fib(g, 10, &result); return nil })
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if result != 55 {
		t.Errorf("fib(10) = %d, want 55", result)
	}
}

func TestFutureGet(t *testing.T) {
	f := Async(func() (int, error) { return 7, nil })
	v, err := f.Get()
	if err != nil || v != 7 {
		t.Errorf("Get = %d, %v", v, err)
	}
	if !f.Done() {
		t.Error("Done() false after Get")
	}
}

func TestFutureError(t *testing.T) {
	sentinel := errors.New("fail")
	f := Async(func() (string, error) { return "", sentinel })
	_, err := f.Get()
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestFuturePanicBecomesError(t *testing.T) {
	f := Async(func() (int, error) { panic("argh") })
	_, err := f.Get()
	if err == nil {
		t.Error("panic not converted to error")
	}
}

func TestFutureGetContextCancel(t *testing.T) {
	block := make(chan struct{})
	f := Async(func() (int, error) { <-block; return 1, nil })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.GetContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want canceled", err)
	}
	close(block)
	if v, err := f.Get(); err != nil || v != 1 {
		t.Errorf("Get after unblock = %d, %v", v, err)
	}
}

func TestSemaphore(t *testing.T) {
	s, err := NewSemaphore(2)
	if err != nil {
		t.Fatalf("NewSemaphore: %v", err)
	}
	ctx := context.Background()
	if err := s.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if s.TryAcquire() {
		t.Error("TryAcquire succeeded past capacity")
	}
	if s.InUse() != 2 {
		t.Errorf("InUse = %d", s.InUse())
	}
	s.Release()
	if !s.TryAcquire() {
		t.Error("TryAcquire failed after release")
	}
	s.Release()
	s.Release()
}

func TestSemaphoreInvalid(t *testing.T) {
	if _, err := NewSemaphore(0); err == nil {
		t.Error("NewSemaphore(0) accepted")
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	s, _ := NewSemaphore(1)
	defer func() {
		if recover() == nil {
			t.Error("release without acquire did not panic")
		}
	}()
	s.Release()
}

func TestSemaphoreAcquireCancel(t *testing.T) {
	s, _ := NewSemaphore(1)
	_ = s.Acquire(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
}

func TestCountdownEvent(t *testing.T) {
	e, err := NewCountdownEvent(3)
	if err != nil {
		t.Fatalf("NewCountdownEvent: %v", err)
	}
	if e.Remaining() != 3 {
		t.Errorf("Remaining = %d", e.Remaining())
	}
	e.Signal()
	e.Signal()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	if err := e.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Wait before final signal = %v", err)
	}
	cancel()
	e.Signal()
	e.Signal() // past zero: ignored
	if err := e.Wait(context.Background()); err != nil {
		t.Errorf("Wait after final signal = %v", err)
	}
	if e.Remaining() != 0 {
		t.Errorf("Remaining = %d", e.Remaining())
	}
}

func TestCountdownInvalid(t *testing.T) {
	if _, err := NewCountdownEvent(0); err == nil {
		t.Error("NewCountdownEvent(0) accepted")
	}
}

func TestBarrierRounds(t *testing.T) {
	const parties, rounds = 4, 3
	b, err := NewBarrier(parties)
	if err != nil {
		t.Fatalf("NewBarrier: %v", err)
	}
	var leaders int32
	var wg sync.WaitGroup
	wg.Add(parties)
	for p := 0; p < parties; p++ {
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				leader, err := b.Await(context.Background())
				if err != nil {
					t.Errorf("Await: %v", err)
					return
				}
				if leader {
					atomic.AddInt32(&leaders, 1)
				}
			}
		}()
	}
	wg.Wait()
	if leaders != rounds {
		t.Errorf("leaders = %d, want %d (one per round)", leaders, rounds)
	}
}

func TestBarrierCancel(t *testing.T) {
	b, _ := NewBarrier(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.Await(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Await = %v", err)
	}
	// Barrier must still work for a full complement after the withdrawal.
	done := make(chan struct{})
	go func() {
		_, _ = b.Await(context.Background())
		close(done)
	}()
	if _, err := b.Await(context.Background()); err != nil {
		t.Errorf("Await after withdraw: %v", err)
	}
	<-done
}

func TestQueueFIFO(t *testing.T) {
	q, err := NewQueue[int](4)
	if err != nil {
		t.Fatalf("NewQueue: %v", err)
	}
	for i := 1; i <= 4; i++ {
		if err := q.Put(i); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if q.Len() != 4 || q.Cap() != 4 {
		t.Errorf("Len=%d Cap=%d", q.Len(), q.Cap())
	}
	for i := 1; i <= 4; i++ {
		v, err := q.Take()
		if err != nil || v != i {
			t.Fatalf("Take = %d,%v want %d", v, err, i)
		}
	}
}

func TestQueueProducerConsumer(t *testing.T) {
	q, _ := NewQueue[int](3)
	const n = 200
	var consumed []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, err := q.Take()
				if err != nil {
					return
				}
				mu.Lock()
				consumed = append(consumed, v)
				mu.Unlock()
			}
		}()
	}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < n; i += 2 {
				if err := q.Put(i); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}(p)
	}
	// Wait for producers, then close, then wait for consumers to drain.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		mu.Lock()
		got := len(consumed)
		mu.Unlock()
		if got == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	q.Close()
	<-done
	sort.Ints(consumed)
	for i, v := range consumed {
		if v != i {
			t.Fatalf("consumed[%d] = %d", i, v)
		}
	}
}

func TestQueueCloseSemantics(t *testing.T) {
	q, _ := NewQueue[string](2)
	_ = q.Put("a")
	q.Close()
	if err := q.Put("b"); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close = %v", err)
	}
	v, err := q.Take()
	if err != nil || v != "a" {
		t.Errorf("drain = %q,%v", v, err)
	}
	if _, err := q.Take(); !errors.Is(err, ErrClosed) {
		t.Errorf("Take after drain = %v", err)
	}
	if _, ok := q.TryTake(); ok {
		t.Error("TryTake succeeded on drained queue")
	}
	q.Close() // idempotent
}

func TestQueueInvalidCapacity(t *testing.T) {
	if _, err := NewQueue[int](0); err == nil {
		t.Error("NewQueue(0) accepted")
	}
}

func TestPipelineTransforms(t *testing.T) {
	p, err := NewPipeline(4,
		Stage[int]{Name: "double", Workers: 2, Fn: func(v int) (int, error) { return v * 2, nil }},
		Stage[int]{Name: "inc", Workers: 3, Fn: func(v int) (int, error) { return v + 1, nil }},
	)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out, err := p.Run(in)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 100 {
		t.Fatalf("len(out) = %d", len(out))
	}
	sort.Ints(out)
	for i, v := range out {
		if v != 2*i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, 2*i+1)
		}
	}
}

func TestPipelineError(t *testing.T) {
	sentinel := errors.New("stage failure")
	p, _ := NewPipeline(2,
		Stage[int]{Name: "ok", Fn: func(v int) (int, error) { return v, nil }},
		Stage[int]{Name: "bad", Fn: func(v int) (int, error) {
			if v == 13 {
				return 0, sentinel
			}
			return v, nil
		}},
	)
	_, err := p.Run([]int{1, 13, 2, 3, 4, 5, 6, 7, 8, 9})
	if !errors.Is(err, sentinel) {
		t.Errorf("Run = %v, want %v", err, sentinel)
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline[int](1); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := NewPipeline(1, Stage[int]{Name: "nil"}); err == nil {
		t.Error("nil-Fn stage accepted")
	}
}

func TestPipelineEmptyInput(t *testing.T) {
	p, _ := NewPipeline(1, Stage[int]{Fn: func(v int) (int, error) { return v, nil }})
	out, err := p.Run(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("Run(nil) = %v, %v", out, err)
	}
}
