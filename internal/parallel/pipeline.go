package parallel

import (
	"fmt"
	"sync"
)

// Stage is one step of a pipeline: it transforms an input item into an
// output item. A stage declares how many parallel workers may run it;
// serial stages (Workers == 1) preserve no particular order unless the
// pipeline is configured as ordered.
type Stage[T any] struct {
	// Name identifies the stage in errors.
	Name string
	// Workers is the stage's parallelism; values < 1 are treated as 1.
	Workers int
	// Fn transforms an item. Returning an error aborts the pipeline.
	Fn func(T) (T, error)
}

// Pipeline chains stages the way TBB's parallel_pipeline does: each stage
// runs its own worker pool, connected by bounded channels, so throughput is
// governed by the slowest stage rather than the sum of stage latencies.
type Pipeline[T any] struct {
	stages []Stage[T]
	buffer int
}

// NewPipeline builds a pipeline from the given stages. buffer sets the
// capacity of inter-stage channels (tokens in flight); values < 1 become 1.
func NewPipeline[T any](buffer int, stages ...Stage[T]) (*Pipeline[T], error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("parallel: pipeline needs at least one stage")
	}
	for i, s := range stages {
		if s.Fn == nil {
			return nil, fmt.Errorf("parallel: stage %d (%q) has nil Fn", i, s.Name)
		}
	}
	if buffer < 1 {
		buffer = 1
	}
	return &Pipeline[T]{stages: stages, buffer: buffer}, nil
}

// Run feeds every input through all stages and returns the outputs in
// arbitrary order. The first stage error cancels the run.
func (p *Pipeline[T]) Run(inputs []T) ([]T, error) {
	errOnce := sync.Once{}
	var firstErr error
	abort := make(chan struct{})
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(abort)
		})
	}

	in := make(chan T, p.buffer)
	go func() {
		defer close(in)
		for _, v := range inputs {
			select {
			case in <- v:
			case <-abort:
				return
			}
		}
	}()

	cur := in
	for _, st := range p.stages {
		out := make(chan T, p.buffer)
		workers := st.Workers
		if workers < 1 {
			workers = 1
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		stage := st
		for w := 0; w < workers; w++ {
			go func(src <-chan T, dst chan<- T) {
				defer wg.Done()
				for v := range src {
					r, err := stage.Fn(v)
					if err != nil {
						fail(fmt.Errorf("parallel: stage %q: %w", stage.Name, err))
						return
					}
					select {
					case dst <- r:
					case <-abort:
						return
					}
				}
			}(cur, out)
		}
		go func(dst chan T) {
			wg.Wait()
			close(dst)
		}(out)
		cur = out
	}

	var results []T
	for v := range cur {
		results = append(results, v)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
