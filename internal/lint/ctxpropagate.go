package lint

import (
	"go/ast"
)

// CtxPropagate enforces context propagation: a function that already
// holds a request context — a context.Context parameter, or an
// *http.Request whose Context() is one method call away — must thread it
// to its callees. Minting context.Background()/context.TODO() inside
// such a function silently detaches the call path from cancellation and
// deadlines, exactly the drift the resilient client's timeouts depend on
// not happening; http.NewRequest (instead of NewRequestWithContext) does
// the same one layer down. Closures inherit the surrounding function's
// context obligation. Deliberately detached work should use
// context.WithoutCancel(ctx) so values still flow, or carry an
// //soclint:ignore directive explaining the detachment.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "forbids context.Background()/TODO() and http.NewRequest in functions that already hold a context",
	Run:  runCtxPropagate,
}

func runCtxPropagate(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkCtxBody(pass, fd.Body, holdsCtx(pass, fd.Type))
			}
		}
	}
	return nil
}

// holdsCtx reports whether the function type has a parameter giving it a
// live context: a context.Context, or an *http.Request.
func holdsCtx(pass *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if IsNamedType(t, "context", "Context") || IsNamedType(t, "net/http", "Request") {
			return true
		}
	}
	return false
}

func checkCtxBody(pass *Pass, body ast.Node, held bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxBody(pass, n.Body, held || holdsCtx(pass, n.Type))
			return false
		case *ast.CallExpr:
			if !held {
				return true
			}
			fn := CalleeFunc(pass.Info, n)
			switch {
			case IsPkgFunc(fn, "context", "Background"), IsPkgFunc(fn, "context", "TODO"):
				pass.Reportf(n.Pos(), "context.%s() inside a function that already holds a context; thread the caller's ctx (or context.WithoutCancel(ctx) for deliberately detached work)", fn.Name())
			case IsPkgFunc(fn, "net/http", "NewRequest"):
				pass.Reportf(n.Pos(), "http.NewRequest drops the caller's context; use http.NewRequestWithContext")
			}
		}
		return true
	})
}
