// Package lint is a self-contained static-analysis framework for this
// repository, built only on the standard library's go/ast, go/parser,
// go/token and go/types (no golang.org/x/tools dependency). It exists
// because the paper's dependability unit teaches that trustworthy service
// composition requires *verifying* services against their standard
// interfaces, not just testing them: the analyzers here enforce, at build
// time, the contracts and concurrency disciplines the runtime layers
// (soc/internal/host, soc/internal/reliability) assume.
//
// The framework is deliberately small: an Analyzer is a named Run
// function over a typechecked Pass; the Runner applies a registry of
// analyzers to one loaded package and collects positioned Findings.
// Findings can be suppressed, one line at a time, with an explanatory
// directive:
//
//	//soclint:ignore analyzer1,analyzer2 reason for the exception
//
// placed either on the offending line or alone on the line above it. A
// directive without a reason is itself reported: every exception must
// say why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Config carries the repository-specific policy knobs shared by the
// analyzers. Zero values disable the corresponding checks.
type Config struct {
	// ContractsDir is the directory of golden WSDL contracts checked by
	// the contractcheck analyzer. Empty disables contract checking.
	ContractsDir string
	// ContractBound lists import-path prefixes whose statically
	// registered services MUST have a contract file (a missing contract
	// is a finding, not just a drifted one).
	ContractBound []string
	// LockBlockScope lists import-path prefixes subject to the
	// lock-held-across-blocking-call analysis of locksafe.
	LockBlockScope []string
	// ErrDiscardScope lists import-path prefixes (service/handler code)
	// subject to the errdiscard analyzer.
	ErrDiscardScope []string
	// CallPlanePath is the import path of the call-plane package — the
	// one package allowed to call http.NewRequestWithContext directly;
	// everywhere else the tracepropagate analyzer requires its NewRequest
	// helper. Empty disables the check.
	CallPlanePath string
	// ClockScope lists import-path prefixes subject to the clockdiscipline
	// analyzer: packages the deterministic simulation harness runs in
	// virtual time, where direct wall-clock reads/waits are forbidden.
	ClockScope []string
	// DurableScope lists import-path prefixes subject to the
	// fsyncdiscipline analyzer: packages that persist state the stack
	// promises to recover after a crash, where fsync-free writes and
	// rename-before-fsync are forbidden.
	DurableScope []string
}

// DefaultConfig is the policy soclint applies to this module: contracts
// live in <moduleDir>/contracts, the service catalog and robot service
// are contract-bound, all internal packages get the lock-blocking check,
// and the service/handler packages get the error-discard check.
func DefaultConfig(moduleDir string) Config {
	return Config{
		ContractsDir:  moduleDir + "/contracts",
		ContractBound: []string{"soc/internal/services", "soc/internal/robot"},
		LockBlockScope: []string{
			"soc/internal/",
		},
		ErrDiscardScope: []string{
			"soc/internal/core",
			"soc/internal/crawler",
			"soc/internal/eventbus",
			"soc/internal/faultinject",
			"soc/internal/host",
			"soc/internal/mortgageapp",
			"soc/internal/registry",
			"soc/internal/reliability",
			"soc/internal/rest",
			"soc/internal/security",
			"soc/internal/services",
			"soc/internal/session",
			"soc/internal/soap",
			"soc/internal/wsdl",
			"soc/internal/workflow",
			"soc/internal/xmlstore",
			"soc/cmd/",
		},
		CallPlanePath: "soc/internal/callplane",
		ClockScope: []string{
			"soc/internal/faultinject",
			"soc/internal/reliability",
			"soc/internal/respcache",
			"soc/internal/vtime",
		},
		DurableScope: []string{
			"soc/internal/registry",
			"soc/internal/wal",
			"soc/internal/xmlstore",
			"soc/cmd/wsrepo",
		},
	}
}

// InScope reports whether path falls under any of the listed prefixes.
// A prefix matches exactly or at a path-segment boundary, so
// "soc/internal/host" covers "soc/internal/host/sub" but not
// "soc/internal/hostile"; prefixes ending in "/" match any extension.
func InScope(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if p == "" {
			continue
		}
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
			continue
		}
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Analyzer is one named static check.
type Analyzer struct {
	// Name is the identifier used in reports and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run applies the check to one typechecked package.
	Run func(*Pass) error
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Pass is the per-(package, analyzer) unit of work handed to Run.
type Pass struct {
	Analyzer *Analyzer
	Config   Config

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the package import path; Dir its directory.
	Path string
	Dir  string

	suppressed map[string]map[int]map[string]bool // file → line → analyzer set
	findings   *[]Finding
}

// Reportf records a finding at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if set := p.suppressed[position.Filename]; set != nil {
		if set[position.Line][p.Analyzer.Name] {
			return
		}
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Runner applies a set of analyzers to loaded packages.
type Runner struct {
	Analyzers []*Analyzer
	Config    Config
}

// directiveFinding is a malformed-ignore report produced during comment
// scanning, before any analyzer runs.
const directiveAnalyzer = "soclint"

// RunPackage runs every analyzer over pkg and returns the findings
// sorted by position.
func (r *Runner) RunPackage(pkg *Package) ([]Finding, error) {
	var findings []Finding
	suppressed := scanDirectives(pkg, &findings)
	for _, a := range r.Analyzers {
		pass := &Pass{
			Analyzer:   a,
			Config:     r.Config,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			Path:       pkg.Path,
			Dir:        pkg.Dir,
			suppressed: suppressed,
			findings:   &findings,
		}
		if err := a.Run(pass); err != nil {
			return findings, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by file, line, column, analyzer.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// scanDirectives indexes //soclint:ignore directives per file and line.
// The directive covers its own line and, when it stands alone on a line,
// the following line as well.
func scanDirectives(pkg *Package, findings *[]Finding) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//soclint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names, reason := splitDirective(text)
				if len(names) == 0 || reason == "" {
					*findings = append(*findings, Finding{
						Pos:      pos,
						Analyzer: directiveAnalyzer,
						Message:  "malformed ignore directive: want //soclint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				file := out[pos.Filename]
				if file == nil {
					file = map[int]map[string]bool{}
					out[pos.Filename] = file
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := file[line]
					if set == nil {
						set = map[string]bool{}
						file[line] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return out
}

func splitDirective(text string) (names []string, reason string) {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return nil, ""
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	return names, strings.Join(fields[1:], " ")
}

// DefaultAnalyzers returns the full registry in reporting order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		BodyClose,
		ClockDiscipline,
		ContractCheck,
		CtxPropagate,
		ErrDiscard,
		FsyncDiscipline,
		LockSafe,
		NoClientLiteral,
		PoolReset,
		TracePropagate,
	}
}

// AnalyzerByName returns the registered analyzer with the given name.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range DefaultAnalyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// ---- shared type/AST helpers ----

// CalleeFunc resolves the called function or method of call, or nil for
// indirect calls (function values, conversions, builtins).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function path.name.
func IsPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != path {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsMethod reports whether fn is a method named name whose receiver's
// named type (after pointer stripping) is path.recvName.
func IsMethod(fn *types.Func, path, recvName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsNamedType(sig.Recv().Type(), path, recvName)
}

// IsNamedType reports whether t (after pointer stripping) is the named
// type path.name.
func IsNamedType(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}
