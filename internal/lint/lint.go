// Package lint is a self-contained static-analysis framework for this
// repository, built only on the standard library's go/ast, go/parser,
// go/token and go/types (no golang.org/x/tools dependency). It exists
// because the paper's dependability unit teaches that trustworthy service
// composition requires *verifying* services against their standard
// interfaces, not just testing them: the analyzers here enforce, at build
// time, the contracts and concurrency disciplines the runtime layers
// (soc/internal/host, soc/internal/reliability) assume.
//
// The framework is deliberately small: an Analyzer is a named Run
// function over a typechecked Pass; the Runner applies a registry of
// analyzers to one loaded package and collects positioned Findings.
// Findings can be suppressed, one line at a time, with an explanatory
// directive:
//
//	//soclint:ignore analyzer1,analyzer2 reason for the exception
//
// placed either on the offending line or alone on the line above it. A
// directive without a reason is itself reported: every exception must
// say why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"soc/internal/lint/flow"
)

// Config carries the repository-specific policy knobs shared by the
// analyzers. Zero values disable the corresponding checks.
type Config struct {
	// ContractsDir is the directory of golden WSDL contracts checked by
	// the contractcheck analyzer. Empty disables contract checking.
	ContractsDir string
	// ContractBound lists import-path prefixes whose statically
	// registered services MUST have a contract file (a missing contract
	// is a finding, not just a drifted one).
	ContractBound []string
	// LockBlockScope lists import-path prefixes subject to the
	// lock-held-across-blocking-call analysis of locksafe.
	LockBlockScope []string
	// ErrDiscardScope lists import-path prefixes (service/handler code)
	// subject to the errdiscard analyzer.
	ErrDiscardScope []string
	// CallPlanePath is the import path of the call-plane package — the
	// one package allowed to call http.NewRequestWithContext directly;
	// everywhere else the tracepropagate analyzer requires its NewRequest
	// helper. Empty disables the check.
	CallPlanePath string
	// ClockScope lists import-path prefixes subject to the clockdiscipline
	// analyzer: packages the deterministic simulation harness runs in
	// virtual time, where direct wall-clock reads/waits are forbidden.
	ClockScope []string
	// DurableScope lists import-path prefixes subject to the
	// fsyncdiscipline analyzer: packages that persist state the stack
	// promises to recover after a crash, where fsync-free writes and
	// rename-before-fsync are forbidden.
	DurableScope []string
	// LockOrderScope lists import-path prefixes whose mutexes
	// participate in the global lock-acquisition-order graph of the
	// lockorder analyzer; a cycle among their locks is a potential
	// deadlock.
	LockOrderScope []string
	// GoLeakScope lists import-path prefixes subject to the goleak
	// analyzer: every `go` statement there must have a provable
	// termination path.
	GoLeakScope []string
	// RequestPathScope lists import-path prefixes on the request path,
	// where goleak additionally requires that goroutines spawned inside
	// loops are joined or pooled (reliability.Bulkhead or equivalent) —
	// unbounded per-request fan-out is how hosts fall over.
	RequestPathScope []string
	// AtomicScope lists import-path prefixes subject to the
	// atomicdiscipline analyzer: a word accessed via sync/atomic
	// anywhere may never be accessed plainly elsewhere.
	AtomicScope []string
	// NoTestAnalyzers names analyzers that must NOT see _test.go files
	// even though they declare Tests: true — the per-analyzer knob for
	// excluding test code from the concurrency checks.
	NoTestAnalyzers []string
}

// DefaultConfig is the policy soclint applies to this module: contracts
// live in <moduleDir>/contracts, the service catalog and robot service
// are contract-bound, all internal packages get the lock-blocking check,
// and the service/handler packages get the error-discard check.
func DefaultConfig(moduleDir string) Config {
	return Config{
		ContractsDir:  moduleDir + "/contracts",
		ContractBound: []string{"soc/internal/services", "soc/internal/robot"},
		LockBlockScope: []string{
			"soc/internal/",
		},
		ErrDiscardScope: []string{
			"soc/internal/core",
			"soc/internal/crawler",
			"soc/internal/eventbus",
			"soc/internal/faultinject",
			"soc/internal/host",
			"soc/internal/mortgageapp",
			"soc/internal/registry",
			"soc/internal/reliability",
			"soc/internal/rest",
			"soc/internal/security",
			"soc/internal/services",
			"soc/internal/session",
			"soc/internal/soap",
			"soc/internal/wsdl",
			"soc/internal/workflow",
			"soc/internal/xmlstore",
			"soc/cmd/",
		},
		CallPlanePath: "soc/internal/callplane",
		ClockScope: []string{
			"soc/internal/cloud",
			"soc/internal/faultinject",
			"soc/internal/loadgen",
			"soc/internal/reliability",
			"soc/internal/respcache",
			"soc/internal/vtime",
		},
		DurableScope: []string{
			"soc/internal/registry",
			"soc/internal/wal",
			"soc/internal/xmlstore",
			"soc/cmd/wsrepo",
		},
		LockOrderScope: []string{
			"soc/internal/cloud",
			"soc/internal/host",
			"soc/internal/registry",
			"soc/internal/respcache",
			"soc/internal/reliability",
			"soc/internal/telemetry",
			"soc/internal/workflow",
		},
		GoLeakScope: []string{
			"soc", "soc/",
		},
		RequestPathScope: []string{
			"soc/internal/host",
			"soc/internal/registry",
			"soc/internal/respcache",
			"soc/internal/rest",
			"soc/internal/soap",
			"soc/internal/workflow",
			"soc/internal/eventbus",
		},
		AtomicScope: []string{
			"soc", "soc/",
		},
	}
}

// InScope reports whether path falls under any of the listed prefixes.
// A prefix matches exactly or at a path-segment boundary, so
// "soc/internal/host" covers "soc/internal/host/sub" but not
// "soc/internal/hostile"; prefixes ending in "/" match any extension.
func InScope(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if p == "" {
			continue
		}
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
			continue
		}
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Analyzer is one named static check.
type Analyzer struct {
	// Name is the identifier used in reports and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Tests marks analyzers that also examine _test.go files (tests
	// spawn goroutines and take locks too); Config.NoTestAnalyzers can
	// switch this off per analyzer without editing the registry.
	Tests bool
	// Flow marks analyzers that query the interprocedural flow graph;
	// drivers build the module-wide graph once when any selected
	// analyzer sets it.
	Flow bool
	// Run applies the check to one typechecked package.
	Run func(*Pass) error
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position `json:"-"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
	// IgnoredBy carries the reason text of the //soclint:ignore
	// directive that suppressed this finding; empty for active
	// findings. Suppressed findings never fail a run — they exist so
	// machine-readable output can show what the directives are hiding.
	IgnoredBy string `json:"ignored_by,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Pass is the per-(package, analyzer) unit of work handed to Run.
type Pass struct {
	Analyzer *Analyzer
	Config   Config

	Fset *token.FileSet
	// Files are the files this analyzer examines: the package sources,
	// plus its _test.go files when the analyzer sets Tests and
	// Config.NoTestAnalyzers does not veto it.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the package import path; Dir its directory.
	Path string
	Dir  string

	suppressed    map[string]map[int]map[string]string // file → line → analyzer → reason
	findings      *[]Finding
	suppressedOut *[]Finding
	flowGraph     func() *flow.Graph
}

// FlowGraph returns the interprocedural view backing this pass: the
// module-wide graph when the driver built one, else a graph of just
// this package (which is exactly right for fixture tests). The graph's
// fact base always includes _test.go files of the packages it covers.
func (p *Pass) FlowGraph() *flow.Graph { return p.flowGraph() }

// InFiles reports whether pos falls inside one of the files this pass
// examines — how interprocedural analyzers keep module-wide results
// from being reported once per package.
func (p *Pass) InFiles(pos token.Pos) bool {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return true
		}
	}
	return false
}

// Reportf records a finding at pos. A covering ignore directive routes
// the finding to the suppressed list (surfaced by -json) instead of the
// active one.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	f := Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if set := p.suppressed[position.Filename]; set != nil {
		if reason, ok := set[position.Line][p.Analyzer.Name]; ok {
			f.IgnoredBy = reason
			if p.suppressedOut != nil {
				*p.suppressedOut = append(*p.suppressedOut, f)
			}
			return
		}
	}
	*p.findings = append(*p.findings, f)
}

// Runner applies a set of analyzers to loaded packages.
type Runner struct {
	Analyzers []*Analyzer
	Config    Config
	// Flow is the module-wide interprocedural graph; nil makes each
	// pass fall back to a per-package graph.
	Flow *flow.Graph
	// Suppressed accumulates findings silenced by ignore directives
	// across RunPackage calls, for machine-readable output.
	Suppressed []Finding

	pkgFlows map[*Package]*flow.Graph
}

// flowFor returns the graph a pass over pkg should query.
func (r *Runner) flowFor(pkg *Package) func() *flow.Graph {
	return func() *flow.Graph {
		if r.Flow != nil {
			return r.Flow
		}
		if r.pkgFlows == nil {
			r.pkgFlows = map[*Package]*flow.Graph{}
		}
		if g, ok := r.pkgFlows[pkg]; ok {
			return g
		}
		g := flow.Build(pkg.Fset, []*flow.Package{pkg.FlowPackage()})
		r.pkgFlows[pkg] = g
		return g
	}
}

// directiveFinding is a malformed-ignore report produced during comment
// scanning, before any analyzer runs.
const directiveAnalyzer = "soclint"

// RunPackage runs every analyzer over pkg and returns the active
// findings sorted by position; directive-suppressed findings accumulate
// on r.Suppressed.
func (r *Runner) RunPackage(pkg *Package) ([]Finding, error) {
	var findings []Finding
	suppressed := scanDirectives(pkg, &findings)
	for _, a := range r.Analyzers {
		files := pkg.Files
		if a.Tests && !contains(r.Config.NoTestAnalyzers, a.Name) {
			files = append(append([]*ast.File(nil), files...), pkg.TestFiles...)
		}
		pass := &Pass{
			Analyzer:      a,
			Config:        r.Config,
			Fset:          pkg.Fset,
			Files:         files,
			Pkg:           pkg.Types,
			Info:          pkg.Info,
			Path:          pkg.Path,
			Dir:           pkg.Dir,
			suppressed:    suppressed,
			findings:      &findings,
			suppressedOut: &r.Suppressed,
			flowGraph:     r.flowFor(pkg),
		}
		if err := a.Run(pass); err != nil {
			return findings, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	SortFindings(findings)
	return findings, nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// SortFindings orders findings by file, line, column, analyzer.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// scanDirectives indexes //soclint:ignore directives per file and line
// (test files included — tests carry exceptions too). The directive
// covers its own line and, when it stands alone on a line, the
// following line as well; the mapped value is the directive's reason.
func scanDirectives(pkg *Package, findings *[]Finding) map[string]map[int]map[string]string {
	out := map[string]map[int]map[string]string{}
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//soclint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names, reason := splitDirective(text)
				if len(names) == 0 || reason == "" {
					*findings = append(*findings, Finding{
						Pos:      pos,
						Analyzer: directiveAnalyzer,
						Message:  "malformed ignore directive: want //soclint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				file := out[pos.Filename]
				if file == nil {
					file = map[int]map[string]string{}
					out[pos.Filename] = file
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := file[line]
					if set == nil {
						set = map[string]string{}
						file[line] = set
					}
					for _, n := range names {
						set[n] = reason
					}
				}
			}
		}
	}
	return out
}

func splitDirective(text string) (names []string, reason string) {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return nil, ""
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	return names, strings.Join(fields[1:], " ")
}

// DefaultAnalyzers returns the full registry in reporting order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		AtomicDiscipline,
		BodyClose,
		ClockDiscipline,
		ContractCheck,
		CtxPropagate,
		ErrDiscard,
		FsyncDiscipline,
		GoLeak,
		LockOrder,
		LockSafe,
		NoClientLiteral,
		PoolReset,
		TracePropagate,
	}
}

// AnalyzerByName returns the registered analyzer with the given name.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range DefaultAnalyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// ---- shared type/AST helpers ----

// CalleeFunc resolves the called function or method of call, or nil for
// indirect calls (function values, conversions, builtins).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function path.name.
func IsPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != path {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsMethod reports whether fn is a method named name whose receiver's
// named type (after pointer stripping) is path.recvName.
func IsMethod(fn *types.Func, path, recvName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsNamedType(sig.Recv().Type(), path, recvName)
}

// IsNamedType reports whether t (after pointer stripping) is the named
// type path.name.
func IsNamedType(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}
