package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The tests share one Loader so the standard library is typechecked from
// source once, not once per test.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = NewLoader(root)
		if loaderErr == nil {
			// Mirror the soclint driver: test files are analyzed too.
			loaderVal.Tests = true
		}
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

// loadFixture typechecks the testdata fixture package for the named
// analyzer under a synthetic module-local import path.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	path := "soc/internal/lint/testdata/src/" + name
	pkg, err := testLoader(t).LoadDir(dir, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// want is one expectation parsed from a fixture's `// want` comment.
type want struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// parseWants collects the `// want` expectations of every fixture file,
// keyed by the filename that findings will carry.
func parseWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	out := map[string][]*want{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				out[path] = append(out[path], &want{line: i + 1, re: re})
			}
		}
	}
	return out
}

// TestGoldenFixtures runs each analyzer over its fixture package and
// checks the findings against the fixture's `// want` comments: every
// finding must be wanted, and every want must be found.
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		config   func(path string) Config
	}{
		{"bodyclose", func(string) Config { return Config{} }},
		{"clockdiscipline", func(p string) Config { return Config{ClockScope: []string{p}} }},
		{"ctxpropagate", func(string) Config { return Config{} }},
		{"noclientliteral", func(string) Config { return Config{} }},
		{"poolreset", func(string) Config { return Config{} }},
		{"tracepropagate", func(string) Config { return Config{CallPlanePath: "soc/internal/callplane"} }},
		{"fsyncdiscipline", func(p string) Config { return Config{DurableScope: []string{p}} }},
		{"locksafe", func(p string) Config { return Config{LockBlockScope: []string{p}} }},
		{"errdiscard", func(p string) Config { return Config{ErrDiscardScope: []string{p}} }},
		{"lockorder", func(p string) Config { return Config{LockOrderScope: []string{p}} }},
		{"goleak", func(p string) Config {
			return Config{GoLeakScope: []string{p}, RequestPathScope: []string{p}}
		}},
		{"atomicdiscipline", func(p string) Config { return Config{AtomicScope: []string{p}} }},
		{"contractcheck", func(p string) Config {
			return Config{
				ContractsDir:  filepath.Join("testdata", "contracts"),
				ContractBound: []string{p},
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			analyzer, ok := AnalyzerByName(tc.analyzer)
			if !ok {
				t.Fatalf("no analyzer named %q", tc.analyzer)
			}
			pkg := loadFixture(t, tc.analyzer)
			runner := &Runner{Analyzers: []*Analyzer{analyzer}, Config: tc.config(pkg.Path)}
			findings, err := runner.RunPackage(pkg)
			if err != nil {
				t.Fatalf("running %s: %v", tc.analyzer, err)
			}
			wants := parseWants(t, pkg.Dir)
			for _, f := range findings {
				matched := false
				for _, w := range wants[f.Pos.Filename] {
					if !w.matched && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for file, ws := range wants {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("missing finding at %s:%d matching %q", file, w.line, w.re)
					}
				}
			}
		})
	}
}

// TestIgnoreDirectives exercises the //soclint:ignore machinery: valid
// directives suppress their analyzer on the covered lines, directives
// for other analyzers do not, and a directive without a reason is
// itself a finding (want comments cannot express this, because a
// trailing comment would merge into the directive text).
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, "directives")
	runner := &Runner{
		Analyzers: []*Analyzer{ErrDiscard},
		Config:    Config{ErrDiscardScope: []string{pkg.Path}},
	}
	findings, err := runner.RunPackage(pkg)
	if err != nil {
		t.Fatalf("running errdiscard: %v", err)
	}
	var malformed, discards int
	for _, f := range findings {
		switch f.Analyzer {
		case "soclint":
			malformed++
			if !strings.Contains(f.Message, "malformed ignore directive") {
				t.Errorf("unexpected soclint finding: %s", f)
			}
		case "errdiscard":
			discards++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	// One malformed directive; two unsuppressed discards (below the
	// malformed directive and below the wrong-analyzer directive). The
	// two correctly suppressed sites must not appear.
	if malformed != 1 || discards != 2 || len(findings) != 3 {
		t.Errorf("got %d malformed + %d errdiscard findings (want 1 + 2):", malformed, discards)
		for _, f := range findings {
			t.Logf("  %s", f)
		}
	}
}

func TestInScope(t *testing.T) {
	prefixes := []string{"soc/internal/host", "soc/cmd/"}
	for path, want := range map[string]bool{
		"soc/internal/host":        true,
		"soc/internal/host/sub":    true,
		"soc/internal/hostile":     false,
		"soc/cmd/soclint":          true,
		"soc/cmd":                  false,
		"soc/internal/reliability": false,
	} {
		if got := InScope(path, prefixes); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
}
